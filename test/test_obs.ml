(* Telemetry tests: registry semantics, the disabled-path overhead
   guard (no instrument state may exist after an uninstrumented run),
   engine-differential invariance under telemetry, trace-event format
   validity under concurrent span emission, and the injection
   blind-spot metric against its persisted-corpus recount. *)

let tc = Alcotest.test_case
let check = Alcotest.check

(* Every telemetry test must leave the process the way it found it:
   disabled, empty registry, empty span buffers. *)
let with_telemetry f =
  Obs.Metrics.reset ();
  Obs.Span.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.Metrics.reset ();
      Obs.Span.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Registry semantics *)

let test_registry_basics () =
  with_telemetry (fun () ->
      let c = Obs.Metrics.counter ~desc:"test counter" "test.count" in
      let g = Obs.Metrics.gauge ~desc:"test gauge" "test.level" in
      let h = Obs.Metrics.histogram ~desc:"test histogram" "test.dist" in
      Obs.Metrics.incr c;
      Obs.Metrics.add c 4;
      Obs.Metrics.add_labelled c "shard=1" 2;
      Obs.Metrics.set g 7;
      Obs.Metrics.set_max g 3 (* below the high-water mark: no effect *);
      Obs.Metrics.set_max g 11;
      Obs.Metrics.observe h 1;
      Obs.Metrics.observe h 3;
      Obs.Metrics.observe h 1000;
      let s = Obs.Metrics.snapshot () in
      check Alcotest.(list string) "snapshot names, sorted"
        [ "test.count"; "test.count{shard=1}"; "test.dist"; "test.level" ]
        (List.map fst s);
      (match Obs.Metrics.find s "test.count" with
      | Some (Obs.Metrics.Count n) -> check Alcotest.int "counter" 5 n
      | _ -> Alcotest.fail "counter missing");
      (match Obs.Metrics.find s "test.level" with
      | Some (Obs.Metrics.Level n) -> check Alcotest.int "gauge max" 11 n
      | _ -> Alcotest.fail "gauge missing");
      (match Obs.Metrics.find s "test.dist" with
      | Some (Obs.Metrics.Dist d) ->
        check Alcotest.int "hist count" 3 d.Obs.Metrics.h_count;
        check Alcotest.int "hist sum" 1004 d.Obs.Metrics.h_sum;
        (* 1 -> bucket 0 (lo 0, also holds non-positives); 3 -> lo 2;
           1000 -> lo 512 *)
        check
          Alcotest.(list (pair int int))
          "log2 buckets"
          [ (0, 1); (2, 1); (512, 1) ]
          d.Obs.Metrics.h_buckets
      | _ -> Alcotest.fail "histogram missing");
      (* diff: counters and histograms become deltas, gauges pass
         through *)
      let before = s in
      Obs.Metrics.add c 10;
      Obs.Metrics.observe h 3;
      let d = Obs.Metrics.diff ~before (Obs.Metrics.snapshot ()) in
      check Alcotest.int "counter delta" 10
        (Obs.Metrics.int_of_value (Option.get (Obs.Metrics.find d "test.count")));
      (match Obs.Metrics.find d "test.dist" with
      | Some (Obs.Metrics.Dist dd) ->
        check Alcotest.int "hist delta count" 1 dd.Obs.Metrics.h_count;
        check
          Alcotest.(list (pair int int))
          "hist delta buckets" [ (2, 1) ] dd.Obs.Metrics.h_buckets
      | _ -> Alcotest.fail "hist delta missing"))

let test_catalog_registration () =
  (* Declared instruments are in the catalog even while disabled and
     with zero live cells; process-wide instruments (pool, checker,
     trace, ...) registered at module init are present too. *)
  let names =
    List.map (fun m -> m.Obs.Metrics.m_name) (Obs.Metrics.catalog ())
  in
  List.iter
    (fun n ->
      if not (List.mem n names) then Alcotest.failf "%s not in catalog" n)
    [
      "pool.steals"; "trace.paths_expanded"; "rules.fired";
      "checker.warning_total"; "shadow.lock_contention"; "crash.points_explored";
      "inject.blind_spot_fns";
    ];
  check Alcotest.bool "catalog sorted" true
    (List.sort compare names = names)

(* ------------------------------------------------------------------ *)
(* Overhead guard: a full checker run with telemetry off must not
   intern a single cell or buffer a single span event. *)

let corpus_prog () =
  let p = List.hd Corpus.Registry.all in
  (Corpus.Types.parse p, Corpus.Types.model p, p.Corpus.Types.roots)

let test_disabled_allocates_nothing () =
  Obs.set_enabled false;
  Obs.Metrics.reset ();
  Obs.Span.reset ();
  let prog, model, roots = corpus_prog () in
  ignore (Analysis.Checker.check ~roots ~model prog);
  check Alcotest.int "no cells interned" 0 (Obs.Metrics.live_instruments ());
  check Alcotest.bool "empty snapshot" true (Obs.Metrics.snapshot () = []);
  check Alcotest.bool "no span events" true (Obs.Span.events () = [])

(* Telemetry must be observationally inert: both engines report
   byte-identical warnings whether it is on or off. *)
let test_engines_invariant_under_telemetry () =
  let prog, model, roots = corpus_prog () in
  let warnings engine =
    let config = { Analysis.Config.default with Analysis.Config.engine } in
    let r = Analysis.Checker.check ~config ~roots ~model prog in
    List.map (Fmt.str "%a" Analysis.Warning.pp) r.Analysis.Checker.warnings
  in
  let run enabled engine =
    if enabled then with_telemetry (fun () -> warnings engine)
    else warnings engine
  in
  List.iter
    (fun engine ->
      check
        Alcotest.(list string)
        "telemetry on = off"
        (run false engine) (run true engine))
    [ Analysis.Config.Materialized; Analysis.Config.Streaming ];
  check
    Alcotest.(list string)
    "engines agree under telemetry"
    (with_telemetry (fun () -> warnings Analysis.Config.Materialized))
    (with_telemetry (fun () -> warnings Analysis.Config.Streaming))

(* ------------------------------------------------------------------ *)
(* Pool worker stats *)

let test_pool_worker_stats () =
  let p = Pool.create ~size:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  let r = Pool.map ~chunk:1 p (fun x -> x * x) (List.init 10 Fun.id) in
  check Alcotest.(list int) "results" (List.init 10 (fun x -> x * x)) r;
  let ws = Pool.worker_stats p in
  check Alcotest.int "every chunk claimed exactly once" 10
    (List.fold_left (fun a (w : Pool.worker_stat) -> a + w.Pool.claims) 0 ws);
  (* busy time is telemetry-gated; this run was unobserved *)
  List.iter
    (fun (w : Pool.worker_stat) ->
      check Alcotest.bool "no clock reads while disabled" true
        (w.Pool.busy_ns = 0L))
    ws

(* ------------------------------------------------------------------ *)
(* Span tracing: structural validity under concurrent emission *)

(* Minimal scanner for the emitted trace JSON: one record per line,
   fixed field order (written by Obs itself, not a generic printer). *)
type rec_ev = { ph : char; ts : float; pid : int; tid : int }

let parse_trace_json s =
  let field line key =
    let pat = "\"" ^ key ^ "\": " in
    match
      let rec find i =
        if i + String.length pat > String.length line then None
        else if String.sub line i (String.length pat) = pat then
          Some (i + String.length pat)
        else find (i + 1)
      in
      find 0
    with
    | None -> None
    | Some start ->
      let stop = ref start in
      while
        !stop < String.length line
        && (match line.[!stop] with
           | '0' .. '9' | '.' | '-' | '"' | 'B' | 'E' | 'M' -> true
           | _ -> false)
      do
        incr stop
      done;
      Some (String.sub line start (!stop - start))
  in
  List.filter_map
    (fun line ->
      match field line "ph" with
      | Some p when p = "\"B\"" || p = "\"E\"" ->
        Some
          {
            ph = (String.sub p 1 1).[0];
            ts = float_of_string (Option.get (field line "ts"));
            pid = int_of_string (Option.get (field line "pid"));
            tid = int_of_string (Option.get (field line "tid"));
          }
      | _ -> None (* metadata records and array brackets *))
    (String.split_on_char '\n' s)

let validate_track evs =
  (* stack discipline and monotone timestamps within one track *)
  let depth = ref 0 and last = ref neg_infinity in
  List.iter
    (fun e ->
      if e.ts < !last then Alcotest.failf "ts went backwards: %f" e.ts;
      last := e.ts;
      (match e.ph with
      | 'B' -> incr depth
      | _ ->
        decr depth;
        if !depth < 0 then Alcotest.fail "E without matching B");
      check Alcotest.int "pid constant" 1 e.pid)
    evs;
  check Alcotest.int "balanced B/E" 0 !depth

let test_qcheck_concurrent_spans =
  let gen =
    QCheck.make
      ~print:(fun (seed, items) -> Printf.sprintf "seed=%d items=%d" seed items)
      QCheck.Gen.(pair (int_bound 1000) (int_range 1 24))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:12 ~name:"trace JSON valid under concurrency" gen
       (fun (seed, items) ->
         with_telemetry (fun () ->
             let p = Pool.create ~size:3 () in
             Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
             ignore
               (Pool.map ~chunk:1 p
                  (fun i ->
                    Obs.Span.with_ ~name:(Fmt.str "outer-%d" i) (fun () ->
                        if (i + seed) mod 2 = 0 then
                          Obs.Span.with_ ~name:"inner"
                            ~args:[ ("i", string_of_int i) ]
                            (fun () -> i * i)
                        else i))
                  (List.init items Fun.id));
             let evs = parse_trace_json (Obs.Span.to_json ()) in
             if evs = [] then Alcotest.fail "no span events emitted";
             let tids =
               List.sort_uniq compare (List.map (fun e -> e.tid) evs)
             in
             List.iter
               (fun tid ->
                 validate_track (List.filter (fun e -> e.tid = tid) evs))
               tids;
             (* raising inside a span still closes it *)
             (try
                Obs.Span.with_ ~name:"raises" (fun () -> failwith "boom")
              with Failure _ -> ());
             let raw = Obs.Span.events () in
             let opens =
               List.length
                 (List.filter (fun e -> e.Obs.Span.ev_ph = Obs.Span.Begin) raw)
             in
             check Alcotest.int "B/E balanced after raise"
               (List.length raw - opens)
               opens;
             true)))

(* ------------------------------------------------------------------ *)
(* The injection blind-spot metric vs. its persisted-corpus recount *)

let test_blind_spot_corpus_roundtrip () =
  (* the offset lattice closed the blind spot, so this exercises the
     metric plumbing under the ablated (legacy) configuration, where the
     pmfs delete-fence blind spot still exists *)
  let bases =
    Inject.Evaluate.corpus_bases ~offset_sensitive:false
      ~framework:Corpus.Types.Pmfs ()
  in
  let s =
    Inject.Evaluate.run
      ~operators:[ Inject.Mutation.Delete_fence ]
      ~dynamic:false ~crash:false bases
  in
  check Alcotest.int "pmfs delete-fence blind spot" 2 s.Inject.Evaluate.known_blind_spot;
  List.iter
    (fun r ->
      check Alcotest.bool "blind-spot mutants are static-tier FNs" true
        (r.Inject.Evaluate.static_d.Inject.Evaluate.hit = false))
    (List.filter Inject.Evaluate.is_known_blind_spot s.Inject.Evaluate.results);
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "deepmc-obs-fn" in
  let _paths = Inject.Evaluate.save_false_negatives ~dir s in
  let recount = Inject.Evaluate.known_blind_spot_of_corpus ~dir in
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  check Alcotest.int "corpus recount agrees" s.Inject.Evaluate.known_blind_spot
    recount;
  check Alcotest.int "missing dir counts zero" 0
    (Inject.Evaluate.known_blind_spot_of_corpus ~dir:"no-such-dir")

(* ------------------------------------------------------------------ *)
(* Long-lived process regression: a resident daemon cycles telemetry
   (enable -> serve requests -> snapshot -> reset -> disable) for its
   whole lifetime. The generation-stamped handle caches must stay
   valid across every cycle — a stale cell after [reset] would count
   into a dead registry — and [live_instruments] must not grow with
   request count: interning is per generation, not per request. *)

let cycle_src =
  {|
struct cell_t { v: int }

func main() {
entry:
  c = alloc pmem cell_t
  store c->v, 1     @ cy.c:10
  flush exact c->v  @ cy.c:11
  fence             @ cy.c:12
  ret
}
|}

let test_serve_cycles_bound_instruments () =
  let cache = Serve.Cache.create () in
  let params = Serve.Cache.default_params Analysis.Model.Strict in
  let serve_once () =
    match Serve.Cache.check cache ~name:"cy.nvmir" ~params ~text:cycle_src with
    | Ok o -> o
    | Error e -> Alcotest.fail ("serve request failed: " ^ e)
  in
  ignore (serve_once ()) (* prime: later cycles are all request hits *);
  let steady = ref (-1) in
  for cycle = 1 to 12 do
    Obs.Metrics.reset ();
    Obs.set_enabled true;
    (* several requests per cycle: live_instruments must depend on the
       instrument set, never on the request count *)
    for _ = 1 to 5 do
      ignore (serve_once ());
      Serve.Cache.observe_latency 1_000
    done;
    let live = Obs.Metrics.live_instruments () in
    let s = Obs.Metrics.snapshot () in
    Obs.set_enabled false;
    if !steady < 0 then steady := live
    else
      check Alcotest.int
        (Fmt.str "cycle %d: live instruments stable" cycle)
        !steady live;
    check Alcotest.bool "live instruments bounded" true (live <= 16);
    (match Obs.Metrics.find s "serve.requests" with
    | Some (Obs.Metrics.Count n) ->
      check Alcotest.int
        (Fmt.str "cycle %d: requests counted into the live generation" cycle)
        5 n
    | _ -> Alcotest.fail "serve.requests missing after re-enable");
    match Obs.Metrics.find s "serve.request_latency_ns" with
    | Some (Obs.Metrics.Dist d) ->
      check Alcotest.int
        (Fmt.str "cycle %d: latency observations counted" cycle)
        5 d.Obs.Metrics.h_count
    | _ -> Alcotest.fail "serve.request_latency_ns missing after re-enable"
  done;
  Obs.Metrics.reset ();
  check Alcotest.int "nothing survives the final reset" 0
    (Obs.Metrics.live_instruments ())

let suite =
  [
    tc "registry basics" `Quick test_registry_basics;
    tc "catalog registration" `Quick test_catalog_registration;
    tc "disabled path allocates nothing" `Quick test_disabled_allocates_nothing;
    tc "engines invariant under telemetry" `Quick
      test_engines_invariant_under_telemetry;
    tc "pool worker stats" `Quick test_pool_worker_stats;
    test_qcheck_concurrent_spans;
    tc "blind-spot corpus round-trip" `Quick test_blind_spot_corpus_roundtrip;
    tc "serve cycles keep handle caches valid and instruments bounded" `Quick
      test_serve_cycles_bound_instruments;
  ]
