(* The provenance engine (lib/explain): witness JSON round-trips
   through the report encoder, and independent tier observations of one
   bug correlate to one evidence bundle. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Witness generator over all five variants *)

let short_string =
  QCheck.Gen.(
    map
      (fun cs -> String.concat "" (List.map (String.make 1) cs))
      (list_size (int_range 0 12)
         (oneof [ char_range 'a' 'z'; char_range '0' '9'; return ' ' ])))

let gen_loc =
  QCheck.Gen.(
    map2
      (fun f l -> Nvmir.Loc.make ~file:(Fmt.str "f%s.c" f) ~line:l)
      short_string (int_range 0 999))

let gen_event_ref =
  QCheck.Gen.(
    map
      (fun (((role, what), loc), fname) ->
        Analysis.Witness.event_ref ~role ~what ~loc ~fname)
      (pair (pair (pair short_string short_string) gen_loc) short_string))

let gen_lines = QCheck.Gen.(list_size (int_range 0 5) (pair nat nat))

let gen_witness =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun slice path ->
            Analysis.Witness.Static { s_slice = slice; s_call_path = path })
          (list_size (int_range 0 6) gen_event_ref)
          (list_size (int_range 0 4) short_string);
        map
          (fun ((t, s), f) ->
            Analysis.Witness.Dynamic
              { d_transition = t; d_strand = s; d_fences = f })
          (pair (pair short_string nat) nat);
        map
          (fun ((g, s), t) ->
            Analysis.Witness.Fuzz
              { f_genome = g; f_schedule = s; f_transition = t })
          (pair (pair short_string short_string) short_string);
        map
          (fun ((task, persisted), detail) ->
            Analysis.Witness.Crash
              {
                c_task = task;
                c_image = Analysis.Witness.image_id persisted;
                c_persisted = persisted;
                c_detail = detail;
              })
          (pair (pair short_string gen_lines) short_string);
        map
          (fun (((task, persisted), corr), verdict) ->
            Analysis.Witness.Recover
              {
                r_task = task;
                r_image = Analysis.Witness.image_id persisted;
                r_persisted = persisted;
                r_corruptions = corr;
                r_verdict = verdict;
              })
          (pair
             (pair
                (pair short_string gen_lines)
                (list_size (int_range 0 4)
                   (map
                      (fun ((o, s), k) -> (o, s, k))
                      (pair (pair nat nat) short_string))))
             short_string);
      ])

let arb_witness =
  QCheck.make
    ~print:(fun w -> Fmt.str "%a" Analysis.Witness.pp w)
    gen_witness

(* ------------------------------------------------------------------ *)
(* Round-trip property: decode (encode w) = w *)

let prop_witness_roundtrip =
  QCheck.Test.make ~name:"witness JSON round-trips" ~count:500 arb_witness
    (fun w ->
      match Explain.witness_of_json (Deepmc.Json_report.of_witness w) with
      | Some w' -> w = w'
      | None -> false)

let prop_fingerprint_stable =
  QCheck.Test.make ~name:"fingerprint survives the JSON round-trip"
    ~count:200 arb_witness (fun w ->
      match Explain.witness_of_json (Deepmc.Json_report.of_witness w) with
      | Some w' ->
        Analysis.Witness.fingerprint w = Analysis.Witness.fingerprint w'
      | None -> false)

(* ------------------------------------------------------------------ *)
(* Directed: two tiers, one bundle *)

(* The strand WAW race: the static checker and the dynamic shadow state
   each observe the same (rule, file, line), so explain must produce
   exactly one bundle carrying a witness from both tiers. *)
let waw_src =
  {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  strand_begin 1
  store p->f, 1 @ waw.c:5
  flush exact p->f @ waw.c:6
  strand_end 1
  strand_begin 2
  store p->f, 2 @ waw.c:9
  flush exact p->f @ waw.c:10
  strand_end 2
  fence @ waw.c:12
  ret
}
|}

let with_witnesses f =
  Analysis.Witness.set_enabled true;
  Fun.protect ~finally:(fun () -> Analysis.Witness.set_enabled false) f

let test_cross_tier_correlation () =
  with_witnesses @@ fun () ->
  let prog = Nvmir.Parser.parse waw_src in
  let driver = Deepmc.Driver.make Analysis.Model.Strand in
  let report = Deepmc.Driver.analyze driver ~entry:"main" prog in
  let bundles = Explain.build report in
  check Alcotest.int "one bundle" 1 (List.length bundles);
  let b = List.hd bundles in
  check
    Alcotest.(list string)
    "static and dynamic tiers" [ "static"; "dynamic" ] (Explain.tiers b);
  check Alcotest.int "two witnesses" 2 (List.length b.Explain.b_evidence);
  (* the bundle key is the tier-independent bug identity *)
  List.iter
    (fun (e : Explain.evidence) ->
      match e.Explain.ev_warning with
      | Some w ->
        check Alcotest.string "bundle key matches warning identity"
          b.Explain.b_fingerprint
          (Analysis.Warning.bundle_fingerprint w)
      | None -> Alcotest.fail "warning-backed evidence expected")
    b.Explain.b_evidence;
  (* ...while the per-tier witnesses are distinct observations *)
  match b.Explain.b_evidence with
  | [ a; d ] ->
    check Alcotest.bool "distinct witness fingerprints" true
      (a.Explain.ev_fingerprint <> d.Explain.ev_fingerprint)
  | _ -> Alcotest.fail "expected exactly two evidence entries"

let test_disabled_capture_attaches_nothing () =
  Analysis.Witness.set_enabled false;
  let prog = Nvmir.Parser.parse waw_src in
  let driver = Deepmc.Driver.make Analysis.Model.Strand in
  let report = Deepmc.Driver.analyze driver ~entry:"main" prog in
  check Alcotest.bool "warnings still fire" true
    (report.Deepmc.Driver.warnings <> []);
  List.iter
    (fun (w : Analysis.Warning.t) ->
      check Alcotest.bool "no witness when disabled" true
        (w.Analysis.Warning.witness = None))
    report.Deepmc.Driver.warnings;
  check Alcotest.int "no bundles without witnesses" 0
    (List.length (Explain.build report))

let suite =
  let tc = Alcotest.test_case in
  [
    QCheck_alcotest.to_alcotest prop_witness_roundtrip;
    QCheck_alcotest.to_alcotest prop_fingerprint_stable;
    tc "cross-tier correlation: static+dynamic -> one bundle" `Quick
      test_cross_tier_correlation;
    tc "disabled capture attaches no witnesses" `Quick
      test_disabled_capture_attaches_nothing;
  ]
