(* The key regression suite: every corpus program's checker output
   matches the paper's ground truth exactly — the right rules at the
   right file:line coordinates, nothing missed, nothing extra — and the
   aggregate counts reproduce Tables 1, 2 and 8. *)

let tc = Alcotest.test_case
let check = Alcotest.check

let test_program (p : Corpus.Types.program) () =
  let prog = Corpus.Types.parse p in
  check Alcotest.(list string) "program validates" []
    (List.map (Fmt.str "%a" Nvmir.Prog.pp_error) (Nvmir.Prog.validate prog));
  let _, score = Corpus.Registry.analyze p in
  check Alcotest.int
    (Fmt.str "%s: no missed expectations" p.Corpus.Types.name)
    0
    (List.length score.Deepmc.Report.missed);
  check Alcotest.int
    (Fmt.str "%s: no unexpected warnings" p.Corpus.Types.name)
    0
    (List.length score.Deepmc.Report.unexpected)

let per_program_tests =
  List.map
    (fun (p : Corpus.Types.program) ->
      tc ("ground truth: " ^ p.Corpus.Types.name) `Quick (test_program p))
    Corpus.Registry.all

let test_table1_totals () =
  let totals = Corpus.Registry.table1 () in
  let by_fw fw =
    List.find
      (fun t -> t.Corpus.Registry.framework = fw)
      totals
  in
  let expect fw v w =
    let t = by_fw fw in
    check Alcotest.(pair int int)
      (Corpus.Types.framework_name fw)
      (v, w)
      (t.Corpus.Registry.validated, t.Corpus.Registry.warnings)
  in
  expect Corpus.Types.Pmdk 23 25;
  expect Corpus.Types.Nvm_direct 7 8;
  expect Corpus.Types.Pmfs 9 11;
  expect Corpus.Types.Mnemosyne 4 4

(* every cell of the paper's Table 1, as (rule, [PMDK; NVM-Direct; PMFS;
   Mnemosyne]) with validated/warnings pairs *)
let paper_table1 =
  let open Analysis.Warning in
  [
    (Multiple_writes_at_once, [ (0, 0); (0, 0); (1, 1); (0, 0) ]);
    (Unflushed_write, [ (1, 2); (1, 1); (0, 0); (1, 1) ]);
    (Missing_persist_barrier, [ (2, 2); (2, 2); (0, 0); (0, 0) ]);
    (Missing_barrier_nested_tx, [ (0, 0); (0, 0); (1, 1); (0, 0) ]);
    (Semantic_mismatch, [ (6, 7); (0, 0); (0, 1); (0, 0) ]);
    (Strand_dependence, [ (0, 0); (0, 0); (0, 0); (0, 0) ]);
    (Multiple_flushes, [ (3, 3); (1, 1); (3, 3); (1, 1) ]);
    (Flush_unmodified, [ (3, 3); (2, 3); (4, 5); (0, 0) ]);
    (Persist_same_object_in_tx, [ (3, 3); (0, 0); (0, 0); (2, 2) ]);
    (Durable_tx_no_writes, [ (5, 5); (1, 1); (0, 0); (0, 0) ]);
  ]

let test_table1_every_cell () =
  let totals = Corpus.Registry.table1 () in
  let frameworks =
    [ Corpus.Types.Pmdk; Corpus.Types.Nvm_direct; Corpus.Types.Pmfs;
      Corpus.Types.Mnemosyne ]
  in
  List.iter
    (fun (rule, cells) ->
      List.iter2
        (fun fw expected ->
          let t =
            List.find (fun t -> t.Corpus.Registry.framework = fw) totals
          in
          let got =
            Option.value ~default:(0, 0)
              (List.assoc_opt rule t.Corpus.Registry.per_rule)
          in
          check
            Alcotest.(pair int int)
            (Fmt.str "%s / %s"
               (Analysis.Warning.rule_name rule)
               (Corpus.Types.framework_name fw))
            expected got)
        frameworks cells)
    paper_table1

let test_studied_bug_counts () =
  (* Table 2 *)
  let studied = Corpus.Registry.studied_bugs () in
  check Alcotest.int "19 studied bugs" 19 (List.length studied);
  let violations =
    List.filter (fun (_, e, _) -> Corpus.Registry.is_violation e) studied
  in
  check Alcotest.int "9 violations" 9 (List.length violations);
  check Alcotest.int "10 performance" 10
    (List.length studied - List.length violations)

let test_new_bug_counts () =
  (* Table 8 and the 5.1 static/dynamic split *)
  let news = Corpus.Registry.new_bugs () in
  check Alcotest.int "24 new bugs" 24 (List.length news);
  let dynamic =
    List.filter (fun (_, _, d) -> d = Corpus.Types.Dynamic_analysis) news
  in
  check Alcotest.int "6 found dynamically" 6 (List.length dynamic)

let test_false_positive_rate () =
  (* the offset lattice resolved 5 of the 7 pointer-arithmetic benign
     warnings of §5.4 and surfaced 3 new benign performance warnings at
     the now-visible whole-object write-backs *)
  let benign = Corpus.Registry.benign_patterns () in
  check Alcotest.int "5 expected false positives" 5 (List.length benign);
  let totals = Corpus.Registry.table1 () in
  let w = List.fold_left (fun a t -> a + t.Corpus.Registry.warnings) 0 totals in
  check Alcotest.int "5 benign out of 48 warnings" 48 w

let test_dynamic_discovery_bugs_and_offset_lattice () =
  (* the six dynamically-discovered bugs all hide behind pointer
     arithmetic: the offset-aware static checker now finds every one of
     them, while ablating the offset lattice restores the historical
     static blind spot (only the instrumented execution sees them) *)
  List.iter
    (fun (p : Corpus.Types.program) ->
      let dyn_expectations =
        List.filter
          (fun ((e : Deepmc.Report.expectation), d) ->
            d = Corpus.Types.Dynamic_analysis && e.Deepmc.Report.validated)
          p.Corpus.Types.expectations
      in
      if dyn_expectations <> [] then begin
        let _, offset_score = Corpus.Registry.analyze ~run_dynamic:false p in
        let _, ablated_score =
          Corpus.Registry.analyze ~offset_sensitive:false ~run_dynamic:false p
        in
        List.iter
          (fun ((e : Deepmc.Report.expectation), _) ->
            let matched_in (s : Deepmc.Report.score) =
              List.exists (fun (e', _) -> e' = e) s.Deepmc.Report.matched
            in
            if not (matched_in offset_score) then
              Alcotest.fail
                (Fmt.str
                   "%s:%d should be found by the offset-aware static checker"
                   e.Deepmc.Report.file e.Deepmc.Report.line);
            if matched_in ablated_score then
              Alcotest.fail
                (Fmt.str
                   "%s:%d should be invisible to the offset-ablated static \
                    checker"
                   e.Deepmc.Report.file e.Deepmc.Report.line))
          dyn_expectations
      end)
    Corpus.Registry.all

let test_corpus_programs_run () =
  (* every corpus program's driver executes without runtime errors *)
  List.iter
    (fun (p : Corpus.Types.program) ->
      let prog = Corpus.Types.parse p in
      let pmem = Runtime.Pmem.create () in
      let interp = Runtime.Interp.create ~pmem prog in
      match
        Runtime.Interp.run ~entry:p.Corpus.Types.entry
          ~args:p.Corpus.Types.entry_args interp
      with
      | _ -> ()
      | exception e ->
        Alcotest.fail
          (Fmt.str "%s failed to run: %s" p.Corpus.Types.name
             (Printexc.to_string e)))
    Corpus.Registry.all

let test_fixed_variants_are_clean () =
  (* every fixed variant must produce no validated-bug warnings at the
     ground-truth locations (the fix removes the bug) *)
  List.iter
    (fun (p : Corpus.Types.program) ->
      match Corpus.Types.parse_fixed p with
      | None -> ()
      | Some fixed ->
        let result =
          Analysis.Checker.check ~model:(Corpus.Types.model p) fixed
        in
        List.iter
          (fun (w : Analysis.Warning.t) ->
            if
              List.exists
                (fun ((e : Deepmc.Report.expectation), _) ->
                  e.Deepmc.Report.validated
                  && e.Deepmc.Report.rule = w.Analysis.Warning.rule
                  && e.Deepmc.Report.file = w.Analysis.Warning.loc.Nvmir.Loc.file
                  && e.Deepmc.Report.line = w.Analysis.Warning.loc.Nvmir.Loc.line)
                p.Corpus.Types.expectations
            then
              Alcotest.fail
                (Fmt.str "%s fixed variant still warns at %a"
                   p.Corpus.Types.name Nvmir.Loc.pp w.Analysis.Warning.loc))
          result.Analysis.Checker.warnings)
    Corpus.Registry.all

let test_frameworks_have_right_models () =
  check Alcotest.bool "PMDK strict" true
    (Corpus.Types.framework_model Corpus.Types.Pmdk = Analysis.Model.Strict);
  check Alcotest.bool "NVM-Direct strict" true
    (Corpus.Types.framework_model Corpus.Types.Nvm_direct = Analysis.Model.Strict);
  check Alcotest.bool "PMFS epoch" true
    (Corpus.Types.framework_model Corpus.Types.Pmfs = Analysis.Model.Epoch);
  check Alcotest.bool "Mnemosyne epoch" true
    (Corpus.Types.framework_model Corpus.Types.Mnemosyne = Analysis.Model.Epoch)

let test_registry_find () =
  check Alcotest.bool "find existing" true
    (Corpus.Registry.find "btree_map" <> None);
  check Alcotest.bool "find missing" true (Corpus.Registry.find "nope" = None);
  check Alcotest.int "18 corpus programs" 18 (List.length Corpus.Registry.all)

let suite =
  per_program_tests
  @ [
      tc "Table 1 totals" `Quick test_table1_totals;
      tc "Table 1 every cell" `Quick test_table1_every_cell;
      tc "Table 2: studied-bug counts" `Quick test_studied_bug_counts;
      tc "Table 8: new-bug counts" `Quick test_new_bug_counts;
      tc "false-positive rate (5.4)" `Quick test_false_positive_rate;
      tc "dynamic-discovery bugs vs the offset lattice" `Quick
        test_dynamic_discovery_bugs_and_offset_lattice;
      tc "all corpus programs execute" `Quick test_corpus_programs_run;
      tc "fixed variants are clean" `Quick test_fixed_variants_are_clean;
      tc "framework models" `Quick test_frameworks_have_right_models;
      tc "registry lookup" `Quick test_registry_find;
    ]
