(* Differential testing of the two pipelines: every execution's
   persistent-event stream must be explained by some statically
   collected trace (§4.1: the offline and online analyses see the same
   program through the same event vocabulary). *)

let tc = Alcotest.test_case
let check = Alcotest.check

let record_execution prog ~entry ~args =
  let pmem = Runtime.Pmem.create () in
  let rec_ = Runtime.Recorder.create () in
  Runtime.Recorder.attach rec_ pmem;
  let interp = Runtime.Interp.create ~pmem prog in
  ignore (Runtime.Interp.run ~entry ~args interp);
  rec_

(* differential tests widen the exploration caps so the executed path is
   always among the collected traces (with default caps, bounded
   exploration may drop low-persistency paths — the paper's
   prioritization trade-off) *)
let wide_config =
  { Analysis.Config.default with
    Analysis.Config.max_paths = 4096; expansion_fanout = 4096 }

let static_traces_of prog ~root =
  let dsg = Dsa.Dsg.build prog in
  match
    List.assoc_opt root
      (Analysis.Trace.collect ~config:wide_config dsg prog ~roots:[ root ])
  with
  | Some ts -> ts
  | None -> []

let test_straightline_agreement () =
  let prog =
    Nvmir.Parser.parse
      {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  store p->f, 1        @ t.c:1
  persist exact p->f   @ t.c:2
  tx_begin             @ t.c:3
  tx_add exact p->g    @ t.c:4
  store p->g, 2        @ t.c:5
  tx_end               @ t.c:6
  ret
}
|}
  in
  let rec_ = record_execution prog ~entry:"main" ~args:[] in
  check Alcotest.bool "execution explained by a static trace" true
    (Runtime.Recorder.explained_by rec_ (static_traces_of prog ~root:"main"))

let test_branch_agreement () =
  (* both runtime outcomes of the branch must be explained *)
  let src =
    {|
struct s { f: int, g: int }
func main(n: int) {
entry:
  p = alloc pmem s
  c = n > 0
  br c, yes, no
yes:
  store p->f, 1        @ t.c:10
  persist exact p->f   @ t.c:11
  br fin
no:
  store p->g, 2        @ t.c:20
  persist exact p->g   @ t.c:21
  br fin
fin:
  ret
}
|}
  in
  let prog = Nvmir.Parser.parse src in
  let statics = static_traces_of prog ~root:"main" in
  List.iter
    (fun arg ->
      let rec_ = record_execution prog ~entry:"main" ~args:[ arg ] in
      check Alcotest.bool
        (Fmt.str "branch arg=%d explained" arg)
        true
        (Runtime.Recorder.explained_by rec_ statics))
    [ 0; 1 ]

let test_recorder_event_stream () =
  let prog =
    Nvmir.Parser.parse
      {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  epoch_begin
  store p->f, 1
  flush exact p->f
  fence
  epoch_end
  ret
}
|}
  in
  let rec_ = record_execution prog ~entry:"main" ~args:[] in
  let kinds =
    List.map
      (function
        | Runtime.Recorder.R_write _ -> "W"
        | Runtime.Recorder.R_flush _ -> "F"
        | Runtime.Recorder.R_fence -> "B"
        | Runtime.Recorder.R_epoch_begin -> "E{"
        | Runtime.Recorder.R_epoch_end -> "}E"
        | _ -> "?")
      (Runtime.Recorder.events rec_)
  in
  check Alcotest.(list string) "stream shape" [ "E{"; "W"; "F"; "B"; "}E" ] kinds

let test_corpus_executions_explained () =
  (* each corpus scenario driver's execution agrees with its static
     traces; programs whose drivers take arguments pick the executed
     configuration *)
  List.iter
    (fun (p : Corpus.Types.program) ->
      let prog = Corpus.Types.parse p in
      let dsg = Dsa.Dsg.build prog in
      let statics =
        Analysis.Trace.collect ~config:wide_config dsg prog
          ~roots:p.Corpus.Types.roots
      in
      List.iter
        (fun root ->
          match Nvmir.Prog.find_func prog root with
          | Some f when f.Nvmir.Func.params = [] ->
            let rec_ = record_execution prog ~entry:root ~args:[] in
            let ts = Option.value ~default:[] (List.assoc_opt root statics) in
            if not (Runtime.Recorder.explained_by rec_ ts) then
              Alcotest.fail
                (Fmt.str "%s/%s: execution not explained by %d static trace(s)"
                   p.Corpus.Types.name root (List.length ts))
          | _ -> ())
        p.Corpus.Types.roots)
    Corpus.Registry.all

let prop_synth_executions_explained =
  QCheck.Test.make ~name:"generated executions match a static trace" ~count:15
    QCheck.(map abs int)
    (fun seed ->
      (* one call per worker and few workers keep the full path
         cross-product under the (widened) caps, so the executed path is
         guaranteed to be collected *)
      let cfg =
        (* ptr_arith admits the computed-alias worker shape, so the
           offset-polynomial paths are exercised differentially too *)
        { Corpus.Synth.default_config with seed; nfuncs = 6;
          calls_per_func = 1; buggy_fraction_pct = 20; ptr_arith = true }
      in
      let prog, _ = Corpus.Synth.generate cfg in
      let dsg = Dsa.Dsg.build prog in
      let statics =
        Analysis.Trace.collect ~config:wide_config dsg prog
          ~roots:(Corpus.Synth.roots cfg)
      in
      List.for_all
        (fun root ->
          let rec_ = record_execution prog ~entry:root ~args:[] in
          let ts = Option.value ~default:[] (List.assoc_opt root statics) in
          Runtime.Recorder.explained_by rec_ ts)
        (Corpus.Synth.roots cfg))

(* Soundness cross-check of the crash-image explorer against the static
   checker: dynamic ground truth must not outrun the static rules. If a
   randomly generated program has an inconsistent reachable crash image,
   the static checker must flag the program with at least one warning —
   otherwise the rules have a blind spot the image space can see.
   QCheck shrinks the integer seed toward a minimal counterexample;
   failures print the seed plus both sides' evidence. *)
let prop_crash_space_implies_static_warning =
  QCheck.Test.make
    ~name:"inconsistent crash image implies a static warning" ~count:10
    QCheck.(map abs int)
    (fun seed ->
      let cfg =
        { Corpus.Synth.default_config with seed; nfuncs = 5;
          calls_per_func = 1; buggy_fraction_pct = 50; ptr_arith = true }
      in
      let prog, _ = Corpus.Synth.generate cfg in
      let space = Runtime.Crash_space.explore ~entry:"main" ~bound:64 prog in
      if space.Runtime.Crash_space.inconsistent = 0 then true
      else begin
        let r =
          Analysis.Checker.check ~config:wide_config
            ~roots:(Corpus.Synth.roots cfg) ~model:Analysis.Model.Strict prog
        in
        if r.Analysis.Checker.warnings = [] then
          QCheck.Test.fail_reportf
            "seed %d: %d inconsistent crash image(s) (first: %a) but zero \
             static warnings"
            seed space.Runtime.Crash_space.inconsistent
            (Fmt.option Runtime.Crash_space.pp_witness)
            (Runtime.Crash_space.first_witness space)
        else true
      end)

let suite =
  [
    tc "straight-line agreement" `Quick test_straightline_agreement;
    tc "branch agreement (both outcomes)" `Quick test_branch_agreement;
    tc "recorder event stream" `Quick test_recorder_event_stream;
    tc "whole corpus executions explained" `Quick
      test_corpus_executions_explained;
    QCheck_alcotest.to_alcotest prop_synth_executions_explained;
    QCheck_alcotest.to_alcotest prop_crash_space_implies_static_warning;
  ]
