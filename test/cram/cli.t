End-to-end CLI checks. Timing lines are filtered out; everything else is
deterministic.

The Figure 9 bug is reported at the paper's coordinates:

  $ deepmc check ../../examples/programs/nvm_lock.nvmir --strict --entry main 2>/dev/null | grep -A1 WARNING
  WARNING [unflushed-write] nvm_locks.c:932 (model violation, strict model, static):
    write to n1.new_level is never flushed or logged before it must be durable

The exit code reflects the warning count:

  $ deepmc check ../../examples/programs/nvm_lock.nvmir --strict >/dev/null 2>&1
  [124]

The Figure 1 hashmap bug:

  $ deepmc check ../../examples/programs/hashmap.nvmir --strict 2>/dev/null | grep "WARNING"
  WARNING [semantic-mismatch] hash_map.c:120 (model violation, strict model, static):

JSON output carries the same warning:

  $ deepmc check ../../examples/programs/hashmap.nvmir --strict --json 2>/dev/null | grep -o '"rule": "semantic-mismatch"'
  "rule": "semantic-mismatch"

The DSG dump shows the two persistent objects of Figure 10:

  $ deepmc dsg ../../examples/programs/nvm_lock.nvmir --function nvm_lock | head -2
  DSG of nvm_lock (2 persistent node(s))
  n1 pmem heap [lk]

The rule catalog lists all ten rules:

  $ deepmc rules | grep -c '^[a-z-]* \['
  13

The fixer repairs the Figure 9 bug (the repaired program persists
new_level):

  $ deepmc fix ../../examples/programs/nvm_lock.nvmir --strict 2>/dev/null | grep -A1 "store lk->new_level"
    store lk->new_level, 2  @ nvm_locks.c:932
    persist exact lk->new_level  @ nvm_locks.c:932

Trace dump from a chosen root:

  $ deepmc trace ../../examples/programs/hashmap.nvmir --root main | head -3
  root main: 1 trace(s)
    trace (8 events)
      >hashmap_create @<unknown>:0

Malformed input is a parse error, not a crash:

  $ echo "func broken(" > broken.nvmir
  $ deepmc check broken.nvmir --strict 2>&1 | head -1
  deepmc: broken.nvmir:2: expected parameter name, got end of input

Unknown corpus names are rejected:

  $ deepmc corpus --name not_a_program
  deepmc: no such corpus program (try without --name for the list)
  [124]

Canonical formatting round-trips:

  $ deepmc fmt ../../examples/programs/hashmap.nvmir > once.nvmir
  $ deepmc fmt once.nvmir > twice.nvmir
  $ diff once.nvmir twice.nvmir

The WAL example under the epoch model: one conservative commit-marker
warning (see docs/RULES.md), everything else clean:

  $ deepmc check ../../examples/programs/wal.nvmir --epoch --entry main 2>/dev/null | grep -c WARNING
  1

A suppression database filters it:

  $ cat > wal.supp <<'DB'
  > semantic-mismatch  wal.c:30  commit marker after data, crash-verified
  > DB
  $ deepmc check ../../examples/programs/wal.nvmir --epoch --suppressions wal.supp 2>/dev/null | grep suppressed
  suppressed wal.c:30 semantic-mismatch (commit marker after data, crash-verified)

Mixed-model checking assigns per-root models:

  $ cat > map.txt <<'MAP'
  > main epoch
  > MAP
  $ deepmc check-mixed ../../examples/programs/wal.nvmir --model-map map.txt 2>/dev/null | head -1
  main (epoch model): 1 warning(s)

Graphviz export is well-formed dot:

  $ deepmc cfg ../../examples/programs/nvm_lock.nvmir --function nvm_lock | head -2
  digraph "nvm_lock" {
    node [shape=box, fontname="monospace"];
  $ deepmc cfg ../../examples/programs/nvm_lock.nvmir --callgraph | grep doubleoctagon
    "main" [shape=doubleoctagon];

The crash-consistent persistent queue: its three dependency-ordering
warnings are the known conservative pattern:

  $ deepmc check ../../examples/programs/pqueue.nvmir --strict --entry main 2>/dev/null | grep -c semantic-mismatch
  3

Crash-exposure exploration: a write that never becomes durable is
reported (and fails the exit code), exercising the executed path:

  $ cat > lossy.nvmir <<'IR'
  > struct s { f: int, g: int }
  > func main() {
  > entry:
  >   p = alloc pmem s
  >   store p->f, 1
  >   persist exact p->f
  >   store p->g, 2
  >   ret
  > }
  > IR
  $ deepmc crash lossy.nvmir --summary
  crash points: 4; peak in-flight exposure: 1 slot(s); never durable: 1 slot(s)
  deepmc: 1 slot(s) never became durable
  [124]

The crash-safe WAL has in-flight exposure but loses nothing:

  $ deepmc crash ../../examples/programs/wal.nvmir --summary
  crash points: 30; peak in-flight exposure: 9 slot(s); never durable: 0 slot(s)

crash-explore enumerates every reachable write-back image (not just the
prefix image) and reports the inconsistent ones with their persisted
subsets; the lossy program's volatile write shows up as an image that
misses it:

  $ deepmc crash-explore lossy.nvmir
  crash points: 4 (+ exit); images: 9 enumerated, 9 distinct (pruning 0%); inconsistent: 1
    at exit: persisted {}: writes still volatile at program exit are lost
  deepmc: 1 inconsistent crash image(s)
  [124]

  $ deepmc crash-explore lossy.nvmir --json
  {"crash_points": 4,
    "images_enumerated": 9,
    "images_distinct": 9,
    "pruning_ratio": 0.0,
    "inconsistent": 1,
    "witnesses": [{"at": "exit",
                    "persisted": [],
                    "detail": "writes still volatile at program exit are lost"}]}
  deepmc: 1 inconsistent crash image(s)
  [124]

A program that persists every write before the next is consistent in
every reachable image and exits cleanly:

  $ cat > ordered.nvmir <<'IR'
  > struct s { f: int, g: int }
  > func main() {
  > entry:
  >   p = alloc pmem s
  >   store p->f, 1
  >   persist exact p->f
  >   store p->g, 2
  >   persist exact p->g
  >   ret
  > }
  > IR
  $ deepmc crash-explore ordered.nvmir
  crash points: 6 (+ exit); images: 11 enumerated, 11 distinct (pruning 0%); inconsistent: 0

  $ deepmc crash-explore ordered.nvmir --json | grep inconsistent
    "inconsistent": 0,

Interface annotations (--pmem-root) mark externally-created objects as
persistent, so library functions are checkable without a driver:

  $ cat > lib_only.nvmir <<'IR'
  > struct s { f: int, g: int }
  > func update(p: ptr s) {
  > entry:
  >   store p->f, 1
  >   ret
  > }
  > IR
  $ deepmc check lib_only.nvmir --strict 2>/dev/null | grep -c WARNING
  0
  [1]
  $ deepmc check lib_only.nvmir --strict --pmem-root update:p 2>/dev/null | grep WARNING
  WARNING [unflushed-write] <unknown>:0 (model violation, strict model, static):

HTML report generation (scan-build style):

  $ deepmc check ../../examples/programs/nvm_lock.nvmir --strict --html report.html >/dev/null 2>&1
  [124]
  $ grep -c "unflushed-write" report.html
  1
  $ grep -o "<title>[^<]*</title>" report.html
  <title>nvm_lock.nvmir</title>
  $ grep -c "class=\"hit\"" report.html
  1

Persistency-bug injection: mutate the warning-clean corpus with the
Table 4/5 operator catalog and score every detector against the
machine-readable ground truth. The PMDK slice is the acceptance bar:
static-tier recall 1.000 (target 0.90). Trailing padding is stripped;
the matrix itself is deterministic:

  $ deepmc inject --framework pmdk --no-dynamic --no-crash | sed -E 's/ +$//'
  Injection recall/precision matrix (seed 1, 7 base program(s), 129 mutant(s))
  operator         tier   n     static                 dynamic                crash
  delete-flush     static 30    30/30 r=1.00 fp=0      -                      -
  delete-fence     static 2     2/2 r=1.00 fp=0        -                      -
  reorder-fence    static 2     2/2 r=1.00 fp=0        -                      -
  hoist-write      static 40    40/40 r=1.00 fp=0      -                      -
  duplicate-flush  static 32    32/32 r=1.00 fp=0      -                      -
  widen-flush      static 18    18/18 r=1.00 fp=0      -                      -
  drop-tx-add      static 5     5/5 r=1.00 fp=0        -                      -
  split-strand     dynamic 0     -                      -                      -
  strip-crc-guard  recovery 0     -                      -                      -
  silence-recovery recovery 0     -                      -                      -
  drift-recovery-store recovery 0     -                      -                      -
  static-tier recall: 129/129 = 1.000 (target 0.90 met)
  known blind spot (pointer-arith fence aliases): 0 mutant(s)

The same seed always produces the same matrix, bit for bit:

  $ deepmc inject --seed 5 --no-crash --json > run1.json 2>/dev/null
  $ deepmc inject --seed 5 --no-crash --json > run2.json 2>/dev/null
  $ diff run1.json run2.json

The JSON report carries one row per operator (three detector cells
each) plus the campaign-level acceptance fields:

  $ deepmc inject --framework pmdk --no-dynamic --no-crash --json > inject.json 2>/dev/null
  $ grep -c '"recall"' inject.json
  33
  $ grep -c '"precision"' inject.json
  33
  $ grep -o '"static_tier_recall": 1.0' inject.json
  "static_tier_recall": 1.0
  $ grep -o '"static_tier_target_met": true' inject.json
  "static_tier_target_met": true
  $ grep -o '"known_blind_spot": 0' inject.json
  "known_blind_spot": 0
  $ grep -o '"false_negatives": \[\]' inject.json
  "false_negatives": []

Missed mutants are persisted as a re-runnable corpus, each with its
ground truth in header comments. The offset lattice closed the
pointer-arithmetic blind spot, so producing false negatives for the
demo requires ablating it: under --ablate-offsets the PMFS delete-fence
mutants hide behind pointer-arithmetic aliases again and two land in
the corpus:

  $ deepmc inject --framework pmfs --operator delete-fence --no-dynamic --no-crash --ablate-offsets --save-fn fn 2>&1 >/dev/null | grep wrote
  wrote 2 false negative(s) to fn
  $ ls fn
  pmfs_journal_delete-fence_1.nvmir
  pmfs_super_delete-fence_0.nvmir
  $ head -3 fn/pmfs_super_delete-fence_0.nvmir
  # false negative: pmfs_super/delete-fence/0
  # operator: delete-fence  tier: static  model: epoch
  # expected: missing-persist-barrier|unflushed-write @ super.c:581
