Telemetry surface. The instrument catalog is registered at module
initialization, so `deepmc stats` is a complete, stable inventory of
everything --metrics-json can report:

  $ deepmc stats
  checker.root_latency_ns    histogram per-root check latency (streaming engine), nanoseconds
  checker.roots_checked      counter   analysis roots run through the rule set
  checker.warning_total      counter   deduplicated warnings (labelled rule=R,model=M)
  crash.images_enumerated    counter   write-back subsets enumerated across crash points
  crash.images_pruned        counter   enumerated subsets collapsed by persistence-equivalence pruning
  crash.points_explored      counter   crash points explored
  crash.points_sampled       counter   crash points whose subset space was sampled, not exhaustive
  dynamic.raw_checks         counter   tracked reads checked for RAW conflicts
  dynamic.waw_checks         counter   tracked writes checked for WAW/RAW conflicts
  explain.bundles            counter   evidence bundles after cross-tier correlation
  explain.witnesses          counter   witnesses collected across tiers by the provenance engine
  fuzz.execs                 counter   schedule executions (one interleaved run of all clients)
  fuzz.fp_killed             counter   inter-thread candidates killed by crash-image validation
  fuzz.interthread_detections counter   validated inter-thread persistency inconsistencies
  fuzz.novel_schedules       counter   schedules whose coverage added unseen bits to the campaign map
  fuzz.probe_detections      counter   synchronization-boundary warnings fired at delay-injection points
  inject.blind_spot_fns      gauge     static-tier fence FNs behind pointer-arith aliases (0 since the offset lattice)
  inject.scoring_latency_ns  histogram per-mutant static+dynamic scoring latency (labelled op=O)
  pool.chunk_run_ns          histogram per-chunk execution latency, nanoseconds
  pool.jobs                  counter   parallel map submissions completed
  pool.parks                 counter   worker blocking waits entered with no pending submissions
  pool.queue_depth           gauge     high-water mark of submissions open to workers at once
  pool.steals                counter   chunk claims from submission descriptors (submitter included)
  pool.worker_busy_ns        counter   per-domain busy time in chunks, nanoseconds (labelled domain=N)
  pool.worker_claims         counter   per-domain chunk claims (labelled domain=N)
  recover.corruptions_injected counter   media corruptions injected across crash images
  recover.images_checked     counter   crash images run through the recovery entry
  recover.latency_ns         histogram per-image recovery execution latency
  recover.verdicts           counter   recovery outcomes by verdict class
  rules.fired                counter   rule evaluations (one per rule per completed trace)
  serve.cache_hits           counter   request-level cache hits (byte-identical resubmission, no re-analysis)
  serve.cache_misses         counter   request-level cache misses (program text or parameters changed)
  serve.functions_invalidated gauge     high-water mark of functions invalidated by a single edit
  serve.request_latency_ns   histogram wall-clock latency per served check request, nanoseconds
  serve.requests             counter   requests handled by the resident analyzer
  serve.roots_reused         counter   per-root results replayed from the incremental cache on changed programs
  shadow.lock_contention     counter   shard-lock acquisitions that found the lock held
  shadow.reads               counter   shadow-segment read records
  shadow.writes              counter   shadow-segment write records
  trace.memo_hits            counter   call-site expansions served from the interprocedural memo
  trace.memo_misses          counter   call-site lookups that had to build (or lacked) a memo entry
  trace.paths_expanded       counter   fully-expanded root paths handed to the rules
  trace.peak_live_paths      gauge     high-water mark of simultaneously-live paths across roots

--metrics-json enables the registry for the run and writes the
snapshot; pqueue has memoized call sites, so the memo counters are
live. Single-domain keeps the worker labels stable. The key schema
(names, not timing-dependent values) is pinned; histogram bucket keys
collapse under sort -u:

  $ deepmc check ../../examples/programs/pqueue.nvmir --strict --no-dynamic --domains 1 --metrics-json m.json --trace-out t.json >/dev/null 2>&1
  [124]
  $ grep -o '"[a-zA-Z0-9._{}=,-]*":' m.json | sort -u
  "buckets":
  "checker.root_latency_ns":
  "checker.roots_checked":
  "checker.warning_total{rule=semantic-mismatch,model=strict}":
  "count":
  "lo":
  "n":
  "pool.chunk_run_ns":
  "pool.jobs":
  "pool.steals":
  "pool.worker_busy_ns{domain=0}":
  "pool.worker_claims{domain=0}":
  "rules.fired":
  "sum":
  "trace.memo_hits":
  "trace.memo_misses":
  "trace.paths_expanded":
  "trace.peak_live_paths":

The counting instruments are deterministic for a fixed program and
model -- the acceptance floor is that none of these are zero:

  $ grep -o '"trace.paths_expanded": [0-9]*' m.json
  "trace.paths_expanded": 4
  $ grep -o '"trace.memo_hits": [0-9]*' m.json
  "trace.memo_hits": 3
  $ grep -o '"rules.fired": [0-9]*' m.json
  "rules.fired": 28
  $ grep -o '"pool.steals": [0-9]*' m.json
  "pool.steals": 1

--trace-out writes the Chrome trace_event document: one track per
domain, balanced B/E pairs (here the static-check phase span and one
check-root span inside it):

  $ grep -c '"traceEvents"' t.json
  1
  $ grep -c '"ph": "B"' t.json
  2
  $ grep -c '"ph": "E"' t.json
  2
  $ grep -o '"name": "static-check", "ph": "B"' t.json
  "name": "static-check", "ph": "B"

crash-explore reports its enumeration economy through the same flag:

  $ deepmc crash-explore ../../examples/programs/hashmap.nvmir --metrics-json cm.json >/dev/null 2>&1
  $ grep -o '"crash.points_explored": [0-9]*' cm.json
  "crash.points_explored": 7
  $ grep -o '"crash.images_enumerated": [0-9]*' cm.json
  "crash.images_enumerated": 11
