The recovery tier: media-corruption crash model plus recovery-path
verification. Everything here is deterministic (seeded corruption,
exhaustive image enumeration under the default bound).

The unguarded journal replays possibly-corrupt media through plain
loads and accepts every image — the new rule classes the static tier
cannot see, reported with dynamic origin:

  $ deepmc recover ../../examples/programs/journal_recover.nvmir --epoch
  recovery entry recover: 12 crash point(s), 21 image(s), 12 corruption(s) injected
  verdicts: 9 restored, 0 flagged, 12 silent-accept, 0 crashed; 0 non-idempotent
  WARNING [silent-corruption-accept] jrec.c:32 (model violation, epoch model, dynamic):
    recovery returned success with 1 corrupt slot(s) still present
  WARNING [unguarded-recovery-read] jrec.c:32 (model violation, epoch model, dynamic):
    recovery reads possibly-corrupt slot d[0] without a CRC guard
  WARNING [unguarded-recovery-read] jrec.c:33 (model violation, epoch model, dynamic):
    recovery reads possibly-corrupt slot d[1] without a CRC guard
  deepmc: 3 recovery warning(s)
  [124]

The CRC-guarded variant of the same journal validates the data region
against its stored checksum before replaying, so every corrupted image
is flagged and the recovery path verifies clean:

  $ deepmc recover ../../examples/programs/journal_recover_crc.nvmir --epoch
  recovery entry recover: 12 crash point(s), 21 image(s), 12 corruption(s) injected
  verdicts: 8 restored, 13 flagged, 0 silent-accept, 0 crashed; 0 non-idempotent
  recovery verified clean: no warnings

The JSON report's schema is pinned by its key set:

  $ deepmc recover ../../examples/programs/journal_recover.nvmir --epoch --json 2>/dev/null | grep -o '"[a-z_]*":' | sort -u
  "at":
  "category":
  "corruptions":
  "corruptions_injected":
  "crash_points":
  "crashed":
  "file":
  "flagged":
  "function":
  "idempotent":
  "images":
  "images_checked":
  "kind":
  "line":
  "message":
  "model":
  "non_idempotent":
  "obj":
  "origin":
  "persisted":
  "recovery_entry":
  "residual_corrupt":
  "restored":
  "rule":
  "sampled":
  "silent_accept":
  "slot":
  "unguarded_reads":
  "verdict":
  "verdicts":
  "warnings":

The three corruption kinds all appear across the enumerated images:

  $ deepmc recover ../../examples/programs/journal_recover.nvmir --epoch --json 2>/dev/null | grep -o '"kind": "[a-z-]*"' | sort -u
  "kind": "bit-flip"
  "kind": "stale-line"
  "kind": "torn-line"

--metrics-json switches the telemetry registry on for the run: the
recover instruments report images checked, corruptions injected and
the per-verdict counts, and --trace-out records the verification
span:

  $ deepmc recover ../../examples/programs/journal_recover.nvmir --epoch --metrics-json rm.json --trace-out rt.json > /dev/null 2>&1
  [124]
  $ grep -o '"recover\.[a-z_{}=-]*": [0-9][0-9]*' rm.json
  "recover.corruptions_injected": 12
  "recover.images_checked": 21
  "recover.verdicts{verdict=restored}": 9
  "recover.verdicts{verdict=silent-accept}": 12
  $ grep -o '"name": "recover-verify"' rt.json | sort -u
  "name": "recover-verify"

Disabling the media model turns the run into a plain
restart-consistency check; the unguarded journal is consistent on
every uncorrupted image:

  $ deepmc recover ../../examples/programs/journal_recover.nvmir --epoch --no-corrupt
  recovery entry recover: 12 crash point(s), 21 image(s), 0 corruption(s) injected
  verdicts: 21 restored, 0 flagged, 0 silent-accept, 0 crashed; 0 non-idempotent
  recovery verified clean: no warnings

crash-explore chains the recovery executor behind the image
enumeration with --recover:

  $ deepmc crash-explore ../../examples/programs/journal_recover_crc.nvmir --entry main --recover | tail -3
  recovery entry recover: 12 crash point(s), 21 image(s), 12 corruption(s) injected
  verdicts: 8 restored, 13 flagged, 0 silent-accept, 0 crashed; 0 non-idempotent
  recovery verified clean: no warnings

A program without a recover function is rejected up front:

  $ deepmc recover ../../examples/programs/hashmap.nvmir --strict 2>&1 | tail -1
  deepmc: recovery entry recover not defined
