The coverage-guided interleaving fuzzer (lib/fuzz). The directed
workload below is the delete-fence shape the injection campaign
persists as a dynamic-tier false negative: the first transaction's
flush is ordered by nothing but tx_end's own commit fence, so the
fixed-schedule replay is clean and only a delay probe at the tx-end
boundary sees the flush in flight.

  $ cat > sync.nvmir <<'EOF'
  > struct rec_t { a: int, b: int }
  > 
  > func sync_update(h: ptr rec_t) {
  > entry:
  >   tx_begin             @ sync.c:10
  >   tx_add exact h->a    @ sync.c:11
  >   store h->a, 1        @ sync.c:12
  >   flush exact h->a     @ sync.c:13
  >   tx_end               @ sync.c:15
  >   tx_begin             @ sync.c:20
  >   tx_add exact h->b    @ sync.c:21
  >   store h->b, 2        @ sync.c:22
  >   flush exact h->b     @ sync.c:23
  >   fence                @ sync.c:24
  >   tx_end               @ sync.c:25
  >   ret
  > }
  > 
  > func main() {
  > entry:
  >   h = alloc pmem rec_t
  >   call sync_update(h)
  >   ret
  > }
  > EOF

Everything about a campaign is a pure function of (program, mode,
seed, budget), so the run below is pinned exactly:

  $ deepmc fuzz sync.nvmir --seed 1 --budget 12
  fuzz sync.nvmir: guided mode, 12 execution(s) over 7 boundaries, 0 novel schedule(s), 0 pair bit(s)
  1 warning(s) the fixed schedule misses:
    WARNING [missing-persist-barrier] sync.c:13 (model violation, strict model, dynamic):
      flush at sync.c:13 is unordered at the tx-end boundary: a crash at the injected delay point loses or reorders it (no fence since the write-back)

The random-scheduling ablation spends the same budget on uniform
genomes:

  $ deepmc fuzz sync.nvmir --seed 1 --budget 12 --random | head -1
  fuzz sync.nvmir: random mode, 12 execution(s) over 7 boundaries, 0 novel schedule(s), 0 pair bit(s)

The JSON schema is pinned by its key set:

  $ deepmc fuzz sync.nvmir --seed 1 --budget 12 --json | grep -o '"[a-z_]*":' | sort -u
  "aborted":
  "baseline_warnings":
  "budget":
  "category":
  "clients":
  "coverage":
  "entry":
  "executions":
  "file":
  "function":
  "line":
  "message":
  "mode":
  "model":
  "nboundaries":
  "new_warnings":
  "novel_schedules":
  "origin":
  "pair_bits":
  "rule":
  "seed":
  "target":

--metrics-json switches the telemetry registry on for the campaign:
the fuzz instruments report the schedule executions (baseline replay
included) and the probe detection behind the warning above, and
--trace-out records the campaign span:

  $ deepmc fuzz sync.nvmir --seed 1 --budget 12 --metrics-json fm.json --trace-out ft.json > /dev/null
  $ grep -o '"fuzz\.[a-z_]*": [0-9]*' fm.json
  "fuzz.execs": 13
  "fuzz.probe_detections": 1
  $ grep -o '"name": "fuzz-campaign"' ft.json | sort -u
  "name": "fuzz-campaign"

The bench section scores guided vs random campaigns over the
injection campaign's false-negative corpus; at seed 1 the guided
sweep recovers every known miss and random scheduling provably does
not (the headline acceptance of the fuzzer):

  $ deepmc-bench fuzz
  
  Interleaving fuzzer: recovery of known misses, guided vs random
  ===============================================================
  budget: 24 schedules per campaign, seed 1
  mutant                             operator         bnds   guided   random
  ------------------------------------------------------------------------------------------------
  pmfs_journal/delete-fence/1        delete-fence       13      HIT      HIT
  pmfs_journal/reorder-fence/1       reorder-fence      14      HIT      HIT
  pmfs_super/delete-fence/0          delete-fence        5      HIT      HIT
  pmfs_super/reorder-fence/0         reorder-fence       6      HIT      HIT
  chhash/delete-fence/0              delete-fence       13      HIT     miss
  chhash/reorder-fence/0             reorder-fence      14      HIT      HIT
  chhash/delete-fence/1              delete-fence       13      HIT      HIT
  chhash/reorder-fence/1             reorder-fence      14      HIT      HIT
  chash/delete-fence/0               delete-fence        5      HIT     miss
  chash/reorder-fence/0              reorder-fence       6      HIT      HIT
  ------------------------------------------------------------------------------------------------
  known misses recovered: guided 10/10, random 8/10 -> fuzzer finds strictly more: true

With --json the same run writes BENCH_fuzz.json:

  $ deepmc-bench fuzz --json > /dev/null
  $ grep -o '"guided_recovered": [0-9]*' BENCH_fuzz.json
  "guided_recovered": 10
  $ grep -o '"random_recovered": [0-9]*' BENCH_fuzz.json
  "random_recovered": 8
  $ grep -o '"strictly_more": [a-z]*' BENCH_fuzz.json
  "strictly_more": true
  $ grep -c '"operator"' BENCH_fuzz.json
  10
  $ grep -o '"telemetry"' BENCH_fuzz.json
  "telemetry"
