Warning provenance (lib/explain). `deepmc explain` re-runs the tiers
with witness capture enabled and correlates every observation of one
bug -- keyed by the tier-independent (rule, file, line) fingerprint --
into an evidence bundle: the static event slice, the dynamic
shadow-state transition, the reproducing fuzz genome, the crash image
and the recovery verdict, plus an annotated IR listing.

The CLI surface:

  $ deepmc explain --help=plain | head -4
  NAME
         deepmc-explain - Explain every warning with a cross-tier witness: the
         minimal static event slice, the dynamic shadow-state transition, the
         reproducing fuzz genome, the crash image and the recovery verdict,

A static witness is the minimal event slice behind the warning -- the
store, the covering flush, the ordering fence -- with the
interprocedural call path, plus per-line markers on the listing:

  $ cat > slice.nvmir <<'EOF'
  > struct cell_t { v: int, w: int }
  > 
  > func set(c: ptr cell_t) {
  > entry:
  >   store c->v, 1     @ cell.c:5
  >   persist exact c->v @ cell.c:6
  >   store c->w, 2     @ cell.c:7
  >   persist exact c->w @ cell.c:8
  >   ret
  > }
  > 
  > func main() {
  > entry:
  >   c = alloc pmem cell_t
  >   call set(c)
  >   ret
  > }
  > EOF
  $ deepmc explain slice.nvmir
  explain slice.nvmir (strict model): 1 witness(es) in 1 evidence bundle(s)
  
  == bundle #1 20922bc46c0d6560 [semantic-mismatch] cell.c:7 (set) ==
  tiers: static
  [static] witness dfcac458690af33c — consecutive persist units update different parts of the same persistent object (n1.w here, n1.v at cell.c:5); a crash between them leaves the object half-updated
    call path: set
    store              W n1.w                   @ cell.c:7
    covering-flush     P n1.w                   @ cell.c:8
    ordering-fence     FENCE                    @ cell.c:8
  
  annotated listing:
       1 | struct cell_t { v: int, w: int }
       2 | 
       3 | func set(c: ptr cell_t) {
       4 | entry:
       5 |   store c->v, 1  @ cell.c:5
       6 |   persist exact c->v  @ cell.c:6
       7 |   store c->w, 2  @ cell.c:7                  ;; #1:!semantic-mismatch #1:store
       8 |   persist exact c->w  @ cell.c:8             ;; #1:covering-flush #1:ordering-fence
       9 |   ret
      10 | }
      11 | 
      12 | func main() {
      13 | entry:
      14 |   c = alloc pmem cell_t
      15 |   call set(c)
      16 |   ret
      17 | }

Cross-tier correlation. The strand WAW race below is seen by both the
static checker and the dynamic shadow state; both observations share
one bundle fingerprint and render as one bundle with a witness per
tier:

  $ cat > waw.nvmir <<'EOF'
  > struct s_t { f: int, g: int }
  > 
  > func main() {
  > entry:
  >   p = alloc pmem s_t
  >   strand_begin 1
  >   store p->f, 1  @ waw.c:5
  >   flush exact p->f  @ waw.c:6
  >   strand_end 1
  >   strand_begin 2
  >   store p->f, 2  @ waw.c:9
  >   flush exact p->f  @ waw.c:10
  >   strand_end 2
  >   fence  @ waw.c:12
  >   ret
  > }
  > EOF
  $ deepmc explain waw.nvmir --strand --entry main | head -10
  explain waw.nvmir (strand model): 2 witness(es) in 1 evidence bundle(s)
  
  == bundle #1 f42f7bf0495857e4 [strand-dependence] waw.c:9 (main) ==
  tiers: static+dynamic
  [static] witness 32378ae679bb85fa — strands 1 and 2 both write n0.f; dependent strands must not persist concurrently
    store              W n0.f                   @ waw.c:9
    covering-flush     F n0.f                   @ waw.c:10
    ordering-fence     FENCE                    @ waw.c:12
  [dynamic] witness 9ceb58a924f88ea5 — WAW race: strands 1 and 2 both write obj0[0] without an ordering barrier (previous write at waw.c:5)
    shadow transition (strand 2, 0 fence(s) seen): shadow obj0[0]: written(strand 1, fence 0) -> written(strand 2, fence 0) with no ordering barrier

A fuzz witness carries the reproducing genome and the schedule's
coverage digest; the delete-fence shape below is invisible to the
fixed schedule, so the static slice and the fuzz genome correlate
into one bundle:

  $ cat > sync.nvmir <<'EOF'
  > struct rec_t { a: int, b: int }
  > 
  > func sync_update(h: ptr rec_t) {
  > entry:
  >   tx_begin             @ sync.c:10
  >   tx_add exact h->a    @ sync.c:11
  >   store h->a, 1        @ sync.c:12
  >   flush exact h->a     @ sync.c:13
  >   tx_end               @ sync.c:15
  >   tx_begin             @ sync.c:20
  >   tx_add exact h->b    @ sync.c:21
  >   store h->b, 2        @ sync.c:22
  >   flush exact h->b     @ sync.c:23
  >   fence                @ sync.c:24
  >   tx_end               @ sync.c:25
  >   ret
  > }
  > 
  > func main() {
  > entry:
  >   h = alloc pmem rec_t
  >   call sync_update(h)
  >   ret
  > }
  > EOF
  $ deepmc explain sync.nvmir --entry main --fuzz 12 --seed 1 | head -17
  explain sync.nvmir (strict model): 2 witness(es) in 1 evidence bundle(s)
  
  == bundle #1 ade4bf6161cbadb5 [missing-persist-barrier] sync.c:13 (sync_update) ==
  tiers: static+fuzz
  [static] witness 51854af179ee8d00 — flush of n1.a is not followed by a persist barrier before the next persistent operation (TX{ at sync.c:20)
    call path: sync_update
    written-store      W n1.a                   @ sync.c:12
    flush              F n1.a                   @ sync.c:13
    ordering-fence     FENCE                    @ sync.c:24
    tx-begin           TX{                      @ sync.c:10
    tx-end             }TX                      @ sync.c:15
  [fuzz] witness 134f838bed37bd24 — flush at sync.c:13 is unordered at the tx-end boundary: a crash at the injected delay point loses or reorders it (no fence since the write-back)
    genome: probe@2
    schedule: 19a29bcb71502c5c1d1dbbcb53d7a333
    transition: flush at sync.c:13 is unordered at the tx-end boundary: a crash at the injected delay point loses or reorders it (no fence since the write-back)
  
  annotated listing:

Crash-space witnesses carry the crash point, the persisted-subset
image id and the inconsistency; recovery witnesses add the corruption
record and the verdict. The journal exemplar exercises both:

  $ deepmc explain ../../examples/programs/journal_recover.nvmir --epoch --entry main --crash --recover 2>/dev/null | grep -E '== bundle|tiers:|crash at|corruption:'
  == bundle #1 2d6cd280d36e1144 [semantic-mismatch] jrec.c:23 (prepare) ==
  tiers: static
  == bundle #2 fbafe45f205ef57e [silent-corruption-accept] jrec.c:32 (recover) ==
  tiers: recover
    crash at point 1, image cbf29ce484222325 (verdict silent-accept)
    corruption: 0:0/torn-line
  == bundle #3 bd092f0d1dfe0bde [unguarded-recovery-read] jrec.c:32 (recover) ==
  tiers: recover
    crash at point 1, image cbf29ce484222325 (verdict silent-accept)
    corruption: 0:0/torn-line
  == bundle #4 dc03f61628ed55ff [unguarded-recovery-read] jrec.c:33 (recover) ==
  tiers: recover
    crash at point 4, image cbf29ce484222325 (verdict silent-accept)
    corruption: 0:1/torn-line

An unflushed write that reaches program exit is a crash-space
inconsistency; with no warning to anchor to, it forms its own bundle
keyed by the witness fingerprint:

  $ cat > lost.nvmir <<'EOF'
  > struct cell_t { v: int }
  > 
  > func main() {
  > entry:
  >   c = alloc pmem cell_t
  >   store c->v, 42  @ cell.c:5
  >   ret
  > }
  > EOF
  $ deepmc explain lost.nvmir --entry main --crash | grep -A4 'crash-space'
  == bundle #2 5a5486df89d802bd crash-space inconsistency ==
  tiers: crash
  [crash] witness 5a5486df89d802bd
    crash at exit, image cbf29ce484222325
    persisted: (none)

The machine form mirrors the report schema -- bundles with per-tier
evidence, each witness tagged with its tier and content fingerprint:

  $ deepmc explain sync.nvmir --entry main --fuzz 12 --seed 1 --json | grep -o '"[a-z_]*":' | sort -u
  "bundle":
  "bundles":
  "call_path":
  "category":
  "evidence":
  "file":
  "fingerprint":
  "function":
  "genome":
  "line":
  "message":
  "model":
  "origin":
  "role":
  "rule":
  "schedule":
  "slice":
  "tier":
  "tiers":
  "transition":
  "warning":
  "what":
  "witness":

--html embeds each warning's witness as a collapsed evidence block in
the standard report:

  $ deepmc explain waw.nvmir --strand --entry main --html w.html > /dev/null
  $ grep -c 'details class="witness"' w.html
  1

Witness capture is explain's own switch: a plain `deepmc check` of the
same program never pays for capture and emits no witness fields:

  $ deepmc check sync.nvmir --json 2>/dev/null | grep -c '"witness"'
  0
  [1]
