The checker-throughput section prints a three-configuration table.
Timings and counts vary per host, so digits are normalized away and
runs of spaces collapsed; the shape and labels are deterministic:

  $ deepmc-bench perf | sed -E 's/[0-9]+(\.[0-9]+)?/N/g; s/ +/ /g'
  
  Checker throughput: streaming engine + persistent domain pool
  =============================================================
  workload: N programs, N events per sweep, best of N
  ------------------------------------------------------------------------------------------------
  legacy (materialized, N domain) N ms N events/s N peak paths
  streaming (N domain) N ms N events/s N peak paths
  streaming (N domains) N ms N events/s N peak paths
  ------------------------------------------------------------------------------------------------
  speedup vs legacy: Nx; speedup vs N domain: Nx
  peak live paths: N streaming vs N materialized


With --json the same run also writes BENCH_checker.json next to the
working directory, carrying one record per configuration plus the two
speedup ratios:

  $ deepmc-bench perf --json > /dev/null
  $ grep -c '"events_per_sec"' BENCH_checker.json
  3
  $ grep -c '"peak_paths"' BENCH_checker.json
  3
  $ grep -o '"speedup_vs_legacy"' BENCH_checker.json
  "speedup_vs_legacy"
  $ grep -o '"speedup_vs_1_domain"' BENCH_checker.json
  "speedup_vs_1_domain"
  $ grep -o '"domains"' BENCH_checker.json
  "domains"
  $ grep -o '"telemetry"' BENCH_checker.json
  "telemetry"

The figure12 section drives the pool-backed concurrent workloads; with
--json it writes BENCH_dynamic.json with one record per operation mix
(5 Memcached + 5 Redis + 6 NStore = 16), the measured overhead band,
the paper's band, and the client-domain scaling measurement:

  $ DEEPMC_BENCH_TXS=400 deepmc-bench figure12 --json > /dev/null
  $ grep -c '"overhead_pct"' BENCH_dynamic.json
  16
  $ grep -c '"baseline_tps"' BENCH_dynamic.json
  17
  $ grep -o '"overhead_band_pct"' BENCH_dynamic.json
  "overhead_band_pct"
  $ grep -o '"paper_band_pct"' BENCH_dynamic.json
  "paper_band_pct"
  $ grep -o '"scaling"' BENCH_dynamic.json
  "scaling"
  $ grep -o '"speedup"' BENCH_dynamic.json
  "speedup"
  $ grep -o '"pool_domains"' BENCH_dynamic.json
  "pool_domains"
  $ grep -o '"telemetry"' BENCH_dynamic.json
  "telemetry"

The recall section replays the injection campaign over the corpus and
the strand exemplar; with --json it writes BENCH_inject.json with one
row per operator (11, the three recovery-tier operators admitting no
site on the paper corpus), three detector cells per row, and the
campaign-level acceptance fields. The offset lattice closed the
pointer-arithmetic blind spot, so the false-negative list is empty and
"operator" appears only in the 11 per-operator rows. DEEPMC_BENCH_SEED
drives every randomized path:

  $ DEEPMC_BENCH_SEED=1 deepmc-bench recall --json > /dev/null
  $ grep -c '"operator"' BENCH_inject.json
  11
  $ grep -c '"recall"' BENCH_inject.json
  33
  $ grep -c '"precision"' BENCH_inject.json
  33
  $ grep -o '"seed": 1' BENCH_inject.json
  "seed": 1
  $ grep -o '"static_tier_recall"' BENCH_inject.json
  "static_tier_recall"
  $ grep -o '"static_tier_target_met": true' BENCH_inject.json
  "static_tier_target_met": true
  $ grep -o '"false_negatives"' BENCH_inject.json
  "false_negatives"
  $ grep -o '"known_blind_spot": 0' BENCH_inject.json
  "known_blind_spot": 0
  $ grep -o '"telemetry"' BENCH_inject.json
  "telemetry"

The recover section scores the three corruption operators against the
recovery executor over the recovery corpus: the CRC-guarded base
verifies clean, its unguarded twin is flagged, and every mutant is
detected — the recall row `make verify`'s recovery gate checks:

  $ DEEPMC_BENCH_SEED=1 deepmc-bench recover --json > /dev/null
  $ grep -c '"operator"' BENCH_recover.json
  3
  $ grep -o '"all_detected": true' BENCH_recover.json
  "all_detected": true
  $ grep -o '"recall": 1' BENCH_recover.json | head -1
  "recall": 1
  $ grep -c '"clean": true' BENCH_recover.json
  1
  $ grep -c '"clean": false' BENCH_recover.json
  1
  $ grep -o '"telemetry"' BENCH_recover.json
  "telemetry"
