The resident analyzer. `deepmc serve` keeps the interprocedural memo,
DSG summaries and per-root warnings warm across requests; the stdio
transport is a deterministic single client, so the request/response
JSON schema is pinned byte-for-byte.

The CLI surface:

  $ deepmc serve --help=plain | head -5
  NAME
         deepmc-serve - Run the resident incremental analyzer: a long-lived
         daemon that keeps DSG summaries, interprocedural memo results and
         per-root warnings cached across requests, invalidating only the
         functions whose IR content hash changed.

Exactly one transport must be selected:

  $ deepmc serve 2>&1 | head -1
  deepmc: choose one of --socket PATH, --stdio, --watch DIR

A check/edit/re-check conversation. The first sight of a program is a
miss (every function fingerprinted cold); a byte-identical
resubmission is a request-level hit (nothing is even parsed); an edit
to one function invalidates that function only and re-checks only the
root whose call-graph closure contains it -- the warnings text is
byte-identical to a cold check throughout:

  $ printf '%s\n' \
  >  '{"cmd":"check","name":"edit.nvmir","model":"strict","program":"struct r { a: int, b: int }\nfunc main() {\nentry:\n  p = alloc pmem r\n  store p->a, 1 @ m.c:10\n  ret\n}\nfunc iso() {\nentry:\n  q = alloc pmem r\n  store q->b, 2 @ i.c:20\n  flush exact q->b @ i.c:21\n  fence @ i.c:22\n  ret\n}\n"}' \
  >  '{"cmd":"check","name":"edit.nvmir","model":"strict","program":"struct r { a: int, b: int }\nfunc main() {\nentry:\n  p = alloc pmem r\n  store p->a, 1 @ m.c:10\n  ret\n}\nfunc iso() {\nentry:\n  q = alloc pmem r\n  store q->b, 2 @ i.c:20\n  flush exact q->b @ i.c:21\n  fence @ i.c:22\n  ret\n}\n"}' \
  >  '{"cmd":"check","name":"edit.nvmir","model":"strict","program":"struct r { a: int, b: int }\nfunc main() {\nentry:\n  p = alloc pmem r\n  store p->a, 1 @ m.c:10\n  ret\n}\nfunc iso() {\nentry:\n  q = alloc pmem r\n  store q->b, 3 @ i.c:20\n  flush exact q->b @ i.c:21\n  fence @ i.c:22\n  ret\n}\n"}' \
  > | deepmc serve --stdio --domains 1 2>/dev/null
  {"status":"ok","cache":"miss","model":"strict","warnings":[{"rule":"unflushed-write","category":"model-violation","model":"strict","file":"m.c","line":10,"function":"main","origin":"static","message":"write to n0.a is never flushed or logged before it must be durable"}],"trace_count":2,"event_count":4,"peak_paths":1,"functions_invalidated":2,"invalidated":["iso","main"],"roots_rechecked":["main","iso"],"roots_reused":[],"trace_id":"000001-fb7ce4d2"}
  {"status":"ok","cache":"hit","model":"strict","warnings":[{"rule":"unflushed-write","category":"model-violation","model":"strict","file":"m.c","line":10,"function":"main","origin":"static","message":"write to n0.a is never flushed or logged before it must be durable"}],"trace_count":2,"event_count":4,"peak_paths":1,"functions_invalidated":0,"invalidated":[],"roots_rechecked":[],"roots_reused":[],"trace_id":"000002-fb7ce4d2"}
  {"status":"ok","cache":"partial","model":"strict","warnings":[{"rule":"unflushed-write","category":"model-violation","model":"strict","file":"m.c","line":10,"function":"main","origin":"static","message":"write to n0.a is never flushed or logged before it must be durable"}],"trace_count":2,"event_count":4,"peak_paths":1,"functions_invalidated":1,"invalidated":["iso"],"roots_rechecked":["iso"],"roots_reused":["main"],"trace_id":"000003-cfefeab1"}

Every response carries a trace id -- the request sequence number plus
a digest of the request itself -- linking the reply to the daemon's
`serve-request' Obs span. Ids are deterministic, so replaying a
conversation in a fresh daemon reproduces the responses byte-for-byte,
trace ids included; and for one request asked twice, the warm (hit)
answer differs from the cold (miss) answer only in cache bookkeeping
and the sequence half of the trace id -- the digest half and the
warnings payload are byte-identical:

  $ printf '%s\n' \
  >  '{"cmd":"check","name":"t.nvmir","model":"strict","program":"struct r { a: int }\nfunc main() {\nentry:\n  p = alloc pmem r\n  store p->a, 1 @ m.c:10\n  ret\n}\n"}' \
  >  '{"cmd":"check","name":"t.nvmir","model":"strict","program":"struct r { a: int }\nfunc main() {\nentry:\n  p = alloc pmem r\n  store p->a, 1 @ m.c:10\n  ret\n}\n"}' \
  > | deepmc serve --stdio --domains 1 2>/dev/null > conv1.out
  $ printf '%s\n' \
  >  '{"cmd":"check","name":"t.nvmir","model":"strict","program":"struct r { a: int }\nfunc main() {\nentry:\n  p = alloc pmem r\n  store p->a, 1 @ m.c:10\n  ret\n}\n"}' \
  >  '{"cmd":"check","name":"t.nvmir","model":"strict","program":"struct r { a: int }\nfunc main() {\nentry:\n  p = alloc pmem r\n  store p->a, 1 @ m.c:10\n  ret\n}\n"}' \
  > | deepmc serve --stdio --domains 1 2>/dev/null > conv2.out
  $ diff conv1.out conv2.out && echo replay byte-identical
  replay byte-identical
  $ sed -E 's/.*"trace_id":"[0-9]+-([0-9a-f]+)".*/\1/' conv1.out | sort -u | wc -l | tr -d ' '
  1
  $ grep -o '"warnings":\[[^]]*\]' conv1.out | sort -u | wc -l | tr -d ' '
  1
  $ sed -E 's/,"trace_id":"[^"]*"//' conv1.out | grep -c '"trace_id"'
  0
  [1]

Injection requests run the mutation operators server-side and memoize
by text; malformed input of any kind is an error response, never a
dead daemon; shutdown echoes the request id:

  $ printf '%s\n' \
  >  '{"cmd":"inject","name":"edit.nvmir","model":"strict","operators":["delete-flush"],"program":"struct r { b: int }\nfunc iso() {\nentry:\n  q = alloc pmem r\n  store q->b, 2 @ i.c:20\n  flush exact q->b @ i.c:21\n  fence @ i.c:22\n  ret\n}\n"}' \
  >  'not json' \
  >  '{"cmd":"frobnicate"}' \
  >  '{"cmd":"check","name":"bad.nvmir","program":"func broken("}' \
  >  '{"cmd":"shutdown","id":9}' \
  > | deepmc serve --stdio --domains 1 2>/dev/null
  {"status":"ok","cache":"miss","mutants":["edit.nvmir/delete-flush/0"],"mutant_count":1,"trace_id":"000001-af0b74e9"}
  {"status":"error","error":"invalid literal at 0"}
  {"status":"error","error":"unknown cmd \"frobnicate\"","trace_id":"000002-352f4674"}
  {"status":"error","error":"parse error at line 1: expected parameter name, got end of input","trace_id":"000003-490accd9"}
  {"id":9,"status":"ok","bye":true,"trace_id":"000004-cd5eb130"}

The stats request reports the served count, the shared pool (including
worker parks: idle workers sit in a blocking wait, not a spin), and
the live metrics registry; values are host-dependent, the schema is
not:

  $ printf '%s\n' '{"cmd":"stats"}' '{"cmd":"shutdown"}' \
  > | deepmc serve --stdio --domains 1 2>/dev/null | sed -E 's/[0-9]+/N/g'
  {"status":"ok","served":N,"pool":{"size":N,"alive":N,"jobs":N,"chunks":N,"parks":N},"metrics":{},"trace_id":"N-bNaNfN"}
  {"status":"ok","bye":true,"trace_id":"N-NacdNcN"}

Watch mode polls a directory and re-checks only files whose content
digest changed; --once does a single pass (every file is new to a
fresh daemon), printing one line per re-check in sorted order:

  $ mkdir wdir
  $ cat > wdir/buggy.nvmir <<'EOF'
  > struct r { a: int }
  > func main() {
  > entry:
  >   p = alloc pmem r
  >   store p->a, 1 @ m.c:10
  >   ret
  > }
  > EOF
  $ cat > wdir/clean.nvmir <<'EOF'
  > struct r { b: int }
  > func iso() {
  > entry:
  >   q = alloc pmem r
  >   store q->b, 2 @ i.c:20
  >   flush exact q->b @ i.c:21
  >   fence @ i.c:22
  >   ret
  > }
  > EOF
  $ deepmc serve --watch wdir --once --strict 2>/dev/null
  buggy.nvmir: 1 warning(s) [miss, 1 function(s) invalidated, 1/1 root(s) re-checked]
  clean.nvmir: 0 warning(s) [miss, 1 function(s) invalidated, 1/1 root(s) re-checked]

The socket transport serves `deepmc check --connect`: same warnings
and exit code as a local check, and the daemon's cache persists across
client processes -- the second client's resubmission is a hit.
--max-requests 2 makes the daemon exit on its own afterwards:

  $ deepmc serve --socket d.sock --domains 1 --max-requests 2 2>/dev/null &
  $ for _ in $(seq 100); do [ -S d.sock ] && break; sleep 0.1; done
  $ deepmc check wdir/buggy.nvmir --connect d.sock --strict
  WARNING [unflushed-write] m.c:10 (model-violation, strict model, static):
    write to n0.a is never flushed or logged before it must be durable
  1 warning(s) [cache miss, 1 function(s) invalidated]
  deepmc: 1 warning(s)
  [124]
  $ deepmc check wdir/buggy.nvmir --connect d.sock --strict --json 2>/dev/null | grep '"cache"'
    "cache": "hit",
  $ wait

--connect refuses dynamic-analysis options the daemon does not serve:

  $ deepmc check wdir/buggy.nvmir --connect d.sock --entry main 2>&1 | head -1
  deepmc: --connect serves static checks only; drop --entry

The serve benchmark replays an edit/re-check workload over the corpus
(one random function mutated per round) and writes BENCH_serve.json;
warm warnings must stay byte-identical to cold, and the measured
speedup must clear the 10x acceptance floor:

  $ DEEPMC_SERVE_ROUNDS=1 DEEPMC_BENCH_SEED=1 deepmc-bench serve --json > /dev/null
  $ grep -o '"identical_warnings": true' BENCH_serve.json
  "identical_warnings": true
  $ grep -m1 -o '"speedup": [0-9.eE+]*' BENCH_serve.json | awk '{if ($2 + 0 >= 10) print "speedup >= 10x"}'
  speedup >= 10x
  $ grep -o '"worker_parks"' BENCH_serve.json
  "worker_parks"
  $ grep -o '"functions_invalidated"' BENCH_serve.json | head -1
  "functions_invalidated"
  $ grep -o '"serve.cache_hits"' BENCH_serve.json
  "serve.cache_hits"
  $ grep -o '"serve.cache_misses"' BENCH_serve.json
  "serve.cache_misses"
  $ grep -o '"telemetry"' BENCH_serve.json
  "telemetry"
