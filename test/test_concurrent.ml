(* Differential tests for the concurrent dynamic checker: N clients
   driving their own heaps under one checker (bound listeners, sharded
   shadow segment) must report exactly what a sequential execution of
   the same per-client operation streams reports — same warnings, same
   summary — regardless of domain interleaving. *)

let tc = Alcotest.test_case
let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Synthetic per-client workloads *)

type op = Write of int | Flush of int | Fence | Epoch_begin | Epoch_end

let nslots = 8

(* A client's operation stream: a few epochs, each writing some slots,
   flushing most of them (sometimes redundantly — Multiple_flushes) and
   leaving some volatile at the epoch boundary (Unflushed_write). Fully
   determined by the seed. *)
let gen_client_ops seed =
  let rng = Workloads.Gen.rng seed in
  let epochs = 2 + Workloads.Gen.next_int rng 3 in
  List.concat
    (List.init epochs (fun _ ->
         let writes = 1 + Workloads.Gen.next_int rng 4 in
         let body =
           List.concat
             (List.init writes (fun _ ->
                  let slot = Workloads.Gen.next_int rng nslots in
                  let roll = Workloads.Gen.next_int rng 10 in
                  if roll < 5 then
                    (* flushed write *)
                    [ Write slot; Flush slot; Fence ]
                  else if roll < 8 then
                    (* clean re-flush: redundant write-back *)
                    [ Write slot; Flush slot; Fence; Flush slot; Fence ]
                  else (* left volatile: unflushed at epoch end *)
                    [ Write slot ]))
         in
         (Epoch_begin :: body) @ [ Epoch_end ]))

let apply pmem obj = function
  | Write s ->
    Runtime.Pmem.write pmem
      { Runtime.Pmem.obj_id = obj; slot = s }
      (Runtime.Value.Vint s)
  | Flush s ->
    Runtime.Pmem.flush_range pmem ~obj_id:obj ~first_slot:s ~nslots:1 ()
  | Fence -> Runtime.Pmem.fence pmem ()
  | Epoch_begin -> Runtime.Pmem.epoch_begin pmem ()
  | Epoch_end -> Runtime.Pmem.epoch_end pmem ()

(* Execute the per-client streams under one checker; [parallel] selects
   pool domains vs a plain sequential loop over the same contexts. *)
let run ~parallel ops_per_client =
  let nclients = List.length ops_per_client in
  let checker = Runtime.Dynamic.create ~model:Analysis.Model.Epoch () in
  let contexts =
    List.mapi
      (fun c ops ->
        let pmem =
          Runtime.Pmem.create
            ~first_obj_id:(c * Workloads.Harness.obj_id_stride)
            ~obj_id_limit:((c + 1) * Workloads.Harness.obj_id_stride)
            ()
        in
        Runtime.Dynamic.attach_client checker ~thread:c pmem;
        let tenv = Nvmir.Ty.env_create () in
        let obj =
          Runtime.Pmem.alloc pmem ~tenv ~persistent:true
            (Nvmir.Ty.Array (Nvmir.Ty.Int, nslots))
        in
        (pmem, obj, ops))
      ops_per_client
  in
  let exec (pmem, obj, ops) = List.iter (apply pmem obj) ops in
  if parallel then
    ignore (Pool.map ~domains:nclients ~chunk:1 (Pool.default ()) exec contexts)
  else List.iter exec contexts;
  (Runtime.Dynamic.warnings checker, Runtime.Dynamic.summary checker)

let warning_keys ws =
  List.map
    (fun (w : Analysis.Warning.t) ->
      (Analysis.Warning.rule_name w.Analysis.Warning.rule,
       w.Analysis.Warning.message))
    ws

let summary_tuple (s : Runtime.Dynamic.summary) =
  ( s.Runtime.Dynamic.waw,
    s.Runtime.Dynamic.raw,
    s.Runtime.Dynamic.unflushed,
    s.Runtime.Dynamic.redundant,
    s.Runtime.Dynamic.tracked_cells,
    s.Runtime.Dynamic.warning_count )

let client_streams seed nclients =
  List.init nclients (fun c -> gen_client_ops ((seed * 31) + c))

(* ------------------------------------------------------------------ *)
(* Directed tests *)

let test_parallel_equals_sequential_directed () =
  let ops = client_streams 7 3 in
  let ws_seq, s_seq = run ~parallel:false ops in
  let ws_par, s_par = run ~parallel:true ops in
  check
    Alcotest.(list (pair string string))
    "same warnings" (warning_keys ws_seq) (warning_keys ws_par);
  check
    Alcotest.(pair (pair int int) (pair (pair int int) (pair int int)))
    "same summary"
    (let a, b, c, d, e, f = summary_tuple s_seq in
     ((a, b), ((c, d), (e, f))))
    (let a, b, c, d, e, f = summary_tuple s_par in
     ((a, b), ((c, d), (e, f))))

let test_parallel_run_deterministic () =
  let ops = client_streams 11 4 in
  let ws1, _ = run ~parallel:true ops in
  let ws2, _ = run ~parallel:true ops in
  check
    Alcotest.(list (pair string string))
    "identical across runs" (warning_keys ws1) (warning_keys ws2)

(* Warnings from all client threads aggregate into one report. *)
let test_warnings_aggregate_across_clients () =
  (* every client performs exactly one clean re-flush *)
  let redundant_epoch =
    [ Epoch_begin; Write 0; Flush 0; Fence; Flush 0; Fence; Epoch_end ]
  in
  let ws, s = run ~parallel:true [ redundant_epoch; redundant_epoch ] in
  check Alcotest.int "one redundant flush per client" 2
    s.Runtime.Dynamic.redundant;
  check Alcotest.int "both warnings stored" 2 (List.length ws);
  (* disjoint object-id ranges: the two warnings name different objects *)
  match warning_keys ws with
  | [ (r1, m1); (r2, m2) ] ->
    check Alcotest.string "same rule" r1 r2;
    check Alcotest.bool "distinct heaps" true (m1 <> m2)
  | _ -> Alcotest.fail "expected exactly two warnings"

(* Driver end-to-end: N client domains executing the entry report the
   same deduplicated (rule, line) set as the single-domain run. *)
let test_driver_clients_differential () =
  let src =
    {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  epoch_begin
  store p->f, 1
  flush exact p->f
  fence
  flush exact p->f
  fence
  store p->g, 2
  epoch_end
  ret
}
|}
  in
  let prog = Nvmir.Parser.parse src in
  let driver = Deepmc.Driver.make Analysis.Model.Epoch in
  let keys (r : Deepmc.Driver.report) =
    List.sort_uniq compare
      (List.map
         (fun (w : Analysis.Warning.t) ->
           (Analysis.Warning.rule_name w.Analysis.Warning.rule,
            w.Analysis.Warning.loc.Nvmir.Loc.line))
         r.Deepmc.Driver.warnings)
  in
  let r1 = Deepmc.Driver.analyze driver ~entry:"main" prog in
  let r4 = Deepmc.Driver.analyze driver ~entry:"main" ~clients:4 prog in
  (match r4.Deepmc.Driver.dynamic with
  | Deepmc.Driver.Dynamic_ok (s, _) ->
    check Alcotest.bool "cells tracked in all client heaps" true
      (s.Runtime.Dynamic.tracked_cells > 0)
  | Deepmc.Driver.Dynamic_skipped reason ->
    Alcotest.fail ("dynamic skipped: " ^ reason));
  check
    Alcotest.(list (pair string int))
    "deduplicated warnings agree" (keys r1) (keys r4)

(* ------------------------------------------------------------------ *)
(* Property: for random seeds and client counts, the parallel checker
   reports the same warning multiset as the sequential engine. *)

let prop_parallel_matches_sequential =
  QCheck.Test.make ~name:"parallel checker == sequential engine" ~count:25
    QCheck.(pair (map abs small_int) (int_range 1 5))
    (fun (seed, nclients) ->
      let ops = client_streams seed nclients in
      let ws_seq, s_seq = run ~parallel:false ops in
      let ws_par, s_par = run ~parallel:true ops in
      if warning_keys ws_seq <> warning_keys ws_par then
        QCheck.Test.fail_reportf
          "warning mismatch for seed %d, %d client(s): %d sequential vs %d \
           parallel"
          seed nclients (List.length ws_seq) (List.length ws_par);
      if summary_tuple s_seq <> summary_tuple s_par then
        QCheck.Test.fail_reportf
          "summary mismatch for seed %d, %d client(s): %a vs %a" seed nclients
          Runtime.Dynamic.pp_summary s_seq Runtime.Dynamic.pp_summary s_par;
      true)

(* ------------------------------------------------------------------ *)
(* Overlapping client heap id windows must be rejected at attachment:
   two heaps handing out the same object ids under one checker would
   silently alias shadow-segment keys (client A's cells masking B's). *)

let test_overlapping_heap_ranges_rejected () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  (* same window twice: rejected *)
  let ck = Runtime.Dynamic.create ~model:Analysis.Model.Epoch () in
  Runtime.Dynamic.attach_client ck ~thread:0 (Runtime.Pmem.create ());
  check Alcotest.bool "identical unbounded windows rejected" true
    (raises (fun () ->
         Runtime.Dynamic.attach_client ck ~thread:1 (Runtime.Pmem.create ())));
  (* unbounded tail overlapping a later client's window: rejected *)
  let ck = Runtime.Dynamic.create ~model:Analysis.Model.Epoch () in
  Runtime.Dynamic.attach_client ck ~thread:0 (Runtime.Pmem.create ());
  check Alcotest.bool "unbounded window swallows later stride" true
    (raises (fun () ->
         Runtime.Dynamic.attach_client ck ~thread:1
           (Runtime.Pmem.create ~first_obj_id:1024 ~obj_id_limit:2048 ())));
  (* disjoint strides: accepted *)
  let ck = Runtime.Dynamic.create ~model:Analysis.Model.Epoch () in
  List.iter
    (fun c ->
      Runtime.Dynamic.attach_client ck ~thread:c
        (Runtime.Pmem.create ~first_obj_id:(c * 1024)
           ~obj_id_limit:((c + 1) * 1024) ()))
    [ 0; 1; 2; 3 ];
  (* a bounded heap refuses to allocate past its window instead of
     spilling into the neighbour's *)
  let pm = Runtime.Pmem.create ~first_obj_id:0 ~obj_id_limit:2 () in
  let tenv = Nvmir.Ty.env_create () in
  ignore (Runtime.Pmem.alloc pm ~tenv ~persistent:true Nvmir.Ty.Int);
  ignore (Runtime.Pmem.alloc pm ~tenv ~persistent:true Nvmir.Ty.Int);
  check Alcotest.bool "alloc past the id window rejected" true
    (raises (fun () ->
         Runtime.Pmem.alloc pm ~tenv ~persistent:true Nvmir.Ty.Int))

let suite =
  [
    tc "parallel == sequential (directed)" `Quick
      test_parallel_equals_sequential_directed;
    tc "overlapping heap ranges rejected" `Quick
      test_overlapping_heap_ranges_rejected;
    tc "parallel run deterministic" `Quick test_parallel_run_deterministic;
    tc "warnings aggregate across clients" `Quick
      test_warnings_aggregate_across_clients;
    tc "driver --clients differential" `Quick test_driver_clients_differential;
    QCheck_alcotest.to_alcotest prop_parallel_matches_sequential;
  ]
