(* Tests for the multicore analysis driver. *)

let tc = Alcotest.test_case
let check = Alcotest.check

let test_map_preserves_order () =
  let items = List.init 100 Fun.id in
  check
    Alcotest.(list int)
    "order kept"
    (List.map (fun x -> x * x) items)
    (Deepmc.Parallel.map ~domains:4 (fun x -> x * x) items)

let test_map_edge_cases () =
  check Alcotest.(list int) "empty" [] (Deepmc.Parallel.map (fun x -> x) []);
  check Alcotest.(list int) "single" [ 7 ]
    (Deepmc.Parallel.map ~domains:8 (fun x -> x) [ 7 ]);
  check Alcotest.(list int) "one domain" [ 1; 2; 3 ]
    (Deepmc.Parallel.map ~domains:1 Fun.id [ 1; 2; 3 ])

let test_map_more_domains_than_items () =
  check Alcotest.(list int) "domains capped to items" [ 2; 4 ]
    (Deepmc.Parallel.map ~domains:16 (fun x -> x * 2) [ 1; 2 ])

(* a raising worker must propagate the exception from the join, not
   leave spawned domains hanging or return partial results *)
let test_map_propagates_exceptions () =
  let boom x = if x = 37 then failwith "boom" else x in
  let items = List.init 100 Fun.id in
  (match Deepmc.Parallel.map ~domains:4 boom items with
  | _ -> Alcotest.fail "expected the worker's exception"
  | exception Failure m -> check Alcotest.string "original message" "boom" m);
  (* the single-domain path raises too *)
  match Deepmc.Parallel.map ~domains:1 boom items with
  | _ -> Alcotest.fail "expected the worker's exception (1 domain)"
  | exception Failure m -> check Alcotest.string "original message" "boom" m

(* after a failure the pool is fully joined, so the next map works *)
let test_map_usable_after_failure () =
  (try
     ignore
       (Deepmc.Parallel.map ~domains:4
          (fun x -> if x = 5 then raise Exit else x)
          (List.init 50 Fun.id))
   with Exit -> ());
  check
    Alcotest.(list int)
    "subsequent map is unaffected" [ 2; 4; 6 ]
    (Deepmc.Parallel.map ~domains:4 (fun x -> x * 2) [ 1; 2; 3 ])

let corpus_jobs () =
  List.map
    (fun (p : Corpus.Types.program) ->
      ( p.Corpus.Types.name,
        Corpus.Types.model p,
        Corpus.Types.parse p,
        p.Corpus.Types.roots ))
    Corpus.Registry.all

let test_check_many_matches_sequential () =
  let jobs = corpus_jobs () in
  let parallel = Deepmc.Parallel.check_many ~domains:4 jobs in
  let sequential =
    List.map
      (fun (name, model, prog, roots) ->
        let r = Analysis.Checker.check ~roots ~model prog in
        (name, List.length r.Analysis.Checker.warnings))
      jobs
  in
  let got =
    List.map
      (fun (r : Deepmc.Parallel.corpus_result) ->
        (r.Deepmc.Parallel.program, List.length r.Deepmc.Parallel.warnings))
      parallel
  in
  check Alcotest.(list (pair string int)) "same results" sequential got

let test_check_many_total_static_warnings () =
  (* the static side of Table 1: all 48 warnings — the offset lattice
     made the historically dynamic-only catches statically visible *)
  let results = Deepmc.Parallel.check_many ~domains:4 (corpus_jobs ()) in
  let total =
    List.fold_left
      (fun a (r : Deepmc.Parallel.corpus_result) ->
        a + List.length r.Deepmc.Parallel.warnings)
      0 results
  in
  check Alcotest.int "48 static warnings" 48 total

let suite =
  [
    tc "map: preserves order" `Quick test_map_preserves_order;
    tc "map: edge cases" `Quick test_map_edge_cases;
    tc "map: domains capped" `Quick test_map_more_domains_than_items;
    tc "map: worker exception propagates" `Quick
      test_map_propagates_exceptions;
    tc "map: pool usable after a failure" `Quick test_map_usable_after_failure;
    tc "check_many: matches sequential" `Quick
      test_check_many_matches_sequential;
    tc "check_many: static warning total" `Quick
      test_check_many_total_static_warnings;
  ]
