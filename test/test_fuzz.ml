(* The interleaving fuzzer (lib/fuzz): executions and campaigns are
   deterministic (same seed and genome, byte-identical coverage
   fingerprint and warning set, whatever the pool's domain count); the
   purpose-split RNG kills the historical [seed + client] collision;
   and one directed workload per inconsistency class is provably missed
   by the fixed-schedule replay yet found by a guided campaign within a
   pinned budget. *)

let tc = Alcotest.test_case
let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Directed workload 1: inter-thread persistency inconsistency.
   Client 1 reads client 0's not-yet-persisted [src] and makes its own
   derived [dst] durable; [src] and [dst] live on different cache lines
   so the consumer's flush cannot accidentally persist the source. The
   fixed schedule runs client 0 to completion first (its fence drains
   everything), so only a fuzzed context switch exposes the race. *)

let interthread_src =
  {|
struct pair_t { src: int, p1: int, p2: int, p3: int, p4: int, p5: int,
                p6: int, p7: int, dst: int }

func fuzz_setup() {
entry:
  p = alloc pmem pair_t
  ret p
}

func fuzz_client_0(p: ptr pair_t) {
entry:
  epoch_begin          @ it.c:10
  store p->src, 42     @ it.c:11
  flush exact p->src   @ it.c:12
  fence                @ it.c:13
  epoch_end            @ it.c:14
  ret
}

func fuzz_client_1(p: ptr pair_t) {
entry:
  epoch_begin          @ it.c:20
  x = load p->src      @ it.c:21
  store p->dst, x      @ it.c:22
  flush exact p->dst   @ it.c:23
  fence                @ it.c:24
  epoch_end            @ it.c:25
  ret
}
|}

(* Directed workload 2: synchronization-boundary durability. The first
   transaction's flush is ordered by nothing but the commit fence of
   [tx_end] itself — the delete-fence shape the injection campaign
   persists as a dynamic-tier false negative. The fixed-schedule replay
   sails through (the commit fence retroactively drains the flush);
   only a delay probe at the [tx_end] boundary sees it in flight. *)

let sync_src =
  {|
struct rec_t { a: int, b: int }

func sync_update(h: ptr rec_t) {
entry:
  tx_begin             @ sync.c:10
  tx_add exact h->a    @ sync.c:11
  store h->a, 1        @ sync.c:12
  flush exact h->a     @ sync.c:13
  tx_end               @ sync.c:15
  tx_begin             @ sync.c:20
  tx_add exact h->b    @ sync.c:21
  store h->b, 2        @ sync.c:22
  flush exact h->b     @ sync.c:23
  fence                @ sync.c:24
  tx_end               @ sync.c:25
  ret
}

func main() {
entry:
  h = alloc pmem rec_t
  call sync_update(h)
  ret
}
|}

let interthread_prog = lazy (Nvmir.Parser.parse ~file:"it.nvmir" interthread_src)
let sync_prog = lazy (Nvmir.Parser.parse ~file:"sync.nvmir" sync_src)

let interthread_target =
  lazy
    {
      Fuzz.Campaign.tname = "interthread";
      prog = Lazy.force interthread_prog;
      model = Analysis.Model.Epoch;
      entry = "main";
      entry_args = [];
      clients = 2;
    }

let sync_target =
  lazy
    {
      Fuzz.Campaign.tname = "sync";
      prog = Lazy.force sync_prog;
      model = Analysis.Model.Epoch;
      entry = "main";
      entry_args = [];
      clients = 1;
    }

let has_rule rule ws =
  List.exists (fun (w : Analysis.Warning.t) -> w.Analysis.Warning.rule = rule) ws

let warning_keys ws = List.map Analysis.Warning.dedup_key ws

(* ------------------------------------------------------------------ *)
(* Determinism: an execution is a pure function of (program, genome). *)

let genome_of_ints probe at target =
  let g = Fuzz.Genome.probe (probe mod 16) in
  if target mod 3 = 0 then g
  else
    {
      g with
      Fuzz.Genome.switches =
        [ { Fuzz.Genome.at = at mod 16; target = 1 + (target mod 1) } ];
    }

let prop_exec_deterministic =
  QCheck.Test.make ~name:"same genome, byte-identical execution" ~count:40
    QCheck.(triple small_nat small_nat small_nat)
    (fun (probe, at, target) ->
      let genome = genome_of_ints probe at target in
      let run () =
        Fuzz.Exec.run
          ~prog:(Lazy.force interthread_prog)
          ~model:Analysis.Model.Epoch ~clients:2 ~genome ()
      in
      let a = run () and b = run () in
      String.equal a.Fuzz.Exec.fingerprint b.Fuzz.Exec.fingerprint
      && warning_keys a.Fuzz.Exec.warnings = warning_keys b.Fuzz.Exec.warnings
      && a.Fuzz.Exec.nboundaries = b.Fuzz.Exec.nboundaries)

let campaign_domain_independence () =
  let run domains =
    Fuzz.Campaign.run ~seed:7 ~budget:24 ~domains ~mode:Fuzz.Campaign.Guided
      (Lazy.force interthread_target)
  in
  let a = run 1 and b = run 3 in
  check Alcotest.string "coverage digest" a.Fuzz.Campaign.coverage
    b.Fuzz.Campaign.coverage;
  check Alcotest.int "novel schedules" a.Fuzz.Campaign.novel_schedules
    b.Fuzz.Campaign.novel_schedules;
  check Alcotest.int "pair bits" a.Fuzz.Campaign.pair_bits
    b.Fuzz.Campaign.pair_bits;
  check Alcotest.bool "warning sets" true
    (warning_keys a.Fuzz.Campaign.warnings
    = warning_keys b.Fuzz.Campaign.warnings)

(* ------------------------------------------------------------------ *)
(* RNG purpose-splitting: the concurrent harness used to seed client
   [c] with [Gen.rng (seed + c)], so (seed 5, client 1) and (seed 4,
   client 2) shared one stream. The split streams must collide neither
   across seeds nor across purposes, and must stay reproducible. *)

let draws rng = List.init 8 (fun _ -> Workloads.Gen.next_int rng 1_000_000)

let gen_stream_split () =
  let client seed c = draws (Workloads.Gen.stream seed (Workloads.Gen.Client c)) in
  let schedule seed i =
    draws (Workloads.Gen.stream seed (Workloads.Gen.Schedule i))
  in
  check Alcotest.bool "historical seed+c collision is gone" false
    (client 5 1 = client 4 2);
  check Alcotest.bool "adjacent clients differ" false (client 1 0 = client 1 1);
  check Alcotest.bool "purposes are independent streams" false
    (client 1 3 = schedule 1 3);
  check Alcotest.bool "streams are reproducible" true (client 9 2 = client 9 2)

(* ------------------------------------------------------------------ *)
(* Directed regressions: fixed schedule misses, guided campaign finds. *)

let directed_interthread () =
  let baseline =
    Fuzz.Exec.run
      ~prog:(Lazy.force interthread_prog)
      ~model:Analysis.Model.Epoch ~clients:2 ~genome:Fuzz.Genome.initial ()
  in
  check Alcotest.int "fixed schedule sees nothing" 0
    (List.length baseline.Fuzz.Exec.warnings);
  let o =
    Fuzz.Campaign.run ~seed:1 ~budget:24 ~mode:Fuzz.Campaign.Guided
      (Lazy.force interthread_target)
  in
  check Alcotest.int "campaign baseline replay is clean" 0
    (List.length o.Fuzz.Campaign.baseline_warnings);
  check Alcotest.bool "guided campaign exposes the inter-thread race" true
    (has_rule Analysis.Warning.Strand_dependence o.Fuzz.Campaign.warnings)

let directed_sync () =
  let baseline =
    Fuzz.Exec.run ~prog:(Lazy.force sync_prog) ~model:Analysis.Model.Epoch
      ~clients:1 ~genome:Fuzz.Genome.initial ()
  in
  check Alcotest.bool "fixed schedule misses the unordered flush" false
    (has_rule Analysis.Warning.Missing_persist_barrier
       baseline.Fuzz.Exec.warnings);
  let o =
    Fuzz.Campaign.run ~seed:1 ~budget:24 ~mode:Fuzz.Campaign.Guided
      (Lazy.force sync_target)
  in
  check Alcotest.bool "campaign baseline replay also misses it" false
    (has_rule Analysis.Warning.Missing_persist_barrier
       o.Fuzz.Campaign.baseline_warnings);
  check Alcotest.bool "probe at the tx boundary finds it" true
    (has_rule Analysis.Warning.Missing_persist_barrier o.Fuzz.Campaign.warnings)

(* The inter-thread detector's crash-image validation: if the producer
   persists before the consumer builds on the value, the candidate is a
   false positive and must be killed, not reported. The fixed schedule
   (producer runs to completion first) is exactly that case — covered
   by [directed_interthread]'s baseline assertion — so here we check
   the genome that found the race is replayable and stays validated. *)

let interthread_validated () =
  let run genome =
    Fuzz.Exec.run
      ~prog:(Lazy.force interthread_prog)
      ~model:Analysis.Model.Epoch ~clients:2 ~genome ()
  in
  let racy = run (Fuzz.Genome.switch_at ~at:1 ~target:1) in
  check Alcotest.bool "switch before the producer's flush races" true
    (has_rule Analysis.Warning.Strand_dependence racy.Fuzz.Exec.warnings);
  (* switching after the producer's fence (boundary 3) leaves nothing
     volatile for the consumer to build on: no warning *)
  let safe = run (Fuzz.Genome.switch_at ~at:3 ~target:1) in
  check Alcotest.bool "switch after the producer's fence is clean" false
    (has_rule Analysis.Warning.Strand_dependence safe.Fuzz.Exec.warnings)

(* A clean pointer-arithmetic generator program stays clean under every
   fuzzed schedule: the dynamic tier resolves the computed aliases the
   same way the static offset lattice does, so no schedule-dependent
   delta appears. *)
let ptr_arith_synth_campaign () =
  let cfg =
    {
      Corpus.Synth.default_config with
      Corpus.Synth.seed = 11;
      nfuncs = 6;
      calls_per_func = 1;
      buggy_fraction_pct = 0;
      ptr_arith = true;
    }
  in
  let prog, _ = Corpus.Synth.generate cfg in
  let target =
    {
      Fuzz.Campaign.tname = "synth-ptr-arith";
      prog;
      model = Analysis.Model.Strict;
      entry = "main";
      entry_args = [];
      clients = 1;
    }
  in
  let o = Fuzz.Campaign.run ~seed:1 ~budget:6 ~mode:Fuzz.Campaign.Guided target in
  check Alcotest.int "no schedule-dependent warnings on a clean program"
    (List.length o.Fuzz.Campaign.baseline_warnings)
    (List.length o.Fuzz.Campaign.warnings)

(* The workload fuzz targets honour the fuzzer's program convention and
   replay deterministically: every generator emits fuzz_setup plus one
   fuzz_client_<c> per client, and same (workload, seed, genome) means
   byte-identical campaigns. *)
let workload_targets_convention () =
  List.iter
    (fun (wname, (gen : Workloads.Fuzz_targets.gen)) ->
      let prog = gen ~clients:3 ~seed:5 () in
      check Alcotest.(list string) (wname ^ ": validates") []
        (List.map (Fmt.str "%a" Nvmir.Prog.pp_error)
           (Nvmir.Prog.validate prog));
      check Alcotest.bool (wname ^ ": fuzz_setup") true
        (Nvmir.Prog.find_func prog "fuzz_setup" <> None);
      for c = 0 to 2 do
        check Alcotest.bool
          (Fmt.str "%s: fuzz_client_%d" wname c)
          true
          (Nvmir.Prog.find_func prog (Fmt.str "fuzz_client_%d" c) <> None)
      done;
      let target =
        {
          Fuzz.Campaign.tname = wname;
          prog;
          model = Analysis.Model.Epoch;
          entry = "main";
          entry_args = [];
          clients = 3;
        }
      in
      let run () =
        Fuzz.Campaign.run ~seed:2 ~budget:5 ~mode:Fuzz.Campaign.Guided target
      in
      let a = run () and b = run () in
      check Alcotest.string
        (wname ^ ": campaign deterministic")
        a.Fuzz.Campaign.coverage b.Fuzz.Campaign.coverage)
    Workloads.Fuzz_targets.all

let suite =
  [
    tc "gen: purpose-split streams" `Quick gen_stream_split;
    tc "synth ptr-arith target stays clean" `Quick ptr_arith_synth_campaign;
    tc "workload targets: convention and determinism" `Quick
      workload_targets_convention;
    tc "campaign: domain-count independence" `Quick campaign_domain_independence;
    tc "directed: inter-thread inconsistency" `Quick directed_interthread;
    tc "directed: synchronization boundary" `Quick directed_sync;
    tc "directed: validation kills safe interleavings" `Quick
      interthread_validated;
    QCheck_alcotest.to_alcotest prop_exec_deterministic;
  ]
