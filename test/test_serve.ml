(* The resident analyzer (lib/serve): wire-protocol round-trips, the
   two-level cache's invalidation discipline (a one-function edit
   re-checks that function's memo-dependent callers and nothing else),
   worker parking, and the QCheck differential that pins the headline
   guarantee — a warm incremental re-check produces warnings
   byte-identical to a cold [Checker.check] of the same text. *)

module E = Inject.Evaluate
module P = Serve.Protocol

let tc = Alcotest.test_case
let check = Alcotest.check
let text_of prog = Fmt.str "%a" Nvmir.Prog.pp prog
let render w = Fmt.str "%a" Analysis.Warning.pp w

(* ------------------------------------------------------------------ *)
(* Protocol *)

let test_protocol_roundtrip () =
  let j =
    P.Obj
      [
        ("id", P.Int 7);
        ("neg", P.Int (-3));
        ("f", P.Float 1.5);
        ("s", P.String "line\nquote\"back\\slash\ttab");
        ("l", P.List [ P.Bool true; P.Bool false; P.Null; P.String "" ]);
        ("o", P.Obj []);
        ("e", P.List []);
      ]
  in
  match P.parse (P.to_line j) with
  | Ok j' -> check Alcotest.bool "round-trip preserves structure" true (j = j')
  | Error e -> Alcotest.fail ("round-trip parse failed: " ^ e)

let test_protocol_unicode () =
  (* clients that escape non-ASCII (python json.dumps) must round-trip
     through the daemon: BMP \u escapes decode to UTF-8 bytes *)
  (match P.parse "{\"s\":\"a\\u2014b\",\"nul\":\"\\u0000x\"}" with
  | Ok j ->
    check (Alcotest.option Alcotest.string) "em dash decodes"
      (Some "a\xe2\x80\x94b") (P.string_member "s" j);
    check (Alcotest.option Alcotest.string) "NUL decodes" (Some "\x00x")
      (P.string_member "nul" j)
  | Error e -> Alcotest.fail ("unicode parse failed: " ^ e));
  match P.parse "{\"s\":\"\\ud83d\\ude00\"}" with
  | Ok _ -> Alcotest.fail "surrogate pair must be rejected, not mis-encoded"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Directed invalidation: main -> helper -> leaf, plus the unrelated
   root [iso].  Editing [leaf]'s body must invalidate exactly [leaf]
   and re-check exactly the root whose call-graph closure contains it
   ([main]); [iso]'s cached result replays untouched. *)

let inv_src store_val =
  (* Printf, not Fmt: the NVMIR loc syntax's '@' would read as Format
     directives *)
  Printf.sprintf
    {|
struct rec_t { a: int, b: int }

func leaf(p: ptr rec_t) {
entry:
  store p->a, %d     @ inv.c:11
  flush exact p->a   @ inv.c:12
  fence              @ inv.c:13
  ret
}

func helper(p: ptr rec_t) {
entry:
  call leaf(p)       @ inv.c:21
  ret
}

func main() {
entry:
  p = alloc pmem rec_t
  call helper(p)     @ inv.c:31
  ret
}

func iso() {
entry:
  q = alloc pmem rec_t
  store q->b, 2      @ inv.c:41
  flush exact q->b   @ inv.c:42
  fence              @ inv.c:43
  ret
}
|}
    store_val

let sorted = List.sort String.compare

let test_edit_invalidates_dependents () =
  let cache = Serve.Cache.create () in
  let params = Serve.Cache.default_params Analysis.Model.Strict in
  let run text =
    match Serve.Cache.check cache ~name:"inv.nvmir" ~params ~text with
    | Ok o -> o
    | Error e -> Alcotest.fail ("check failed: " ^ e)
  in
  let o1 = run (inv_src 1) in
  check Alcotest.string "first sight is a miss" "miss"
    (Serve.Cache.cache_level_name o1.Serve.Cache.level);
  check (Alcotest.list Alcotest.string) "first sight invalidates everything"
    [ "helper"; "iso"; "leaf"; "main" ]
    (sorted o1.Serve.Cache.invalidated);
  check (Alcotest.list Alcotest.string) "both roots checked cold"
    [ "iso"; "main" ]
    (sorted o1.Serve.Cache.stale);
  let o2 = run (inv_src 1) in
  check Alcotest.string "byte-identical resubmission hits level A" "hit"
    (Serve.Cache.cache_level_name o2.Serve.Cache.level);
  (* the edit, observed through the serve instruments *)
  Obs.Metrics.reset ();
  Obs.set_enabled true;
  let o3 = run (inv_src 2) in
  Obs.set_enabled false;
  check Alcotest.string "one-function edit is a partial hit" "partial"
    (Serve.Cache.cache_level_name o3.Serve.Cache.level);
  check (Alcotest.list Alcotest.string) "only the edited function invalidated"
    [ "leaf" ] o3.Serve.Cache.invalidated;
  check (Alcotest.list Alcotest.string)
    "only the memo-dependent caller root re-checked" [ "main" ]
    o3.Serve.Cache.stale;
  check (Alcotest.list Alcotest.string) "the unrelated root replays" [ "iso" ]
    o3.Serve.Cache.reused;
  let s = Obs.Metrics.snapshot () in
  (match Obs.Metrics.find s "serve.functions_invalidated" with
  | Some (Obs.Metrics.Level n) ->
    check Alcotest.int "invalidation gauge counts the edit" 1 n
  | _ -> Alcotest.fail "serve.functions_invalidated missing");
  (match Obs.Metrics.find s "serve.roots_reused" with
  | Some (Obs.Metrics.Count n) ->
    check Alcotest.int "one root replayed" 1 n
  | _ -> Alcotest.fail "serve.roots_reused missing");
  Obs.Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* Raw request memo (crash-explore / inject requests) *)

let test_memo_replays () =
  let m = Serve.Cache.memo_create () in
  let computed = ref 0 in
  let compute () =
    incr computed;
    "payload"
  in
  let v1, l1 = Serve.Cache.memo_find m ~key:"k" ~compute in
  let v2, l2 = Serve.Cache.memo_find m ~key:"k" ~compute in
  check Alcotest.string "first value" "payload" v1;
  check Alcotest.string "replayed value" "payload" v2;
  check Alcotest.string "first is a miss" "miss" (Serve.Cache.cache_level_name l1);
  check Alcotest.string "second is a hit" "hit" (Serve.Cache.cache_level_name l2);
  check Alcotest.int "computed exactly once" 1 !computed

(* ------------------------------------------------------------------ *)
(* Worker parking: between requests a resident daemon's workers sit in
   a blocking wait, observable as parks, and [quiesce] returns only at
   full idleness.  A 2-domain pool makes this deterministic even on a
   single-core host (the default pool keeps zero workers there). *)

let test_pool_parks_and_wakes () =
  let p = Pool.create ~size:2 () in
  let sq = Pool.map p (fun x -> x * x) [ 1; 2; 3; 4 ] in
  check (Alcotest.list Alcotest.int) "map" [ 1; 4; 9; 16 ] sq;
  Pool.quiesce p;
  let parks pool =
    List.fold_left
      (fun acc (w : Pool.worker_stat) -> acc + w.Pool.parks)
      0 (Pool.worker_stats pool)
  in
  let p1 = parks p in
  check Alcotest.bool "worker parked after draining" true (p1 >= 1);
  Pool.wake p;
  let cu = Pool.map p (fun x -> x * x * x) [ 1; 2; 3 ] in
  check (Alcotest.list Alcotest.int) "map after wake" [ 1; 8; 27 ] cu;
  Pool.quiesce p;
  (* quiesce can return while a tiny map's work was drained entirely by
     the submitting domain, so only monotonicity is deterministic *)
  check Alcotest.bool "park count is monotone" true (parks p >= p1);
  Pool.shutdown p

(* ------------------------------------------------------------------ *)
(* The headline differential: a random clean program plus one random
   single-site mutation; the warm path (base primed, mutant re-checked
   through the incremental cache) must produce warnings byte-identical
   to a cold [Checker.check] of the mutant text, and agree on the
   trace/event counts. *)

let prop_warm_equals_cold =
  QCheck.Test.make ~name:"incremental re-check byte-identical to cold check"
    ~count:10
    QCheck.(map abs int)
    (fun seed ->
      match E.synth_bases ~seed:(1 + (seed mod 997)) ~count:1 ~nfuncs:16 () with
      | [ b ] -> (
        let mutants =
          Inject.Mutation.mutate ~base:b.E.bname ~model:b.E.model
            ~roots:b.E.roots b.E.prog
        in
        match mutants with
        | [] -> true (* no sound injection site: nothing to differentiate *)
        | ms ->
          let m = List.nth ms (seed mod List.length ms) in
          let cache = Serve.Cache.create () in
          let params = Serve.Cache.default_params b.E.model in
          let run text =
            match Serve.Cache.check cache ~name:b.E.bname ~params ~text with
            | Ok o -> o
            | Error e ->
              QCheck.Test.fail_reportf "cache check failed on %s: %s"
                b.E.bname e
          in
          ignore (run (text_of b.E.prog)) (* prime with the clean base *);
          let mtext = text_of m.Inject.Mutation.prog in
          let warm = run mtext in
          let cold =
            Analysis.Checker.check ~model:b.E.model
              (Nvmir.Parser.parse ~file:b.E.bname mtext)
          in
          let ws =
            List.map render warm.Serve.Cache.summary.Serve.Cache.sm_warnings
          in
          let cs = List.map render cold.Analysis.Checker.warnings in
          if not (List.equal String.equal ws cs) then
            QCheck.Test.fail_reportf
              "warnings diverge on %s (seed %d):@.warm:@.%a@.cold:@.%a"
              m.Inject.Mutation.id seed
              Fmt.(list ~sep:cut string)
              ws
              Fmt.(list ~sep:cut string)
              cs
          else
            warm.Serve.Cache.summary.Serve.Cache.sm_trace_count
              = cold.Analysis.Checker.trace_count
            && warm.Serve.Cache.summary.Serve.Cache.sm_event_count
               = cold.Analysis.Checker.event_count)
      | _ -> true)

let suite =
  [
    tc "protocol: compact encode/parse round-trip" `Quick
      test_protocol_roundtrip;
    tc "protocol: BMP \\u escapes decode, surrogates rejected" `Quick
      test_protocol_unicode;
    tc "cache: edit invalidates the function and its dependent root only"
      `Quick test_edit_invalidates_dependents;
    tc "cache: raw memo replays byte-identical payloads" `Quick
      test_memo_replays;
    tc "pool: idle workers park and wake for new work" `Quick
      test_pool_parks_and_wakes;
    QCheck_alcotest.to_alcotest prop_warm_equals_cold;
  ]
