(* The recovery tier (lib/recover) and its media-corruption model
   (Runtime.Pmem): the CRC-validates-data axioms as QCheck properties
   over the crash-image space of the recovery corpus, determinism of
   the executor's verdicts, and the pinned verdict/warning shape of the
   guarded and unguarded bases. *)

let tc = Alcotest.test_case
let check = Alcotest.check

module Pmem = Runtime.Pmem
module Crash_space = Runtime.Crash_space

let guarded () = Corpus.Types.parse Corpus.Recovery.guarded
let unguarded () = Corpus.Types.parse Corpus.Recovery.unguarded

(* every crash task of [prog], so properties sweep the whole image
   space rather than one hand-picked point *)
let tasks prog =
  let n = Crash_space.count_points prog in
  List.init n (fun k -> Crash_space.Point (k + 1)) @ [ Crash_space.Exit ]

let corrupted_images ~seed prog =
  List.concat_map
    (fun task ->
      let pmem, images, _ = Crash_space.crash_images ~seed ~task prog in
      List.map
        (fun (ci : Crash_space.crash_image) ->
          let cs = Pmem.corrupt_image pmem ~seed ci.Crash_space.ci_image in
          let heap =
            Pmem.restore ~from:pmem ~image:ci.Crash_space.ci_image
              ~corrupt:(List.map (fun (c : Pmem.corruption) -> c.Pmem.c_addr) cs)
              ()
          in
          (heap, cs))
        images)
    (tasks prog)

(* Axiom 1: a CRC-guarded read never reports "valid" over a corrupted
   slot — even when handed the checksum of the corrupted contents (the
   collision case), because the corrupt flag alone must veto. *)
let prop_guard_rejects_every_corruption =
  QCheck.Test.make ~name:"crc_check never accepts a corrupted slot"
    ~count:30
    QCheck.(map (fun s -> 1 + abs s) int)
    (fun seed ->
      List.for_all
        (fun (heap, cs) ->
          List.for_all
            (fun (c : Pmem.corruption) ->
              let { Pmem.obj_id; slot } = c.Pmem.c_addr in
              let crc =
                Pmem.crc_of_range heap ~obj_id ~first_slot:slot ~nslots:1
              in
              not
                (Pmem.crc_check_range heap ~obj_id ~first_slot:slot ~nslots:1
                   ~crc:(Runtime.Value.Vint crc)))
            cs)
        (corrupted_images ~seed (unguarded ())))

(* Axiom 2: an uncorrupted restored image always validates — the guard
   has no false alarms that would make recovery reject good state. *)
let prop_uncorrupted_always_validates =
  QCheck.Test.make ~name:"uncorrupted images always validate" ~count:30
    QCheck.(map (fun s -> 1 + abs s) int)
    (fun seed ->
      let prog = guarded () in
      List.for_all
        (fun task ->
          let pmem, images, _ = Crash_space.crash_images ~seed ~task prog in
          List.for_all
            (fun (ci : Crash_space.crash_image) ->
              let heap =
                Pmem.restore ~from:pmem ~image:ci.Crash_space.ci_image
                  ~corrupt:[] ()
              in
              List.for_all
                (fun obj_id ->
                  (not (Pmem.is_persistent heap obj_id))
                  || Pmem.crc_check_range heap ~obj_id ~first_slot:0
                       ~nslots:(Pmem.obj_size heap obj_id)
                       ~crc:
                         (Runtime.Value.Vint
                            (Pmem.crc_of_range heap ~obj_id ~first_slot:0
                               ~nslots:(Pmem.obj_size heap obj_id))))
                (Pmem.live_objects heap))
            images)
        (tasks prog))

(* Axiom 3: the executor is a pure function of (program, seed) — same
   seed, byte-identical report; and the verdict partition always sums
   to the images checked. *)
let prop_verdicts_deterministic =
  QCheck.Test.make ~name:"recovery verdicts deterministic per seed"
    ~count:15
    QCheck.(map (fun s -> 1 + abs s) int)
    (fun seed ->
      List.for_all
        (fun prog_of ->
          let r1 = Recover.verify ~seed (prog_of ()) in
          let r2 = Recover.verify ~seed (prog_of ()) in
          String.equal
            (Fmt.str "%a" Recover.pp_report r1)
            (Fmt.str "%a" Recover.pp_report r2)
          && r1.Recover.restored + r1.Recover.flagged
             + r1.Recover.silent_accepts + r1.Recover.crashes
             = r1.Recover.images_checked)
        [ guarded; unguarded ])

(* The recovery corpus's pinned shape: the CRC-guarded base verifies
   clean; its unguarded twin is flagged for exactly the new rule
   classes the static tier cannot see. *)
let test_guarded_clean () =
  let r = Recover.verify ~seed:1 (guarded ()) in
  check Alcotest.bool "consistent" true (Recover.consistent r);
  check Alcotest.int "no silent accepts" 0 r.Recover.silent_accepts;
  check Alcotest.int "idempotent" 0 r.Recover.non_idempotent

let test_unguarded_flagged () =
  let r = Recover.verify ~seed:1 (unguarded ()) in
  check Alcotest.bool "inconsistent" false (Recover.consistent r);
  let rules =
    List.sort_uniq compare
      (List.map
         (fun (w : Analysis.Warning.t) ->
           Analysis.Warning.rule_name w.Analysis.Warning.rule)
         r.Recover.warnings)
  in
  check
    Alcotest.(list string)
    "new-class rules" [ "silent-corruption-accept"; "unguarded-recovery-read" ]
    rules;
  check Alcotest.bool "silent accepts observed" true
    (r.Recover.silent_accepts > 0)

(* Disabling corruption turns the recovery tier into a plain
   restart-consistency check: nothing to detect, nothing to heal. *)
let test_no_corrupt_mode () =
  let r = Recover.verify ~seed:1 ~corrupt:false (unguarded ()) in
  check Alcotest.int "no corruption injected" 0 r.Recover.corruptions_injected;
  check Alcotest.bool "clean without corruption" true (Recover.consistent r)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_guard_rejects_every_corruption;
    QCheck_alcotest.to_alcotest prop_uncorrupted_always_validates;
    QCheck_alcotest.to_alcotest prop_verdicts_deterministic;
    tc "guarded recovery base verifies clean" `Quick test_guarded_clean;
    tc "unguarded recovery base is flagged" `Quick test_unguarded_flagged;
    tc "corrupt:false is a restart-consistency check" `Quick
      test_no_corrupt_mode;
  ]
