(* Tests for the application substrates: the generator, the three
   stores (functional behaviour and persistence discipline), and the
   measurement harness. *)

let tc = Alcotest.test_case
let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Generator *)

let test_gen_deterministic () =
  let a = Workloads.Gen.rng 42 and b = Workloads.Gen.rng 42 in
  let seq r = List.init 20 (fun _ -> Workloads.Gen.next_int r 1000) in
  check Alcotest.(list int) "same seed, same sequence" (seq a) (seq b)

let test_gen_bounds () =
  let r = Workloads.Gen.rng 1 in
  for _ = 1 to 1000 do
    let n = Workloads.Gen.uniform r ~keyspace:17 in
    if n < 0 || n >= 17 then Alcotest.fail "out of bounds"
  done

let test_gen_skew () =
  let r = Workloads.Gen.rng 7 in
  let hits = Array.make 2 0 in
  for _ = 1 to 2000 do
    let k = Workloads.Gen.skewed r ~keyspace:1024 ~theta:0.8 in
    if k < 512 then hits.(0) <- hits.(0) + 1 else hits.(1) <- hits.(1) + 1
  done;
  check Alcotest.bool "skew favours low keys" true (hits.(0) > hits.(1))

let test_gen_mix_pick () =
  let r = Workloads.Gen.rng 3 in
  let mix = [ (`A, 90); (`B, 10) ] in
  let a = ref 0 in
  for _ = 1 to 1000 do
    if Workloads.Gen.pick r mix = `A then incr a
  done;
  check Alcotest.bool "weights respected" true (!a > 700)

(* ------------------------------------------------------------------ *)
(* Kvstore *)

let test_kvstore_semantics () =
  let pmem = Runtime.Pmem.create () in
  let kv = Workloads.Kvstore.create ~capacity:64 pmem in
  check Alcotest.bool "set" true (Workloads.Kvstore.set kv 1 10);
  check Alcotest.bool "set2" true (Workloads.Kvstore.set kv 2 20);
  check Alcotest.(option int) "get" (Some 10) (Workloads.Kvstore.get kv 1);
  check Alcotest.(option int) "get missing" None (Workloads.Kvstore.get kv 99);
  ignore (Workloads.Kvstore.set kv 1 11);
  check Alcotest.(option int) "overwrite" (Some 11) (Workloads.Kvstore.get kv 1);
  check Alcotest.int "size counts distinct keys" 2 (Workloads.Kvstore.size kv);
  check Alcotest.bool "delete" true (Workloads.Kvstore.delete kv 1);
  check Alcotest.(option int) "deleted" None (Workloads.Kvstore.get kv 1);
  check Alcotest.bool "rmw" true (Workloads.Kvstore.rmw kv 2 (fun v -> v + 5));
  check Alcotest.(option int) "rmw result" (Some 25) (Workloads.Kvstore.get kv 2)

let test_kvstore_collisions () =
  let pmem = Runtime.Pmem.create () in
  let kv = Workloads.Kvstore.create ~capacity:8 pmem in
  (* more keys than the hash spreads cleanly: linear probing must keep
     them all retrievable *)
  for k = 1 to 6 do
    ignore (Workloads.Kvstore.set kv k (k * 100))
  done;
  for k = 1 to 6 do
    check Alcotest.(option int) (Fmt.str "key %d" k) (Some (k * 100))
      (Workloads.Kvstore.get kv k)
  done

let test_kvstore_updates_are_durable () =
  let pmem = Runtime.Pmem.create () in
  let kv = Workloads.Kvstore.create ~capacity:16 pmem in
  ignore (Workloads.Kvstore.set kv 5 50);
  (* a mutation completes with no volatile persistent state left *)
  check Alcotest.int "no volatile slots after set" 0
    (Runtime.Pmem.volatile_slot_count pmem)

let test_kvstore_full () =
  let pmem = Runtime.Pmem.create () in
  let kv = Workloads.Kvstore.create ~capacity:2 pmem in
  ignore (Workloads.Kvstore.set kv 1 1);
  ignore (Workloads.Kvstore.set kv 2 2);
  check Alcotest.bool "table full rejects" false (Workloads.Kvstore.set kv 3 3)

(* ------------------------------------------------------------------ *)
(* Logstore *)

let test_logstore_recovery () =
  let pmem = Runtime.Pmem.create () in
  let st = Workloads.Logstore.create ~log_capacity:64 pmem in
  for k = 1 to 5 do
    Workloads.Logstore.set st k (k * 2)
  done;
  check Alcotest.int "entries" 5 (Workloads.Logstore.entries st);
  let recovered = Workloads.Logstore.recover st in
  check Alcotest.int "all entries durable" 5 recovered;
  check Alcotest.(option int) "value after recovery" (Some 6)
    (Workloads.Logstore.get st 3)

let test_logstore_incr () =
  let pmem = Runtime.Pmem.create () in
  let st = Workloads.Logstore.create ~log_capacity:64 pmem in
  check Alcotest.int "incr from empty" 1 (Workloads.Logstore.incr st 9);
  check Alcotest.int "incr again" 2 (Workloads.Logstore.incr st 9)

let test_logstore_last_write_wins_on_recovery () =
  let pmem = Runtime.Pmem.create () in
  let st = Workloads.Logstore.create ~log_capacity:64 pmem in
  Workloads.Logstore.set st 1 10;
  Workloads.Logstore.set st 1 20;
  ignore (Workloads.Logstore.recover st);
  check Alcotest.(option int) "latest value" (Some 20) (Workloads.Logstore.get st 1)

(* ------------------------------------------------------------------ *)
(* Txstore *)

let test_txstore_semantics () =
  let pmem = Runtime.Pmem.create () in
  let st = Workloads.Txstore.create ~nrecords:32 pmem in
  Workloads.Txstore.insert st 3 30;
  check Alcotest.int "read after insert" 30 (Workloads.Txstore.read st 3);
  Workloads.Txstore.update st 3 31;
  check Alcotest.int "read after update" 31 (Workloads.Txstore.read st 3);
  Workloads.Txstore.read_modify_write st 3 (fun v -> v + 9);
  check Alcotest.int "rmw" 40 (Workloads.Txstore.read st 3)

let test_txstore_scan () =
  let pmem = Runtime.Pmem.create () in
  let st = Workloads.Txstore.create ~nrecords:32 pmem in
  for k = 0 to 9 do
    Workloads.Txstore.insert st k 1
  done;
  check Alcotest.int "scan sums" 5 (Workloads.Txstore.scan st 0 5)

let test_txstore_updates_durable () =
  let pmem = Runtime.Pmem.create () in
  let st = Workloads.Txstore.create ~nrecords:8 pmem in
  Workloads.Txstore.insert st 1 7;
  check Alcotest.int "transactional insert leaves nothing volatile" 0
    (Runtime.Pmem.volatile_slot_count pmem)

(* ------------------------------------------------------------------ *)
(* Harness *)

let test_harness_measures () =
  let r =
    Workloads.Harness.measure ~label:"t" ~clients:2 ~txs:500 ~checked:false
      ~repeats:1
      ~setup:(fun pmem -> Workloads.Kvstore.create ~capacity:256 pmem)
      ~op:(fun kv rng ~client ->
        ignore (Workloads.Kvstore.set kv (Workloads.Gen.uniform rng ~keyspace:100) client))
      ()
  in
  check Alcotest.int "txs recorded" 500 r.Workloads.Harness.txs;
  check Alcotest.bool "throughput positive" true (r.Workloads.Harness.throughput > 0.);
  check Alcotest.bool "stores counted" true (r.Workloads.Harness.stores > 0)

let test_harness_checked_run_attaches_dynamic () =
  let r =
    Workloads.Harness.measure ~label:"t" ~clients:2 ~txs:200 ~checked:true
      ~repeats:1
      ~setup:(fun pmem -> Workloads.Kvstore.create ~capacity:256 pmem)
      ~op:(fun kv rng ~client ->
        ignore (Workloads.Kvstore.set kv (Workloads.Gen.uniform rng ~keyspace:50) client))
      ()
  in
  match r.Workloads.Harness.dynamic with
  | None -> Alcotest.fail "dynamic summary missing"
  | Some s ->
    check Alcotest.bool "cells tracked" true (s.Runtime.Dynamic.tracked_cells > 0);
    check Alcotest.int "no races in well-fenced store" 0 s.Runtime.Dynamic.waw

(* Concurrent mode gives each client its own heap from a disjoint
   object-id range; the full transaction count is still executed and the
   per-client stores stay consistent. *)
let test_harness_concurrent_per_client_heaps () =
  let txs_run = Atomic.make 0 in
  let r =
    Workloads.Harness.measure ~label:"t" ~execution:Workloads.Harness.Concurrent
      ~clients:3 ~txs:100 ~checked:true ~repeats:1
      ~setup:(fun pmem -> Workloads.Kvstore.create ~capacity:256 pmem)
      ~op:(fun kv rng ~client ->
        Atomic.incr txs_run;
        ignore
          (Workloads.Kvstore.set kv
             (Workloads.Gen.uniform rng ~keyspace:50)
             client))
      ()
  in
  check Alcotest.int "every transaction executed" 100 (Atomic.get txs_run);
  check Alcotest.int "3 clients" 3 r.Workloads.Harness.clients;
  (match r.Workloads.Harness.dynamic with
  | None -> Alcotest.fail "dynamic summary missing"
  | Some s ->
    check Alcotest.bool "cells tracked" true
      (s.Runtime.Dynamic.tracked_cells > 0);
    check Alcotest.int "well-fenced stores race-free" 0 s.Runtime.Dynamic.waw);
  check Alcotest.bool "stores counted across heaps" true
    (r.Workloads.Harness.stores > 0)

(* The two execution modes agree on what the checker reports for a
   deterministic, well-fenced workload (both race-free, both tracking
   cells) even though Concurrent uses per-client heaps. *)
let test_harness_modes_agree () =
  let run execution =
    let r =
      Workloads.Harness.measure ~label:"t" ~execution ~clients:2 ~txs:120
        ~checked:true ~repeats:1
        ~setup:(fun pmem -> Workloads.Kvstore.create ~capacity:256 pmem)
        ~op:(fun kv rng ~client ->
          ignore
            (Workloads.Kvstore.set kv
               (Workloads.Gen.uniform rng ~keyspace:30)
               client))
        ()
    in
    match r.Workloads.Harness.dynamic with
    | None -> Alcotest.fail "dynamic summary missing"
    | Some s -> s
  in
  let si = run Workloads.Harness.Interleaved in
  let sc = run Workloads.Harness.Concurrent in
  check Alcotest.int "both race-free (waw)" si.Runtime.Dynamic.waw
    sc.Runtime.Dynamic.waw;
  check Alcotest.int "both race-free (raw)" si.Runtime.Dynamic.raw
    sc.Runtime.Dynamic.raw;
  check Alcotest.int "no unflushed writes either way"
    si.Runtime.Dynamic.unflushed sc.Runtime.Dynamic.unflushed

let test_mixes_well_formed () =
  let weights_positive mix =
    List.for_all (fun (_, w) -> w > 0) mix
  in
  List.iter
    (fun (_, m) ->
      if not (weights_positive m) then Alcotest.fail "bad memslap mix")
    Workloads.Memslap.mixes;
  List.iter
    (fun (_, m) ->
      if not (weights_positive m) then Alcotest.fail "bad redis mix")
    Workloads.Redis_bench.mixes;
  List.iter
    (fun (_, m) -> if not (weights_positive m) then Alcotest.fail "bad ycsb mix")
    Workloads.Ycsb.mixes;
  check Alcotest.int "5 memcached mixes (Fig. 12)" 5
    (List.length Workloads.Memslap.mixes);
  check Alcotest.int "6 YCSB mixes" 6 (List.length Workloads.Ycsb.mixes)

let suite =
  [
    tc "gen: deterministic" `Quick test_gen_deterministic;
    tc "gen: bounds" `Quick test_gen_bounds;
    tc "gen: zipf-like skew" `Quick test_gen_skew;
    tc "gen: weighted pick" `Quick test_gen_mix_pick;
    tc "kvstore: semantics" `Quick test_kvstore_semantics;
    tc "kvstore: probing under collisions" `Quick test_kvstore_collisions;
    tc "kvstore: durable updates" `Quick test_kvstore_updates_are_durable;
    tc "kvstore: full table" `Quick test_kvstore_full;
    tc "logstore: crash recovery" `Quick test_logstore_recovery;
    tc "logstore: incr" `Quick test_logstore_incr;
    tc "logstore: last write wins" `Quick
      test_logstore_last_write_wins_on_recovery;
    tc "txstore: semantics" `Quick test_txstore_semantics;
    tc "txstore: scan" `Quick test_txstore_scan;
    tc "txstore: durable transactions" `Quick test_txstore_updates_durable;
    tc "harness: measurement" `Quick test_harness_measures;
    tc "harness: dynamic attachment" `Quick
      test_harness_checked_run_attaches_dynamic;
    tc "harness: concurrent per-client heaps" `Quick
      test_harness_concurrent_per_client_heaps;
    tc "harness: execution modes agree" `Quick test_harness_modes_agree;
    tc "benchmark mixes well-formed" `Quick test_mixes_well_formed;
  ]
