(* Tests for the crash-image explorer: the reachable-image oracle must
   dominate the prefix oracle (every violation the prefix oracle finds
   is also found over the image space, since the empty persisted-subset
   is always enumerated), fixed variants must stay clean at every bound,
   and the sampling/pruning machinery must behave. *)

let tc = Alcotest.test_case
let check = Alcotest.check

let buggy_hashmap_src =
  {|
struct hashmap { nbuckets: int, bucket0: int }
func main() {
entry:
  h = alloc pmem hashmap
  store h->nbuckets, 4
  persist exact h->nbuckets
  store h->bucket0, 1
  persist exact h->bucket0
  ret
}
|}

let fixed_hashmap_src =
  {|
struct hashmap { nbuckets: int, bucket0: int }
func main() {
entry:
  h = alloc pmem hashmap
  tx_begin
  tx_add exact h->nbuckets
  tx_add exact h->bucket0
  store h->nbuckets, 4
  store h->bucket0, 1
  tx_end
  ret
}
|}

(* invariant: if nbuckets is durable, bucket0 must be initialized —
   phrased over a value lookup so the same predicate serves both the
   prefix oracle ([Crash.test], reading [durable_value]) and the image
   oracle ([Crash_space.test], reading a materialized image). *)
let invariant read =
  let v slot =
    Runtime.Value.to_int (read { Runtime.Pmem.obj_id = 0; slot })
  in
  if v 0 <> 0 && v 1 = 0 then Error "nbuckets durable before buckets"
  else Ok ()

let prefix_invariant pmem = invariant (Runtime.Pmem.durable_value pmem)

(* Prefix-oracle violations are a subset of crash-space violations: the
   empty persisted-subset IS the prefix image, so every crash point the
   prefix oracle flags must carry a crash-space witness — ideally one
   with an empty persisted set. *)
let test_prefix_subset () =
  let prog = Nvmir.Parser.parse buggy_hashmap_src in
  let prefix = Runtime.Crash.test ~entry:"main" ~invariant:prefix_invariant prog in
  check Alcotest.bool "prefix oracle flags the bug" true
    (prefix.Runtime.Crash.violations > 0);
  let space = Runtime.Crash_space.test ~entry:"main" ~invariant prog in
  let space_points = Runtime.Crash_space.violation_points space in
  List.iter
    (fun (o : Runtime.Crash.outcome) ->
      if not o.Runtime.Crash.consistent then begin
        check Alcotest.bool
          (Fmt.str "crash point %d also violates in the image space"
             o.Runtime.Crash.crash_point)
          true
          (List.mem o.Runtime.Crash.crash_point space_points);
        (* the witness with nothing persisted reproduces the prefix image *)
        let empty_witness =
          List.exists
            (fun (w : Runtime.Crash_space.witness) ->
              w.Runtime.Crash_space.w_task
              = Runtime.Crash_space.Point o.Runtime.Crash.crash_point
              && w.Runtime.Crash_space.w_persisted = [])
            space.Runtime.Crash_space.witnesses
        in
        check Alcotest.bool "empty-subset witness present" true empty_witness
      end)
    prefix.Runtime.Crash.outcomes

let test_fixed_clean_at_any_bound () =
  let prog = Nvmir.Parser.parse fixed_hashmap_src in
  List.iter
    (fun bound ->
      let r = Runtime.Crash_space.test ~entry:"main" ~bound ~invariant prog in
      check Alcotest.bool
        (Fmt.str "fixed hashmap clean at bound %d" bound)
        true
        (Runtime.Crash_space.consistent r))
    [ 1; 2; 8; 64; 512 ]

(* Synth buggy/fixed pairs, differentially: whenever the prefix oracle's
   invariant-free signal fires (writes never made durable), the image
   space must contain inconsistent images; the fixed twin must be clean
   under the sequential oracle at any bound. *)
let test_synth_pairs () =
  List.iter
    (fun seed ->
      let make pct =
        let cfg =
          {
            Corpus.Synth.default_config with
            Corpus.Synth.nfuncs = 6;
            seed;
            buggy_fraction_pct = pct;
          }
        in
        fst (Corpus.Synth.generate cfg)
      in
      let buggy = make 100 and fixed = make 0 in
      let e = Runtime.Crash.explore ~entry:"main" buggy in
      if e.Runtime.Crash.final_at_risk > 0 then begin
        let r = Runtime.Crash_space.explore ~entry:"main" ~bound:64 buggy in
        check Alcotest.bool
          (Fmt.str "seed %d: buggy synth has inconsistent images" seed)
          true
          (r.Runtime.Crash_space.inconsistent > 0)
      end;
      List.iter
        (fun bound ->
          let r = Runtime.Crash_space.explore ~entry:"main" ~bound fixed in
          check Alcotest.int
            (Fmt.str "seed %d: fixed synth clean at bound %d" seed bound)
            0 r.Runtime.Crash_space.inconsistent)
        [ 8; 256 ])
    [ 1; 2; 3 ]

(* The corpus hashmap's fixed variant under the dependency invariant:
   no reachable image may show nbuckets without buckets[0]. *)
let test_corpus_hashmap_fixed () =
  match Corpus.Registry.find "hashmap" with
  | None -> Alcotest.fail "hashmap corpus program missing"
  | Some p ->
    let fixed =
      match Corpus.Types.parse_fixed p with
      | Some f -> f
      | None -> Alcotest.fail "hashmap has no fixed variant"
    in
    let invariant read =
      let v slot =
        Runtime.Value.to_int (read { Runtime.Pmem.obj_id = 0; slot })
      in
      if v 0 <> 0 && v 1 = 0 then Error "half-initialized map" else Ok ()
    in
    let r =
      Runtime.Crash_space.test ~entry:p.Corpus.Types.entry
        ~args:p.Corpus.Types.entry_args ~invariant fixed
    in
    check Alcotest.bool "fixed corpus hashmap image-space consistent" true
      (Runtime.Crash_space.consistent r);
    check Alcotest.bool "crash points exercised" true
      (r.Runtime.Crash_space.crash_points > 0)

(* Above the bound the explorer samples: the subset count must equal the
   bound exactly, with the sampled flag set. Five persistent objects
   each left dirty give 2^5 = 32 candidate subsets per late point. *)
let test_sampling_caps_enumeration () =
  let prog =
    Nvmir.Parser.parse
      {|
struct cell { v: int }
func main() {
entry:
  a = alloc pmem cell
  b = alloc pmem cell
  c = alloc pmem cell
  d = alloc pmem cell
  e = alloc pmem cell
  store a->v, 1
  store b->v, 2
  store c->v, 3
  store d->v, 4
  store e->v, 5
  ret
}
|}
  in
  let r = Runtime.Crash_space.explore ~entry:"main" ~bound:8 prog in
  let sampled_points =
    List.filter
      (fun (pt : Runtime.Crash_space.point_result) ->
        pt.Runtime.Crash_space.sampled)
      r.Runtime.Crash_space.points
  in
  check Alcotest.bool "some points exceeded the bound" true
    (sampled_points <> []);
  List.iter
    (fun (pt : Runtime.Crash_space.point_result) ->
      check Alcotest.int "sampled point enumerates exactly bound subsets" 8
        pt.Runtime.Crash_space.subsets_enumerated)
    sampled_points;
  (* exhaustive points stay within the bound too *)
  List.iter
    (fun (pt : Runtime.Crash_space.point_result) ->
      check Alcotest.bool "within bound" true
        (pt.Runtime.Crash_space.subsets_enumerated <= 8))
    r.Runtime.Crash_space.points

(* The Figure 9 pattern: a write left volatile at exit is exactly one
   inconsistent image — the completed run's durable state misses it. *)
let test_lost_write_at_exit () =
  let prog =
    Nvmir.Parser.parse
      {|
struct lk { state: int, level: int }
func main() {
entry:
  p = alloc pmem lk
  store p->state, 1
  persist exact p->state
  store p->level, 2
  ret
}
|}
  in
  let r = Runtime.Crash_space.explore ~entry:"main" prog in
  check Alcotest.bool "inconsistency found" true
    (r.Runtime.Crash_space.inconsistent > 0);
  let exit_witness =
    List.exists
      (fun (w : Runtime.Crash_space.witness) ->
        w.Runtime.Crash_space.w_task = Runtime.Crash_space.Exit
        && w.Runtime.Crash_space.w_persisted = [])
      r.Runtime.Crash_space.witnesses
  in
  check Alcotest.bool "witnessed at exit with nothing persisted" true
    exit_witness

(* Determinism: the same seed explores the same images. *)
let test_deterministic () =
  let prog = Nvmir.Parser.parse buggy_hashmap_src in
  let r1 = Runtime.Crash_space.explore ~entry:"main" ~seed:7 prog in
  let r2 = Runtime.Crash_space.explore ~entry:"main" ~seed:7 prog in
  check Alcotest.int "same enumeration" r1.Runtime.Crash_space.images_enumerated
    r2.Runtime.Crash_space.images_enumerated;
  check Alcotest.int "same distinct count"
    r1.Runtime.Crash_space.images_distinct r2.Runtime.Crash_space.images_distinct;
  check Alcotest.int "same verdicts" r1.Runtime.Crash_space.inconsistent
    r2.Runtime.Crash_space.inconsistent

(* Parallel fan-out agrees with the sequential explorer. *)
let test_parallel_matches_sequential () =
  let prog = Nvmir.Parser.parse buggy_hashmap_src in
  let seq = Runtime.Crash_space.explore ~entry:"main" prog in
  let par = Deepmc.Crash_sweep.explore_program ~domains:4 ~entry:"main" prog in
  check Alcotest.int "crash points" seq.Runtime.Crash_space.crash_points
    par.Runtime.Crash_space.crash_points;
  check Alcotest.int "images" seq.Runtime.Crash_space.images_enumerated
    par.Runtime.Crash_space.images_enumerated;
  check Alcotest.int "inconsistent" seq.Runtime.Crash_space.inconsistent
    par.Runtime.Crash_space.inconsistent

(* materialize with no lines persisted is the durable snapshot. *)
let test_materialize_empty_is_snapshot () =
  let prog = Nvmir.Parser.parse buggy_hashmap_src in
  let pmem = Runtime.Pmem.create () in
  let interp = Runtime.Interp.create ~pmem prog in
  ignore (Runtime.Interp.run ~entry:"main" interp);
  let snap = Runtime.Pmem.durable_snapshot pmem in
  let img = Runtime.Pmem.materialize pmem ~persist:[] in
  Hashtbl.iter
    (fun id arr ->
      let arr' =
        match Hashtbl.find_opt img id with
        | Some a -> a
        | None -> Alcotest.fail "object missing from materialized image"
      in
      Array.iteri
        (fun slot v ->
          check Alcotest.bool
            (Fmt.str "obj %d slot %d" id slot)
            true
            (v = arr'.(slot)))
        arr)
    snap

let suite =
  [
    tc "prefix violations are a subset of image-space violations" `Quick
      test_prefix_subset;
    tc "fixed hashmap clean at any bound" `Quick test_fixed_clean_at_any_bound;
    tc "synth buggy/fixed pairs differential" `Quick test_synth_pairs;
    tc "corpus fixed hashmap image-space consistent" `Quick
      test_corpus_hashmap_fixed;
    tc "sampling caps enumeration at the bound" `Quick
      test_sampling_caps_enumeration;
    tc "lost write witnessed at exit (Fig. 9)" `Quick test_lost_write_at_exit;
    tc "exploration is deterministic" `Quick test_deterministic;
    tc "parallel sweep matches sequential explore" `Quick
      test_parallel_matches_sequential;
    tc "materialize [] = durable snapshot" `Quick
      test_materialize_empty_is_snapshot;
  ]
