(* Tests for the automated fixer and the suppression database (the two
   future-work directions §4.3 and §5.4 name). *)

let tc = Alcotest.test_case
let check = Alcotest.check

let check_warnings ?(model = Analysis.Model.Strict) ?roots prog =
  (Analysis.Checker.check ~model ?roots prog).Analysis.Checker.warnings

let fix_src ?(model = Analysis.Model.Strict) src =
  let prog = Nvmir.Parser.parse src in
  let before = check_warnings ~model prog in
  let fixed_prog, outcomes, remaining =
    Deepmc.Autofix.fix_until_clean ~model prog
  in
  (before, fixed_prog, outcomes, remaining)

let header = "struct s { f: int, g: int, h: int }\n"

let test_fix_unflushed_write () =
  let before, fixed, _, remaining =
    fix_src
      (header
     ^ {|
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  ret
}
|})
  in
  check Alcotest.int "one warning before" 1 (List.length before);
  check Alcotest.int "clean after" 0 (List.length remaining);
  check Alcotest.int "program still valid" 0
    (List.length (Nvmir.Prog.validate fixed))

let test_fix_missing_barrier () =
  let _, fixed, _, remaining =
    fix_src
      (header
     ^ {|
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  flush exact p->f
  tx_begin
  tx_add exact p->g
  store p->g, 2
  tx_end
  ret
}
|})
  in
  check Alcotest.int "clean after" 0 (List.length remaining);
  check Alcotest.int "valid" 0 (List.length (Nvmir.Prog.validate fixed))

let test_fix_nested_tx_barrier () =
  let _, fixed, _, remaining =
    fix_src ~model:Analysis.Model.Epoch
      (header
     ^ {|
func inner(p: ptr s) {
entry:
  tx_begin
  store p->f, 1
  flush exact p->f
  tx_end
  ret
}
func main() {
entry:
  p = alloc pmem s
  tx_begin
  call inner(p)
  store p->g, 2
  flush exact p->g
  fence
  tx_end
  ret
}
|})
  in
  check Alcotest.int "clean after" 0 (List.length remaining);
  check Alcotest.int "valid" 0 (List.length (Nvmir.Prog.validate fixed))

let test_fix_redundant_flush () =
  let _, fixed, _, remaining =
    fix_src
      (header
     ^ {|
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  persist exact p->f
  persist exact p->f
  ret
}
|})
  in
  check Alcotest.int "clean after" 0 (List.length remaining);
  (* the duplicate persist is gone *)
  match Nvmir.Prog.find_func fixed "main" with
  | None -> Alcotest.fail "main missing"
  | Some f ->
    let persists = ref 0 in
    Nvmir.Func.iter_instrs
      (fun _ i ->
        match i.Nvmir.Instr.kind with
        | Nvmir.Instr.Persist _ -> incr persists
        | _ -> ())
      f;
    check Alcotest.int "one persist left" 1 !persists

let test_fix_narrows_whole_object_flush () =
  let _, fixed, _, remaining =
    fix_src
      (header
     ^ {|
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  persist object p
  ret
}
|})
  in
  check Alcotest.int "clean after" 0 (List.length remaining);
  match Nvmir.Prog.find_func fixed "main" with
  | None -> Alcotest.fail "main missing"
  | Some f ->
    let narrowed = ref false in
    Nvmir.Func.iter_instrs
      (fun _ i ->
        match i.Nvmir.Instr.kind with
        | Nvmir.Instr.Persist { extent = Nvmir.Instr.Exact; _ } ->
          narrowed := true
        | _ -> ())
      f;
    check Alcotest.bool "extent narrowed to the written field" true !narrowed

let test_fix_moves_persist_into_branch () =
  (* the Figure 7 repair *)
  let _, fixed, _, remaining =
    fix_src
      (header
     ^ {|
func main(n: int) {
entry:
  p = alloc pmem s
  c = n > 0
  br c, upd, fin
upd:
  store p->f, 1
  store p->g, 2
  store p->h, 3
  br fin
fin:
  persist object p
  ret
}
|})
  in
  check Alcotest.int "clean after" 0 (List.length remaining);
  match Nvmir.Prog.find_func fixed "main" with
  | None -> Alcotest.fail "main missing"
  | Some f -> (
    match Nvmir.Func.find_block f "upd" with
    | None -> Alcotest.fail "upd block missing"
    | Some b ->
      check Alcotest.bool "persist moved into the updating branch" true
        (List.exists
           (fun (i : Nvmir.Instr.t) ->
             match i.Nvmir.Instr.kind with
             | Nvmir.Instr.Persist _ -> true
             | _ -> false)
           b.Nvmir.Func.instrs))

let test_fix_removes_empty_tx () =
  let _, fixed, _, remaining =
    fix_src (header ^ {|
func main() {
entry:
  tx_begin
  tx_end
  ret
}
|})
  in
  check Alcotest.int "clean after" 0 (List.length remaining);
  check Alcotest.int "valid (balanced tx markers)" 0
    (List.length (Nvmir.Prog.validate fixed))

let test_fix_refuses_semantic_mismatch () =
  let prog =
    Nvmir.Parser.parse
      (header
     ^ {|
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  persist exact p->f
  store p->g, 2
  persist exact p->g
  ret
}
|})
  in
  let warnings = check_warnings prog in
  let r = Deepmc.Autofix.apply prog warnings in
  check Alcotest.int "mismatch skipped, not fixed" 0 (Deepmc.Autofix.fixed_count r);
  check Alcotest.int "skip reported" 1 (Deepmc.Autofix.skipped_count r)

let test_fix_corpus_programs () =
  (* the fixer must eliminate all mechanically-fixable corpus warnings
     and never produce an invalid program or a new warning class *)
  List.iter
    (fun (p : Corpus.Types.program) ->
      let prog = Corpus.Types.parse p in
      let model = Corpus.Types.model p in
      let roots = p.Corpus.Types.roots in
      let before = check_warnings ~model ~roots prog in
      let fixed, _, remaining =
        Deepmc.Autofix.fix_until_clean ~model ~roots prog
      in
      check Alcotest.int
        (p.Corpus.Types.name ^ ": fixed program validates")
        0
        (List.length (Nvmir.Prog.validate fixed));
      check Alcotest.bool
        (p.Corpus.Types.name ^ ": warnings do not increase")
        true
        (List.length remaining <= List.length before);
      (* everything except the developer-intent classes and the known
         false positives (non-bugs cannot be "repaired") gets fixed *)
      let is_benign (w : Analysis.Warning.t) =
        List.exists
          (fun ((e : Deepmc.Report.expectation), _) ->
            (not e.Deepmc.Report.validated) && Deepmc.Report.matches e w)
          p.Corpus.Types.expectations
      in
      List.iter
        (fun (w : Analysis.Warning.t) ->
          match w.Analysis.Warning.rule with
          | Analysis.Warning.Semantic_mismatch
          | Analysis.Warning.Multiple_writes_at_once
          | Analysis.Warning.Strand_dependence -> ()
          | _ when is_benign w -> ()
          | r ->
            Alcotest.fail
              (Fmt.str "%s: %s at %a not repaired" p.Corpus.Types.name
                 (Analysis.Warning.rule_name r)
                 Nvmir.Loc.pp w.Analysis.Warning.loc))
        remaining)
    Corpus.Registry.all

(* ------------------------------------------------------------------ *)
(* Suppression database *)

let warning ?(rule = Analysis.Warning.Unflushed_write) ~file ~line () =
  Analysis.Warning.make ~rule ~model:Analysis.Model.Strict
    ~loc:(Nvmir.Loc.make ~file ~line) ~fname:"f" "msg"

let test_suppress_matching () =
  let db = Deepmc.Suppress.create () in
  Deepmc.Suppress.add db
    (Deepmc.Suppress.entry ~rule:Analysis.Warning.Unflushed_write ~line:10
       ~file:"a.c" "reviewed");
  Deepmc.Suppress.add db (Deepmc.Suppress.entry ~file:"legacy.c" "whole file");
  let kept, suppressed =
    Deepmc.Suppress.filter db
      [
        warning ~file:"a.c" ~line:10 ();
        warning ~file:"a.c" ~line:11 ();
        warning ~rule:Analysis.Warning.Multiple_flushes ~file:"a.c" ~line:10 ();
        warning ~file:"legacy.c" ~line:99 ();
      ]
  in
  check Alcotest.int "two kept" 2 (List.length kept);
  check Alcotest.int "two suppressed" 2 (List.length suppressed)

let test_suppress_roundtrip () =
  let db = Deepmc.Suppress.create () in
  Deepmc.Suppress.add db
    (Deepmc.Suppress.entry ~rule:Analysis.Warning.Flush_unmodified ~line:584
       ~file:"super.c" "repair path modifies through shim");
  Deepmc.Suppress.add db (Deepmc.Suppress.entry ~file:"vendor.c" "third party");
  let db' = Deepmc.Suppress.of_string (Deepmc.Suppress.to_string db) in
  check Alcotest.int "entries survive" 2
    (List.length (Deepmc.Suppress.entries db'));
  let kept, suppressed =
    Deepmc.Suppress.filter db'
      [ warning ~rule:Analysis.Warning.Flush_unmodified ~file:"super.c" ~line:584 () ]
  in
  check Alcotest.int "suppression survives roundtrip" 0 (List.length kept);
  check Alcotest.int "one suppressed" 1 (List.length suppressed)

let test_suppress_learn_loop () =
  (* the 5.4 workflow: validate the 5 corpus false positives once, learn
     them, and the corpus reports exactly the 43 real bugs *)
  let db = Deepmc.Suppress.create () in
  List.iter
    (fun (_, (e : Deepmc.Report.expectation), _) ->
      Deepmc.Suppress.learn db
        (warning ~rule:e.Deepmc.Report.rule ~file:e.Deepmc.Report.file
           ~line:e.Deepmc.Report.line ())
        ~reason:"validated benign")
    (Corpus.Registry.benign_patterns ());
  let total_kept = ref 0 and total_suppressed = ref 0 in
  List.iter
    (fun (p : Corpus.Types.program) ->
      let _, score = Corpus.Registry.analyze p in
      let kept, suppressed =
        Deepmc.Suppress.filter db score.Deepmc.Report.warnings
      in
      total_kept := !total_kept + List.length kept;
      total_suppressed := !total_suppressed + List.length suppressed)
    Corpus.Registry.all;
  check Alcotest.int "43 real bugs kept" 43 !total_kept;
  check Alcotest.int "5 false positives suppressed" 5 !total_suppressed

let test_suppress_parse_errors () =
  (match Deepmc.Suppress.of_string "not-a-rule a.c:1 reason" with
  | exception Deepmc.Suppress.Parse_error _ -> ()
  | _ -> Alcotest.fail "unknown rule accepted");
  match Deepmc.Suppress.of_string "only-one-token" with
  | exception Deepmc.Suppress.Parse_error _ -> ()
  | _ -> Alcotest.fail "short line accepted"

let test_suppress_comments_and_blanks () =
  let db =
    Deepmc.Suppress.of_string "# header\n\n*  a.c  reviewed whole file\n"
  in
  check Alcotest.int "one entry" 1 (List.length (Deepmc.Suppress.entries db))

let suite =
  [
    tc "fix: unflushed write" `Quick test_fix_unflushed_write;
    tc "fix: missing barrier" `Quick test_fix_missing_barrier;
    tc "fix: nested-tx barrier" `Quick test_fix_nested_tx_barrier;
    tc "fix: redundant flush removed" `Quick test_fix_redundant_flush;
    tc "fix: whole-object flush narrowed" `Quick
      test_fix_narrows_whole_object_flush;
    tc "fix: persist moved into branch (Fig. 7)" `Quick
      test_fix_moves_persist_into_branch;
    tc "fix: empty transaction removed" `Quick test_fix_removes_empty_tx;
    tc "fix: refuses semantic repairs" `Quick test_fix_refuses_semantic_mismatch;
    tc "fix: whole corpus" `Quick test_fix_corpus_programs;
    tc "suppress: matching" `Quick test_suppress_matching;
    tc "suppress: save/load roundtrip" `Quick test_suppress_roundtrip;
    tc "suppress: learn loop over corpus FPs" `Quick test_suppress_learn_loop;
    tc "suppress: parse errors" `Quick test_suppress_parse_errors;
    tc "suppress: comments and blanks" `Quick test_suppress_comments_and_blanks;
  ]
