(* Tests for the warning-summary aggregation. *)

let tc = Alcotest.test_case
let check = Alcotest.check

let w ?(origin = Analysis.Warning.Static)
    ?(rule = Analysis.Warning.Unflushed_write) ?(file = "a.c") ?(line = 1) () =
  Analysis.Warning.make ~origin ~rule ~model:Analysis.Model.Strict
    ~loc:(Nvmir.Loc.make ~file ~line) ~fname:"f" "m"

let test_of_warnings () =
  let s =
    Analysis.Summary.of_warnings
      [
        w ();
        w ~rule:Analysis.Warning.Multiple_flushes ~file:"b.c" ();
        w ~rule:Analysis.Warning.Multiple_flushes ~file:"b.c" ~line:2 ();
        w ~origin:Analysis.Warning.Dynamic ~line:9 ();
      ]
  in
  check Alcotest.int "total" 4 s.Analysis.Summary.total;
  check Alcotest.int "violations" 2 s.Analysis.Summary.violations;
  check Alcotest.int "performance" 2 s.Analysis.Summary.performance;
  check Alcotest.int "static" 3 s.Analysis.Summary.static_found;
  check Alcotest.int "dynamic" 1 s.Analysis.Summary.dynamic_found;
  check Alcotest.(option int) "rule histogram" (Some 2)
    (List.assoc_opt Analysis.Warning.Multiple_flushes s.Analysis.Summary.by_rule);
  check Alcotest.(option int) "file histogram" (Some 2)
    (List.assoc_opt "b.c" s.Analysis.Summary.by_file)

let test_merge_monoid () =
  let s1 = Analysis.Summary.of_warnings [ w (); w ~file:"b.c" () ] in
  let s2 = Analysis.Summary.of_warnings [ w ~file:"b.c" ~line:5 () ] in
  let m = Analysis.Summary.merge s1 s2 in
  check Alcotest.int "merged total" 3 m.Analysis.Summary.total;
  check Alcotest.(option int) "merged file tally" (Some 2)
    (List.assoc_opt "b.c" m.Analysis.Summary.by_file);
  let with_empty = Analysis.Summary.merge Analysis.Summary.empty s1 in
  check Alcotest.int "empty is identity" s1.Analysis.Summary.total
    with_empty.Analysis.Summary.total

let test_corpus_summary () =
  (* the 48-warning totals through the summary path; the static tier
     now reaches every corpus warning first (the offset lattice resolved
     the pointer-arithmetic catches), so merge-dedup attributes all of
     them to the static checker *)
  let total =
    List.fold_left
      (fun acc (p : Corpus.Types.program) ->
        let _, score = Corpus.Registry.analyze p in
        Analysis.Summary.merge acc
          (Analysis.Summary.of_warnings score.Deepmc.Report.warnings))
      Analysis.Summary.empty Corpus.Registry.all
  in
  check Alcotest.int "48 warnings" 48 total.Analysis.Summary.total;
  check Alcotest.int "0 attributed dynamically" 0
    total.Analysis.Summary.dynamic_found;
  check Alcotest.int "48 found statically" 48 total.Analysis.Summary.static_found;
  (* the busiest rule across the corpus *)
  match total.Analysis.Summary.by_rule with
  | (top, n) :: _ ->
    check Alcotest.string "flush-unmodified is the most common class"
      "flush-unmodified"
      (Analysis.Warning.rule_name top);
    check Alcotest.int "eleven of them" 11 n
  | [] -> Alcotest.fail "empty histogram"

let suite =
  [
    tc "of_warnings" `Quick test_of_warnings;
    tc "merge monoid" `Quick test_merge_monoid;
    tc "corpus summary totals" `Quick test_corpus_summary;
  ]
