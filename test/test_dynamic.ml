(* Tests for the dynamic checker: vector clocks, the shadow segment's
   happens-before logic, race detection between strands, epoch-end
   volatility reporting, and redundant-flush classification. *)

let tc = Alcotest.test_case
let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Vclock *)

let test_vclock_basics () =
  let open Runtime.Vclock in
  let a = tick empty 1 in
  let b = tick a 1 in
  check Alcotest.int "get" 2 (get b 1);
  check Alcotest.bool "a hb b" true (hb a b);
  check Alcotest.bool "b not hb a" false (hb b a);
  check Alcotest.bool "not concurrent" false (concurrent a b)

let test_vclock_concurrency () =
  let open Runtime.Vclock in
  let a = tick empty 1 and b = tick empty 2 in
  check Alcotest.bool "independent ticks concurrent" true (concurrent a b);
  let j = join a b in
  check Alcotest.bool "join after both" true (le a j && le b j);
  check Alcotest.bool "join not concurrent with parts" false (concurrent a j)

let test_vclock_join_pointwise_max () =
  let open Runtime.Vclock in
  let a = set (set empty 1 5) 2 1 in
  let b = set (set empty 1 2) 2 7 in
  let j = join a b in
  check Alcotest.int "max of 1" 5 (get j 1);
  check Alcotest.int "max of 2" 7 (get j 2)

(* ------------------------------------------------------------------ *)
(* Shadow ordering *)

let test_shadow_ordering () =
  let open Runtime.Shadow in
  let w = { strand = 1; fence_at = 3; loc = Nvmir.Loc.none } in
  check Alcotest.bool "same strand ordered" true
    (ordered_before w ~strand:1 ~begin_fence:0);
  check Alcotest.bool "barrier orders" true
    (ordered_before w ~strand:2 ~begin_fence:4);
  check Alcotest.bool "no barrier: concurrent" false
    (ordered_before w ~strand:2 ~begin_fence:3)

let test_shadow_waw_detection () =
  let sh = Runtime.Shadow.create () in
  let a1 = { Runtime.Shadow.strand = 1; fence_at = 0; loc = Nvmir.Loc.none } in
  let a2 = { Runtime.Shadow.strand = 2; fence_at = 0; loc = Nvmir.Loc.none } in
  check Alcotest.int "first write clean" 0
    (List.length (Runtime.Shadow.record_write sh ~obj_id:0 ~slot:1 ~begin_fence:0 a1));
  let conflicts = Runtime.Shadow.record_write sh ~obj_id:0 ~slot:1 ~begin_fence:0 a2 in
  check Alcotest.int "WAW detected" 1 (List.length conflicts);
  (* after a barrier, the next strand is ordered *)
  let a3 = { Runtime.Shadow.strand = 3; fence_at = 1; loc = Nvmir.Loc.none } in
  check Alcotest.int "ordered after barrier" 0
    (List.length (Runtime.Shadow.record_write sh ~obj_id:0 ~slot:1 ~begin_fence:1 a3))

let test_shadow_raw_detection () =
  let sh = Runtime.Shadow.create () in
  let w = { Runtime.Shadow.strand = 1; fence_at = 0; loc = Nvmir.Loc.none } in
  ignore (Runtime.Shadow.record_write sh ~obj_id:0 ~slot:0 ~begin_fence:0 w);
  let r = { Runtime.Shadow.strand = 2; fence_at = 0; loc = Nvmir.Loc.none } in
  (match Runtime.Shadow.record_read sh ~obj_id:0 ~slot:0 ~begin_fence:0 r with
  | Some (`Raw _) -> ()
  | None -> Alcotest.fail "expected RAW race");
  check Alcotest.int "cells tracked" 1 (Runtime.Shadow.tracked_cells sh)

(* ------------------------------------------------------------------ *)
(* End-to-end dynamic checking through the interpreter *)

let run_dynamic ?(model = Analysis.Model.Strand) src =
  let prog = Nvmir.Parser.parse src in
  let pmem = Runtime.Pmem.create () in
  let checker = Runtime.Dynamic.create ~model () in
  Runtime.Dynamic.attach checker pmem;
  let interp = Runtime.Interp.create ~pmem prog in
  ignore (Runtime.Interp.run ~entry:"main" interp);
  Runtime.Dynamic.summary checker

let strand_prog ~with_fence ~same_field =
  Fmt.str
    {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  strand_begin 1
  store p->f, 1
  flush exact p->f
  strand_end 1
%s
  strand_begin 2
  store p->%s, 2
  flush exact p->%s
  strand_end 2
  fence
  ret
}
|}
    (if with_fence then "  fence" else "")
    (if same_field then "f" else "g")
    (if same_field then "f" else "g")

let test_dynamic_waw_race () =
  let s = run_dynamic (strand_prog ~with_fence:false ~same_field:true) in
  check Alcotest.int "one WAW race" 1 s.Runtime.Dynamic.waw

let test_dynamic_fence_orders_strands () =
  let s = run_dynamic (strand_prog ~with_fence:true ~same_field:true) in
  check Alcotest.int "no race with barrier" 0 s.Runtime.Dynamic.waw

let test_dynamic_disjoint_strands () =
  let s = run_dynamic (strand_prog ~with_fence:false ~same_field:false) in
  check Alcotest.int "no race on disjoint fields" 0 s.Runtime.Dynamic.waw

let test_dynamic_raw_race () =
  let s =
    run_dynamic
      {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  strand_begin 1
  store p->f, 1
  flush exact p->f
  strand_end 1
  strand_begin 2
  x = load p->f
  strand_end 2
  fence
  ret
}
|}
  in
  check Alcotest.int "one RAW race" 1 s.Runtime.Dynamic.raw

let test_dynamic_epoch_end_unflushed () =
  let s =
    run_dynamic ~model:Analysis.Model.Epoch
      {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  epoch_begin
  store p->f, 1
  epoch_end
  ret
}
|}
  in
  check Alcotest.int "unflushed at epoch end" 1 s.Runtime.Dynamic.unflushed

let test_dynamic_epoch_end_clean () =
  let s =
    run_dynamic ~model:Analysis.Model.Epoch
      {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  epoch_begin
  store p->f, 1
  flush exact p->f
  fence
  epoch_end
  ret
}
|}
  in
  check Alcotest.int "clean epoch" 0 s.Runtime.Dynamic.unflushed

let test_dynamic_redundant_flush_classes () =
  let s =
    run_dynamic ~model:Analysis.Model.Epoch
      {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  epoch_begin
  store p->f, 1
  flush exact p->f
  fence
  flush exact p->f
  fence
  epoch_end
  ret
}
|}
  in
  check Alcotest.int "redundant flush counted" 1 s.Runtime.Dynamic.redundant

let test_dynamic_untracked_outside_regions () =
  (* the same redundant flush outside any annotated region is not
     tracked — the overhead-reduction property of 4.4 *)
  let s =
    run_dynamic ~model:Analysis.Model.Epoch
      {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  flush exact p->f
  fence
  flush exact p->f
  fence
  ret
}
|}
  in
  check Alcotest.int "not tracked outside regions" 0 s.Runtime.Dynamic.redundant;
  check Alcotest.int "no cells" 0 s.Runtime.Dynamic.tracked_cells

let test_dynamic_warning_cap () =
  let pmem = Runtime.Pmem.create () in
  let checker = Runtime.Dynamic.create ~max_warnings:5 ~model:Analysis.Model.Epoch () in
  Runtime.Dynamic.attach checker pmem;
  let tenv = Nvmir.Ty.env_create () in
  let o =
    Runtime.Pmem.alloc pmem ~tenv ~persistent:true
      (Nvmir.Ty.Array (Nvmir.Ty.Int, 8))
  in
  Runtime.Pmem.epoch_begin pmem ();
  Runtime.Pmem.write pmem { Runtime.Pmem.obj_id = o; slot = 0 } (Runtime.Value.Vint 1);
  Runtime.Pmem.flush_range pmem ~obj_id:o ~first_slot:0 ~nslots:1 ();
  Runtime.Pmem.fence pmem ();
  for _ = 1 to 20 do
    Runtime.Pmem.flush_range pmem ~obj_id:o ~first_slot:0 ~nslots:1 ();
    Runtime.Pmem.fence pmem ()
  done;
  Runtime.Pmem.epoch_end pmem ();
  let s = Runtime.Dynamic.summary checker in
  check Alcotest.int "stored warnings capped" 5
    (List.length (Runtime.Dynamic.warnings checker));
  check Alcotest.int "all occurrences counted" 20 s.Runtime.Dynamic.warning_count

(* Regression (bugfix): the slot encoding used to pack slot into 24 bits
   with no range check, so obj 0 slot 2^24 aliased obj 1 slot 0 and
   fabricated races. The slot field is now wider and out-of-range
   components are rejected. *)
let test_shadow_key_range () =
  let k1 = Runtime.Shadow.key ~obj_id:0 ~slot:(1 lsl 24) in
  let k2 = Runtime.Shadow.key ~obj_id:1 ~slot:0 in
  check Alcotest.bool "slot 2^24 does not alias obj 1" true (k1 <> k2);
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check Alcotest.bool "slot beyond field width rejected" true
    (raises (fun () ->
         Runtime.Shadow.key ~obj_id:0 ~slot:(Runtime.Shadow.max_slot + 1)));
  check Alcotest.bool "negative slot rejected" true
    (raises (fun () -> Runtime.Shadow.key ~obj_id:0 ~slot:(-1)));
  check Alcotest.bool "obj_id beyond field width rejected" true
    (raises (fun () ->
         Runtime.Shadow.key ~obj_id:(Runtime.Shadow.max_obj_id + 1) ~slot:0));
  check Alcotest.bool "max corner accepted" true
    (Runtime.Shadow.key ~obj_id:Runtime.Shadow.max_obj_id
       ~slot:Runtime.Shadow.max_slot
    > 0)

(* Regression (bugfix): tx_depth used to be checker-global, so one
   client's open transaction misclassified another client's clean
   re-flush as Persist_same_object_in_tx under set_thread
   interleaving. *)
let test_dynamic_tx_depth_per_thread () =
  let pmem = Runtime.Pmem.create () in
  let checker = Runtime.Dynamic.create ~model:Analysis.Model.Epoch () in
  Runtime.Dynamic.attach checker pmem;
  let tenv = Nvmir.Ty.env_create () in
  let o =
    Runtime.Pmem.alloc pmem ~tenv ~persistent:true
      (Nvmir.Ty.Array (Nvmir.Ty.Int, 8))
  in
  (* client 0 opens a transaction... *)
  Runtime.Dynamic.set_thread checker 0;
  Runtime.Pmem.tx_begin pmem ();
  (* ...and client 1's clean re-flush inside its epoch must be reported
     as a redundant write-back, not a same-transaction persist *)
  Runtime.Dynamic.set_thread checker 1;
  Runtime.Pmem.epoch_begin pmem ();
  Runtime.Pmem.write pmem
    { Runtime.Pmem.obj_id = o; slot = 0 }
    (Runtime.Value.Vint 1);
  Runtime.Pmem.flush_range pmem ~obj_id:o ~first_slot:0 ~nslots:1 ();
  Runtime.Pmem.fence pmem ();
  Runtime.Pmem.flush_range pmem ~obj_id:o ~first_slot:0 ~nslots:1 ();
  Runtime.Pmem.fence pmem ();
  Runtime.Pmem.epoch_end pmem ();
  Runtime.Dynamic.set_thread checker 0;
  Runtime.Pmem.tx_end pmem ();
  let count rule =
    List.length
      (List.filter
         (fun (w : Analysis.Warning.t) -> w.Analysis.Warning.rule = rule)
         (Runtime.Dynamic.warnings checker))
  in
  check Alcotest.int "classified as redundant write-back" 1
    (count Analysis.Warning.Multiple_flushes);
  check Alcotest.int "not as persist-same-object-in-tx" 0
    (count Analysis.Warning.Persist_same_object_in_tx)

(* Regression (bugfix): the warning cap used to recompute List.length on
   every emission (O(n^2) near the cap); the count is now explicit. The
   observable contract: stored warnings stop at the cap, the summary
   still counts every occurrence, and dropped = overflow. *)
let test_dynamic_warning_count_exact () =
  let pmem = Runtime.Pmem.create () in
  let checker =
    Runtime.Dynamic.create ~max_warnings:10 ~model:Analysis.Model.Epoch ()
  in
  Runtime.Dynamic.attach checker pmem;
  let tenv = Nvmir.Ty.env_create () in
  let o =
    Runtime.Pmem.alloc pmem ~tenv ~persistent:true
      (Nvmir.Ty.Array (Nvmir.Ty.Int, 8))
  in
  Runtime.Pmem.epoch_begin pmem ();
  Runtime.Pmem.write pmem
    { Runtime.Pmem.obj_id = o; slot = 0 }
    (Runtime.Value.Vint 1);
  Runtime.Pmem.flush_range pmem ~obj_id:o ~first_slot:0 ~nslots:1 ();
  Runtime.Pmem.fence pmem ();
  for _ = 1 to 50 do
    Runtime.Pmem.flush_range pmem ~obj_id:o ~first_slot:0 ~nslots:1 ();
    Runtime.Pmem.fence pmem ()
  done;
  Runtime.Pmem.epoch_end pmem ();
  let s = Runtime.Dynamic.summary checker in
  check Alcotest.int "stored at cap" 10
    (List.length (Runtime.Dynamic.warnings checker));
  check Alcotest.int "every occurrence counted" 50
    s.Runtime.Dynamic.warning_count;
  check Alcotest.int "overflow recorded as dropped" 40 s.Runtime.Dynamic.dropped

let suite =
  [
    tc "vclock: basics" `Quick test_vclock_basics;
    tc "vclock: concurrency and join" `Quick test_vclock_concurrency;
    tc "vclock: pointwise max" `Quick test_vclock_join_pointwise_max;
    tc "shadow: scalar ordering" `Quick test_shadow_ordering;
    tc "shadow: WAW detection" `Quick test_shadow_waw_detection;
    tc "shadow: RAW detection" `Quick test_shadow_raw_detection;
    tc "dynamic: WAW race between strands" `Quick test_dynamic_waw_race;
    tc "dynamic: barrier orders strands" `Quick
      test_dynamic_fence_orders_strands;
    tc "dynamic: disjoint strands clean" `Quick test_dynamic_disjoint_strands;
    tc "dynamic: RAW race" `Quick test_dynamic_raw_race;
    tc "dynamic: unflushed at epoch end" `Quick
      test_dynamic_epoch_end_unflushed;
    tc "dynamic: clean epoch" `Quick test_dynamic_epoch_end_clean;
    tc "dynamic: redundant flush tracking" `Quick
      test_dynamic_redundant_flush_classes;
    tc "dynamic: untracked outside regions" `Quick
      test_dynamic_untracked_outside_regions;
    tc "dynamic: warning cap" `Quick test_dynamic_warning_cap;
    tc "shadow: key range validation" `Quick test_shadow_key_range;
    tc "dynamic: tx_depth is per-thread" `Quick
      test_dynamic_tx_depth_per_thread;
    tc "dynamic: warning count exact under cap" `Quick
      test_dynamic_warning_count_exact;
  ]
