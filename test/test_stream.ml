(* Streaming-engine differential tests: the lazy trace engine and the
   incremental rule machine must be observationally identical to the
   materialized oracle — same traces, same order, same deduplicated
   warning sets — plus behavioural tests for the persistent domain
   pool. *)

let tc = Alcotest.test_case
let check = Alcotest.check

let engine_config engine = { Analysis.Config.default with engine }

let check_with engine ~roots ~model prog =
  Analysis.Checker.check ~config:(engine_config engine) ~roots ~model prog

let warning_strings (r : Analysis.Checker.result) =
  List.map (Fmt.str "%a" Analysis.Warning.pp) r.Analysis.Checker.warnings

(* Warnings of both engines, rendered, for every corpus program. *)
let test_corpus_warning_sets () =
  List.iter
    (fun (p : Corpus.Types.program) ->
      let prog = Corpus.Types.parse p in
      let model = Corpus.Types.model p in
      let roots = p.Corpus.Types.roots in
      let s = check_with Analysis.Config.Streaming ~roots ~model prog in
      let m = check_with Analysis.Config.Materialized ~roots ~model prog in
      check
        Alcotest.(list string)
        (p.Corpus.Types.name ^ " warning set")
        (warning_strings m) (warning_strings s);
      check Alcotest.int
        (p.Corpus.Types.name ^ " trace count")
        m.Analysis.Checker.trace_count s.Analysis.Checker.trace_count;
      check Alcotest.int
        (p.Corpus.Types.name ^ " event count")
        m.Analysis.Checker.event_count s.Analysis.Checker.event_count)
    Corpus.Registry.all

(* Trace-level equality: [Trace.stream] must enumerate exactly the
   traces [Trace.collect] materializes, in the same order. *)
let test_corpus_trace_streams () =
  List.iter
    (fun (p : Corpus.Types.program) ->
      let prog = Corpus.Types.parse p in
      let roots = p.Corpus.Types.roots in
      let dsg = Dsa.Dsg.build prog in
      let collected = Analysis.Trace.collect ~roots dsg prog in
      let dsg' = Dsa.Dsg.build prog in
      let sources = Analysis.Trace.stream ~roots dsg' prog in
      List.iter2
        (fun (root, traces) (src : Analysis.Trace.source) ->
          check Alcotest.string "root order" root src.Analysis.Trace.root;
          let streamed = List.of_seq src.Analysis.Trace.traces in
          check Alcotest.bool
            (p.Corpus.Types.name ^ "/" ^ root ^ " identical traces")
            true (collected = [] || traces = streamed);
          if traces <> streamed then
            Alcotest.failf "%s/%s: %d materialized vs %d streamed traces"
              p.Corpus.Types.name root (List.length traces)
              (List.length streamed))
        collected sources)
    Corpus.Registry.all

(* The incremental scoping machine agrees with [scope_trace]-based
   checking on every corpus trace. *)
let test_incremental_rules_agree () =
  List.iter
    (fun (p : Corpus.Types.program) ->
      let prog = Corpus.Types.parse p in
      let dsg = Dsa.Dsg.build prog in
      let ctx =
        {
          Analysis.Rules.model = Corpus.Types.model p;
          dsg;
          tenv = Nvmir.Prog.tenv prog;
        }
      in
      List.iter
        (fun (_, traces) ->
          List.iter
            (fun t ->
              let direct = Analysis.Rules.check_trace ctx t in
              let inc =
                Analysis.Rules.Incremental.(feed start t |> finish ctx)
              in
              check
                Alcotest.(list string)
                (p.Corpus.Types.name ^ " incremental rules")
                (List.map (Fmt.str "%a" Analysis.Warning.pp) direct)
                (List.map (Fmt.str "%a" Analysis.Warning.pp) inc))
            traces)
        (Analysis.Trace.collect ~roots:p.Corpus.Types.roots dsg prog))
    Corpus.Registry.all

(* QCheck property: on generated programs of varying shape, both engines
   emit the same deduplicated warning set under all three models. *)
let test_qcheck_engine_equivalence =
  let gen =
    QCheck.make
      ~print:(fun (seed, nfuncs, buggy) ->
        Printf.sprintf "seed=%d nfuncs=%d buggy=%d%%" seed nfuncs buggy)
      QCheck.Gen.(
        triple (int_bound 1000) (int_range 2 40) (int_bound 100))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:12 ~name:"streaming = materialized (synth)" gen
       (fun (seed, nfuncs, buggy_fraction_pct) ->
         let cfg =
           {
             Corpus.Synth.default_config with
             seed;
             nfuncs;
             buggy_fraction_pct;
           }
         in
         let prog, _ = Corpus.Synth.generate cfg in
         let roots = Corpus.Synth.roots cfg in
         List.for_all
           (fun model ->
             let s = check_with Analysis.Config.Streaming ~roots ~model prog in
             let m =
               check_with Analysis.Config.Materialized ~roots ~model prog
             in
             warning_strings s = warning_strings m
             && s.Analysis.Checker.event_count
                = m.Analysis.Checker.event_count)
           Analysis.Model.all))

(* Streaming peak-live-paths is genuinely smaller than the materialized
   trace count on a branchy program (the engine's reason to exist). *)
let branchy_source =
  String.concat "\n"
    ([ "struct s { a: int, b: int, c: int, d: int, e: int, f: int }";
       "func main() {"; "entry:"; "  p = alloc pmem s"; "  br b0" ]
    @ List.concat_map
        (fun (i, fld) ->
          [
            Printf.sprintf "b%d:" i;
            Printf.sprintf "  store p->%s, %d" fld i;
            Printf.sprintf "  persist exact p->%s" fld;
            Printf.sprintf "  v%d = load p->%s" i fld;
            Printf.sprintf "  c%d = v%d > 0" i i;
            Printf.sprintf "  br c%d, t%d, e%d" i i i;
            Printf.sprintf "t%d:" i;
            Printf.sprintf "  store p->%s, %d" fld (i + 1);
            Printf.sprintf "  persist exact p->%s" fld;
            Printf.sprintf "  br b%d" (i + 1);
            Printf.sprintf "e%d:" i;
            Printf.sprintf "  br b%d" (i + 1);
          ])
        [ (0, "a"); (1, "b"); (2, "c"); (3, "d"); (4, "e") ]
    @ [ "b5:"; "  store p->f, 9"; "  persist exact p->f"; "  ret"; "}" ])

let test_streaming_peak_paths () =
  let prog = Nvmir.Parser.parse branchy_source in
  let model = Analysis.Model.Strict in
  let s = check_with Analysis.Config.Streaming ~roots:[ "main" ] ~model prog in
  let m =
    check_with Analysis.Config.Materialized ~roots:[ "main" ] ~model prog
  in
  check Alcotest.int "same traces" m.Analysis.Checker.trace_count
    s.Analysis.Checker.trace_count;
  check
    Alcotest.(list string)
    "same warnings" (warning_strings m) (warning_strings s);
  check Alcotest.int "materialized holds every path"
    m.Analysis.Checker.trace_count m.Analysis.Checker.peak_paths;
  if s.Analysis.Checker.peak_paths >= m.Analysis.Checker.peak_paths then
    Alcotest.failf "streaming peak %d not below materialized %d"
      s.Analysis.Checker.peak_paths m.Analysis.Checker.peak_paths

(* ------------------------------------------------------------------ *)
(* Pool behaviour *)

(* Workers are spawned once and reused across submissions. *)
let test_pool_reuse () =
  let p = Pool.create ~size:2 () in
  let r1 = Pool.map p (fun x -> x + 1) (List.init 50 Fun.id) in
  let r2 = Pool.map p (fun x -> x * 2) (List.init 50 Fun.id) in
  let r3 = Pool.map p Fun.id [] in
  check Alcotest.(list int) "first" (List.init 50 (fun x -> x + 1)) r1;
  check Alcotest.(list int) "second" (List.init 50 (fun x -> x * 2)) r2;
  check Alcotest.(list int) "empty" [] r3;
  let s = Pool.stats p in
  check Alcotest.int "jobs counted" 2 s.Pool.jobs;
  if s.Pool.spawned_total > 1 then
    Alcotest.failf "pool of size 2 spawned %d workers across 2 jobs"
      s.Pool.spawned_total;
  Pool.shutdown p;
  check Alcotest.int "all joined" 0 (Pool.stats p).Pool.alive;
  (* the pool survives shutdown: the next job respawns lazily *)
  check Alcotest.(list int) "usable after shutdown" [ 2; 3 ]
    (Pool.map p (fun x -> x + 1) [ 1; 2 ]);
  Pool.shutdown p

(* A raising worker propagates its exception and leaves the pool
   usable. *)
let test_pool_raising_worker () =
  let p = Pool.create ~size:2 () in
  (match
     Pool.map p (fun x -> if x = 13 then failwith "pow" else x)
       (List.init 40 Fun.id)
   with
  | _ -> Alcotest.fail "expected the worker's exception"
  | exception Failure m -> check Alcotest.string "message" "pow" m);
  check Alcotest.(list int) "pool survives" [ 1; 4; 9 ]
    (Pool.map p (fun x -> x * x) [ 1; 2; 3 ]);
  Pool.shutdown p

(* A worker task may itself submit to the same pool: the caller-helps
   drain makes nesting deadlock-free even when every domain is busy. *)
let test_pool_nested_submission () =
  let p = Pool.create ~size:2 () in
  let nested =
    Pool.map p
      (fun x -> List.fold_left ( + ) 0 (Pool.map p (fun y -> x * y) [ 1; 2; 3 ]))
      (List.init 20 Fun.id)
  in
  check Alcotest.(list int) "nested results"
    (List.init 20 (fun x -> 6 * x))
    nested;
  Pool.shutdown p

let suite =
  [
    tc "corpus warning sets" `Quick test_corpus_warning_sets;
    tc "corpus trace streams" `Quick test_corpus_trace_streams;
    tc "incremental rules agree" `Quick test_incremental_rules_agree;
    test_qcheck_engine_equivalence;
    tc "streaming peak paths" `Quick test_streaming_peak_paths;
    tc "pool reuse" `Quick test_pool_reuse;
    tc "pool raising worker" `Quick test_pool_raising_worker;
    tc "pool nested submission" `Quick test_pool_nested_submission;
  ]
