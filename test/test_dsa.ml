(* Tests for the DSA: arena/union-find, abstract addresses, and the
   three-phase DSG construction with its alias and persistence
   queries. *)

let tc = Alcotest.test_case
let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Arena *)

let test_arena_unify_merges_flags () =
  let a = Dsa.Arena.create () in
  let n1 = Dsa.Arena.fresh a ~persistent:true () in
  let n2 = Dsa.Arena.fresh a () in
  check Alcotest.bool "n2 volatile before" false (Dsa.Arena.is_persistent a n2);
  Dsa.Arena.unify a n1 n2;
  check Alcotest.bool "same root" true (Dsa.Arena.find a n1 = Dsa.Arena.find a n2);
  check Alcotest.bool "persistence propagates" true (Dsa.Arena.is_persistent a n2)

let test_arena_unify_merges_edges_recursively () =
  let a = Dsa.Arena.create () in
  let p1 = Dsa.Arena.fresh a () and p2 = Dsa.Arena.fresh a () in
  let t1 = Dsa.Arena.ensure_edge a p1 (Some "next") in
  let t2 = Dsa.Arena.ensure_edge a p2 (Some "next") in
  Dsa.Arena.set_persistent a t1;
  Dsa.Arena.unify a p1 p2;
  (* merging the parents must unify the "next" targets too *)
  check Alcotest.bool "edge targets unified" true
    (Dsa.Arena.find a t1 = Dsa.Arena.find a t2);
  check Alcotest.bool "target flags merged" true (Dsa.Arena.is_persistent a t2)

let test_arena_unify_idempotent () =
  let a = Dsa.Arena.create () in
  let n1 = Dsa.Arena.fresh a () and n2 = Dsa.Arena.fresh a () in
  Dsa.Arena.unify a n1 n2;
  Dsa.Arena.unify a n2 n1;
  Dsa.Arena.unify a n1 n1;
  check Alcotest.int "two nodes allocated" 2 (Dsa.Arena.size a);
  check Alcotest.int "one canonical node" 1
    (List.length
       (List.filter
          (fun id -> id < 2)
          (Dsa.Arena.canonical_ids a)))

let test_arena_modref () =
  let a = Dsa.Arena.create () in
  let n = Dsa.Arena.fresh a () in
  Dsa.Arena.add_mod a n (Some "f");
  Dsa.Arena.add_mod a n (Some "f");
  Dsa.Arena.add_ref a n (Some "g");
  let node = Dsa.Arena.canonical a n in
  check Alcotest.int "mod recorded once" 1 (List.length node.Dsa.Arena.mod_fields);
  check Alcotest.int "ref recorded" 1 (List.length node.Dsa.Arena.ref_fields)

(* ------------------------------------------------------------------ *)
(* Aaddr relations *)

let addr ?(field = None) ?(index = Dsa.Aaddr.No_index)
    ?(offset = Dsa.Aaddr.Off_exact 0) node =
  { Dsa.Aaddr.node; field; index; offset }

let test_aaddr_overlap () =
  let open Dsa.Aaddr in
  let whole = addr 1 in
  let f = addr ~field:(Some "f") 1 in
  let g = addr ~field:(Some "g") 1 in
  let other = addr ~field:(Some "f") 2 in
  check Alcotest.bool "whole overlaps field" true (may_overlap whole f);
  check Alcotest.bool "distinct fields disjoint" false (may_overlap f g);
  check Alcotest.bool "distinct objects disjoint" false (may_overlap f other)

let test_aaddr_indexes () =
  let open Dsa.Aaddr in
  let i0 = addr ~field:(Some "a") ~index:(Const_index 0) 1 in
  let i1 = addr ~field:(Some "a") ~index:(Const_index 1) 1 in
  let sym = addr ~field:(Some "a") ~index:(Sym_index "c") 1 in
  check Alcotest.bool "distinct constants disjoint" false (may_overlap i0 i1);
  check Alcotest.bool "symbolic may equal constant" true (may_overlap sym i0);
  check Alcotest.bool "symbolic contained only if equal" false
    (contained_in i0 sym);
  check Alcotest.bool "same symbol contained" true (contained_in sym sym)

let test_aaddr_containment () =
  let open Dsa.Aaddr in
  let whole = addr 1 in
  let f = addr ~field:(Some "f") 1 in
  check Alcotest.bool "field in whole" true (contained_in f whole);
  check Alcotest.bool "whole not in field" false (contained_in whole f);
  check Alcotest.bool "whole in whole" true (contained_in whole whole)

(* containment implies overlap — checked over random addresses *)
let aaddr_gen =
  QCheck.Gen.(
    let* node = int_range 0 2 in
    let* field = oneofl [ None; Some "f"; Some "g" ] in
    let* index =
      oneofl
        [ Dsa.Aaddr.No_index; Dsa.Aaddr.Const_index 0; Dsa.Aaddr.Const_index 1;
          Dsa.Aaddr.Sym_index "i"; Dsa.Aaddr.Sym_index "j" ]
    in
    let* offset =
      oneofl
        [ Dsa.Aaddr.Off_exact 0; Dsa.Aaddr.Off_exact 1; Dsa.Aaddr.Off_exact 4;
          Dsa.Aaddr.off_stride ~base:0 ~stride:4;
          Dsa.Aaddr.off_stride ~base:1 ~stride:2; Dsa.Aaddr.Off_top ]
    in
    return { Dsa.Aaddr.node; field; index; offset })

let aaddr_arb = QCheck.make ~print:(Fmt.str "%a" Dsa.Aaddr.pp) aaddr_gen

let prop_containment_implies_overlap =
  QCheck.Test.make ~name:"contained_in implies may_overlap" ~count:500
    (QCheck.pair aaddr_arb aaddr_arb)
    (fun (a, b) ->
      (not (Dsa.Aaddr.contained_in a b)) || Dsa.Aaddr.may_overlap a b)

let prop_equal_implies_contained =
  QCheck.Test.make ~name:"equal implies contained both ways" ~count:500
    (QCheck.pair aaddr_arb aaddr_arb)
    (fun (a, b) ->
      (not (Dsa.Aaddr.equal a b))
      || (Dsa.Aaddr.contained_in a b && Dsa.Aaddr.contained_in b a))

let prop_overlap_symmetric =
  QCheck.Test.make ~name:"may_overlap is symmetric" ~count:500
    (QCheck.pair aaddr_arb aaddr_arb)
    (fun (a, b) -> Dsa.Aaddr.may_overlap a b = Dsa.Aaddr.may_overlap b a)

(* ------------------------------------------------------------------ *)
(* Offset congruence lattice: soundness against the concretization
   [off_mem] (is the concrete offset n a member of the abstract set?) *)

let off_mem n = function
  | Dsa.Aaddr.Off_exact c -> n = c
  | Dsa.Aaddr.Off_stride { base; stride } -> (n - base) mod stride = 0
  | Dsa.Aaddr.Off_top -> true

let offset_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Dsa.Aaddr.Off_exact n) (int_range (-8) 8);
        map2
          (fun base stride -> Dsa.Aaddr.off_stride ~base ~stride)
          (int_range (-5) 5) (int_range 1 6);
        return Dsa.Aaddr.Off_top;
      ])

let offset_arb =
  QCheck.make ~print:(Fmt.str "%a" Dsa.Aaddr.pp_offset) offset_gen

let small_int = QCheck.int_range (-24) 24

let prop_off_join_upper_bound =
  QCheck.Test.make ~name:"off_join is an upper bound (off_leq)" ~count:500
    (QCheck.pair offset_arb offset_arb)
    (fun (a, b) ->
      let j = Dsa.Aaddr.off_join a b in
      Dsa.Aaddr.off_leq a j && Dsa.Aaddr.off_leq b j)

let prop_off_join_monotone =
  QCheck.Test.make ~name:"off_join monotone w.r.t. off_leq" ~count:500
    (QCheck.triple offset_arb offset_arb offset_arb)
    (fun (a, b, c) ->
      (not (Dsa.Aaddr.off_leq a b))
      || Dsa.Aaddr.off_leq (Dsa.Aaddr.off_join a c) (Dsa.Aaddr.off_join b c))

let prop_off_leq_is_subset =
  QCheck.Test.make ~name:"off_leq implies membership subset" ~count:500
    (QCheck.triple offset_arb offset_arb small_int)
    (fun (a, b, n) ->
      (not (Dsa.Aaddr.off_leq a b)) || (not (off_mem n a)) || off_mem n b)

let prop_off_add_sound =
  QCheck.Test.make ~name:"off_add sound on members" ~count:500
    (QCheck.quad offset_arb offset_arb small_int small_int)
    (fun (a, b, x, y) ->
      (not (off_mem x a && off_mem y b))
      || off_mem (x + y) (Dsa.Aaddr.off_add a b))

let prop_off_mul_sound =
  QCheck.Test.make ~name:"off_mul sound on members" ~count:500
    (QCheck.quad offset_arb offset_arb small_int small_int)
    (fun (a, b, x, y) ->
      (not (off_mem x a && off_mem y b))
      || off_mem (x * y) (Dsa.Aaddr.off_mul a b))

let prop_off_may_equal_complete =
  QCheck.Test.make ~name:"shared member implies off_may_equal" ~count:500
    (QCheck.triple offset_arb offset_arb small_int)
    (fun (a, b, n) ->
      (not (off_mem n a && off_mem n b)) || Dsa.Aaddr.off_may_equal a b)

(* ------------------------------------------------------------------ *)
(* DSG construction: the Figure 9 / Figure 10 example *)

let nvm_lock_prog () =
  Nvmir.Parser.parse
    {|
struct lkrec { state: int, new_level: int }
struct amutex { owners: int, level: int }
func nvm_lock(omutex: ptr amutex) {
entry:
  mutex = omutex
  lk = alloc pmem lkrec
  store lk->state, 1
  persist exact lk->state
  store mutex->owners, 0
  persist exact mutex->owners
  ret
}
func driver() {
entry:
  m = alloc pmem amutex
  call nvm_lock(m)
  ret
}
|}

let test_dsg_alloc_is_persistent () =
  let dsg = Dsa.Dsg.build (nvm_lock_prog ()) in
  check Alcotest.bool "lk persistent" true
    (Dsa.Dsg.is_persistent_place dsg ~fname:"nvm_lock" (Nvmir.Place.var "lk"))

let test_dsg_param_persistence_flows_from_caller () =
  let dsg = Dsa.Dsg.build (nvm_lock_prog ()) in
  (* omutex's persistence is only known from the caller's allocation
     (the top-down information of §4.2) *)
  check Alcotest.bool "omutex persistent via caller" true
    (Dsa.Dsg.is_persistent_place dsg ~fname:"nvm_lock"
       (Nvmir.Place.var "omutex"))

let test_dsg_assignment_aliases () =
  let dsg = Dsa.Dsg.build (nvm_lock_prog ()) in
  let n1 = Dsa.Dsg.node_of_var dsg ~fname:"nvm_lock" "omutex" in
  let n2 = Dsa.Dsg.node_of_var dsg ~fname:"nvm_lock" "mutex" in
  check Alcotest.bool "mutex = omutex alias" true (n1 = n2 && n1 <> None);
  check Alcotest.bool "distinct from lk" true
    (n1 <> Dsa.Dsg.node_of_var dsg ~fname:"nvm_lock" "lk")

let test_dsg_caller_callee_same_node () =
  let dsg = Dsa.Dsg.build (nvm_lock_prog ()) in
  let caller = Dsa.Dsg.node_of_var dsg ~fname:"driver" "m" in
  let callee = Dsa.Dsg.node_of_var dsg ~fname:"nvm_lock" "omutex" in
  check Alcotest.bool "argument and parameter unified" true
    (caller = callee && caller <> None)

let test_dsg_modref () =
  let dsg = Dsa.Dsg.build (nvm_lock_prog ()) in
  match Dsa.Dsg.node_of_var dsg ~fname:"nvm_lock" "lk" with
  | None -> Alcotest.fail "lk unbound"
  | Some n ->
    check Alcotest.bool "state modified" true
      (List.mem (Some "state") (Dsa.Dsg.modified_fields dsg n))

let test_dsg_field_sensitivity_switch () =
  let prog = nvm_lock_prog () in
  let fs = Dsa.Dsg.build ~field_sensitive:true prog in
  let fi = Dsa.Dsg.build ~field_sensitive:false prog in
  let a_state =
    Dsa.Dsg.resolve fs ~fname:"nvm_lock" (Nvmir.Place.field "lk" "state")
  in
  let a_level =
    Dsa.Dsg.resolve fs ~fname:"nvm_lock" (Nvmir.Place.field "lk" "new_level")
  in
  check Alcotest.bool "fields distinct when sensitive" false
    (Dsa.Aaddr.may_overlap a_state a_level);
  let b_state =
    Dsa.Dsg.resolve fi ~fname:"nvm_lock" (Nvmir.Place.field "lk" "state")
  in
  let b_level =
    Dsa.Dsg.resolve fi ~fname:"nvm_lock" (Nvmir.Place.field "lk" "new_level")
  in
  check Alcotest.bool "fields collapse when insensitive" true
    (Dsa.Aaddr.may_overlap b_state b_level)

let test_dsg_addr_of_cell () =
  let prog =
    Nvmir.Parser.parse
      {|
struct s { f: int, g: int }
func f() {
entry:
  p = alloc pmem s
  a = addr p->f
  store a, 1
  ret
}
|}
  in
  let dsg = Dsa.Dsg.build prog in
  let through_cell = Dsa.Dsg.resolve dsg ~fname:"f" (Nvmir.Place.var "a") in
  let direct = Dsa.Dsg.resolve dsg ~fname:"f" (Nvmir.Place.field "p" "f") in
  check Alcotest.bool "store through &p->f writes p.f" true
    (Dsa.Aaddr.equal through_cell direct);
  check Alcotest.bool "cell is persistent" true
    (Dsa.Dsg.is_persistent_addr dsg through_cell)

let pointer_arith_prog () =
  Nvmir.Parser.parse
    {|
struct s { f: int, g: int }
func f() {
entry:
  p = alloc pmem s
  q = p + 0
  r = p + 4
  store q->f, 1
  ret
}
|}

(* Historically [q = p + 0] laundered the pointer into a fresh unknown
   node (the §5.4 blind spot). The offset lattice resolves it: q IS p,
   while [r = p + 4] stays a distinct, disjoint element address. *)
let test_dsg_pointer_arith_resolved () =
  let prog = pointer_arith_prog () in
  let dsg = Dsa.Dsg.build prog in
  let qf = Dsa.Dsg.resolve dsg ~fname:"f" (Nvmir.Place.field "q" "f") in
  let pf = Dsa.Dsg.resolve dsg ~fname:"f" (Nvmir.Place.field "p" "f") in
  let rf = Dsa.Dsg.resolve dsg ~fname:"f" (Nvmir.Place.field "r" "f") in
  check Alcotest.bool "q->f is p->f" true (Dsa.Aaddr.equal qf pf);
  check Alcotest.bool "laundered pointer is persistent" true
    (Dsa.Dsg.is_persistent_place dsg ~fname:"f" (Nvmir.Place.field "q" "f"));
  check Alcotest.bool "same object through offset" true
    (Dsa.Aaddr.same_object rf pf);
  check Alcotest.bool "p+4 field disjoint from p's" false
    (Dsa.Aaddr.may_overlap rf pf)

(* The ablation switch reproduces the legacy opacity exactly — the
   injection/fuzzing benches regenerate the historical blind-spot
   corpus with it. *)
let test_dsg_pointer_arith_ablated () =
  let prog = pointer_arith_prog () in
  let dsg = Dsa.Dsg.build ~offset_sensitive:false prog in
  check Alcotest.bool "laundered pointer not persistent" false
    (Dsa.Dsg.is_persistent_place dsg ~fname:"f" (Nvmir.Place.field "q" "f"))

let test_dsg_may_alias () =
  let dsg = Dsa.Dsg.build (nvm_lock_prog ()) in
  check Alcotest.bool "same field aliases" true
    (Dsa.Dsg.may_alias dsg ~fname:"nvm_lock"
       (Nvmir.Place.field "mutex" "owners")
       (Nvmir.Place.field "omutex" "owners"));
  check Alcotest.bool "different objects do not" false
    (Dsa.Dsg.may_alias dsg ~fname:"nvm_lock"
       (Nvmir.Place.field "mutex" "owners")
       (Nvmir.Place.field "lk" "state"))

let test_dsg_function_view () =
  let dsg = Dsa.Dsg.build (nvm_lock_prog ()) in
  (* nvm_lock reaches exactly two persistent objects: lk and the mutex *)
  check Alcotest.int "two persistent nodes" 2
    (List.length (Dsa.Dsg.function_view dsg ~fname:"nvm_lock"))

let suite =
  [
    tc "arena: unify merges flags" `Quick test_arena_unify_merges_flags;
    tc "arena: unify merges edges recursively" `Quick
      test_arena_unify_merges_edges_recursively;
    tc "arena: unify is idempotent" `Quick test_arena_unify_idempotent;
    tc "arena: mod/ref dedup" `Quick test_arena_modref;
    tc "aaddr: overlap" `Quick test_aaddr_overlap;
    tc "aaddr: index sensitivity" `Quick test_aaddr_indexes;
    tc "aaddr: containment" `Quick test_aaddr_containment;
    QCheck_alcotest.to_alcotest prop_containment_implies_overlap;
    QCheck_alcotest.to_alcotest prop_equal_implies_contained;
    QCheck_alcotest.to_alcotest prop_overlap_symmetric;
    QCheck_alcotest.to_alcotest prop_off_join_upper_bound;
    QCheck_alcotest.to_alcotest prop_off_join_monotone;
    QCheck_alcotest.to_alcotest prop_off_leq_is_subset;
    QCheck_alcotest.to_alcotest prop_off_add_sound;
    QCheck_alcotest.to_alcotest prop_off_mul_sound;
    QCheck_alcotest.to_alcotest prop_off_may_equal_complete;
    tc "dsg: allocation persistence" `Quick test_dsg_alloc_is_persistent;
    tc "dsg: top-down persistence" `Quick
      test_dsg_param_persistence_flows_from_caller;
    tc "dsg: assignment aliasing" `Quick test_dsg_assignment_aliases;
    tc "dsg: bottom-up arg/param unification" `Quick
      test_dsg_caller_callee_same_node;
    tc "dsg: mod/ref summaries" `Quick test_dsg_modref;
    tc "dsg: field-sensitivity switch" `Quick test_dsg_field_sensitivity_switch;
    tc "dsg: address-of field cells" `Quick test_dsg_addr_of_cell;
    tc "dsg: pointer arithmetic resolved" `Quick
      test_dsg_pointer_arith_resolved;
    tc "dsg: pointer arithmetic ablated" `Quick
      test_dsg_pointer_arith_ablated;
    tc "dsg: may_alias" `Quick test_dsg_may_alias;
    tc "dsg: per-function view" `Quick test_dsg_function_view;
  ]
