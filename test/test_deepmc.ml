(* Main test runner: aggregates the per-module suites. *)

let () =
  Alcotest.run "deepmc"
    [
      ("nvmir", Test_nvmir.suite);
      ("parser", Test_parser.suite);
      ("graphs", Test_graphs.suite);
      ("dsa", Test_dsa.suite);
      ("trace", Test_trace.suite);
      ("rules", Test_rules.suite);
      ("pmem", Test_pmem.suite);
      ("interp", Test_interp.suite);
      ("dynamic", Test_dynamic.suite);
      ("crash", Test_crash.suite);
      ("crash-space", Test_crash_space.suite);
      ("corpus", Test_corpus.suite);
      ("workloads", Test_workloads.suite);
      ("concurrent", Test_concurrent.suite);
      ("driver", Test_driver.suite);
      ("autofix", Test_autofix.suite);
      ("extensions", Test_extensions.suite);
      ("scoped", Test_scoped.suite);
      ("parallel", Test_parallel.suite);
      ("stream", Test_stream.suite);
      ("strand-store", Test_strand_store.suite);
      ("durability", Test_durability.suite);
      ("misc", Test_misc.suite);
      ("differential", Test_differential.suite);
      ("html", Test_html.suite);
      ("summary", Test_summary.suite);
      ("recover", Test_recover.suite);
      ("inject", Test_inject.suite);
      ("obs", Test_obs.suite);
      ("fuzz", Test_fuzz.suite);
      ("serve", Test_serve.suite);
      ("explain", Test_explain.suite);
    ]
