(* The injection subsystem: mutants must be well-formed IR (every one
   pretty-prints and re-parses to an equal program), and each one must
   be repairable — Autofix.fix_until_clean converges back to zero
   warnings on single-operator mutants of warning-clean programs. *)

let tc = Alcotest.test_case
let check = Alcotest.check

let synth_clean seed =
  let cfg =
    {
      Corpus.Synth.default_config with
      Corpus.Synth.seed;
      nfuncs = 6;
      buggy_fraction_pct = 0;
    }
  in
  let prog, _ = Corpus.Synth.generate cfg in
  (prog, Corpus.Synth.roots cfg)

let synth_mutants seed =
  let prog, roots = synth_clean seed in
  ( Inject.Mutation.mutate
      ~base:(Fmt.str "synth%d" seed)
      ~model:Analysis.Model.Strict ~roots prog,
    roots )

(* ------------------------------------------------------------------ *)
(* Property: pp -> parse -> pp is the identity on every mutant (the
   saved false-negative corpus must round-trip through the parser). *)

let prop_mutants_roundtrip =
  QCheck.Test.make ~name:"every mutant pretty-prints and re-parses"
    ~count:30
    QCheck.(map abs small_int)
    (fun seed ->
      let mutants, _ = synth_mutants seed in
      List.for_all
        (fun (m : Inject.Mutation.mutant) ->
          let printed = Fmt.str "%a" Nvmir.Prog.pp m.Inject.Mutation.prog in
          let reparsed = Nvmir.Parser.parse printed in
          let printed' = Fmt.str "%a" Nvmir.Prog.pp reparsed in
          if not (String.equal printed printed') then
            QCheck.Test.fail_reportf "mutant %s does not round-trip"
              m.Inject.Mutation.id
          else true)
        mutants)

(* ------------------------------------------------------------------ *)
(* Property: the autofixer undoes any single injected bug — running
   fix_until_clean on a mutant of a warning-clean program converges to
   zero static warnings. *)

(* Hoist_write is excluded: the autofixer repairs by inserting flushes
   and fences, which covers the orphaned write, but it cannot move the
   write back into its original persist unit — the knock-on
   semantic-mismatch (split atomic update) has no mechanical fix, so
   ~60% of hoist mutants keep one warning by design. *)
let autofixable_operators =
  List.filter
    (fun op -> op <> Inject.Mutation.Hoist_write)
    Inject.Mutation.all_operators

let prop_mutants_autofixable =
  QCheck.Test.make ~name:"fix_until_clean converges on single-op mutants"
    ~count:15
    QCheck.(map abs small_int)
    (fun seed ->
      let prog, roots = synth_clean seed in
      let mutants =
        Inject.Mutation.mutate ~operators:autofixable_operators
          ~base:(Fmt.str "synth%d" seed)
          ~model:Analysis.Model.Strict ~roots prog
      in
      List.for_all
        (fun (m : Inject.Mutation.mutant) ->
          let _, _, remaining =
            Deepmc.Autofix.fix_until_clean ~roots
              ~model:Analysis.Model.Strict m.Inject.Mutation.prog
          in
          if remaining <> [] then
            QCheck.Test.fail_reportf
              "mutant %s: %d warning(s) survive the autofixer"
              m.Inject.Mutation.id (List.length remaining)
          else true)
        mutants)

(* ------------------------------------------------------------------ *)
(* Directed: the acceptance bar — static-tier recall on the PMDK corpus
   slice — and matrix determinism for a fixed seed. *)

let test_pmdk_static_recall () =
  let bases = Inject.Evaluate.corpus_bases ~framework:Corpus.Types.Pmdk () in
  let s = Inject.Evaluate.run ~dynamic:false ~crash:false bases in
  check Alcotest.bool "mutants generated" true (s.Inject.Evaluate.total_mutants > 0);
  check (Alcotest.float 0.0001) "static-tier recall" 1.0
    s.Inject.Evaluate.static_tier_recall

let test_matrix_deterministic () =
  let run () =
    let bases =
      Inject.Evaluate.corpus_bases ~framework:Corpus.Types.Pmfs ()
      @ Inject.Evaluate.exemplar_bases ()
    in
    Fmt.str "%a" Deepmc.Json_report.pp
      (Inject.Evaluate.to_json (Inject.Evaluate.run ~seed:42 bases))
  in
  check Alcotest.string "same seed, same matrix" (run ()) (run ())

(* Exemplar sanity: the strand exemplar yields split-strand mutants and
   the dynamic checker observes the injected race. *)
let test_split_strand_detected () =
  let bases = Inject.Evaluate.exemplar_bases () in
  let s =
    Inject.Evaluate.run ~operators:[ Inject.Mutation.Split_strand ]
      ~crash:false bases
  in
  let row =
    List.find
      (fun (r : Inject.Evaluate.row) ->
        r.Inject.Evaluate.operator = Inject.Mutation.Split_strand)
      s.Inject.Evaluate.rows
  in
  check Alcotest.bool "split-strand sites found" true
    (row.Inject.Evaluate.mutants > 0);
  check Alcotest.int "dynamic checker sees every race"
    row.Inject.Evaluate.dynamic_c.Inject.Evaluate.applicable
    row.Inject.Evaluate.dynamic_c.Inject.Evaluate.detected

(* ------------------------------------------------------------------ *)
(* Directed: the 10 resurrected blind-spot mutants. Under the ablated
   (legacy) pipeline the pointer-arith fence mutants are static-tier
   false negatives; re-checking the very same mutant programs with the
   offset lattice enabled catches every one, with the exact warning
   pinned (mutant id, rule, location, message). *)

let resurrected_pins =
  let mpb = "missing-persist-barrier" in
  let msg =
    "epoch ends without a persist barrier; stores of the next epoch may \
     persist before this epoch's stores"
  in
  [
    ("pmfs_journal/delete-fence/1", mpb, "journal.c:655", msg);
    ("pmfs_journal/reorder-fence/1", mpb, "journal.c:655", msg);
    ("pmfs_super/delete-fence/0", mpb, "super.c:581", msg);
    ("pmfs_super/reorder-fence/0", mpb, "super.c:581", msg);
    ("chhash/delete-fence/0", mpb, "chhash.c:190", msg);
    ("chhash/reorder-fence/0", mpb, "chhash.c:190", msg);
    ("chhash/delete-fence/1", mpb, "chhash.c:275", msg);
    ("chhash/reorder-fence/1", mpb, "chhash.c:275", msg);
    ("chash/delete-fence/0", mpb, "CHash.c:153", msg);
    ("chash/reorder-fence/0", mpb, "CHash.c:153", msg);
  ]

let test_resurrected_blind_spot_mutants () =
  let bases =
    Inject.Evaluate.corpus_bases ~offset_sensitive:false ()
    @ Inject.Evaluate.exemplar_bases ~offset_sensitive:false ()
  in
  let s =
    Inject.Evaluate.run
      ~operators:
        [ Inject.Mutation.Delete_fence; Inject.Mutation.Reorder_fence ]
      ~dynamic:false ~crash:false bases
  in
  let fns = List.filter Inject.Evaluate.is_known_blind_spot s.Inject.Evaluate.results in
  check Alcotest.int "10 legacy blind-spot false negatives" 10
    (List.length fns);
  let caught =
    List.concat_map
      (fun (r : Inject.Evaluate.mutant_result) ->
        let m = r.Inject.Evaluate.mutant in
        let b =
          List.find
            (fun (b : Inject.Evaluate.base) ->
              b.Inject.Evaluate.bname = m.Inject.Mutation.base)
            bases
        in
        let res =
          Analysis.Checker.check ~model:m.Inject.Mutation.model
            ~roots:b.Inject.Evaluate.roots m.Inject.Mutation.prog
        in
        List.map
          (fun (w : Analysis.Warning.t) ->
            ( m.Inject.Mutation.id,
              Analysis.Warning.rule_name w.Analysis.Warning.rule,
              Fmt.str "%a" Nvmir.Loc.pp w.Analysis.Warning.loc,
              w.Analysis.Warning.message ))
          (List.filter
             (Inject.Mutation.expect_matches
                m.Inject.Mutation.truth.Inject.Mutation.primary)
             res.Analysis.Checker.warnings))
      fns
  in
  let quad =
    Alcotest.(list (pair string (pair string (pair string string))))
  in
  let nest = List.map (fun (a, b, c, d) -> (a, (b, (c, d)))) in
  check quad "offset-aware checker catches all 10 with pinned warnings"
    (nest resurrected_pins) (nest caught)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_mutants_roundtrip;
    QCheck_alcotest.to_alcotest prop_mutants_autofixable;
    tc "pmdk static-tier recall = 1.0" `Quick test_pmdk_static_recall;
    tc "matrix deterministic for fixed seed" `Quick test_matrix_deterministic;
    tc "split-strand races observed dynamically" `Quick
      test_split_strand_detected;
    tc "resurrected blind-spot mutants caught with offsets" `Quick
      test_resurrected_blind_spot_mutants;
  ]
