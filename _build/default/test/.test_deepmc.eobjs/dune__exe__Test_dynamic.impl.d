test/test_dynamic.ml: Alcotest Analysis Fmt List Nvmir Runtime
