test/test_corpus.ml: Alcotest Analysis Corpus Deepmc Fmt List Nvmir Option Printexc Runtime
