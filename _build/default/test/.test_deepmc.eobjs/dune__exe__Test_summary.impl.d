test/test_summary.ml: Alcotest Analysis Corpus Deepmc List Nvmir
