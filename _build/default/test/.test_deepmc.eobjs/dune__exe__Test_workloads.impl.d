test/test_workloads.ml: Alcotest Array Fmt List Runtime Workloads
