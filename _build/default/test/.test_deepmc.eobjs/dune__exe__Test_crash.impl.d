test/test_crash.ml: Alcotest Corpus List Nvmir Runtime
