test/test_interp.ml: Alcotest Corpus Nvmir QCheck QCheck_alcotest Runtime
