test/test_autofix.ml: Alcotest Analysis Corpus Deepmc Fmt List Nvmir
