test/test_trace.ml: Alcotest Analysis Corpus Dsa Fmt List Nvmir QCheck QCheck_alcotest String
