test/test_strand_store.ml: Alcotest Analysis Runtime Workloads
