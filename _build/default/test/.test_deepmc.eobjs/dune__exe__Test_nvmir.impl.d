test/test_nvmir.ml: Alcotest Fmt Instr List Nvmir Operand Place String
