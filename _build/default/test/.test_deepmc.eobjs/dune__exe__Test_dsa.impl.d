test/test_dsa.ml: Alcotest Dsa Fmt List Nvmir QCheck QCheck_alcotest
