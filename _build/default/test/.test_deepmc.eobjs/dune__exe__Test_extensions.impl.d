test/test_extensions.ml: Alcotest Analysis Deepmc List Nvmir Option Runtime String
