test/test_misc.ml: Alcotest Analysis Deepmc List Nvmir Option Runtime
