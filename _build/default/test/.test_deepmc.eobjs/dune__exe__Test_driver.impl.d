test/test_driver.ml: Alcotest Analysis Corpus Deepmc List Nvmir QCheck QCheck_alcotest String
