test/test_graphs.ml: Alcotest Corpus Graphs Hashtbl List Nvmir Option QCheck QCheck_alcotest String
