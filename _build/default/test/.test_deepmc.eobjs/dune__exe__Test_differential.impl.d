test/test_differential.ml: Alcotest Analysis Corpus Dsa Fmt List Nvmir Option QCheck QCheck_alcotest Runtime
