test/test_deepmc.mli:
