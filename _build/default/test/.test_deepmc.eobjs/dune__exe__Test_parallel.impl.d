test/test_parallel.ml: Alcotest Analysis Corpus Deepmc Fun List
