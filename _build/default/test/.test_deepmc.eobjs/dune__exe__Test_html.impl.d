test/test_html.ml: Alcotest Analysis Deepmc List Nvmir String
