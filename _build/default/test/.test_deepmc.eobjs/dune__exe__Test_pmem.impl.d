test/test_pmem.ml: Alcotest Array Fmt Hashtbl List Nvmir QCheck QCheck_alcotest Runtime String
