test/test_durability.ml: Alcotest Analysis Corpus Deepmc Fmt List Nvmir QCheck QCheck_alcotest Runtime Workloads
