test/test_rules.ml: Alcotest Analysis Fmt List Nvmir
