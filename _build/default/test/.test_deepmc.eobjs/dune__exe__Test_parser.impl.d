test/test_parser.ml: Alcotest Corpus Fmt List Nvmir QCheck QCheck_alcotest
