test/test_scoped.ml: Alcotest Analysis Corpus Deepmc Dsa Fmt List Nvmir QCheck QCheck_alcotest Runtime String
