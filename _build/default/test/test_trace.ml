(* Tests for trace collection: path enumeration, bounds, persistent-op
   filtering, and interprocedural merging. *)

let tc = Alcotest.test_case
let check = Alcotest.check

let collect ?(config = Analysis.Config.default) ?roots src =
  let prog = Nvmir.Parser.parse src in
  let dsg = Dsa.Dsg.build prog in
  Analysis.Trace.collect ~config ?roots dsg prog

let traces_of ?config ?roots src name =
  match List.assoc_opt name (collect ?config ?roots src) with
  | Some ts -> ts
  | None -> Alcotest.fail ("no traces for root " ^ name)

let kinds trace =
  List.filter_map
    (fun (e : Analysis.Event.t) ->
      match e.Analysis.Event.kind with
      | Analysis.Event.Write _ -> Some "W"
      | Analysis.Event.Flush _ -> Some "F"
      | Analysis.Event.Fence -> Some "B"
      | Analysis.Event.Log _ -> Some "L"
      | Analysis.Event.Tx_begin -> Some "T{"
      | Analysis.Event.Tx_end -> Some "}T"
      | _ -> None)
    trace

let test_straightline_trace () =
  let ts =
    traces_of
      {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  flush exact p->f
  fence
  ret
}
|}
      "main"
  in
  check Alcotest.int "one trace" 1 (List.length ts);
  check Alcotest.(list string) "event kinds" [ "W"; "F"; "B" ]
    (kinds (List.hd ts))

let test_volatile_ops_filtered () =
  let ts =
    traces_of
      {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc vmem s
  store p->f, 1
  flush exact p->f
  fence
  ret
}
|}
      "main"
  in
  (* volatile writes and flushes are dropped; the bare fence remains *)
  check Alcotest.(list string) "only the fence survives" [ "B" ]
    (kinds (List.hd ts))

let test_branch_paths () =
  let ts =
    traces_of
      {|
struct s { f: int, g: int }
func main(n: int) {
entry:
  p = alloc pmem s
  c = n > 0
  br c, yes, no
yes:
  store p->f, 1
  br fin
no:
  store p->g, 2
  br fin
fin:
  persist object p
  ret
}
|}
      "main"
  in
  check Alcotest.int "two paths" 2 (List.length ts)

let test_loop_bound () =
  let config = { Analysis.Config.default with Analysis.Config.loop_bound = 3 } in
  let ts =
    traces_of ~config
      {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  i = 0
  br loop
loop:
  store p->f, i
  persist exact p->f
  i = i + 1
  c = i < 100
  br c, loop, fin
fin:
  ret
}
|}
      "main"
  in
  (* the back edge is taken at most loop_bound times: paths with 1..4
     iterations are enumerated *)
  check Alcotest.int "bounded paths" 4 (List.length ts);
  let max_writes =
    List.fold_left
      (fun acc t ->
        max acc (List.length (List.filter (String.equal "W") (kinds t))))
      0 ts
  in
  check Alcotest.int "at most loop_bound+1 writes" 4 max_writes

let call_src =
  {|
struct s { f: int, g: int }
func callee(p: ptr s) {
entry:
  store p->f, 1
  flush exact p->f
  fence
  ret
}
func main() {
entry:
  p = alloc pmem s
  call callee(p)
  store p->g, 2
  persist exact p->g
  ret
}
|}

let test_interprocedural_merge () =
  let ts = traces_of call_src "main" in
  check Alcotest.int "one merged trace" 1 (List.length ts);
  check Alcotest.(list string) "callee spliced before caller tail"
    [ "W"; "F"; "B"; "W"; "F"; "B" ]
    (kinds (List.hd ts));
  (* provenance markers are kept *)
  let t = List.hd ts in
  check Alcotest.bool "call mark present" true
    (List.exists
       (fun (e : Analysis.Event.t) ->
         match e.Analysis.Event.kind with
         | Analysis.Event.Call_mark "callee" -> true
         | _ -> false)
       t);
  check Alcotest.bool "ret mark present" true
    (List.exists
       (fun (e : Analysis.Event.t) ->
         match e.Analysis.Event.kind with
         | Analysis.Event.Ret_mark "callee" -> true
         | _ -> false)
       t)

let test_recursion_bounded () =
  let src =
    {|
struct s { f: int, g: int }
func rec_f(p: ptr s, n: int) {
entry:
  store p->f, n
  persist exact p->f
  m = n - 1
  c = m > 0
  br c, again, fin
again:
  call rec_f(p, m)
  br fin
fin:
  ret
}
func main() {
entry:
  p = alloc pmem s
  call rec_f(p, 100)
  ret
}
|}
  in
  (* must terminate and produce bounded traces *)
  let ts = traces_of src "main" in
  check Alcotest.bool "some traces" true (ts <> []);
  check Alcotest.bool "bounded count" true
    (List.length ts <= Analysis.Config.default.Analysis.Config.max_paths)

let test_max_paths_cap () =
  (* 2^10 paths from 10 sequential branches, capped at max_paths *)
  let blocks =
    String.concat "\n"
      (List.init 10 (fun i ->
           Fmt.str
             "b%d:\n  c%d = n > %d\n  br c%d, t%d, f%d\nt%d:\n  br b%d\nf%d:\n  br b%d"
             i i i i i i i (i + 1) i (i + 1)))
  in
  let src =
    Fmt.str
      {|
struct s { f: int, g: int }
func main(n: int) {
entry:
  p = alloc pmem s
  br b0
%s
b10:
  persist object p
  ret
}
|}
      blocks
  in
  let config = { Analysis.Config.default with Analysis.Config.max_paths = 16 } in
  let ts = traces_of ~config src "main" in
  check Alcotest.int "capped" 16 (List.length ts)

let test_roots_selection () =
  let per_root =
    collect ~roots:[ "callee" ] call_src
  in
  check Alcotest.int "one root" 1 (List.length per_root);
  check Alcotest.string "requested root" "callee" (fst (List.hd per_root))

let prop_traces_end_balanced =
  QCheck.Test.make ~name:"traces have balanced tx markers" ~count:20
    QCheck.(map abs int)
    (fun seed ->
      let cfg = { Corpus.Synth.default_config with seed; nfuncs = 10 } in
      let prog, _ = Corpus.Synth.generate cfg in
      let dsg = Dsa.Dsg.build prog in
      let all = Analysis.Trace.collect dsg prog ~roots:(Corpus.Synth.roots cfg) in
      List.for_all
        (fun (_, ts) ->
          List.for_all
            (fun t ->
              let depth =
                List.fold_left
                  (fun d (e : Analysis.Event.t) ->
                    match e.Analysis.Event.kind with
                    | Analysis.Event.Tx_begin -> d + 1
                    | Analysis.Event.Tx_end -> d - 1
                    | _ -> d)
                  0 t
              in
              depth = 0)
            ts)
        all)

let suite =
  [
    tc "straight-line trace" `Quick test_straightline_trace;
    tc "volatile operations filtered out" `Quick test_volatile_ops_filtered;
    tc "branch enumeration" `Quick test_branch_paths;
    tc "loop bound" `Quick test_loop_bound;
    tc "interprocedural merge (Fig. 11)" `Quick test_interprocedural_merge;
    tc "recursion bounded" `Quick test_recursion_bounded;
    tc "max-paths cap" `Quick test_max_paths_cap;
    tc "explicit roots" `Quick test_roots_selection;
    QCheck_alcotest.to_alcotest prop_traces_end_balanced;
  ]
