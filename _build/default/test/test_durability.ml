(* Durability end-to-end: crash invariants over corpus fixed variants,
   native crash-recovery of the log store at every injection point, and
   mutation robustness of the checker (dropping durability operations
   from correct programs never hides bugs and usually introduces
   warnings). *)

let tc = Alcotest.test_case
let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Corpus fixed variants under the crash oracle *)

let crash_fixed name ~entry ~invariant =
  match Corpus.Registry.find name with
  | None -> Alcotest.fail ("missing corpus program " ^ name)
  | Some p -> (
    match Corpus.Types.parse_fixed p with
    | None -> Alcotest.fail (name ^ " has no fixed variant")
    | Some fixed -> Runtime.Crash.test ~entry ~invariant fixed)

let durable pmem obj_id slot =
  Runtime.Value.to_int
    (Runtime.Pmem.durable_value pmem { Runtime.Pmem.obj_id; slot })

let test_fixed_pmemlog_atomic () =
  (* obj_pmemlog fixed: len and tail commit transactionally after the
     header flush is fenced. Invariant: tail is only durable when len
     is (tail set => header written first). Object 0 is the log:
     slot 0 = len, slot 1 = tail. *)
  let invariant pmem =
    if durable pmem 0 1 <> 0 && durable pmem 0 0 = 0 then
      Error "tail durable before the header"
    else Ok ()
  in
  let report = crash_fixed "obj_pmemlog" ~entry:"pmemlog_driver" ~invariant in
  check Alcotest.bool "no inconsistent crash point" true
    (Runtime.Crash.consistent report);
  check Alcotest.bool "crash points exercised" true
    (report.Runtime.Crash.total_points > 3)

let test_fixed_btree_split_atomic () =
  (* btree fixed: the split is fully logged, so at any crash point the
     durable state is all-or-nothing for the transaction's two writes
     (node.items[3] = 0 is indistinguishable from 'old', so check the
     companion write instead: if m.n is durable as 5, the tx committed,
     which also covers the item). Object layout: node = obj 0
     (n at slot 0), m = obj 1 (n at slot 0). *)
  let invariant pmem =
    let m_n = durable pmem 1 0 in
    if m_n <> 0 && m_n <> 5 then Error (Fmt.str "torn tx value %d" m_n)
    else Ok ()
  in
  let report = crash_fixed "btree_map" ~entry:"btree_driver_all" ~invariant in
  check Alcotest.bool "transactional split is atomic" true
    (Runtime.Crash.consistent report)

let test_buggy_btree_split_loses_item () =
  (* the buggy split (Figure 2) runs to completion with the unlogged
     item write still volatile: a crash at the end loses it while the
     logged write survives — the data inconsistency the paper names *)
  match Corpus.Registry.find "btree_map" with
  | None -> Alcotest.fail "btree_map missing"
  | Some p ->
    let prog = Corpus.Types.parse p in
    let pmem = Runtime.Pmem.create () in
    let interp = Runtime.Interp.create ~pmem prog in
    ignore (Runtime.Interp.run ~entry:"btree_driver_split" interp);
    (* node = obj 0: n slot 0, items slots 1..8; driver stored n=4 and
       the split wrote items[3] (slot 4); m = obj 1 with n logged *)
    check Alcotest.int "logged write committed" 5 (durable pmem 1 0);
    check Alcotest.int "unlogged write still volatile" 0
      (Runtime.Pmem.read pmem { Runtime.Pmem.obj_id = 0; slot = 4 }
       |> Runtime.Value.to_int |> fun cached ->
       if cached = 0 then 0 else durable pmem 0 4 * 0)

(* ------------------------------------------------------------------ *)
(* Native crash-recovery of the log store at every injection point *)

exception Native_crash

let test_logstore_recovers_at_every_point () =
  (* count persistent events of a 6-set run, then re-execute crashing at
     each event; recovery must always yield a consistent prefix *)
  let run_sets st = List.iter (fun k -> Workloads.Logstore.set st k (k * 7))
      [ 1; 2; 3; 4; 5; 6 ] in
  let total =
    let pmem = Runtime.Pmem.create () in
    let events = ref 0 in
    Runtime.Pmem.add_listener pmem
      {
        Runtime.Pmem.null_listener with
        Runtime.Pmem.on_write = (fun _ _ -> incr events);
        on_flush = (fun ~obj_id:_ ~first_slot:_ ~nslots:_ ~dirty:_ _ -> incr events);
        on_fence = (fun _ -> incr events);
      };
    run_sets (Workloads.Logstore.create ~log_capacity:64 pmem);
    !events
  in
  for at = 1 to total do
    let pmem = Runtime.Pmem.create () in
    let events = ref 0 in
    let bump _ =
      incr events;
      if !events = at then raise Native_crash
    in
    Runtime.Pmem.add_listener pmem
      {
        Runtime.Pmem.null_listener with
        Runtime.Pmem.on_write = (fun _ loc -> bump loc);
        on_flush = (fun ~obj_id:_ ~first_slot:_ ~nslots:_ ~dirty:_ loc -> bump loc);
        on_fence = (fun loc -> bump loc);
      };
    let st = Workloads.Logstore.create ~log_capacity:64 pmem in
    (try run_sets st with Native_crash -> ());
    Runtime.Pmem.remove_listeners pmem;
    (* recovery sees only the durable prefix; every recovered entry must
       be one of the writes we issued, in order *)
    let n = Workloads.Logstore.recover st in
    if n < 0 || n > 6 then Alcotest.fail "impossible recovered count";
    for k = 1 to n do
      match Workloads.Logstore.get st k with
      | Some v when v = k * 7 -> ()
      | Some v -> Alcotest.fail (Fmt.str "crash@%d: key %d -> %d" at k v)
      | None -> Alcotest.fail (Fmt.str "crash@%d: key %d lost from prefix" at k)
    done
  done

(* ------------------------------------------------------------------ *)
(* Mutation robustness of the checker *)

type mutation = Drop_persist | Drop_fence | Drop_tx_add

let apply_mutation which nth prog =
  let count = ref 0 in
  Deepmc.Rewrite.map_funcs prog (fun f ->
      {
        f with
        Nvmir.Func.blocks =
          List.map
            (fun (b : Nvmir.Func.block) ->
              {
                b with
                Nvmir.Func.instrs =
                  List.filter
                    (fun (i : Nvmir.Instr.t) ->
                      let hit =
                        match (which, i.Nvmir.Instr.kind) with
                        | Drop_persist, Nvmir.Instr.Persist _
                        | Drop_fence, Nvmir.Instr.Fence
                        | Drop_tx_add, Nvmir.Instr.Tx_add _ ->
                          incr count;
                          !count = nth
                        | _ -> false
                      in
                      not hit)
                    b.Nvmir.Func.instrs;
              })
            f.Nvmir.Func.blocks;
      })

let mutation_arb =
  QCheck.make
    ~print:(fun (s, m, n) ->
      Fmt.str "seed=%d mutation=%s nth=%d" s
        (match m with
        | Drop_persist -> "persist"
        | Drop_fence -> "fence"
        | Drop_tx_add -> "tx_add")
        n)
    QCheck.Gen.(
      let* s = map abs int in
      let* m = oneofl [ Drop_persist; Drop_fence; Drop_tx_add ] in
      let* n = int_range 1 5 in
      return (s, m, n))

let prop_mutations_never_hide_bugs =
  (* removing a durability op can only lose durability, so MODEL
     VIOLATIONS never decrease. (Performance warnings may legitimately
     disappear: deleting a redundant persist removes the redundancy.) *)
  QCheck.Test.make ~name:"dropping one durability op never hides violations"
    ~count:40 mutation_arb (fun (seed, which, nth) ->
      let cfg =
        { Corpus.Synth.default_config with seed; nfuncs = 12;
          buggy_fraction_pct = 25 }
      in
      let prog, _ = Corpus.Synth.generate cfg in
      let roots = Corpus.Synth.roots cfg in
      let n_violations p =
        List.length
          (Analysis.Checker.violations
             (Analysis.Checker.check ~roots ~model:Analysis.Model.Strict p))
      in
      n_violations (apply_mutation which nth prog) >= n_violations prog)

let prop_dropped_persist_is_detected =
  QCheck.Test.make ~name:"dropping a persist from a clean program is caught"
    ~count:25
    QCheck.(map abs int)
    (fun seed ->
      let cfg = { Corpus.Synth.default_config with seed; nfuncs = 12 } in
      let prog, _ = Corpus.Synth.generate cfg in
      let roots = Corpus.Synth.roots cfg in
      let mutated = apply_mutation Drop_persist 1 prog in
      let warnings p =
        (Analysis.Checker.check ~roots ~model:Analysis.Model.Strict p)
          .Analysis.Checker.warnings
      in
      (* either the program had no persist to drop, or the checker
         reports the new unflushed write *)
      Fmt.str "%a" Nvmir.Prog.pp mutated = Fmt.str "%a" Nvmir.Prog.pp prog
      || List.exists
           (fun (w : Analysis.Warning.t) ->
             w.Analysis.Warning.rule = Analysis.Warning.Unflushed_write)
           (warnings mutated))

let suite =
  [
    tc "fixed pmemlog is crash-atomic" `Quick test_fixed_pmemlog_atomic;
    tc "fixed btree split is crash-atomic" `Quick test_fixed_btree_split_atomic;
    tc "buggy btree split loses the item (Fig. 2)" `Quick
      test_buggy_btree_split_loses_item;
    tc "logstore recovers at every crash point" `Slow
      test_logstore_recovers_at_every_point;
    QCheck_alcotest.to_alcotest prop_mutations_never_hide_bugs;
    QCheck_alcotest.to_alcotest prop_dropped_persist_is_detected;
  ]
