(* Tests for CFGs, dominators, natural loops and call graphs. *)

let tc = Alcotest.test_case
let check = Alcotest.check

(* A diamond with a loop on one arm:

     entry -> a -> b -> join
           \-> c -/
     b -> b (self loop via latch)            *)
let diamond_with_loop () =
  Nvmir.Parser.parse
    {|
func f(n: int) {
entry:
  c = n > 0
  br c, a, cc
a:
  i = 0
  br b
b:
  i = i + 1
  d = i < 10
  br d, b, join
cc:
  x = 1
  br join
join:
  ret
}
|}

let cfg_of prog name =
  match Nvmir.Prog.find_func prog name with
  | Some f -> Graphs.Cfg.of_func f
  | None -> Alcotest.fail ("no function " ^ name)

let test_cfg_edges () =
  let cfg = cfg_of (diamond_with_loop ()) "f" in
  check Alcotest.(slist string compare) "entry succs" [ "a"; "cc" ]
    (Graphs.Cfg.successors cfg "entry");
  check Alcotest.(slist string compare) "join preds" [ "b"; "cc" ]
    (Graphs.Cfg.predecessors cfg "join");
  check Alcotest.int "blocks" 5 (Graphs.Cfg.block_count cfg)

let test_cfg_orders () =
  let cfg = cfg_of (diamond_with_loop ()) "f" in
  let pre = Graphs.Cfg.dfs_preorder cfg in
  check Alcotest.string "starts at entry" "entry" (List.hd pre);
  check Alcotest.int "visits all blocks" 5 (List.length pre);
  let rpo = Graphs.Cfg.reverse_postorder cfg in
  check Alcotest.string "rpo starts at entry" "entry" (List.hd rpo);
  (* in RPO a block precedes its (non-back-edge) successors *)
  let idx l = Option.get (List.find_index (String.equal l) rpo) in
  Alcotest.(check bool) "a before b" true (idx "a" < idx "b");
  Alcotest.(check bool) "b before join" true (idx "b" < idx "join")

let test_dominators () =
  let cfg = cfg_of (diamond_with_loop ()) "f" in
  let doms = Graphs.Dominators.compute cfg in
  check Alcotest.(option string) "idom of a" (Some "entry")
    (Graphs.Dominators.idom doms "a");
  check Alcotest.(option string) "idom of join" (Some "entry")
    (Graphs.Dominators.idom doms "join");
  check Alcotest.bool "entry dominates all" true
    (Graphs.Dominators.dominates doms "entry" "join");
  check Alcotest.bool "a does not dominate join" false
    (Graphs.Dominators.dominates doms "a" "join");
  check Alcotest.bool "b dominates b" true
    (Graphs.Dominators.dominates doms "b" "b")

let test_loops () =
  let cfg = cfg_of (diamond_with_loop ()) "f" in
  let loops = Graphs.Loops.compute cfg in
  check Alcotest.(list string) "one loop header" [ "b" ]
    (Graphs.Loops.headers loops);
  check Alcotest.bool "b->b is a back edge" true
    (Graphs.Loops.is_back_edge loops ~source:"b" ~target:"b");
  check Alcotest.bool "entry->a is not" false
    (Graphs.Loops.is_back_edge loops ~source:"entry" ~target:"a");
  check Alcotest.bool "b in loop" true (Graphs.Loops.in_loop loops "b");
  check Alcotest.bool "join not in loop" false (Graphs.Loops.in_loop loops "join")

let call_prog () =
  Nvmir.Parser.parse
    {|
func leaf() { entry: ret }
func mid() { entry: call leaf() ret }
func top() { entry: call mid() call leaf() ret }
func rec_a() { entry: call rec_b() ret }
func rec_b() { entry: call rec_a() ret }
|}

let test_callgraph_edges () =
  let cg = Graphs.Callgraph.of_prog (call_prog ()) in
  check Alcotest.(slist string compare) "top callees" [ "leaf"; "mid" ]
    (Graphs.Callgraph.callees cg "top");
  check Alcotest.(slist string compare) "leaf callers" [ "mid"; "top" ]
    (Graphs.Callgraph.callers cg "leaf");
  check Alcotest.(slist string compare) "roots" [ "top" ]
    (Graphs.Callgraph.roots cg)

let test_callgraph_postorder () =
  let cg = Graphs.Callgraph.of_prog (call_prog ()) in
  let po = Graphs.Callgraph.postorder cg in
  let idx n = Option.get (List.find_index (String.equal n) po) in
  Alcotest.(check bool) "leaf before mid" true (idx "leaf" < idx "mid");
  Alcotest.(check bool) "mid before top" true (idx "mid" < idx "top");
  check Alcotest.int "covers all functions" 5 (List.length po)

let test_callgraph_sccs () =
  let cg = Graphs.Callgraph.of_prog (call_prog ()) in
  let sccs = Graphs.Callgraph.sccs cg in
  let cyclic = List.filter (fun s -> List.length s > 1) sccs in
  check Alcotest.int "one cyclic component" 1 (List.length cyclic);
  check
    Alcotest.(slist string compare)
    "the recursive pair" [ "rec_a"; "rec_b" ] (List.hd cyclic);
  check Alcotest.bool "rec_a recursive" true
    (Graphs.Callgraph.is_recursive cg "rec_a");
  check Alcotest.bool "leaf not recursive" false
    (Graphs.Callgraph.is_recursive cg "leaf")

(* properties over generated programs *)
let prop_rpo_covers_reachable =
  QCheck.Test.make ~name:"RPO covers exactly the reachable blocks" ~count:25
    QCheck.(map abs int)
    (fun seed ->
      let cfg_s = { Corpus.Synth.default_config with seed; nfuncs = 6 } in
      let prog, _ = Corpus.Synth.generate cfg_s in
      List.for_all
        (fun f ->
          let cfg = Graphs.Cfg.of_func f in
          let rpo = Graphs.Cfg.reverse_postorder cfg in
          let pre = Graphs.Cfg.dfs_preorder cfg in
          List.sort compare rpo = List.sort compare pre)
        (Nvmir.Prog.funcs prog))

let ( ==> ) a b = (not a) || b

let prop_postorder_callees_first =
  QCheck.Test.make ~name:"call-graph postorder puts callees first" ~count:25
    QCheck.(map abs int)
    (fun seed ->
      let cfg_s = { Corpus.Synth.default_config with seed; nfuncs = 12 } in
      let prog, _ = Corpus.Synth.generate cfg_s in
      let cg = Graphs.Callgraph.of_prog prog in
      let po = Graphs.Callgraph.postorder cg in
      let pos = Hashtbl.create 16 in
      List.iteri (fun i n -> Hashtbl.replace pos n i) po;
      List.for_all
        (fun f ->
          let name = Nvmir.Func.name f in
          (not (Graphs.Callgraph.is_recursive cg name))
          ==> List.for_all
                (fun callee ->
                  match
                    (Hashtbl.find_opt pos callee, Hashtbl.find_opt pos name)
                  with
                  | Some ci, Some ni -> ci < ni
                  | _ -> true)
                (Graphs.Callgraph.callees cg name))
        (Nvmir.Prog.funcs prog))

let suite =
  [
    tc "cfg: edges" `Quick test_cfg_edges;
    tc "cfg: traversal orders" `Quick test_cfg_orders;
    tc "dominators" `Quick test_dominators;
    tc "natural loops" `Quick test_loops;
    tc "callgraph: edges and roots" `Quick test_callgraph_edges;
    tc "callgraph: postorder" `Quick test_callgraph_postorder;
    tc "callgraph: SCCs and recursion" `Quick test_callgraph_sccs;
    QCheck_alcotest.to_alcotest prop_rpo_covers_reachable;
    QCheck_alcotest.to_alcotest prop_postorder_callees_first;
  ]
