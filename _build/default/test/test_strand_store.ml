(* Tests for the strand-persistent KV store and its interaction with the
   dynamic checker — the §4.4 concurrency use case. *)

let tc = Alcotest.test_case
let check = Alcotest.check

let build ?(sloppy = false) ?(batch = 8) () =
  let pmem = Runtime.Pmem.create () in
  let checker = Runtime.Dynamic.create ~model:Analysis.Model.Strand () in
  Runtime.Dynamic.attach checker pmem;
  let kv =
    Workloads.Kvstore_strand.create ~capacity:256 ~partitions:8 ~batch
      ~sloppy_strands:sloppy pmem
  in
  (pmem, checker, kv)

let test_get_set_semantics () =
  let _, _, kv = build () in
  check Alcotest.bool "set" true (Workloads.Kvstore_strand.set kv 5 50);
  check Alcotest.(option int) "get" (Some 50) (Workloads.Kvstore_strand.get kv 5);
  ignore (Workloads.Kvstore_strand.set kv 5 51);
  check Alcotest.(option int) "overwrite" (Some 51)
    (Workloads.Kvstore_strand.get kv 5);
  check Alcotest.(option int) "missing" None (Workloads.Kvstore_strand.get kv 9)

let test_disciplined_strands_race_free () =
  let _, checker, kv = build () in
  for i = 1 to 500 do
    ignore (Workloads.Kvstore_strand.set kv (1 + (i mod 16)) i)
  done;
  Workloads.Kvstore_strand.quiesce kv;
  let s = Runtime.Dynamic.summary checker in
  check Alcotest.int "no WAW races" 0 s.Runtime.Dynamic.waw;
  check Alcotest.int "no RAW races" 0 s.Runtime.Dynamic.raw

let test_sloppy_strands_race () =
  let _, checker, kv = build ~sloppy:true () in
  (* hammer one key: every same-batch pair is a concurrent WAW *)
  for i = 1 to 100 do
    ignore (Workloads.Kvstore_strand.set kv 7 i)
  done;
  Workloads.Kvstore_strand.quiesce kv;
  let s = Runtime.Dynamic.summary checker in
  check Alcotest.bool "WAW races detected" true (s.Runtime.Dynamic.waw > 0)

let test_batch_one_is_race_free_even_sloppy () =
  (* a barrier after every mutation orders everything: even sloppy ids
     cannot race *)
  let _, checker, kv = build ~sloppy:true ~batch:1 () in
  for i = 1 to 100 do
    ignore (Workloads.Kvstore_strand.set kv 7 i)
  done;
  let s = Runtime.Dynamic.summary checker in
  check Alcotest.int "barrier-per-op kills concurrency" 0 s.Runtime.Dynamic.waw

let test_quiesce_makes_durable () =
  let pmem, _, kv = build () in
  ignore (Workloads.Kvstore_strand.set kv 3 33);
  Workloads.Kvstore_strand.quiesce kv;
  check Alcotest.int "nothing volatile after quiesce" 0
    (Runtime.Pmem.volatile_slot_count pmem)

let test_batched_barriers_cheaper () =
  (* the point of strand persistency: fewer barriers for the same
     updates *)
  let fences_with ~batch =
    let pmem = Runtime.Pmem.create () in
    let kv = Workloads.Kvstore_strand.create ~capacity:256 ~batch pmem in
    for i = 1 to 64 do
      ignore (Workloads.Kvstore_strand.set kv i i)
    done;
    Workloads.Kvstore_strand.quiesce kv;
    (Runtime.Pmem.stats pmem).Runtime.Pmem.fences
  in
  let per_op = fences_with ~batch:1 in
  let batched = fences_with ~batch:8 in
  check Alcotest.int "one barrier per op" 64 per_op;
  check Alcotest.int "one barrier per batch" 8 batched

let suite =
  [
    tc "strand store: semantics" `Quick test_get_set_semantics;
    tc "strand store: disciplined ids race-free" `Quick
      test_disciplined_strands_race_free;
    tc "strand store: sloppy ids race" `Quick test_sloppy_strands_race;
    tc "strand store: barrier-per-op safe even sloppy" `Quick
      test_batch_one_is_race_free_even_sloppy;
    tc "strand store: quiesce durability" `Quick test_quiesce_makes_durable;
    tc "strand store: batching saves barriers" `Quick
      test_batched_barriers_cheaper;
  ]
