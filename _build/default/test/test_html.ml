(* Tests for the HTML report renderer. *)

let tc = Alcotest.test_case
let check = Alcotest.check

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let report_of src =
  let prog = Nvmir.Parser.parse src in
  let d = Deepmc.Driver.make Analysis.Model.Strict in
  (prog, Deepmc.Driver.analyze d ~entry:"main" prog)

let buggy_src = {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  store p->f, 1   @ bank.c:10
  ret
}
|}

let clean_src = {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  persist exact p->f
  ret
}
|}

let test_escape () =
  check Alcotest.string "entities" "&lt;a&gt; &amp; &quot;b&quot;"
    (Deepmc.Html_report.escape "<a> & \"b\"")

let test_buggy_report_content () =
  let prog, report = report_of buggy_src in
  let html = Deepmc.Html_report.render ~title:"t" prog report in
  List.iter
    (fun needle ->
      if not (contains html needle) then Alcotest.fail ("missing " ^ needle))
    [
      "<!DOCTYPE html>"; "unflushed-write"; "bank.c:10"; "class=\"hit\"";
      "model violations"; "</html>";
    ]

let test_clean_report_content () =
  let prog, report = report_of clean_src in
  let html = Deepmc.Html_report.render prog report in
  check Alcotest.bool "no-warnings message" true
    (contains html "No warnings");
  check Alcotest.bool "no highlighted lines" false (contains html "class=\"hit\"")

let test_balanced_tags () =
  let prog, report = report_of buggy_src in
  let html = Deepmc.Html_report.render prog report in
  let count needle =
    let nh = String.length html and nn = String.length needle in
    let rec go i acc =
      if i + nn > nh then acc
      else if String.sub html i nn = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  List.iter
    (fun tag ->
      check Alcotest.int (tag ^ " balanced")
        (count ("<" ^ tag))
        (count ("</" ^ tag ^ ">")))
    [ "table"; "tr"; "td"; "th"; "pre"; "h2"; "footer"; "html"; "body" ]

let suite =
  [
    tc "escape" `Quick test_escape;
    tc "buggy report content" `Quick test_buggy_report_content;
    tc "clean report content" `Quick test_clean_report_content;
    tc "balanced tags" `Quick test_balanced_tags;
  ]
