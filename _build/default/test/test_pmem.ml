(* Tests for the NVM runtime simulator: the write/flush/fence state
   machine, transactions with undo logging, crash semantics, listeners,
   cost accounting — plus qcheck state-machine properties over random
   operation sequences. *)

let tc = Alcotest.test_case
let check = Alcotest.check

let tenv = Nvmir.Ty.env_create ()

let fresh_obj ?(size = 16) pmem =
  Runtime.Pmem.alloc pmem ~tenv ~persistent:true
    (Nvmir.Ty.Array (Nvmir.Ty.Int, size))

let addr obj slot = { Runtime.Pmem.obj_id = obj; slot }
let vint n = Runtime.Value.Vint n
let to_int = Runtime.Value.to_int

let test_write_read () =
  let pmem = Runtime.Pmem.create () in
  let o = fresh_obj pmem in
  Runtime.Pmem.write pmem (addr o 3) (vint 7);
  check Alcotest.int "cached read" 7 (to_int (Runtime.Pmem.read pmem (addr o 3)));
  check Alcotest.int "durable view still default" 0
    (to_int (Runtime.Pmem.durable_value pmem (addr o 3)))

let test_state_machine () =
  let pmem = Runtime.Pmem.create () in
  let o = fresh_obj pmem in
  check Alcotest.bool "clean initially" true
    (Runtime.Pmem.slot_state pmem (addr o 0) = Runtime.Pmem.Clean);
  Runtime.Pmem.write pmem (addr o 0) (vint 1);
  check Alcotest.bool "dirty after write" true
    (Runtime.Pmem.slot_state pmem (addr o 0) = Runtime.Pmem.Dirty);
  Runtime.Pmem.flush_range pmem ~obj_id:o ~first_slot:0 ~nslots:1 ();
  check Alcotest.bool "flushed after clwb" true
    (Runtime.Pmem.slot_state pmem (addr o 0) = Runtime.Pmem.Flushed);
  check Alcotest.int "not yet durable" 0
    (to_int (Runtime.Pmem.durable_value pmem (addr o 0)));
  Runtime.Pmem.fence pmem ();
  check Alcotest.bool "clean after fence" true
    (Runtime.Pmem.slot_state pmem (addr o 0) = Runtime.Pmem.Clean);
  check Alcotest.int "durable after fence" 1
    (to_int (Runtime.Pmem.durable_value pmem (addr o 0)))

let test_redirty_between_flush_and_fence () =
  let pmem = Runtime.Pmem.create () in
  let o = fresh_obj pmem in
  Runtime.Pmem.write pmem (addr o 0) (vint 1);
  Runtime.Pmem.flush_range pmem ~obj_id:o ~first_slot:0 ~nslots:1 ();
  Runtime.Pmem.write pmem (addr o 0) (vint 2);
  (* the re-dirtied slot must not be drained by the fence *)
  Runtime.Pmem.fence pmem ();
  check Alcotest.bool "still dirty" true
    (Runtime.Pmem.slot_state pmem (addr o 0) = Runtime.Pmem.Dirty);
  check Alcotest.int "durable unchanged" 0
    (to_int (Runtime.Pmem.durable_value pmem (addr o 0)))

let test_cacheline_granularity () =
  let pmem = Runtime.Pmem.create () in
  let o = fresh_obj pmem in
  (* slots 0 and 1 share a line (default line = 8 slots) *)
  Runtime.Pmem.write pmem (addr o 0) (vint 1);
  Runtime.Pmem.write pmem (addr o 1) (vint 2);
  Runtime.Pmem.write pmem (addr o 9) (vint 3);
  Runtime.Pmem.flush_range pmem ~obj_id:o ~first_slot:0 ~nslots:1 ();
  Runtime.Pmem.fence pmem ();
  check Alcotest.int "same-line neighbour persisted" 2
    (to_int (Runtime.Pmem.durable_value pmem (addr o 1)));
  check Alcotest.int "other line untouched" 0
    (to_int (Runtime.Pmem.durable_value pmem (addr o 9)))

let test_volatile_objects_have_no_persistence () =
  let pmem = Runtime.Pmem.create () in
  let v =
    Runtime.Pmem.alloc pmem ~tenv ~persistent:false
      (Nvmir.Ty.Array (Nvmir.Ty.Int, 4))
  in
  Runtime.Pmem.write pmem (addr v 0) (vint 9);
  check Alcotest.bool "volatile slots stay clean" true
    (Runtime.Pmem.slot_state pmem (addr v 0) = Runtime.Pmem.Clean);
  Runtime.Pmem.flush_range pmem ~obj_id:v ~first_slot:0 ~nslots:1 ();
  check Alcotest.int "flushes of volatile memory are no-ops" 0
    (Runtime.Pmem.stats pmem).Runtime.Pmem.flushes

let test_tx_commit_durable () =
  let pmem = Runtime.Pmem.create () in
  let o = fresh_obj pmem in
  Runtime.Pmem.tx_begin pmem ();
  Runtime.Pmem.write pmem (addr o 0) (vint 5);
  Runtime.Pmem.tx_end pmem ();
  check Alcotest.int "committed value durable" 5
    (to_int (Runtime.Pmem.durable_value pmem (addr o 0)))

let test_tx_rollback_on_crash () =
  let pmem = Runtime.Pmem.create () in
  let o = fresh_obj pmem in
  (* establish a durable value first *)
  Runtime.Pmem.write pmem (addr o 0) (vint 10);
  Runtime.Pmem.persist_range pmem ~obj_id:o ~first_slot:0 ~nslots:1 ();
  (* an open transaction modifies and even flushes the slot *)
  Runtime.Pmem.tx_begin pmem ();
  Runtime.Pmem.write pmem (addr o 0) (vint 99);
  Runtime.Pmem.persist_range pmem ~obj_id:o ~first_slot:0 ~nslots:1 ();
  (* crash now: the undo log rolls the uncommitted write back *)
  check Alcotest.int "durable view rolls back" 10
    (to_int (Runtime.Pmem.durable_value pmem (addr o 0)));
  Runtime.Pmem.tx_end pmem ();
  check Alcotest.int "committed after tx_end" 99
    (to_int (Runtime.Pmem.durable_value pmem (addr o 0)))

let test_nested_tx_log_folding () =
  let pmem = Runtime.Pmem.create () in
  let o = fresh_obj pmem in
  Runtime.Pmem.write pmem (addr o 0) (vint 1);
  Runtime.Pmem.persist_range pmem ~obj_id:o ~first_slot:0 ~nslots:1 ();
  Runtime.Pmem.tx_begin pmem ();
  Runtime.Pmem.tx_begin pmem ();
  Runtime.Pmem.write pmem (addr o 0) (vint 2);
  Runtime.Pmem.tx_end pmem ();
  (* inner committed, outer still open: outer can still roll back *)
  check Alcotest.int "outer tx still protects" 1
    (to_int (Runtime.Pmem.durable_value pmem (addr o 0)));
  Runtime.Pmem.tx_end pmem ();
  check Alcotest.int "fully committed" 2
    (to_int (Runtime.Pmem.durable_value pmem (addr o 0)))

let test_tx_errors () =
  let pmem = Runtime.Pmem.create () in
  Alcotest.check_raises "tx_end without begin"
    (Invalid_argument "Pmem.tx_end: no open transaction") (fun () ->
      Runtime.Pmem.tx_end pmem ());
  Alcotest.check_raises "tx_add without begin"
    (Invalid_argument "Pmem.tx_add: no open transaction") (fun () ->
      Runtime.Pmem.tx_add pmem ~obj_id:0 ~first_slot:0 ~nslots:1 ())

let test_bounds_checking () =
  let pmem = Runtime.Pmem.create () in
  let o = fresh_obj ~size:4 pmem in
  Alcotest.check_raises "write out of bounds"
    (Invalid_argument (Fmt.str "Pmem.write: slot 4 out of bounds for obj%d" o))
    (fun () -> Runtime.Pmem.write pmem (addr o 4) (vint 1))

let test_stats_and_redundant_flushes () =
  let pmem = Runtime.Pmem.create () in
  let o = fresh_obj pmem in
  Runtime.Pmem.write pmem (addr o 0) (vint 1);
  Runtime.Pmem.flush_range pmem ~obj_id:o ~first_slot:0 ~nslots:1 ();
  Runtime.Pmem.fence pmem ();
  Runtime.Pmem.flush_range pmem ~obj_id:o ~first_slot:0 ~nslots:1 ();
  let s = Runtime.Pmem.stats pmem in
  check Alcotest.int "two flushes" 2 s.Runtime.Pmem.flushes;
  check Alcotest.int "one redundant" 1 s.Runtime.Pmem.redundant_flushes;
  check Alcotest.bool "cycles accumulate" true (s.Runtime.Pmem.cycles > 0)

let test_listener_events () =
  let pmem = Runtime.Pmem.create () in
  let o = fresh_obj pmem in
  let writes = ref 0 and flushes = ref 0 and fences = ref 0 in
  Runtime.Pmem.add_listener pmem
    {
      Runtime.Pmem.null_listener with
      Runtime.Pmem.on_write = (fun _ _ -> incr writes);
      on_flush = (fun ~obj_id:_ ~first_slot:_ ~nslots:_ ~dirty:_ _ -> incr flushes);
      on_fence = (fun _ -> incr fences);
    };
  Runtime.Pmem.write pmem (addr o 0) (vint 1);
  Runtime.Pmem.persist_range pmem ~obj_id:o ~first_slot:0 ~nslots:1 ();
  check Alcotest.(list int) "events seen" [ 1; 1; 1 ] [ !writes; !flushes; !fences ]

let test_volatile_slot_count () =
  let pmem = Runtime.Pmem.create () in
  let o = fresh_obj pmem in
  Runtime.Pmem.write pmem (addr o 0) (vint 1);
  Runtime.Pmem.write pmem (addr o 1) (vint 2);
  check Alcotest.int "two volatile slots" 2 (Runtime.Pmem.volatile_slot_count pmem);
  Runtime.Pmem.persist_obj pmem o;
  check Alcotest.int "none after persist" 0 (Runtime.Pmem.volatile_slot_count pmem)

(* ------------------------------------------------------------------ *)
(* qcheck state-machine properties *)

type op = Wr of int * int | Fl of int | Fe | TxB | TxE

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun s v -> Wr (s land 7, v)) int int);
        (3, map (fun s -> Fl (s land 7)) int);
        (2, return Fe);
        (1, return TxB);
        (1, return TxE);
      ])

let show_op = function
  | Wr (s, v) -> Fmt.str "Wr(%d,%d)" s v
  | Fl s -> Fmt.str "Fl %d" s
  | Fe -> "Fe"
  | TxB -> "TxB"
  | TxE -> "TxE"

let ops_arb = QCheck.make ~print:(fun l -> String.concat ";" (List.map show_op l))
    QCheck.Gen.(list_size (int_range 0 40) op_gen)

let apply pmem o depth = function
  | Wr (s, v) -> Runtime.Pmem.write pmem (addr o s) (vint v)
  | Fl s -> Runtime.Pmem.flush_range pmem ~obj_id:o ~first_slot:s ~nslots:1 ()
  | Fe -> Runtime.Pmem.fence pmem ()
  | TxB ->
    Runtime.Pmem.tx_begin pmem ();
    incr depth
  | TxE ->
    if !depth > 0 then begin
      Runtime.Pmem.tx_end pmem ();
      decr depth
    end

(* After any op sequence, the durable view of each slot is either the
   current cached value or some previously-written (or initial) value —
   never a value that was never stored. *)
let prop_durable_is_some_written_value =
  QCheck.Test.make ~name:"durable value was actually written" ~count:200
    ops_arb (fun ops ->
      let pmem = Runtime.Pmem.create () in
      let o = fresh_obj ~size:8 pmem in
      let written = Hashtbl.create 16 in
      for s = 0 to 7 do
        Hashtbl.replace written (s, 0) ()
      done;
      let depth = ref 0 in
      List.iter
        (fun op ->
          (match op with Wr (s, v) -> Hashtbl.replace written (s, v) () | _ -> ());
          apply pmem o depth op)
        ops;
      let ok = ref true in
      for s = 0 to 7 do
        let d = to_int (Runtime.Pmem.durable_value pmem (addr o s)) in
        if not (Hashtbl.mem written (s, d)) then ok := false
      done;
      !ok)

(* Outside transactions, a fence makes every previously-flushed slot
   durable: flush+fence of a slot always yields durable = cached. *)
let prop_persist_makes_durable =
  QCheck.Test.make ~name:"flush+fence persists (outside tx)" ~count:200 ops_arb
    (fun ops ->
      let pmem = Runtime.Pmem.create () in
      let o = fresh_obj ~size:8 pmem in
      let depth = ref 0 in
      List.iter (apply pmem o depth) ops;
      while !depth > 0 do
        Runtime.Pmem.tx_end pmem ();
        decr depth
      done;
      Runtime.Pmem.flush_range pmem ~obj_id:o ~first_slot:0 ~nslots:8 ();
      Runtime.Pmem.fence pmem ();
      List.for_all
        (fun s ->
          Runtime.Value.equal
            (Runtime.Pmem.cached_value pmem (addr o s))
            (Runtime.Pmem.durable_value pmem (addr o s)))
        [ 0; 1; 2; 3; 4; 5; 6; 7 ])

(* The durable snapshot agrees with durable_value. *)
let prop_snapshot_consistent =
  QCheck.Test.make ~name:"durable snapshot agrees with durable_value"
    ~count:100 ops_arb (fun ops ->
      let pmem = Runtime.Pmem.create () in
      let o = fresh_obj ~size:8 pmem in
      let depth = ref 0 in
      List.iter (apply pmem o depth) ops;
      let snap = Runtime.Pmem.durable_snapshot pmem in
      match Hashtbl.find_opt snap o with
      | None -> false
      | Some values ->
        List.for_all
          (fun s ->
            Runtime.Value.equal values.(s)
              (Runtime.Pmem.durable_value pmem (addr o s)))
          [ 0; 1; 2; 3; 4; 5; 6; 7 ])

let suite =
  [
    tc "write/read" `Quick test_write_read;
    tc "state machine clean->dirty->flushed->clean" `Quick test_state_machine;
    tc "re-dirty between flush and fence" `Quick
      test_redirty_between_flush_and_fence;
    tc "cache-line granularity" `Quick test_cacheline_granularity;
    tc "volatile objects" `Quick test_volatile_objects_have_no_persistence;
    tc "tx commit durable" `Quick test_tx_commit_durable;
    tc "tx rollback on crash" `Quick test_tx_rollback_on_crash;
    tc "nested tx log folding" `Quick test_nested_tx_log_folding;
    tc "tx misuse errors" `Quick test_tx_errors;
    tc "bounds checking" `Quick test_bounds_checking;
    tc "stats and redundant flushes" `Quick test_stats_and_redundant_flushes;
    tc "listener events" `Quick test_listener_events;
    tc "volatile slot count" `Quick test_volatile_slot_count;
    QCheck_alcotest.to_alcotest prop_durable_is_some_written_value;
    QCheck_alcotest.to_alcotest prop_persist_makes_durable;
    QCheck_alcotest.to_alcotest prop_snapshot_consistent;
  ]
