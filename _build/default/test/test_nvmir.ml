(* Tests for the IR substrate: locations, types, operands, places,
   instructions, functions, programs and the builder. *)

let check = Alcotest.check
let tc = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Loc *)

let test_loc_roundtrip () =
  let l = Nvmir.Loc.make ~file:"btree_map.c" ~line:201 in
  check Alcotest.string "to_string" "btree_map.c:201" (Nvmir.Loc.to_string l);
  let l' = Nvmir.Loc.of_string "btree_map.c:201" in
  check Alcotest.bool "roundtrip equal" true (Nvmir.Loc.equal l l')

let test_loc_with_colons () =
  let l = Nvmir.Loc.of_string "dir/sub:file.c:42" in
  check Alcotest.string "file keeps inner colons" "dir/sub:file.c"
    (Nvmir.Loc.file l);
  check Alcotest.int "line" 42 (Nvmir.Loc.line l)

let test_loc_invalid () =
  Alcotest.check_raises "no colon" (Invalid_argument "Loc.of_string: missing ':' in nope")
    (fun () -> ignore (Nvmir.Loc.of_string "nope"));
  Alcotest.check_raises "bad line"
    (Invalid_argument "Loc.of_string: bad line in f.c:x") (fun () ->
      ignore (Nvmir.Loc.of_string "f.c:x"))

let test_loc_none () =
  check Alcotest.bool "none is none" true (Nvmir.Loc.is_none Nvmir.Loc.none);
  check Alcotest.bool "real loc is not none" false
    (Nvmir.Loc.is_none (Nvmir.Loc.make ~file:"a.c" ~line:1))

let test_loc_compare () =
  let a = Nvmir.Loc.make ~file:"a.c" ~line:5
  and b = Nvmir.Loc.make ~file:"a.c" ~line:9
  and c = Nvmir.Loc.make ~file:"b.c" ~line:1 in
  check Alcotest.bool "line order" true (Nvmir.Loc.compare a b < 0);
  check Alcotest.bool "file order dominates" true (Nvmir.Loc.compare b c < 0)

(* ------------------------------------------------------------------ *)
(* Ty *)

let tenv_with_node () =
  let env = Nvmir.Ty.env_create () in
  Nvmir.Ty.env_add env
    {
      Nvmir.Ty.sname = "node";
      fields =
        [
          ("n", Nvmir.Ty.Int);
          ("items", Nvmir.Ty.Array (Nvmir.Ty.Int, 8));
          ("next", Nvmir.Ty.Ptr (Nvmir.Ty.Named "node"));
        ];
    };
  env

let test_ty_sizes () =
  let env = tenv_with_node () in
  check Alcotest.int "int" 1 (Nvmir.Ty.size_slots env Nvmir.Ty.Int);
  check Alcotest.int "ptr" 1 (Nvmir.Ty.size_slots env (Nvmir.Ty.Ptr Nvmir.Ty.Int));
  check Alcotest.int "array" 8
    (Nvmir.Ty.size_slots env (Nvmir.Ty.Array (Nvmir.Ty.Int, 8)));
  check Alcotest.int "struct" 10 (Nvmir.Ty.size_slots env (Nvmir.Ty.Named "node"))

let test_ty_field_offsets () =
  let env = tenv_with_node () in
  check
    Alcotest.(option int)
    "first field" (Some 0)
    (Nvmir.Ty.field_offset env ~struct_name:"node" ~field:"n");
  check
    Alcotest.(option int)
    "after array" (Some 9)
    (Nvmir.Ty.field_offset env ~struct_name:"node" ~field:"next");
  check
    Alcotest.(option int)
    "unknown field" None
    (Nvmir.Ty.field_offset env ~struct_name:"node" ~field:"ghost")

let test_ty_duplicate_struct () =
  let env = tenv_with_node () in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Ty.env_add: duplicate struct node") (fun () ->
      Nvmir.Ty.env_add env { Nvmir.Ty.sname = "node"; fields = [] })

let test_ty_field_lookup () =
  let env = tenv_with_node () in
  (match Nvmir.Ty.field_ty env ~struct_name:"node" ~field:"items" with
  | Some (Nvmir.Ty.Array (Nvmir.Ty.Int, 8)) -> ()
  | _ -> Alcotest.fail "wrong field type");
  check
    Alcotest.(list string)
    "field names" [ "n"; "items"; "next" ]
    (Nvmir.Ty.field_names env ~struct_name:"node")

(* ------------------------------------------------------------------ *)
(* Operand / Place *)

let test_operand_equal () =
  let open Nvmir.Operand in
  check Alcotest.bool "const eq" true (equal (Const 3) (Const 3));
  check Alcotest.bool "const ne" false (equal (Const 3) (Const 4));
  check Alcotest.bool "var vs const" false (equal (Var "x") (Const 3));
  check Alcotest.bool "null" true (equal Null Null)

let test_place_accessors () =
  let p = Nvmir.Place.field_index "node" "items" (Nvmir.Operand.Var "c") in
  check Alcotest.string "base" "node" (Nvmir.Place.base p);
  check
    Alcotest.(option string)
    "first field" (Some "items") (Nvmir.Place.first_field p);
  check Alcotest.string "printed" "node->items[c]"
    (Fmt.str "%a" Nvmir.Place.pp p)

let test_place_equal () =
  let open Nvmir.Place in
  check Alcotest.bool "same" true (equal (field "a" "f") (field "a" "f"));
  check Alcotest.bool "different field" false
    (equal (field "a" "f") (field "a" "g"));
  check Alcotest.bool "different path length" false
    (equal (var "a") (field "a" "f"))

(* ------------------------------------------------------------------ *)
(* Instr defs/uses *)

let test_instr_defs_uses () =
  let open Nvmir in
  let store =
    Instr.make
      (Instr.Store
         {
           dst = Place.field_index "p" "items" (Operand.Var "i");
           src = Operand.Var "x";
         })
  in
  check Alcotest.(list string) "store defs" [] (Instr.defs store);
  check
    Alcotest.(slist string compare)
    "store uses" [ "p"; "i"; "x" ] (Instr.uses store);
  let load = Instr.make (Instr.Load { dst = "y"; src = Place.field "p" "n" }) in
  check Alcotest.(list string) "load defs" [ "y" ] (Instr.defs load);
  check Alcotest.(list string) "load uses" [ "p" ] (Instr.uses load)

let test_instr_persistency_relevant () =
  let open Nvmir in
  check Alcotest.bool "fence relevant" true
    (Instr.is_persistency_relevant (Instr.make Instr.Fence));
  check Alcotest.bool "assign not relevant" false
    (Instr.is_persistency_relevant
       (Instr.make (Instr.Assign { dst = "x"; src = Operand.Const 1 })))

(* ------------------------------------------------------------------ *)
(* Builder and program structure *)

let small_prog () =
  let prog = Nvmir.Prog.create () in
  Nvmir.Builder.struct_ prog "pair" [ ("a", Nvmir.Ty.Int); ("b", Nvmir.Ty.Int) ];
  let _ =
    Nvmir.Builder.func prog ~file:"t.c" "init"
      [ ("p", Nvmir.Ty.Ptr (Nvmir.Ty.Named "pair")) ]
      (fun fb ->
        let open Nvmir.Builder in
        store fb ~line:1 (fld "p" "a") (i 1);
        persist fb ~line:2 (fld "p" "a");
        ret fb ())
  in
  let _ =
    Nvmir.Builder.func prog ~file:"t.c" "main" [] (fun fb ->
        let open Nvmir.Builder in
        palloc fb "p" (Nvmir.Ty.Named "pair");
        call fb "init" [ v "p" ];
        ret fb ())
  in
  prog

let test_builder_produces_valid_program () =
  let prog = small_prog () in
  check Alcotest.int "no validation errors" 0
    (List.length (Nvmir.Prog.validate prog));
  check
    Alcotest.(list string)
    "function order" [ "init"; "main" ] (Nvmir.Prog.func_names prog)

let test_builder_fallthrough_label () =
  let prog = Nvmir.Prog.create () in
  let f =
    Nvmir.Builder.func prog "two_blocks" [] (fun fb ->
        let open Nvmir.Builder in
        assign fb "x" (i 1);
        label fb "second";
        assign fb "y" (i 2);
        ret fb ())
  in
  check Alcotest.int "two blocks" 2 (List.length f.Nvmir.Func.blocks);
  match (List.hd f.Nvmir.Func.blocks).Nvmir.Func.term with
  | Nvmir.Func.Br "second" -> ()
  | _ -> Alcotest.fail "expected fall-through branch"

let test_builder_rejects_double_terminator () =
  let prog = Nvmir.Prog.create () in
  Alcotest.check_raises "double ret"
    (Invalid_argument "Builder: duplicate terminator in bad/entry") (fun () ->
      ignore
        (Nvmir.Builder.func prog "bad" [] (fun fb ->
             Nvmir.Builder.ret fb ();
             Nvmir.Builder.ret fb ())))

(* substring containment, for matching error messages *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_validate_catches_unknown_label () =
  let prog = Nvmir.Prog.create () in
  let _ =
    Nvmir.Builder.func prog "jumpy" [] (fun fb -> Nvmir.Builder.br fb "nowhere")
  in
  let errs = Nvmir.Prog.validate prog in
  check Alcotest.bool "reports unknown label" true
    (List.exists
       (fun (e : Nvmir.Prog.error) -> contains e.Nvmir.Prog.message "nowhere")
       errs)

let test_validate_unbalanced_tx () =
  let prog = Nvmir.Prog.create () in
  let _ =
    Nvmir.Builder.func prog "leaky" [] (fun fb ->
        Nvmir.Builder.tx_begin fb ();
        Nvmir.Builder.ret fb ())
  in
  check Alcotest.bool "open transaction reported" true
    (Nvmir.Prog.validate prog <> [])

let test_validate_unknown_struct () =
  let prog = Nvmir.Prog.create () in
  let _ =
    Nvmir.Builder.func prog "ghosty" [] (fun fb ->
        Nvmir.Builder.palloc fb "g" (Nvmir.Ty.Named "ghost");
        Nvmir.Builder.ret fb ())
  in
  check Alcotest.bool "unknown struct reported" true
    (Nvmir.Prog.validate prog <> [])

let test_prog_duplicate_function () =
  let prog = Nvmir.Prog.create () in
  let _ = Nvmir.Builder.func prog "f" [] (fun fb -> Nvmir.Builder.ret fb ()) in
  Alcotest.check_raises "duplicate function"
    (Invalid_argument "Prog.add_func: duplicate function f") (fun () ->
      ignore (Nvmir.Builder.func prog "f" [] (fun fb -> Nvmir.Builder.ret fb ())))

let test_func_callees () =
  let prog = small_prog () in
  match Nvmir.Prog.find_func prog "main" with
  | Some f -> check Alcotest.(list string) "callees" [ "init" ] (Nvmir.Func.callees f)
  | None -> Alcotest.fail "main missing"

let suite =
  [
    tc "loc: roundtrip" `Quick test_loc_roundtrip;
    tc "loc: colons in file names" `Quick test_loc_with_colons;
    tc "loc: invalid inputs" `Quick test_loc_invalid;
    tc "loc: none" `Quick test_loc_none;
    tc "loc: ordering" `Quick test_loc_compare;
    tc "ty: slot sizes" `Quick test_ty_sizes;
    tc "ty: field offsets" `Quick test_ty_field_offsets;
    tc "ty: duplicate struct rejected" `Quick test_ty_duplicate_struct;
    tc "ty: field lookup" `Quick test_ty_field_lookup;
    tc "operand: equality" `Quick test_operand_equal;
    tc "place: accessors and printing" `Quick test_place_accessors;
    tc "place: equality" `Quick test_place_equal;
    tc "instr: defs and uses" `Quick test_instr_defs_uses;
    tc "instr: persistency relevance" `Quick test_instr_persistency_relevant;
    tc "builder: valid program" `Quick test_builder_produces_valid_program;
    tc "builder: fall-through labels" `Quick test_builder_fallthrough_label;
    tc "builder: double terminator rejected" `Quick
      test_builder_rejects_double_terminator;
    tc "validate: unknown label" `Quick test_validate_catches_unknown_label;
    tc "validate: unbalanced transaction" `Quick test_validate_unbalanced_tx;
    tc "validate: unknown struct" `Quick test_validate_unknown_struct;
    tc "prog: duplicate function rejected" `Quick test_prog_duplicate_function;
    tc "func: callees" `Quick test_func_callees;
  ]
