(* Tests for the toolkit driver, the report scoring, the PMTest-like
   baseline, and the synthetic-program generator's detection recall. *)

let tc = Alcotest.test_case
let check = Alcotest.check

let buggy_src =
  {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  ret
}
|}

let test_driver_pipeline () =
  let prog = Nvmir.Parser.parse buggy_src in
  let d = Deepmc.Driver.make Analysis.Model.Strict in
  let report = Deepmc.Driver.analyze d ~entry:"main" prog in
  check Alcotest.int "one warning" 1 (List.length report.Deepmc.Driver.warnings);
  check Alcotest.int "one violation" 1
    (List.length (Deepmc.Driver.violations report));
  (match report.Deepmc.Driver.dynamic with
  | Deepmc.Driver.Dynamic_ok _ -> ()
  | Deepmc.Driver.Dynamic_skipped r -> Alcotest.fail ("dynamic skipped: " ^ r));
  check Alcotest.bool "static timing recorded" true
    (report.Deepmc.Driver.elapsed_static >= 0.)

let test_driver_no_entry_skips_dynamic () =
  let prog = Nvmir.Parser.parse buggy_src in
  let d = Deepmc.Driver.make Analysis.Model.Strict in
  let report = Deepmc.Driver.analyze d prog in
  match report.Deepmc.Driver.dynamic with
  | Deepmc.Driver.Dynamic_skipped _ -> ()
  | Deepmc.Driver.Dynamic_ok _ -> Alcotest.fail "expected dynamic skip"

let test_driver_dynamic_disabled () =
  let prog = Nvmir.Parser.parse buggy_src in
  let d = Deepmc.Driver.make ~run_dynamic:false Analysis.Model.Strict in
  let report = Deepmc.Driver.analyze d ~entry:"main" prog in
  match report.Deepmc.Driver.dynamic with
  | Deepmc.Driver.Dynamic_skipped _ -> ()
  | Deepmc.Driver.Dynamic_ok _ -> Alcotest.fail "expected dynamic disabled"

let test_driver_runtime_error_reported () =
  let prog =
    Nvmir.Parser.parse
      {|
struct s { f: int, g: int }
func main() {
entry:
  store q->f, 1
  persist exact q->f
  ret
}
|}
  in
  let d = Deepmc.Driver.make Analysis.Model.Strict in
  let report = Deepmc.Driver.analyze d ~entry:"main" prog in
  match report.Deepmc.Driver.dynamic with
  | Deepmc.Driver.Dynamic_skipped reason ->
    check Alcotest.bool "mentions runtime error" true
      (String.length reason > 0)
  | Deepmc.Driver.Dynamic_ok _ -> Alcotest.fail "expected runtime failure"

(* ------------------------------------------------------------------ *)
(* Report scoring *)

let test_report_scoring () =
  let e_hit =
    Deepmc.Report.expectation ~rule:Analysis.Warning.Unflushed_write
      ~file:"a.c" ~line:10 "real bug"
  in
  let e_miss =
    Deepmc.Report.expectation ~rule:Analysis.Warning.Multiple_flushes
      ~file:"a.c" ~line:20 "missed bug"
  in
  let e_benign =
    Deepmc.Report.expectation ~validated:false
      ~rule:Analysis.Warning.Flush_unmodified ~file:"a.c" ~line:30 "benign"
  in
  let w rule line =
    Analysis.Warning.make ~rule ~model:Analysis.Model.Strict
      ~loc:(Nvmir.Loc.make ~file:"a.c" ~line)
      ~fname:"f" "w"
  in
  let warnings =
    [
      w Analysis.Warning.Unflushed_write 10;
      w Analysis.Warning.Flush_unmodified 30;
      w Analysis.Warning.Durable_tx_no_writes 99;
    ]
  in
  let s = Deepmc.Report.score [ e_hit; e_miss; e_benign ] warnings in
  check Alcotest.int "matched" 2 (List.length s.Deepmc.Report.matched);
  check Alcotest.int "missed" 1 (List.length s.Deepmc.Report.missed);
  check Alcotest.int "unexpected" 1 (List.length s.Deepmc.Report.unexpected);
  check Alcotest.int "validated counts only real bugs" 1
    (Deepmc.Report.validated_count s);
  check Alcotest.int "warnings" 3 (Deepmc.Report.warning_count s);
  check Alcotest.int "false positives" 2 (Deepmc.Report.false_positive_count s);
  check (Alcotest.float 0.01) "recall" 0.5 (Deepmc.Report.recall s)

(* ------------------------------------------------------------------ *)
(* Baseline *)

let test_baseline_needs_annotations () =
  let prog = Nvmir.Parser.parse buggy_src in
  let none = Deepmc.Baseline.check ~annotated:[] prog in
  check Alcotest.int "unannotated functions unchecked" 0
    (List.length none.Deepmc.Baseline.warnings);
  let all = Deepmc.Baseline.check ~annotated:[ "main" ] prog in
  check Alcotest.int "annotated function checked" 1
    (List.length all.Deepmc.Baseline.warnings)

let test_baseline_misses_model_specific_bugs () =
  (* the Figure 1 semantic-gap bug needs model awareness the baseline
     lacks *)
  let src =
    {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  persist exact p->f
  store p->g, 2
  persist exact p->g
  ret
}
|}
  in
  let prog = Nvmir.Parser.parse src in
  let b = Deepmc.Baseline.check ~annotated:[ "main" ] prog in
  check Alcotest.int "baseline silent" 0 (List.length b.Deepmc.Baseline.warnings);
  let full = Analysis.Checker.check ~model:Analysis.Model.Strict prog in
  check Alcotest.bool "DeepMC finds the mismatch" true
    (List.exists
       (fun (w : Analysis.Warning.t) ->
         w.Analysis.Warning.rule = Analysis.Warning.Semantic_mismatch)
       full.Analysis.Checker.warnings)

let test_baseline_annotation_burden () =
  let prog = Nvmir.Parser.parse buggy_src in
  check Alcotest.bool "annotation sites counted" true
    (Deepmc.Baseline.annotation_sites prog ~annotated:[ "main" ] >= 0)

(* ------------------------------------------------------------------ *)
(* Synthetic recall *)

let prop_seeded_bugs_are_found =
  QCheck.Test.make ~name:"checker finds every seeded bug" ~count:10
    QCheck.(map abs int)
    (fun seed ->
      let cfg =
        { Corpus.Synth.default_config with seed; nfuncs = 30;
          buggy_fraction_pct = 30 }
      in
      let prog, seeded = Corpus.Synth.generate cfg in
      let r =
        Analysis.Checker.check ~roots:(Corpus.Synth.roots cfg)
          ~model:Analysis.Model.Strict prog
      in
      (* each seeded defect produces at least one warning; clean
         programs produce none *)
      if seeded = 0 then r.Analysis.Checker.warnings = []
      else List.length r.Analysis.Checker.warnings >= seeded)

let prop_clean_synth_is_silent =
  QCheck.Test.make ~name:"clean generated programs produce no warnings"
    ~count:15
    QCheck.(map abs int)
    (fun seed ->
      let cfg =
        { Corpus.Synth.default_config with seed; nfuncs = 20;
          buggy_fraction_pct = 0 }
      in
      let prog, _ = Corpus.Synth.generate cfg in
      let r =
        Analysis.Checker.check ~roots:(Corpus.Synth.roots cfg)
          ~model:Analysis.Model.Strict prog
      in
      r.Analysis.Checker.warnings = [])

let suite =
  [
    tc "driver: full pipeline" `Quick test_driver_pipeline;
    tc "driver: no entry skips dynamic" `Quick test_driver_no_entry_skips_dynamic;
    tc "driver: dynamic disabled" `Quick test_driver_dynamic_disabled;
    tc "driver: runtime errors surfaced" `Quick
      test_driver_runtime_error_reported;
    tc "report: scoring" `Quick test_report_scoring;
    tc "baseline: annotation-driven" `Quick test_baseline_needs_annotations;
    tc "baseline: misses model-specific bugs" `Quick
      test_baseline_misses_model_specific_bugs;
    tc "baseline: annotation burden" `Quick test_baseline_annotation_burden;
    QCheck_alcotest.to_alcotest prop_seeded_bugs_are_found;
    QCheck_alcotest.to_alcotest prop_clean_synth_is_silent;
  ]
