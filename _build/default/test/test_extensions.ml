(* Tests for the extensions beyond the paper's core: mixed-model
   checking (lifting the §4.5 limitation), JSON report output, and the
   eviction modeling of the runtime. *)

let tc = Alcotest.test_case
let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Mixed-model checking *)

(* Two subsystems in one program: the allocator implements strict
   persistency correctly but violates epoch rules (no epoch markers are
   not required under strict); the log implements epoch persistency with
   a deferred flush that strict checking would also flag differently. *)
let mixed_src =
  {|
struct alloc_meta { free: int, top: int }
struct log_t { tail: int, commit: int }

func allocator_update(m: ptr alloc_meta) {
entry:
  store m->free, 1
  persist exact m->free
  ret
}

func log_append(l: ptr log_t) {
entry:
  epoch_begin
  store l->tail, 1
  epoch_end
  epoch_begin
  store l->commit, 1
  flush object l
  fence
  epoch_end
  ret
}

func alloc_root() {
entry:
  m = alloc pmem alloc_meta
  call allocator_update(m)
  ret
}

func log_root() {
entry:
  l = alloc pmem log_t
  call log_append(l)
  ret
}
|}

let test_mixed_models_per_root () =
  let prog = Nvmir.Parser.parse mixed_src in
  let model_of = function
    | "alloc_root" -> Analysis.Model.Strict
    | _ -> Analysis.Model.Epoch
  in
  let r =
    Analysis.Checker.check_mixed ~model_of ~roots:[ "alloc_root"; "log_root" ]
      prog
  in
  (* the strict allocator is clean under strict rules *)
  let alloc_ws =
    List.find_map
      (fun (root, _, ws) -> if root = "alloc_root" then Some ws else None)
      r.Analysis.Checker.per_root
  in
  check Alcotest.(option (list string)) "allocator clean" (Some [])
    (Option.map (List.map (fun (w : Analysis.Warning.t) -> Analysis.Warning.rule_name w.Analysis.Warning.rule)) alloc_ws);
  (* the log's deferred durability is an epoch violation *)
  let log_ws =
    List.find_map
      (fun (root, _, ws) -> if root = "log_root" then Some ws else None)
      r.Analysis.Checker.per_root
  in
  check
    Alcotest.(option (list string))
    "log flagged under epoch rules"
    (Some [ "multiple-writes-at-once" ])
    (Option.map (List.map (fun (w : Analysis.Warning.t) -> Analysis.Warning.rule_name w.Analysis.Warning.rule)) log_ws)

let test_mixed_vs_single_model () =
  (* checking everything under one model gets the log wrong: under
     strict, the epoch-deferral rule does not exist and different
     warnings appear — the motivation for mixed checking *)
  let prog = Nvmir.Parser.parse mixed_src in
  let single =
    Analysis.Checker.check ~model:Analysis.Model.Strict
      ~roots:[ "alloc_root"; "log_root" ] prog
  in
  let has_epoch_deferral =
    List.exists
      (fun (w : Analysis.Warning.t) ->
        w.Analysis.Warning.rule = Analysis.Warning.Multiple_writes_at_once)
      single.Analysis.Checker.warnings
  in
  check Alcotest.bool "single strict model misses the epoch deferral" false
    has_epoch_deferral

let test_mixed_union_deduplicates () =
  let prog = Nvmir.Parser.parse mixed_src in
  let r =
    Analysis.Checker.check_mixed
      ~model_of:(fun _ -> Analysis.Model.Epoch)
      ~roots:[ "log_root"; "log_root" ] prog
  in
  check Alcotest.int "duplicate roots deduplicated" 1
    (List.length r.Analysis.Checker.mixed_warnings)

(* ------------------------------------------------------------------ *)
(* JSON output *)

let test_json_escaping () =
  let j =
    Deepmc.Json_report.String "quote\" backslash\\ newline\n tab\t ctrl\x01"
  in
  check Alcotest.string "escaped"
    "\"quote\\\" backslash\\\\ newline\\n tab\\t ctrl\\u0001\""
    (Deepmc.Json_report.to_string j)

let test_json_shapes () =
  let open Deepmc.Json_report in
  check Alcotest.string "null" "null" (to_string Null);
  check Alcotest.string "bool" "true" (to_string (Bool true));
  check Alcotest.string "int" "42" (to_string (Int 42));
  check Alcotest.string "empty list" "[]" (to_string (List []));
  check Alcotest.string "empty obj" "{}" (to_string (Obj []));
  check Alcotest.string "small obj" "{\"a\": 1}"
    (to_string (Obj [ ("a", Int 1) ]))

let test_json_report_well_formed () =
  (* a cheap well-formedness check: balanced braces/brackets and every
     warning field present *)
  let prog =
    Nvmir.Parser.parse
      {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  ret
}
|}
  in
  let d = Deepmc.Driver.make Analysis.Model.Strict in
  let report = Deepmc.Driver.analyze d ~entry:"main" prog in
  let s = Deepmc.Json_report.to_string (Deepmc.Json_report.of_report report) in
  let count c = String.fold_left (fun n x -> if x = c then n + 1 else n) 0 s in
  check Alcotest.int "balanced braces" (count '{') (count '}');
  check Alcotest.int "balanced brackets" (count '[') (count ']');
  List.iter
    (fun needle ->
      let contains =
        let nh = String.length s and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub s i nn = needle || go (i + 1))
        in
        go 0
      in
      if not contains then Alcotest.fail ("missing field " ^ needle))
    [ "\"rule\""; "\"file\""; "\"line\""; "\"message\""; "\"summary\"" ]

(* ------------------------------------------------------------------ *)
(* Eviction modeling *)

let test_eviction_can_persist_unfenced_data () =
  (* with eviction modeling on, dirty lines may become durable without
     any flush — the §2.1 "unpredictable cache evictions" *)
  let config = { Runtime.Config.default with Runtime.Config.track_eviction = true } in
  let pmem = Runtime.Pmem.create ~config () in
  let tenv = Nvmir.Ty.env_create () in
  let o =
    Runtime.Pmem.alloc pmem ~tenv ~persistent:true
      (Nvmir.Ty.Array (Nvmir.Ty.Int, 8))
  in
  (* hammer writes; the deterministic LCG guarantees some evictions *)
  for i = 1 to 1000 do
    Runtime.Pmem.write pmem { Runtime.Pmem.obj_id = o; slot = i land 7 }
      (Runtime.Value.Vint i)
  done;
  check Alcotest.bool "spontaneous write-backs happened" true
    ((Runtime.Pmem.stats pmem).Runtime.Pmem.nvm_writes > 0)

let test_no_eviction_by_default () =
  let pmem = Runtime.Pmem.create () in
  let tenv = Nvmir.Ty.env_create () in
  let o =
    Runtime.Pmem.alloc pmem ~tenv ~persistent:true
      (Nvmir.Ty.Array (Nvmir.Ty.Int, 8))
  in
  for i = 1 to 1000 do
    Runtime.Pmem.write pmem { Runtime.Pmem.obj_id = o; slot = i land 7 }
      (Runtime.Value.Vint i)
  done;
  check Alcotest.int "no spontaneous write-backs" 0
    (Runtime.Pmem.stats pmem).Runtime.Pmem.nvm_writes

let test_eviction_is_deterministic () =
  let run () =
    let config =
      { Runtime.Config.default with Runtime.Config.track_eviction = true }
    in
    let pmem = Runtime.Pmem.create ~config () in
    let tenv = Nvmir.Ty.env_create () in
    let o =
      Runtime.Pmem.alloc pmem ~tenv ~persistent:true
        (Nvmir.Ty.Array (Nvmir.Ty.Int, 16))
    in
    for i = 1 to 500 do
      Runtime.Pmem.write pmem { Runtime.Pmem.obj_id = o; slot = i land 15 }
        (Runtime.Value.Vint i)
    done;
    (Runtime.Pmem.stats pmem).Runtime.Pmem.nvm_writes
  in
  check Alcotest.int "same seed, same evictions" (run ()) (run ())

let suite =
  [
    tc "mixed: per-root models" `Quick test_mixed_models_per_root;
    tc "mixed: single model misses epoch bugs" `Quick
      test_mixed_vs_single_model;
    tc "mixed: union deduplicates" `Quick test_mixed_union_deduplicates;
    tc "json: string escaping" `Quick test_json_escaping;
    tc "json: value shapes" `Quick test_json_shapes;
    tc "json: report well-formed" `Quick test_json_report_well_formed;
    tc "eviction: persists unfenced data" `Quick
      test_eviction_can_persist_unfenced_data;
    tc "eviction: off by default" `Quick test_no_eviction_by_default;
    tc "eviction: deterministic" `Quick test_eviction_is_deterministic;
  ]
