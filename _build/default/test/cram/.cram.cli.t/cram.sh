  $ deepmc check ../../examples/programs/nvm_lock.nvmir --strict --entry main 2>/dev/null | grep -A1 WARNING
  $ deepmc check ../../examples/programs/nvm_lock.nvmir --strict >/dev/null 2>&1
  $ deepmc check ../../examples/programs/hashmap.nvmir --strict 2>/dev/null | grep "WARNING"
  $ deepmc check ../../examples/programs/hashmap.nvmir --strict --json 2>/dev/null | grep -o '"rule": "semantic-mismatch"'
  $ deepmc dsg ../../examples/programs/nvm_lock.nvmir --function nvm_lock | head -2
  $ deepmc rules | grep -c '^[a-z-]* \['
  $ deepmc fix ../../examples/programs/nvm_lock.nvmir --strict 2>/dev/null | grep -A1 "store lk->new_level"
  $ deepmc trace ../../examples/programs/hashmap.nvmir --root main | head -3
  $ echo "func broken(" > broken.nvmir
  $ deepmc check broken.nvmir --strict 2>&1 | head -1
  $ deepmc corpus --name not_a_program
  $ deepmc fmt ../../examples/programs/hashmap.nvmir > once.nvmir
  $ deepmc fmt once.nvmir > twice.nvmir
  $ diff once.nvmir twice.nvmir
  $ deepmc check ../../examples/programs/wal.nvmir --epoch --entry main 2>/dev/null | grep -c WARNING
  $ cat > wal.supp <<'DB'
  > semantic-mismatch  wal.c:30  commit marker after data, crash-verified
  > DB
  $ deepmc check ../../examples/programs/wal.nvmir --epoch --suppressions wal.supp 2>/dev/null | grep suppressed
  $ cat > map.txt <<'MAP'
  > main epoch
  > MAP
  $ deepmc check-mixed ../../examples/programs/wal.nvmir --model-map map.txt 2>/dev/null | head -1
  $ deepmc cfg ../../examples/programs/nvm_lock.nvmir --function nvm_lock | head -2
  $ deepmc cfg ../../examples/programs/nvm_lock.nvmir --callgraph | grep doubleoctagon
  $ deepmc check ../../examples/programs/pqueue.nvmir --strict --entry main 2>/dev/null | grep -c semantic-mismatch
  $ cat > lossy.nvmir <<'IR'
  > struct s { f: int, g: int }
  > func main() {
  > entry:
  >   p = alloc pmem s
  >   store p->f, 1
  >   persist exact p->f
  >   store p->g, 2
  >   ret
  > }
  > IR
  $ deepmc crash lossy.nvmir --summary
  $ deepmc crash ../../examples/programs/wal.nvmir --summary
  $ cat > lib_only.nvmir <<'IR'
  > struct s { f: int, g: int }
  > func update(p: ptr s) {
  > entry:
  >   store p->f, 1
  >   ret
  > }
  > IR
  $ deepmc check lib_only.nvmir --strict 2>/dev/null | grep -c WARNING
  $ deepmc check lib_only.nvmir --strict --pmem-root update:p 2>/dev/null | grep WARNING
  $ deepmc check ../../examples/programs/nvm_lock.nvmir --strict --html report.html >/dev/null 2>&1
  $ grep -c "unflushed-write" report.html
  $ grep -o "<title>[^<]*</title>" report.html
  $ grep -c "class=\"hit\"" report.html
