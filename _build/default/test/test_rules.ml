(* Tests for the static checking rules of Tables 4 and 5: for every
   rule, a minimal program that violates it and a minimal corrected
   program that must stay silent. *)

let tc = Alcotest.test_case
let check = Alcotest.check

let warnings_of ?(model = Analysis.Model.Strict) src =
  let prog = Nvmir.Parser.parse src in
  let result = Analysis.Checker.check ~model prog in
  result.Analysis.Checker.warnings

let rules_fired ?model src =
  List.sort_uniq compare
    (List.map (fun (w : Analysis.Warning.t) -> w.Analysis.Warning.rule)
       (warnings_of ?model src))

let fires ?model rule src =
  check Alcotest.bool
    (Fmt.str "%s fires" (Analysis.Warning.rule_name rule))
    true
    (List.mem rule (rules_fired ?model src))

let silent ?model src =
  check
    Alcotest.(list string)
    "no warnings" []
    (List.map Analysis.Warning.rule_name (rules_fired ?model src))

let header = "struct s { f: int, g: int, h: int }\n"

(* ------------------------------------------------------------------ *)
(* Unflushed write *)

let test_unflushed_write_fires () =
  fires Analysis.Warning.Unflushed_write
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  ret
}
|})

let test_unflushed_write_strict_ok () =
  silent
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  persist exact p->f
  ret
}
|})

let test_unflushed_write_covered_by_object_flush () =
  silent
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  store p->g, 2
  store p->h, 3
  persist object p
  ret
}
|})

let test_unflushed_write_covered_by_tx_log () =
  silent
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  tx_begin
  tx_add exact p->f
  store p->f, 1
  tx_end
  ret
}
|})

let test_unlogged_write_in_tx_fires () =
  (* Figure 2: a transactional write whose object was never logged *)
  fires Analysis.Warning.Unflushed_write
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  tx_begin
  tx_add exact p->f
  store p->f, 1
  store p->g, 2
  tx_end
  ret
}
|})

(* ------------------------------------------------------------------ *)
(* Multiple writes made durable at once *)

let test_multiple_writes_at_once_strict () =
  fires Analysis.Warning.Multiple_writes_at_once
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  q = alloc pmem s
  store p->f, 1
  store q->f, 2
  flush exact p->f
  flush exact q->f
  fence
  ret
}
|})

let test_single_object_batch_is_idiomatic () =
  (* multi-field update of ONE object drained by one barrier is the
     idiomatic atomic-object update, not a violation *)
  silent
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  store p->g, 2
  flush exact p->f
  flush exact p->g
  fence
  ret
}
|})

let test_deferred_epoch_durability () =
  fires ~model:Analysis.Model.Epoch Analysis.Warning.Multiple_writes_at_once
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  epoch_begin
  store p->f, 1
  epoch_end
  epoch_begin
  store p->g, 2
  flush object p
  fence
  epoch_end
  ret
}
|})

(* ------------------------------------------------------------------ *)
(* Missing persist barriers *)

let test_missing_barrier_strict () =
  (* Figure 3: flush followed by a transaction with no fence *)
  fires Analysis.Warning.Missing_persist_barrier
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  flush exact p->f
  tx_begin
  tx_add exact p->g
  store p->g, 2
  tx_end
  ret
}
|})

let test_barrier_present_strict () =
  silent
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  flush exact p->f
  fence
  tx_begin
  tx_add exact p->g
  store p->g, 2
  tx_end
  ret
}
|})

let test_missing_barrier_epoch () =
  fires ~model:Analysis.Model.Epoch Analysis.Warning.Missing_persist_barrier
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  epoch_begin
  store p->f, 1
  flush exact p->f
  epoch_end
  epoch_begin
  store p->g, 2
  flush exact p->g
  fence
  epoch_end
  ret
}
|})

let test_epoch_closed_by_barrier () =
  silent ~model:Analysis.Model.Epoch
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  epoch_begin
  store p->f, 1
  flush exact p->f
  fence
  epoch_end
  ret
}
|})

(* ------------------------------------------------------------------ *)
(* Missing persist barriers in nested transactions (Figure 4) *)

let nested_tx_src ~fenced =
  header
  ^ Fmt.str
      {|
func inner(p: ptr s) {
entry:
  tx_begin
  store p->f, 1
  flush exact p->f
%s
  tx_end
  ret
}
func main() {
entry:
  p = alloc pmem s
  tx_begin
  call inner(p)
  store p->g, 2
  flush exact p->g
  fence
  tx_end
  ret
}
|}
      (if fenced then "  fence" else "")

let test_nested_tx_missing_barrier () =
  fires ~model:Analysis.Model.Epoch Analysis.Warning.Missing_barrier_nested_tx
    (nested_tx_src ~fenced:false)

let test_nested_tx_with_barrier_ok () =
  silent ~model:Analysis.Model.Epoch (nested_tx_src ~fenced:true)

(* ------------------------------------------------------------------ *)
(* Semantic mismatch (Figure 1) *)

let test_semantic_mismatch_fires () =
  fires Analysis.Warning.Semantic_mismatch
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  persist exact p->f
  store p->g, 2
  persist exact p->g
  ret
}
|})

let test_semantic_mismatch_tx_exempt () =
  silent
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  tx_begin
  tx_add exact p->f
  tx_add exact p->g
  store p->f, 1
  store p->g, 2
  tx_end
  ret
}
|})

let test_semantic_mismatch_different_objects_ok () =
  silent
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  q = alloc pmem s
  store p->f, 1
  persist exact p->f
  store q->g, 2
  persist exact q->g
  ret
}
|})

(* ------------------------------------------------------------------ *)
(* Strand dependence *)

let strand_src body =
  header
  ^ Fmt.str {|
func main() {
entry:
  p = alloc pmem s
  q = alloc pmem s
%s
  ret
}
|} body

let test_strand_dependence_fires () =
  fires ~model:Analysis.Model.Strand Analysis.Warning.Strand_dependence
    (strand_src
       {|
  strand_begin 1
  store p->f, 1
  flush exact p->f
  strand_end 1
  strand_begin 2
  store p->f, 2
  flush exact p->f
  strand_end 2
  fence
|})

let test_strand_disjoint_ok () =
  silent ~model:Analysis.Model.Strand
    (strand_src
       {|
  strand_begin 1
  store p->f, 1
  flush exact p->f
  strand_end 1
  strand_begin 2
  store q->f, 2
  flush exact q->f
  strand_end 2
  fence
|})

let test_strand_fence_orders () =
  silent ~model:Analysis.Model.Strand
    (strand_src
       {|
  strand_begin 1
  store p->f, 1
  flush exact p->f
  strand_end 1
  fence
  strand_begin 2
  store p->f, 2
  flush exact p->f
  strand_end 2
  fence
|})

(* ------------------------------------------------------------------ *)
(* Multiple flushes (redundant write-backs) *)

let test_multiple_flushes_fires () =
  fires Analysis.Warning.Multiple_flushes
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  persist exact p->f
  persist exact p->f
  ret
}
|})

let test_reflush_after_write_ok () =
  silent
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  persist exact p->f
  store p->f, 2
  persist exact p->f
  ret
}
|})

(* ------------------------------------------------------------------ *)
(* Flush unmodified *)

let test_flush_never_written () =
  fires Analysis.Warning.Flush_unmodified
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  flush exact p->f
  fence
  ret
}
|})

let test_flush_partial_object () =
  (* Figure 5: whole object persisted, one of three fields written *)
  fires Analysis.Warning.Flush_unmodified
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  persist object p
  ret
}
|})

let test_flush_fully_written_object_ok () =
  silent
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  store p->g, 2
  store p->h, 3
  persist object p
  ret
}
|})

(* ------------------------------------------------------------------ *)
(* Persist the same object multiple times in a transaction *)

let test_persist_same_in_tx_fires () =
  fires Analysis.Warning.Persist_same_object_in_tx
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  tx_begin
  tx_add exact p->f
  store p->f, 1
  tx_add exact p->f
  store p->f, 2
  tx_end
  ret
}
|})

let test_log_distinct_fields_ok () =
  silent
    (header
   ^ {|
func main() {
entry:
  p = alloc pmem s
  tx_begin
  tx_add exact p->f
  store p->f, 1
  tx_add exact p->g
  store p->g, 2
  tx_end
  ret
}
|})

(* ------------------------------------------------------------------ *)
(* Durable transaction without persistent writes *)

let test_empty_tx_fires () =
  fires Analysis.Warning.Durable_tx_no_writes
    (header ^ {|
func main() {
entry:
  tx_begin
  tx_end
  ret
}
|})

let test_persist_without_write_fires () =
  (* Figure 7: a persist on a path where nothing was modified *)
  fires Analysis.Warning.Durable_tx_no_writes
    (header
   ^ {|
func main(n: int) {
entry:
  p = alloc pmem s
  c = n > 0
  br c, upd, fin
upd:
  store p->f, 1
  store p->g, 2
  store p->h, 3
  br fin
fin:
  persist object p
  ret
}
|})

let test_persist_in_updating_branch_ok () =
  silent
    (header
   ^ {|
func main(n: int) {
entry:
  p = alloc pmem s
  c = n > 0
  br c, upd, fin
upd:
  store p->f, 1
  persist exact p->f
  br fin
fin:
  ret
}
|})

(* ------------------------------------------------------------------ *)
(* Rule catalog sanity *)

let test_catalog_covers_all_rules () =
  List.iter
    (fun rule ->
      match List.find_opt (fun (m : Analysis.Rules.rule_meta) -> m.Analysis.Rules.id = rule) Analysis.Rules.catalog with
      | Some _ -> ()
      | None ->
        Alcotest.fail
          ("rule missing from catalog: " ^ Analysis.Warning.rule_name rule))
    Analysis.Warning.all_rules

let test_applicable_rules_by_model () =
  let strand_rules = Analysis.Rules.applicable_rules Analysis.Model.Strand in
  check Alcotest.bool "strand rule applies to strand model" true
    (List.exists
       (fun (m : Analysis.Rules.rule_meta) ->
         m.Analysis.Rules.id = Analysis.Warning.Strand_dependence)
       strand_rules);
  let strict_rules = Analysis.Rules.applicable_rules Analysis.Model.Strict in
  check Alcotest.bool "strand rule not for strict" false
    (List.exists
       (fun (m : Analysis.Rules.rule_meta) ->
         m.Analysis.Rules.id = Analysis.Warning.Strand_dependence)
       strict_rules)

let test_warning_dedup () =
  let loc = Nvmir.Loc.make ~file:"x.c" ~line:1 in
  let w () =
    Analysis.Warning.make ~rule:Analysis.Warning.Unflushed_write
      ~model:Analysis.Model.Strict ~loc ~fname:"f" "m"
  in
  check Alcotest.int "dedup collapses" 1
    (List.length (Analysis.Warning.dedup [ w (); w (); w () ]))

let suite =
  [
    tc "unflushed write: fires" `Quick test_unflushed_write_fires;
    tc "unflushed write: flushed ok" `Quick test_unflushed_write_strict_ok;
    tc "unflushed write: object flush covers" `Quick
      test_unflushed_write_covered_by_object_flush;
    tc "unflushed write: tx log covers" `Quick
      test_unflushed_write_covered_by_tx_log;
    tc "unlogged tx write: fires (Fig. 2)" `Quick test_unlogged_write_in_tx_fires;
    tc "multiple writes at once: strict" `Quick
      test_multiple_writes_at_once_strict;
    tc "single-object batch: idiomatic" `Quick
      test_single_object_batch_is_idiomatic;
    tc "deferred epoch durability" `Quick test_deferred_epoch_durability;
    tc "missing barrier: strict (Fig. 3)" `Quick test_missing_barrier_strict;
    tc "missing barrier: fenced ok" `Quick test_barrier_present_strict;
    tc "missing barrier: epoch boundary" `Quick test_missing_barrier_epoch;
    tc "epoch closed by barrier ok" `Quick test_epoch_closed_by_barrier;
    tc "nested tx missing barrier (Fig. 4)" `Quick
      test_nested_tx_missing_barrier;
    tc "nested tx fenced ok" `Quick test_nested_tx_with_barrier_ok;
    tc "semantic mismatch (Fig. 1)" `Quick test_semantic_mismatch_fires;
    tc "semantic mismatch: tx exempt" `Quick test_semantic_mismatch_tx_exempt;
    tc "semantic mismatch: distinct objects ok" `Quick
      test_semantic_mismatch_different_objects_ok;
    tc "strand dependence fires" `Quick test_strand_dependence_fires;
    tc "strand disjoint ok" `Quick test_strand_disjoint_ok;
    tc "strand fence orders" `Quick test_strand_fence_orders;
    tc "multiple flushes fires" `Quick test_multiple_flushes_fires;
    tc "reflush after write ok" `Quick test_reflush_after_write_ok;
    tc "flush never-written data" `Quick test_flush_never_written;
    tc "flush partial object (Fig. 5)" `Quick test_flush_partial_object;
    tc "flush fully-written object ok" `Quick
      test_flush_fully_written_object_ok;
    tc "persist same object in tx" `Quick test_persist_same_in_tx_fires;
    tc "log distinct fields ok" `Quick test_log_distinct_fields_ok;
    tc "empty durable tx fires" `Quick test_empty_tx_fires;
    tc "persist without write (Fig. 7)" `Quick test_persist_without_write_fires;
    tc "persist in updating branch ok" `Quick
      test_persist_in_updating_branch_ok;
    tc "catalog covers all rules" `Quick test_catalog_covers_all_rules;
    tc "applicable rules by model" `Quick test_applicable_rules_by_model;
    tc "warning dedup" `Quick test_warning_dedup;
  ]
