(* Unit tests for trace scoping (transaction nesting, epoch ordinals,
   persist units, strand ids) and metamorphic properties of the checker
   (determinism, fix idempotence, durability-removal monotonicity). *)

let tc = Alcotest.test_case
let check = Alcotest.check

let scoped_of src =
  let prog = Nvmir.Parser.parse src in
  let dsg = Dsa.Dsg.build prog in
  match Analysis.Trace.collect dsg prog with
  | (_, t :: _) :: _ -> Analysis.Rules.scope_trace t
  | _ -> Alcotest.fail "no trace"

let test_scope_tx_nesting () =
  let scoped =
    scoped_of
      {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  tx_begin
  store p->f, 1
  tx_begin
  store p->g, 2
  tx_end
  tx_end
  ret
}
|}
  in
  let depth_of_write field =
    List.find_map
      (fun (s : Analysis.Rules.scoped) ->
        match s.Analysis.Rules.ev.Analysis.Event.kind with
        | Analysis.Event.Write a when a.Dsa.Aaddr.field = Some field ->
          Some s.Analysis.Rules.tx_depth
        | _ -> None)
      scoped
  in
  check Alcotest.(option int) "outer write depth" (Some 1) (depth_of_write "f");
  check Alcotest.(option int) "inner write depth" (Some 2) (depth_of_write "g");
  (* distinct transaction ids *)
  let ids =
    List.filter_map
      (fun (s : Analysis.Rules.scoped) ->
        match s.Analysis.Rules.ev.Analysis.Event.kind with
        | Analysis.Event.Write _ -> Some s.Analysis.Rules.tx_id
        | _ -> None)
      scoped
  in
  check Alcotest.int "two distinct txs" 2 (List.length (List.sort_uniq compare ids))

let test_scope_units_and_epochs () =
  let scoped =
    scoped_of
      {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  epoch_begin
  store p->f, 1
  flush exact p->f
  fence
  epoch_end
  epoch_begin
  store p->g, 2
  flush exact p->g
  fence
  epoch_end
  ret
}
|}
  in
  let epochs_and_units =
    List.filter_map
      (fun (s : Analysis.Rules.scoped) ->
        match s.Analysis.Rules.ev.Analysis.Event.kind with
        | Analysis.Event.Write _ ->
          Some (s.Analysis.Rules.epoch, s.Analysis.Rules.unit_)
        | _ -> None)
      scoped
  in
  check
    Alcotest.(list (pair int int))
    "writes in epochs 0 and 1, units 0 and 1"
    [ (0, 0); (1, 1) ]
    epochs_and_units

let test_scope_strands () =
  let scoped =
    scoped_of
      {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  strand_begin 7
  store p->f, 1
  flush exact p->f
  strand_end 7
  fence
  ret
}
|}
  in
  let strand_of_write =
    List.find_map
      (fun (s : Analysis.Rules.scoped) ->
        match s.Analysis.Rules.ev.Analysis.Event.kind with
        | Analysis.Event.Write _ -> Some s.Analysis.Rules.strand
        | _ -> None)
      scoped
  in
  check Alcotest.(option int) "write inside strand 7" (Some 7) strand_of_write

(* ------------------------------------------------------------------ *)
(* Metamorphic properties *)

let abs_seed = QCheck.map abs QCheck.int

let warnings_of prog roots =
  (Analysis.Checker.check ~roots ~model:Analysis.Model.Strict prog)
    .Analysis.Checker.warnings

let prop_checker_deterministic =
  QCheck.Test.make ~name:"checking is deterministic" ~count:15 abs_seed
    (fun seed ->
      let cfg =
        { Corpus.Synth.default_config with seed; nfuncs = 15;
          buggy_fraction_pct = 20 }
      in
      let prog, _ = Corpus.Synth.generate cfg in
      let roots = Corpus.Synth.roots cfg in
      let pp_all ws =
        String.concat "|" (List.map (Fmt.str "%a" Analysis.Warning.pp) ws)
      in
      pp_all (warnings_of prog roots) = pp_all (warnings_of prog roots))

let prop_fix_clean_is_identity =
  QCheck.Test.make ~name:"fixing a clean program changes nothing" ~count:15
    abs_seed (fun seed ->
      let cfg = { Corpus.Synth.default_config with seed; nfuncs = 12 } in
      let prog, _ = Corpus.Synth.generate cfg in
      let roots = Corpus.Synth.roots cfg in
      let fixed, outcomes, remaining =
        Deepmc.Autofix.fix_until_clean ~model:Analysis.Model.Strict ~roots prog
      in
      outcomes = [] && remaining = []
      && Fmt.str "%a" Nvmir.Prog.pp fixed = Fmt.str "%a" Nvmir.Prog.pp prog)

let prop_fixing_buggy_reduces_warnings =
  QCheck.Test.make ~name:"fixing seeded programs reaches zero warnings"
    ~count:10 abs_seed (fun seed ->
      let cfg =
        { Corpus.Synth.default_config with seed; nfuncs = 15;
          buggy_fraction_pct = 40 }
      in
      let prog, _ = Corpus.Synth.generate cfg in
      let roots = Corpus.Synth.roots cfg in
      let fixed, _, remaining =
        Deepmc.Autofix.fix_until_clean ~model:Analysis.Model.Strict ~roots prog
      in
      (* the seeded defect kinds are all mechanically fixable, and the
         repaired program is still well-formed and executable *)
      remaining = []
      && Nvmir.Prog.validate fixed = []
      &&
      let pmem = Runtime.Pmem.create () in
      let interp = Runtime.Interp.create ~pmem fixed in
      match Runtime.Interp.run ~entry:"main" interp with
      | _ -> true
      | exception _ -> false)

(* Stripping every flush/fence/persist from a program can only lose
   durability: warning count must not decrease. *)
let strip_durability prog =
  Deepmc.Rewrite.map_funcs prog (fun f ->
      {
        f with
        Nvmir.Func.blocks =
          List.map
            (fun (b : Nvmir.Func.block) ->
              {
                b with
                Nvmir.Func.instrs =
                  List.filter
                    (fun (i : Nvmir.Instr.t) ->
                      match i.Nvmir.Instr.kind with
                      | Nvmir.Instr.Flush _ | Nvmir.Instr.Fence
                      | Nvmir.Instr.Persist _ -> false
                      | _ -> true)
                    b.Nvmir.Func.instrs;
              })
            f.Nvmir.Func.blocks;
      })

let prop_removing_durability_monotone =
  QCheck.Test.make ~name:"removing flushes/fences never hides bugs" ~count:15
    abs_seed (fun seed ->
      let cfg =
        { Corpus.Synth.default_config with seed; nfuncs = 12;
          buggy_fraction_pct = 20 }
      in
      let prog, _ = Corpus.Synth.generate cfg in
      let roots = Corpus.Synth.roots cfg in
      let before = List.length (warnings_of prog roots) in
      let after = List.length (warnings_of (strip_durability prog) roots) in
      after >= before)

let prop_dedup_idempotent =
  QCheck.Test.make ~name:"warning dedup is idempotent" ~count:15 abs_seed
    (fun seed ->
      let cfg =
        { Corpus.Synth.default_config with seed; nfuncs = 12;
          buggy_fraction_pct = 30 }
      in
      let prog, _ = Corpus.Synth.generate cfg in
      let ws = warnings_of prog (Corpus.Synth.roots cfg) in
      Analysis.Warning.dedup ws = ws
      && Analysis.Warning.dedup (ws @ ws) = ws)

let suite =
  [
    tc "scope: transaction nesting" `Quick test_scope_tx_nesting;
    tc "scope: epochs and persist units" `Quick test_scope_units_and_epochs;
    tc "scope: strands" `Quick test_scope_strands;
    QCheck_alcotest.to_alcotest prop_checker_deterministic;
    QCheck_alcotest.to_alcotest prop_fix_clean_is_identity;
    QCheck_alcotest.to_alcotest prop_fixing_buggy_reduces_warnings;
    QCheck_alcotest.to_alcotest prop_removing_durability_monotone;
    QCheck_alcotest.to_alcotest prop_dedup_idempotent;
  ]
