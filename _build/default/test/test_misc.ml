(* Remaining coverage: byte-extent flushes (static and runtime), the
   lexer's save/restore, interface annotations through the library API,
   crash-exposure exploration, JSON float formatting, and model
   metadata. *)

let tc = Alcotest.test_case
let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Byte-extent flushes *)

let test_bytes_extent_static () =
  (* a buffer flush (pmfs_flush_buffer style) covers the written words *)
  let prog =
    Nvmir.Parser.parse
      {|
struct buf { data: int[16], len: int }
func main() {
entry:
  b = alloc pmem buf
  store b->data[0], 1
  store b->data[1], 2
  flush bytes(8) b->data[0]
  fence
  ret
}
|}
  in
  let r = Analysis.Checker.check ~model:Analysis.Model.Strict prog in
  check Alcotest.(list string) "buffer flush covers the writes" []
    (List.map
       (fun (w : Analysis.Warning.t) ->
         Analysis.Warning.rule_name w.Analysis.Warning.rule)
       r.Analysis.Checker.warnings)

let test_bytes_extent_runtime () =
  let prog =
    Nvmir.Parser.parse
      {|
struct buf { data: int[16], len: int }
func main() {
entry:
  b = alloc pmem buf
  store b->data[0], 7
  store b->data[9], 8
  flush bytes(2) b->data[0]
  fence
  ret
}
|}
  in
  let pmem = Runtime.Pmem.create () in
  let interp = Runtime.Interp.create ~pmem prog in
  ignore (Runtime.Interp.run ~entry:"main" interp);
  let durable slot =
    Runtime.Value.to_int
      (Runtime.Pmem.durable_value pmem { Runtime.Pmem.obj_id = 0; slot })
  in
  check Alcotest.int "covered word durable" 7 (durable 0);
  (* slot 9 is on the next cache line (default line = 8 slots) and the
     2-slot flush does not reach it *)
  check Alcotest.int "uncovered word volatile" 0 (durable 9)

(* ------------------------------------------------------------------ *)
(* Lexer save/restore *)

let test_lexer_save_restore () =
  let lx = Nvmir.Lexer.create "alpha beta gamma" in
  let tok1, _ = Nvmir.Lexer.next lx in
  let snap = Nvmir.Lexer.save lx in
  let tok2, _ = Nvmir.Lexer.next lx in
  Nvmir.Lexer.restore lx snap;
  let tok2', _ = Nvmir.Lexer.next lx in
  check Alcotest.bool "first token" true (tok1 = Nvmir.Lexer.IDENT "alpha");
  check Alcotest.bool "replay after restore" true (tok2 = tok2');
  check Alcotest.bool "second token" true (tok2 = Nvmir.Lexer.IDENT "beta")

(* ------------------------------------------------------------------ *)
(* Interface annotations (persistent_roots) *)

let lib_only_src =
  {|
struct s { f: int, g: int }
func update(p: ptr s) {
entry:
  store p->f, 1
  ret
}
|}

let test_persistent_roots_enable_library_checking () =
  let prog = Nvmir.Parser.parse lib_only_src in
  let unannotated = Analysis.Checker.check ~model:Analysis.Model.Strict prog in
  check Alcotest.int "parameter persistence unknown: silent" 0
    (List.length unannotated.Analysis.Checker.warnings);
  let annotated =
    Analysis.Checker.check ~persistent_roots:[ ("update", "p") ]
      ~model:Analysis.Model.Strict prog
  in
  check Alcotest.int "annotated parameter: unflushed write found" 1
    (List.length annotated.Analysis.Checker.warnings)

(* ------------------------------------------------------------------ *)
(* Crash-exposure exploration *)

let test_crash_explore_metrics () =
  let prog =
    Nvmir.Parser.parse
      {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  persist exact p->f
  store p->g, 2
  ret
}
|}
  in
  let r = Runtime.Crash.explore ~entry:"main" prog in
  check Alcotest.int "g never becomes durable" 1 r.Runtime.Crash.final_at_risk;
  check Alcotest.bool "crash points explored" true (r.Runtime.Crash.points <> []);
  (* right after the fence, f is durable: exposure shrinks *)
  let min_risk =
    List.fold_left
      (fun a (e : Runtime.Crash.exposure) -> min a e.Runtime.Crash.at_risk_slots)
      max_int r.Runtime.Crash.points
  in
  check Alcotest.bool "some point has minimal exposure" true (min_risk <= 1)

let test_crash_explore_safe_program () =
  let prog =
    Nvmir.Parser.parse
      {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  store p->f, 1
  persist exact p->f
  ret
}
|}
  in
  let r = Runtime.Crash.explore ~entry:"main" prog in
  check Alcotest.int "everything durable at end" 0 r.Runtime.Crash.final_at_risk

(* ------------------------------------------------------------------ *)
(* JSON floats and model metadata *)

let test_json_floats () =
  let open Deepmc.Json_report in
  check Alcotest.string "integral float" "2.0" (to_string (Float 2.0));
  check Alcotest.string "fractional float" "2.5" (to_string (Float 2.5))

let test_model_metadata () =
  check Alcotest.(option string) "epoch relaxes strict" (Some "strict")
    (Option.map Analysis.Model.to_string
       (Analysis.Model.relaxes Analysis.Model.Epoch));
  check Alcotest.(option string) "strand relaxes epoch" (Some "epoch")
    (Option.map Analysis.Model.to_string
       (Analysis.Model.relaxes Analysis.Model.Strand));
  check Alcotest.bool "strict relaxes nothing" true
    (Analysis.Model.relaxes Analysis.Model.Strict = None);
  List.iter
    (fun m ->
      check
        Alcotest.(option string)
        "of_string/to_string roundtrip"
        (Some (Analysis.Model.to_string m))
        (Option.map Analysis.Model.to_string
           (Analysis.Model.of_string (Analysis.Model.to_string m))))
    Analysis.Model.all;
  check Alcotest.string "flag spelling" "-epoch"
    (Analysis.Model.flag Analysis.Model.Epoch)

let suite =
  [
    tc "bytes extent: static coverage" `Quick test_bytes_extent_static;
    tc "bytes extent: runtime range" `Quick test_bytes_extent_runtime;
    tc "lexer: save/restore" `Quick test_lexer_save_restore;
    tc "interface annotations enable library checking" `Quick
      test_persistent_roots_enable_library_checking;
    tc "crash explore: lossy program metrics" `Quick test_crash_explore_metrics;
    tc "crash explore: safe program" `Quick test_crash_explore_safe_program;
    tc "json: float formatting" `Quick test_json_floats;
    tc "model: metadata" `Quick test_model_metadata;
  ]
