(* Tests for the crash-simulation oracle: buggy corpus patterns really
   do have inconsistent crash windows, and the corrected variants do
   not. *)

let tc = Alcotest.test_case
let check = Alcotest.check

let hashmap_src ~transactional =
  if transactional then
    {|
struct hashmap { nbuckets: int, bucket0: int }
func main() {
entry:
  h = alloc pmem hashmap
  tx_begin
  tx_add exact h->nbuckets
  tx_add exact h->bucket0
  store h->nbuckets, 4
  store h->bucket0, 1
  tx_end
  ret
}
|}
  else
    {|
struct hashmap { nbuckets: int, bucket0: int }
func main() {
entry:
  h = alloc pmem hashmap
  store h->nbuckets, 4
  persist exact h->nbuckets
  store h->bucket0, 1
  persist exact h->bucket0
  ret
}
|}

(* invariant: if nbuckets is durable, bucket0 must be initialized *)
let invariant pmem =
  let v slot =
    Runtime.Value.to_int
      (Runtime.Pmem.durable_value pmem { Runtime.Pmem.obj_id = 0; slot })
  in
  if v 0 <> 0 && v 1 = 0 then Error "nbuckets durable before buckets"
  else Ok ()

let test_buggy_hashmap_has_window () =
  let prog = Nvmir.Parser.parse (hashmap_src ~transactional:false) in
  let report = Runtime.Crash.test ~entry:"main" ~invariant prog in
  check Alcotest.bool "violations found" true (report.Runtime.Crash.violations > 0);
  match Runtime.Crash.first_violation report with
  | Some o -> check Alcotest.bool "detail given" true (o.Runtime.Crash.detail <> "")
  | None -> Alcotest.fail "expected a violating crash point"

let test_transactional_hashmap_safe () =
  let prog = Nvmir.Parser.parse (hashmap_src ~transactional:true) in
  let report = Runtime.Crash.test ~entry:"main" ~invariant prog in
  check Alcotest.bool "no violations" true (Runtime.Crash.consistent report);
  check Alcotest.bool "crash points exercised" true
    (report.Runtime.Crash.total_points > 0)

(* ordering matters: writing the dependent field first closes the
   window even without a transaction *)
let test_safe_ordering () =
  let prog =
    Nvmir.Parser.parse
      {|
struct hashmap { nbuckets: int, bucket0: int }
func main() {
entry:
  h = alloc pmem hashmap
  store h->bucket0, 1
  persist exact h->bucket0
  store h->nbuckets, 4
  persist exact h->nbuckets
  ret
}
|}
  in
  let report = Runtime.Crash.test ~entry:"main" ~invariant prog in
  check Alcotest.bool "dependency-ordered init is crash safe" true
    (Runtime.Crash.consistent report)

(* the unflushed-write bug of Figure 9: the final value is never
   durable, so the invariant "state is never left mid-transition"
   fails at the end of execution *)
let test_unflushed_write_loses_data () =
  let prog =
    Nvmir.Parser.parse
      {|
struct lk { state: int, level: int }
func main() {
entry:
  p = alloc pmem lk
  store p->state, 1
  persist exact p->state
  store p->level, 2
  ret
}
|}
  in
  (* run to completion: the level update never becomes durable *)
  let pmem = Runtime.Pmem.create () in
  let interp = Runtime.Interp.create ~pmem prog in
  ignore (Runtime.Interp.run ~entry:"main" interp);
  check Alcotest.int "level lost on crash" 0
    (Runtime.Value.to_int
       (Runtime.Pmem.durable_value pmem { Runtime.Pmem.obj_id = 0; slot = 1 }));
  check Alcotest.int "state durable" 1
    (Runtime.Value.to_int
       (Runtime.Pmem.durable_value pmem { Runtime.Pmem.obj_id = 0; slot = 0 }))

(* the crash oracle on corpus programs: buggy hashmap (Fig. 1 example)
   must expose the window; the fixed variant must not *)
let test_corpus_hashmap_crash_oracle () =
  match Corpus.Registry.find "hashmap" with
  | None -> Alcotest.fail "hashmap corpus program missing"
  | Some p ->
    let fixed =
      match Corpus.Types.parse_fixed p with
      | Some f -> f
      | None -> Alcotest.fail "hashmap has no fixed variant"
    in
    (* the fixed hashmap creates the map transactionally: every crash
       point must leave nbuckets and bucket[0] consistent *)
    let invariant pmem =
      let v slot =
        Runtime.Value.to_int
          (Runtime.Pmem.durable_value pmem { Runtime.Pmem.obj_id = 0; slot })
      in
      (* slot 0 = nbuckets, slot 1 = buckets[0] *)
      if v 0 <> 0 && v 1 = 0 then Error "half-initialized map" else Ok ()
    in
    let report =
      Runtime.Crash.test ~entry:"hashmap_driver_all" ~invariant fixed
    in
    check Alcotest.bool "fixed hashmap crash-consistent" true
      (Runtime.Crash.consistent report)

let test_crash_report_counts () =
  let prog = Nvmir.Parser.parse (hashmap_src ~transactional:false) in
  let report = Runtime.Crash.test ~entry:"main" ~invariant prog in
  check Alcotest.int "an outcome per crash point"
    report.Runtime.Crash.total_points
    (List.length report.Runtime.Crash.outcomes)

let suite =
  [
    tc "buggy hashmap has a crash window" `Quick test_buggy_hashmap_has_window;
    tc "transactional hashmap is safe" `Quick test_transactional_hashmap_safe;
    tc "dependency-ordered init is safe" `Quick test_safe_ordering;
    tc "unflushed write loses data (Fig. 9)" `Quick
      test_unflushed_write_loses_data;
    tc "corpus fixed hashmap is crash-consistent" `Quick
      test_corpus_hashmap_crash_oracle;
    tc "crash report accounting" `Quick test_crash_report_counts;
  ]
