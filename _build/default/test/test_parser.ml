(* Tests for the textual-format lexer and parser, including the
   pretty-print/re-parse round trip on hand-written and generated
   programs. *)

let tc = Alcotest.test_case
let check = Alcotest.check

let parses src = Nvmir.Parser.parse src

let test_parse_struct () =
  let prog = parses "struct p { a: int, b: int[4], c: ptr p }" in
  match Nvmir.Ty.env_find (Nvmir.Prog.tenv prog) "p" with
  | Some sd -> check Alcotest.int "three fields" 3 (List.length sd.Nvmir.Ty.fields)
  | None -> Alcotest.fail "struct p missing"

let test_parse_instructions () =
  let prog =
    parses
      {|
struct s { f: int, g: int }
func all_instrs(p: ptr s, n: int) -> int {
entry:
  x = 1
  y = x + n
  z = alloc pmem s
  w = alloc vmem s
  a = addr p->f
  store p->f, y            @ t.c:10
  l = load p->f
  flush exact p->f
  fence
  persist object p
  tx_begin
  tx_add exact p->g
  store p->g, 2
  tx_end
  epoch_begin
  epoch_end
  strand_begin 1
  strand_end 1
  r = call helper(p, 3)
  call helper(p, 4)
  ret r
}
func helper(p: ptr s, n: int) -> int {
entry:
  ret n
}
|}
  in
  check Alcotest.int "no validation errors" 0
    (List.length (Nvmir.Prog.validate prog));
  match Nvmir.Prog.find_func prog "all_instrs" with
  | None -> Alcotest.fail "function missing"
  | Some f ->
    check Alcotest.int "instruction count (incl. terminator)" 21 (Nvmir.Func.instr_count f)

let test_parse_locations () =
  let prog =
    parses
      {|
func f(p: ptr int) {
entry:
  store p, 1   @ src/deep/file.c:42
  ret
}
struct unused { x: int }
|}
  in
  match Nvmir.Prog.find_func prog "f" with
  | None -> Alcotest.fail "missing"
  | Some f ->
    let instr = List.hd (Nvmir.Func.entry_block f).Nvmir.Func.instrs in
    check Alcotest.string "file" "src/deep/file.c"
      (Nvmir.Loc.file instr.Nvmir.Instr.loc);
    check Alcotest.int "line" 42 (Nvmir.Loc.line instr.Nvmir.Instr.loc)

let test_parse_branches () =
  let prog =
    parses
      {|
func f(n: int) -> int {
entry:
  c = n > 0
  br c, pos, neg
pos:
  ret 1
neg:
  ret 0
}
|}
  in
  check Alcotest.int "valid" 0 (List.length (Nvmir.Prog.validate prog));
  match Nvmir.Prog.find_func prog "f" with
  | Some f -> check Alcotest.int "three blocks" 3 (List.length f.Nvmir.Func.blocks)
  | None -> Alcotest.fail "missing"

(* "ret" followed by a new block label must not swallow the label. *)
let test_parse_ret_label_ambiguity () =
  let prog =
    parses
      {|
func f() {
entry:
  ret
after:
  ret
}
|}
  in
  match Nvmir.Prog.find_func prog "f" with
  | Some f -> check Alcotest.int "two blocks" 2 (List.length f.Nvmir.Func.blocks)
  | None -> Alcotest.fail "missing"

let test_parse_ret_value_vs_label () =
  let prog =
    parses {|
func f(x: int) -> int {
entry:
  ret x
}
|}
  in
  match Nvmir.Prog.find_func prog "f" with
  | Some f -> (
    match (Nvmir.Func.entry_block f).Nvmir.Func.term with
    | Nvmir.Func.Ret (Some (Nvmir.Operand.Var "x")) -> ()
    | _ -> Alcotest.fail "expected ret x")
  | None -> Alcotest.fail "missing"

let test_parse_comments () =
  let prog =
    parses
      {|
# hash comment
// slash comment
; semicolon comment
func f() {
entry:
  ret    ; trailing comment
}
|}
  in
  check Alcotest.int "one function" 1 (List.length (Nvmir.Prog.funcs prog))

let test_parse_negative_literal () =
  let prog =
    parses {|
func f() {
entry:
  x = -3
  y = x - 1
  ret
}
|}
  in
  match Nvmir.Prog.find_func prog "f" with
  | Some f -> (
    match (Nvmir.Func.entry_block f).Nvmir.Func.instrs with
    | [ { Nvmir.Instr.kind = Nvmir.Instr.Assign { src = Nvmir.Operand.Const (-3); _ }; _ };
        { Nvmir.Instr.kind = Nvmir.Instr.Binop { op = Nvmir.Instr.Sub; _ }; _ } ] -> ()
    | _ -> Alcotest.fail "unexpected instruction shapes")
  | None -> Alcotest.fail "missing"

let test_parse_errors () =
  let expect_error src =
    match Nvmir.Parser.parse src with
    | exception Nvmir.Parser.Parse_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ src)
  in
  expect_error "func f( {";
  expect_error "struct s { a }";
  expect_error "func f() { entry: store }";
  expect_error "blah";
  expect_error "func f() { entry: flush wrong p }"

(* Pretty-print then re-parse: the structural content survives. *)
let roundtrip_structurally_equal (p1 : Nvmir.Prog.t) =
  let text = Fmt.str "%a" Nvmir.Prog.pp p1 in
  let p2 = Nvmir.Parser.parse text in
  let sig_of p =
    List.map
      (fun f ->
        ( Nvmir.Func.name f,
          List.length f.Nvmir.Func.blocks,
          (* comments are dropped by the comment-as-';' convention *)
          List.fold_left
            (fun acc (b : Nvmir.Func.block) ->
              acc
              + List.length
                  (List.filter
                     (fun (i : Nvmir.Instr.t) ->
                       match i.Nvmir.Instr.kind with
                       | Nvmir.Instr.Comment _ -> false
                       | _ -> true)
                     b.Nvmir.Func.instrs))
            0 f.Nvmir.Func.blocks ))
      (Nvmir.Prog.funcs p)
  in
  sig_of p1 = sig_of p2

let test_roundtrip_corpus () =
  List.iter
    (fun (p : Corpus.Types.program) ->
      let prog = Corpus.Types.parse p in
      if not (roundtrip_structurally_equal prog) then
        Alcotest.fail ("roundtrip failed for " ^ p.Corpus.Types.name))
    Corpus.Registry.all

let prop_roundtrip_synth =
  QCheck.Test.make ~name:"pp/parse roundtrip on generated programs" ~count:30
    QCheck.(map (fun seed -> abs seed) int)
    (fun seed ->
      let cfg =
        { Corpus.Synth.default_config with seed; nfuncs = 8; nstructs = 2 }
      in
      let prog, _ = Corpus.Synth.generate cfg in
      roundtrip_structurally_equal prog)

let prop_synth_validates =
  QCheck.Test.make ~name:"generated programs validate" ~count:30
    QCheck.(map (fun seed -> abs seed) int)
    (fun seed ->
      let cfg =
        { Corpus.Synth.default_config with seed; nfuncs = 10; nstructs = 3 }
      in
      let prog, _ = Corpus.Synth.generate cfg in
      Nvmir.Prog.validate prog = [])

let suite =
  [
    tc "parse: struct" `Quick test_parse_struct;
    tc "parse: every instruction form" `Quick test_parse_instructions;
    tc "parse: location annotations" `Quick test_parse_locations;
    tc "parse: branches" `Quick test_parse_branches;
    tc "parse: ret/label ambiguity" `Quick test_parse_ret_label_ambiguity;
    tc "parse: ret with value" `Quick test_parse_ret_value_vs_label;
    tc "parse: comments" `Quick test_parse_comments;
    tc "parse: negative literals" `Quick test_parse_negative_literal;
    tc "parse: malformed inputs rejected" `Quick test_parse_errors;
    tc "roundtrip: whole corpus" `Quick test_roundtrip_corpus;
    QCheck_alcotest.to_alcotest prop_roundtrip_synth;
    QCheck_alcotest.to_alcotest prop_synth_validates;
  ]
