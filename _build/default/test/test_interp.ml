(* Tests for the IR interpreter: evaluation, control flow, calls,
   place resolution, pointer arithmetic, and error handling. *)

let tc = Alcotest.test_case
let check = Alcotest.check

let run ?(entry = "main") ?(args = []) src =
  let prog = Nvmir.Parser.parse src in
  let pmem = Runtime.Pmem.create () in
  let interp = Runtime.Interp.create ~pmem prog in
  let v = Runtime.Interp.run ~entry ~args interp in
  (v, pmem)

let ret_int ?entry ?args src = Runtime.Value.to_int (fst (run ?entry ?args src))

let test_arithmetic () =
  check Alcotest.int "arith" 17
    (ret_int
       {|
func main() -> int {
entry:
  a = 5
  b = a * 3
  c = b + 2
  ret c
}
|})

let test_branches_and_loops () =
  check Alcotest.int "sum 1..10" 55
    (ret_int
       {|
func main() -> int {
entry:
  i = 0
  acc = 0
  br loop
loop:
  i = i + 1
  acc = acc + i
  c = i < 10
  br c, loop, fin
fin:
  ret acc
}
|})

let test_calls_and_args () =
  check Alcotest.int "fib 10" 55
    (ret_int
       {|
func fib(n: int) -> int {
entry:
  c = n < 2
  br c, base, rec
base:
  ret n
rec:
  a = n - 1
  b = n - 2
  x = call fib(a)
  y = call fib(b)
  z = x + y
  ret z
}
func main() -> int {
entry:
  r = call fib(10)
  ret r
}
|})

let test_struct_fields_and_arrays () =
  check Alcotest.int "field/array round trip" 42
    (ret_int
       {|
struct s { n: int, items: int[8] }
func main() -> int {
entry:
  p = alloc pmem s
  store p->n, 2
  i = load p->n
  store p->items[i], 42
  r = load p->items[2]
  ret r
}
|})

let test_pointer_chase () =
  check Alcotest.int "p->next->val" 9
    (ret_int
       {|
struct cell { val: int, next: ptr cell }
func main() -> int {
entry:
  a = alloc pmem cell
  b = alloc pmem cell
  store b->val, 9
  store a->next, b
  r = load a->next->val
  ret r
}
|})

let test_addr_of_and_interior_pointer () =
  check Alcotest.int "store through &p->g" 7
    (ret_int
       {|
struct s { f: int, g: int }
func set(cellp: ptr int) {
entry:
  store cellp, 7
  ret
}
func main() -> int {
entry:
  p = alloc pmem s
  a = addr p->g
  call set(a)
  r = load p->g
  ret r
}
|})

let test_pointer_arithmetic () =
  check Alcotest.int "q = p + 1 addresses next slot" 5
    (ret_int
       {|
struct s { f: int, g: int }
func main() -> int {
entry:
  p = alloc pmem s
  q = p + 1
  store q, 5
  r = load p->g
  ret r
}
|})

let test_entry_args () =
  check Alcotest.int "argument passed" 12
    (ret_int ~args:[ 6 ]
       {|
func main(n: int) -> int {
entry:
  r = n * 2
  ret r
}
|})

let test_runtime_errors () =
  let expect_error src =
    match run src with
    | exception Runtime.Interp.Runtime_error _ -> ()
    | _ -> Alcotest.fail "expected runtime error"
  in
  expect_error {|
func main() {
entry:
  store p->f, 1
  ret
}
|};
  expect_error
    {|
struct s { f: int }
func main() {
entry:
  p = alloc pmem s
  q = load p->f
  store q->f, 1
  ret
}
|};
  expect_error {|
func main() {
entry:
  call ghost()
  ret
}
|}

let test_fuel_limit () =
  let prog =
    Nvmir.Parser.parse
      {|
func main() {
entry:
  br spin
spin:
  br spin
}
|}
  in
  let pmem = Runtime.Pmem.create () in
  let interp = Runtime.Interp.create ~fuel:1000 ~pmem prog in
  match Runtime.Interp.run ~entry:"main" interp with
  | exception Runtime.Interp.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected Out_of_fuel"

let test_division_by_zero () =
  match
    run {|
func main() -> int {
entry:
  a = 1
  b = 0
  c = a / b
  ret c
}
|}
  with
  | exception Runtime.Interp.Runtime_error (m, _) ->
    check Alcotest.string "message" "division by zero" m
  | _ -> Alcotest.fail "expected division error"

let test_persistence_through_interp () =
  let _, pmem =
    run
      {|
struct s { f: int, g: int }
func main() {
entry:
  p = alloc pmem s
  store p->f, 3
  persist exact p->f
  store p->g, 4
  ret
}
|}
  in
  check Alcotest.int "persisted field durable" 3
    (Runtime.Value.to_int
       (Runtime.Pmem.durable_value pmem { Runtime.Pmem.obj_id = 0; slot = 0 }));
  check Alcotest.int "unpersisted field not durable" 0
    (Runtime.Value.to_int
       (Runtime.Pmem.durable_value pmem { Runtime.Pmem.obj_id = 0; slot = 1 }))

(* every generated program must execute cleanly *)
let prop_synth_programs_run =
  QCheck.Test.make ~name:"generated programs execute" ~count:20
    QCheck.(map abs int)
    (fun seed ->
      let cfg = { Corpus.Synth.default_config with seed; nfuncs = 10 } in
      let prog, _ = Corpus.Synth.generate cfg in
      let pmem = Runtime.Pmem.create () in
      let interp = Runtime.Interp.create ~pmem prog in
      match Runtime.Interp.run ~entry:"main" interp with
      | _ -> true
      | exception Runtime.Interp.Out_of_fuel -> false
      | exception Runtime.Interp.Runtime_error _ -> false)

let suite =
  [
    tc "arithmetic" `Quick test_arithmetic;
    tc "branches and loops" `Quick test_branches_and_loops;
    tc "recursive calls" `Quick test_calls_and_args;
    tc "struct fields and arrays" `Quick test_struct_fields_and_arrays;
    tc "pointer chase" `Quick test_pointer_chase;
    tc "address-of and interior pointers" `Quick
      test_addr_of_and_interior_pointer;
    tc "pointer arithmetic" `Quick test_pointer_arithmetic;
    tc "entry arguments" `Quick test_entry_args;
    tc "runtime errors" `Quick test_runtime_errors;
    tc "fuel limit" `Quick test_fuel_limit;
    tc "division by zero" `Quick test_division_by_zero;
    tc "persistence through execution" `Quick test_persistence_through_interp;
    QCheck_alcotest.to_alcotest prop_synth_programs_run;
  ]
