(* Trace collection (§4.3).

   Phase 1 (intra-procedural): depth-first path enumeration over each
   function's CFG, bounded by [Config.loop_bound] back-edge traversals
   and [Config.max_paths] paths. Each path yields one trace whose events
   are resolved through the DSG; writes and flushes that the DSG proves
   volatile are dropped, so traces contain only persistent operations.

   Phase 2 (inter-procedural): the call graph is traversed so that
   callee traces are spliced into caller traces at call sites
   (Figure 11), bounded by [Config.recursion_bound] on the call chain
   and [Config.expansion_fanout] callee traces per site. Call/return
   provenance markers are kept in the merged trace. *)

type t = Event.t list

(* Events of one instruction, in order. [Persist] lowers to flush;fence. *)
let events_of_instr dsg ~fname (i : Nvmir.Instr.t) : Event.t list =
  let ev kind = Event.make ~fname ~loc:i.loc kind in
  match i.kind with
  | Nvmir.Instr.Store { dst; _ } ->
    let a = Dsa.Dsg.resolve dsg ~fname dst in
    if Dsa.Dsg.is_persistent_addr dsg a then [ ev (Event.Write a) ] else []
  | Nvmir.Instr.Flush { target; extent } ->
    let a = Dsa.Dsg.resolve_extent dsg ~fname target extent in
    if Dsa.Dsg.is_persistent_addr dsg a then
      [ ev (Event.Flush (a, Event.Plain)) ]
    else []
  | Nvmir.Instr.Persist { target; extent } ->
    let a = Dsa.Dsg.resolve_extent dsg ~fname target extent in
    if Dsa.Dsg.is_persistent_addr dsg a then
      [ ev (Event.Flush (a, Event.From_persist)); ev Event.Fence ]
    else []
  | Nvmir.Instr.Tx_add { target; extent } ->
    let a = Dsa.Dsg.resolve_extent dsg ~fname target extent in
    if Dsa.Dsg.is_persistent_addr dsg a then [ ev (Event.Log a) ] else []
  | Nvmir.Instr.Fence -> [ ev Event.Fence ]
  | Nvmir.Instr.Tx_begin -> [ ev Event.Tx_begin ]
  | Nvmir.Instr.Tx_end -> [ ev Event.Tx_end ]
  | Nvmir.Instr.Epoch_begin -> [ ev Event.Epoch_begin ]
  | Nvmir.Instr.Epoch_end -> [ ev Event.Epoch_end ]
  | Nvmir.Instr.Strand_begin n -> [ ev (Event.Strand_begin n) ]
  | Nvmir.Instr.Strand_end n -> [ ev (Event.Strand_end n) ]
  | Nvmir.Instr.Call { callee; _ } -> [ ev (Event.Call_mark callee) ]
  | Nvmir.Instr.Load _ | Nvmir.Instr.Assign _ | Nvmir.Instr.Binop _
  | Nvmir.Instr.Alloc _ | Nvmir.Instr.Addr_of _ | Nvmir.Instr.Comment _ -> []

(* Phase 1: enumerate bounded paths through [func], accumulating events.
   Paths containing persistent operations are explored first when a cap
   cut is needed — we achieve this cheaply by enumerating in CFG order
   and capping, which suffices for corpus-scale functions. *)
let collect_function (config : Config.t) dsg (func : Nvmir.Func.t) : t list =
  let cfg = Graphs.Cfg.of_func func in
  let loops = Graphs.Loops.compute cfg in
  let fname = Nvmir.Func.name func in
  let traces = ref [] in
  let count = ref 0 in
  let rec walk label acc edge_counts =
    if !count >= config.max_paths then ()
    else
      match Graphs.Cfg.block cfg label with
      | None -> ()
      | Some block ->
        let acc =
          List.fold_left
            (fun acc i -> List.rev_append (events_of_instr dsg ~fname i) acc)
            acc block.instrs
        in
        let follow target =
          if Graphs.Loops.is_back_edge loops ~source:label ~target then begin
            let key = (label, target) in
            let taken =
              Option.value ~default:0 (List.assoc_opt key edge_counts)
            in
            if taken < config.loop_bound then
              walk target acc ((key, taken + 1) :: List.remove_assoc key edge_counts)
          end
          else walk target acc edge_counts
        in
        (match block.term with
        | Nvmir.Func.Ret _ ->
          if !count < config.max_paths then begin
            incr count;
            traces := List.rev acc :: !traces
          end
        | Nvmir.Func.Br l -> follow l
        | Nvmir.Func.Cond_br { then_lbl; else_lbl; _ } ->
          follow then_lbl;
          follow else_lbl)
  in
  walk (Graphs.Cfg.entry cfg) [] [];
  List.rev !traces

(* Phase 2: splice callee traces into caller traces at call sites.

   Expansion is memoized bottom-up over the call graph (callees first,
   the Figure 11 merge order), so each function's merged traces are
   computed once. Call marks whose callee expansion is not yet available
   — the back edges of recursive cycles — stay unexpanded; functions in
   cyclic SCCs are then re-expanded [Config.recursion_bound] times, each
   pass splicing the previous pass's results, which bounds recursion
   unrolling exactly like §4.3 describes. *)
let take n l = List.filteri (fun i _ -> i < n) l

let expand_with (config : Config.t) ~memo (trace : t) : t list =
  (* the path cap is applied at every combination point — the
     cross-product of call-site expansions would otherwise materialize
     exponentially many traces before any cap could trim them *)
  let cap = config.max_paths in
  let rec expand_trace trace =
    match trace with
    | [] -> [ [] ]
    | ({ Event.kind = Event.Call_mark callee; fname; loc } as ev) :: rest -> (
      let rests = take cap (expand_trace rest) in
      match Hashtbl.find_opt memo callee with
      | Some callee_traces when callee_traces <> [] ->
        let callee_traces = take config.expansion_fanout callee_traces in
        take cap
          (List.concat_map
             (fun ct ->
               List.map
                 (fun r ->
                   (ev :: ct)
                   @ (Event.make ~fname ~loc (Event.Ret_mark callee) :: r))
                 rests)
             callee_traces)
      | Some _ | None -> List.map (fun r -> ev :: r) rests)
    | ev :: rest -> List.map (fun r -> ev :: r) (expand_trace rest)
  in
  take cap (expand_trace trace)

(* Collect fully expanded traces for the given root functions (defaults
   to the call-graph roots: functions never called from the program). *)
let collect ?(config = Config.default) ?roots dsg prog :
    (string * t list) list =
  let intra = Hashtbl.create 64 in
  List.iter
    (fun f ->
      Hashtbl.replace intra (Nvmir.Func.name f) (collect_function config dsg f))
    (Nvmir.Prog.funcs prog);
  let cg = Graphs.Callgraph.of_prog prog in
  let memo : (string, t list) Hashtbl.t = Hashtbl.create 64 in
  let expand_function fname =
    let own = Option.value ~default:[] (Hashtbl.find_opt intra fname) in
    List.concat_map (expand_with config ~memo) own
    |> List.filteri (fun i _ -> i < config.max_paths)
  in
  List.iter
    (fun fname -> Hashtbl.replace memo fname (expand_function fname))
    (Graphs.Callgraph.postorder cg);
  (* bounded unrolling for recursive components *)
  let cyclic =
    List.concat_map
      (fun scc ->
        match scc with
        | [ f ] when not (List.mem f (Graphs.Callgraph.callees cg f)) -> []
        | fs -> fs)
      (Graphs.Callgraph.sccs cg)
  in
  if cyclic <> [] then
    for _ = 2 to config.recursion_bound do
      List.iter
        (fun fname -> Hashtbl.replace memo fname (expand_function fname))
        cyclic
    done;
  let roots =
    match roots with
    | Some rs -> rs
    | None -> (
      match Graphs.Callgraph.roots cg with
      | [] -> Nvmir.Prog.func_names prog
      | rs -> rs)
  in
  List.map
    (fun r -> (r, Option.value ~default:[] (Hashtbl.find_opt memo r)))
    roots

let pp ppf (trace : t) =
  Fmt.pf ppf "@[<v 2>trace (%d events)@ %a@]" (List.length trace)
    Fmt.(list ~sep:(any "@ ") Event.pp)
    trace

(* Number of non-marker events; used by bench reporting. *)
let length trace = List.length (List.filter (fun e -> not (Event.is_marker e)) trace)
