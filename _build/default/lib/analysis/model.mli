(** Memory persistency models (§2.2) — the compile-time flag of DeepMC:
    strict (persist in program order), epoch (barrier-ordered epochs),
    and strand (concurrent independent strands). *)

type t = Strict | Epoch | Strand

val all : t list
val to_string : t -> string
val of_string : string -> t option

val flag : t -> string
(** The compiler flag spelling: ["-strict"], ["-epoch"], ["-strand"]. *)

val pp : t Fmt.t
val description : t -> string

val relaxes : t -> t option
(** The model this one relaxes (epoch relaxes strict, strand relaxes
    epoch). *)

val equal : t -> t -> bool
