(* Memory persistency models (§2.2), the compile-time flag of DeepMC.

   - [Strict]: every persistent store becomes durable in program order;
     each store is followed by its own flush and persist barrier.
   - [Epoch]: stores within an epoch may persist in any order; all
     stores of epoch E1 persist before any store of a later epoch E2,
     enforced by a persist barrier at each epoch boundary.
   - [Strand]: epochs (strands) may additionally persist concurrently
     with each other when they have no WAW/RAW data dependence. *)

type t = Strict | Epoch | Strand

let all = [ Strict; Epoch; Strand ]

let to_string = function
  | Strict -> "strict"
  | Epoch -> "epoch"
  | Strand -> "strand"

let of_string = function
  | "strict" -> Some Strict
  | "epoch" -> Some Epoch
  | "strand" -> Some Strand
  | _ -> None

let flag t = "-" ^ to_string t
let pp ppf t = Fmt.string ppf (to_string t)

let description = function
  | Strict ->
    "All persistent stores become durable in program order; every store is \
     individually flushed and fenced before the next persistent operation."
  | Epoch ->
    "Stores within an epoch may persist concurrently; a persist barrier at \
     each epoch boundary orders stores of consecutive epochs."
  | Strand ->
    "Strands relax epoch ordering further: strands without WAW/RAW data \
     dependences may persist concurrently; dependent strands must be merged \
     or explicitly ordered."

(* The model a relaxation refines: used by the report to explain which
   guarantees a violation endangers. *)
let relaxes = function
  | Strict -> None
  | Epoch -> Some Strict
  | Strand -> Some Epoch

let equal a b =
  match (a, b) with
  | Strict, Strict | Epoch, Epoch | Strand, Strand -> true
  | (Strict | Epoch | Strand), _ -> false
