(** Aggregate statistics over warning sets: per-rule, per-category and
    per-file breakdowns, with a monoid structure for merging programs
    into framework-level totals. *)

type t = {
  total : int;
  violations : int;
  performance : int;
  static_found : int;
  dynamic_found : int;
  by_rule : (Warning.rule_id * int) list;  (** descending count *)
  by_file : (string * int) list;  (** descending count *)
  models : Model.t list;  (** models seen, deduplicated *)
}

val of_warnings : Warning.t list -> t
val merge : t -> t -> t
val empty : t
val pp : t Fmt.t
