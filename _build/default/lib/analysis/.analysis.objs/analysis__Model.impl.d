lib/analysis/model.ml: Fmt
