lib/analysis/event.ml: Dsa Fmt Nvmir
