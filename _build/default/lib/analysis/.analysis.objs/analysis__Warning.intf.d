lib/analysis/warning.mli: Fmt Model Nvmir
