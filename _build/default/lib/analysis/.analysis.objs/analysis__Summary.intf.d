lib/analysis/summary.mli: Fmt Model Warning
