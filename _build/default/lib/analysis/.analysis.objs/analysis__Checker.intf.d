lib/analysis/checker.mli: Config Dsa Fmt Model Nvmir Warning
