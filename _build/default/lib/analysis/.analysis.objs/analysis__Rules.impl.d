lib/analysis/rules.ml: Dsa Event Fmt Int List Model Nvmir Trace Warning
