lib/analysis/config.mli: Fmt
