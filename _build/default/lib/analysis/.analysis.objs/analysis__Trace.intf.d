lib/analysis/trace.mli: Config Dsa Event Fmt Nvmir
