lib/analysis/warning.ml: Fmt Hashtbl List Model Nvmir
