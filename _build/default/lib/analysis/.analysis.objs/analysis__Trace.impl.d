lib/analysis/trace.ml: Config Dsa Event Fmt Graphs Hashtbl List Nvmir Option
