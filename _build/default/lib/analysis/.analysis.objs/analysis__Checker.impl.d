lib/analysis/checker.ml: Config Dsa Fmt List Model Nvmir Rules Trace Warning
