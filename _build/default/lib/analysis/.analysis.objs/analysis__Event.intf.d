lib/analysis/event.mli: Dsa Fmt Nvmir
