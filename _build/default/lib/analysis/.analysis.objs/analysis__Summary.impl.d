lib/analysis/summary.ml: Fmt Hashtbl List Model Nvmir Option Warning
