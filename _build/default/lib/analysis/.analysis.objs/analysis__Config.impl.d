lib/analysis/config.ml: Fmt
