lib/analysis/rules.mli: Dsa Event Model Nvmir Trace Warning
