lib/analysis/model.mli: Fmt
