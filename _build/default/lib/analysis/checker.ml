(* The static checker (steps 2–4 of Figure 8): builds the DSG, collects
   interprocedural traces from the analysis roots, applies the rule set
   for the selected persistency model, and reports deduplicated
   warnings. *)

type result = {
  model : Model.t;
  warnings : Warning.t list;
  trace_count : int;
  event_count : int;
  dsg : Dsa.Dsg.t;
}

let check ?(config = Config.default) ?(field_sensitive = true)
    ?(persistent_roots = []) ?roots ~model (prog : Nvmir.Prog.t) : result =
  let dsg = Dsa.Dsg.build ~field_sensitive ~persistent_roots prog in
  let per_root = Trace.collect ~config ?roots dsg prog in
  let ctx = { Rules.model; dsg; tenv = Nvmir.Prog.tenv prog } in
  let traces = List.concat_map snd per_root in
  let warnings =
    List.concat_map (Rules.check_trace ctx) traces
    |> Warning.dedup |> Warning.sort
  in
  let event_count = List.fold_left (fun acc t -> acc + Trace.length t) 0 traces in
  { model; warnings; trace_count = List.length traces; event_count; dsg }

(* Mixed-model checking — lifting the limitation §4.5 states ("DeepMC
   currently does not support the scenario that part of a program uses
   one model and other parts of the program use another"). Each analysis
   root carries its own intended model: the traces rooted there are
   checked under that model's rules, so a codebase whose storage engine
   uses epoch persistency while its allocator uses strict persistency is
   analyzed in one run. *)
type mixed_result = {
  per_root : (string * Model.t * Warning.t list) list;
  mixed_warnings : Warning.t list; (* union, deduplicated *)
  mixed_dsg : Dsa.Dsg.t;
}

let check_mixed ?(config = Config.default) ?(field_sensitive = true)
    ?(persistent_roots = []) ~model_of ~roots (prog : Nvmir.Prog.t) :
    mixed_result =
  let dsg = Dsa.Dsg.build ~field_sensitive ~persistent_roots prog in
  let per_root_traces = Trace.collect ~config ~roots dsg prog in
  let tenv = Nvmir.Prog.tenv prog in
  let per_root =
    List.map
      (fun (root, traces) ->
        let model = model_of root in
        let ctx = { Rules.model; dsg; tenv } in
        let warnings =
          List.concat_map (Rules.check_trace ctx) traces
          |> Warning.dedup |> Warning.sort
        in
        (root, model, warnings))
      per_root_traces
  in
  let mixed_warnings =
    Warning.sort
      (Warning.dedup (List.concat_map (fun (_, _, ws) -> ws) per_root))
  in
  { per_root; mixed_warnings; mixed_dsg = dsg }

let violations r =
  List.filter (fun w -> Warning.category w = Warning.Model_violation) r.warnings

let performance_bugs r =
  List.filter (fun w -> Warning.category w = Warning.Performance) r.warnings

let pp_result ppf r =
  Fmt.pf ppf
    "@[<v>model: %a@ traces analyzed: %d (%d events)@ warnings: %d (%d model \
     violations, %d performance)@ %a@]"
    Model.pp r.model r.trace_count r.event_count
    (List.length r.warnings)
    (List.length (violations r))
    (List.length (performance_bugs r))
    Fmt.(list ~sep:(any "@ ") Warning.pp)
    r.warnings
