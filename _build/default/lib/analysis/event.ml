(* Trace events: the persistency-relevant history of one execution path.

   A trace contains only operations involving persistent memory — the
   DSG filters everything else out (§4.3, "the DSG limits traces to only
   operations involving persistent memory"). [Persist] instructions are
   lowered to a [Flush] followed by a [Fence] during collection, so the
   rules reason over three primitive durability operations. *)

(* Whether a flush event came from a bare cacheline write-back or from a
   combined persist operation (flush + fence). The distinction matters
   for classifying performance bugs: a persist over unwritten data is a
   "durable transaction without persistent writes" (Figure 7), a bare
   flush over unwritten data is "writing back unmodified data". *)
type flush_origin = Plain | From_persist

type kind =
  | Write of Dsa.Aaddr.t
  | Flush of Dsa.Aaddr.t * flush_origin
  | Fence
  | Log of Dsa.Aaddr.t (* undo-log registration (TX_ADD) *)
  | Tx_begin
  | Tx_end
  | Epoch_begin
  | Epoch_end
  | Strand_begin of int
  | Strand_end of int
  | Call_mark of string (* provenance markers for merged traces, Fig. 11 *)
  | Ret_mark of string

type t = {
  kind : kind;
  loc : Nvmir.Loc.t;
  fname : string; (* function the event originated from *)
}

let make ~fname ~loc kind = { kind; loc; fname }

let pp_kind ppf = function
  | Write a -> Fmt.pf ppf "W %a" Dsa.Aaddr.pp a
  | Flush (a, Plain) -> Fmt.pf ppf "F %a" Dsa.Aaddr.pp a
  | Flush (a, From_persist) -> Fmt.pf ppf "P %a" Dsa.Aaddr.pp a
  | Fence -> Fmt.string ppf "FENCE"
  | Log a -> Fmt.pf ppf "LOG %a" Dsa.Aaddr.pp a
  | Tx_begin -> Fmt.string ppf "TX{"
  | Tx_end -> Fmt.string ppf "}TX"
  | Epoch_begin -> Fmt.string ppf "EPOCH{"
  | Epoch_end -> Fmt.string ppf "}EPOCH"
  | Strand_begin n -> Fmt.pf ppf "STRAND%d{" n
  | Strand_end n -> Fmt.pf ppf "}STRAND%d" n
  | Call_mark f -> Fmt.pf ppf ">%s" f
  | Ret_mark f -> Fmt.pf ppf "<%s" f

let pp ppf t = Fmt.pf ppf "%a @@%a" pp_kind t.kind Nvmir.Loc.pp t.loc

let is_marker t =
  match t.kind with
  | Call_mark _ | Ret_mark _ -> true
  | Write _ | Flush _ | Fence | Log _ | Tx_begin | Tx_end | Epoch_begin
  | Epoch_end | Strand_begin _ | Strand_end _ -> false

(* Address of the event, when it has one. *)
let addr t =
  match t.kind with
  | Write a | Flush (a, _) | Log a -> Some a
  | Fence | Tx_begin | Tx_end | Epoch_begin | Epoch_end | Strand_begin _
  | Strand_end _ | Call_mark _ | Ret_mark _ -> None
