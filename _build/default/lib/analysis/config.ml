(* Static-analysis bounds (§4.3): path exploration is limited to a small
   number of loop iterations (10 by default) and recursion depth (5 by
   default); [max_paths] caps path enumeration per function so branchy
   code cannot explode trace collection. *)

type t = {
  loop_bound : int; (* times a back edge may be taken per path *)
  recursion_bound : int; (* times a function may appear on the call chain *)
  max_paths : int; (* paths enumerated per function *)
  expansion_fanout : int; (* callee traces spliced per call site *)
}

(* loop_bound and recursion_bound follow §4.3; the path and fan-out caps
   bound the interprocedural cross-product of merged traces, which the
   paper leaves implicit. *)
let default =
  { loop_bound = 10; recursion_bound = 5; max_paths = 64; expansion_fanout = 3 }

let pp ppf t =
  Fmt.pf ppf
    "loop_bound=%d recursion_bound=%d max_paths=%d expansion_fanout=%d"
    t.loop_bound t.recursion_bound t.max_paths t.expansion_fanout
