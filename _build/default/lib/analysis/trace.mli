(** Trace collection (§4.3): bounded depth-first path enumeration per
    function, then memoized bottom-up splicing of callee traces into
    callers at call sites (Figure 11). *)

type t = Event.t list

val events_of_instr : Dsa.Dsg.t -> fname:string -> Nvmir.Instr.t -> Event.t list
(** The events one instruction contributes; writes and flushes the DSG
    proves volatile contribute nothing. *)

val collect_function : Config.t -> Dsa.Dsg.t -> Nvmir.Func.t -> t list
(** Phase 1: intra-procedural traces, with unexpanded call marks. *)

val collect :
  ?config:Config.t ->
  ?roots:string list ->
  Dsa.Dsg.t ->
  Nvmir.Prog.t ->
  (string * t list) list
(** Fully-expanded traces per root. [roots] defaults to the call-graph
    roots (functions never called within the program). *)

val pp : t Fmt.t

val length : t -> int
(** Non-marker events. *)
