(* Aggregate statistics over warning sets: the per-rule / per-category /
   per-file breakdowns the report tooling and the evaluation benches
   print. Pure folds over warning lists. *)

type t = {
  total : int;
  violations : int;
  performance : int;
  static_found : int;
  dynamic_found : int;
  by_rule : (Warning.rule_id * int) list; (* descending count *)
  by_file : (string * int) list; (* descending count *)
  models : Model.t list; (* models seen, deduplicated *)
}

let count p l = List.length (List.filter p l)

let tally key_of warnings =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun w ->
      let k = key_of w in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    warnings;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let of_warnings (warnings : Warning.t list) : t =
  {
    total = List.length warnings;
    violations =
      count (fun w -> Warning.category w = Warning.Model_violation) warnings;
    performance =
      count (fun w -> Warning.category w = Warning.Performance) warnings;
    static_found =
      count (fun (w : Warning.t) -> w.Warning.origin = Warning.Static) warnings;
    dynamic_found =
      count (fun (w : Warning.t) -> w.Warning.origin = Warning.Dynamic) warnings;
    by_rule = tally (fun (w : Warning.t) -> w.Warning.rule) warnings;
    by_file = tally (fun (w : Warning.t) -> w.Warning.loc.Nvmir.Loc.file) warnings;
    models =
      List.sort_uniq compare
        (List.map (fun (w : Warning.t) -> w.Warning.model) warnings);
  }

(* Merge summaries from several programs (e.g. a whole framework). *)
let merge_tally xs ys =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (k, n) ->
      Hashtbl.replace tbl k
        (n + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    (xs @ ys);
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
  |> List.sort (fun (_, x) (_, y) -> compare y x)

let merge (a : t) (b : t) : t =
  {
    total = a.total + b.total;
    violations = a.violations + b.violations;
    performance = a.performance + b.performance;
    static_found = a.static_found + b.static_found;
    dynamic_found = a.dynamic_found + b.dynamic_found;
    by_rule = merge_tally a.by_rule b.by_rule;
    by_file = merge_tally a.by_file b.by_file;
    models = List.sort_uniq compare (a.models @ b.models);
  }

let empty : t =
  {
    total = 0;
    violations = 0;
    performance = 0;
    static_found = 0;
    dynamic_found = 0;
    by_rule = [];
    by_file = [];
    models = [];
  }

let pp ppf (t : t) =
  Fmt.pf ppf
    "@[<v>%d warning(s): %d violation(s), %d performance (%d static, %d \
     dynamic)@ by rule: %a@ by file: %a@]"
    t.total t.violations t.performance t.static_found t.dynamic_found
    Fmt.(
      list ~sep:(any ", ") (fun ppf (r, n) ->
          Fmt.pf ppf "%s=%d" (Warning.rule_name r) n))
    t.by_rule
    Fmt.(list ~sep:(any ", ") (fun ppf (f, n) -> Fmt.pf ppf "%s=%d" f n))
    t.by_file
