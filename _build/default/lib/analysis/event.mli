(** Trace events: the persistency-relevant history of one execution
    path. Traces contain only operations involving persistent memory
    (§4.3); [Persist] instructions are lowered to flush-then-fence. *)

(** Whether a flush came from a bare write-back or a combined persist —
    the distinction classifies the performance-bug warnings. *)
type flush_origin = Plain | From_persist

type kind =
  | Write of Dsa.Aaddr.t
  | Flush of Dsa.Aaddr.t * flush_origin
  | Fence
  | Log of Dsa.Aaddr.t  (** undo-log registration (TX_ADD) *)
  | Tx_begin
  | Tx_end
  | Epoch_begin
  | Epoch_end
  | Strand_begin of int
  | Strand_end of int
  | Call_mark of string  (** provenance markers of merged traces *)
  | Ret_mark of string

type t = { kind : kind; loc : Nvmir.Loc.t; fname : string }

val make : fname:string -> loc:Nvmir.Loc.t -> kind -> t
val pp_kind : kind Fmt.t
val pp : t Fmt.t
val is_marker : t -> bool
val addr : t -> Dsa.Aaddr.t option
