(** Operands: immediate constants, named variables, and the null
    pointer. *)

type t =
  | Const of int
  | Bool_const of bool
  | Var of string
  | Null

val pp : t Fmt.t
val equal : t -> t -> bool

val var_opt : t -> string option
(** The variable name, when the operand is one. *)
