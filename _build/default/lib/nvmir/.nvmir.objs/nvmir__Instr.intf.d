lib/nvmir/instr.mli: Fmt Loc Operand Place Ty
