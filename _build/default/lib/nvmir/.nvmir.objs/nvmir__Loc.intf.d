lib/nvmir/loc.mli: Fmt
