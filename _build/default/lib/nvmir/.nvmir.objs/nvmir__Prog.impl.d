lib/nvmir/prog.ml: Fmt Func Hashtbl Instr List String Ty
