lib/nvmir/parser.mli: Prog
