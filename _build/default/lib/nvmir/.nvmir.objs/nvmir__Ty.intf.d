lib/nvmir/ty.mli: Fmt
