lib/nvmir/func.mli: Fmt Instr Loc Operand Ty
