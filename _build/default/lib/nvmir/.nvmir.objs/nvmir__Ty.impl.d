lib/nvmir/ty.ml: Fmt Hashtbl List String
