lib/nvmir/operand.ml: Bool Fmt String
