lib/nvmir/place.mli: Fmt Operand
