lib/nvmir/lexer.ml: Fmt String
