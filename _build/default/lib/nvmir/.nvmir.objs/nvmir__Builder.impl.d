lib/nvmir/builder.ml: Fmt Func Instr List Loc Operand Place Prog Ty
