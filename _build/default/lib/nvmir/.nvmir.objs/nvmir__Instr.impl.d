lib/nvmir/instr.ml: Fmt List Loc Operand Option Place Ty
