lib/nvmir/func.ml: Fmt Instr List Loc Operand String Ty
