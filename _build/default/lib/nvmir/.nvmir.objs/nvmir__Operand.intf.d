lib/nvmir/operand.mli: Fmt
