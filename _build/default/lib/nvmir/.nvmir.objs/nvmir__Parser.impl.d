lib/nvmir/parser.ml: Fmt Func Instr Lexer List Loc Operand Place Prog Ty
