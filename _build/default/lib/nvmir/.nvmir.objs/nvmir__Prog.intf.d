lib/nvmir/prog.mli: Fmt Func Ty
