lib/nvmir/place.ml: Fmt List Operand String
