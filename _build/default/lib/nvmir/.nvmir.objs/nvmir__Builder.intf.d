lib/nvmir/builder.mli: Func Instr Operand Place Prog Ty
