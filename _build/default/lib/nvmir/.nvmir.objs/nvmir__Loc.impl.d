lib/nvmir/loc.ml: Fmt Int String
