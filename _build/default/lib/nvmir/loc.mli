(** Source locations for IR instructions.

    Every instruction in the IR carries a location. Corpus programs use the
    file/line coordinates reported in the paper so checker warnings can be
    matched against the paper's bug tables. *)

type t = { file : string; line : int }

val make : file:string -> line:int -> t

val none : t
(** Placeholder location for synthesized instructions. *)

val is_none : t -> bool
val file : t -> string
val line : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string

val of_string : string -> t
(** Parse ["file:line"]. @raise Invalid_argument on malformed input. *)
