(** Memory places: access paths rooted at a pointer-valued variable,
    mirroring C lvalues such as [lk->state] or [node->items[c-1]].
    Stores, loads and flushes operate on places; the DSA maps them to
    abstract persistent objects and fields. *)

type access =
  | Field of string
  | Index of Operand.t  (** array subscript; may be symbolic *)

type t

val var : string -> t
(** The location the variable points to (no further accesses). *)

val field : string -> string -> t
(** [field p f] is [p->f]. *)

val index : string -> Operand.t -> t
(** [index p i] is [p[i]]. *)

val field_index : string -> string -> Operand.t -> t
(** [field_index p f i] is [p->f[i]]. *)

val make : string -> access list -> t
val base : t -> string
val path : t -> access list

val first_field : t -> string option
(** The first field selected from the base pointer, if any. *)

val pp : t Fmt.t
val equal : t -> t -> bool
