(* Hand-rolled lexer for the textual .nvmir format.

   Comments run from '#' or "//" to end of line. The '@' sign introduces
   a source-location annotation and greedily consumes the following
   non-whitespace word (e.g. "@ btree_map.c:201"), which keeps file names
   with dots and slashes out of the main token grammar. *)

type token =
  | IDENT of string
  | INT of int
  | AT_LOC of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACK
  | RBRACK
  | COMMA
  | COLON
  | ARROW (* -> *)
  | EQUAL (* = *)
  | OP of string (* binary operators: + - * / == != < <= > >= && || *)
  | EOF

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable peeked : (token * int) option; (* token and its line *)
}

exception Error of string * int (* message, line *)

let create src = { src; pos = 0; line = 1; peeked = None }

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws t =
  if t.pos >= String.length t.src then ()
  else
    match t.src.[t.pos] with
    | ' ' | '\t' | '\r' ->
      t.pos <- t.pos + 1;
      skip_ws t
    | '\n' ->
      t.pos <- t.pos + 1;
      t.line <- t.line + 1;
      skip_ws t
    | '#' | ';' ->
      skip_line t;
      skip_ws t
    | '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
      skip_line t;
      skip_ws t
    | _ -> ()

and skip_line t =
  while t.pos < String.length t.src && t.src.[t.pos] <> '\n' do
    t.pos <- t.pos + 1
  done

let read_while t pred =
  let start = t.pos in
  while t.pos < String.length t.src && pred t.src.[t.pos] do
    t.pos <- t.pos + 1
  done;
  String.sub t.src start (t.pos - start)

let scan t : token =
  skip_ws t;
  if t.pos >= String.length t.src then EOF
  else
    let c = t.src.[t.pos] in
    let two =
      if t.pos + 1 < String.length t.src then
        String.sub t.src t.pos 2
      else ""
    in
    if is_ident_start c then IDENT (read_while t is_ident_char)
    else if is_digit c then
      let digits = read_while t is_digit in
      INT (int_of_string digits)
    else
      match two with
      | "->" ->
        t.pos <- t.pos + 2;
        ARROW
      | "==" | "!=" | "<=" | ">=" | "&&" | "||" ->
        t.pos <- t.pos + 2;
        OP two
      | _ -> (
        t.pos <- t.pos + 1;
        match c with
        | '(' -> LPAREN
        | ')' -> RPAREN
        | '{' -> LBRACE
        | '}' -> RBRACE
        | '[' -> LBRACK
        | ']' -> RBRACK
        | ',' -> COMMA
        | ':' -> COLON
        | '=' -> EQUAL
        | '+' | '*' | '/' | '<' | '>' -> OP (String.make 1 c)
        | '-' ->
          (* '-' followed by a digit with no space is a negative literal *)
          if t.pos < String.length t.src && is_digit t.src.[t.pos] then
            let digits = read_while t is_digit in
            INT (-int_of_string digits)
          else OP "-"
        | '@' ->
          skip_ws t;
          let word =
            read_while t (fun c ->
                not (c = ' ' || c = '\t' || c = '\n' || c = '\r'))
          in
          if word = "" then raise (Error ("empty location after '@'", t.line));
          AT_LOC word
        | _ -> raise (Error (Fmt.str "unexpected character %C" c, t.line)))

(* Tokens never span lines, so after [scan] (which first skips leading
   whitespace) [t.line] is the line the token started on. *)
let next t : token * int =
  match t.peeked with
  | Some tl ->
    t.peeked <- None;
    tl
  | None ->
    let tok = scan t in
    (tok, t.line)

let peek t : token =
  match t.peeked with
  | Some (tok, _) -> tok
  | None ->
    let tl = next t in
    t.peeked <- Some tl;
    fst tl

(* Snapshot/restore for the rare two-token lookahead ("ret x" versus
   "ret" followed by a block label "x:"). *)
type snapshot = { s_pos : int; s_line : int; s_peeked : (token * int) option }

let save t = { s_pos = t.pos; s_line = t.line; s_peeked = t.peeked }

let restore t s =
  t.pos <- s.s_pos;
  t.line <- s.s_line;
  t.peeked <- s.s_peeked

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | INT n -> Fmt.pf ppf "integer %d" n
  | AT_LOC s -> Fmt.pf ppf "location %S" s
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | LBRACE -> Fmt.string ppf "'{'"
  | RBRACE -> Fmt.string ppf "'}'"
  | LBRACK -> Fmt.string ppf "'['"
  | RBRACK -> Fmt.string ppf "']'"
  | COMMA -> Fmt.string ppf "','"
  | COLON -> Fmt.string ppf "':'"
  | ARROW -> Fmt.string ppf "'->'"
  | EQUAL -> Fmt.string ppf "'='"
  | OP s -> Fmt.pf ppf "operator %S" s
  | EOF -> Fmt.string ppf "end of input"
