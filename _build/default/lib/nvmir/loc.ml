(* Source locations attached to IR instructions.

   Corpus programs carry the file/line coordinates reported in the paper
   (e.g. [btree_map.c:201]) so that checker warnings can be compared with
   the paper's ground truth verbatim. *)

type t = { file : string; line : int }

let make ~file ~line = { file; line }
let none = { file = "<unknown>"; line = 0 }
let is_none t = t.line = 0 && String.equal t.file "<unknown>"
let file t = t.file
let line t = t.line

let compare a b =
  match String.compare a.file b.file with
  | 0 -> Int.compare a.line b.line
  | c -> c

let equal a b = compare a b = 0
let pp ppf t = Fmt.pf ppf "%s:%d" t.file t.line
let to_string t = Fmt.str "%a" pp t

(* Parse "file:line"; raises [Invalid_argument] on malformed input. *)
let of_string s =
  match String.rindex_opt s ':' with
  | None -> invalid_arg ("Loc.of_string: missing ':' in " ^ s)
  | Some i -> (
    let file = String.sub s 0 i in
    let num = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt num with
    | Some line when line >= 0 -> { file; line }
    | Some _ | None -> invalid_arg ("Loc.of_string: bad line in " ^ s))
