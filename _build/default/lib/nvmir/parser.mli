(** Parser for the textual [.nvmir] format.

    The format is what {!Prog.pp} prints: struct definitions and
    functions of labeled blocks, with optional ["@ file:line"] source
    annotations on instructions and ['#']/["//"]/[';'] comments. See
    [examples/programs/] for complete inputs. *)

exception Parse_error of string * int
(** Message and (approximate) source line. *)

val parse : ?file:string -> string -> Prog.t
(** Parse a whole program from a string. [file] is used in diagnostics
    only; instruction locations come from their ["@"] annotations.
    @raise Parse_error on malformed input. *)

val parse_file : string -> Prog.t
(** @raise Parse_error on malformed input.
    @raise Sys_error when the file cannot be read. *)
