(** Types for the NVM IR: integers, booleans, named structs, pointers and
    fixed-size arrays. Struct layouts are resolved through a shared [env]. *)

type t =
  | Int
  | Bool
  | Named of string  (** reference to a struct definition by name *)
  | Ptr of t
  | Array of t * int

type struct_def = { sname : string; fields : (string * t) list }
type env

val pp : t Fmt.t
val pp_struct : struct_def Fmt.t
val equal : t -> t -> bool
val env_create : unit -> env

val env_add : env -> struct_def -> unit
(** @raise Invalid_argument on duplicate struct names. *)

val env_find : env -> string -> struct_def option
val field_ty : env -> struct_name:string -> field:string -> t option
val field_names : env -> struct_name:string -> string list

val size_slots : env -> t -> int
(** Abstract size: scalars and pointers are one slot, aggregates the sum of
    their parts. Used by the cache-line model and extent reasoning. *)

val field_offset : env -> struct_name:string -> field:string -> int option
(** Offset of a field within a struct, in slots. *)
