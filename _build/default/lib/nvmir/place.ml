(* Memory places: an access path rooted at a variable.

   A place denotes a memory location reachable from a pointer-valued
   variable through a chain of field selections and array indexings,
   mirroring C lvalues such as [lk->state] or [node->items[c-1]]. Places
   are what stores, loads and flushes operate on; the DSA maps them to
   abstract persistent objects and fields. *)

type access =
  | Field of string
  | Index of Operand.t (* array subscript; may be symbolic *)

type t = { base : string; path : access list }

let var base = { base; path = [] }
let field base f = { base; path = [ Field f ] }
let index base i = { base; path = [ Index i ] }
let field_index base f i = { base; path = [ Field f; Index i ] }
let make base path = { base; path }
let base t = t.base
let path t = t.path

(* The first field selected from the base pointer, if any. DSA field
   sensitivity keys on this. *)
let first_field t =
  List.find_map (function Field f -> Some f | Index _ -> None) t.path

let pp_access ppf = function
  | Field f -> Fmt.pf ppf "->%s" f
  | Index i -> Fmt.pf ppf "[%a]" Operand.pp i

let pp ppf t = Fmt.pf ppf "%s%a" t.base Fmt.(list ~sep:nop pp_access) t.path

let equal_access a b =
  match (a, b) with
  | Field x, Field y -> String.equal x y
  | Index x, Index y -> Operand.equal x y
  | (Field _ | Index _), _ -> false

let equal a b =
  String.equal a.base b.base
  && List.length a.path = List.length b.path
  && List.for_all2 equal_access a.path b.path
