(* Operands: immediate constants, named variables (SSA-ish locals or
   parameters), and the null pointer. *)

type t =
  | Const of int
  | Bool_const of bool
  | Var of string
  | Null

let pp ppf = function
  | Const n -> Fmt.int ppf n
  | Bool_const b -> Fmt.bool ppf b
  | Var v -> Fmt.string ppf v
  | Null -> Fmt.string ppf "null"

let equal a b =
  match (a, b) with
  | Const x, Const y -> x = y
  | Bool_const x, Bool_const y -> Bool.equal x y
  | Var x, Var y -> String.equal x y
  | Null, Null -> true
  | (Const _ | Bool_const _ | Var _ | Null), _ -> false

let var_opt = function Var v -> Some v | Const _ | Bool_const _ | Null -> None
