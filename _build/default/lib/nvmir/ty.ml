(* Types for the NVM IR.

   The type language is deliberately small: integers, booleans, named
   structs, pointers, and fixed-size arrays — enough to model every data
   structure in the paper's corpus (B-tree nodes, hash buckets, inodes,
   lock records, ...). Struct definitions live in a [Ty.env] so that
   field lookups are shared by the DSA and the runtime. *)

type t =
  | Int
  | Bool
  | Named of string (* reference to a struct definition by name *)
  | Ptr of t
  | Array of t * int

type struct_def = { sname : string; fields : (string * t) list }

type env = (string, struct_def) Hashtbl.t

let rec pp ppf = function
  | Int -> Fmt.string ppf "int"
  | Bool -> Fmt.string ppf "bool"
  | Named n -> Fmt.string ppf n
  | Ptr t -> Fmt.pf ppf "ptr %a" pp t
  | Array (t, n) -> Fmt.pf ppf "%a[%d]" pp t n

let pp_struct ppf { sname; fields } =
  let pp_field ppf (f, t) = Fmt.pf ppf "%s: %a" f pp t in
  Fmt.pf ppf "@[<hov 2>struct %s {@ %a@ }@]" sname
    Fmt.(list ~sep:(any ",@ ") pp_field)
    fields

let rec equal a b =
  match (a, b) with
  | Int, Int | Bool, Bool -> true
  | Named x, Named y -> String.equal x y
  | Ptr x, Ptr y -> equal x y
  | Array (x, n), Array (y, m) -> n = m && equal x y
  | (Int | Bool | Named _ | Ptr _ | Array _), _ -> false

let env_create () : env = Hashtbl.create 16

let env_add (env : env) (sd : struct_def) =
  if Hashtbl.mem env sd.sname then
    invalid_arg ("Ty.env_add: duplicate struct " ^ sd.sname);
  Hashtbl.replace env sd.sname sd

let env_find (env : env) name = Hashtbl.find_opt env name

let field_ty (env : env) ~struct_name ~field =
  match env_find env struct_name with
  | None -> None
  | Some sd -> List.assoc_opt field sd.fields

let field_names (env : env) ~struct_name =
  match env_find env struct_name with
  | None -> []
  | Some sd -> List.map fst sd.fields

(* Abstract size in "slots": an int/bool/pointer occupies one slot, an
   array of n elements occupies n element-sizes, a struct the sum of its
   fields. The runtime's cache-line model and the checker's extent
   reasoning both use slots instead of bytes; this keeps arithmetic exact
   while preserving the containment relations the rules need
   (field-extent < object-extent, etc.). *)
let rec size_slots (env : env) = function
  | Int | Bool | Ptr _ -> 1
  | Array (t, n) -> n * size_slots env t
  | Named n -> (
    match env_find env n with
    | None -> 1
    | Some sd ->
      List.fold_left (fun acc (_, t) -> acc + size_slots env t) 0 sd.fields)

(* Offset of [field] within [struct_name], in slots. *)
let field_offset (env : env) ~struct_name ~field =
  match env_find env struct_name with
  | None -> None
  | Some sd ->
    let rec scan off = function
      | [] -> None
      | (f, t) :: rest ->
        if String.equal f field then Some off
        else scan (off + size_slots env t) rest
    in
    scan 0 sd.fields
