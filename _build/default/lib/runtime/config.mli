(** Simulator configuration — the stand-in for the paper's Table 7
    testbed. Costs are abstract cycles; benchmarks report relative
    numbers. *)

type cost_model = {
  store_cost : int;
  load_cost : int;
  flush_cost : int;  (** clwb issue + write-back *)
  fence_cost : int;  (** sfence drain *)
  tx_overhead : int;
  log_cost : int;  (** undo-log copy *)
}

val default_cost_model : cost_model

type t = {
  cacheline_slots : int;  (** flushes are line-granular *)
  cost : cost_model;
  track_eviction : bool;  (** model spontaneous dirty-line eviction *)
  eviction_seed : int;
}

val default : t

val describe : t -> (string * string) list
(** The Table 7 rows. *)

val pp : t Fmt.t
