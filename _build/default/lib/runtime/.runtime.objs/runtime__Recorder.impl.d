lib/runtime/recorder.ml: Analysis Fmt List Nvmir Pmem
