lib/runtime/crash.mli: Config Fmt Nvmir Pmem
