lib/runtime/pmem.ml: Array Config Fmt Fun Hashtbl Int List Nvmir Option Value
