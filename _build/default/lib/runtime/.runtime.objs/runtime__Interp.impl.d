lib/runtime/interp.ml: Fmt Hashtbl List Nvmir Option Pmem Value
