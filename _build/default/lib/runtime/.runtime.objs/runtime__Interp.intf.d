lib/runtime/interp.mli: Nvmir Pmem Value
