lib/runtime/crash.ml: Array Fmt Hashtbl Interp List Pmem Value
