lib/runtime/vclock.ml: Fmt Int Map Option
