lib/runtime/dynamic.mli: Analysis Fmt Pmem Shadow
