lib/runtime/pmem.mli: Config Fmt Hashtbl Nvmir Value
