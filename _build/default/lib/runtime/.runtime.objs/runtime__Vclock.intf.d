lib/runtime/vclock.mli: Fmt
