lib/runtime/config.mli: Fmt
