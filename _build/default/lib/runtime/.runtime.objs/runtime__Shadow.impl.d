lib/runtime/shadow.ml: Fmt Hashtbl List Nvmir
