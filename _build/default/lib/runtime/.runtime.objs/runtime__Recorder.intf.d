lib/runtime/recorder.mli: Analysis Fmt Nvmir Pmem
