lib/runtime/config.ml: Fmt List Sys
