lib/runtime/shadow.mli: Fmt Nvmir
