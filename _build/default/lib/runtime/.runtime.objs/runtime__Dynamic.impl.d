lib/runtime/dynamic.ml: Analysis Fmt Hashtbl List Nvmir Pmem Shadow
