lib/runtime/value.ml: Bool Fmt
