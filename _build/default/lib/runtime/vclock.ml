(* Vector clocks for happens-before race detection between strands
   (§4.4). Clock indices are strand/thread ids; missing entries are 0. *)

module IM = Map.Make (Int)

type t = int IM.t

let empty : t = IM.empty
let get t i = Option.value ~default:0 (IM.find_opt i t)
let set t i v = IM.add i v t
let tick t i = set t i (get t i + 1)

(* Pointwise maximum: the join used when one strand synchronizes with
   another (e.g. at a persist barrier merging strand histories). *)
let join a b =
  IM.union (fun _ x y -> Some (max x y)) a b

let le a b = IM.for_all (fun i v -> v <= get b i) a

(* a happens-before b: pointwise <= and strictly smaller somewhere. *)
let hb a b = le a b && not (le b a)

(* Concurrent: neither ordered before the other. *)
let concurrent a b = (not (le a b)) && not (le b a)

let pp ppf t =
  let bindings = IM.bindings t in
  Fmt.pf ppf "<%a>"
    Fmt.(list ~sep:(any ",") (fun ppf (i, v) -> Fmt.pf ppf "%d:%d" i v))
    bindings
