(** Runtime event recorder for differential testing: captures an
    execution's persistent-event stream and checks that some statically
    collected trace explains it (same persistency-relevant operations in
    the same order; static addresses are abstract, so comparison is by
    source location and event kind).

    Caveat: the check assumes the executed path is within the static
    path bounds (loop/path caps), which holds for the corpus and the
    generated programs the tests use. *)

type event =
  | R_write of Pmem.addr * Nvmir.Loc.t
  | R_flush of Pmem.addr * Nvmir.Loc.t
  | R_fence
  | R_tx_begin
  | R_tx_end
  | R_epoch_begin
  | R_epoch_end
  | R_strand_begin of int
  | R_strand_end of int

type t

val create : unit -> t
val attach : t -> Pmem.t -> unit
val events : t -> event list
val pp_event : event Fmt.t
val pp : t Fmt.t

type skeleton_item =
  | S_write of Nvmir.Loc.t
  | S_flush of Nvmir.Loc.t
  | S_fence
  | S_tx_begin
  | S_tx_end
  | S_epoch_begin
  | S_epoch_end
  | S_strand of int * bool  (** id, is_begin *)

val skeleton : t -> skeleton_item list
val static_skeleton : Analysis.Trace.t -> skeleton_item list
val normalize : skeleton_item list -> skeleton_item list

val subsequence : skeleton_item list -> skeleton_item list -> bool
(** Order-preserving subsequence test. *)

val explained_by : t -> Analysis.Trace.t list -> bool
(** Does some static trace explain the recorded execution? The static
    side may drop accesses through statically-opaque pointers (§5.4)
    but never invents events, so the relation is: some static trace is
    a subsequence of the execution's event stream. *)
