(* The dynamic checker (§4.4): online analysis of epoch- and strand-
   annotated NVM programs.

   It attaches to a [Pmem.t] as a listener and

   - tracks writes/reads to persistent slots inside annotated regions in
     a shadow segment and reports WAW and RAW races between concurrent
     strands (happens-before detection; persist barriers are the
     synchronization points);
   - reports flushes that wrote back no dirty data: never-written ranges
     as writing back unmodified data, ranges re-flushed inside a
     transaction as persisting the same object twice, and other clean
     re-flushes as redundant write-backs;
   - at each epoch boundary, reports writes of the closing epoch that
     are still volatile (dirty, un-fenced) — the runtime complement of
     the static unflushed-write rule.

   Only accesses inside annotated regions are tracked (the paper's key
   overhead reduction over vanilla ThreadSanitizer), so cost scales with
   the persistent write/read ratio of the workload. *)

type region = No_region | In_epoch | In_strand of int

type thread_state = {
  thread_id : int;
  mutable region : region;
  mutable begin_fence : int; (* barrier count when the region began *)
  mutable epoch_writes : (Pmem.addr * Nvmir.Loc.t) list;
      (* writes of the open epoch, with their source locations *)
}

type t = {
  model : Analysis.Model.t;
  shadow : Shadow.t;
  max_warnings : int;
  mutable warnings : Analysis.Warning.t list;
  mutable dropped_warnings : int;
  mutable races_waw : int;
  mutable races_raw : int;
  mutable unflushed_epoch_writes : int;
  mutable redundant_flushes : int;
  threads : (int, thread_state) Hashtbl.t;
  mutable current : thread_state;
  mutable fence_count : int; (* global persist-barrier counter *)
  mutable pmem : Pmem.t option;
  mutable tx_depth : int;
  ever_written : (int, unit) Hashtbl.t;
      (* in-region writes seen, keyed like [Shadow.key] *)
}

let fresh_thread id =
  { thread_id = id; region = No_region; begin_fence = 0; epoch_writes = [] }

let create ?(max_warnings = 10_000) ~model () =
  let t0 = fresh_thread 0 in
  let threads = Hashtbl.create 8 in
  Hashtbl.replace threads 0 t0;
  {
    model;
    shadow = Shadow.create ();
    max_warnings;
    warnings = [];
    dropped_warnings = 0;
    races_waw = 0;
    races_raw = 0;
    unflushed_epoch_writes = 0;
    redundant_flushes = 0;
    threads;
    current = t0;
    fence_count = 0;
    pmem = None;
    tx_depth = 0;
    ever_written = Hashtbl.create 256;
  }

let thread t id =
  match Hashtbl.find_opt t.threads id with
  | Some ts -> ts
  | None ->
    let ts = fresh_thread id in
    Hashtbl.replace t.threads id ts;
    ts

(* Multi-client workloads switch the active thread before each
   operation; single-threaded IR programs never call this. *)
let set_thread t id =
  if t.current.thread_id <> id then t.current <- thread t id

let warnings t = List.rev t.warnings
let shadow t = t.shadow

let add_warning t ~rule ~loc ~fname message =
  if List.length t.warnings >= t.max_warnings then
    t.dropped_warnings <- t.dropped_warnings + 1
  else
    t.warnings <-
      Analysis.Warning.make ~origin:Analysis.Warning.Dynamic ~rule
        ~model:t.model ~loc ~fname message
      :: t.warnings

let strand_of_region ts =
  match ts.region with
  | In_strand n -> Some n
  | In_epoch -> Some (-1 - ts.thread_id) (* epochs race only across threads *)
  | No_region -> None

let on_write t addr loc =
  let ts = t.current in
  match strand_of_region ts with
  | None -> ()
  | Some strand ->
    (* epoch-boundary volatility reporting only applies to epochs;
       strand regions defer barriers by design *)
    if ts.region = In_epoch then
      ts.epoch_writes <- (addr, loc) :: ts.epoch_writes;
    Hashtbl.replace t.ever_written (Shadow.key ~obj_id:addr.Pmem.obj_id ~slot:addr.Pmem.slot) ();
    let access = { Shadow.strand; fence_at = t.fence_count; loc } in
    let conflicts =
      Shadow.record_write t.shadow ~obj_id:addr.Pmem.obj_id
        ~slot:addr.Pmem.slot ~begin_fence:ts.begin_fence access
    in
    List.iter
      (fun c ->
        match c with
        | `Waw (w : Shadow.access) ->
          t.races_waw <- t.races_waw + 1;
          add_warning t ~rule:Analysis.Warning.Strand_dependence ~loc
            ~fname:"<runtime>"
            (Fmt.str
               "WAW race: strands %d and %d both write obj%d[%d] without an \
                ordering barrier (previous write at %a)"
               w.Shadow.strand strand addr.Pmem.obj_id addr.Pmem.slot
               Nvmir.Loc.pp w.Shadow.loc)
        | `Raw (r : Shadow.access) ->
          t.races_raw <- t.races_raw + 1;
          add_warning t ~rule:Analysis.Warning.Strand_dependence ~loc
            ~fname:"<runtime>"
            (Fmt.str
               "RAW race: strand %d reads obj%d[%d] concurrently with strand \
                %d's write (read at %a)"
               r.Shadow.strand addr.Pmem.obj_id addr.Pmem.slot strand
               Nvmir.Loc.pp r.Shadow.loc))
      conflicts

let on_read t addr loc =
  let ts = t.current in
  match strand_of_region ts with
  | None -> ()
  | Some strand -> (
    let access = { Shadow.strand; fence_at = t.fence_count; loc } in
    match
      Shadow.record_read t.shadow ~obj_id:addr.Pmem.obj_id ~slot:addr.Pmem.slot
        ~begin_fence:ts.begin_fence access
    with
    | Some (`Raw w) ->
      t.races_raw <- t.races_raw + 1;
      add_warning t ~rule:Analysis.Warning.Strand_dependence ~loc
        ~fname:"<runtime>"
        (Fmt.str
           "RAW race: read of obj%d[%d] is concurrent with strand %d's write \
            at %a"
           addr.Pmem.obj_id addr.Pmem.slot w.Shadow.strand Nvmir.Loc.pp
           w.Shadow.loc)
    | None -> ())

(* A flush that found no dirty slot is redundant work: classify it by
   whether the range was ever written inside a tracked region (multiple
   flushes / persist-same-in-tx) or never written at all (writing back
   unmodified data). *)
let on_flush t ~obj_id ~first_slot ~nslots ~dirty loc =
  let ts = t.current in
  match strand_of_region ts with
  | None -> ()
  | Some _ ->
    if not dirty then begin
      t.redundant_flushes <- t.redundant_flushes + 1;
      let rec ever i =
        i < nslots
        && (Hashtbl.mem t.ever_written (Shadow.key ~obj_id ~slot:(first_slot + i))
           || ever (i + 1))
      in
      if not (ever 0) then
        add_warning t ~rule:Analysis.Warning.Flush_unmodified ~loc
          ~fname:"<runtime>"
          (Fmt.str
             "flush of obj%d[%d..%d] writes back data that was never modified"
             obj_id first_slot
             (first_slot + nslots - 1))
      else if t.tx_depth > 0 then
        add_warning t ~rule:Analysis.Warning.Persist_same_object_in_tx ~loc
          ~fname:"<runtime>"
          (Fmt.str
             "obj%d[%d..%d] persisted again within the same transaction with \
              no intervening modification"
             obj_id first_slot
             (first_slot + nslots - 1))
      else
        add_warning t ~rule:Analysis.Warning.Multiple_flushes ~loc
          ~fname:"<runtime>"
          (Fmt.str
             "redundant write-back of obj%d[%d..%d]: already flushed and \
              unmodified since"
             obj_id first_slot
             (first_slot + nslots - 1))
    end

let on_fence t _loc = t.fence_count <- t.fence_count + 1

let on_strand_begin t n _loc =
  let ts = t.current in
  ts.region <- In_strand n;
  ts.begin_fence <- t.fence_count

let on_strand_end t n _loc =
  ignore n;
  t.current.region <- No_region

let flush_epoch_report t ts _loc =
  match t.pmem with
  | None -> ts.epoch_writes <- []
  | Some pm ->
    (* epochs are short (a handful of writes), so iterate directly *)
    let still_volatile =
      List.filter (fun (addr, _) -> Pmem.slot_state pm addr <> Pmem.Clean)
        ts.epoch_writes
    in
    List.iter
      (fun ((addr : Pmem.addr), wloc) ->
        t.unflushed_epoch_writes <- t.unflushed_epoch_writes + 1;
        add_warning t ~rule:Analysis.Warning.Unflushed_write ~loc:wloc
          ~fname:"<runtime>"
          (Fmt.str
             "epoch ends while the write to obj%d[%d] is still volatile; a \
              crash here loses it"
             addr.Pmem.obj_id addr.Pmem.slot))
      still_volatile;
    ts.epoch_writes <- []

let on_epoch_begin t _loc =
  let ts = t.current in
  ts.region <- In_epoch;
  ts.epoch_writes <- [];
  ts.begin_fence <- t.fence_count

let on_epoch_end t loc =
  let ts = t.current in
  flush_epoch_report t ts loc;
  ts.region <- No_region

let listener t : Pmem.listener =
  {
    Pmem.null_listener with
    Pmem.on_write = (fun addr loc -> on_write t addr loc);
    on_read = (fun addr loc -> on_read t addr loc);
    on_flush =
      (fun ~obj_id ~first_slot ~nslots ~dirty loc ->
        on_flush t ~obj_id ~first_slot ~nslots ~dirty loc);
    on_fence = (fun loc -> on_fence t loc);
    on_tx_begin = (fun _ -> t.tx_depth <- t.tx_depth + 1);
    on_tx_end = (fun _ -> t.tx_depth <- max 0 (t.tx_depth - 1));
    on_strand_begin = (fun n loc -> on_strand_begin t n loc);
    on_strand_end = (fun n loc -> on_strand_end t n loc);
    on_epoch_begin = (fun loc -> on_epoch_begin t loc);
    on_epoch_end = (fun loc -> on_epoch_end t loc);
  }

(* Attach the checker to a heap; subsequent operations are monitored. *)
let attach t pm =
  t.pmem <- Some pm;
  Pmem.add_listener pm (listener t)

type summary = {
  waw : int;
  raw : int;
  unflushed : int;
  redundant : int;
  tracked_cells : int;
  warning_count : int;
  dropped : int;
}

let summary t =
  {
    waw = t.races_waw;
    raw = t.races_raw;
    unflushed = t.unflushed_epoch_writes;
    redundant = t.redundant_flushes;
    tracked_cells = Shadow.tracked_cells t.shadow;
    warning_count = List.length t.warnings + t.dropped_warnings;
    dropped = t.dropped_warnings;
  }

let pp_summary ppf s =
  Fmt.pf ppf
    "WAW=%d RAW=%d unflushed-at-epoch-end=%d redundant-flushes=%d cells=%d \
     warnings=%d%s"
    s.waw s.raw s.unflushed s.redundant s.tracked_cells s.warning_count
    (if s.dropped > 0 then Fmt.str " (%d dropped)" s.dropped else "")
