(* The shadow segment (§4.4): mirrors the persistent address space and
   records, per slot, the history of strand accesses — which strand last
   wrote it and which strands have read it since. DeepMC customizes
   ThreadSanitizer with exactly this structure; here it is a hash table
   keyed by concrete slot address, populated only for addresses touched
   inside annotated regions, which is what keeps the tracking cheap.

   Ordering representation: persist barriers in the runtime are global
   synchronization points, so happens-before admits a scalar fast path
   (in the spirit of FastTrack's epochs): every access is stamped with
   the global barrier count at the time it executed, every region with
   the barrier count at which it began. An earlier access (s, f)
   happens-before a later access by a region begun at barrier count b
   iff they are by the same strand or b > f (a barrier intervened). The
   general vector-clock machinery lives in [Vclock] and is exercised by
   the test suite; the checker uses the scalar form for speed. *)

type access = {
  strand : int;
  fence_at : int; (* global barrier count when the access executed *)
  loc : Nvmir.Loc.t;
}

(* Is previous access [a] ordered before an access of [strand] whose
   region began at barrier count [begin_fence]? *)
let ordered_before (a : access) ~strand ~begin_fence =
  a.strand = strand || begin_fence > a.fence_at

type cell = {
  mutable last_write : access option;
  mutable reads : access list; (* reads since the last write *)
}

(* Cells are keyed by an int encoding of (obj, slot) — [obj lsl 24 lor
   slot] — so lookups avoid polymorphic hashing of tuples. Objects and
   slots are both well below 2^24 in practice. *)
let key ~obj_id ~slot = (obj_id lsl 24) lor slot

type t = {
  cells : (int, cell) Hashtbl.t;
  mutable tracked_writes : int;
  mutable tracked_reads : int;
}

let create () =
  { cells = Hashtbl.create 1024; tracked_writes = 0; tracked_reads = 0 }

let clear t =
  Hashtbl.reset t.cells;
  t.tracked_writes <- 0;
  t.tracked_reads <- 0

let cell t key =
  match Hashtbl.find_opt t.cells key with
  | Some c -> c
  | None ->
    let c = { last_write = None; reads = [] } in
    Hashtbl.replace t.cells key c;
    c

(* Record a write; returns the conflicting accesses, if any: a WAW race
   with the previous writer and RAW races with readers not ordered
   before this write. [begin_fence] is the barrier count at which the
   writing region began. *)
let record_write t ~obj_id ~slot ~begin_fence (a : access) :
    [ `Waw of access | `Raw of access ] list =
  let c = cell t (key ~obj_id ~slot) in
  t.tracked_writes <- t.tracked_writes + 1;
  let conflicts = ref [] in
  (match c.last_write with
  | Some w when not (ordered_before w ~strand:a.strand ~begin_fence) ->
    conflicts := `Waw w :: !conflicts
  | Some _ | None -> ());
  List.iter
    (fun r ->
      if not (ordered_before r ~strand:a.strand ~begin_fence) then
        conflicts := `Raw r :: !conflicts)
    c.reads;
  c.last_write <- Some a;
  c.reads <- [];
  List.rev !conflicts

(* Record a read; returns a RAW conflict when the read races with the
   previous write (the reader cannot know whether it observes pre- or
   post-persist data). *)
let record_read t ~obj_id ~slot ~begin_fence (a : access) :
    [ `Raw of access ] option =
  let c = cell t (key ~obj_id ~slot) in
  t.tracked_reads <- t.tracked_reads + 1;
  c.reads <- a :: c.reads;
  match c.last_write with
  | Some w when not (ordered_before w ~strand:a.strand ~begin_fence) ->
    Some (`Raw w)
  | Some _ | None -> None

let tracked_cells t = Hashtbl.length t.cells

let pp ppf t =
  Fmt.pf ppf "shadow: %d cells, %d writes, %d reads tracked"
    (tracked_cells t) t.tracked_writes t.tracked_reads
