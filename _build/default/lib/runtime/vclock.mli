(** Vector clocks for happens-before reasoning between strands (§4.4).
    The dynamic checker's hot path uses the scalar barrier-count
    representation in {!Shadow}; this module is the general mechanism
    (used directly by tests and available for schedulers without global
    barriers). *)

type t

val empty : t
val get : t -> int -> int
val set : t -> int -> int -> t
val tick : t -> int -> t

val join : t -> t -> t
(** Pointwise maximum. *)

val le : t -> t -> bool

val hb : t -> t -> bool
(** Strict happens-before. *)

val concurrent : t -> t -> bool
val pp : t Fmt.t
