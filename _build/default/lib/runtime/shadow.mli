(** The shadow segment (§4.4): mirrors the persistent address space,
    recording per-slot access history for happens-before WAW/RAW race
    detection. Ordering uses a scalar barrier-count fast path (persist
    barriers in the runtime are global synchronization points); see
    DESIGN.md. *)

type access = {
  strand : int;
  fence_at : int;  (** global barrier count when the access executed *)
  loc : Nvmir.Loc.t;
}

val ordered_before : access -> strand:int -> begin_fence:int -> bool
(** Is the previous access ordered before an access by [strand] whose
    region began at barrier count [begin_fence]? *)

val key : obj_id:int -> slot:int -> int
(** Int encoding of a slot address (avoids tuple hashing). *)

type t

val create : unit -> t
val clear : t -> unit

val record_write :
  t ->
  obj_id:int ->
  slot:int ->
  begin_fence:int ->
  access ->
  [ `Waw of access | `Raw of access ] list
(** Record a write; returns the races it completes (WAW with the
    previous writer, RAW with unordered readers). *)

val record_read :
  t ->
  obj_id:int ->
  slot:int ->
  begin_fence:int ->
  access ->
  [ `Raw of access ] option

val tracked_cells : t -> int
val pp : t Fmt.t
