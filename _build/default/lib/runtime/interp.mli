(** IR interpreter over the NVM simulator. All persistent operations go
    through {!Pmem}, so attached listeners — in particular the dynamic
    checker — observe exactly the events an instrumented binary would
    produce (steps 5–6 of Figure 8). *)

exception Runtime_error of string * Nvmir.Loc.t
exception Out_of_fuel

type t

val create : ?fuel:int -> pmem:Pmem.t -> Nvmir.Prog.t -> t
(** [fuel] bounds executed steps (default 5M). *)

val pmem : t -> Pmem.t
val steps : t -> int

val run : ?entry:string -> ?args:int list -> t -> Value.t
(** Execute [entry] (default ["main"]) with integer arguments.
    @raise Runtime_error on ill-formed executions.
    @raise Out_of_fuel when the step budget is exhausted.
    @raise Invalid_argument when [entry] is undefined. *)
