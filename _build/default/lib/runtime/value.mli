(** Runtime values. References carry a slot offset so interior pointers
    (address-of-field, buffer cursors) are first-class. *)

type t =
  | Vint of int
  | Vbool of bool
  | Vref of { obj : int; off : int }
  | Vnull

val vref : ?off:int -> int -> t
val pp : t Fmt.t
val equal : t -> t -> bool
val truthy : t -> bool
val to_int : t -> int
