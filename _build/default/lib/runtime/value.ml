(* Runtime values for the interpreter and the persistent heap. A
   reference carries a slot offset so that interior pointers (address-of
   a field, buffer cursors) are first-class. *)

type t =
  | Vint of int
  | Vbool of bool
  | Vref of { obj : int; off : int } (* object id + slot offset *)
  | Vnull

let vref ?(off = 0) obj = Vref { obj; off }

let pp ppf = function
  | Vint n -> Fmt.int ppf n
  | Vbool b -> Fmt.bool ppf b
  | Vref { obj; off } ->
    if off = 0 then Fmt.pf ppf "&obj%d" obj else Fmt.pf ppf "&obj%d+%d" obj off
  | Vnull -> Fmt.string ppf "null"

let equal a b =
  match (a, b) with
  | Vint x, Vint y -> x = y
  | Vbool x, Vbool y -> Bool.equal x y
  | Vref x, Vref y -> x.obj = y.obj && x.off = y.off
  | Vnull, Vnull -> true
  | (Vint _ | Vbool _ | Vref _ | Vnull), _ -> false

let truthy = function
  | Vint n -> n <> 0
  | Vbool b -> b
  | Vref _ -> true
  | Vnull -> false

let to_int = function
  | Vint n -> n
  | Vbool true -> 1
  | Vbool false -> 0
  | Vref { obj; _ } -> obj
  | Vnull -> 0
