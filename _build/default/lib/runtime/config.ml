(* Simulator configuration: the stand-in for the paper's Table 7
   testbed. The cost model follows published Optane measurements cited
   by the paper [21]: an NVM write-back costs several times a cached
   store, and redundant write-backs add 2–4x latency. Costs are in
   abstract "cycles"; benchmark results report relative numbers, which
   is what the evaluation's shapes depend on. *)

type cost_model = {
  store_cost : int; (* cached store *)
  load_cost : int;
  flush_cost : int; (* clwb issue + write-back to NVM *)
  fence_cost : int; (* sfence drain *)
  tx_overhead : int; (* begin+commit bookkeeping *)
  log_cost : int; (* undo-log copy per object *)
}

let default_cost_model =
  {
    store_cost = 1;
    load_cost = 1;
    flush_cost = 8;
    fence_cost = 12;
    tx_overhead = 6;
    log_cost = 10;
  }

type t = {
  cacheline_slots : int; (* slots per cache line; flushes are line-granular *)
  cost : cost_model;
  track_eviction : bool; (* model spontaneous dirty-line eviction *)
  eviction_seed : int;
}

let default =
  {
    cacheline_slots = 8;
    cost = default_cost_model;
    track_eviction = false;
    eviction_seed = 42;
  }

(* Table 7 equivalent: the configuration the experiments run under. *)
let describe t =
  [
    ("Substrate", "DeepMC NVM runtime simulator (OCaml)");
    ("Cache line", Fmt.str "%d slots" t.cacheline_slots);
    ( "Cost model",
      Fmt.str "store=%d load=%d flush=%d fence=%d tx=%d log=%d (cycles)"
        t.cost.store_cost t.cost.load_cost t.cost.flush_cost t.cost.fence_cost
        t.cost.tx_overhead t.cost.log_cost );
    ("Eviction modeling", if t.track_eviction then "on" else "off");
    ("OCaml", Sys.ocaml_version);
    ("Word size", Fmt.str "%d bits" Sys.word_size);
  ]

let pp ppf t =
  List.iter (fun (k, v) -> Fmt.pf ppf "%-18s %s@ " k v) (describe t)
