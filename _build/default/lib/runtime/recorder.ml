(* Runtime event recorder: captures the persistent-event stream of an
   execution in the same vocabulary as the static analyzer's traces.

   Its purpose is differential testing of the two pipelines: every
   executed event sequence must be *explained* by some statically
   collected trace — same persistency-relevant operations in the same
   order, modulo the abstraction gap (static addresses are abstract DSG
   nodes, runtime addresses concrete slots; static traces cover all
   paths, an execution takes one). The test suite runs this check over
   the whole corpus and over generated programs. *)

type event =
  | R_write of Pmem.addr * Nvmir.Loc.t
  | R_flush of Pmem.addr * Nvmir.Loc.t
  | R_fence
  | R_tx_begin
  | R_tx_end
  | R_epoch_begin
  | R_epoch_end
  | R_strand_begin of int
  | R_strand_end of int

type t = { mutable events : event list (* reversed *) }

let create () = { events = [] }
let events t = List.rev t.events
let push t e = t.events <- e :: t.events

let listener t : Pmem.listener =
  {
    Pmem.null_listener with
    Pmem.on_write = (fun addr loc -> push t (R_write (addr, loc)));
    on_flush =
      (fun ~obj_id ~first_slot ~nslots:_ ~dirty:_ loc ->
        push t (R_flush ({ Pmem.obj_id; slot = first_slot }, loc)));
    on_fence = (fun _ -> push t R_fence);
    on_tx_begin = (fun _ -> push t R_tx_begin);
    on_tx_end = (fun _ -> push t R_tx_end);
    on_epoch_begin = (fun _ -> push t R_epoch_begin);
    on_epoch_end = (fun _ -> push t R_epoch_end);
    on_strand_begin = (fun n _ -> push t (R_strand_begin n));
    on_strand_end = (fun n _ -> push t (R_strand_end n));
  }

let attach t pm = Pmem.add_listener pm (listener t)

let pp_event ppf = function
  | R_write (a, loc) ->
    Fmt.pf ppf "W obj%d[%d] @@%a" a.Pmem.obj_id a.Pmem.slot Nvmir.Loc.pp loc
  | R_flush (a, loc) ->
    Fmt.pf ppf "F obj%d[%d..] @@%a" a.Pmem.obj_id a.Pmem.slot Nvmir.Loc.pp loc
  | R_fence -> Fmt.string ppf "FENCE"
  | R_tx_begin -> Fmt.string ppf "TX{"
  | R_tx_end -> Fmt.string ppf "}TX"
  | R_epoch_begin -> Fmt.string ppf "EPOCH{"
  | R_epoch_end -> Fmt.string ppf "}EPOCH"
  | R_strand_begin n -> Fmt.pf ppf "STRAND%d{" n
  | R_strand_end n -> Fmt.pf ppf "}STRAND%d" n

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any "@ ") pp_event) (events t)

(* The comparable skeleton of a runtime stream: per-event markers with
   source locations for writes/flushes (locations are the common
   currency between the static and dynamic views). Commit-internal
   flushes are not delivered to listeners, and the static side lowers
   [persist] to flush+fence at the same location, so skeletons line up
   exactly. *)
type skeleton_item =
  | S_write of Nvmir.Loc.t
  | S_flush of Nvmir.Loc.t
  | S_fence
  | S_tx_begin
  | S_tx_end
  | S_epoch_begin
  | S_epoch_end
  | S_strand of int * bool (* id, is_begin *)

let skeleton t : skeleton_item list =
  List.map
    (function
      | R_write (_, loc) -> S_write loc
      | R_flush (_, loc) -> S_flush loc
      | R_fence -> S_fence
      | R_tx_begin -> S_tx_begin
      | R_tx_end -> S_tx_end
      | R_epoch_begin -> S_epoch_begin
      | R_epoch_end -> S_epoch_end
      | R_strand_begin n -> S_strand (n, true)
      | R_strand_end n -> S_strand (n, false))
    (events t)

(* The skeleton of a static trace, for comparison. Static traces may
   contain events an execution skips (volatile ops are already filtered
   on both sides) and fences from the tx_end lowering; runtime tx_end
   emits an extra fence the static side models inside Tx_end, so fences
   adjacent to transaction commits are normalized away on both sides. *)
let static_skeleton (trace : Analysis.Trace.t) : skeleton_item list =
  List.filter_map
    (fun (e : Analysis.Event.t) ->
      match e.Analysis.Event.kind with
      | Analysis.Event.Write _ -> Some (S_write e.Analysis.Event.loc)
      | Analysis.Event.Flush (_, _) -> Some (S_flush e.Analysis.Event.loc)
      | Analysis.Event.Fence -> Some S_fence
      | Analysis.Event.Tx_begin -> Some S_tx_begin
      | Analysis.Event.Tx_end -> Some S_tx_end
      | Analysis.Event.Epoch_begin -> Some S_epoch_begin
      | Analysis.Event.Epoch_end -> Some S_epoch_end
      | Analysis.Event.Strand_begin n -> Some (S_strand (n, true))
      | Analysis.Event.Strand_end n -> Some (S_strand (n, false))
      | Analysis.Event.Log _ | Analysis.Event.Call_mark _
      | Analysis.Event.Ret_mark _ -> None)
    trace

let normalize items =
  (* drop the commit-time fence difference: the runtime's tx_end drains
     with a fence the listener sees just before the commit notification,
     which the static side models inside Tx_end itself *)
  let rec go = function
    | S_fence :: S_tx_end :: rest -> S_tx_end :: go rest
    | x :: rest -> x :: go rest
    | [] -> []
  in
  go items

(* The static analysis may legitimately MISS operations — accesses
   through pointers it cannot resolve are dropped from traces (the §5.4
   limitation the corpus models with pointer arithmetic) — but it never
   invents events on an executed path. The agreement relation is
   therefore: some static trace is an order-preserving subsequence of
   the recorded execution. *)
let rec subsequence smaller larger =
  match (smaller, larger) with
  | [], _ -> true
  | _ :: _, [] -> false
  | s :: srest, l :: lrest ->
    if s = l then subsequence srest lrest else subsequence smaller lrest

(* Does some static trace explain the recorded execution? *)
let explained_by t (static_traces : Analysis.Trace.t list) : bool =
  let dynamic = normalize (skeleton t) in
  List.exists
    (fun st -> subsequence (normalize (static_skeleton st)) dynamic)
    static_traces
