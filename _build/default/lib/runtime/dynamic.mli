(** The dynamic checker (§4.4): online analysis of epoch- and strand-
    annotated NVM programs. Attach it to a heap and run the program (via
    {!Interp} or native code using {!Pmem} directly); it tracks accesses
    inside annotated regions in a shadow segment, detects WAW/RAW races
    between strands, reports writes still volatile at epoch boundaries,
    and classifies redundant write-backs. *)

type t

val create : ?max_warnings:int -> model:Analysis.Model.t -> unit -> t
(** [max_warnings] caps stored warnings (default 10000); occurrences
    beyond the cap are still counted in the summary. *)

val attach : t -> Pmem.t -> unit
(** Register the checker as a listener; subsequent operations are
    monitored. *)

val set_thread : t -> int -> unit
(** Multi-client workloads switch the active thread before each
    operation. *)

val warnings : t -> Analysis.Warning.t list
val shadow : t -> Shadow.t

type summary = {
  waw : int;
  raw : int;
  unflushed : int;  (** writes still volatile at an epoch boundary *)
  redundant : int;  (** flushes that wrote back nothing dirty *)
  tracked_cells : int;
  warning_count : int;
  dropped : int;
}

val summary : t -> summary
val pp_summary : summary Fmt.t
