(* Crash simulation: execute a program, injecting a crash after the k-th
   persistent-memory event for every k, and evaluate a user-supplied
   consistency invariant over the durable state that survives.

   This is the oracle the test suite uses to demonstrate that the
   model-violation bugs the checker reports are real: the buggy corpus
   variants fail the invariant at some crash point, the fixed variants
   never do. *)

exception Crashed

type outcome = {
  crash_point : int; (* event index the crash was injected after *)
  consistent : bool;
  detail : string;
}

type report = {
  outcomes : outcome list;
  total_points : int;
  violations : int;
}

(* Count every persistent-memory event (writes, flushes, fences, tx ops)
   so crash points cover each interesting intermediate state. *)
let counting_listener counter : Pmem.listener =
  let bump _ = incr counter in
  {
    Pmem.null_listener with
    Pmem.on_write = (fun _ loc -> bump loc);
    on_flush = (fun ~obj_id:_ ~first_slot:_ ~nslots:_ ~dirty:_ loc -> bump loc);
    on_fence = (fun loc -> bump loc);
    on_tx_begin = (fun loc -> bump loc);
    on_tx_end = (fun loc -> bump loc);
  }

let crashing_listener ~at counter : Pmem.listener =
  let bump _ =
    incr counter;
    if !counter = at then raise Crashed
  in
  {
    Pmem.null_listener with
    Pmem.on_write = (fun _ loc -> bump loc);
    on_flush = (fun ~obj_id:_ ~first_slot:_ ~nslots:_ ~dirty:_ loc -> bump loc);
    on_fence = (fun loc -> bump loc);
    on_tx_begin = (fun loc -> bump loc);
    on_tx_end = (fun loc -> bump loc);
  }

(* Run to completion once to count events. *)
let count_events ?config ?entry ?args prog =
  let pmem = Pmem.create ?config () in
  let counter = ref 0 in
  Pmem.add_listener pmem (counting_listener counter);
  let interp = Interp.create ~pmem prog in
  ignore (Interp.run ?entry ?args interp);
  !counter

(* [invariant] receives the post-crash heap; reads through
   [Pmem.durable_value] see exactly what survived. It returns [Ok ()] or
   [Error detail]. *)
let test ?config ?entry ?args ~invariant prog : report =
  let total = count_events ?config ?entry ?args prog in
  let outcomes = ref [] in
  for k = 1 to total do
    let pmem = Pmem.create ?config () in
    let counter = ref 0 in
    Pmem.add_listener pmem (crashing_listener ~at:k counter);
    let interp = Interp.create ~pmem prog in
    let crashed =
      try
        ignore (Interp.run ?entry ?args interp);
        false
      with Crashed -> true
    in
    if crashed then begin
      let consistent, detail =
        match invariant pmem with
        | Ok () -> (true, "")
        | Error d -> (false, d)
      in
      outcomes := { crash_point = k; consistent; detail } :: !outcomes
    end
  done;
  let outcomes = List.rev !outcomes in
  {
    outcomes;
    total_points = total;
    violations = List.length (List.filter (fun o -> not o.consistent) outcomes);
  }

(* Invariant-free exploration: at every crash point, how many slots of
   the durable state differ from the durable state of a completed run?
   Non-zero exposure at the last crash point means data written by the
   program never became durable at all (an unflushed write); exposure in
   the middle is the normal in-flight window whose size the persistency
   discipline controls. *)
type exposure = {
  point : int;
  at_risk_slots : int; (* durable now vs durable after completion *)
  volatile_slots : int; (* cached vs durable at the crash point *)
}

type exposure_report = {
  points : exposure list;
  final_at_risk : int;
      (* slots still volatile when the program ends: writes that never
         became durable at all (the Figure 9 class of bug) *)
}

let explore ?config ?entry ?args prog : exposure_report =
  let final, final_volatile =
    let pmem = Pmem.create ?config () in
    let interp = Interp.create ~pmem prog in
    ignore (Interp.run ?entry ?args interp);
    (Pmem.durable_snapshot pmem, Pmem.volatile_slot_count pmem)
  in
  let total = count_events ?config ?entry ?args prog in
  let points = ref [] in
  for k = 1 to total do
    let pmem = Pmem.create ?config () in
    let counter = ref 0 in
    Pmem.add_listener pmem (crashing_listener ~at:k counter);
    let interp = Interp.create ~pmem prog in
    let crashed =
      try
        ignore (Interp.run ?entry ?args interp);
        false
      with Crashed -> true
    in
    if crashed then begin
      let snap = Pmem.durable_snapshot pmem in
      let at_risk = ref 0 in
      Hashtbl.iter
        (fun obj_id values ->
          Array.iteri
            (fun slot v ->
              match Hashtbl.find_opt final obj_id with
              | Some fvalues when not (Value.equal v fvalues.(slot)) ->
                incr at_risk
              | Some _ -> ()
              | None -> ())
            values)
        snap;
      points :=
        {
          point = k;
          at_risk_slots = !at_risk;
          volatile_slots = Pmem.volatile_slot_count pmem;
        }
        :: !points
    end
  done;
  { points = List.rev !points; final_at_risk = final_volatile }

let pp_exposure_report ppf r =
  let peak =
    List.fold_left (fun a e -> max a e.at_risk_slots) 0 r.points
  in
  Fmt.pf ppf
    "@[<v>crash points: %d; peak in-flight exposure: %d slot(s); data never \
     made durable by program end: %d slot(s)@ %a@]"
    (List.length r.points) peak r.final_at_risk
    Fmt.(
      list ~sep:(any "@ ") (fun ppf e ->
          Fmt.pf ppf "  after event %3d: %2d at-risk, %2d volatile" e.point
            e.at_risk_slots e.volatile_slots))
    r.points

let consistent report = report.violations = 0

let first_violation report =
  List.find_opt (fun o -> not o.consistent) report.outcomes

let pp_report ppf r =
  Fmt.pf ppf "crash points: %d, violations: %d%a" r.total_points r.violations
    Fmt.(
      option (fun ppf o ->
          Fmt.pf ppf " (first at event %d: %s)" o.crash_point o.detail))
    (first_violation r)
