(** Synthetic NVM-program generator: well-formed, executable programs of
    a requested size with correct strict-persistency discipline, and
    optionally a known number of seeded defects. Used by the Table 9
    bench (application-sized programs), the property-based tests, and
    the scalability/recall ablations. Deterministic per seed. *)

type config = {
  seed : int;
  nstructs : int;
  nfuncs : int;
  calls_per_func : int;
  buggy_fraction_pct : int;  (** 0..100: fraction of defective workers *)
}

val default_config : config

val generate : config -> Nvmir.Prog.t * int
(** The program and the number of seeded defects. *)

val roots : config -> string list
(** The per-worker drivers, for static analysis. *)
