(* The corpus: IR re-implementations of the buggy NVM programs the paper
   studies (Table 3) and the programs in which DeepMC found new bugs
   (Table 8), with ground truth at the paper's file:line coordinates.

   Each [program] is the persistency-relevant slice of one NVM program:
   the buggy source, an optional fixed variant (used by the crash oracle
   and the performance-fix benchmark), a driver entry point so the
   dynamic checker can execute it, and the expected warnings. *)

type framework = Pmdk | Pmfs | Nvm_direct | Mnemosyne

let framework_name = function
  | Pmdk -> "PMDK"
  | Pmfs -> "PMFS"
  | Nvm_direct -> "NVM-Direct"
  | Mnemosyne -> "Mnemosyne"

let framework_model = function
  | Pmdk | Nvm_direct -> Analysis.Model.Strict
  | Pmfs | Mnemosyne -> Analysis.Model.Epoch

let all_frameworks = [ Pmdk; Nvm_direct; Pmfs; Mnemosyne ]

(* How the paper's evaluation discovered a bug (§5.1: of the 24 new
   bugs, 18 were found by the static checker and 6 dynamically). *)
type discovery = Static_analysis | Dynamic_analysis

type program = {
  name : string;
  framework : framework;
  source : string; (* textual .nvmir *)
  fixed_source : string option; (* corrected variant *)
  entry : string; (* driver function for dynamic analysis *)
  entry_args : int list;
  roots : string list;
      (* static-analysis roots: one driver per scenario, so traces of
         independent code paths do not interleave *)
  expectations : (Deepmc.Report.expectation * discovery) list;
  description : string;
}

let model p = framework_model p.framework

let parse p = Nvmir.Parser.parse ~file:(p.name ^ ".nvmir") p.source

let parse_fixed p =
  Option.map (Nvmir.Parser.parse ~file:(p.name ^ "_fixed.nvmir")) p.fixed_source

let expectations p = List.map fst p.expectations

let exp ?(validated = true) ?(is_new = false) ?(kind = Deepmc.Report.Example)
    ?(years = 0.) ?(discovery = Static_analysis) ~rule ~file ~line description
    =
  ( Deepmc.Report.expectation ~validated ~is_new ~kind ~years ~rule ~file ~line
      description,
    discovery )
