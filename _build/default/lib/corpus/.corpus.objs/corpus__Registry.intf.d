lib/corpus/registry.mli: Analysis Deepmc Types
