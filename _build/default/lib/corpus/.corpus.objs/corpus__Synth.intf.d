lib/corpus/synth.mli: Nvmir
