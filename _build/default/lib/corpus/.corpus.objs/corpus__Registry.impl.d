lib/corpus/registry.ml: Analysis Deepmc List Mnemosyne Nvm_direct Pmdk Pmfs String Types
