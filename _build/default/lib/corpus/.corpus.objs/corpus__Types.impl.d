lib/corpus/types.ml: Analysis Deepmc List Nvmir Option
