lib/corpus/mnemosyne.ml: Analysis Deepmc Types
