lib/corpus/synth.ml: Fmt List Nvmir
