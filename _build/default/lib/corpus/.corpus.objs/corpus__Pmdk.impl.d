lib/corpus/pmdk.ml: Analysis Deepmc Fmt String Types
