lib/corpus/nvm_direct.ml: Analysis Deepmc Types
