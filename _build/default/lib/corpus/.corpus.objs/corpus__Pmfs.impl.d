lib/corpus/pmfs.ml: Analysis Deepmc Types
