lib/corpus/types.mli: Analysis Deepmc Nvmir
