(** The corpus: IR re-implementations of the buggy NVM programs of
    Tables 3 and 8, with ground truth at the paper's file:line
    coordinates, fixed variants, and runnable drivers. *)

type framework = Pmdk | Pmfs | Nvm_direct | Mnemosyne

val framework_name : framework -> string

val framework_model : framework -> Analysis.Model.t
(** PMDK and NVM-Direct implement strict persistency; PMFS and Mnemosyne
    epoch persistency (§2.2). *)

val all_frameworks : framework list

(** How the evaluation discovered a bug (§5.1: 18 statically, 6
    dynamically). *)
type discovery = Static_analysis | Dynamic_analysis

type program = {
  name : string;
  framework : framework;
  source : string;  (** textual .nvmir *)
  fixed_source : string option;  (** corrected variant *)
  entry : string;  (** driver for the dynamic analysis *)
  entry_args : int list;
  roots : string list;
      (** static-analysis roots: one driver per scenario, keeping
          independent code paths' traces separate *)
  expectations : (Deepmc.Report.expectation * discovery) list;
  description : string;
}

val model : program -> Analysis.Model.t
val parse : program -> Nvmir.Prog.t
val parse_fixed : program -> Nvmir.Prog.t option
val expectations : program -> Deepmc.Report.expectation list

val exp :
  ?validated:bool ->
  ?is_new:bool ->
  ?kind:Deepmc.Report.location_kind ->
  ?years:float ->
  ?discovery:discovery ->
  rule:Analysis.Warning.rule_id ->
  file:string ->
  line:int ->
  string ->
  Deepmc.Report.expectation * discovery
(** Ground-truth constructor used by the per-framework modules. *)
