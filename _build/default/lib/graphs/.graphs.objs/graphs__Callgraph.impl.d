lib/graphs/callgraph.ml: Fmt Hashtbl List Nvmir Option String
