lib/graphs/dot.mli: Callgraph Cfg Nvmir
