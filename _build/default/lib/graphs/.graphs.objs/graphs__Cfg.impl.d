lib/graphs/cfg.ml: Fmt Hashtbl List Nvmir Option
