lib/graphs/callgraph.mli: Fmt Nvmir
