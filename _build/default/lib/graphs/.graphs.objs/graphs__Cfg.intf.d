lib/graphs/cfg.mli: Fmt Hashtbl Nvmir
