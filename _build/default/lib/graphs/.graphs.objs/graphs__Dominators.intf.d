lib/graphs/dominators.mli: Cfg
