lib/graphs/dominators.ml: Cfg Hashtbl List String
