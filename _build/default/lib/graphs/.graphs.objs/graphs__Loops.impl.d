lib/graphs/loops.ml: Cfg Dominators Hashtbl List String
