lib/graphs/loops.mli: Cfg
