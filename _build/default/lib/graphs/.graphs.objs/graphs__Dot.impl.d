lib/graphs/dot.ml: Buffer Callgraph Cfg Fmt List Nvmir String
