(* Graphviz (dot) export for control-flow graphs and call graphs, for
   visual inspection of the analysis inputs: `deepmc dsg --dot`,
   `deepmc cfg --dot | dot -Tsvg`. *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\l"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* One CFG as a dot digraph; block bodies become record-ish labels. *)
let of_cfg ?(instructions = true) (cfg : Cfg.t) : string =
  let buf = Buffer.create 1024 in
  let fname = (Cfg.func cfg).Nvmir.Func.fname in
  Buffer.add_string buf (Fmt.str "digraph \"%s\" {\n" (escape fname));
  Buffer.add_string buf "  node [shape=box, fontname=\"monospace\"];\n";
  List.iter
    (fun (b : Nvmir.Func.block) ->
      let body =
        if instructions then
          String.concat "\\l"
            (List.map
               (fun i -> escape (Fmt.str "%a" Nvmir.Instr.pp i))
               b.Nvmir.Func.instrs
            @ [ escape (Fmt.str "%a" Nvmir.Func.pp_terminator b.Nvmir.Func.term) ])
          ^ "\\l"
        else ""
      in
      Buffer.add_string buf
        (Fmt.str "  \"%s\" [label=\"%s:\\l%s\"];\n" (escape b.Nvmir.Func.label)
           (escape b.Nvmir.Func.label) body);
      List.iter
        (fun succ ->
          Buffer.add_string buf
            (Fmt.str "  \"%s\" -> \"%s\";\n" (escape b.Nvmir.Func.label)
               (escape succ)))
        (Nvmir.Func.successors b))
    (Cfg.func cfg).Nvmir.Func.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* The whole program's call graph. *)
let of_callgraph (cg : Callgraph.t) (prog : Nvmir.Prog.t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph callgraph {\n";
  Buffer.add_string buf "  node [shape=oval, fontname=\"monospace\"];\n";
  List.iter
    (fun name ->
      let shape =
        if List.mem name (Callgraph.roots cg) then
          " [shape=doubleoctagon]"
        else ""
      in
      Buffer.add_string buf (Fmt.str "  \"%s\"%s;\n" (escape name) shape);
      List.iter
        (fun callee ->
          Buffer.add_string buf
            (Fmt.str "  \"%s\" -> \"%s\";\n" (escape name) (escape callee)))
        (Callgraph.callees cg name))
    (Nvmir.Prog.func_names prog);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
