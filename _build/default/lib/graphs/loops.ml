(* Natural-loop detection. A back edge is an edge b -> h where h
   dominates b; the natural loop of the edge is h plus every block that
   can reach b without passing through h. Trace collection consults
   [back_edges] to cap loop iterations (10 by default, per §4.3). *)

type loop = { header : string; body : string list (* includes header *) }

type t = { back_edges : (string * string) list; loops : loop list }

let natural_loop (cfg : Cfg.t) ~source ~header =
  let body = Hashtbl.create 16 in
  Hashtbl.replace body header ();
  let rec add label =
    if not (Hashtbl.mem body label) then begin
      Hashtbl.replace body label ();
      List.iter add (Cfg.predecessors cfg label)
    end
  in
  add source;
  { header; body = Hashtbl.fold (fun l () acc -> l :: acc) body [] |> List.sort String.compare }

let compute (cfg : Cfg.t) =
  let doms = Dominators.compute cfg in
  let back_edges =
    List.concat_map
      (fun label ->
        List.filter_map
          (fun succ ->
            if Dominators.dominates doms succ label then Some (label, succ)
            else None)
          (Cfg.successors cfg label))
      (Cfg.dfs_preorder cfg)
  in
  let loops =
    List.map (fun (source, header) -> natural_loop cfg ~source ~header) back_edges
  in
  { back_edges; loops }

let is_back_edge t ~source ~target =
  List.exists
    (fun (s, h) -> String.equal s source && String.equal h target)
    t.back_edges

let headers t = List.map (fun l -> l.header) t.loops |> List.sort_uniq String.compare

let in_loop t label =
  List.exists (fun l -> List.mem label l.body) t.loops
