(* Control-flow graphs over IR functions (step 1 of the DeepMC
   pipeline, Figure 8). Nodes are basic-block labels; edges follow block
   terminators. Unreachable blocks are kept in the function but excluded
   from traversals. *)

type t = {
  func : Nvmir.Func.t;
  entry : string;
  succs : (string, string list) Hashtbl.t;
  preds : (string, string list) Hashtbl.t;
}

let of_func (func : Nvmir.Func.t) =
  let entry = (Nvmir.Func.entry_block func).label in
  let succs = Hashtbl.create 16 and preds = Hashtbl.create 16 in
  List.iter
    (fun (b : Nvmir.Func.block) ->
      Hashtbl.replace succs b.label (Nvmir.Func.successors b);
      if not (Hashtbl.mem preds b.label) then Hashtbl.replace preds b.label [])
    func.blocks;
  List.iter
    (fun (b : Nvmir.Func.block) ->
      List.iter
        (fun s ->
          let old = Option.value ~default:[] (Hashtbl.find_opt preds s) in
          Hashtbl.replace preds s (old @ [ b.label ]))
        (Nvmir.Func.successors b))
    func.blocks;
  { func; entry; succs; preds }

let func t = t.func
let entry t = t.entry
let successors t label = Option.value ~default:[] (Hashtbl.find_opt t.succs label)
let predecessors t label = Option.value ~default:[] (Hashtbl.find_opt t.preds label)
let block t label = Nvmir.Func.find_block t.func label

(* Depth-first preorder from the entry; visits each reachable block once. *)
let dfs_preorder t =
  let visited = Hashtbl.create 16 in
  let out = ref [] in
  let rec go label =
    if not (Hashtbl.mem visited label) then (
      Hashtbl.replace visited label ();
      out := label :: !out;
      List.iter go (successors t label))
  in
  go t.entry;
  List.rev !out

(* Reverse postorder: the canonical iteration order for forward dataflow
   and for dominator computation. *)
let reverse_postorder t =
  let visited = Hashtbl.create 16 in
  let post = ref [] in
  let rec go label =
    if not (Hashtbl.mem visited label) then (
      Hashtbl.replace visited label ();
      List.iter go (successors t label);
      post := label :: !post)
  in
  go t.entry;
  !post

let reachable t =
  let order = dfs_preorder t in
  let set = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace set l ()) order;
  set

let is_reachable t label = Hashtbl.mem (reachable t) label

let block_count t = List.length t.func.blocks
let edge_count t =
  Hashtbl.fold (fun _ ss acc -> acc + List.length ss) t.succs 0

let pp ppf t =
  let pp_edge ppf label =
    Fmt.pf ppf "%s -> {%a}" label
      Fmt.(list ~sep:(any ", ") string)
      (successors t label)
  in
  Fmt.pf ppf "@[<v>cfg %s (entry %s)@ %a@]" t.func.fname t.entry
    Fmt.(list ~sep:(any "@ ") pp_edge)
    (dfs_preorder t)
