(** Call graphs over IR programs. {!postorder} visits callees before
    callers — the order both the DSA bottom-up phase (§4.2) and
    interprocedural trace merging (§4.3) require. *)

type t

val of_prog : Nvmir.Prog.t -> t
val callees : t -> string -> string list
val callers : t -> string -> string list
val is_defined : t -> string -> bool

val roots : t -> string list
(** Functions never called from within the program: analysis roots. *)

val postorder : t -> string list
(** Every (defined) callee precedes its callers; recursion cycles are
    broken at the revisit point. Covers all defined functions. *)

val sccs : t -> string list list
(** Tarjan's strongly-connected components, callees-first. *)

val is_recursive : t -> string -> bool
val pp : t Fmt.t
