(** Control-flow graphs over IR functions (step 1 of the DeepMC
    pipeline). Nodes are basic-block labels; edges follow block
    terminators. *)

type t

val of_func : Nvmir.Func.t -> t
val func : t -> Nvmir.Func.t
val entry : t -> string
val successors : t -> string -> string list
val predecessors : t -> string -> string list
val block : t -> string -> Nvmir.Func.block option

val dfs_preorder : t -> string list
(** Depth-first preorder from the entry; reachable blocks only. *)

val reverse_postorder : t -> string list
(** The canonical iteration order for forward dataflow and dominator
    computation. *)

val reachable : t -> (string, unit) Hashtbl.t
val is_reachable : t -> string -> bool
val block_count : t -> int
val edge_count : t -> int
val pp : t Fmt.t
