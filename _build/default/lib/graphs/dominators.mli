(** Dominator computation (Cooper–Harvey–Kennedy over reverse-postorder
    indices). The loop detector uses it to identify back edges. *)

type t

val compute : Cfg.t -> t

val idom : t -> string -> string option
(** Immediate dominator; [None] for the entry block. *)

val dominates : t -> string -> string -> bool
(** [dominates t a b]: does [a] dominate [b]? Reflexive. *)

val dominator_chain : t -> string -> string list
(** The block, its idom, and so on up to the entry. *)
