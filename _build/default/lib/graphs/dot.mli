(** Graphviz (dot) export of CFGs and call graphs, for visual inspection
    of the analysis inputs. *)

val of_cfg : ?instructions:bool -> Cfg.t -> string
(** A dot digraph; [instructions] (default true) includes block bodies
    in the node labels. *)

val of_callgraph : Callgraph.t -> Nvmir.Prog.t -> string
(** The whole program's call graph; analysis roots are highlighted. *)
