(* Dominator computation with the Cooper–Harvey–Kennedy iterative
   algorithm over reverse-postorder indices. Used by the loop detector
   to identify back edges, which trace collection needs to bound loop
   exploration. *)

type t = {
  idom : (string, string) Hashtbl.t; (* immediate dominator; entry maps to itself *)
  entry : string;
}

let compute (cfg : Cfg.t) =
  let rpo = Cfg.reverse_postorder cfg in
  let index = Hashtbl.create 16 in
  List.iteri (fun i l -> Hashtbl.replace index l i) rpo;
  let entry = Cfg.entry cfg in
  let idom = Hashtbl.create 16 in
  Hashtbl.replace idom entry entry;
  let intersect a b =
    (* walk the two candidate dominators up the current idom tree until
       they meet; lower rpo index = closer to entry *)
    let rec go a b =
      if String.equal a b then a
      else
        let ia = Hashtbl.find index a and ib = Hashtbl.find index b in
        if ia > ib then go (Hashtbl.find idom a) b else go a (Hashtbl.find idom b)
    in
    go a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun label ->
        if not (String.equal label entry) then begin
          let processed_preds =
            List.filter (fun p -> Hashtbl.mem idom p) (Cfg.predecessors cfg label)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            (match Hashtbl.find_opt idom label with
            | Some old when String.equal old new_idom -> ()
            | Some _ | None ->
              Hashtbl.replace idom label new_idom;
              changed := true)
        end)
      rpo
  done;
  { idom; entry }

let idom t label =
  if String.equal label t.entry then None else Hashtbl.find_opt t.idom label

(* Does [a] dominate [b]? *)
let dominates t a b =
  let rec up b =
    if String.equal a b then true
    else if String.equal b t.entry then false
    else
      match Hashtbl.find_opt t.idom b with
      | None -> false (* unreachable block *)
      | Some p -> up p
  in
  up b

let dominator_chain t label =
  let rec up acc b =
    if String.equal b t.entry then List.rev (b :: acc)
    else
      match Hashtbl.find_opt t.idom b with
      | None -> List.rev (b :: acc)
      | Some p -> up (b :: acc) p
  in
  up [] label
