(** Natural-loop detection. A back edge is an edge [b -> h] where [h]
    dominates [b]; trace collection consults {!is_back_edge} to cap loop
    iterations (§4.3, 10 by default). *)

type loop = { header : string; body : string list (** includes header *) }
type t = { back_edges : (string * string) list; loops : loop list }

val natural_loop : Cfg.t -> source:string -> header:string -> loop
val compute : Cfg.t -> t
val is_back_edge : t -> source:string -> target:string -> bool
val headers : t -> string list
val in_loop : t -> string -> bool
