(* Call graphs over IR programs (step 1 of Figure 8). Nodes are function
   names; edges are direct call sites. External functions — callees with
   no definition in the program, e.g. framework primitives modeled as IR
   instructions elsewhere — appear as leaf nodes.

   [postorder] visits callees before callers, the order both the DSA
   bottom-up phase (§4.2) and interprocedural trace merging (§4.3)
   require. Tarjan's SCC algorithm groups mutually recursive functions
   so recursion can be depth-bounded. *)

type t = {
  prog : Nvmir.Prog.t;
  callees : (string, string list) Hashtbl.t;
  callers : (string, string list) Hashtbl.t;
}

let of_prog (prog : Nvmir.Prog.t) =
  let callees = Hashtbl.create 16 and callers = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let name = Nvmir.Func.name f in
      let cs = Nvmir.Func.callees f in
      Hashtbl.replace callees name cs;
      List.iter
        (fun c ->
          let old = Option.value ~default:[] (Hashtbl.find_opt callers c) in
          if not (List.mem name old) then Hashtbl.replace callers c (old @ [ name ]))
        cs)
    (Nvmir.Prog.funcs prog);
  { prog; callees; callers }

let callees t name = Option.value ~default:[] (Hashtbl.find_opt t.callees name)
let callers t name = Option.value ~default:[] (Hashtbl.find_opt t.callers name)
let is_defined t name = Nvmir.Prog.find_func t.prog name <> None

(* Functions never called from within the program: analysis roots. *)
let roots t =
  List.filter
    (fun name -> callers t name = [])
    (Nvmir.Prog.func_names t.prog)

(* Post-order over defined functions: every callee precedes its callers.
   Cycles (recursion) are broken at the revisit point. *)
let postorder t =
  let visited = Hashtbl.create 16 in
  let out = ref [] in
  let rec go name =
    if is_defined t name && not (Hashtbl.mem visited name) then begin
      Hashtbl.replace visited name ();
      List.iter go (callees t name);
      out := name :: !out
    end
  in
  let roots = match roots t with [] -> Nvmir.Prog.func_names t.prog | rs -> rs in
  List.iter go roots;
  (* pick up functions only reachable through cycles *)
  List.iter go (Nvmir.Prog.func_names t.prog);
  List.rev !out

(* Tarjan's strongly-connected components; components are emitted in
   reverse topological order (callees first), matching [postorder]. *)
let sccs t =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if is_defined t w then
          if not (Hashtbl.mem index w) then begin
            strongconnect w;
            Hashtbl.replace lowlink v
              (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
          end
          else if Hashtbl.mem on_stack w then
            Hashtbl.replace lowlink v
              (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (callees t v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter
    (fun name -> if not (Hashtbl.mem index name) then strongconnect name)
    (Nvmir.Prog.func_names t.prog);
  List.rev !components

let is_recursive t name =
  List.mem name (callees t name)
  || List.exists (fun scc -> List.length scc > 1 && List.mem name scc) (sccs t)

let pp ppf t =
  let pp_node ppf name =
    Fmt.pf ppf "%s -> {%a}" name
      Fmt.(list ~sep:(any ", ") string)
      (callees t name)
  in
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:(any "@ ") pp_node)
    (Nvmir.Prog.func_names t.prog)
