(** A persistent key-value store in the style of persistent Memcached:
    an open-addressing hash table in one NVM region, epoch-persistent
    mutations (one epoch per mutation, closed by flush+fence of the
    touched entry). Keys are positive ints; key 0 marks empty slots. *)

type t

val create : ?capacity:int -> Runtime.Pmem.t -> t

val set : t -> int -> int -> bool
(** False when the table is full. *)

val get : t -> int -> int option
val rmw : t -> int -> (int -> int) -> bool
val delete : t -> int -> bool
val size : t -> int
val capacity : t -> int
