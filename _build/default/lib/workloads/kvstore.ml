(* A persistent key-value store in the style of persistent Memcached
   [39]: an open-addressing hash table living in one NVM region,
   epoch-persistent updates (one epoch per mutation, closed by a
   flush+fence of the touched entry).

   Entries are two slots (key, value); key slot 0 means empty. The store
   issues exactly the persistent operations the dynamic checker
   instruments, so running a memslap-style load against it with the
   checker attached reproduces the Figure 12 overhead measurement. *)

type t = {
  pmem : Runtime.Pmem.t;
  table : int; (* object id of the hash table region *)
  capacity : int; (* number of entries *)
  mutable size : int;
}

let entry_slots = 2

let create ?(capacity = 4096) pmem =
  let tenv = Nvmir.Ty.env_create () in
  let table =
    Runtime.Pmem.alloc pmem ~name:"kv_table" ~tenv ~persistent:true
      (Nvmir.Ty.Array (Nvmir.Ty.Int, capacity * entry_slots))
  in
  { pmem; table; capacity; size = 0 }

let loc line = Nvmir.Loc.make ~file:"kvstore.ml" ~line

let key_addr t idx = { Runtime.Pmem.obj_id = t.table; slot = idx * entry_slots }
let val_addr t idx =
  { Runtime.Pmem.obj_id = t.table; slot = (idx * entry_slots) + 1 }

let hash t k = (k * 2654435761) land max_int mod t.capacity

(* Linear probing; returns the index holding [key], or the first empty
   index, or None when the table is full. *)
let probe t key =
  let rec go i tries =
    if tries >= t.capacity then None
    else
      let stored =
        Runtime.Value.to_int (Runtime.Pmem.read t.pmem (key_addr t i))
      in
      if stored = key || stored = 0 then Some i
      else go ((i + 1) mod t.capacity) (tries + 1)
  in
  go (hash t key) 0

(* Mutations run as one epoch: write entry, flush it, fence, close. *)
let set t key value =
  match probe t key with
  | None -> false
  | Some i ->
    let was_empty =
      Runtime.Value.to_int (Runtime.Pmem.read t.pmem (key_addr t i)) = 0
    in
    Runtime.Pmem.epoch_begin t.pmem ~loc:(loc 40) ();
    Runtime.Pmem.write t.pmem ~loc:(loc 41) (key_addr t i)
      (Runtime.Value.Vint key);
    Runtime.Pmem.write t.pmem ~loc:(loc 42) (val_addr t i)
      (Runtime.Value.Vint value);
    Runtime.Pmem.flush_range t.pmem ~loc:(loc 43) ~obj_id:t.table
      ~first_slot:(i * entry_slots) ~nslots:entry_slots ();
    Runtime.Pmem.fence t.pmem ~loc:(loc 44) ();
    Runtime.Pmem.epoch_end t.pmem ~loc:(loc 45) ();
    if was_empty then t.size <- t.size + 1;
    true

let get t key =
  match probe t key with
  | None -> None
  | Some i ->
    let stored =
      Runtime.Value.to_int (Runtime.Pmem.read t.pmem (key_addr t i))
    in
    if stored = key then
      Some (Runtime.Value.to_int (Runtime.Pmem.read t.pmem (val_addr t i)))
    else None

(* Read-modify-write: read under no epoch, then a mutation epoch. *)
let rmw t key f =
  match get t key with
  | None -> set t key (f 0)
  | Some v -> set t key (f v)

let delete t key =
  match probe t key with
  | None -> false
  | Some i ->
    let stored =
      Runtime.Value.to_int (Runtime.Pmem.read t.pmem (key_addr t i))
    in
    if stored <> key then false
    else begin
      Runtime.Pmem.epoch_begin t.pmem ~loc:(loc 78) ();
      Runtime.Pmem.write t.pmem ~loc:(loc 79) (key_addr t i)
        (Runtime.Value.Vint 0);
      Runtime.Pmem.flush_range t.pmem ~loc:(loc 80) ~obj_id:t.table
        ~first_slot:(i * entry_slots) ~nslots:1 ();
      Runtime.Pmem.fence t.pmem ~loc:(loc 81) ();
      Runtime.Pmem.epoch_end t.pmem ~loc:(loc 82) ();
      t.size <- t.size - 1;
      true
    end

let size t = t.size
let capacity t = t.capacity
