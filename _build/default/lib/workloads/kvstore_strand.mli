(** A strand-persistent key-value store (the §4.4 concurrency use case):
    mutations run as partition-identified strands with deferred, batched
    persist barriers, so independent updates may persist concurrently.

    [sloppy_strands] gives every operation a fresh strand id regardless
    of partition — introducing the WAW/RAW dependences between
    concurrent strands that the dynamic checker detects. *)

type t

val create :
  ?capacity:int ->
  ?partitions:int ->
  ?batch:int ->
  ?sloppy_strands:bool ->
  Runtime.Pmem.t ->
  t

val set : t -> int -> int -> bool
val get : t -> int -> int option

val quiesce : t -> unit
(** Issue the final barrier for outstanding strands. *)

val partitions : t -> int
