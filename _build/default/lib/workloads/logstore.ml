(* A persistent log-structured store in the style of NVM Redis: every
   update appends (key, value) to an append-only log and then updates a
   volatile index; persistence comes from flushing the log entry and
   then persisting the tail pointer — two persist units per update, the
   classic AOF shape. Reads go through the volatile index. *)

type t = {
  pmem : Runtime.Pmem.t;
  log : int; (* object id: append-only (key, value) pairs *)
  meta : int; (* object id: slot 0 = tail *)
  log_capacity : int; (* entries *)
  index : (int, int) Hashtbl.t; (* key -> value (volatile cache) *)
  mutable tail : int;
}

let entry_slots = 2

let create ?(log_capacity = 1 lsl 17) pmem =
  let tenv = Nvmir.Ty.env_create () in
  let log =
    Runtime.Pmem.alloc pmem ~name:"redis_log" ~tenv ~persistent:true
      (Nvmir.Ty.Array (Nvmir.Ty.Int, log_capacity * entry_slots))
  in
  let meta =
    Runtime.Pmem.alloc pmem ~name:"redis_meta" ~tenv ~persistent:true
      (Nvmir.Ty.Array (Nvmir.Ty.Int, 8))
  in
  { pmem; log; meta; log_capacity; index = Hashtbl.create 1024; tail = 0 }

let loc line = Nvmir.Loc.make ~file:"logstore.ml" ~line

let addr obj slot = { Runtime.Pmem.obj_id = obj; slot }

(* SET: append to the log (epoch 1), persist the new tail (epoch 2). *)
let set t key value =
  if t.tail >= t.log_capacity then t.tail <- 0 (* wrap: treat as ring *);
  let base = t.tail * entry_slots in
  Runtime.Pmem.epoch_begin t.pmem ~loc:(loc 33) ();
  Runtime.Pmem.write t.pmem ~loc:(loc 34) (addr t.log base)
    (Runtime.Value.Vint key);
  Runtime.Pmem.write t.pmem ~loc:(loc 35)
    (addr t.log (base + 1))
    (Runtime.Value.Vint value);
  Runtime.Pmem.flush_range t.pmem ~loc:(loc 36) ~obj_id:t.log ~first_slot:base
    ~nslots:entry_slots ();
  Runtime.Pmem.fence t.pmem ~loc:(loc 37) ();
  Runtime.Pmem.epoch_end t.pmem ~loc:(loc 38) ();
  Runtime.Pmem.epoch_begin t.pmem ~loc:(loc 39) ();
  t.tail <- t.tail + 1;
  Runtime.Pmem.write t.pmem ~loc:(loc 41) (addr t.meta 0)
    (Runtime.Value.Vint t.tail);
  Runtime.Pmem.flush_range t.pmem ~loc:(loc 42) ~obj_id:t.meta ~first_slot:0
    ~nslots:1 ();
  Runtime.Pmem.fence t.pmem ~loc:(loc 43) ();
  Runtime.Pmem.epoch_end t.pmem ~loc:(loc 44) ();
  Hashtbl.replace t.index key value

let get t key = Hashtbl.find_opt t.index key

let incr t key =
  let v = Option.value ~default:0 (get t key) in
  set t key (v + 1);
  v + 1

(* Recovery: rebuild the volatile index from the durable log — used by
   the crash-consistency tests to show the two-epoch protocol keeps the
   log prefix consistent. *)
let recover t =
  Hashtbl.reset t.index;
  let durable_tail =
    Runtime.Value.to_int (Runtime.Pmem.durable_value t.pmem (addr t.meta 0))
  in
  for i = 0 to durable_tail - 1 do
    let k =
      Runtime.Value.to_int
        (Runtime.Pmem.durable_value t.pmem (addr t.log (i * entry_slots)))
    in
    let v =
      Runtime.Value.to_int
        (Runtime.Pmem.durable_value t.pmem (addr t.log ((i * entry_slots) + 1)))
    in
    Hashtbl.replace t.index k v
  done;
  t.tail <- durable_tail;
  durable_tail

let entries t = t.tail
