(* A transactional record store in the style of NStore [44]: fixed-width
   records updated under undo-log transactions (one transaction per
   operation), the substrate the YCSB benchmarks run against. *)

type t = {
  pmem : Runtime.Pmem.t;
  records : int; (* object id: [nrecords] records of [record_slots] *)
  nrecords : int;
}

let record_slots = 4 (* id, f1, f2, f3 *)

let create ?(nrecords = 4096) pmem =
  let tenv = Nvmir.Ty.env_create () in
  let records =
    Runtime.Pmem.alloc pmem ~name:"nstore_records" ~tenv ~persistent:true
      (Nvmir.Ty.Array (Nvmir.Ty.Int, nrecords * record_slots))
  in
  { pmem; records; nrecords }

let loc line = Nvmir.Loc.make ~file:"txstore.ml" ~line

let slot_of t key field = (key mod t.nrecords * record_slots) + field

let addr t key field =
  { Runtime.Pmem.obj_id = t.records; slot = slot_of t key field }

(* Transactional update of one field: begin, log, write, commit (the
   commit flushes and fences the logged range). *)
let update t key value =
  Runtime.Pmem.epoch_begin t.pmem ~loc:(loc 28) ();
  Runtime.Pmem.tx_begin t.pmem ~loc:(loc 29) ();
  Runtime.Pmem.tx_add t.pmem ~loc:(loc 30) ~obj_id:t.records
    ~first_slot:(slot_of t key 1) ~nslots:1 ();
  Runtime.Pmem.write t.pmem ~loc:(loc 31) (addr t key 1)
    (Runtime.Value.Vint value);
  Runtime.Pmem.tx_end t.pmem ~loc:(loc 32) ();
  Runtime.Pmem.epoch_end t.pmem ~loc:(loc 33) ()

(* Insert initializes the whole record in one transaction. *)
let insert t key value =
  Runtime.Pmem.epoch_begin t.pmem ~loc:(loc 37) ();
  Runtime.Pmem.tx_begin t.pmem ~loc:(loc 38) ();
  Runtime.Pmem.tx_add t.pmem ~loc:(loc 39) ~obj_id:t.records
    ~first_slot:(slot_of t key 0) ~nslots:record_slots ();
  Runtime.Pmem.write t.pmem ~loc:(loc 40) (addr t key 0)
    (Runtime.Value.Vint key);
  Runtime.Pmem.write t.pmem ~loc:(loc 41) (addr t key 1)
    (Runtime.Value.Vint value);
  Runtime.Pmem.write t.pmem ~loc:(loc 42) (addr t key 2)
    (Runtime.Value.Vint (value * 2));
  Runtime.Pmem.write t.pmem ~loc:(loc 43) (addr t key 3)
    (Runtime.Value.Vint (value + 1));
  Runtime.Pmem.tx_end t.pmem ~loc:(loc 44) ();
  Runtime.Pmem.epoch_end t.pmem ~loc:(loc 45) ()

let read t key = Runtime.Value.to_int (Runtime.Pmem.read t.pmem (addr t key 1))

(* Scan [len] consecutive records (YCSB workload E). *)
let scan t key len =
  let acc = ref 0 in
  for i = 0 to len - 1 do
    acc := !acc + Runtime.Value.to_int (Runtime.Pmem.read t.pmem (addr t (key + i) 1))
  done;
  !acc

let read_modify_write t key f = update t key (f (read t key))
