(** A transactional record store in the style of NStore: fixed-width
    records updated under undo-log transactions, the substrate the YCSB
    benchmarks run against. *)

type t

val create : ?nrecords:int -> Runtime.Pmem.t -> t
val update : t -> int -> int -> unit
val insert : t -> int -> int -> unit
val read : t -> int -> int

val scan : t -> int -> int -> int
(** [scan t key len] folds over [len] consecutive records (YCSB E). *)

val read_modify_write : t -> int -> (int -> int) -> unit
