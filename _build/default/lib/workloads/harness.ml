(* Measurement harness for the application benchmarks (Table 6 /
   Figure 12): runs a fixed number of transactions from simulated
   clients against a store built on the NVM runtime, with or without
   the dynamic checker attached, and reports throughput. *)

type result = {
  label : string;
  txs : int;
  clients : int;
  elapsed_s : float;
  throughput : float; (* transactions per second *)
  checked : bool;
  dynamic : Runtime.Dynamic.summary option;
  stores : int;
  loads : int;
  flushes : int;
  fences : int;
}

(* [setup] builds the store on a fresh heap; [op] executes one client
   transaction. The dynamic checker (epoch model: all three applications
   use epoch-style persistence) is attached before the run when
   [checked] is set, mirroring the instrumented binaries of §5.2. *)
let run_once ~label ~model ~clients ~txs ~checked ~setup ~op =
  let pmem = Runtime.Pmem.create () in
  let checker =
    if checked then begin
      let c = Runtime.Dynamic.create ~model () in
      Runtime.Dynamic.attach c pmem;
      Some c
    end
    else None
  in
  let store = setup pmem in
  let rng = Gen.rng 0xC0FFEE in
  let t0 = Unix.gettimeofday () in
  for i = 0 to txs - 1 do
    let client = i mod clients in
    (match checker with
    | Some c -> Runtime.Dynamic.set_thread c client
    | None -> ());
    op store rng ~client
  done;
  let t1 = Unix.gettimeofday () in
  let elapsed_s = t1 -. t0 in
  let stats = Runtime.Pmem.stats pmem in
  {
    label;
    txs;
    clients;
    elapsed_s;
    throughput = float_of_int txs /. elapsed_s;
    checked;
    dynamic = Option.map Runtime.Dynamic.summary checker;
    stores = stats.Runtime.Pmem.stores;
    loads = stats.Runtime.Pmem.loads;
    flushes = stats.Runtime.Pmem.flushes;
    fences = stats.Runtime.Pmem.fences;
  }

(* Best of [repeats] runs: wall-clock noise (GC pauses, scheduler) only
   ever slows a run down, so the fastest run is the cleanest signal. *)
let measure ~label ?(model = Analysis.Model.Epoch) ?(repeats = 3) ~clients
    ~txs ~checked ~setup ~op () =
  let runs =
    List.init (max 1 repeats) (fun _ ->
        run_once ~label ~model ~clients ~txs ~checked ~setup ~op)
  in
  List.fold_left
    (fun best r -> if r.elapsed_s < best.elapsed_s then r else best)
    (List.hd runs) (List.tl runs)

(* Figure 12 data point: the same workload with and without the dynamic
   checker; overhead is the relative throughput loss. *)
type comparison = {
  baseline : result;
  with_checker : result;
  overhead_pct : float;
}

let compare_checked ~label ?model ?repeats ~clients ~txs ~setup ~op () =
  let baseline =
    measure ~label ?model ?repeats ~clients ~txs ~checked:false ~setup ~op ()
  in
  let with_checker =
    measure ~label ?model ?repeats ~clients ~txs ~checked:true ~setup ~op ()
  in
  let overhead_pct =
    100. *. (1. -. (with_checker.throughput /. baseline.throughput))
  in
  { baseline; with_checker; overhead_pct }

let pp_result ppf r =
  Fmt.pf ppf "%-28s %8d tx %2d clients %s: %10.0f tx/s (%.3f s)" r.label r.txs
    r.clients
    (if r.checked then "checked " else "baseline")
    r.throughput r.elapsed_s

let pp_comparison ppf c =
  Fmt.pf ppf "%-28s baseline %10.0f tx/s | DeepMC %10.0f tx/s | overhead %5.1f%%"
    c.baseline.label c.baseline.throughput c.with_checker.throughput
    c.overhead_pct
