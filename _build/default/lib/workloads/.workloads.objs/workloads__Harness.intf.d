lib/workloads/harness.mli: Analysis Fmt Gen Runtime
