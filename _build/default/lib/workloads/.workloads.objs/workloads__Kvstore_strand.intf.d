lib/workloads/kvstore_strand.mli: Runtime
