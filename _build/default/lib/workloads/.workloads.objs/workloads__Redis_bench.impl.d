lib/workloads/redis_bench.ml: Gen Harness Logstore
