lib/workloads/harness.ml: Analysis Fmt Gen List Option Runtime Unix
