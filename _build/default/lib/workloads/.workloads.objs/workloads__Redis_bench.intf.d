lib/workloads/redis_bench.mli: Gen Harness Logstore Runtime
