lib/workloads/memslap.mli: Gen Harness Kvstore Runtime
