lib/workloads/memslap.ml: Gen Harness Kvstore
