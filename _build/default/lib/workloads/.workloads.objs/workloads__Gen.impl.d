lib/workloads/gen.ml: Int64 List Sys
