lib/workloads/gen.mli:
