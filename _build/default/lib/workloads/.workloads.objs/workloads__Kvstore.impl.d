lib/workloads/kvstore.ml: Nvmir Runtime
