lib/workloads/txstore.mli: Runtime
