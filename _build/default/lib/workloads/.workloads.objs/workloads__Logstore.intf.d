lib/workloads/logstore.mli: Runtime
