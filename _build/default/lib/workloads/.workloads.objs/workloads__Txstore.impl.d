lib/workloads/txstore.ml: Nvmir Runtime
