lib/workloads/ycsb.mli: Gen Harness Runtime Txstore
