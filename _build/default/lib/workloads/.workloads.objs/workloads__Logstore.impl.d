lib/workloads/logstore.ml: Hashtbl Nvmir Option Runtime
