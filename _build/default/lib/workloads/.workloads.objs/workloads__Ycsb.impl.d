lib/workloads/ycsb.ml: Gen Harness Txstore
