lib/workloads/kvstore.mli: Runtime
