lib/workloads/kvstore_strand.ml: Nvmir Runtime
