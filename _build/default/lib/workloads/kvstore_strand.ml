(* A strand-persistent key-value store — the §4.4 use case ("strand
   persistency ... offers guidance for facilitating the development of
   highly concurrent NVM programs, such as high-throughput transactional
   databases and key-value stores").

   Mutations run as strands instead of epochs: each update opens a
   strand identified by its table partition and defers the persist
   barrier — independent strands may persist concurrently, so barriers
   are issued once per batch instead of once per operation.

   The correct discipline assigns strand ids by partition, so strands
   that could touch the same entry share an id (same-strand accesses are
   ordered by definition). [sloppy_strands] gives every operation a
   fresh strand id regardless of partition — the WAW/RAW dependence bug
   the dynamic checker exists to catch. *)

type t = {
  pmem : Runtime.Pmem.t;
  table : int;
  capacity : int;
  partitions : int;
  sloppy_strands : bool;
  mutable next_strand : int; (* for the sloppy variant *)
  mutable pending : int; (* mutations since the last barrier *)
  batch : int; (* barrier once per [batch] mutations *)
}

let entry_slots = 2

let create ?(capacity = 4096) ?(partitions = 16) ?(batch = 8)
    ?(sloppy_strands = false) pmem =
  let tenv = Nvmir.Ty.env_create () in
  let table =
    Runtime.Pmem.alloc pmem ~name:"kv_strand_table" ~tenv ~persistent:true
      (Nvmir.Ty.Array (Nvmir.Ty.Int, capacity * entry_slots))
  in
  {
    pmem;
    table;
    capacity;
    partitions;
    sloppy_strands;
    next_strand = 1000;
    pending = 0;
    batch;
  }

let loc line = Nvmir.Loc.make ~file:"kvstore_strand.ml" ~line

let key_addr t idx = { Runtime.Pmem.obj_id = t.table; slot = idx * entry_slots }
let val_addr t idx =
  { Runtime.Pmem.obj_id = t.table; slot = (idx * entry_slots) + 1 }

let hash t k = (k * 2654435761) land max_int mod t.capacity
let partition_of t idx = idx * t.partitions / t.capacity

let probe t key =
  let rec go i tries =
    if tries >= t.capacity then None
    else
      let stored =
        Runtime.Value.to_int (Runtime.Pmem.read t.pmem (key_addr t i))
      in
      if stored = key || stored = 0 then Some i
      else go ((i + 1) mod t.capacity) (tries + 1)
  in
  go (hash t key) 0

let strand_for t idx =
  if t.sloppy_strands then begin
    t.next_strand <- t.next_strand + 1;
    t.next_strand
  end
  else partition_of t idx

(* Persist barriers are deferred: one per [batch] mutations orders all
   completed strands with everything after it. *)
let maybe_barrier t =
  t.pending <- t.pending + 1;
  if t.pending >= t.batch then begin
    Runtime.Pmem.fence t.pmem ~loc:(loc 86) ();
    t.pending <- 0
  end

let set t key value =
  match probe t key with
  | None -> false
  | Some i ->
    let strand = strand_for t i in
    Runtime.Pmem.strand_begin t.pmem ~loc:(loc 94) strand;
    Runtime.Pmem.write t.pmem ~loc:(loc 95) (key_addr t i)
      (Runtime.Value.Vint key);
    Runtime.Pmem.write t.pmem ~loc:(loc 96) (val_addr t i)
      (Runtime.Value.Vint value);
    Runtime.Pmem.flush_range t.pmem ~loc:(loc 97) ~obj_id:t.table
      ~first_slot:(i * entry_slots) ~nslots:entry_slots ();
    Runtime.Pmem.strand_end t.pmem ~loc:(loc 98) strand;
    maybe_barrier t;
    true

let get t key =
  match probe t key with
  | None -> None
  | Some i ->
    let stored =
      Runtime.Value.to_int (Runtime.Pmem.read t.pmem (key_addr t i))
    in
    if stored = key then
      Some (Runtime.Value.to_int (Runtime.Pmem.read t.pmem (val_addr t i)))
    else None

(* Force all outstanding strands durable (shutdown / checkpoint). *)
let quiesce t =
  if t.pending > 0 then begin
    Runtime.Pmem.fence t.pmem ~loc:(loc 117) ();
    t.pending <- 0
  end

let partitions t = t.partitions
