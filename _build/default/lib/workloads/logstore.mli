(** A persistent log-structured store in the style of NVM Redis: updates
    append to an AOF-style log (epoch 1) and persist the tail pointer
    (epoch 2); reads go through a volatile index rebuilt by
    {!recover}. *)

type t

val create : ?log_capacity:int -> Runtime.Pmem.t -> t
val set : t -> int -> int -> unit
val get : t -> int -> int option
val incr : t -> int -> int

val recover : t -> int
(** Rebuild the volatile index from the durable log (the crash-recovery
    path); returns the number of recovered entries. *)

val entries : t -> int
