(** Abstract addresses: the result of resolving an IR place through the
    DSG. The checking rules of Tables 4 and 5 are phrased over address
    equality/containment/overlap, decided here field- and
    index-sensitively. *)

(** Array-index abstraction: distinct constants are disjoint; a symbolic
    index conservatively overlaps everything. *)
type index = No_index | Const_index of int | Sym_index of string

type t = {
  node : int;  (** canonical DSG node of the containing object *)
  field : string option;  (** [None] = the whole object *)
  index : index;
}

val whole : int -> t
val field : int -> string -> t
val pp : t Fmt.t
val index_equal : index -> index -> bool
val index_may_equal : index -> index -> bool

val equal : t -> t -> bool
(** Exact syntactic equality. *)

val same_object : t -> t -> bool

val may_overlap : t -> t -> bool
(** May the two addresses denote overlapping memory? Whole-object
    addresses overlap every field of the same object. *)

val contained_in : t -> t -> bool
(** [contained_in a b]: is [a] definitely covered by [b]? *)
