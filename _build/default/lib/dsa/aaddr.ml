(* Abstract addresses: the result of resolving an IR place through the
   DSG. The static checking rules of Tables 4 and 5 are phrased over
   address equality/containment/overlap; those relations are decided
   here, field- and index-sensitively. *)

(* Array-index abstraction. Two distinct constants are disjoint; a
   symbolic index conservatively overlaps everything (including other
   symbolic indexes — they may be equal at runtime). *)
type index = No_index | Const_index of int | Sym_index of string

type t = {
  node : int; (* canonical DSG node of the containing object *)
  field : string option; (* None = the whole object *)
  index : index;
}

let whole node = { node; field = None; index = No_index }
let field node f = { node; field = Some f; index = No_index }

let pp_index ppf = function
  | No_index -> ()
  | Const_index n -> Fmt.pf ppf "[%d]" n
  | Sym_index v -> Fmt.pf ppf "[%s]" v

let pp ppf t =
  match t.field with
  | None -> Fmt.pf ppf "n%d%a" t.node pp_index t.index
  | Some f -> Fmt.pf ppf "n%d.%s%a" t.node f pp_index t.index

let index_equal a b =
  match (a, b) with
  | No_index, No_index -> true
  | Const_index x, Const_index y -> x = y
  | Sym_index x, Sym_index y -> String.equal x y
  | (No_index | Const_index _ | Sym_index _), _ -> false

let index_may_equal a b =
  match (a, b) with
  | No_index, _ | _, No_index -> true
  | Const_index x, Const_index y -> x = y
  | Sym_index _, _ | _, Sym_index _ -> true

(* Exact syntactic equality of abstract addresses. *)
let equal a b =
  a.node = b.node && Option.equal String.equal a.field b.field
  && index_equal a.index b.index

(* Same object? *)
let same_object a b = a.node = b.node

(* May the two addresses denote overlapping memory? Whole-object
   addresses overlap every field of the same object. *)
let may_overlap a b =
  a.node = b.node
  &&
  match (a.field, b.field) with
  | None, _ | _, None -> true
  | Some f, Some g -> String.equal f g && index_may_equal a.index b.index

(* Is [a] definitely contained in [b]? (b covers a). *)
let contained_in a b =
  a.node = b.node
  &&
  match (b.field, a.field) with
  | None, _ -> true (* whole object covers any field *)
  | Some g, Some f ->
    String.equal f g
    && (match (b.index, a.index) with
       | No_index, _ -> true (* whole array covers any element *)
       | bi, ai -> index_equal ai bi)
  | Some _, None -> false
