lib/dsa/aaddr.mli: Fmt
