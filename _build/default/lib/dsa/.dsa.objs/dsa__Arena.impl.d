lib/dsa/arena.ml: Fmt Hashtbl List Nvmir
