lib/dsa/dsg.ml: Aaddr Arena Fmt Graphs Hashtbl Int List Nvmir Option String
