lib/dsa/dsg.mli: Aaddr Arena Fmt Nvmir
