lib/dsa/arena.mli: Fmt Nvmir
