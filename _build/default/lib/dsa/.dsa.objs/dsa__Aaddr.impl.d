lib/dsa/aaddr.ml: Fmt Option String
