(** Standalone HTML report (scan-build style): run summary, warnings
    grouped by category, and the analyzed program listing with warning
    lines highlighted. Self-contained, no external assets. *)

val escape : string -> string

val render : ?title:string -> Nvmir.Prog.t -> Driver.report -> string

val write : ?title:string -> Nvmir.Prog.t -> Driver.report -> string -> unit
(** Render to a file. *)
