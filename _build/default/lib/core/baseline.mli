(** A PMTest-like baseline checker for the effort/coverage comparison:
    annotation-driven (only checks functions the developer listed),
    generic rules only (unflushed writes, missing barriers), no model
    awareness, object-granular. *)

val generic_rules : Analysis.Warning.rule_id list

type result = {
  warnings : Analysis.Warning.t list;
  annotated : string list;
}

val check :
  ?config:Analysis.Config.t ->
  ?persistent_roots:(string * string) list ->
  annotated:string list ->
  Nvmir.Prog.t ->
  result

val annotation_sites : Nvmir.Prog.t -> annotated:string list -> int
(** The annotation burden: one checker call per persistent operation in
    every annotated function, PMTest-style. *)
