(* IR surgery utilities for the automated fixer: locate instructions by
   source location, insert/remove/move instructions, and rebuild the
   program. Programs are immutable from the outside, so every operation
   returns a fresh [Nvmir.Prog.t]. *)

(* A cursor: function name, block label, and index within the block. *)
type cursor = { in_func : string; in_block : string; index : int }

let pp_cursor ppf c = Fmt.pf ppf "%s/%s[%d]" c.in_func c.in_block c.index

(* Find the first instruction whose location matches [loc] and satisfies
   [pred] (kind filters disambiguate warnings on unannotated code, where
   many instructions share [Loc.none]). *)
let find_at_loc ?(pred = fun (_ : Nvmir.Instr.t) -> true) (prog : Nvmir.Prog.t)
    (loc : Nvmir.Loc.t) : (cursor * Nvmir.Instr.t) option =
  List.find_map
    (fun f ->
      List.find_map
        (fun (b : Nvmir.Func.block) ->
          List.find_map
            (fun (idx, (i : Nvmir.Instr.t)) ->
              if Nvmir.Loc.equal i.Nvmir.Instr.loc loc && pred i then
                Some
                  ( {
                      in_func = Nvmir.Func.name f;
                      in_block = b.Nvmir.Func.label;
                      index = idx;
                    },
                    i )
              else None)
            (List.mapi (fun idx i -> (idx, i)) b.Nvmir.Func.instrs))
        f.Nvmir.Func.blocks)
    (Nvmir.Prog.funcs prog)

(* Rebuild [prog] with [f] applied to every function. *)
let map_funcs (prog : Nvmir.Prog.t) (f : Nvmir.Func.t -> Nvmir.Func.t) :
    Nvmir.Prog.t =
  let out = Nvmir.Prog.create () in
  List.iter (Nvmir.Prog.add_struct out) (Nvmir.Prog.structs prog);
  List.iter (fun fn -> Nvmir.Prog.add_func out (f fn)) (Nvmir.Prog.funcs prog);
  out

(* Rewrite one block's instruction list in place (identity elsewhere). *)
let map_block prog ~in_func ~in_block
    (rewrite : Nvmir.Instr.t list -> Nvmir.Instr.t list) : Nvmir.Prog.t =
  map_funcs prog (fun f ->
      if not (String.equal (Nvmir.Func.name f) in_func) then f
      else
        {
          f with
          Nvmir.Func.blocks =
            List.map
              (fun (b : Nvmir.Func.block) ->
                if String.equal b.Nvmir.Func.label in_block then
                  { b with Nvmir.Func.instrs = rewrite b.Nvmir.Func.instrs }
                else b)
              f.Nvmir.Func.blocks;
        })

(* Insert [instrs] immediately after the cursor position. *)
let insert_after prog (c : cursor) (instrs : Nvmir.Instr.t list) =
  map_block prog ~in_func:c.in_func ~in_block:c.in_block (fun existing ->
      List.concat
        (List.mapi
           (fun idx i -> if idx = c.index then i :: instrs else [ i ])
           existing))

(* Insert [instrs] immediately before the cursor position. *)
let insert_before prog (c : cursor) (instrs : Nvmir.Instr.t list) =
  map_block prog ~in_func:c.in_func ~in_block:c.in_block (fun existing ->
      List.concat
        (List.mapi
           (fun idx i -> if idx = c.index then instrs @ [ i ] else [ i ])
           existing))

(* Append [instrs] at the end of a block (before its terminator). *)
let append_to_block prog ~in_func ~in_block instrs =
  map_block prog ~in_func ~in_block (fun existing -> existing @ instrs)

(* Remove the instruction at the cursor. *)
let remove_at prog (c : cursor) =
  map_block prog ~in_func:c.in_func ~in_block:c.in_block (fun existing ->
      List.filteri (fun idx _ -> idx <> c.index) existing)

(* Replace the instruction at the cursor. *)
let replace_at prog (c : cursor) (instr : Nvmir.Instr.t) =
  map_block prog ~in_func:c.in_func ~in_block:c.in_block (fun existing ->
      List.mapi (fun idx i -> if idx = c.index then instr else i) existing)

(* The nearest store preceding the cursor in the same block that writes
   through the same base object as [base]; used to narrow whole-object
   flushes to the actually-modified field. *)
let nearest_store_before (prog : Nvmir.Prog.t) (c : cursor) ~base :
    Nvmir.Place.t option =
  match Nvmir.Prog.find_func prog c.in_func with
  | None -> None
  | Some f -> (
    match Nvmir.Func.find_block f c.in_block with
    | None -> None
    | Some b ->
      let before = List.filteri (fun idx _ -> idx < c.index) b.Nvmir.Func.instrs in
      List.fold_left
        (fun acc (i : Nvmir.Instr.t) ->
          match i.Nvmir.Instr.kind with
          | Nvmir.Instr.Store { dst; _ }
            when String.equal (Nvmir.Place.base dst) base -> Some dst
          | _ -> acc)
        None before)

(* Blocks that can branch to [label] within [in_func]. *)
let predecessors (prog : Nvmir.Prog.t) ~in_func ~label =
  match Nvmir.Prog.find_func prog in_func with
  | None -> []
  | Some f ->
    let cfg = Graphs.Cfg.of_func f in
    Graphs.Cfg.predecessors cfg label

(* Does a block contain a store whose base is [base]? *)
let block_stores_to (prog : Nvmir.Prog.t) ~in_func ~label ~base =
  match Nvmir.Prog.find_func prog in_func with
  | None -> false
  | Some f -> (
    match Nvmir.Func.find_block f label with
    | None -> false
    | Some b ->
      List.exists
        (fun (i : Nvmir.Instr.t) ->
          match i.Nvmir.Instr.kind with
          | Nvmir.Instr.Store { dst; _ } ->
            String.equal (Nvmir.Place.base dst) base
          | _ -> false)
        b.Nvmir.Func.instrs)
