(* A PMTest-like baseline checker, used by the evaluation's comparison
   and ablation benches (§5.2 "Programmer's effort", §6 Related work).

   Like PMTest, the baseline
   - requires the developer to annotate the functions to check
     (DeepMC needs only the model flag);
   - verifies generic crash-consistency properties — unflushed writes
     and missing barriers — with no notion of the intended persistency
     model, so model-specific violations (semantic mismatch, epoch
     batching, nested-transaction barriers) and performance bugs are
     out of scope;
   - is object-granular rather than field-sensitive.

   Implementation: run the shared trace/rule machinery field-insensitive
   with the rule output filtered to the generic subset and to the
   annotated functions. *)

let generic_rules =
  [ Analysis.Warning.Unflushed_write; Analysis.Warning.Missing_persist_barrier ]

type result = {
  warnings : Analysis.Warning.t list;
  annotated : string list;
}

let check ?(config = Analysis.Config.default) ?(persistent_roots = [])
    ~annotated prog : result =
  let static =
    Analysis.Checker.check ~config ~field_sensitive:false ~persistent_roots
      ~model:Analysis.Model.Strict prog
  in
  let warnings =
    List.filter
      (fun (w : Analysis.Warning.t) ->
        List.mem w.Analysis.Warning.rule generic_rules
        && List.mem w.Analysis.Warning.fname annotated)
      static.Analysis.Checker.warnings
  in
  { warnings; annotated }

(* Annotation burden: PMTest-style tools need explicit checker calls in
   every annotated function; DeepMC needs one compiler flag. We quantify
   this as the number of annotation sites the baseline requires. *)
let annotation_sites prog ~annotated =
  List.fold_left
    (fun acc fname ->
      match Nvmir.Prog.find_func prog fname with
      | None -> acc
      | Some f ->
        (* one annotation per persistent operation, like PMTest's
           TX_CHECKER/ordering assertions *)
        let ops = ref 0 in
        Nvmir.Func.iter_instrs
          (fun _ i -> if Nvmir.Instr.is_persistency_relevant i then incr ops)
          f;
        acc + !ops)
    0 annotated
