(** The false-positive suppression database §5.4 proposes as future
    work: user-validated benign warnings are recorded and filtered from
    subsequent reports. Entries match by rule (optional), file, and line
    (optional; absent matches the whole file). *)

type entry = {
  rule : Analysis.Warning.rule_id option;  (** [None] = any rule *)
  file : string;
  line : int option;  (** [None] = whole file *)
  reason : string;
}

type t

val create : unit -> t
val entries : t -> entry list
val add : t -> entry -> unit

val entry :
  ?rule:Analysis.Warning.rule_id -> ?line:int -> file:string -> string -> entry

val matches : entry -> Analysis.Warning.t -> bool

val filter :
  t ->
  Analysis.Warning.t list ->
  Analysis.Warning.t list * (Analysis.Warning.t * entry) list
(** (kept, suppressed-with-entry). *)

val learn : t -> Analysis.Warning.t -> reason:string -> unit
(** Record a validated false positive — the §5.4 learning loop. *)

(** {1 On-disk format} — one entry per line: [rule file[:line] reason];
    ['*'] matches any rule; ['#'] starts a comment *)

exception Parse_error of string * int

val to_string : t -> string
val of_string : string -> t
val load : string -> t
val save : t -> string -> unit
