(** IR surgery utilities for the automated fixer: locate instructions by
    source location, insert/remove/replace/move instructions. Every
    operation returns a fresh program. *)

type cursor = { in_func : string; in_block : string; index : int }

val pp_cursor : cursor Fmt.t

val find_at_loc :
  ?pred:(Nvmir.Instr.t -> bool) ->
  Nvmir.Prog.t ->
  Nvmir.Loc.t ->
  (cursor * Nvmir.Instr.t) option
(** First instruction at [loc] satisfying [pred]; the predicate
    disambiguates unannotated code where many instructions share
    [Loc.none]. *)

val map_funcs : Nvmir.Prog.t -> (Nvmir.Func.t -> Nvmir.Func.t) -> Nvmir.Prog.t

val map_block :
  Nvmir.Prog.t ->
  in_func:string ->
  in_block:string ->
  (Nvmir.Instr.t list -> Nvmir.Instr.t list) ->
  Nvmir.Prog.t

val insert_after : Nvmir.Prog.t -> cursor -> Nvmir.Instr.t list -> Nvmir.Prog.t
val insert_before : Nvmir.Prog.t -> cursor -> Nvmir.Instr.t list -> Nvmir.Prog.t

val append_to_block :
  Nvmir.Prog.t -> in_func:string -> in_block:string -> Nvmir.Instr.t list ->
  Nvmir.Prog.t
(** Before the block's terminator. *)

val remove_at : Nvmir.Prog.t -> cursor -> Nvmir.Prog.t
val replace_at : Nvmir.Prog.t -> cursor -> Nvmir.Instr.t -> Nvmir.Prog.t

val nearest_store_before :
  Nvmir.Prog.t -> cursor -> base:string -> Nvmir.Place.t option
(** The closest preceding store in the same block writing through
    [base]; used to narrow whole-object flushes. *)

val predecessors : Nvmir.Prog.t -> in_func:string -> label:string -> string list

val block_stores_to :
  Nvmir.Prog.t -> in_func:string -> label:string -> base:string -> bool
