lib/core/parallel.ml: Analysis Array Atomic Domain Fmt List Nvmir Unix
