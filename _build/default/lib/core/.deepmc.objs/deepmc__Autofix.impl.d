lib/core/autofix.ml: Analysis Fmt List Nvmir Rewrite Stdlib String
