lib/core/driver.ml: Analysis Fmt Graphs List Logs Nvmir Runtime Unix
