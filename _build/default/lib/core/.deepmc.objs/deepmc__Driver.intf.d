lib/core/driver.mli: Analysis Fmt Nvmir Runtime
