lib/core/autofix.mli: Analysis Fmt Nvmir Stdlib
