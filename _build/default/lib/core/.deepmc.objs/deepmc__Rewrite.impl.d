lib/core/rewrite.ml: Fmt Graphs List Nvmir String
