lib/core/json_report.mli: Analysis Autofix Driver Fmt Report Runtime
