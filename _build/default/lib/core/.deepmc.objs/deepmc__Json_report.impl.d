lib/core/json_report.ml: Analysis Autofix Buffer Char Driver Float Fmt List Nvmir Report Runtime String
