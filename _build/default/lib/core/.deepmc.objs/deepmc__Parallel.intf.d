lib/core/parallel.mli: Analysis Fmt Nvmir
