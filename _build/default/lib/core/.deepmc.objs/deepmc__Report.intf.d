lib/core/report.mli: Analysis Fmt
