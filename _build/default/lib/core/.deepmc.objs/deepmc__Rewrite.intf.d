lib/core/rewrite.mli: Fmt Nvmir
