lib/core/html_report.mli: Driver Nvmir
