lib/core/suppress.mli: Analysis
