lib/core/baseline.ml: Analysis List Nvmir
