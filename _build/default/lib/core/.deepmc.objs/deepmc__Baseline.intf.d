lib/core/baseline.mli: Analysis Nvmir
