lib/core/report.ml: Analysis Fmt List Nvmir Option String
