lib/core/suppress.ml: Analysis Either Fmt List Nvmir String
