lib/core/html_report.ml: Analysis Buffer Driver Fmt List Nvmir Runtime String
