(* The false-positive suppression database §5.4 proposes as future work:
   "we could maintain a database of user-specified rules to filter out
   some warnings. The database can be updated with the learned
   experiences of previously validated false positives."

   Entries match warnings by rule (optional), file, and line (optional);
   each carries the reviewer's reason. The on-disk format is one entry
   per line:

     # comment
     unflushed-write  btree_map.c:215   symbolic index provably equal
     *                nvm_heap.c        legacy shim file, reviewed 2022-03

   '*' matches any rule; a file without ':line' matches the whole file. *)

type entry = {
  rule : Analysis.Warning.rule_id option; (* None = any rule *)
  file : string;
  line : int option; (* None = whole file *)
  reason : string;
}

type t = { mutable entries : entry list }

let create () = { entries = [] }
let entries t = t.entries
let add t e = t.entries <- t.entries @ [ e ]

let entry ?rule ?line ~file reason = { rule; file; line; reason }

let matches (e : entry) (w : Analysis.Warning.t) =
  (match e.rule with None -> true | Some r -> r = w.Analysis.Warning.rule)
  && String.equal e.file w.Analysis.Warning.loc.Nvmir.Loc.file
  && match e.line with
     | None -> true
     | Some l -> l = w.Analysis.Warning.loc.Nvmir.Loc.line

(* Split warnings into (kept, suppressed-with-entry). *)
let filter t (warnings : Analysis.Warning.t list) =
  List.partition_map
    (fun w ->
      match List.find_opt (fun e -> matches e w) t.entries with
      | None -> Either.Left w
      | Some e -> Either.Right (w, e))
    warnings

(* Record a validated false positive: the §5.4 learning loop. *)
let learn t (w : Analysis.Warning.t) ~reason =
  add t
    {
      rule = Some w.Analysis.Warning.rule;
      file = w.Analysis.Warning.loc.Nvmir.Loc.file;
      line = Some w.Analysis.Warning.loc.Nvmir.Loc.line;
      reason;
    }

(* ------------------------------------------------------------------ *)
(* On-disk format *)

let entry_to_line (e : entry) =
  Fmt.str "%-28s %-28s %s"
    (match e.rule with None -> "*" | Some r -> Analysis.Warning.rule_name r)
    (match e.line with
    | None -> e.file
    | Some l -> Fmt.str "%s:%d" e.file l)
    e.reason

let to_string t =
  String.concat "\n"
    ("# DeepMC suppression database: rule  file[:line]  reason"
    :: List.map entry_to_line t.entries)
  ^ "\n"

exception Parse_error of string * int

let rule_of_name name =
  List.find_opt
    (fun r -> String.equal (Analysis.Warning.rule_name r) name)
    Analysis.Warning.all_rules

let parse_line lineno line : entry option =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | rule_s :: loc_s :: reason_words ->
      let rule =
        if String.equal rule_s "*" then None
        else
          match rule_of_name rule_s with
          | Some r -> Some r
          | None ->
            raise (Parse_error (Fmt.str "unknown rule %S" rule_s, lineno))
      in
      let file, line_no =
        match String.rindex_opt loc_s ':' with
        | Some i -> (
          let f = String.sub loc_s 0 i in
          let num = String.sub loc_s (i + 1) (String.length loc_s - i - 1) in
          match int_of_string_opt num with
          | Some n -> (f, Some n)
          | None -> (loc_s, None))
        | None -> (loc_s, None)
      in
      Some { rule; file; line = line_no; reason = String.concat " " reason_words }
    | _ ->
      raise (Parse_error ("expected: rule file[:line] reason", lineno))

let of_string s : t =
  let t = create () in
  List.iteri
    (fun i line ->
      match parse_line (i + 1) line with
      | Some e -> add t e
      | None -> ())
    (String.split_on_char '\n' s);
  t

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  of_string s

let save t path =
  let oc = open_out_bin path in
  output_string oc (to_string t);
  close_out oc
