(* A persistent queue done right and done wrong: the shipped
   pqueue.nvmir persists each element before publishing it via the tail
   index; the buggy variant publishes first. DeepMC's semantic-mismatch
   rule flags neither (both persist every write) — it is the crash
   oracle that separates them, which is why the paper pairs static rules
   with runtime analysis.

     dune exec examples/pqueue_demo.exe *)

let correct_src =
  match
    List.find_opt Sys.file_exists
      [ "examples/programs/pqueue.nvmir"; "../examples/programs/pqueue.nvmir" ]
  with
  | Some path ->
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  | None -> failwith "run from the repository root: examples/programs/pqueue.nvmir"

(* The buggy variant publishes the slot via the tail BEFORE persisting
   the element: a crash between the persists exposes garbage. *)
let buggy_src =
  {|
struct pqueue { tail: int, head: int, buf: int[16] }

func pqueue_enqueue(q: ptr pqueue, x: int) {
entry:
  t = load q->tail
  t1 = t + 1
  store q->tail, t1
  persist exact q->tail
  store q->buf[t], x
  persist exact q->buf[t]
  ret
}

func main() {
entry:
  q = alloc pmem pqueue
  call pqueue_enqueue(q, 11)
  call pqueue_enqueue(q, 22)
  ret
}
|}

(* Invariant: every published slot (index < tail) holds a non-zero
   element in the durable state. The demo enqueues 11/22/33, never 0. *)
let invariant pmem =
  let v slot =
    Runtime.Value.to_int
      (Runtime.Pmem.durable_value pmem { Runtime.Pmem.obj_id = 0; slot })
  in
  let tail = v 0 in
  let rec scan i =
    if i >= tail then Ok ()
    else if v (2 + i) = 0 then
      Error (Fmt.str "slot %d is published (tail=%d) but empty" i tail)
    else scan (i + 1)
  in
  scan 0

let crash_test label src =
  let prog = Nvmir.Parser.parse src in
  let report = Runtime.Crash.test ~entry:"main" ~invariant prog in
  Fmt.pr "%-18s %a@." label Runtime.Crash.pp_report report

let () =
  Fmt.pr "Static check of the correct queue:@.";
  let result =
    Analysis.Checker.check ~model:Analysis.Model.Strict
      (Nvmir.Parser.parse correct_src)
  in
  List.iter
    (fun w -> Fmt.pr "  %a@." Analysis.Warning.pp w)
    result.Analysis.Checker.warnings;
  Fmt.pr
    "@.All conservative semantic-mismatch warnings: the queue UPDATE spans@.\
     persist units on purpose (element before tail) — the Section 5.4 false-\
     positive pattern. The crash oracle proves this instance safe, so we@.\
     record the verdicts in a suppression database:@.@.";
  let db = Deepmc.Suppress.create () in
  List.iter
    (fun w ->
      Deepmc.Suppress.learn db w ~reason:"dependency-ordered publish, crash-verified")
    result.Analysis.Checker.warnings;
  let kept, suppressed = Deepmc.Suppress.filter db result.Analysis.Checker.warnings in
  Fmt.pr "%s@." (Deepmc.Suppress.to_string db);
  Fmt.pr "after suppression: %d kept, %d suppressed@.@." (List.length kept)
    (List.length suppressed);
  Fmt.pr "Crash-injection over every persistent-memory event:@.";
  crash_test "correct queue:" correct_src;
  crash_test "buggy queue:" buggy_src;
  Fmt.pr
    "@.The buggy enqueue publishes the slot before persisting the element;@.\
     the crash oracle finds the window the static rules cannot see (both@.\
     variants flush every write — only the ORDER differs).@."
