examples/corpus_sweep.mli:
