examples/strand_kvstore.ml: Analysis Fmt Runtime Workloads
