examples/autofix_demo.ml: Analysis Deepmc Fmt List Nvmir Runtime
