examples/quickstart.ml: Analysis Deepmc Fmt Nvmir
