examples/autofix_demo.mli:
