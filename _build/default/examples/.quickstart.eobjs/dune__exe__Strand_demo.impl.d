examples/strand_demo.ml: Analysis Deepmc Fmt Nvmir
