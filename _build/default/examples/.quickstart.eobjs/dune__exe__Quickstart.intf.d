examples/quickstart.mli:
