examples/pqueue_demo.mli:
