examples/pqueue_demo.ml: Analysis Deepmc Fmt List Nvmir Runtime Sys
