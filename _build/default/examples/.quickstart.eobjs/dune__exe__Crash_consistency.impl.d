examples/crash_consistency.ml: Fmt Nvmir Runtime
