examples/strand_kvstore.mli:
