examples/strand_demo.mli:
