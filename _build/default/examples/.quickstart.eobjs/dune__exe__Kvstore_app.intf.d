examples/kvstore_app.mli:
