examples/corpus_sweep.ml: Analysis Corpus Deepmc Fmt List Nvmir String
