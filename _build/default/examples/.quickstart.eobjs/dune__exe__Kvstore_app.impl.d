examples/kvstore_app.ml: Analysis Fmt Runtime Workloads
