(* Strand persistency demo: two strands that share data race on their
   persists; the static checker over-approximates the dependence and the
   dynamic checker confirms it at runtime with happens-before detection
   (§4.4). The ordered variant separates the strands with a persist
   barrier and is clean.

     dune exec examples/strand_demo.exe *)

let racy = {|
struct counter { hits: int, total: int }

# Two strands update the same counter object. Strand persistency lets
# them persist concurrently -- but they have a WAW dependence, so the
# result after a crash is unpredictable.
func update_stats(c: ptr counter) {
entry:
  strand_begin 1                 @ stats.c:10
  store c->hits, 1               @ stats.c:11
  flush exact c->hits            @ stats.c:12
  strand_end 1                   @ stats.c:13
  strand_begin 2                 @ stats.c:15
  store c->hits, 2               @ stats.c:16
  flush exact c->hits            @ stats.c:17
  strand_end 2                   @ stats.c:18
  fence                          @ stats.c:19
  ret
}

func main() {
entry:
  c = alloc pmem counter
  call update_stats(c)
  ret
}
|}

let ordered = {|
struct counter { hits: int, total: int }

# Same updates, but a persist barrier between the strands makes the
# second strand depend on the first: no concurrency, no race.
func update_stats(c: ptr counter) {
entry:
  strand_begin 1                 @ stats.c:10
  store c->hits, 1               @ stats.c:11
  flush exact c->hits            @ stats.c:12
  strand_end 1                   @ stats.c:13
  fence                          @ stats.c:14
  strand_begin 2                 @ stats.c:15
  store c->hits, 2               @ stats.c:16
  flush exact c->hits            @ stats.c:17
  strand_end 2                   @ stats.c:18
  fence                          @ stats.c:19
  ret
}

func main() {
entry:
  c = alloc pmem counter
  call update_stats(c)
  ret
}
|}

let disjoint = {|
struct counter { hits: int, total: int }

# Strands touching disjoint fields may persist concurrently: this is
# the parallelism strand persistency exists for, and it is clean.
func update_stats(c: ptr counter) {
entry:
  strand_begin 1                 @ stats.c:10
  store c->hits, 1               @ stats.c:11
  flush exact c->hits            @ stats.c:12
  strand_end 1                   @ stats.c:13
  strand_begin 2                 @ stats.c:15
  store c->total, 2              @ stats.c:16
  flush exact c->total           @ stats.c:17
  strand_end 2                   @ stats.c:18
  fence                          @ stats.c:19
  ret
}

func main() {
entry:
  c = alloc pmem counter
  call update_stats(c)
  ret
}
|}

let run label src =
  let prog = Nvmir.Parser.parse src in
  let driver = Deepmc.Driver.make Analysis.Model.Strand in
  let report = Deepmc.Driver.analyze driver ~entry:"main" prog in
  Fmt.pr "== %s ==@.%a@.@." label Deepmc.Driver.pp_report report

let () =
  run "racy strands (expect strand-dependence, statically and dynamically)"
    racy;
  run "barrier-ordered strands (expect no strand warnings)" ordered;
  run "disjoint strands (expect no strand warnings)" disjoint
