(* Sweep the bundled corpus — the buggy NVM programs of the paper's
   Tables 3 and 8 — with the full DeepMC pipeline and print a Table-1
   style summary.

     dune exec examples/corpus_sweep.exe *)

let () =
  Fmt.pr "%-22s %-11s %-7s %-20s %s@." "program" "framework" "model"
    "validated/warnings" "bugs found at";
  Fmt.pr "%s@." (String.make 100 '-');
  List.iter
    (fun (p : Corpus.Types.program) ->
      let _, score = Corpus.Registry.analyze p in
      let locs =
        List.map
          (fun (w : Analysis.Warning.t) -> Nvmir.Loc.to_string w.Analysis.Warning.loc)
          score.Deepmc.Report.warnings
      in
      Fmt.pr "%-22s %-11s %-7s %2d/%-17d %s@." p.Corpus.Types.name
        (Corpus.Types.framework_name p.Corpus.Types.framework)
        (Analysis.Model.to_string (Corpus.Types.model p))
        (Deepmc.Report.validated_count score)
        (Deepmc.Report.warning_count score)
        (String.concat ", " locs))
    Corpus.Registry.all;
  Fmt.pr "%s@." (String.make 100 '-');
  let totals = Corpus.Registry.table1 () in
  List.iter
    (fun (t : Corpus.Registry.framework_totals) ->
      Fmt.pr "%-22s total %2d/%-2d@."
        (Corpus.Types.framework_name t.Corpus.Registry.framework)
        t.Corpus.Registry.validated t.Corpus.Registry.warnings)
    totals;
  let v = List.fold_left (fun a t -> a + t.Corpus.Registry.validated) 0 totals in
  let w = List.fold_left (fun a t -> a + t.Corpus.Registry.warnings) 0 totals in
  Fmt.pr "%-22s total %2d/%-2d (paper: 43/50)@.@." "ALL" v w;
  let summary =
    List.fold_left
      (fun acc (p : Corpus.Types.program) ->
        let _, score = Corpus.Registry.analyze p in
        Analysis.Summary.merge acc
          (Analysis.Summary.of_warnings score.Deepmc.Report.warnings))
      Analysis.Summary.empty Corpus.Registry.all
  in
  Fmt.pr "%a@." Analysis.Summary.pp summary
