(* Automated repair demo: run the Figure 9 nvm_lock bug through the
   fixer, show the repaired program, and prove the repair with the crash
   oracle — the unflushed new_level update is durable afterwards.

     dune exec examples/autofix_demo.exe *)

let buggy = {|
struct nvm_lkrec { state: int, new_level: int, owner: int }
struct nvm_amutex { owners: int, level: int, waiters: int }

func nvm_lock(omutex: ptr nvm_amutex) {
entry:
  mutex = omutex
  lk = alloc pmem nvm_lkrec      @ nvm_locks.c:920
  store lk->state, 1             @ nvm_locks.c:922
  persist exact lk->state        @ nvm_locks.c:923
  store mutex->owners, 0         @ nvm_locks.c:925
  persist exact mutex->owners    @ nvm_locks.c:926
  store lk->new_level, 2         @ nvm_locks.c:932
  store lk->state, 3             @ nvm_locks.c:935
  persist exact lk->state        @ nvm_locks.c:936
  ret
}

func main() {
entry:
  m = alloc pmem nvm_amutex
  call nvm_lock(m)
  ret
}
|}

let durable_new_level prog =
  let pmem = Runtime.Pmem.create () in
  let interp = Runtime.Interp.create ~pmem prog in
  ignore (Runtime.Interp.run ~entry:"main" interp);
  (* object 1 is lk (object 0 is the mutex); slot 1 is new_level *)
  Runtime.Value.to_int
    (Runtime.Pmem.durable_value pmem { Runtime.Pmem.obj_id = 1; slot = 1 })

let () =
  let prog = Nvmir.Parser.parse buggy in
  let before = Analysis.Checker.check ~model:Analysis.Model.Strict prog in
  Fmt.pr "== before ==@.%a@.@." Analysis.Checker.pp_result before;
  Fmt.pr "new_level durable after a run: %d (the update is LOST on crash)@.@."
    (durable_new_level prog);

  let fixed, outcomes, remaining =
    Deepmc.Autofix.fix_until_clean ~model:Analysis.Model.Strict prog
  in
  Fmt.pr "== repairs ==@.";
  List.iter (fun o -> Fmt.pr "%a@." Deepmc.Autofix.pp_outcome o) outcomes;
  Fmt.pr "@.== repaired program ==@.%a@.@." Nvmir.Prog.pp fixed;
  Fmt.pr "remaining warnings: %d@." (List.length remaining);
  Fmt.pr "new_level durable after a run: %d (now crash safe)@."
    (durable_new_level fixed);
  assert (durable_new_level fixed = 2)
