(* Quickstart: build a small NVM program with the builder API, check it
   against strict persistency, then check the corrected version.

     dune exec examples/quickstart.exe *)

let buggy () =
  let prog = Nvmir.Prog.create () in
  Nvmir.Builder.struct_ prog "account" [ ("balance", Nvmir.Ty.Int); ("owner", Nvmir.Ty.Int) ];
  (* deposit: updates both fields but only makes the balance durable *)
  let _ =
    Nvmir.Builder.func prog ~file:"bank.c" "deposit"
      [ ("acct", Nvmir.Ty.Ptr (Nvmir.Ty.Named "account")) ]
      (fun fb ->
        let open Nvmir.Builder in
        store fb ~line:10 (fld "acct" "balance") (i 100);
        store fb ~line:11 (fld "acct" "owner") (i 7);
        (* BUG: only the balance is flushed; the owner update is lost on
           a crash *)
        persist fb ~line:13 (fld "acct" "balance");
        ret fb ())
  in
  let _ =
    Nvmir.Builder.func prog ~file:"bank.c" "main" [] (fun fb ->
        let open Nvmir.Builder in
        palloc fb ~line:20 "acct" (Nvmir.Ty.Named "account");
        call fb ~line:21 "deposit" [ v "acct" ];
        ret fb ())
  in
  prog

let fixed () =
  let prog = Nvmir.Prog.create () in
  Nvmir.Builder.struct_ prog "account" [ ("balance", Nvmir.Ty.Int); ("owner", Nvmir.Ty.Int) ];
  let _ =
    Nvmir.Builder.func prog ~file:"bank.c" "deposit"
      [ ("acct", Nvmir.Ty.Ptr (Nvmir.Ty.Named "account")) ]
      (fun fb ->
        let open Nvmir.Builder in
        store fb ~line:10 (fld "acct" "balance") (i 100);
        store fb ~line:11 (fld "acct" "owner") (i 7);
        flush fb ~line:13 (fld "acct" "balance");
        flush fb ~line:14 (fld "acct" "owner");
        fence fb ~line:15 ();
        ret fb ())
  in
  let _ =
    Nvmir.Builder.func prog ~file:"bank.c" "main" [] (fun fb ->
        let open Nvmir.Builder in
        palloc fb ~line:20 "acct" (Nvmir.Ty.Named "account");
        call fb ~line:21 "deposit" [ v "acct" ];
        ret fb ())
  in
  prog

let check label prog =
  let driver = Deepmc.Driver.make Analysis.Model.Strict in
  let report = Deepmc.Driver.analyze driver ~entry:"main" prog in
  Fmt.pr "== %s ==@.%a@.@." label Deepmc.Driver.pp_report report

let () =
  Fmt.pr "The program under check:@.@.%a@.@." Nvmir.Prog.pp (buggy ());
  check "buggy deposit (expect one unflushed-write warning)" (buggy ());
  check "fixed deposit (expect no warnings)" (fixed ())
