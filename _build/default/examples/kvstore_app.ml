(* Application demo: the persistent key-value store and the
   log-structured store from the benchmark suite, run with the dynamic
   checker attached, plus a crash-recovery round trip on the log store.

     dune exec examples/kvstore_app.exe *)

let kv_demo () =
  let pmem = Runtime.Pmem.create () in
  let checker = Runtime.Dynamic.create ~model:Analysis.Model.Epoch () in
  Runtime.Dynamic.attach checker pmem;
  let kv = Workloads.Kvstore.create ~capacity:64 pmem in
  ignore (Workloads.Kvstore.set kv 1 100);
  ignore (Workloads.Kvstore.set kv 2 200);
  ignore (Workloads.Kvstore.rmw kv 1 (fun v -> v + 1));
  ignore (Workloads.Kvstore.delete kv 2);
  Fmt.pr "kvstore: key 1 -> %a, key 2 -> %a, size %d@."
    Fmt.(option ~none:(any "absent") int)
    (Workloads.Kvstore.get kv 1)
    Fmt.(option ~none:(any "absent") int)
    (Workloads.Kvstore.get kv 2)
    (Workloads.Kvstore.size kv);
  Fmt.pr "kvstore heap:   %a@." Runtime.Pmem.pp_stats (Runtime.Pmem.stats pmem);
  Fmt.pr "kvstore checks: %a@.@." Runtime.Dynamic.pp_summary
    (Runtime.Dynamic.summary checker)

let log_demo () =
  let pmem = Runtime.Pmem.create () in
  let st = Workloads.Logstore.create ~log_capacity:1024 pmem in
  for k = 1 to 10 do
    Workloads.Logstore.set st k (k * k)
  done;
  (* simulate a crash: rebuild the index from the durable log only *)
  let recovered = Workloads.Logstore.recover st in
  Fmt.pr "logstore: recovered %d entries from the durable log@." recovered;
  Fmt.pr "logstore: key 7 -> %a after recovery@."
    Fmt.(option ~none:(any "absent") int)
    (Workloads.Logstore.get st 7);
  assert (Workloads.Logstore.get st 7 = Some 49)

let () =
  kv_demo ();
  log_demo ();
  Fmt.pr "@.Both stores persist through the DeepMC NVM runtime; attaching@.\
          the dynamic checker needs no source changes (cf. Section 4.4).@."
