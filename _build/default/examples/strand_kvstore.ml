(* The §4.4 concurrency story, end to end: a strand-persistent KV store
   whose mutations persist concurrently within a barrier batch.

   - With partition-disciplined strand ids, updates that can touch the
     same entry share a strand and are ordered: the dynamic checker
     stays silent.
   - With sloppy per-operation strand ids, two updates to the same key
     inside one batch are concurrent strands with a WAW dependence: the
     checker reports them (the Table 4 strand rule, detected at runtime
     with happens-before tracking).

     dune exec examples/strand_kvstore.exe *)

let run ~sloppy =
  let pmem = Runtime.Pmem.create () in
  let checker = Runtime.Dynamic.create ~model:Analysis.Model.Strand () in
  Runtime.Dynamic.attach checker pmem;
  let kv =
    Workloads.Kvstore_strand.create ~capacity:512 ~partitions:8 ~batch:8
      ~sloppy_strands:sloppy pmem
  in
  let rng = Workloads.Gen.rng 2024 in
  for i = 1 to 4_000 do
    (* a small hot keyspace so same-key updates land in one batch *)
    let key = 1 + Workloads.Gen.skewed rng ~keyspace:64 ~theta:0.7 in
    ignore (Workloads.Kvstore_strand.set kv key i)
  done;
  Workloads.Kvstore_strand.quiesce kv;
  (Runtime.Dynamic.summary checker, kv)

let () =
  let disciplined, kv = run ~sloppy:false in
  Fmt.pr "partition-disciplined strands: %a@." Runtime.Dynamic.pp_summary
    disciplined;
  assert (disciplined.Runtime.Dynamic.waw = 0);
  let sloppy, _ = run ~sloppy:true in
  Fmt.pr "per-operation strand ids:      %a@." Runtime.Dynamic.pp_summary sloppy;
  assert (sloppy.Runtime.Dynamic.waw > 0);
  Fmt.pr
    "@.Same workload, same barriers — only the strand-id discipline \
     differs.@.The sloppy variant persists dependent updates concurrently; \
     the@.happens-before checker catches every WAW window. Store still \
     readable:@.key 1 -> %a@."
    Fmt.(option ~none:(any "absent") int)
    (Workloads.Kvstore_strand.get kv 1)
