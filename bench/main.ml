(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the ablations DESIGN.md calls out and a bechamel
   microbenchmark suite for the analysis stages.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe table1     # one experiment
     DEEPMC_BENCH_TXS=1000000 dune exec bench/main.exe figure12

   Paper numbers are printed next to measured ones where the paper
   reports concrete values; EXPERIMENTS.md records the comparison. *)

let txs =
  match Sys.getenv_opt "DEEPMC_BENCH_TXS" with
  | Some s -> (try int_of_string s with _ -> 60_000)
  | None -> 60_000

(* One seed for every randomized path of the harness (client request
   streams) and the injection campaign; DEEPMC_BENCH_SEED reproduces a
   whole bench run. *)
let bench_seed =
  match Sys.getenv_opt "DEEPMC_BENCH_SEED" with
  | Some s -> (try int_of_string s with _ -> Workloads.Harness.default_seed)
  | None -> Workloads.Harness.default_seed

let section title =
  Fmt.pr "@.%s@.%s@." title (String.make (String.length title) '=')

let hr () = Fmt.pr "%s@." (String.make 96 '-')

(* ------------------------------------------------------------------ *)
(* Table 1: detected persistency bugs per framework and bug class *)

let paper_table1 : (Analysis.Warning.rule_id * (int * int) option list) list =
  let open Analysis.Warning in
  (* cells in framework order PMDK, NVM-Direct, PMFS, Mnemosyne *)
  [
    (Multiple_writes_at_once, [ None; None; Some (1, 2); None ]);
    (Unflushed_write, [ Some (1, 2); Some (1, 1); None; Some (1, 1) ]);
    (Missing_persist_barrier, [ Some (2, 2); Some (2, 2); None; None ]);
    (Missing_barrier_nested_tx, [ None; None; Some (1, 1); None ]);
    (Semantic_mismatch, [ Some (6, 7); None; None; None ]);
    (Multiple_flushes, [ Some (3, 4); Some (1, 1); Some (3, 3); Some (1, 1) ]);
    (Flush_unmodified, [ Some (3, 3); Some (2, 3); Some (4, 5); None ]);
    (Persist_same_object_in_tx, [ Some (3, 3); None; None; Some (2, 2) ]);
    (Durable_tx_no_writes, [ Some (5, 5); Some (1, 2); None; None ]);
  ]

let cell v w = if w = 0 then "-" else Fmt.str "%d/%d" v w

let table1 () =
  section "Table 1: validated bugs / warnings per framework and bug class";
  let totals = Corpus.Registry.table1 () in
  Fmt.pr "%-55s" "Bug class";
  List.iter
    (fun t ->
      Fmt.pr "%-12s" (Corpus.Types.framework_name t.Corpus.Registry.framework))
    totals;
  Fmt.pr "@.";
  hr ();
  List.iter
    (fun rule ->
      if rule <> Analysis.Warning.Strand_dependence then begin
        Fmt.pr "%-55s" (Analysis.Warning.rule_description rule);
        List.iter
          (fun t ->
            let v, w =
              Option.value ~default:(0, 0)
                (List.assoc_opt rule t.Corpus.Registry.per_rule)
            in
            Fmt.pr "%-12s" (cell v w))
          totals;
        let paper =
          match List.assoc_opt rule paper_table1 with
          | None -> ""
          | Some cells ->
            String.concat " "
              (List.map
                 (function None -> "-" | Some (v, w) -> Fmt.str "%d/%d" v w)
                 cells)
        in
        Fmt.pr "  (paper: %s)@." paper
      end)
    Analysis.Warning.all_rules;
  hr ();
  Fmt.pr "%-55s" "Total";
  List.iter
    (fun t ->
      Fmt.pr "%-12s" (cell t.Corpus.Registry.validated t.Corpus.Registry.warnings))
    totals;
  Fmt.pr "  (paper: 23/26 7/9 9/11 4/4)@.";
  let v = List.fold_left (fun a t -> a + t.Corpus.Registry.validated) 0 totals in
  let w = List.fold_left (fun a t -> a + t.Corpus.Registry.warnings) 0 totals in
  Fmt.pr "Overall: %d validated / %d warnings (paper: 43/50)@." v w

(* ------------------------------------------------------------------ *)
(* Table 2: studied bugs per framework *)

let table2 () =
  section "Table 2: number of persistency bugs studied";
  Fmt.pr "%-15s %-22s %-18s %-10s@." "Framework" "Model-violation bugs"
    "Performance bugs" "Total";
  hr ();
  let studied = Corpus.Registry.studied_bugs () in
  let frameworks =
    [ Corpus.Types.Pmdk; Corpus.Types.Pmfs; Corpus.Types.Nvm_direct ]
  in
  let tv = ref 0 and tp = ref 0 in
  List.iter
    (fun fw ->
      let of_fw =
        List.filter
          (fun ((p : Corpus.Types.program), _, _) ->
            p.Corpus.Types.framework = fw)
          studied
      in
      let v =
        List.length
          (List.filter (fun (_, e, _) -> Corpus.Registry.is_violation e) of_fw)
      in
      let p = List.length of_fw - v in
      tv := !tv + v;
      tp := !tp + p;
      Fmt.pr "%-15s %-22d %-18d %-10d@." (Corpus.Types.framework_name fw) v p
        (v + p))
    frameworks;
  hr ();
  Fmt.pr "%-15s %-22d %-18d %-10d  (paper: 9 + 10 = 19)@." "Total" !tv !tp
    (!tv + !tp)

(* ------------------------------------------------------------------ *)
(* Table 3: the studied-bug list *)

let pp_bug_row (p : Corpus.Types.program) (e : Deepmc.Report.expectation) =
  Fmt.pr "%-12s %-22s %5d  %-4s [%s] %s@."
    (Corpus.Types.framework_name p.Corpus.Types.framework)
    e.Deepmc.Report.file e.Deepmc.Report.line
    (match e.Deepmc.Report.location_kind with
    | Deepmc.Report.Lib -> "LIB"
    | Deepmc.Report.Example -> "EP")
    (match Analysis.Warning.category_of_rule e.Deepmc.Report.rule with
    | Analysis.Warning.Model_violation -> "V"
    | Analysis.Warning.Performance -> "P")
    e.Deepmc.Report.description

let table3 () =
  section "Table 3: persistency bugs studied (ground truth)";
  Fmt.pr "%-12s %-22s %5s  %-4s cat description@." "Framework" "File" "Line"
    "Loc";
  hr ();
  List.iter (fun (p, e, _) -> pp_bug_row p e) (Corpus.Registry.studied_bugs ())

(* ------------------------------------------------------------------ *)
(* Tables 4 and 5: the rule catalogs *)

let print_rules category =
  List.iter
    (fun (m : Analysis.Rules.rule_meta) ->
      if Analysis.Warning.category_of_rule m.Analysis.Rules.id = category then
        Fmt.pr "@[<v 2>%-28s (models: %a)@ %s@]@."
          (Analysis.Warning.rule_description m.Analysis.Rules.id)
          Fmt.(list ~sep:(any ", ") Analysis.Model.pp)
          m.Analysis.Rules.models m.Analysis.Rules.statement)
    Analysis.Rules.catalog

let table4 () =
  section "Table 4: checking rules for persistency-model violations";
  print_rules Analysis.Warning.Model_violation

let table5 () =
  section "Table 5: checking rules for performance bugs";
  print_rules Analysis.Warning.Performance

(* ------------------------------------------------------------------ *)
(* Table 6: benchmarks *)

let table6 () =
  section "Table 6: application benchmarks";
  Fmt.pr "%-12s %-22s %s@." "Application" "Library" "Benchmark";
  hr ();
  Fmt.pr "%-12s %-22s %s@." "Memcached" "Mnemosyne (epoch)"
    (Fmt.str "memslap-style mixes (%d transactions, 4 clients)" txs);
  Fmt.pr "%-12s %-22s %s@." "Redis" "PMDK (epoch AOF)"
    (Fmt.str "redis-benchmark command mix (%d transactions, 50 clients)" txs);
  Fmt.pr "%-12s %-22s %s@." "NStore" "Low-level implts"
    (Fmt.str "YCSB A-F (%d transactions, 4 clients)" txs);
  Fmt.pr
    "(paper: 1M transactions each; set DEEPMC_BENCH_TXS=1000000 to match)@."

(* ------------------------------------------------------------------ *)
(* Table 7: system configuration *)

let table7 () =
  section "Table 7: system configuration";
  List.iter
    (fun (k, v) -> Fmt.pr "%-18s %s@." k v)
    (Runtime.Config.describe Runtime.Config.default);
  Fmt.pr "%-18s %s@." "Host"
    (Fmt.str "%s, OCaml %s, word size %d" Sys.os_type Sys.ocaml_version
       Sys.word_size)

(* ------------------------------------------------------------------ *)
(* Table 8: new bugs *)

let table8 () =
  section "Table 8: new persistency bugs detected by DeepMC";
  Fmt.pr "%-12s %-22s %5s  %-8s %-16s %-6s %s@." "Framework" "File" "Line"
    "Found by" "Consequence" "Years" "Description";
  hr ();
  let news = Corpus.Registry.new_bugs () in
  List.iter
    (fun ((p : Corpus.Types.program), (e : Deepmc.Report.expectation), d) ->
      Fmt.pr "%-12s %-22s %5d  %-8s %-16s %-6.1f %s@."
        (Corpus.Types.framework_name p.Corpus.Types.framework)
        e.Deepmc.Report.file e.Deepmc.Report.line
        (match d with
        | Corpus.Types.Static_analysis -> "static"
        | Corpus.Types.Dynamic_analysis -> "dynamic")
        (if Corpus.Registry.is_violation e then "Model Violation"
         else "Perf. Overhead")
        e.Deepmc.Report.years e.Deepmc.Report.description)
    news;
  hr ();
  let n_static =
    List.length
      (List.filter (fun (_, _, d) -> d = Corpus.Types.Static_analysis) news)
  in
  let n_dyn = List.length news - n_static in
  let n_viol =
    List.length
      (List.filter (fun (_, e, _) -> Corpus.Registry.is_violation e) news)
  in
  let years =
    List.fold_left (fun a (_, e, _) -> a +. e.Deepmc.Report.years) 0. news
    /. float_of_int (List.length news)
  in
  Fmt.pr
    "%d new bugs: %d static + %d dynamic (paper: 18 + 6); %d violations + %d \
     performance (paper: 8 + 16); mean age %.1f years (paper: 5.4)@."
    (List.length news) n_static n_dyn n_viol
    (List.length news - n_viol)
    years

(* ------------------------------------------------------------------ *)
(* Table 9: analysis ("compilation") time on application-sized programs *)

let table9 () =
  section "Table 9: analysis time, baseline front end vs. DeepMC";
  Fmt.pr "%-12s %12s %14s %12s   (paper: baseline -> with DeepMC)@."
    "Benchmark" "front (ms)" "+DeepMC (ms)" "extra (ms)";
  hr ();
  let apps =
    [
      ("Memcached", 130, "8.5 s -> 11.9 s");
      ("Redis", 700, "54.9 s -> 62.4 s");
      ("NStore", 400, "31.9 s -> 35.6 s");
    ]
  in
  List.iter
    (fun (name, nfuncs, paper) ->
      let cfg = { Corpus.Synth.default_config with nfuncs; seed = 11 } in
      let prog, _ = Corpus.Synth.generate cfg in
      let base_s = Deepmc.Driver.baseline_compile prog in
      let t0 = Deepmc.Clock.now () in
      let _ =
        Analysis.Checker.check ~roots:(Corpus.Synth.roots cfg)
          ~model:Analysis.Model.Strict prog
      in
      let full_s = Deepmc.Clock.elapsed_s t0 in
      Fmt.pr "%-12s %12.1f %14.1f %12.1f   (%s)@." name (base_s *. 1000.)
        ((base_s +. full_s) *. 1000.)
        (full_s *. 1000.)
        paper)
    apps;
  Fmt.pr
    "(programs are generated IR sized to the applications; the paper adds \
     3.4-7.5 s of checking to clang builds of C codebases -- the shape that \
     carries over is that DeepMC's whole-program checking stays within \
     interactive compile-time budgets)@."

(* ------------------------------------------------------------------ *)
(* Figure 10: the DSG of nvm_lock *)

let figure10 () =
  section "Figure 10: DSG created for the nvm_lock function";
  match Corpus.Registry.find "nvm_locks" with
  | None -> Fmt.pr "corpus program nvm_locks missing@."
  | Some p ->
    let prog = Corpus.Types.parse p in
    let dsg = Dsa.Dsg.build prog in
    Fmt.pr "%a@." Dsa.Dsg.pp_function_view (dsg, "nvm_lock")

(* ------------------------------------------------------------------ *)
(* Figure 11: interprocedural operations on traces *)

let figure11 () =
  section "Figure 11: interprocedural trace merging (nvm_free_callback)";
  match Corpus.Registry.find "nvm_heap" with
  | None -> Fmt.pr "corpus program nvm_heap missing@."
  | Some p ->
    let prog = Corpus.Types.parse p in
    let dsg = Dsa.Dsg.build prog in
    let intra_of name =
      match Nvmir.Prog.find_func prog name with
      | Some f -> Analysis.Trace.collect_function Analysis.Config.default dsg f
      | None -> []
    in
    Fmt.pr "-- callee trace (nvm_free_blk):@.";
    List.iter
      (fun t -> Fmt.pr "%a@." Analysis.Trace.pp t)
      (intra_of "nvm_free_blk");
    Fmt.pr "-- caller trace before merging (nvm_free_callback):@.";
    List.iter
      (fun t -> Fmt.pr "%a@." Analysis.Trace.pp t)
      (intra_of "nvm_free_callback");
    Fmt.pr "-- merged trace from the driver root:@.";
    let merged =
      Analysis.Trace.collect dsg prog ~roots:[ "nvm_heap_driver_free" ]
    in
    List.iter
      (fun (_, ts) -> List.iter (fun t -> Fmt.pr "%a@." Analysis.Trace.pp t) ts)
      merged

(* ------------------------------------------------------------------ *)
(* Figure 12: runtime overhead of the dynamic analysis *)

let paper_bands =
  [ ("Memcached", (1.7, 14.2)); ("Redis", (2.5, 16.1)); ("NStore", (3.12, 15.7)) ]

(* Render an overhead bar: one '#' per half percent, capped at 60. *)
let bar pct =
  let n = max 0 (min 60 (int_of_float (pct *. 2.))) in
  String.make n '#'

(* Client-domain scaling of the pool-driven harness: the same workload
   and transaction count at 1 client vs N. On a single-core host the
   pool degrades to sequential in-submitter execution and the speedup
   stays ~1x; the measurement is recorded either way. *)
let figure12_scaling () =
  let mix = List.hd Workloads.Memslap.mixes in
  let label, _ = mix in
  let clients = 4 in
  let run n =
    (Workloads.Memslap.comparison ~seed:bench_seed ~clients:n ~txs mix)
      .Workloads.Harness.baseline
      .Workloads.Harness.throughput
  in
  let tps1 = run 1 in
  let tpsn = run clients in
  (label, clients, tps1, tpsn, tpsn /. tps1)

let figure12 ?(json = false) () =
  section "Figure 12: throughput impact of the dynamic analysis";
  Fmt.pr "execution: concurrent client domains on the shared pool (%d)@."
    (Pool.default_size ());
  let series =
    [
      ( "Memcached", 4,
        List.map
          (fun m -> Workloads.Memslap.comparison ~seed:bench_seed ~clients:4 ~txs m)
          Workloads.Memslap.mixes );
      ( "Redis", 50,
        List.map
          (fun m ->
            Workloads.Redis_bench.comparison ~seed:bench_seed ~clients:50 ~txs m)
          Workloads.Redis_bench.mixes );
      ( "NStore", 4,
        List.map
          (fun m -> Workloads.Ycsb.comparison ~seed:bench_seed ~clients:4 ~txs m)
          Workloads.Ycsb.mixes );
    ]
  in
  List.iter
    (fun (app, _clients, comps) ->
      Fmt.pr "@.%s (%d transactions per mix):@." app txs;
      List.iter
        (fun c -> Fmt.pr "  %a@." Workloads.Harness.pp_comparison c)
        comps;
      Fmt.pr "  overhead (%% of baseline throughput):@.";
      List.iter
        (fun (c : Workloads.Harness.comparison) ->
          Fmt.pr "    %-28s |%-32s| %5.1f%%@."
            c.Workloads.Harness.baseline.Workloads.Harness.label
            (bar c.Workloads.Harness.overhead_pct)
            c.Workloads.Harness.overhead_pct)
        comps;
      let ovs = List.map (fun c -> c.Workloads.Harness.overhead_pct) comps in
      let lo = List.fold_left min infinity ovs
      and hi = List.fold_left max neg_infinity ovs in
      let plo, phi = List.assoc app paper_bands in
      Fmt.pr
        "  measured overhead band: %.1f%% .. %.1f%% (paper: %.1f%% .. %.1f%%)@."
        (max 0. lo) hi plo phi)
    series;
  let scale_mix, scale_clients, tps1, tpsn, speedup = figure12_scaling () in
  Fmt.pr "@.client-domain scaling (%s, %d tx baseline, no checker):@."
    scale_mix txs;
  Fmt.pr "  1 client:  %10.0f tx/s@." tps1;
  Fmt.pr "  %d clients: %10.0f tx/s (%.2fx)@." scale_clients tpsn speedup;
  if Pool.recommended_size () = 1 then
    Fmt.pr
      "  (single-core host: the pool runs client tasks sequentially, so \
       ~1x is expected here)@.";
  if json then begin
    let all_overheads =
      List.concat_map
        (fun (_, _, comps) ->
          List.map (fun c -> c.Workloads.Harness.overhead_pct) comps)
        series
    in
    let band_lo = List.fold_left min infinity all_overheads
    and band_hi = List.fold_left max neg_infinity all_overheads in
    (* a small telemetry-enabled probe run, separate from the measured
       comparisons above so the shadow/lock counters cost nothing there *)
    let telemetry =
      Obs.Metrics.reset ();
      Obs.set_enabled true;
      ignore
        (Workloads.Memslap.comparison ~seed:bench_seed ~clients:4
           ~txs:(min txs 2000) (List.hd Workloads.Memslap.mixes));
      Obs.set_enabled false;
      Deepmc.Json_report.of_metrics (Obs.Metrics.snapshot ())
    in
    let oc = open_out "BENCH_dynamic.json" in
    let mix_obj app (c : Workloads.Harness.comparison) =
      Fmt.str
        "    {\"app\": \"%s\", \"label\": \"%s\", \"clients\": %d, \
         \"baseline_tps\": %.0f, \"checked_tps\": %.0f, \"overhead_pct\": \
         %.2f}"
        app c.Workloads.Harness.baseline.Workloads.Harness.label
        c.Workloads.Harness.baseline.Workloads.Harness.clients
        c.Workloads.Harness.baseline.Workloads.Harness.throughput
        c.Workloads.Harness.with_checker.Workloads.Harness.throughput
        c.Workloads.Harness.overhead_pct
    in
    let mixes_json =
      List.concat_map
        (fun (app, _, comps) -> List.map (mix_obj app) comps)
        series
      |> String.concat ",\n"
    in
    Printf.fprintf oc
      "{\n\
       \  \"txs\": %d,\n\
       \  \"pool_domains\": %d,\n\
       \  \"mixes\": [\n\
       %s\n\
       \  ],\n\
       \  \"overhead_band_pct\": {\"min\": %.2f, \"max\": %.2f},\n\
       \  \"paper_band_pct\": {\"min\": 1.7, \"max\": 16.1},\n\
       \  \"scaling\": {\"mix\": \"%s\", \"txs\": %d, \"clients\": %d, \
       \"baseline_tps\": [%.0f, %.0f], \"speedup\": %.2f},\n\
       \  \"telemetry\": %s\n\
       }\n"
      txs (Pool.default_size ()) mixes_json (max 0. band_lo) band_hi scale_mix
      txs scale_clients tps1 tpsn speedup
      (Deepmc.Json_report.to_string telemetry);
    close_out oc;
    Fmt.pr "wrote BENCH_dynamic.json@."
  end

(* ------------------------------------------------------------------ *)
(* Fixing the performance bugs improves application performance (5.1) *)

let perffix () =
  section "Performance-bug fixes: buggy vs fixed (5.1)";
  Fmt.pr
    "Cost-model cycles of the persistence operations, for the corpus@.\
     programs whose warnings are dominated by performance bugs:@.@.";
  Fmt.pr "%-22s %12s %12s %10s@." "program" "buggy (cyc)" "fixed (cyc)"
    "improved";
  hr ();
  (* programs whose fixed variant removes redundant persistence work;
     correctness fixes (added fences/logging) cost cycles and are not
     performance fixes, so they are excluded like in the paper *)
  let perf_programs =
    [ "pminvaders"; "rbtree_map"; "nvm_heap"; "nvm_locks"; "pmfs_xip";
      "pmfs_super"; "chhash"; "chash" ]
  in
  List.iter
    (fun name ->
      match Corpus.Registry.find name with
      | None -> ()
      | Some p ->
        (match Corpus.Types.parse_fixed p with
        | None -> ()
        | Some fixed_prog ->
          if Nvmir.Prog.find_func fixed_prog p.Corpus.Types.entry <> None
          then begin
            let run prog =
              let pmem = Runtime.Pmem.create () in
              let interp = Runtime.Interp.create ~pmem prog in
              (try
                 ignore
                   (Runtime.Interp.run ~entry:p.Corpus.Types.entry
                      ~args:p.Corpus.Types.entry_args interp)
               with Runtime.Interp.Runtime_error _ -> ());
              (Runtime.Pmem.stats pmem).Runtime.Pmem.cycles
            in
            let buggy_c = run (Corpus.Types.parse p) in
            let fixed_c = run fixed_prog in
            let improved =
              100. *. (1. -. (float_of_int fixed_c /. float_of_int buggy_c))
            in
            Fmt.pr "%-22s %12d %12d %9.1f%%@." p.Corpus.Types.name buggy_c
              fixed_c improved
          end))
    perf_programs;
  hr ();
  (* application-level: a key-value store whose set operation carries a
     redundant whole-entry flush (the Table 5 "multiple flushes"
     pattern), measured over many operations *)
  let app_cycles ~buggy =
    let pmem = Runtime.Pmem.create () in
    let kv = Workloads.Kvstore.create ~capacity:4096 pmem in
    let rng = Workloads.Gen.rng 99 in
    for i = 1 to 20_000 do
      let key = 1 + Workloads.Gen.uniform rng ~keyspace:1024 in
      ignore (Workloads.Kvstore.set kv key i);
      if buggy then begin
        (* the seeded performance bug: flush the entry again *)
        Runtime.Pmem.flush_range pmem ~obj_id:0
          ~first_slot:0 ~nslots:2 ();
        Runtime.Pmem.fence pmem ()
      end
    done;
    (Runtime.Pmem.stats pmem).Runtime.Pmem.cycles
  in
  let buggy_c = app_cycles ~buggy:true in
  let fixed_c = app_cycles ~buggy:false in
  Fmt.pr
    "application-level (20k KV sets, redundant flush bug): %d -> %d cycles, \
     %.1f%% improvement (paper: up to 43%%)@."
    buggy_c fixed_c
    (100. *. (1. -. (float_of_int fixed_c /. float_of_int buggy_c)))

(* ------------------------------------------------------------------ *)
(* Completeness (5.3): all studied bugs are re-detected *)

let completeness () =
  section "Completeness (5.3): detection of the studied bugs";
  let found = ref 0 and total = ref 0 in
  List.iter
    (fun (p : Corpus.Types.program) ->
      let _, score = Corpus.Registry.analyze p in
      List.iter
        (fun ((e : Deepmc.Report.expectation), _) ->
          if e.Deepmc.Report.validated && not e.Deepmc.Report.is_new then begin
            incr total;
            if List.exists (fun (e', _) -> e' = e) score.Deepmc.Report.matched
            then incr found
            else
              Fmt.pr "MISSED: %s %s:%d@." p.Corpus.Types.name
                e.Deepmc.Report.file e.Deepmc.Report.line
          end)
        p.Corpus.Types.expectations)
    Corpus.Registry.all;
  Fmt.pr "studied bugs re-detected: %d/%d (paper: 19/19)@." !found !total

(* ------------------------------------------------------------------ *)
(* False positives (5.4) *)

let falsepos () =
  section "False positives (5.4)";
  let totals = Corpus.Registry.table1 () in
  let v = List.fold_left (fun a t -> a + t.Corpus.Registry.validated) 0 totals in
  let w = List.fold_left (fun a t -> a + t.Corpus.Registry.warnings) 0 totals in
  Fmt.pr "false positives: %d of %d warnings = %.0f%% (paper: ~14%%)@." (w - v)
    w
    (100. *. float_of_int (w - v) /. float_of_int w);
  let summary =
    List.fold_left
      (fun acc (p : Corpus.Types.program) ->
        let _, score = Corpus.Registry.analyze p in
        Analysis.Summary.merge acc
          (Analysis.Summary.of_warnings score.Deepmc.Report.warnings))
      Analysis.Summary.empty Corpus.Registry.all
  in
  Fmt.pr "@.%a@." Analysis.Summary.pp summary;
  Fmt.pr "@.benign patterns the conservative analysis flags:@.";
  List.iter
    (fun ((p : Corpus.Types.program), (e : Deepmc.Report.expectation), _) ->
      Fmt.pr "  %-18s %-20s %5d  %s@." p.Corpus.Types.name e.Deepmc.Report.file
        e.Deepmc.Report.line e.Deepmc.Report.description)
    (Corpus.Registry.benign_patterns ())

(* ------------------------------------------------------------------ *)
(* Ablations *)

let ablation () =
  section "Ablation: field sensitivity";
  let run ~field_sensitive =
    let totals = Corpus.Registry.table1 ~field_sensitive () in
    List.fold_left
      (fun (v, w) t ->
        (v + t.Corpus.Registry.validated, w + t.Corpus.Registry.warnings))
      (0, 0) totals
  in
  let v_fs, w_fs = run ~field_sensitive:true in
  let v_fi, w_fi = run ~field_sensitive:false in
  Fmt.pr "field-sensitive DSA:   %d validated / %d warnings@." v_fs w_fs;
  Fmt.pr "field-insensitive DSA: %d validated / %d warnings@." v_fi w_fi;
  Fmt.pr
    "field sensitivity recovers %d bugs (paper: 31%% of performance bugs \
     need it)@."
    (v_fs - v_fi);

  section "Ablation: path-exploration bounds";
  List.iter
    (fun max_paths ->
      let config = { Analysis.Config.default with Analysis.Config.max_paths } in
      let totals = Corpus.Registry.table1 ~config () in
      let v =
        List.fold_left (fun a t -> a + t.Corpus.Registry.validated) 0 totals
      in
      Fmt.pr "max_paths=%-4d -> %d validated bugs@." max_paths v)
    [ 1; 2; 4; 256 ];

  section "Ablation: PMTest-like baseline (annotation-driven, generic rules)";
  let deepmc_found = ref 0 and baseline_found = ref 0 and annotations = ref 0 in
  List.iter
    (fun (p : Corpus.Types.program) ->
      let prog = Corpus.Types.parse p in
      (* best case for the baseline: the developer annotates everything *)
      let annotated = Nvmir.Prog.func_names prog in
      annotations :=
        !annotations + Deepmc.Baseline.annotation_sites prog ~annotated;
      let b = Deepmc.Baseline.check ~annotated prog in
      let score_b =
        Deepmc.Report.score (Corpus.Types.expectations p)
          b.Deepmc.Baseline.warnings
      in
      baseline_found := !baseline_found + Deepmc.Report.validated_count score_b;
      let _, score = Corpus.Registry.analyze p in
      deepmc_found := !deepmc_found + Deepmc.Report.validated_count score)
    Corpus.Registry.all;
  Fmt.pr "DeepMC:   %d validated bugs, developer effort: 1 compiler flag@."
    !deepmc_found;
  Fmt.pr "baseline: %d validated bugs, developer effort: %d annotation sites@."
    !baseline_found !annotations;

  section "Ablation: scalability with program size";
  List.iter
    (fun nfuncs ->
      let cfg = { Corpus.Synth.default_config with nfuncs; seed = 3 } in
      let prog, _ = Corpus.Synth.generate cfg in
      let t0 = Deepmc.Clock.now () in
      let r =
        Analysis.Checker.check ~roots:(Corpus.Synth.roots cfg)
          ~model:Analysis.Model.Strict prog
      in
      let dt = Deepmc.Clock.elapsed_s t0 in
      Fmt.pr "%5d funcs (%6d instrs): %7.1f ms, %4d traces@." nfuncs
        (Nvmir.Prog.total_instrs prog)
        (dt *. 1000.) r.Analysis.Checker.trace_count)
    [ 50; 100; 200; 400; 800 ];

  section "Ablation: cache-line granularity (2.1)";
  (* flush cost and crash exposure both depend on the line size the
     hardware writes back; sweep the simulator's line width under the
     KV-store workload *)
  List.iter
    (fun cacheline_slots ->
      let config = { Runtime.Config.default with Runtime.Config.cacheline_slots } in
      let pmem = Runtime.Pmem.create ~config () in
      let kv = Workloads.Kvstore.create ~capacity:2048 pmem in
      let rng = Workloads.Gen.rng 5 in
      for i = 1 to 20_000 do
        ignore (Workloads.Kvstore.set kv (1 + Workloads.Gen.uniform rng ~keyspace:512) i)
      done;
      let s = Runtime.Pmem.stats pmem in
      Fmt.pr
        "line=%-2d slots: %7d cycles, %6d lines written back, %5d slots to NVM@."
        cacheline_slots s.Runtime.Pmem.cycles s.Runtime.Pmem.flushed_lines
        s.Runtime.Pmem.nvm_writes)
    [ 1; 2; 4; 8; 16 ];
  Fmt.pr
    "(wider lines amortize flush commands; the simulator tracks dirtiness \
     per slot, so slots written stay exact -- on real hardware whole lines \
     write back, which is why the Table 5 redundant-flush bugs cost 2-4x)@.";

  section "Ablation: seeded-bug recall on synthetic programs";
  List.iter
    (fun seed ->
      let cfg =
        {
          Corpus.Synth.default_config with
          nfuncs = 120;
          seed;
          buggy_fraction_pct = 25;
        }
      in
      let prog, seeded = Corpus.Synth.generate cfg in
      let r =
        Analysis.Checker.check ~roots:(Corpus.Synth.roots cfg)
          ~model:Analysis.Model.Strict prog
      in
      Fmt.pr "seed=%-3d seeded=%-3d warnings=%d@." seed seeded
        (List.length r.Analysis.Checker.warnings))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Strand-persistency workload (4.4): batched barriers vs per-op, and
   the dynamic checker's cost on a strand-annotated store *)

let strand () =
  section "Strand persistency: barrier batching and checking cost (4.4)";
  let run ~batch ~checked =
    let pmem = Runtime.Pmem.create () in
    let checker =
      if checked then begin
        let c = Runtime.Dynamic.create ~model:Analysis.Model.Strand () in
        Runtime.Dynamic.attach c pmem;
        Some c
      end
      else None
    in
    let kv =
      Workloads.Kvstore_strand.create ~capacity:4096 ~partitions:16 ~batch pmem
    in
    let rng = Workloads.Gen.rng 77 in
    let n = txs / 2 in
    let t0 = Deepmc.Clock.now () in
    for i = 1 to n do
      ignore (Workloads.Gen.simulate_work rng ~amount:2500);
      ignore
        (Workloads.Kvstore_strand.set kv
           (1 + Workloads.Gen.uniform rng ~keyspace:1024)
           i)
    done;
    Workloads.Kvstore_strand.quiesce kv;
    let dt = Deepmc.Clock.elapsed_s t0 in
    let stats = Runtime.Pmem.stats pmem in
    ( float_of_int n /. dt,
      stats.Runtime.Pmem.fences,
      Option.map Runtime.Dynamic.summary checker )
  in
  List.iter
    (fun batch ->
      let base_tps, fences, _ = run ~batch ~checked:false in
      let chk_tps, _, summary = run ~batch ~checked:true in
      Fmt.pr
        "batch=%-3d %8.0f tx/s baseline | %8.0f tx/s checked | overhead \
         %5.1f%% | %6d barriers%s@."
        batch base_tps chk_tps
        (100. *. (1. -. (chk_tps /. base_tps)))
        fences
        (match summary with
        | Some s -> Fmt.str " | races %d" s.Runtime.Dynamic.waw
        | None -> ""))
    [ 1; 4; 16; 64 ];
  Fmt.pr
    "(larger strand batches amortize persist barriers -- the concurrency \
     strand persistency exists for -- while the happens-before checker's \
     relative cost stays in the Figure 12 band)@."

(* ------------------------------------------------------------------ *)
(* Multicore scaling of the analysis driver *)

let parallel () =
  section "Parallel analysis: corpus sweep across OCaml 5 domains";
  let cores = Domain.recommended_domain_count () in
  Fmt.pr "host reports %d available core(s)@." cores;
  let jobs =
    List.map
      (fun (p : Corpus.Types.program) ->
        ( p.Corpus.Types.name,
          Corpus.Types.model p,
          Corpus.Types.parse p,
          p.Corpus.Types.roots ))
      Corpus.Registry.all
  in
  let jobs = List.concat (List.init 8 (fun _ -> jobs)) in
  Fmt.pr "%d analysis jobs (%d corpus programs x 8)@." (List.length jobs)
    (List.length Corpus.Registry.all);
  let time domains =
    let t0 = Deepmc.Clock.now () in
    let rs = Deepmc.Parallel.check_many ~domains jobs in
    let dt = Deepmc.Clock.elapsed_s t0 in
    let warnings =
      List.fold_left
        (fun a (r : Deepmc.Parallel.corpus_result) ->
          a + List.length r.Deepmc.Parallel.warnings)
        0 rs
    in
    (dt, warnings)
  in
  let base, base_w = time 1 in
  Fmt.pr "%2d domain(s): %6.1f ms (%d warnings)  speedup 1.00x@." 1
    (base *. 1000.) base_w;
  if cores <= 1 then
    Fmt.pr
      "single-core host: the domain pool degrades gracefully to sequential \
       execution; run on a multicore machine to observe scaling (results are \
       identical either way -- see the parallel test suite)@."
  else
    List.iter
      (fun domains ->
        let dt, w = time domains in
        Fmt.pr "%2d domain(s): %6.1f ms (%d warnings)  speedup %.2fx@." domains
          (dt *. 1000.) w (base /. dt))
      (List.sort_uniq compare [ 2; 4; cores - 1 ])

(* ------------------------------------------------------------------ *)
(* Crash-image exploration: throughput and pruning of Crash_space *)

let crashspace () =
  section "Crash-image exploration: images/sec and pruning (Crash_space)";
  match Corpus.Registry.find "hashmap" with
  | None -> Fmt.pr "corpus program hashmap missing@."
  | Some p ->
    let fixed =
      match Corpus.Types.parse_fixed p with
      | Some f -> f
      | None -> Corpus.Types.parse p
    in
    let synth pct =
      let cfg =
        {
          Corpus.Synth.default_config with
          Corpus.Synth.nfuncs = 6;
          seed = 2;
          buggy_fraction_pct = pct;
        }
      in
      fst (Corpus.Synth.generate cfg)
    in
    let variants =
      [
        ("hashmap (buggy)", p.Corpus.Types.entry, p.Corpus.Types.entry_args,
         Corpus.Types.parse p);
        ("hashmap (fixed)", p.Corpus.Types.entry, p.Corpus.Types.entry_args,
         fixed);
        ("synth-6f (buggy)", "main", [], synth 100);
        ("synth-6f (fixed)", "main", [], synth 0);
      ]
    in
    Fmt.pr "%-18s %6s %8s %9s %8s %12s %8s@." "variant" "bound" "images"
      "distinct" "pruning" "images/sec" "incons.";
    hr ();
    List.iter
      (fun (name, entry, args, prog) ->
        List.iter
          (fun bound ->
            let t0 = Deepmc.Clock.now () in
            let r =
              Deepmc.Crash_sweep.explore_program ~bound ~entry ~args prog
            in
            let dt = Deepmc.Clock.elapsed_s t0 in
            Fmt.pr "%-18s %6d %8d %9d %7.0f%% %12.0f %8d  (%.1f ms)@." name
              bound r.Runtime.Crash_space.images_enumerated
              r.Runtime.Crash_space.images_distinct
              (100. *. Runtime.Crash_space.pruning_ratio r)
              (float_of_int r.Runtime.Crash_space.images_enumerated /. dt)
              r.Runtime.Crash_space.inconsistent (dt *. 1000.))
          [ 16; 256; 1024 ])
      variants;
    Fmt.pr
      "(the prefix oracle walks one image per crash point; the explorer \
       covers every reachable write-back subset up to the bound, and \
       persistence-equivalence hashing collapses subsets that differ only \
       in clean or overlapping lines)@."

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the analysis stages *)

let micro () =
  section "Microbenchmarks (bechamel): analysis stages and runtime ops";
  let open Bechamel in
  let cfg_small = { Corpus.Synth.default_config with nfuncs = 40; seed = 5 } in
  let prog, _ = Corpus.Synth.generate cfg_small in
  let dsg = Dsa.Dsg.build prog in
  let tests =
    [
      Test.make ~name:"parse-nvm_locks"
        (Staged.stage (fun () ->
             match Corpus.Registry.find "nvm_locks" with
             | Some p -> ignore (Corpus.Types.parse p)
             | None -> ()));
      Test.make ~name:"dsa-build-40f"
        (Staged.stage (fun () -> ignore (Dsa.Dsg.build prog)));
      Test.make ~name:"trace-collect-40f"
        (Staged.stage (fun () ->
             ignore
               (Analysis.Trace.collect dsg prog
                  ~roots:(Corpus.Synth.roots cfg_small))));
      Test.make ~name:"full-check-40f"
        (Staged.stage (fun () ->
             ignore
               (Analysis.Checker.check ~roots:(Corpus.Synth.roots cfg_small)
                  ~model:Analysis.Model.Strict prog)));
      Test.make ~name:"pmem-set-flush-fence"
        (let pmem = Runtime.Pmem.create () in
         let tenv = Nvmir.Ty.env_create () in
         let obj =
           Runtime.Pmem.alloc pmem ~tenv ~persistent:true
             (Nvmir.Ty.Array (Nvmir.Ty.Int, 64))
         in
         Staged.stage (fun () ->
             Runtime.Pmem.write pmem { Runtime.Pmem.obj_id = obj; slot = 3 }
               (Runtime.Value.Vint 1);
             Runtime.Pmem.flush_range pmem ~obj_id:obj ~first_slot:3 ~nslots:1
               ();
             Runtime.Pmem.fence pmem ()));
      Test.make ~name:"kvstore-set"
        (let pmem = Runtime.Pmem.create () in
         let kv = Workloads.Kvstore.create ~capacity:1024 pmem in
         let k = ref 0 in
         Staged.stage (fun () ->
             incr k;
             ignore (Workloads.Kvstore.set kv (1 + (!k land 511)) !k)));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] -> Fmt.pr "%-24s %14.1f ns/run@." name ns
          | Some _ | None -> Fmt.pr "%-24s (no estimate)@." name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Static-checker throughput: streaming engine + domain pool vs the
   legacy materialize-then-check pipeline.  `perf --json` additionally
   writes BENCH_checker.json for EXPERIMENTS.md / CI. *)

let perf ?(json = false) () =
  section "Checker throughput: streaming engine + persistent domain pool";
  let corpus_jobs =
    List.map
      (fun (p : Corpus.Types.program) ->
        (Corpus.Types.model p, Corpus.Types.parse p, p.Corpus.Types.roots))
      Corpus.Registry.all
  in
  let synth_jobs =
    List.map
      (fun seed ->
        let cfg = { Corpus.Synth.default_config with nfuncs = 80; seed } in
        let prog, _ = Corpus.Synth.generate cfg in
        (Analysis.Model.Strict, prog, Corpus.Synth.roots cfg))
      [ 21; 22; 23 ]
  in
  let jobs = corpus_jobs @ synth_jobs in
  let sweep engine =
    List.fold_left
      (fun (ev, pk) (model, prog, roots) ->
        let config = { Analysis.Config.default with Analysis.Config.engine } in
        let r = Analysis.Checker.check ~config ~roots ~model prog in
        (ev + r.Analysis.Checker.event_count,
         max pk r.Analysis.Checker.peak_paths))
      (0, 0) jobs
  in
  let measure ~engine ~domains =
    Pool.set_default_size domains;
    ignore (sweep engine) (* warm up: pool domains, parser, minor heap *);
    let best = ref infinity and events = ref 0 and peak = ref 0 in
    for _ = 1 to 3 do
      let t0 = Deepmc.Clock.now () in
      let ev, pk = sweep engine in
      let dt = Deepmc.Clock.elapsed_s t0 in
      if dt < !best then best := dt;
      events := ev;
      peak := pk
    done;
    (!best, !events, !peak)
  in
  let saved = Pool.default_size () in
  let domains = Pool.recommended_size () in
  let legacy_s, legacy_ev, legacy_peak =
    measure ~engine:Analysis.Config.Materialized ~domains:1
  in
  let s1_s, s1_ev, s1_peak =
    measure ~engine:Analysis.Config.Streaming ~domains:1
  in
  let sd_s, sd_ev, sd_peak =
    (* on a single-core host the default-domain config IS the 1-domain
       config; re-measuring would just print noise *)
    if domains = 1 then (s1_s, s1_ev, s1_peak)
    else measure ~engine:Analysis.Config.Streaming ~domains
  in
  Pool.set_default_size saved;
  let rate ev s = float_of_int ev /. s in
  let row label ev s peak =
    Fmt.pr "%-34s %9.1f ms %12.0f events/s %6d peak paths@." label
      (s *. 1000.) (rate ev s) peak
  in
  Fmt.pr "workload: %d programs, %d events per sweep, best of 3@."
    (List.length jobs) legacy_ev;
  hr ();
  row "legacy (materialized, 1 domain)" legacy_ev legacy_s legacy_peak;
  row "streaming (1 domain)" s1_ev s1_s s1_peak;
  row (Fmt.str "streaming (%d domains)" domains) sd_ev sd_s sd_peak;
  hr ();
  let speedup_legacy = legacy_s /. sd_s in
  let speedup_1d = s1_s /. sd_s in
  Fmt.pr "speedup vs legacy: %.2fx; speedup vs 1 domain: %.2fx@."
    speedup_legacy speedup_1d;
  Fmt.pr "peak live paths: %d streaming vs %d materialized@." sd_peak
    legacy_peak;
  if sd_ev <> legacy_ev || s1_ev <> legacy_ev then
    Fmt.pr "WARNING: engines disagree on event counts (%d/%d/%d)@." legacy_ev
      s1_ev sd_ev;
  if json then begin
    (* one untimed telemetry-enabled streaming sweep; kept out of the
       measured runs so instrument cost never touches the numbers *)
    let telemetry =
      Obs.Metrics.reset ();
      Obs.set_enabled true;
      ignore (sweep Analysis.Config.Streaming);
      Obs.set_enabled false;
      Deepmc.Json_report.of_metrics (Obs.Metrics.snapshot ())
    in
    let oc = open_out "BENCH_checker.json" in
    let bench label ev s peak =
      Fmt.str
        "  \"%s\": {\"elapsed_ms\": %.1f, \"events_per_sec\": %.0f, \
         \"peak_paths\": %d}"
        label (s *. 1000.) (rate ev s) peak
    in
    Printf.fprintf oc
      "{\n\
       \  \"workload\": {\"programs\": %d, \"events\": %d},\n\
       \  \"domains\": %d,\n\
       %s,\n\
       %s,\n\
       %s,\n\
       \  \"speedup_vs_legacy\": %.2f,\n\
       \  \"speedup_vs_1_domain\": %.2f,\n\
       \  \"telemetry\": %s\n\
       }\n"
      (List.length jobs) legacy_ev domains
      (bench "legacy_materialized_1_domain" legacy_ev legacy_s legacy_peak)
      (bench "streaming_1_domain" s1_ev s1_s s1_peak)
      (bench "streaming_default_domains" sd_ev sd_s sd_peak)
      speedup_legacy speedup_1d
      (Deepmc.Json_report.to_string telemetry);
    close_out oc;
    Fmt.pr "wrote BENCH_checker.json@."
  end

(* ------------------------------------------------------------------ *)
(* Injection recall/precision: the mutation-based evaluation of all
   three detectors (lib/inject).  `recall --json` writes
   BENCH_inject.json for EXPERIMENTS.md / CI. *)

let recall ?(json = false) () =
  section "Injection campaign: per-operator x per-detector recall/precision";
  let seed =
    match Sys.getenv_opt "DEEPMC_BENCH_SEED" with
    | Some s -> (try int_of_string s with _ -> 1)
    | None -> 1
  in
  let bases =
    Inject.Evaluate.corpus_bases () @ Inject.Evaluate.exemplar_bases ()
  in
  if json then begin
    (* telemetry rides along with the measured campaign: the scoring
       latency histograms only exist if the instruments are live *)
    Obs.Metrics.reset ();
    Obs.set_enabled true
  end;
  let s = Inject.Evaluate.run ~seed bases in
  if json then Obs.set_enabled false;
  Fmt.pr "%a" Inject.Evaluate.pp_summary s;
  if json then begin
    let j =
      match Inject.Evaluate.to_json s with
      | Deepmc.Json_report.Obj fields ->
        Deepmc.Json_report.Obj
          (fields
          @ [
              ( "telemetry",
                Deepmc.Json_report.of_metrics (Obs.Metrics.snapshot ()) );
            ])
      | j -> j
    in
    let oc = open_out "BENCH_inject.json" in
    let ppf = Format.formatter_of_out_channel oc in
    Fmt.pf ppf "%a@." Deepmc.Json_report.pp j;
    close_out oc;
    Fmt.pr "wrote BENCH_inject.json@."
  end

(* ------------------------------------------------------------------ *)
(* Recovery-tier recall: the media-corruption mutation operators
   scored against the recovery executor (lib/recover) over the
   dedicated recovery corpus.  `recover --json` writes
   BENCH_recover.json for EXPERIMENTS.md / CI: the base-verification
   rows (unguarded base warns, CRC-guarded base verifies clean) plus
   the per-operator recall row the `make verify` gate checks. *)

let recover_bench ?(json = false) () =
  section "Recovery tier: corruption-operator recall via lib/recover";
  let seed =
    match Sys.getenv_opt "DEEPMC_BENCH_SEED" with
    | Some s -> (try int_of_string s with _ -> 1)
    | None -> 1
  in
  if json then begin
    Obs.Metrics.reset ();
    Obs.set_enabled true
  end;
  let bases = Inject.Evaluate.recovery_bases () in
  let s = Inject.Evaluate.run_recovery ~seed bases in
  if json then Obs.set_enabled false;
  Fmt.pr "%a" Inject.Evaluate.pp_recovery_summary s;
  if json then begin
    let j =
      match Inject.Evaluate.recovery_to_json s with
      | Deepmc.Json_report.Obj fields ->
        Deepmc.Json_report.Obj
          (fields
          @ [
              ( "telemetry",
                Deepmc.Json_report.of_metrics (Obs.Metrics.snapshot ()) );
            ])
      | j -> j
    in
    let oc = open_out "BENCH_recover.json" in
    let ppf = Format.formatter_of_out_channel oc in
    Fmt.pf ppf "%a@." Deepmc.Json_report.pp j;
    close_out oc;
    Fmt.pr "wrote BENCH_recover.json@."
  end

(* ------------------------------------------------------------------ *)
(* Interleaving fuzzer vs random scheduling over the false-negative
   corpus (lib/fuzz).  `fuzz --json` writes BENCH_fuzz.json; the
   headline is how many of the injection campaign's known misses the
   coverage-guided campaign recovers vs a random-schedule ablation
   under the same budget. *)

let fuzz_bench ?(json = false) () =
  section "Interleaving fuzzer: recovery of known misses, guided vs random";
  let seed =
    match Sys.getenv_opt "DEEPMC_BENCH_SEED" with
    | Some s -> (try int_of_string s with _ -> 1)
    | None -> 1
  in
  let budget =
    match Sys.getenv_opt "DEEPMC_FUZZ_BUDGET" with
    | Some s -> (try int_of_string s with _ -> 24)
    | None -> 24
  in
  (* re-derive the false-negative corpus with the offset lattice
     ABLATED: the static tier no longer misses these mutants (the
     offset-aware DSG resolves the pointer-arith aliases), so the
     historical §5.4 blind-spot population — the fuzzer's benchmark —
     only exists under the legacy configuration *)
  let bases =
    Inject.Evaluate.corpus_bases ~offset_sensitive:false ()
    @ Inject.Evaluate.exemplar_bases ~offset_sensitive:false ()
  in
  (* mutants the expected tier's detector misses (the crash explorer is
     irrelevant to tier misses and only costs time here) *)
  let s = Inject.Evaluate.run ~crash:false ~seed bases in
  let fns = Inject.Evaluate.false_negatives s in
  if json then begin
    Obs.Metrics.reset ();
    Obs.set_enabled true
  end;
  let rows =
    List.filter_map
      (fun (mr : Inject.Evaluate.mutant_result) ->
        let m = mr.Inject.Evaluate.mutant in
        match
          List.find_opt
            (fun (b : Inject.Evaluate.base) ->
              String.equal b.Inject.Evaluate.bname m.Inject.Mutation.base)
            bases
        with
        | Some b when b.Inject.Evaluate.entry <> None ->
          let entry = Option.get b.Inject.Evaluate.entry in
          let target prog tname =
            {
              Fuzz.Campaign.tname;
              prog;
              model = m.Inject.Mutation.model;
              entry;
              entry_args = b.Inject.Evaluate.entry_args;
              clients = 1;
            }
          in
          let campaign mode prog tname =
            Fuzz.Campaign.run ~seed ~budget ~mode (target prog tname)
          in
          let score mode =
            (* the base program's campaign under the same parameters
               subtracts pre-existing noise, so a recovery is a warning
               the mutation itself exposed *)
            let base_o =
              campaign mode b.Inject.Evaluate.prog m.Inject.Mutation.base
            in
            let o = campaign mode m.Inject.Mutation.prog m.Inject.Mutation.id in
            ( Fuzz.Campaign.recovers ~truth:m.Inject.Mutation.truth
                ~base:base_o o,
              o )
          in
          let guided_hit, guided_o = score Fuzz.Campaign.Guided in
          let random_hit, random_o = score Fuzz.Campaign.Random in
          Some (m, guided_hit, guided_o, random_hit, random_o)
        | _ -> None)
      fns
  in
  if json then Obs.set_enabled false;
  Fmt.pr "budget: %d schedules per campaign, seed %d@." budget seed;
  Fmt.pr "%-34s %-14s %6s %8s %8s@." "mutant" "operator" "bnds" "guided"
    "random";
  hr ();
  List.iter
    (fun ((m : Inject.Mutation.mutant), g, go, r, _) ->
      Fmt.pr "%-34s %-14s %6d %8s %8s@." m.Inject.Mutation.id
        (Inject.Mutation.operator_name m.Inject.Mutation.truth.operator)
        go.Fuzz.Campaign.nboundaries
        (if g then "HIT" else "miss")
        (if r then "HIT" else "miss"))
    rows;
  hr ();
  let count f = List.length (List.filter f rows) in
  let guided_n = count (fun (_, g, _, _, _) -> g) in
  let random_n = count (fun (_, _, _, r, _) -> r) in
  Fmt.pr
    "known misses recovered: guided %d/%d, random %d/%d -> fuzzer finds \
     strictly more: %b@."
    guided_n (List.length rows) random_n (List.length rows)
    (guided_n > random_n);
  if json then begin
    let j =
      Deepmc.Json_report.Obj
        [
          ("seed", Deepmc.Json_report.Int seed);
          ("budget", Deepmc.Json_report.Int budget);
          ("fn_corpus", Deepmc.Json_report.Int (List.length fns));
          ("fuzzed", Deepmc.Json_report.Int (List.length rows));
          ("guided_recovered", Deepmc.Json_report.Int guided_n);
          ("random_recovered", Deepmc.Json_report.Int random_n);
          ("strictly_more", Deepmc.Json_report.Bool (guided_n > random_n));
          ( "mutants",
            Deepmc.Json_report.List
              (List.map
                 (fun ((m : Inject.Mutation.mutant), g, go, r, ro) ->
                   Deepmc.Json_report.Obj
                     [
                       ("id", Deepmc.Json_report.String m.Inject.Mutation.id);
                       ( "operator",
                         Deepmc.Json_report.String
                           (Inject.Mutation.operator_name
                              m.Inject.Mutation.truth.operator) );
                       ( "nboundaries",
                         Deepmc.Json_report.Int go.Fuzz.Campaign.nboundaries );
                       ("guided", Deepmc.Json_report.Bool g);
                       ("random", Deepmc.Json_report.Bool r);
                       ( "guided_novel_schedules",
                         Deepmc.Json_report.Int go.Fuzz.Campaign.novel_schedules
                       );
                       ( "guided_pair_bits",
                         Deepmc.Json_report.Int go.Fuzz.Campaign.pair_bits );
                       ( "random_novel_schedules",
                         Deepmc.Json_report.Int ro.Fuzz.Campaign.novel_schedules
                       );
                     ])
                 rows) );
          ( "telemetry",
            Deepmc.Json_report.of_metrics (Obs.Metrics.snapshot ()) );
        ]
    in
    let oc = open_out "BENCH_fuzz.json" in
    let ppf = Format.formatter_of_out_channel oc in
    Fmt.pf ppf "%a@." Deepmc.Json_report.pp j;
    close_out oc;
    Fmt.pr "wrote BENCH_fuzz.json@."
  end

(* ------------------------------------------------------------------ *)
(* Resident analyzer (lib/serve): the re-check-after-small-edit
   workload.  Each round mutates one function of one corpus program
   (lib/inject operators, so the edit is a real single-site change),
   then re-checks the whole corpus twice: cold (parse + full check per
   program) and warm (through one persistent [Serve.Cache], where the
   untouched programs are request-cache hits and the edited program
   re-runs only its stale roots).  Warnings must be byte-identical on
   both paths every round.  `serve --json` writes BENCH_serve.json. *)

let serve_bench ?(json = false) () =
  section "Resident analyzer: re-check after a one-function edit";
  let seed =
    match Sys.getenv_opt "DEEPMC_BENCH_SEED" with
    | Some s -> (try int_of_string s with _ -> 1)
    | None -> 1
  in
  let rounds =
    match Sys.getenv_opt "DEEPMC_SERVE_ROUNDS" with
    | Some s -> (try int_of_string s with _ -> 5)
    | None -> 5
  in
  let bases =
    Inject.Evaluate.corpus_bases ()
    @ Inject.Evaluate.synth_bases ~seed ~count:2 ~nfuncs:60 ()
  in
  let basea = Array.of_list bases in
  let n = Array.length basea in
  let text_of prog = Fmt.str "%a" Nvmir.Prog.pp prog in
  let texts =
    Array.map (fun (b : Inject.Evaluate.base) -> text_of b.prog) basea
  in
  let cache = Serve.Cache.create () in
  let params (b : Inject.Evaluate.base) =
    Serve.Cache.default_params b.Inject.Evaluate.model
  in
  let warm_sweep () =
    Array.mapi
      (fun i text ->
        let b = basea.(i) in
        Serve.Cache.check cache ~name:b.Inject.Evaluate.bname ~params:(params b)
          ~text)
      texts
  in
  let cold_sweep () =
    Array.mapi
      (fun i text ->
        let b = basea.(i) in
        let prog = Nvmir.Parser.parse ~file:b.Inject.Evaluate.bname text in
        Analysis.Checker.check ~model:b.Inject.Evaluate.model prog)
      texts
  in
  let render (w : Analysis.Warning.t) = Fmt.str "%a" Analysis.Warning.pp w in
  let rng = Random.State.make [| seed; 0x5e7e |] in
  let pick_mutation () =
    (* rejection-sample a base that admits at least one sound injection
       site; every corpus base does, so this terminates immediately *)
    let rec go attempts =
      if attempts > 4 * n then None
      else
        let i = Random.State.int rng n in
        let b = basea.(i) in
        match
          Inject.Mutation.mutate ~base:b.Inject.Evaluate.bname
            ~model:b.Inject.Evaluate.model ~roots:b.Inject.Evaluate.roots
            b.Inject.Evaluate.prog
        with
        | [] -> go (attempts + 1)
        | ms -> Some (i, List.nth ms (Random.State.int rng (List.length ms)))
    in
    go 0
  in
  ignore (warm_sweep ()) (* prime: first sight of every program is a miss *);
  let cold_total = ref 0. and warm_total = ref 0. in
  let mismatches = ref 0 in
  let rows = ref [] in
  Fmt.pr "workload: %d programs, %d edit/re-check rounds, seed %d@." n rounds
    seed;
  Fmt.pr "%-5s %-28s %9s %9s %8s %-8s %5s %5s %5s@." "round" "edit" "cold ms"
    "warm ms" "speedup" "level" "inval" "stale" "reuse";
  hr ();
  for round = 1 to rounds do
    match pick_mutation () with
    | None -> Fmt.pr "%-5d no sound injection site found; skipped@." round
    | Some (i, m) ->
      texts.(i) <- text_of m.Inject.Mutation.prog;
      let t0 = Deepmc.Clock.now () in
      let colds = cold_sweep () in
      let cold_dt = Deepmc.Clock.elapsed_s t0 in
      let t1 = Deepmc.Clock.now () in
      let warms = warm_sweep () in
      let warm_dt = Deepmc.Clock.elapsed_s t1 in
      cold_total := !cold_total +. cold_dt;
      warm_total := !warm_total +. warm_dt;
      Array.iteri
        (fun j outcome ->
          match outcome with
          | Error _ -> incr mismatches
          | Ok (o : Serve.Cache.outcome) ->
            let cold_w = List.map render colds.(j).Analysis.Checker.warnings in
            let warm_w = List.map render o.Serve.Cache.summary.sm_warnings in
            if not (List.equal String.equal cold_w warm_w) then
              incr mismatches)
        warms;
      let level, inval, stale, reused =
        match warms.(i) with
        | Ok (o : Serve.Cache.outcome) ->
          ( Serve.Cache.cache_level_name o.Serve.Cache.level,
            List.length o.Serve.Cache.invalidated,
            List.length o.Serve.Cache.stale,
            List.length o.Serve.Cache.reused )
        | Error _ -> ("error", 0, 0, 0)
      in
      Fmt.pr "%-5d %-28s %9.1f %9.1f %7.1fx %-8s %5d %5d %5d@." round
        m.Inject.Mutation.id (cold_dt *. 1000.) (warm_dt *. 1000.)
        (cold_dt /. warm_dt) level inval stale reused;
      rows :=
        (round, m, cold_dt, warm_dt, level, inval, stale, reused) :: !rows
  done;
  let rows = List.rev !rows in
  hr ();
  let speedup = !cold_total /. !warm_total in
  let parks =
    (* a dedicated 2-domain pool makes parking observable even on a
       single-core host, where the default pool keeps zero workers *)
    let p = Pool.create ~size:2 () in
    ignore (Pool.map p (fun x -> x) [ 1; 2; 3; 4 ]);
    Pool.quiesce p;
    let total =
      List.fold_left
        (fun acc (w : Pool.worker_stat) -> acc + w.Pool.parks)
        0 (Pool.worker_stats p)
    in
    Pool.shutdown p;
    total
  in
  Fmt.pr
    "totals: cold %.1f ms, warm %.1f ms -> %.1fx speedup (target >= 10x)@."
    (!cold_total *. 1000.) (!warm_total *. 1000.) speedup;
  Fmt.pr "warnings byte-identical on both paths: %b (%d mismatches)@."
    (!mismatches = 0) !mismatches;
  Fmt.pr "idle workers park on a blocking wait: %d parks (2-domain probe)@."
    parks;
  if json then begin
    (* untimed instrumented probe on a fresh cache: one miss sweep, one
       hit sweep — the counters tell the cache story without their cost
       ever touching the measured rounds *)
    let telemetry =
      Obs.Metrics.reset ();
      Obs.set_enabled true;
      let probe = Serve.Cache.create () in
      let probe_n = min 3 n in
      let probe_sweep () =
        for i = 0 to probe_n - 1 do
          let b = basea.(i) in
          ignore
            (Serve.Cache.check probe ~name:b.Inject.Evaluate.bname
               ~params:(params b) ~text:texts.(i))
        done
      in
      probe_sweep ();
      probe_sweep ();
      Obs.set_enabled false;
      Deepmc.Json_report.of_metrics (Obs.Metrics.snapshot ())
    in
    let j =
      Deepmc.Json_report.Obj
        [
          ("seed", Deepmc.Json_report.Int seed);
          ("rounds", Deepmc.Json_report.Int rounds);
          ("programs", Deepmc.Json_report.Int n);
          ("cold_ms_total", Deepmc.Json_report.Float (!cold_total *. 1000.));
          ("warm_ms_total", Deepmc.Json_report.Float (!warm_total *. 1000.));
          ("speedup", Deepmc.Json_report.Float speedup);
          ("target_speedup", Deepmc.Json_report.Float 10.);
          ("identical_warnings", Deepmc.Json_report.Bool (!mismatches = 0));
          ("mismatches", Deepmc.Json_report.Int !mismatches);
          ("worker_parks", Deepmc.Json_report.Int parks);
          ( "rounds_detail",
            Deepmc.Json_report.List
              (List.map
                 (fun ( round,
                        (m : Inject.Mutation.mutant),
                        cold_dt,
                        warm_dt,
                        level,
                        inval,
                        stale,
                        reused ) ->
                   Deepmc.Json_report.Obj
                     [
                       ("round", Deepmc.Json_report.Int round);
                       ("edit", Deepmc.Json_report.String m.Inject.Mutation.id);
                       ( "operator",
                         Deepmc.Json_report.String
                           (Inject.Mutation.operator_name
                              m.Inject.Mutation.truth.operator) );
                       ("cold_ms", Deepmc.Json_report.Float (cold_dt *. 1000.));
                       ("warm_ms", Deepmc.Json_report.Float (warm_dt *. 1000.));
                       ( "speedup",
                         Deepmc.Json_report.Float (cold_dt /. warm_dt) );
                       ("cache", Deepmc.Json_report.String level);
                       ("functions_invalidated", Deepmc.Json_report.Int inval);
                       ("roots_rechecked", Deepmc.Json_report.Int stale);
                       ("roots_reused", Deepmc.Json_report.Int reused);
                     ])
                 rows) );
          ("telemetry", telemetry);
        ]
    in
    let oc = open_out "BENCH_serve.json" in
    let ppf = Format.formatter_of_out_channel oc in
    Fmt.pf ppf "%a@." Deepmc.Json_report.pp j;
    close_out oc;
    Fmt.pr "wrote BENCH_serve.json@."
  end

let sections : (string * (unit -> unit)) list =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("table5", table5);
    ("table6", table6);
    ("table7", table7);
    ("table8", table8);
    ("table9", table9);
    ("figure10", figure10);
    ("figure11", figure11);
    ("figure12", figure12 ?json:None);
    ("perffix", perffix);
    ("completeness", completeness);
    ("falsepos", falsepos);
    ("ablation", ablation);
    ("strand", strand);
    ("parallel", parallel);
    ("crashspace", crashspace);
    ("perf", perf ?json:None);
    ("recall", recall ?json:None);
    ("recover", recover_bench ?json:None);
    ("fuzz", fuzz_bench ?json:None);
    ("serve", serve_bench ?json:None);
    ("micro", micro);
  ]

let () =
  match Sys.argv with
  | [| _ |] -> List.iter (fun (_, f) -> f ()) sections
  | [| _; "perf"; "--json" |] -> perf ~json:true ()
  | [| _; "figure12"; "--json" |] -> figure12 ~json:true ()
  | [| _; "recall"; "--json" |] -> recall ~json:true ()
  | [| _; "recover"; "--json" |] -> recover_bench ~json:true ()
  | [| _; "fuzz"; "--json" |] -> fuzz_bench ~json:true ()
  | [| _; "serve"; "--json" |] -> serve_bench ~json:true ()
  | [| _; name |] -> (
    match List.assoc_opt name sections with
    | Some f -> f ()
    | None ->
      Fmt.epr "unknown section %s; available: %s@." name
        (String.concat ", " (List.map fst sections));
      exit 1)
  | _ ->
    Fmt.epr "usage: %s [section]@." Sys.argv.(0);
    exit 1
