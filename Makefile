# Developer entry points. The benches write their JSON artifacts into
# the directory they run from, so bench-json runs from the repo root.

.PHONY: all build test verify recall-gate recover-gate fuzz bench-json stats-drift trace clean

all: build

build:
	dune build

test:
	dune runtest

# The one command a PR must pass: full build plus the unit, property,
# differential and cram suites, the fuzzer's guided-vs-random
# acceptance over the false-negative corpus, and the injection recall
# gate.
verify:
	dune build && dune runtest && $(MAKE) fuzz && $(MAKE) recall-gate && $(MAKE) recover-gate

# The recall gate: the seed-1 injection campaign must report a closed
# pointer-arith blind spot (0 since the offset lattice) and static-tier
# recall at or above the 209-mutant bar of the pre-offset population.
recall-gate:
	dune build bench/main.exe
	DEEPMC_BENCH_SEED=1 dune exec bench/main.exe -- recall --json > /dev/null
	grep -q '"known_blind_spot": 0' BENCH_inject.json
	@detected=$$(sed -n 's/.*"static_tier_detected": \([0-9]*\).*/\1/p' BENCH_inject.json); \
	mutants=$$(sed -n 's/.*"static_tier_mutants": \([0-9]*\).*/\1/p' BENCH_inject.json); \
	if [ "$$detected" -lt 209 ] || [ "$$detected" -lt "$$mutants" ]; then \
	  echo "recall gate FAILED: $$detected/$$mutants (need >= 209 and full recall)"; exit 1; \
	else \
	  echo "recall gate OK: $$detected/$$mutants detected, blind spot 0"; \
	fi

# The recovery gate: the seed-1 corruption-operator campaign must
# detect every mutant through the recovery executor, with the
# CRC-guarded base verifying clean.
recover-gate:
	dune build bench/main.exe
	DEEPMC_BENCH_SEED=1 dune exec bench/main.exe -- recover --json > /dev/null
	grep -q '"all_detected": true' BENCH_recover.json
	grep -q '"clean": true' BENCH_recover.json
	@echo "recovery gate OK: all corruption mutants detected, guarded base clean"

# Deterministic, CI-safe smoke of the interleaving fuzzer: seed-1
# campaigns over the injection campaign's known misses (sub-second at
# the default budget; raise DEEPMC_FUZZ_BUDGET to fuzz harder).
fuzz:
	dune build bench/main.exe
	dune exec bench/main.exe -- fuzz

# Regenerate the committed benchmark artifacts. Figure 12 and serve
# numbers are timing-dependent; the checker/inject matrices are
# deterministic for a fixed DEEPMC_BENCH_SEED (default 1 for recall).
bench-json:
	dune build bench/main.exe
	dune exec bench/main.exe -- perf --json
	dune exec bench/main.exe -- figure12 --json
	dune exec bench/main.exe -- recall --json
	dune exec bench/main.exe -- recover --json
	dune exec bench/main.exe -- fuzz --json
	dune exec bench/main.exe -- serve --json
	@for f in BENCH_checker.json BENCH_dynamic.json BENCH_inject.json \
	  BENCH_recover.json BENCH_fuzz.json BENCH_serve.json; do \
	  [ -s $$f ] || { echo "bench-json: $$f missing or empty" >&2; exit 1; }; \
	done

# Instrument-catalog drift gate: regenerate `deepmc stats` and diff it
# against the catalog pinned in test/cram/obs.t. A new or renamed
# instrument must update the pin in the same change.
stats-drift:
	dune build
	@mkdir -p _artifacts
	@awk '/^  \$$ deepmc stats$$/{f=1;next} f&&/^$$/{exit} f{sub(/^  /,"");print}' \
	  test/cram/obs.t > _artifacts/stats.pinned
	@dune exec bin/deepmc_cli.exe -- stats > _artifacts/stats.current 2>/dev/null
	@diff -u _artifacts/stats.pinned _artifacts/stats.current \
	  && echo "stats-drift: instrument catalog matches the cram pin" \
	  || { echo "stats-drift: catalog drifted from test/cram/obs.t" >&2; exit 1; }

# Telemetry artifacts for one corpus-slice check: a Chrome trace (open
# _artifacts/trace.json in chrome://tracing or Perfetto) and the
# metrics-registry snapshot. The leading '-' keeps make going: the
# program has 3 known warnings, so deepmc exits non-zero by design.
trace:
	dune build
	mkdir -p _artifacts
	-dune exec bin/deepmc_cli.exe -- check examples/programs/pqueue.nvmir \
	  --strict --no-dynamic \
	  --metrics-json _artifacts/metrics.json --trace-out _artifacts/trace.json
	@echo "wrote _artifacts/metrics.json and _artifacts/trace.json"

clean:
	dune clean
