(* deepmc — command-line front end.

   Usage mirrors the paper's workflow: the user points the tool at an
   NVM program (textual IR) and selects the intended persistency model
   with -strict / -epoch / -strand; DeepMC runs the static pipeline and,
   when an entry point is given, the instrumented execution with the
   dynamic checker, then prints the warnings.

     deepmc check prog.nvmir --strict [--entry main] [--json] [--html r.html]
     deepmc check-mixed prog.nvmir --model-map models.txt
     deepmc fix prog.nvmir --strict [-o fixed.nvmir]
     deepmc crash prog.nvmir [--entry main] [--summary]
     deepmc crash-explore prog.nvmir [--bound 256] [--recover] [--json]
     deepmc recover prog.nvmir [--recovery-entry recover] [--json]
     deepmc fuzz prog.nvmir | --workload memslap [--budget N] [--random]
     deepmc fmt prog.nvmir [-i]
     deepmc dsg prog.nvmir --function nvm_lock
     deepmc cfg prog.nvmir [--callgraph]
     deepmc trace prog.nvmir [--root main]
     deepmc corpus [--name btree_map]
     deepmc rules *)

open Cmdliner

(* -v / -vv enable Logs-based pipeline tracing on stderr. *)
let setup_logs_term =
  let setup verbosity =
    let level =
      match List.length verbosity with
      | 0 -> Some Logs.Warning
      | 1 -> Some Logs.Info
      | _ -> Some Logs.Debug
    in
    Logs.set_reporter (Logs_fmt.reporter ~dst:Fmt.stderr ());
    Logs.set_level level
  in
  Term.(
    const setup
    $ Arg.(
        value & flag_all
        & info [ "v"; "verbose" ] ~doc:"Increase verbosity (repeatable)."))

let model_term =
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Check against strict persistency.")
  in
  let epoch =
    Arg.(value & flag & info [ "epoch" ] ~doc:"Check against epoch persistency.")
  in
  let strand =
    Arg.(value & flag & info [ "strand" ] ~doc:"Check against strand persistency.")
  in
  let combine strict epoch strand =
    match (strict, epoch, strand) with
    | true, false, false | false, false, false -> Ok Analysis.Model.Strict
    | false, true, false -> Ok Analysis.Model.Epoch
    | false, false, true -> Ok Analysis.Model.Strand
    | _ -> Error (`Msg "choose exactly one of --strict, --epoch, --strand")
  in
  Term.(term_result (const combine $ strict $ epoch $ strand))

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"NVM program in textual IR (.nvmir).")

let entry_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "entry" ] ~docv:"FUNC"
        ~doc:"Entry point for the dynamic (online) analysis.")

let no_dynamic_term =
  Arg.(value & flag & info [ "no-dynamic" ] ~doc:"Skip the dynamic analysis.")

let clients_term =
  Arg.(
    value & opt int 1
    & info [ "clients" ] ~docv:"N"
        ~doc:
          "Run the dynamic analysis from N concurrent client domains, each \
           executing the entry on its own heap under one checker (default \
           1: single-domain).")

let field_insensitive_term =
  Arg.(
    value & flag
    & info [ "field-insensitive" ]
        ~doc:"Disable field sensitivity in the DSA (ablation mode).")

let load file =
  try Ok (Nvmir.Parser.parse_file file) with
  | Nvmir.Parser.Parse_error (m, line) ->
    Error (`Msg (Fmt.str "%s:%d: %s" file line m))
  | Sys_error m -> Error (`Msg m)

let validated prog =
  match Nvmir.Prog.validate prog with
  | [] -> Ok prog
  | errs ->
    Error
      (`Msg
         (Fmt.str "invalid program:@ %a"
            Fmt.(list ~sep:(any "@ ") Nvmir.Prog.pp_error)
            errs))

let suppressions_term =
  Arg.(
    value
    & opt (some file) None
    & info [ "suppressions" ] ~docv:"FILE"
        ~doc:
          "Suppression database of validated false positives (see deepmc \
           suppress --help for the format).")

let json_term =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")

(* Telemetry surface: either flag switches the Obs registry/tracer on
   for the whole run; the files are written at the end, before the
   warning count decides the exit code. *)
let metrics_json_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"FILE"
        ~doc:
          "Enable telemetry and write the metrics-registry snapshot here \
           as JSON.")

let trace_out_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Enable telemetry and write a Chrome trace_event file here \
           (open in chrome://tracing or Perfetto; one track per domain).")

let obs_setup ~metrics_json ~trace_out =
  if metrics_json <> None || trace_out <> None then Obs.set_enabled true

let obs_write ~metrics_json ~trace_out =
  Option.iter
    (fun path ->
      let oc = open_out path in
      let ppf = Format.formatter_of_out_channel oc in
      Fmt.pf ppf "%a@." Deepmc.Json_report.pp
        (Deepmc.Json_report.of_metrics (Obs.Metrics.snapshot ()));
      Format.pp_print_flush ppf ();
      close_out oc)
    metrics_json;
  Option.iter Obs.Span.write_file trace_out

(* One seed for every randomized path (crash-image sampling, generator
   workloads, the bug injector): any run is reproducible from it. *)
let seed_term =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Seed for every randomized component (deterministic).")

let html_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "html" ] ~docv:"FILE" ~doc:"Also write an HTML report here.")

(* The §4.1 interface annotations: mark externally-created variables as
   referencing NVM, e.g. --pmem-root nvm_lock:omutex. *)
let pmem_roots_term =
  let parse s =
    match String.index_opt s ':' with
    | Some i ->
      Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> Error (`Msg "expected FUNC:VAR")
  in
  let print ppf (f, v) = Fmt.pf ppf "%s:%s" f v in
  let root_conv = Arg.conv (parse, print) in
  Arg.(
    value & opt_all root_conv []
    & info [ "pmem-root" ] ~docv:"FUNC:VAR"
        ~doc:
          "Annotate a variable as referencing persistent memory (interface \
           annotation; repeatable).")

let domains_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains in the shared analysis pool (default: \
           available cores - 1, capped at 8).")

let stats_term =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print checker statistics (engine, traces, events, peak live \
           paths, pool activity) on stderr.")

let materialized_term =
  Arg.(
    value & flag
    & info [ "materialized" ]
        ~doc:
          "Use the materialized trace engine (the streaming engine's \
           differential oracle) instead of the default streaming engine.")

(* Client path: ship the program text to a resident `deepmc serve`
   daemon instead of analyzing in-process. Static checking only — the
   daemon has no harness to run entries under the dynamic checker. *)
let connect_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"SOCK"
        ~doc:
          "Send the check to a resident analyzer daemon ($(b,deepmc serve \
           --socket) SOCK) instead of analyzing in-process. Static analysis \
           only; incompatible with --entry.")

let run_connected ~sock ~file ~model ~field_sensitive ~pmem_roots ~json =
  let ( let* ) = Result.bind in
  let* text =
    try
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Ok s
    with Sys_error m -> Error (`Msg m)
  in
  let* resp =
    Result.map_error
      (fun m -> `Msg m)
      (Serve.Client.check ~sock ~name:file ~model ~field_sensitive
         ~pmem_roots ~text ())
  in
  if json then Fmt.pr "%a@." Deepmc.Json_report.pp resp
  else begin
    let warnings =
      match Serve.Protocol.member "warnings" resp with
      | Some (Serve.Protocol.List ws) -> ws
      | _ -> []
    in
    List.iter
      (fun w ->
        let s key =
          Option.value ~default:"?" (Serve.Protocol.string_member key w)
        in
        let line =
          Option.value ~default:0 (Serve.Protocol.int_member "line" w)
        in
        Fmt.pr "@[<hov 2>WARNING [%s] %s:%d (%s, %s model, %s):@ %s@]@."
          (s "rule") (s "file") line (s "category") (s "model") (s "origin")
          (s "message"))
      warnings;
    Fmt.pr "%d warning(s) [cache %s, %d function(s) invalidated]@."
      (List.length warnings)
      (Option.value ~default:"?"
         (Serve.Protocol.string_member "cache" resp))
      (Option.value ~default:0
         (Serve.Protocol.int_member "functions_invalidated" resp))
  end;
  let nwarnings =
    match Serve.Protocol.member "warnings" resp with
    | Some (Serve.Protocol.List ws) -> List.length ws
    | _ -> 0
  in
  if nwarnings = 0 then Ok ()
  else Error (`Msg (Fmt.str "%d warning(s)" nwarnings))

let check_cmd =
  let explore_term =
    Arg.(
      value & flag
      & info [ "explore-crash-images" ]
          ~doc:
            "Additionally enumerate reachable crash images at every crash \
             point (requires --entry).")
  in
  let crash_bound_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash-bound" ] ~docv:"N"
          ~doc:"Maximum images per crash point for --explore-crash-images.")
  in
  let run () model file entry clients no_dynamic field_insensitive
      suppressions json pmem_roots html domains stats materialized explore
      crash_bound seed metrics_json trace_out connect =
    let ( let* ) = Result.bind in
    match connect with
    | Some sock ->
      if entry <> None then
        Error (`Msg "--connect serves static checks only; drop --entry")
      else
        run_connected ~sock ~file ~model
          ~field_sensitive:(not field_insensitive) ~pmem_roots ~json
    | None ->
    let* prog = load file in
    let* prog = validated prog in
    Option.iter Pool.set_default_size domains;
    obs_setup ~metrics_json ~trace_out;
    let config =
      {
        Analysis.Config.default with
        Analysis.Config.engine =
          (if materialized then Analysis.Config.Materialized
           else Analysis.Config.Streaming);
      }
    in
    let driver =
      Deepmc.Driver.make ~config ~field_sensitive:(not field_insensitive)
        ~run_dynamic:(not no_dynamic) model
    in
    let report =
      Deepmc.Driver.analyze driver ~persistent_roots:pmem_roots ?entry ~clients
        ~explore_crash_images:explore ?crash_bound ~seed prog
    in
    if stats then begin
      let s = report.Deepmc.Driver.static in
      let ps = Pool.stats (Pool.default ()) in
      Fmt.epr
        "engine: %s@.traces: %d (%d events)@.peak live paths: %d@.static \
         time: %.1f ms@.pool: %d domain(s), %d job(s), %d chunk(s)@."
        (Analysis.Config.engine_name config.Analysis.Config.engine)
        s.Analysis.Checker.trace_count s.Analysis.Checker.event_count
        s.Analysis.Checker.peak_paths
        (report.Deepmc.Driver.elapsed_static *. 1000.)
        ps.Pool.size ps.Pool.jobs ps.Pool.chunks
    end;
    let* warnings =
      match suppressions with
      | None -> Ok report.Deepmc.Driver.warnings
      | Some path -> (
        try
          let db = Deepmc.Suppress.load path in
          let kept, suppressed =
            Deepmc.Suppress.filter db report.Deepmc.Driver.warnings
          in
          List.iter
            (fun ((w : Analysis.Warning.t), (e : Deepmc.Suppress.entry)) ->
              Fmt.pr "suppressed %a %s (%s)@." Nvmir.Loc.pp
                w.Analysis.Warning.loc
                (Analysis.Warning.rule_name w.Analysis.Warning.rule)
                e.Deepmc.Suppress.reason)
            suppressed;
          Ok kept
        with Deepmc.Suppress.Parse_error (m, line) ->
          Error (`Msg (Fmt.str "%s:%d: %s" path line m)))
    in
    Option.iter
      (fun path ->
        Deepmc.Html_report.write ~title:(Filename.basename file) prog report
          path)
      html;
    if json then
      Fmt.pr "%a@." Deepmc.Json_report.pp (Deepmc.Json_report.of_report report)
    else Fmt.pr "%a@." Deepmc.Driver.pp_report report;
    obs_write ~metrics_json ~trace_out;
    if warnings = [] then Ok ()
    else Error (`Msg (Fmt.str "%d warning(s)" (List.length warnings)))
  in
  let doc = "Check an NVM program against a persistency model." in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      term_result
        (const run $ setup_logs_term $ model_term $ file_arg $ entry_term
       $ clients_term $ no_dynamic_term $ field_insensitive_term
       $ suppressions_term $ json_term $ pmem_roots_term $ html_term
       $ domains_term $ stats_term $ materialized_term $ explore_term
       $ crash_bound_term $ seed_term $ metrics_json_term $ trace_out_term
       $ connect_term))

(* Mixed-model checking: a map file with one "function model" pair per
   line assigns each analysis root its intended persistency model. *)
let check_mixed_cmd =
  let map_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "model-map" ] ~docv:"FILE"
          ~doc:
            "Per-root model assignments, one 'function model' pair per line \
             (model is strict, epoch or strand).")
  in
  let parse_map path =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    let entries =
      List.filter_map
        (fun line ->
          let line = String.trim line in
          if line = "" || line.[0] = '#' then None
          else
            match
              String.split_on_char ' ' line |> List.filter (fun x -> x <> "")
            with
            | [ f; m ] -> (
              match Analysis.Model.of_string m with
              | Some model -> Some (Ok (f, model))
              | None -> Some (Error (`Msg (Fmt.str "unknown model %S" m))))
            | _ -> Some (Error (`Msg (Fmt.str "bad model-map line: %s" line))))
        (String.split_on_char '\n' s)
    in
    List.fold_right
      (fun e acc ->
        match (e, acc) with
        | Ok kv, Ok l -> Ok (kv :: l)
        | Error m, _ -> Error m
        | _, (Error _ as e) -> e)
      entries (Ok [])
  in
  let run file map_file =
    let ( let* ) = Result.bind in
    let* prog = load file in
    let* prog = validated prog in
    let* map = parse_map map_file in
    let roots = List.map fst map in
    let model_of root =
      Option.value ~default:Analysis.Model.Strict (List.assoc_opt root map)
    in
    let r = Analysis.Checker.check_mixed ~model_of ~roots prog in
    List.iter
      (fun (root, model, warnings) ->
        Fmt.pr "@[<v 2>%s (%a model): %d warning(s)@ %a@]@." root
          Analysis.Model.pp model (List.length warnings)
          Fmt.(list ~sep:(any "@ ") Analysis.Warning.pp)
          warnings)
      r.Analysis.Checker.per_root;
    if r.Analysis.Checker.mixed_warnings = [] then Ok ()
    else
      Error
        (`Msg
           (Fmt.str "%d warning(s)"
              (List.length r.Analysis.Checker.mixed_warnings)))
  in
  let doc =
    "Check a program whose parts implement different persistency models \
     (lifts the paper's single-model limitation)."
  in
  Cmd.v (Cmd.info "check-mixed" ~doc)
    Term.(term_result (const run $ file_arg $ map_arg))

let fix_cmd =
  let out_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the repaired program here (default: stdout).")
  in
  let run model file out =
    let ( let* ) = Result.bind in
    let* prog = load file in
    let* prog = validated prog in
    let fixed, outcomes, remaining =
      Deepmc.Autofix.fix_until_clean ~model prog
    in
    List.iter (fun o -> Fmt.epr "%a@." Deepmc.Autofix.pp_outcome o) outcomes;
    List.iter
      (fun w -> Fmt.epr "UNFIXED %a@." Analysis.Warning.pp w)
      remaining;
    let text = Fmt.str "%a@." Nvmir.Prog.pp fixed in
    (match out with
    | None -> print_string text
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc);
    Ok ()
  in
  let doc =
    "Automatically repair the mechanically-fixable persistency bugs (the \
     future work of the paper's Section 4.3)."
  in
  Cmd.v (Cmd.info "fix" ~doc)
    Term.(term_result (const run $ model_term $ file_arg $ out_term))

let dsg_cmd =
  let func_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "function" ] ~docv:"FUNC" ~doc:"Dump only this function's DSG.")
  in
  let run file func =
    let ( let* ) = Result.bind in
    let* prog = load file in
    let* prog = validated prog in
    let dsg = Dsa.Dsg.build prog in
    let funcs =
      match func with
      | Some f -> [ f ]
      | None -> Nvmir.Prog.func_names prog
    in
    List.iter
      (fun f -> Fmt.pr "%a@.@." Dsa.Dsg.pp_function_view (dsg, f))
      funcs;
    Ok ()
  in
  let doc = "Dump the Data Structure Graph of a program (cf. Figure 10)." in
  Cmd.v (Cmd.info "dsg" ~doc)
    Term.(term_result (const run $ file_arg $ func_term))

let cfg_cmd =
  let func_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "function" ] ~docv:"FUNC" ~doc:"Only this function's CFG.")
  in
  let callgraph_term =
    Arg.(
      value & flag
      & info [ "callgraph" ] ~doc:"Emit the program's call graph instead.")
  in
  let run file func callgraph =
    let ( let* ) = Result.bind in
    let* prog = load file in
    let* prog = validated prog in
    if callgraph then begin
      print_string
        (Graphs.Dot.of_callgraph (Graphs.Callgraph.of_prog prog) prog);
      Ok ()
    end
    else begin
      let funcs =
        match func with
        | Some f -> Option.to_list (Nvmir.Prog.find_func prog f)
        | None -> Nvmir.Prog.funcs prog
      in
      List.iter
        (fun f -> print_string (Graphs.Dot.of_cfg (Graphs.Cfg.of_func f)))
        funcs;
      Ok ()
    end
  in
  let doc = "Emit control-flow graphs (or the call graph) as Graphviz dot." in
  Cmd.v (Cmd.info "cfg" ~doc)
    Term.(term_result (const run $ file_arg $ func_term $ callgraph_term))

let trace_cmd =
  let root_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "root" ] ~docv:"FUNC"
          ~doc:"Dump only traces rooted at this function.")
  in
  let run file root =
    let ( let* ) = Result.bind in
    let* prog = load file in
    let* prog = validated prog in
    let dsg = Dsa.Dsg.build prog in
    let roots = Option.map (fun r -> [ r ]) root in
    let per_root = Analysis.Trace.collect ?roots dsg prog in
    List.iter
      (fun (r, traces) ->
        Fmt.pr "@[<v 2>root %s: %d trace(s)@ %a@]@.@." r (List.length traces)
          Fmt.(list ~sep:(any "@ @ ") Analysis.Trace.pp)
          traces)
      per_root;
    Ok ()
  in
  let doc =
    "Dump the collected persistency traces, after interprocedural merging \
     (cf. Figure 11)."
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(term_result (const run $ file_arg $ root_term))

let corpus_cmd =
  let name_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "name" ] ~docv:"NAME" ~doc:"Only this corpus program.")
  in
  let corpus_json_term =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit results as JSON.")
  in
  let run name json =
    let programs =
      match name with
      | None -> Corpus.Registry.all
      | Some n -> (
        match Corpus.Registry.find n with
        | Some p -> [ p ]
        | None -> [])
    in
    if programs = [] then
      Error (`Msg "no such corpus program (try without --name for the list)")
    else if json then begin
      let items =
        List.map
          (fun (p : Corpus.Types.program) ->
            let _, score = Corpus.Registry.analyze p in
            Deepmc.Json_report.Obj
              [
                ("program", Deepmc.Json_report.String p.Corpus.Types.name);
                ( "framework",
                  Deepmc.Json_report.String
                    (Corpus.Types.framework_name p.Corpus.Types.framework) );
                ( "model",
                  Deepmc.Json_report.String
                    (Analysis.Model.to_string (Corpus.Types.model p)) );
                ("score", Deepmc.Json_report.of_score score);
              ])
          programs
      in
      Fmt.pr "%a@." Deepmc.Json_report.pp (Deepmc.Json_report.List items);
      Ok ()
    end
    else begin
      List.iter
        (fun (p : Corpus.Types.program) ->
          let _, score = Corpus.Registry.analyze p in
          Fmt.pr "%-22s %-10s %-6s %2d/%-2d validated/warnings@."
            p.Corpus.Types.name
            (Corpus.Types.framework_name p.Corpus.Types.framework)
            (Analysis.Model.to_string (Corpus.Types.model p))
            (Deepmc.Report.validated_count score)
            (Deepmc.Report.warning_count score))
        programs;
      Ok ()
    end
  in
  let doc = "Analyze the bundled corpus of buggy NVM programs." in
  Cmd.v
    (Cmd.info "corpus" ~doc)
    Term.(term_result (const run $ name_term $ corpus_json_term))

let crash_cmd =
  let entry_req =
    Arg.(
      value
      & opt string "main"
      & info [ "entry" ] ~docv:"FUNC" ~doc:"Entry point (default main).")
  in
  let summary_term =
    Arg.(value & flag & info [ "summary" ] ~doc:"Totals only, no per-point rows.")
  in
  let run file entry summary =
    let ( let* ) = Result.bind in
    let* prog = load file in
    let* prog = validated prog in
    match Nvmir.Prog.find_func prog entry with
    | None -> Error (`Msg (Fmt.str "entry %s not defined" entry))
    | Some _ ->
      let r = Runtime.Crash.explore ~entry prog in
      if summary then begin
        let peak =
          List.fold_left
            (fun a (e : Runtime.Crash.exposure) ->
              max a e.Runtime.Crash.at_risk_slots)
            0 r.Runtime.Crash.points
        in
        Fmt.pr
          "crash points: %d; peak in-flight exposure: %d slot(s); never \
           durable: %d slot(s)@."
          (List.length r.Runtime.Crash.points)
          peak r.Runtime.Crash.final_at_risk
      end
      else Fmt.pr "%a@." Runtime.Crash.pp_exposure_report r;
      if r.Runtime.Crash.final_at_risk > 0 then
        Error
          (`Msg
             (Fmt.str "%d slot(s) never became durable"
                r.Runtime.Crash.final_at_risk))
      else Ok ()
  in
  let doc =
    "Inject a crash after every persistent-memory event and report how much \
     durable state is at risk at each point."
  in
  Cmd.v (Cmd.info "crash" ~doc)
    Term.(term_result (const run $ file_arg $ entry_req $ summary_term))

(* Reachable-image exploration: where `deepmc crash` walks the single
   prefix image per point, `crash-explore` enumerates the durable images
   any write-back order could leave behind. *)
let crash_explore_cmd =
  let entry_req =
    Arg.(
      value
      & opt string "main"
      & info [ "entry" ] ~docv:"FUNC" ~doc:"Entry point (default main).")
  in
  let bound_term =
    Arg.(
      value
      & opt int Runtime.Crash_space.default_bound
      & info [ "bound" ] ~docv:"N"
          ~doc:
            "Maximum images per crash point: exhaustive below, sampled \
             above.")
  in
  let domains_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains for the crash-point fan-out.")
  in
  let recover_flag =
    Arg.(
      value & flag
      & info [ "recover" ]
          ~doc:
            "Additionally run the recovery entry (`recover') over every \
             enumerated image under the media-corruption model.")
  in
  let run () file entry bound seed domains recover json metrics_json
      trace_out =
    let ( let* ) = Result.bind in
    let* prog = load file in
    let* prog = validated prog in
    obs_setup ~metrics_json ~trace_out;
    match Nvmir.Prog.find_func prog entry with
    | None -> Error (`Msg (Fmt.str "entry %s not defined" entry))
    | Some _ ->
      let r =
        Deepmc.Crash_sweep.explore_program ?domains ~bound ~seed ~entry prog
      in
      let* recovery =
        if not recover then Ok None
        else if Nvmir.Prog.find_func prog "recover" = None then
          Error (`Msg "--recover: no `recover' function defined")
        else
          Ok (Some (Recover.verify ~entry ~bound ~seed prog))
      in
      (match (json, recovery) with
      | true, None ->
        Fmt.pr "%a@." Deepmc.Json_report.pp
          (Deepmc.Json_report.of_crash_space r)
      | true, Some rv ->
        Fmt.pr "%a@." Deepmc.Json_report.pp
          (Deepmc.Json_report.Obj
             [
               ("crash_space", Deepmc.Json_report.of_crash_space r);
               ("recovery", Deepmc.Json_report.of_recovery rv);
             ])
      | false, None -> Fmt.pr "%a@." Runtime.Crash_space.pp_report r
      | false, Some rv ->
        Fmt.pr "%a@.%a@." Runtime.Crash_space.pp_report r Recover.pp_report
          rv);
      obs_write ~metrics_json ~trace_out;
      let recovery_warnings =
        match recovery with
        | Some rv -> List.length rv.Recover.warnings
        | None -> 0
      in
      if r.Runtime.Crash_space.inconsistent > 0 then
        Error
          (`Msg
             (Fmt.str "%d inconsistent crash image(s)"
                r.Runtime.Crash_space.inconsistent))
      else if recovery_warnings > 0 then
        Error (`Msg (Fmt.str "%d recovery warning(s)" recovery_warnings))
      else Ok ()
  in
  let doc =
    "Enumerate the durable images reachable at every crash point (any \
     subset of in-flight cache lines persisted) and check each against \
     the strict-order write-sequence oracle."
  in
  Cmd.v (Cmd.info "crash-explore" ~doc)
    Term.(
      term_result
        (const run $ setup_logs_term $ file_arg $ entry_req $ bound_term
       $ seed_term $ domains_term $ recover_flag $ json_term
       $ metrics_json_term $ trace_out_term))

(* Recovery-path verification: for every durable image a crash can
   leave, apply the media-corruption model and execute the program's
   recovery entry on the reconstituted heap, classifying each outcome
   and reporting the recovery-tier rules. *)
let recover_cmd =
  let entry_req =
    Arg.(
      value
      & opt string "main"
      & info [ "entry" ] ~docv:"FUNC"
          ~doc:"Forward entry point whose crash images are enumerated.")
  in
  let recovery_entry_term =
    Arg.(
      value
      & opt string "recover"
      & info [ "recovery-entry" ] ~docv:"FUNC"
          ~doc:"Recovery function to execute on each image.")
  in
  let bound_term =
    Arg.(
      value
      & opt int Runtime.Crash_space.default_bound
      & info [ "bound" ] ~docv:"N"
          ~doc:
            "Maximum images per crash point: exhaustive below, sampled \
             above.")
  in
  let no_corrupt_term =
    Arg.(
      value & flag
      & info [ "no-corrupt" ]
          ~doc:
            "Skip media corruption: run recovery on the pristine crash \
             images only.")
  in
  let run () model file entry recovery_entry bound seed no_corrupt json
      metrics_json trace_out =
    let ( let* ) = Result.bind in
    let* prog = load file in
    let* prog = validated prog in
    obs_setup ~metrics_json ~trace_out;
    let* () =
      if Nvmir.Prog.find_func prog entry = None then
        Error (`Msg (Fmt.str "entry %s not defined" entry))
      else if Nvmir.Prog.find_func prog recovery_entry = None then
        Error
          (`Msg (Fmt.str "recovery entry %s not defined" recovery_entry))
      else Ok ()
    in
    let r =
      Recover.verify ~entry ~recovery_entry ~bound ~seed
        ~corrupt:(not no_corrupt) ~model prog
    in
    if json then
      Fmt.pr "%a@." Deepmc.Json_report.pp (Deepmc.Json_report.of_recovery r)
    else Fmt.pr "%a@." Recover.pp_report r;
    obs_write ~metrics_json ~trace_out;
    (match r.Recover.warnings with
    | [] -> Ok ()
    | ws -> Error (`Msg (Fmt.str "%d recovery warning(s)" (List.length ws))))
  in
  let doc =
    "Verify the recovery path: run the recovery entry over every durable \
     image a crash can leave, with media corruption injected, and report \
     unguarded reads, silent accepts and non-idempotence."
  in
  Cmd.v (Cmd.info "recover" ~doc)
    Term.(
      term_result
        (const run $ setup_logs_term $ model_term $ file_arg $ entry_req
       $ recovery_entry_term $ bound_term $ seed_term $ no_corrupt_term
       $ json_term $ metrics_json_term $ trace_out_term))

let fmt_cmd =
  let in_place_term =
    Arg.(value & flag & info [ "i"; "in-place" ] ~doc:"Rewrite the file.")
  in
  let run file in_place =
    let ( let* ) = Result.bind in
    let* prog = load file in
    let text = Fmt.str "%a@." Nvmir.Prog.pp prog in
    if in_place then begin
      let oc = open_out file in
      output_string oc text;
      close_out oc
    end
    else print_string text;
    Ok ()
  in
  let doc = "Canonically format a textual IR file (parse and pretty-print)." in
  Cmd.v (Cmd.info "fmt" ~doc) Term.(term_result (const run $ file_arg $ in_place_term))

(* Mutation-based fault injection with recall/precision evaluation: the
   corpus (post-autofix) and optional generator programs are mutated by
   the Table 4/5 operator catalog and every detector tier is measured
   against the mutants' ground truth. *)
let inject_cmd =
  let framework_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "framework" ] ~docv:"NAME"
          ~doc:"Restrict to one corpus framework (pmdk, pmfs, nvm-direct, \
                mnemosyne).")
  in
  let name_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "name" ] ~docv:"NAME" ~doc:"Restrict to one corpus program.")
  in
  let synth_term =
    Arg.(
      value & opt int 0
      & info [ "synth" ] ~docv:"N"
          ~doc:"Also mutate N clean generator programs (seeded from --seed).")
  in
  let operator_term =
    Arg.(
      value & opt_all string []
      & info [ "operator" ] ~docv:"OP"
          ~doc:
            "Mutation operator to apply (repeatable; default: all). One of \
             delete-flush, delete-fence, reorder-fence, hoist-write, \
             duplicate-flush, widen-flush, drop-tx-add, split-strand.")
  in
  let no_crash_term =
    Arg.(
      value & flag
      & info [ "no-crash" ] ~doc:"Skip the crash-space explorer tier.")
  in
  let crash_bound_term =
    Arg.(
      value & opt int 192
      & info [ "crash-bound" ] ~docv:"N"
          ~doc:"Maximum images per crash point for the explorer tier.")
  in
  let save_fn_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-fn" ] ~docv:"DIR"
          ~doc:
            "Persist mutants their expected detector tier missed as .nvmir \
             files (the false-negative corpus).")
  in
  let ablate_offsets_term =
    Arg.(
      value & flag
      & info [ "ablate-offsets" ]
          ~doc:
            "Disable the DSG offset lattice end-to-end (autofix, mutation \
             admission and static scoring), reproducing the historical \
             pointer-arithmetic blind spot.")
  in
  let run () framework name synth operators no_dynamic no_crash crash_bound
      save_fn ablate_offsets seed domains json metrics_json trace_out =
    let ( let* ) = Result.bind in
    Option.iter Pool.set_default_size domains;
    obs_setup ~metrics_json ~trace_out;
    let* framework =
      match framework with
      | None -> Ok None
      | Some f -> (
        match
          List.find_opt
            (fun fw ->
              String.equal
                (String.lowercase_ascii (Corpus.Types.framework_name fw))
                (String.lowercase_ascii f))
            Corpus.Types.all_frameworks
        with
        | Some fw -> Ok (Some fw)
        | None -> Error (`Msg (Fmt.str "unknown framework %S" f)))
    in
    let* operators =
      match operators with
      | [] -> Ok Inject.Mutation.all_operators
      | names ->
        List.fold_right
          (fun n acc ->
            let* acc = acc in
            match Inject.Mutation.operator_of_string n with
            | Some op -> Ok (op :: acc)
            | None -> Error (`Msg (Fmt.str "unknown operator %S" n)))
          names (Ok [])
    in
    let offset_sensitive = not ablate_offsets in
    let corpus =
      Inject.Evaluate.corpus_bases ~offset_sensitive ?framework ?name ()
    in
    let* () =
      if corpus = [] && name <> None then
        Error (`Msg "no such corpus program (see deepmc corpus)")
      else Ok ()
    in
    let bases =
      corpus
      @ (if framework = None && name = None then
           Inject.Evaluate.exemplar_bases ~offset_sensitive ()
         else [])
      @
      if synth > 0 then
        Inject.Evaluate.synth_bases ~offset_sensitive ~seed ~count:synth
          ~nfuncs:8 ()
      else []
    in
    let summary =
      Inject.Evaluate.run ?domains ~operators ~seed ~dynamic:(not no_dynamic)
        ~crash:(not no_crash) ~crash_bound bases
    in
    (match save_fn with
    | None -> ()
    | Some dir ->
      let paths = Inject.Evaluate.save_false_negatives ~dir summary in
      Fmt.epr "wrote %d false negative(s) to %s@." (List.length paths) dir);
    if json then
      Fmt.pr "%a@." Deepmc.Json_report.pp (Inject.Evaluate.to_json summary)
    else Fmt.pr "%a" Inject.Evaluate.pp_summary summary;
    obs_write ~metrics_json ~trace_out;
    Ok ()
  in
  let doc =
    "Inject persistency bugs into warning-clean programs and measure \
     per-operator detector recall/precision."
  in
  Cmd.v (Cmd.info "inject" ~doc)
    Term.(
      term_result
        (const run $ setup_logs_term $ framework_term $ name_term $ synth_term
       $ operator_term $ no_dynamic_term $ no_crash_term $ crash_bound_term
       $ save_fn_term $ ablate_offsets_term $ seed_term $ domains_term
       $ json_term $ metrics_json_term $ trace_out_term))

let rules_cmd =
  let run () =
    List.iter
      (fun (m : Analysis.Rules.rule_meta) ->
        Fmt.pr "@[<v 2>%s [%a] (models: %a)@ %s@]@.@."
          (Analysis.Warning.rule_name m.Analysis.Rules.id)
          Analysis.Warning.pp_category
          (Analysis.Warning.category_of_rule m.Analysis.Rules.id)
          Fmt.(list ~sep:(any ", ") Analysis.Model.pp)
          m.Analysis.Rules.models m.Analysis.Rules.statement)
      Analysis.Rules.catalog;
    Ok ()
  in
  let doc = "Print the checking-rule catalog (Tables 4 and 5)." in
  Cmd.v (Cmd.info "rules" ~doc) Term.(term_result (const run $ const ()))

let stats_cmd =
  let run () =
    List.iter
      (fun (m : Obs.Metrics.meta) ->
        Fmt.pr "%-26s %-9s %s@." m.Obs.Metrics.m_name
          (Obs.Metrics.kind_name m.Obs.Metrics.m_kind)
          m.Obs.Metrics.m_desc)
      (Obs.Metrics.catalog ());
    Ok ()
  in
  let doc =
    "Print the telemetry instrument catalog (name, kind, description). \
     Values are collected per run with --metrics-json on check, \
     crash-explore and inject."
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(term_result (const run $ const ()))

(* Coverage-guided interleaving fuzzing of one program: schedule
   genomes (delay-injection probe + context switches at persistence
   boundaries) are replayed deterministically; warnings come from the
   dynamic checker plus the fuzzer's PMRace-style detectors. *)
let fuzz_cmd =
  let budget_term =
    Arg.(
      value & opt int 24
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Schedule executions to spend (the fixed-schedule baseline \
             replay is not counted).")
  in
  let random_term =
    Arg.(
      value & flag
      & info [ "random" ]
          ~doc:
            "Draw schedules uniformly instead of coverage-guided (the \
             ablation baseline).")
  in
  let fuzz_file_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"NVM program in textual IR (.nvmir); or use --workload.")
  in
  let workload_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "workload" ] ~docv:"NAME"
          ~doc:
            "Fuzz a built-in IR rendition of an application workload \
             (memslap, redis or ycsb) instead of a FILE: the driver's \
             operation mix and key distribution over one shared region, \
             one fuzz_client_* per client.")
  in
  let run () model file workload entry clients budget random seed domains json
      metrics_json trace_out =
    let ( let* ) = Result.bind in
    let* name, prog =
      match (workload, file) with
      | Some w, None -> (
        match Workloads.Fuzz_targets.find w with
        | Some gen -> Ok (w, gen ~clients:(max clients 1) ~seed ())
        | None ->
          Error
            (`Msg
               (Fmt.str "unknown workload %s (available: %s)" w
                  (String.concat ", "
                     (List.map fst Workloads.Fuzz_targets.all)))))
      | None, Some file ->
        let* prog = load file in
        Ok (Filename.basename file, prog)
      | Some _, Some _ -> Error (`Msg "choose a FILE or --workload, not both")
      | None, None -> Error (`Msg "a FILE or --workload is required")
    in
    let* prog = validated prog in
    Option.iter Pool.set_default_size domains;
    obs_setup ~metrics_json ~trace_out;
    let entry = Option.value entry ~default:"main" in
    let* () =
      if Nvmir.Prog.find_func prog entry <> None then Ok ()
      else Error (`Msg (Fmt.str "entry %s not defined" entry))
    in
    let target =
      {
        Fuzz.Campaign.tname = name;
        prog;
        model;
        entry;
        entry_args = [];
        clients;
      }
    in
    let mode = if random then Fuzz.Campaign.Random else Fuzz.Campaign.Guided in
    let o = Fuzz.Campaign.run ~seed ~budget ?domains ~mode target in
    let baseline_keys =
      List.map Analysis.Warning.dedup_key o.Fuzz.Campaign.baseline_warnings
    in
    let new_warnings =
      List.filter
        (fun w ->
          not (List.mem (Analysis.Warning.dedup_key w) baseline_keys))
        o.Fuzz.Campaign.warnings
    in
    if json then
      Fmt.pr "%a@." Deepmc.Json_report.pp
        (Deepmc.Json_report.Obj
           [
             ("target", Deepmc.Json_report.String name);
             ("entry", Deepmc.Json_report.String entry);
             ( "mode",
               Deepmc.Json_report.String (Fuzz.Campaign.mode_name mode) );
             ("seed", Deepmc.Json_report.Int seed);
             ("budget", Deepmc.Json_report.Int budget);
             ("clients", Deepmc.Json_report.Int clients);
             ("executions", Deepmc.Json_report.Int o.Fuzz.Campaign.executions);
             ( "nboundaries",
               Deepmc.Json_report.Int o.Fuzz.Campaign.nboundaries );
             ( "novel_schedules",
               Deepmc.Json_report.Int o.Fuzz.Campaign.novel_schedules );
             ("pair_bits", Deepmc.Json_report.Int o.Fuzz.Campaign.pair_bits);
             ("aborted", Deepmc.Json_report.Int o.Fuzz.Campaign.aborted);
             ( "coverage",
               Deepmc.Json_report.String o.Fuzz.Campaign.coverage );
             ( "baseline_warnings",
               Deepmc.Json_report.List
                 (List.map Deepmc.Json_report.of_warning
                    o.Fuzz.Campaign.baseline_warnings) );
             ( "new_warnings",
               Deepmc.Json_report.List
                 (List.map Deepmc.Json_report.of_warning new_warnings) );
           ])
    else begin
      Fmt.pr
        "fuzz %s: %s mode, %d execution(s) over %d boundaries, %d novel \
         schedule(s), %d pair bit(s)@."
        name
        (Fuzz.Campaign.mode_name mode)
        o.Fuzz.Campaign.executions o.Fuzz.Campaign.nboundaries
        o.Fuzz.Campaign.novel_schedules o.Fuzz.Campaign.pair_bits;
      match new_warnings with
      | [] -> Fmt.pr "no schedule-dependent warnings beyond the baseline@."
      | ws ->
        Fmt.pr "%d warning(s) the fixed schedule misses:@." (List.length ws);
        List.iter (fun w -> Fmt.pr "  %a@." Analysis.Warning.pp w) ws
    end;
    obs_write ~metrics_json ~trace_out;
    Ok ()
  in
  let doc =
    "Coverage-guided interleaving fuzzing of the dynamic tier: search \
     delay-injection points and context switches at persistence boundaries \
     for schedule-dependent persistency bugs."
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      term_result
        (const run $ setup_logs_term $ model_term $ fuzz_file_arg
       $ workload_term $ entry_term $ clients_term $ budget_term
       $ random_term $ seed_term $ domains_term $ json_term
       $ metrics_json_term $ trace_out_term))

(* Warning provenance: the same pipeline as `check` with witness
   capture switched on, the tiers read before the driver's cross-tier
   dedup, and the result rendered as evidence bundles plus an annotated
   IR listing. See lib/explain. *)
let explain_cmd =
  let fuzz_budget_term =
    Arg.(
      value & opt int 0
      & info [ "fuzz" ] ~docv:"N"
          ~doc:
            "Additionally run an N-execution fuzz campaign over the entry \
             and fold its witnesses into the bundles (0: off).")
  in
  let crash_term =
    Arg.(
      value & flag
      & info [ "crash" ]
          ~doc:
            "Additionally enumerate reachable crash images and bundle the \
             inconsistent ones (requires --entry).")
  in
  let recover_term =
    Arg.(
      value & flag
      & info [ "recover" ]
          ~doc:
            "Additionally verify the recovery path over the crash images \
             and bundle its witnesses (requires --entry and a recovery \
             function).")
  in
  let recovery_entry_term =
    Arg.(
      value
      & opt string "recover"
      & info [ "recovery-entry" ] ~docv:"FUNC"
          ~doc:"Recovery function for --recover.")
  in
  let run () model file entry clients fuzz_budget crash recover
      recovery_entry seed json html metrics_json trace_out =
    let ( let* ) = Result.bind in
    let* prog = load file in
    let* prog = validated prog in
    obs_setup ~metrics_json ~trace_out;
    Analysis.Witness.set_enabled true;
    let driver = Deepmc.Driver.make model in
    let report =
      Deepmc.Driver.analyze driver ?entry ~clients
        ~explore_crash_images:crash ~verify_recovery:recover ~recovery_entry
        ~seed prog
    in
    Option.iter
      (fun path ->
        Deepmc.Html_report.write ~title:(Filename.basename file) prog report
          path)
      html;
    let* fuzz =
      if fuzz_budget <= 0 then Ok None
      else begin
        let entry = Option.value entry ~default:"main" in
        if Nvmir.Prog.find_func prog entry = None then
          Error (`Msg (Fmt.str "--fuzz: entry %s not defined" entry))
        else
          let target =
            {
              Fuzz.Campaign.tname = Filename.basename file;
              prog;
              model;
              entry;
              entry_args = [];
              clients;
            }
          in
          Ok
            (Some
               (Fuzz.Campaign.run ~seed ~budget:fuzz_budget
                  ~mode:Fuzz.Campaign.Guided target))
      end
    in
    let bundles = Explain.build ?fuzz report in
    if json then
      Fmt.pr "%a@." Deepmc.Json_report.pp
        (Explain.to_json ~file ~model bundles)
    else print_string (Explain.render ~file ~model ~prog bundles);
    obs_write ~metrics_json ~trace_out;
    Ok ()
  in
  let doc =
    "Explain every warning with a cross-tier witness: the minimal static \
     event slice, the dynamic shadow-state transition, the reproducing \
     fuzz genome, the crash image and the recovery verdict, correlated \
     into evidence bundles by bug identity."
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(
      term_result
        (const run $ setup_logs_term $ model_term $ file_arg $ entry_term
       $ clients_term $ fuzz_budget_term $ crash_term $ recover_term
       $ recovery_entry_term $ seed_term $ json_term $ html_term
       $ metrics_json_term $ trace_out_term))

(* The resident analyzer: keeps the cross-run caches warm and answers
   check/crash-explore/inject requests over a socket (or stdio), or
   re-checks a watched directory. See lib/serve. *)
let serve_cmd =
  let socket_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket at PATH.")
  in
  let stdio_term =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:
            "Serve line-delimited JSON requests from stdin to stdout \
             (single deterministic client; used by the test suite).")
  in
  let watch_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "watch" ] ~docv:"DIR"
          ~doc:
            "Poll DIR for .nvmir changes and re-check changed files, \
             printing one line per re-check. The model flags select the \
             model watched files are checked under.")
  in
  let once_term =
    Arg.(
      value & flag
      & info [ "once" ] ~doc:"With --watch: one scan pass, then exit.")
  in
  let interval_term =
    Arg.(
      value & opt int 200
      & info [ "interval" ] ~docv:"MS"
          ~doc:"Polling interval for --watch, milliseconds.")
  in
  let max_requests_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-requests" ] ~docv:"N"
          ~doc:"Exit after N requests (watch re-checks included).")
  in
  let run () model socket stdio watch once interval max_requests
      field_insensitive pmem_roots domains metrics_json trace_out =
    Option.iter Pool.set_default_size domains;
    obs_setup ~metrics_json ~trace_out;
    let t = Serve.Daemon.create () in
    let r =
      match (socket, stdio, watch) with
      | None, true, None ->
        Serve.Daemon.serve_stdio ?max_requests t;
        Ok ()
      | Some path, false, None ->
        Serve.Daemon.serve_socket ?max_requests t ~path;
        Ok ()
      | None, false, Some dir ->
        let params =
          Serve.Cache.default_params
            ~field_sensitive:(not field_insensitive)
            ~persistent_roots:pmem_roots model
        in
        Serve.Daemon.serve_watch ?max_requests ~interval_ms:interval ~once t
          ~dir ~params;
        Ok ()
      | None, false, None ->
        Error (`Msg "choose one of --socket PATH, --stdio, --watch DIR")
      | _ -> Error (`Msg "choose exactly one of --socket, --stdio, --watch")
    in
    obs_write ~metrics_json ~trace_out;
    r
  in
  let doc =
    "Run the resident incremental analyzer: a long-lived daemon that keeps \
     DSG summaries, interprocedural memo results and per-root warnings \
     cached across requests, invalidating only the functions whose IR \
     content hash changed."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      term_result
        (const run $ setup_logs_term $ model_term $ socket_term $ stdio_term
       $ watch_term $ once_term $ interval_term $ max_requests_term
       $ field_insensitive_term $ pmem_roots_term $ domains_term
       $ metrics_json_term $ trace_out_term))

let main_cmd =
  let doc = "detect deep memory persistency bugs in NVM programs" in
  let info = Cmd.info "deepmc" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      check_cmd; check_mixed_cmd; explain_cmd; fix_cmd; crash_cmd;
      crash_explore_cmd; recover_cmd; inject_cmd; fuzz_cmd; serve_cmd;
      fmt_cmd; dsg_cmd; cfg_cmd; trace_cmd; corpus_cmd; rules_cmd; stats_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
