(* Recovery-path verification. For every durable image a crash can
   leave, reconstitute a post-crash heap (optionally media-corrupted),
   run the program's recovery entry on it, and classify the outcome.
   See recover.mli for the three rules this reports. *)

module Crash_space = Runtime.Crash_space
module Pmem = Runtime.Pmem
module Interp = Runtime.Interp
module Value = Runtime.Value

type verdict = Restored | Flagged | Silent_accept | Crashed

let verdict_name = function
  | Restored -> "restored"
  | Flagged -> "flagged"
  | Silent_accept -> "silent-accept"
  | Crashed -> "crashed"

type image_check = {
  task : Crash_space.task;
  persisted : (int * int) list;
  corruptions : Pmem.corruption list;
  verdict : verdict;
  corrupt_reads : (Pmem.addr * Nvmir.Loc.t) list;
  residual_corrupt : int;
  idempotent : bool;
}

type report = {
  recovery_entry : string;
  images : image_check list;
  crash_points : int;
  images_checked : int;
  corruptions_injected : int;
  restored : int;
  flagged : int;
  silent_accepts : int;
  crashes : int;
  non_idempotent : int;
  sampled : bool;
  warnings : Analysis.Warning.t list;
}

(* ------------------------------------------------------------------ *)
(* Instruments *)

let m_images =
  Obs.Metrics.counter "recover.images_checked"
    ~desc:"crash images run through the recovery entry"

let m_corruptions =
  Obs.Metrics.counter "recover.corruptions_injected"
    ~desc:"media corruptions injected across crash images"

let m_latency =
  Obs.Metrics.histogram "recover.latency_ns"
    ~desc:"per-image recovery execution latency"

let m_verdicts =
  Obs.Metrics.counter "recover.verdicts"
    ~desc:"recovery outcomes by verdict class"

(* ------------------------------------------------------------------ *)
(* One image *)

(* The recovery convention: [recover]'s parameters are references to
   the surviving persistent objects, in id order; missing ones read as
   null so a partial heap still types. *)
let recovery_args heap (fn : Nvmir.Func.t) =
  let persistent =
    List.filter (Pmem.is_persistent heap) (Pmem.live_objects heap)
    |> List.sort Int.compare
  in
  List.mapi
    (fun i _ ->
      match List.nth_opt persistent i with
      | Some id -> Value.vref id
      | None -> Value.Vnull)
    fn.Nvmir.Func.params

(* Persistent cache state, the fix-point the idempotence rule compares:
   durable snapshots would miss repairs recovery wrote but has not yet
   persisted, and those still change what a re-run observes. *)
let persistent_snapshot heap =
  List.filter_map
    (fun id ->
      if Pmem.is_persistent heap id then
        Some
          ( id,
            Array.init (Pmem.obj_size heap id) (fun slot ->
                Pmem.cached_value heap { Pmem.obj_id = id; slot }) )
      else None)
    (List.sort Int.compare (Pmem.live_objects heap))

let snapshots_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (ida, va) (idb, vb) ->
         ida = idb
         && Array.length va = Array.length vb
         && Array.for_all2 Value.equal va vb)
       a b

let run_recovery ~recovery_entry ~args heap prog =
  let interp = Interp.create ~pmem:heap prog in
  let outcome =
    match Interp.run_values ~entry:recovery_entry ~args interp with
    | v -> Ok v
    | exception (Interp.Runtime_error _ | Interp.Out_of_fuel) -> Error ()
  in
  (outcome, Interp.corrupt_reads interp)

let check_image ?config ~recovery_entry ~fn ~seed prog
    (ci : Crash_space.crash_image) ~from =
  let t0 = if Obs.enabled () then Obs.now_ns () else 0L in
  let corruptions =
    match seed with
    | Some seed -> Pmem.corrupt_image from ~seed ci.Crash_space.ci_image
    | None -> []
  in
  let corrupt = List.map (fun c -> c.Pmem.c_addr) corruptions in
  let heap = Pmem.restore ?config ~from ~image:ci.Crash_space.ci_image ~corrupt () in
  let args = recovery_args heap fn in
  let outcome, corrupt_reads = run_recovery ~recovery_entry ~args heap prog in
  let residual_corrupt = Pmem.corrupt_slot_count heap in
  let verdict, idempotent =
    match outcome with
    | Error () -> (Crashed, true) (* idempotence is moot: run 1 died *)
    | Ok v ->
      let flagged = Value.truthy v in
      let s1 = persistent_snapshot heap in
      let idempotent =
        match run_recovery ~recovery_entry ~args heap prog with
        | Ok _, _ -> snapshots_equal s1 (persistent_snapshot heap)
        | Error (), _ -> false (* a re-run must not crash either *)
      in
      let verdict =
        if flagged then Flagged
        else if residual_corrupt > 0 then Silent_accept
        else Restored
      in
      (verdict, idempotent)
  in
  if Obs.enabled () then begin
    Obs.Metrics.incr m_images;
    Obs.Metrics.add m_corruptions (List.length corruptions);
    Obs.Metrics.add_labelled m_verdicts
      ("verdict=" ^ verdict_name verdict) 1;
    Obs.Metrics.observe m_latency (Int64.to_int (Int64.sub (Obs.now_ns ()) t0))
  end;
  {
    task = ci.Crash_space.ci_task;
    persisted = ci.Crash_space.ci_persisted;
    corruptions;
    verdict;
    corrupt_reads;
    residual_corrupt;
    idempotent;
  }

(* ------------------------------------------------------------------ *)
(* Warnings *)

(* Where whole-recovery defects (silent accept, non-idempotence) are
   reported: the first located instruction of the recovery entry
   block, or the function's own location. *)
let report_loc (fn : Nvmir.Func.t) =
  let entry = Nvmir.Func.entry_block fn in
  match
    List.find_opt
      (fun (i : Nvmir.Instr.t) -> not (Nvmir.Loc.is_none i.Nvmir.Instr.loc))
      entry.Nvmir.Func.instrs
  with
  | Some i -> i.Nvmir.Instr.loc
  | None -> fn.Nvmir.Func.floc

let task_name = function
  | Crash_space.Point k -> Fmt.str "point %d" k
  | Crash_space.Exit -> "exit"

let warnings_of ~model ~recovery_entry ~fn heap_name checks =
  (* The witness pins the exact crash image the recovery run tripped
     on: crash-point, image id, persisted subset, corruption record and
     the verdict the executor reached. Built only when capture is on. *)
  let witness_of (c : image_check) =
    if not (Analysis.Witness.enabled ()) then None
    else
      Some
        (Analysis.Witness.Recover
           {
             r_task = task_name c.task;
             r_image = Analysis.Witness.image_id c.persisted;
             r_persisted = c.persisted;
             r_corruptions =
               List.map
                 (fun (co : Pmem.corruption) ->
                   ( co.Pmem.c_addr.Pmem.obj_id,
                     co.Pmem.c_addr.Pmem.slot,
                     Pmem.corruption_kind_name co.Pmem.c_kind ))
                 c.corruptions;
             r_verdict = verdict_name c.verdict;
           })
  in
  let w ?ctx rule loc msg =
    let witness = Option.bind ctx witness_of in
    Analysis.Warning.make ~origin:Analysis.Warning.Dynamic ?witness ~rule
      ~model ~loc ~fname:recovery_entry msg
  in
  let loc0 = report_loc fn in
  let unguarded =
    List.concat_map
      (fun c ->
        List.map
          (fun ((addr : Pmem.addr), loc) ->
            w ~ctx:c Analysis.Warning.Unguarded_recovery_read loc
              (Fmt.str
                 "recovery reads possibly-corrupt slot %s[%d] without a CRC \
                  guard"
                 (heap_name addr.Pmem.obj_id) addr.Pmem.slot))
          c.corrupt_reads)
      checks
  in
  let silent =
    match List.find_opt (fun c -> c.verdict = Silent_accept) checks with
    | Some c ->
      [
        w ~ctx:c Analysis.Warning.Silent_corruption_accept loc0
          (Fmt.str
             "recovery returned success with %d corrupt slot(s) still \
              present"
             c.residual_corrupt);
      ]
    | None -> []
  in
  let non_idem =
    match List.find_opt (fun c -> not c.idempotent) checks with
    | Some c ->
      [
        w ~ctx:c Analysis.Warning.Non_idempotent_recovery loc0
          "running recovery twice over the same image changes persistent \
           state (recovery must be a fix-point)";
      ]
    | None -> []
  in
  Analysis.Warning.sort
    (Analysis.Warning.dedup (unguarded @ silent @ non_idem))

(* ------------------------------------------------------------------ *)
(* Driver *)

let verify ?config ?entry ?args ?(recovery_entry = "recover") ?bound
    ?(seed = 1) ?(corrupt = true) ?(model = Analysis.Model.Strict) prog =
  Obs.Span.with_ ~name:"recover-verify" ~args:[ ("entry", recovery_entry) ]
  @@ fun () ->
  let fn =
    match Nvmir.Prog.find_func prog recovery_entry with
    | Some fn -> fn
    | None ->
      invalid_arg
        (Fmt.str "Recover.verify: no recovery entry %S" recovery_entry)
  in
  let crash_points = Crash_space.count_points ?config ?entry ?args prog in
  let tasks =
    List.init crash_points (fun i -> Crash_space.Point (i + 1))
    @ [ Crash_space.Exit ]
  in
  let counter = ref 0 in
  let heap_names = Hashtbl.create 8 in
  let checks, sampled =
    List.fold_left
      (fun (acc, sampled) task ->
        let from, images, s =
          Crash_space.crash_images ?config ?entry ?args ?bound ~seed ~task
            prog
        in
        List.iter
          (fun id ->
            match Pmem.obj_name from id with
            | Some n -> Hashtbl.replace heap_names id n
            | None -> ())
          (Pmem.live_objects from);
        let checks =
          List.map
            (fun ci ->
              incr counter;
              let seed =
                if corrupt then Some (seed + (137 * !counter)) else None
              in
              check_image ?config ~recovery_entry ~fn ~seed prog ci ~from)
            images
        in
        (acc @ checks, sampled || s))
      ([], false) tasks
  in
  let heap_name id =
    match Hashtbl.find_opt heap_names id with
    | Some n -> n
    | None -> Fmt.str "o%d" id
  in
  let count p = List.length (List.filter p checks) in
  {
    recovery_entry;
    images = checks;
    crash_points;
    images_checked = List.length checks;
    corruptions_injected =
      List.fold_left (fun n c -> n + List.length c.corruptions) 0 checks;
    restored = count (fun c -> c.verdict = Restored);
    flagged = count (fun c -> c.verdict = Flagged);
    silent_accepts = count (fun c -> c.verdict = Silent_accept);
    crashes = count (fun c -> c.verdict = Crashed);
    non_idempotent = count (fun c -> not c.idempotent);
    sampled;
    warnings = warnings_of ~model ~recovery_entry ~fn heap_name checks;
  }

let consistent r = r.warnings = []

(* ------------------------------------------------------------------ *)
(* Printing *)

let pp_verdict ppf v = Fmt.string ppf (verdict_name v)

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>recovery entry %s: %d crash point(s), %d image(s)%s, %d \
     corruption(s) injected@,\
     verdicts: %d restored, %d flagged, %d silent-accept, %d crashed; %d \
     non-idempotent@,\
     %a@]"
    r.recovery_entry r.crash_points r.images_checked
    (if r.sampled then " (sampled)" else "")
    r.corruptions_injected r.restored r.flagged r.silent_accepts r.crashes
    r.non_idempotent
    (fun ppf -> function
      | [] -> Fmt.string ppf "recovery verified clean: no warnings"
      | ws ->
        Fmt.pf ppf "%a" (Fmt.list ~sep:Fmt.cut Analysis.Warning.pp) ws)
    r.warnings
