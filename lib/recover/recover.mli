(** Recovery-path verification: the recovery tier.

    The static and dynamic tiers check the {e forward} path — that a
    program's stores become durable in the right order. This module
    checks the {e backward} path: for every durable image a crash can
    leave ({!Runtime.Crash_space.crash_images}), optionally corrupted
    under the media model ({!Runtime.Pmem.corrupt_image}), the
    program's recovery entry is reconstituted onto the image and
    executed, and its behaviour is classified.

    Three rules fall out, all invisible to the static tier:

    - [unguarded-recovery-read]: recovery read a corrupt slot through a
      plain load instead of a CRC-guarded path;
    - [silent-corruption-accept]: recovery returned success while
      corrupt slots were still present;
    - [non-idempotent-recovery]: running recovery a second time over
      the already-recovered heap changed persistent state (recovery
      must be a fix-point, since a crash {e during} recovery reruns
      it). *)

(** How one recovery execution ended. *)
type verdict =
  | Restored  (** returned success, no corruption left *)
  | Flagged  (** returned nonzero: corruption detected and reported *)
  | Silent_accept  (** returned success with corrupt slots remaining *)
  | Crashed  (** runtime error or fuel exhaustion *)

val verdict_name : verdict -> string

(** One crash image run through recovery. *)
type image_check = {
  task : Runtime.Crash_space.task;
  persisted : (int * int) list;  (** in-flight lines that reached NVM *)
  corruptions : Runtime.Pmem.corruption list;
  verdict : verdict;
  corrupt_reads : (Runtime.Pmem.addr * Nvmir.Loc.t) list;
      (** unguarded reads of corrupt slots during the first run *)
  residual_corrupt : int;  (** corrupt slots left when recovery returned *)
  idempotent : bool;  (** second run left persistent state unchanged *)
}

type report = {
  recovery_entry : string;
  images : image_check list;
  crash_points : int;
  images_checked : int;
  corruptions_injected : int;
  restored : int;
  flagged : int;
  silent_accepts : int;
  crashes : int;
  non_idempotent : int;
  sampled : bool;  (** some crash point's subset space was sampled *)
  warnings : Analysis.Warning.t list;  (** deduplicated, sorted *)
}

val verify :
  ?config:Runtime.Config.t ->
  ?entry:string ->
  ?args:int list ->
  ?recovery_entry:string ->
  ?bound:int ->
  ?seed:int ->
  ?corrupt:bool ->
  ?model:Analysis.Model.t ->
  Nvmir.Prog.t ->
  report
(** Run [recovery_entry] (default ["recover"]) over every distinct
    durable image of every crash task of [entry] (default the
    program's main). [corrupt] (default [true]) applies the seeded
    media-corruption model to each image first. The recovery function
    receives references to the first [k] persistent objects of the
    restored heap, one per parameter, in id order; its return value is
    the accept (zero) / flag (nonzero) signal.

    @raise Invalid_argument when [recovery_entry] is not defined. *)

val consistent : report -> bool
(** No warnings: every image was either restored or flagged, all reads
    of corrupt slots were CRC-guarded, and recovery is idempotent. *)

val pp_verdict : verdict Fmt.t
val pp_report : report Fmt.t
