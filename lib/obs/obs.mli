(** Process-wide observability: a lock-free metrics registry and a
    per-domain span tracer.

    Instrument handles are declared once at module initialization; the
    backing cells are interned lazily, on the first touch while
    telemetry is enabled. With telemetry disabled (the default) every
    hot-path call is a single atomic load and a branch — no allocation,
    no clock read, no lock — so instrumented code can stay instrumented
    in production builds. *)

val enabled : unit -> bool
(** Global telemetry switch, off by default. *)

val set_enabled : bool -> unit

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds. Callers pay for the syscall, so gate
    clock reads on [enabled]. *)

module Metrics : sig
  type kind = Counter | Gauge | Histogram

  type counter
  type gauge
  type histogram

  (** Declaring a handle registers its (name, kind, description) in the
      instrument catalog immediately; no mutable state is allocated
      until the instrument is first touched while telemetry is on. *)

  val counter : ?desc:string -> string -> counter
  val gauge : ?desc:string -> string -> gauge
  val histogram : ?desc:string -> string -> histogram

  val incr : counter -> unit
  val add : counter -> int -> unit

  val add_labelled : counter -> string -> int -> unit
  (** [add_labelled c label n] bumps the child instrument
      ["name{label}"]. Children appear in snapshots, not the catalog. *)

  val set : gauge -> int -> unit

  val set_max : gauge -> int -> unit
  (** High-water mark: CAS loop, keeps the maximum ever set. *)

  val observe : histogram -> int -> unit
  (** Record one sample. Buckets are log2-scaled: bucket [i] holds
      samples in [[2^i, 2^(i+1))] (non-positive samples land in bucket
      0). *)

  val observe_labelled : histogram -> string -> int -> unit

  (** Snapshots. *)

  type hist = {
    h_count : int;
    h_sum : int;
    h_buckets : (int * int) list;  (** (bucket lower bound, count) *)
  }

  type value = Count of int | Level of int | Dist of hist

  val snapshot : unit -> (string * value) list
  (** Every live instrument (including labelled children), sorted by
      name. Concurrent updates may be mid-flight; each cell is read
      atomically but the snapshot as a whole is not a consistent cut. *)

  val diff :
    before:(string * value) list ->
    (string * value) list ->
    (string * value) list
  (** Counter and histogram entries become deltas; gauges keep the
      [after] value. Instruments only present in [after] pass through. *)

  val find : (string * value) list -> string -> value option

  val int_of_value : value -> int
  (** Count/Level payload, or a histogram's sample count. *)

  val live_instruments : unit -> int
  (** Number of interned cells — 0 proves the disabled path allocated
      no instrument state. *)

  val reset : unit -> unit
  (** Drop all cells (handles re-intern on next touch). Call only when
      no instrumented code is running. *)

  type meta = { m_name : string; m_kind : kind; m_desc : string }

  val catalog : unit -> meta list
  (** Every declared instrument, sorted by name — available whether or
      not telemetry ever ran. *)

  val kind_name : kind -> string
  val pp_value : value Fmt.t
end

module Span : sig
  (** Chrome trace_event-format span tracing. Each domain appends to
      its own buffer (no sharing, no locks on the hot path), giving one
      track per domain with per-track monotone timestamps and balanced
      B/E pairs by construction. *)

  type phase = Begin | End

  type event = {
    ev_name : string;
    ev_ph : phase;
    ev_ts_ns : int64;  (** absolute monotonic stamp *)
    ev_tid : int;  (** domain id *)
    ev_args : (string * string) list;
  }

  val with_ : ?args:(string * string) list -> name:string -> (unit -> 'a) -> 'a
  (** Runs [f] inside a span. Disabled: tail-calls [f]. The End event
      is emitted even if [f] raises, and even if telemetry is switched
      off mid-span, so tracks stay balanced. *)

  val set_track_name : string -> unit
  (** Label the calling domain's track (rendered via a thread_name
      metadata record). No-op while disabled. *)

  val events : unit -> event list
  (** All buffered events, grouped by track, oldest first per track. *)

  val reset : unit -> unit
  (** Clear every track's buffer. Call only when no spans are open. *)

  val to_json : unit -> string
  (** The Chrome [{"traceEvents": [...]}] document: B/E phase records,
      [ts] in microseconds relative to the earliest event, [pid] 1,
      [tid] = domain id. Load in chrome://tracing or Perfetto. *)

  val write_file : string -> unit
end
