(* Process-wide observability. See obs.mli for the contract; the two
   invariants that matter here are (a) the disabled path touches no
   mutable state beyond one atomic load, and (b) cells survive a
   [reset] only through re-interning, so a reset genuinely returns the
   registry to "nothing allocated". *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let now_ns () : int64 = Monotonic_clock.now ()

module Metrics = struct
  type kind = Counter | Gauge | Histogram

  let kind_name = function
    | Counter -> "counter"
    | Gauge -> "gauge"
    | Histogram -> "histogram"

  type hist_cell = {
    hc_count : int Atomic.t;
    hc_sum : int Atomic.t;
    hc_buckets : int Atomic.t array;
  }

  type cell =
    | Ccounter of int Atomic.t
    | Cgauge of int Atomic.t
    | Chist of hist_cell

  (* Registry: cells keyed by full instrument name; the catalog keyed
     by declared name. [generation] invalidates the per-handle cell
     caches across [reset] so a stale cache can never resurrect a
     dropped cell. *)
  let reg_lock = Mutex.create ()
  let cells : (string, cell) Hashtbl.t = Hashtbl.create 64

  type meta = { m_name : string; m_kind : kind; m_desc : string }

  let metas : (string, meta) Hashtbl.t = Hashtbl.create 64
  let generation = Atomic.make 0

  type counter = { c_name : string; mutable c_cell : (int * int Atomic.t) option }
  type gauge = { g_name : string; mutable g_cell : (int * int Atomic.t) option }
  type histogram = { h_name : string; mutable h_cell : (int * hist_cell) option }

  let register_meta name kind desc =
    Mutex.lock reg_lock;
    if not (Hashtbl.mem metas name) then
      Hashtbl.replace metas name { m_name = name; m_kind = kind; m_desc = desc };
    Mutex.unlock reg_lock

  let counter ?(desc = "") name =
    register_meta name Counter desc;
    { c_name = name; c_cell = None }

  let gauge ?(desc = "") name =
    register_meta name Gauge desc;
    { g_name = name; g_cell = None }

  let histogram ?(desc = "") name =
    register_meta name Histogram desc;
    { h_name = name; h_cell = None }

  let n_buckets = 62

  let new_hist_cell () =
    {
      hc_count = Atomic.make 0;
      hc_sum = Atomic.make 0;
      hc_buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
    }

  (* Find-or-create under the registry lock. Interning is idempotent,
     so the per-handle cache write outside the lock is a benign race:
     both racers end up caching the same cell. *)
  let intern name mk =
    Mutex.lock reg_lock;
    let c =
      match Hashtbl.find_opt cells name with
      | Some c -> c
      | None ->
        let c = mk () in
        Hashtbl.replace cells name c;
        c
    in
    Mutex.unlock reg_lock;
    c

  let counter_cell name =
    match intern name (fun () -> Ccounter (Atomic.make 0)) with
    | Ccounter a -> a
    | _ -> invalid_arg ("Obs.Metrics: " ^ name ^ " is not a counter")

  let gauge_cell name =
    match intern name (fun () -> Cgauge (Atomic.make 0)) with
    | Cgauge a -> a
    | _ -> invalid_arg ("Obs.Metrics: " ^ name ^ " is not a gauge")

  let hist_cell name =
    match intern name (fun () -> Chist (new_hist_cell ())) with
    | Chist h -> h
    | _ -> invalid_arg ("Obs.Metrics: " ^ name ^ " is not a histogram")

  let counter_resolve (c : counter) =
    let gen = Atomic.get generation in
    match c.c_cell with
    | Some (g, a) when g = gen -> a
    | _ ->
      let a = counter_cell c.c_name in
      c.c_cell <- Some (gen, a);
      a

  let gauge_resolve (g : gauge) =
    let gen = Atomic.get generation in
    match g.g_cell with
    | Some (gn, a) when gn = gen -> a
    | _ ->
      let a = gauge_cell g.g_name in
      g.g_cell <- Some (gen, a);
      a

  let hist_resolve (h : histogram) =
    let gen = Atomic.get generation in
    match h.h_cell with
    | Some (gn, c) when gn = gen -> c
    | _ ->
      let c = hist_cell h.h_name in
      h.h_cell <- Some (gen, c);
      c

  let add c n = if enabled () then ignore (Atomic.fetch_and_add (counter_resolve c) n)
  let incr c = add c 1
  let labelled_name name label = name ^ "{" ^ label ^ "}"

  let add_labelled c label n =
    if enabled () then
      ignore (Atomic.fetch_and_add (counter_cell (labelled_name c.c_name label)) n)

  let set g v = if enabled () then Atomic.set (gauge_resolve g) v

  let rec max_into a v =
    let cur = Atomic.get a in
    if v > cur && not (Atomic.compare_and_set a cur v) then max_into a v

  let set_max g v = if enabled () then max_into (gauge_resolve g) v

  let bucket_of v =
    if v <= 1 then 0
    else begin
      let i = ref 0 and x = ref v in
      while !x > 1 && !i < n_buckets - 1 do
        i := !i + 1;
        x := !x lsr 1
      done;
      !i
    end

  let hist_observe hc v =
    ignore (Atomic.fetch_and_add hc.hc_count 1);
    ignore (Atomic.fetch_and_add hc.hc_sum v);
    ignore (Atomic.fetch_and_add hc.hc_buckets.(bucket_of v) 1)

  let observe h v = if enabled () then hist_observe (hist_resolve h) v

  let observe_labelled h label v =
    if enabled () then hist_observe (hist_cell (labelled_name h.h_name label)) v

  type hist = { h_count : int; h_sum : int; h_buckets : (int * int) list }
  type value = Count of int | Level of int | Dist of hist

  let read_hist hc =
    let buckets = ref [] in
    for i = n_buckets - 1 downto 0 do
      let n = Atomic.get hc.hc_buckets.(i) in
      if n > 0 then buckets := ((if i = 0 then 0 else 1 lsl i), n) :: !buckets
    done;
    {
      h_count = Atomic.get hc.hc_count;
      h_sum = Atomic.get hc.hc_sum;
      h_buckets = !buckets;
    }

  let snapshot () =
    Mutex.lock reg_lock;
    let out =
      Hashtbl.fold
        (fun name cell acc ->
          let v =
            match cell with
            | Ccounter a -> Count (Atomic.get a)
            | Cgauge a -> Level (Atomic.get a)
            | Chist hc -> Dist (read_hist hc)
          in
          (name, v) :: acc)
        cells []
    in
    Mutex.unlock reg_lock;
    List.sort (fun (a, _) (b, _) -> String.compare a b) out

  let find samples name = List.assoc_opt name samples

  let int_of_value = function
    | Count n | Level n -> n
    | Dist h -> h.h_count

  let diff ~before after =
    List.map
      (fun (name, v) ->
        match (v, find before name) with
        | Count a, Some (Count b) -> (name, Count (a - b))
        | Dist a, Some (Dist b) ->
          let buckets =
            List.map
              (fun (lo, n) ->
                let prev =
                  match List.assoc_opt lo b.h_buckets with
                  | Some p -> p
                  | None -> 0
                in
                (lo, n - prev))
              a.h_buckets
            |> List.filter (fun (_, n) -> n <> 0)
          in
          ( name,
            Dist
              {
                h_count = a.h_count - b.h_count;
                h_sum = a.h_sum - b.h_sum;
                h_buckets = buckets;
              } )
        | v, _ -> (name, v))
      after

  let live_instruments () =
    Mutex.lock reg_lock;
    let n = Hashtbl.length cells in
    Mutex.unlock reg_lock;
    n

  let reset () =
    Mutex.lock reg_lock;
    Hashtbl.reset cells;
    Atomic.incr generation;
    Mutex.unlock reg_lock

  let catalog () =
    Mutex.lock reg_lock;
    let out = Hashtbl.fold (fun _ m acc -> m :: acc) metas [] in
    Mutex.unlock reg_lock;
    List.sort (fun a b -> String.compare a.m_name b.m_name) out

  let pp_value ppf = function
    | Count n -> Fmt.pf ppf "%d" n
    | Level n -> Fmt.pf ppf "%d" n
    | Dist h ->
      Fmt.pf ppf "count=%d sum=%d mean=%.1f" h.h_count h.h_sum
        (if h.h_count = 0 then 0. else float_of_int h.h_sum /. float_of_int h.h_count)
end

module Span = struct
  type phase = Begin | End

  type event = {
    ev_name : string;
    ev_ph : phase;
    ev_ts_ns : int64;
    ev_tid : int;
    ev_args : (string * string) list;
  }

  (* One buffer per domain, registered on first use; the owner appends
     without synchronization (newest first), readers take [bufs_lock]
     and are only exact when the owners are quiescent. *)
  type buf = {
    b_tid : int;
    mutable b_events : event list;  (* reversed *)
    mutable b_track : string option;
  }

  let bufs_lock = Mutex.create ()
  let bufs : buf list ref = ref []

  let key =
    Domain.DLS.new_key (fun () ->
        let b =
          { b_tid = (Domain.self () :> int); b_events = []; b_track = None }
        in
        Mutex.lock bufs_lock;
        bufs := b :: !bufs;
        Mutex.unlock bufs_lock;
        b)

  let with_ ?(args = []) ~name f =
    if not (enabled ()) then f ()
    else begin
      let b = Domain.DLS.get key in
      b.b_events <-
        {
          ev_name = name;
          ev_ph = Begin;
          ev_ts_ns = now_ns ();
          ev_tid = b.b_tid;
          ev_args = args;
        }
        :: b.b_events;
      Fun.protect
        ~finally:(fun () ->
          (* Unconditional: keeps B/E balanced even if telemetry was
             switched off while the span was open. *)
          b.b_events <-
            {
              ev_name = name;
              ev_ph = End;
              ev_ts_ns = now_ns ();
              ev_tid = b.b_tid;
              ev_args = [];
            }
            :: b.b_events)
        f
    end

  let set_track_name name =
    if enabled () then (Domain.DLS.get key).b_track <- Some name

  let tracks () =
    Mutex.lock bufs_lock;
    let bs = !bufs in
    Mutex.unlock bufs_lock;
    List.sort (fun a b -> compare a.b_tid b.b_tid) bs

  let events () =
    List.concat_map (fun b -> List.rev b.b_events) (tracks ())

  let reset () =
    Mutex.lock bufs_lock;
    List.iter
      (fun b ->
        b.b_events <- [];
        b.b_track <- None)
      !bufs;
    Mutex.unlock bufs_lock

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let to_json () =
    let tracks = tracks () in
    let origin =
      List.fold_left
        (fun acc b ->
          List.fold_left (fun acc e -> min acc e.ev_ts_ns) acc b.b_events)
        Int64.max_int tracks
    in
    let origin = if origin = Int64.max_int then 0L else origin in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"traceEvents\": [";
    let first = ref true in
    let emit s =
      if not !first then Buffer.add_string buf ",\n  " else Buffer.add_string buf "\n  ";
      first := false;
      Buffer.add_string buf s
    in
    List.iter
      (fun b ->
        (match b.b_track with
        | Some name ->
          emit
            (Printf.sprintf
               "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \
                \"tid\": %d, \"args\": {\"name\": \"%s\"}}"
               b.b_tid (escape name))
        | None -> ());
        List.iter
          (fun e ->
            let ts_us =
              Int64.to_float (Int64.sub e.ev_ts_ns origin) /. 1_000.
            in
            let args =
              match e.ev_args with
              | [] -> ""
              | kvs ->
                let fields =
                  List.map
                    (fun (k, v) ->
                      Printf.sprintf "\"%s\": \"%s\"" (escape k) (escape v))
                    kvs
                in
                Printf.sprintf ", \"args\": {%s}" (String.concat ", " fields)
            in
            emit
              (Printf.sprintf
                 "{\"name\": \"%s\", \"ph\": \"%s\", \"ts\": %.3f, \
                  \"pid\": 1, \"tid\": %d%s}"
                 (escape e.ev_name)
                 (match e.ev_ph with Begin -> "B" | End -> "E")
                 ts_us e.ev_tid args))
          (List.rev b.b_events))
      tracks;
    Buffer.add_string buf "\n]}\n";
    Buffer.contents buf

  let write_file path =
    let oc = open_out path in
    output_string oc (to_json ());
    close_out oc
end
