(* Recursive-descent parser for the textual .nvmir format.

   Grammar sketch (comments with '#' or '//'; ';' also starts a comment
   to end of line so pretty-printed comments re-parse):

     program   := (struct | func)*
     struct    := "struct" ID "{" field ("," field)* "}"
     field     := ID ":" ty
     ty        := ("int" | "bool" | "ptr" ty | ID) ("[" INT "]")*
     func      := "func" ID "(" params ")" ("->" ty)? "{" block+ "}"
     block     := ID ":" instr* term
     instr     := ... (see [parse_instr]) ... ("@" FILE:LINE)?
     term      := "ret" operand? | "br" ID | "br" operand "," ID "," ID

   Instruction mnemonics match the pretty-printer so that
   [parse (Fmt.str "%a" Prog.pp prog)] round-trips. *)

exception Parse_error of string * int

let fail line fmt = Fmt.kstr (fun m -> raise (Parse_error (m, line))) fmt

type st = { lx : Lexer.t; default_file : string }

let next st = Lexer.next st.lx
let peek st = Lexer.peek st.lx

let expect st tok what =
  let got, line = next st in
  if got <> tok then
    fail line "expected %s, got %a" what Lexer.pp_token got

let expect_ident st what =
  match next st with
  | Lexer.IDENT s, _ -> s
  | got, line -> fail line "expected %s, got %a" what Lexer.pp_token got

let expect_int st what =
  match next st with
  | Lexer.INT n, _ -> n
  | got, line -> fail line "expected %s, got %a" what Lexer.pp_token got

let keywords =
  [
    "store"; "load"; "alloc"; "addr"; "crc"; "crc_check"; "flush"; "fence";
    "persist"; "tx_begin";
    "tx_end"; "tx_add"; "epoch_begin"; "epoch_end"; "strand_begin";
    "strand_end"; "call"; "ret"; "br"; "func"; "struct"; "ptr"; "int"; "bool";
    "pmem"; "vmem"; "exact"; "object"; "bytes"; "null"; "true"; "false";
  ]

let is_keyword s = List.mem s keywords

let rec parse_ty st : Ty.t =
  let base =
    match next st with
    | Lexer.IDENT "int", _ -> Ty.Int
    | Lexer.IDENT "bool", _ -> Ty.Bool
    | Lexer.IDENT "ptr", _ -> Ty.Ptr (parse_ty st)
    | Lexer.IDENT name, line ->
      if is_keyword name then fail line "keyword %s is not a type name" name;
      Ty.Named name
    | got, line -> fail line "expected a type, got %a" Lexer.pp_token got
  in
  parse_array_suffix st base

and parse_array_suffix st base =
  match peek st with
  | Lexer.LBRACK ->
    ignore (next st);
    let n = expect_int st "array length" in
    expect st Lexer.RBRACK "']'";
    parse_array_suffix st (Ty.Array (base, n))
  | _ -> base

let parse_operand st : Operand.t =
  match next st with
  | Lexer.INT n, _ -> Operand.Const n
  | Lexer.IDENT "null", _ -> Operand.Null
  | Lexer.IDENT "true", _ -> Operand.Bool_const true
  | Lexer.IDENT "false", _ -> Operand.Bool_const false
  | Lexer.IDENT name, _ -> Operand.Var name
  | got, line -> fail line "expected an operand, got %a" Lexer.pp_token got

(* A place: base variable followed by ->field and [index] accesses. *)
let parse_place_from st base =
  let rec accesses acc =
    match peek st with
    | Lexer.ARROW ->
      ignore (next st);
      let f = expect_ident st "field name" in
      accesses (Place.Field f :: acc)
    | Lexer.LBRACK ->
      ignore (next st);
      let op = parse_operand st in
      expect st Lexer.RBRACK "']'";
      accesses (Place.Index op :: acc)
    | _ -> List.rev acc
  in
  Place.make base (accesses [])

let parse_place st =
  let base = expect_ident st "place base variable" in
  parse_place_from st base

let parse_extent st : Instr.extent =
  match next st with
  | Lexer.IDENT "exact", _ -> Instr.Exact
  | Lexer.IDENT "object", _ -> Instr.Object
  | Lexer.IDENT "bytes", _ ->
    expect st Lexer.LPAREN "'('";
    let n = expect_int st "byte count" in
    expect st Lexer.RPAREN "')'";
    Instr.Bytes n
  | got, line ->
    fail line "expected extent (exact|object|bytes), got %a" Lexer.pp_token got

(* Optional trailing "@ file:line" annotation. *)
let parse_loc st : Loc.t =
  match peek st with
  | Lexer.AT_LOC s -> (
    ignore (next st);
    try Loc.of_string s
    with Invalid_argument m -> raise (Parse_error (m, 0)))
  | _ -> Loc.none

let parse_call_args st =
  expect st Lexer.LPAREN "'('";
  if peek st = Lexer.RPAREN then (
    ignore (next st);
    [])
  else
    let rec more acc =
      let op = parse_operand st in
      match next st with
      | Lexer.COMMA, _ -> more (op :: acc)
      | Lexer.RPAREN, _ -> List.rev (op :: acc)
      | got, line -> fail line "expected ',' or ')', got %a" Lexer.pp_token got
    in
    more []

(* What follows "x = ...". *)
let parse_rhs st dst : Instr.kind =
  match peek st with
  | Lexer.IDENT "load" ->
    ignore (next st);
    Instr.Load { dst; src = parse_place st }
  | Lexer.IDENT "alloc" ->
    ignore (next st);
    let space =
      match next st with
      | Lexer.IDENT "pmem", _ -> Instr.Persistent
      | Lexer.IDENT "vmem", _ -> Instr.Volatile
      | got, line -> fail line "expected pmem|vmem, got %a" Lexer.pp_token got
    in
    Instr.Alloc { dst; ty = parse_ty st; space }
  | Lexer.IDENT "addr" ->
    ignore (next st);
    Instr.Addr_of { dst; src = parse_place st }
  | Lexer.IDENT "crc" ->
    ignore (next st);
    let extent = parse_extent st in
    Instr.Crc_of { dst; target = parse_place st; extent }
  | Lexer.IDENT "crc_check" ->
    ignore (next st);
    let extent = parse_extent st in
    let target = parse_place st in
    expect st Lexer.COMMA "','";
    Instr.Crc_check { dst; target; extent; crc = parse_place st }
  | Lexer.IDENT "call" ->
    ignore (next st);
    let callee = expect_ident st "callee name" in
    Instr.Call { dst = Some dst; callee; args = parse_call_args st }
  | _ -> (
    let lhs = parse_operand st in
    match peek st with
    | Lexer.OP sym -> (
      ignore (next st);
      match Instr.binop_of_string sym with
      | Some op -> Instr.Binop { dst; op; lhs; rhs = parse_operand st }
      | None -> fail 0 "unknown binary operator %s" sym)
    | _ -> Instr.Assign { dst; src = lhs })

(* One instruction or terminator. Returns [`Instr] for ordinary
   instructions, [`Term] when a block terminator was parsed. *)
type item = Instr_item of Instr.t | Term_item of Func.terminator * Loc.t

let parse_item st : item =
  let kind_to_item kind =
    let loc = parse_loc st in
    Instr_item (Instr.make ~loc kind)
  in
  match next st with
  | Lexer.IDENT "store", _ ->
    let dst = parse_place st in
    expect st Lexer.COMMA "','";
    let src = parse_operand st in
    kind_to_item (Instr.Store { dst; src })
  | Lexer.IDENT "flush", _ ->
    let extent = parse_extent st in
    kind_to_item (Instr.Flush { target = parse_place st; extent })
  | Lexer.IDENT "persist", _ ->
    let extent = parse_extent st in
    kind_to_item (Instr.Persist { target = parse_place st; extent })
  | Lexer.IDENT "tx_add", _ ->
    let extent = parse_extent st in
    kind_to_item (Instr.Tx_add { target = parse_place st; extent })
  | Lexer.IDENT "fence", _ -> kind_to_item Instr.Fence
  | Lexer.IDENT "tx_begin", _ -> kind_to_item Instr.Tx_begin
  | Lexer.IDENT "tx_end", _ -> kind_to_item Instr.Tx_end
  | Lexer.IDENT "epoch_begin", _ -> kind_to_item Instr.Epoch_begin
  | Lexer.IDENT "epoch_end", _ -> kind_to_item Instr.Epoch_end
  | Lexer.IDENT "strand_begin", _ ->
    kind_to_item (Instr.Strand_begin (expect_int st "strand id"))
  | Lexer.IDENT "strand_end", _ ->
    kind_to_item (Instr.Strand_end (expect_int st "strand id"))
  | Lexer.IDENT "call", _ ->
    let callee = expect_ident st "callee name" in
    kind_to_item (Instr.Call { dst = None; callee; args = parse_call_args st })
  | Lexer.IDENT "ret", _ -> (
    match peek st with
    | Lexer.INT _ | Lexer.IDENT "null" | Lexer.IDENT "true"
    | Lexer.IDENT "false" ->
      let v = parse_operand st in
      Term_item (Func.Ret (Some v), parse_loc st)
    | Lexer.IDENT name when not (is_keyword name) ->
      (* "ret x" returns x — unless "x :" starts the next block. Try
         consuming the identifier; if ':' follows, rewind. *)
      let snap = Lexer.save st.lx in
      ignore (next st);
      if peek st = Lexer.COLON then (
        Lexer.restore st.lx snap;
        Term_item (Func.Ret None, Loc.none))
      else Term_item (Func.Ret (Some (Operand.Var name)), parse_loc st)
    | _ -> Term_item (Func.Ret None, parse_loc st))
  | Lexer.IDENT "br", _ -> (
    let first, line = next st in
    match (first, peek st) with
    | Lexer.IDENT lbl, tok when tok <> Lexer.COMMA ->
      Term_item (Func.Br lbl, parse_loc st)
    | Lexer.IDENT _, Lexer.COMMA | Lexer.INT _, _ -> (
      let cond =
        match first with
        | Lexer.IDENT v -> Operand.Var v
        | Lexer.INT n -> Operand.Const n
        | _ -> fail line "bad branch condition"
      in
      ignore (next st);
      (* the comma *)
      let then_lbl = expect_ident st "then label" in
      expect st Lexer.COMMA "','";
      let else_lbl = expect_ident st "else label" in
      Term_item (Func.Cond_br { cond; then_lbl; else_lbl }, parse_loc st))
    | got, _ -> fail line "expected branch target, got %a" Lexer.pp_token got)
  | Lexer.IDENT dst, line ->
    if is_keyword dst then fail line "unexpected keyword %s" dst;
    expect st Lexer.EQUAL "'='";
    kind_to_item (parse_rhs st dst)
  | got, line -> fail line "expected an instruction, got %a" Lexer.pp_token got

let parse_block st first_label : Func.block =
  let rec items acc =
    match parse_item st with
    | Instr_item i -> items (i :: acc)
    | Term_item (term, term_loc) ->
      { Func.label = first_label; instrs = List.rev acc; term; term_loc }
  in
  items []

let parse_func st : Func.t =
  let fname = expect_ident st "function name" in
  expect st Lexer.LPAREN "'('";
  let params =
    if peek st = Lexer.RPAREN then (
      ignore (next st);
      [])
    else
      let rec more acc =
        let p = expect_ident st "parameter name" in
        expect st Lexer.COLON "':'";
        let ty = parse_ty st in
        match next st with
        | Lexer.COMMA, _ -> more ((p, ty) :: acc)
        | Lexer.RPAREN, _ -> List.rev ((p, ty) :: acc)
        | got, line ->
          fail line "expected ',' or ')', got %a" Lexer.pp_token got
      in
      more []
  in
  let ret_ty =
    match peek st with
    | Lexer.ARROW ->
      ignore (next st);
      Some (parse_ty st)
    | _ -> None
  in
  expect st Lexer.LBRACE "'{'";
  let rec blocks acc =
    match next st with
    | Lexer.RBRACE, _ -> List.rev acc
    | Lexer.IDENT label, _ ->
      expect st Lexer.COLON "':' after block label";
      blocks (parse_block st label :: acc)
    | got, line ->
      fail line "expected block label or '}', got %a" Lexer.pp_token got
  in
  let blocks = blocks [] in
  {
    Func.fname;
    params;
    ret_ty;
    blocks;
    floc = Loc.make ~file:st.default_file ~line:0;
  }

let parse_struct st : Ty.struct_def =
  let sname = expect_ident st "struct name" in
  expect st Lexer.LBRACE "'{'";
  let rec fields acc =
    match next st with
    | Lexer.RBRACE, _ -> List.rev acc
    | Lexer.IDENT f, _ -> (
      expect st Lexer.COLON "':'";
      let ty = parse_ty st in
      match peek st with
      | Lexer.COMMA ->
        ignore (next st);
        fields ((f, ty) :: acc)
      | _ -> fields ((f, ty) :: acc))
    | got, line ->
      fail line "expected field name or '}', got %a" Lexer.pp_token got
  in
  { Ty.sname; fields = fields [] }

(* Parse a whole program from a string. [file] is used for diagnostics
   only; instruction locations come from their '@' annotations. *)
let parse ?(file = "<string>") src : Prog.t =
  let st = { lx = Lexer.create src; default_file = file } in
  let prog = Prog.create () in
  let rec toplevel () =
    match next st with
    | Lexer.EOF, _ -> ()
    | Lexer.IDENT "struct", _ ->
      Prog.add_struct prog (parse_struct st);
      toplevel ()
    | Lexer.IDENT "func", _ ->
      Prog.add_func prog (parse_func st);
      toplevel ()
    | got, line ->
      fail line "expected 'struct' or 'func', got %a" Lexer.pp_token got
  in
  (try toplevel ()
   with Lexer.Error (m, line) -> raise (Parse_error (m, line)));
  prog

let parse_file path : Prog.t =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse ~file:path src
