(** Stable content hashing (FNV-1a 64) for IR artifacts.

    The pretty-printer is the canonical serialization, so hashing the
    printed text gives a content key that is stable across process
    runs and sensitive to everything the checker can observe —
    instruction structure, operands, and source locations. *)

type t = int64

val empty : t
(** The FNV-1a offset basis; fold strings/ints into it. *)

val add_string : t -> string -> t
val add_char : t -> char -> t
val add_int : t -> int -> t
val of_string : string -> t

val combine : t -> t -> t
(** Order-sensitive mix of a second hash into the first. *)

val to_hex : t -> string
(** 16-digit lowercase hex, zero-padded; stable across runs. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
