(* Functions: a list of labeled basic blocks; the first block is the
   entry. Each block ends in exactly one terminator. *)

type terminator =
  | Ret of Operand.t option
  | Br of string
  | Cond_br of { cond : Operand.t; then_lbl : string; else_lbl : string }

type block = {
  label : string;
  instrs : Instr.t list;
  term : terminator;
  term_loc : Loc.t;
}

type t = {
  fname : string;
  params : (string * Ty.t) list;
  ret_ty : Ty.t option;
  blocks : block list;
  floc : Loc.t;
}

let name t = t.fname
let entry_block t =
  match t.blocks with
  | [] -> invalid_arg ("Func.entry_block: empty function " ^ t.fname)
  | b :: _ -> b

let find_block t label =
  List.find_opt (fun b -> String.equal b.label label) t.blocks

let successors (b : block) =
  match b.term with
  | Ret _ -> []
  | Br l -> [ l ]
  | Cond_br { then_lbl; else_lbl; _ } -> [ then_lbl; else_lbl ]

let pp_terminator ppf = function
  | Ret None -> Fmt.string ppf "ret"
  | Ret (Some op) -> Fmt.pf ppf "ret %a" Operand.pp op
  | Br l -> Fmt.pf ppf "br %s" l
  | Cond_br { cond; then_lbl; else_lbl } ->
    Fmt.pf ppf "br %a, %s, %s" Operand.pp cond then_lbl else_lbl

let pp_block ppf b =
  Fmt.pf ppf "@[<v 2>%s:@ %a%a%a@]" b.label
    Fmt.(list ~sep:(any "@ ") Instr.pp)
    b.instrs
    Fmt.(if List.length b.instrs > 0 then any "@ " else nop)
    () pp_terminator b.term

let pp ppf t =
  let pp_param ppf (p, ty) = Fmt.pf ppf "%s: %a" p Ty.pp ty in
  let pp_ret ppf = function
    | None -> ()
    | Some ty -> Fmt.pf ppf " -> %a" Ty.pp ty
  in
  Fmt.pf ppf "@[<v>func %s(%a)%a {@ %a@ }@]" t.fname
    Fmt.(list ~sep:(any ", ") pp_param)
    t.params pp_ret t.ret_ty
    Fmt.(list ~sep:(any "@ ") pp_block)
    t.blocks

(* Functions called (directly) by this function. *)
let callees t =
  List.concat_map
    (fun b ->
      List.filter_map
        (fun (i : Instr.t) ->
          match i.kind with
          | Instr.Call { callee; _ } -> Some callee
          | _ -> None)
        b.instrs)
    t.blocks
  |> List.sort_uniq String.compare

let iter_instrs f t =
  List.iter (fun b -> List.iter (f b.label) b.instrs) t.blocks

let instr_count t =
  List.fold_left (fun acc b -> acc + List.length b.instrs + 1) 0 t.blocks

(* The printed body is the canonical serialization (the parser
   round-trips through it), so hashing it keys every cached artifact
   derived from this function: same hash => same analysis inputs. *)
let content_hash t = Chash.of_string (Fmt.str "%a" pp t)
