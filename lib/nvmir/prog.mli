(** Whole programs: struct definitions plus functions, with the
    well-formedness checks a front end would guarantee. *)

type t

val create : unit -> t
val tenv : t -> Ty.env

val add_struct : t -> Ty.struct_def -> unit
(** @raise Invalid_argument on duplicate struct names. *)

val structs : t -> Ty.struct_def list
(** In declaration order. *)

val add_func : t -> Func.t -> unit
(** @raise Invalid_argument on duplicate function names. *)

val find_func : t -> string -> Func.t option

val funcs : t -> Func.t list
(** In declaration order. *)

val func_names : t -> string list

type error = { in_func : string option; message : string }

val pp_error : error Fmt.t

val validate : t -> error list
(** Well-formedness: unique labels, resolvable branch targets and struct
    references, balanced transaction/epoch markers on every path. An
    empty list means the program is analyzable and executable. *)

val pp : t Fmt.t
(** Prints the textual form accepted by {!Parser.parse}. *)

val total_instrs : t -> int

val function_hashes : t -> (string * Chash.t) list
(** [(name, Func.content_hash f)] in declaration order. *)

val digest : t -> Chash.t
(** Whole-program content hash: struct layouts plus every function
    body in declaration order. Equal digests mean a checker run sees
    byte-identical inputs. *)
