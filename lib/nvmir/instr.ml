(* IR instructions.

   The instruction set is the persistency-relevant slice of LLVM IR that
   DeepMC consumes, plus enough scalar computation to express the corpus
   programs: stores/loads through places, persistent and volatile
   allocation, cacheline flushes, persist barriers (fences), combined
   persist operations (flush + fence, like PMDK's pmemobj_persist or
   NVM-Direct's nvm_persist1), transactional markers with undo-logging
   (TX_ADD), epoch and strand boundaries, and calls. *)

type space = Persistent | Volatile

(* How much memory a flush/persist/log covers, relative to its place:
   - [Exact]: precisely the denoted field/element (e.g. a flush of
     [&lk->state]);
   - [Object]: the whole object the place's base points to, as in
     [pmemobj_persist(pop, t, sizeof t)] applied to the full struct;
   - [Bytes n]: an explicit byte count (buffer flushes such as
     [pmfs_flush_buffer(blockp, len + 1, false)]). *)
type extent = Exact | Object | Bytes of int

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type kind =
  | Store of { dst : Place.t; src : Operand.t }
  | Load of { dst : string; src : Place.t }
  | Assign of { dst : string; src : Operand.t }
  | Binop of { dst : string; op : binop; lhs : Operand.t; rhs : Operand.t }
  | Alloc of { dst : string; ty : Ty.t; space : space }
  | Addr_of of { dst : string; src : Place.t }
      (* take the address of a place, e.g. [&iter->timer] *)
  | Flush of { target : Place.t; extent : extent }
  | Fence
  | Persist of { target : Place.t; extent : extent } (* flush + fence *)
  | Tx_begin
  | Tx_end
  | Tx_add of { target : Place.t; extent : extent } (* undo-log snapshot *)
  | Epoch_begin
  | Epoch_end
  | Strand_begin of int
  | Strand_end of int
  | Call of { dst : string option; callee : string; args : Operand.t list }
  | Crc_of of { dst : string; target : Place.t; extent : extent }
      (* checksum of a slot range, the CRC-validates-data primitive of
         verified-storage recovery code: [c = crc object j] *)
  | Crc_check of { dst : string; target : Place.t; extent : extent;
                   crc : Place.t }
      (* corruption-detecting boolean: true iff the stored CRC matches
         the range AND no covered slot is media-corrupt. A guarded read:
         it never trips the unguarded-corrupt-read machinery. *)
  | Comment of string

type t = { kind : kind; loc : Loc.t }

let make ?(loc = Loc.none) kind = { kind; loc }

let pp_space ppf = function
  | Persistent -> Fmt.string ppf "pmem"
  | Volatile -> Fmt.string ppf "vmem"

let pp_extent ppf = function
  | Exact -> Fmt.string ppf "exact"
  | Object -> Fmt.string ppf "object"
  | Bytes n -> Fmt.pf ppf "bytes(%d)" n

let string_of_binop = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let binop_of_string = function
  | "+" -> Some Add
  | "-" -> Some Sub
  | "*" -> Some Mul
  | "/" -> Some Div
  | "==" -> Some Eq
  | "!=" -> Some Ne
  | "<" -> Some Lt
  | "<=" -> Some Le
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | "&&" -> Some And
  | "||" -> Some Or
  | _ -> None

let pp_kind ppf = function
  | Store { dst; src } -> Fmt.pf ppf "store %a, %a" Place.pp dst Operand.pp src
  | Load { dst; src } -> Fmt.pf ppf "%s = load %a" dst Place.pp src
  | Assign { dst; src } -> Fmt.pf ppf "%s = %a" dst Operand.pp src
  | Binop { dst; op; lhs; rhs } ->
    Fmt.pf ppf "%s = %a %s %a" dst Operand.pp lhs (string_of_binop op)
      Operand.pp rhs
  | Alloc { dst; ty; space } ->
    Fmt.pf ppf "%s = alloc %a %a" dst pp_space space Ty.pp ty
  | Addr_of { dst; src } -> Fmt.pf ppf "%s = addr %a" dst Place.pp src
  | Flush { target; extent } ->
    Fmt.pf ppf "flush %a %a" pp_extent extent Place.pp target
  | Fence -> Fmt.string ppf "fence"
  | Persist { target; extent } ->
    Fmt.pf ppf "persist %a %a" pp_extent extent Place.pp target
  | Tx_begin -> Fmt.string ppf "tx_begin"
  | Tx_end -> Fmt.string ppf "tx_end"
  | Tx_add { target; extent } ->
    Fmt.pf ppf "tx_add %a %a" pp_extent extent Place.pp target
  | Epoch_begin -> Fmt.string ppf "epoch_begin"
  | Epoch_end -> Fmt.string ppf "epoch_end"
  | Strand_begin n -> Fmt.pf ppf "strand_begin %d" n
  | Strand_end n -> Fmt.pf ppf "strand_end %d" n
  | Call { dst; callee; args } ->
    let pp_dst ppf = function
      | None -> ()
      | Some d -> Fmt.pf ppf "%s = " d
    in
    Fmt.pf ppf "%acall %s(%a)" pp_dst dst callee
      Fmt.(list ~sep:(any ", ") Operand.pp)
      args
  | Crc_of { dst; target; extent } ->
    Fmt.pf ppf "%s = crc %a %a" dst pp_extent extent Place.pp target
  | Crc_check { dst; target; extent; crc } ->
    Fmt.pf ppf "%s = crc_check %a %a, %a" dst pp_extent extent Place.pp target
      Place.pp crc
  | Comment s -> Fmt.pf ppf "; %s" s

let pp ppf { kind; loc } =
  if Loc.is_none loc then pp_kind ppf kind
  else Fmt.pf ppf "%a  @@ %a" pp_kind kind Loc.pp loc

(* Variables defined by an instruction. *)
let defs i =
  match i.kind with
  | Load { dst; _ }
  | Assign { dst; _ }
  | Binop { dst; _ }
  | Alloc { dst; _ }
  | Addr_of { dst; _ }
  | Crc_of { dst; _ }
  | Crc_check { dst; _ } -> [ dst ]
  | Call { dst = Some d; _ } -> [ d ]
  | Call { dst = None; _ }
  | Store _ | Flush _ | Fence | Persist _ | Tx_begin | Tx_end | Tx_add _
  | Epoch_begin | Epoch_end | Strand_begin _ | Strand_end _ | Comment _ -> []

let uses_of_operand = Operand.var_opt

let uses_of_place (p : Place.t) =
  let idx_vars =
    List.filter_map
      (function
        | Place.Index op -> uses_of_operand op
        | Place.Field _ -> None)
      (Place.path p)
  in
  Place.base p :: idx_vars

(* Variables read by an instruction. *)
let uses i =
  let of_op op = Option.to_list (uses_of_operand op) in
  match i.kind with
  | Store { dst; src } -> uses_of_place dst @ of_op src
  | Load { src; _ } -> uses_of_place src
  | Assign { src; _ } -> of_op src
  | Binop { lhs; rhs; _ } -> of_op lhs @ of_op rhs
  | Alloc _ -> []
  | Addr_of { src; _ } -> uses_of_place src
  | Flush { target; _ } | Persist { target; _ } | Tx_add { target; _ }
  | Crc_of { target; _ } ->
    uses_of_place target
  | Crc_check { target; crc; _ } -> uses_of_place target @ uses_of_place crc
  | Call { args; _ } -> List.concat_map of_op args
  | Fence | Tx_begin | Tx_end | Epoch_begin | Epoch_end | Strand_begin _
  | Strand_end _ | Comment _ -> []

(* Does this instruction touch persistent state in a way the checker
   cares about? Used by trace collection to prioritize paths. *)
let is_persistency_relevant i =
  match i.kind with
  | Flush _ | Fence | Persist _ | Tx_begin | Tx_end | Tx_add _ | Epoch_begin
  | Epoch_end | Strand_begin _ | Strand_end _ -> true
  (* CRC reads are media-integrity checks, not write-back ordering
     events: the static persistency rules do not see them, which is
     exactly why the recovery tier exists. *)
  | Store _ | Load _ | Assign _ | Binop _ | Alloc _ | Addr_of _ | Call _
  | Crc_of _ | Crc_check _ | Comment _ -> false
