(** IR instructions: the persistency-relevant slice of a compiler IR
    (stores, loads, flushes, persist barriers, combined persists,
    transactional logging, epoch/strand annotations, calls) plus enough
    scalar computation to express realistic NVM programs. *)

type space = Persistent | Volatile

(** How much memory a flush/persist/log covers, relative to its place:
    [Exact] the denoted field/element, [Object] the whole object the
    place's base points to, [Bytes n] an explicit byte count. *)
type extent = Exact | Object | Bytes of int

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type kind =
  | Store of { dst : Place.t; src : Operand.t }
  | Load of { dst : string; src : Place.t }
  | Assign of { dst : string; src : Operand.t }
  | Binop of { dst : string; op : binop; lhs : Operand.t; rhs : Operand.t }
  | Alloc of { dst : string; ty : Ty.t; space : space }
  | Addr_of of { dst : string; src : Place.t }
      (** take the address of a place, e.g. [&iter->timer] *)
  | Flush of { target : Place.t; extent : extent }  (** clwb *)
  | Fence  (** sfence / persist barrier *)
  | Persist of { target : Place.t; extent : extent }  (** flush + fence *)
  | Tx_begin
  | Tx_end
  | Tx_add of { target : Place.t; extent : extent }
      (** undo-log snapshot (PMDK's TX_ADD) *)
  | Epoch_begin
  | Epoch_end
  | Strand_begin of int
  | Strand_end of int
  | Call of { dst : string option; callee : string; args : Operand.t list }
  | Crc_of of { dst : string; target : Place.t; extent : extent }
      (** checksum of a slot range ([c = crc object j]) — the
          CRC-validates-data primitive of verified-storage recovery *)
  | Crc_check of { dst : string; target : Place.t; extent : extent;
                   crc : Place.t }
      (** corruption-detecting boolean ([ok = crc_check object j,
          j->crc]): true iff the stored CRC matches the range and no
          covered slot is media-corrupt. A guarded read. *)
  | Comment of string

type t = { kind : kind; loc : Loc.t }

val make : ?loc:Loc.t -> kind -> t
val pp_space : space Fmt.t
val pp_extent : extent Fmt.t
val string_of_binop : binop -> string
val binop_of_string : string -> binop option
val pp_kind : kind Fmt.t
val pp : t Fmt.t

val defs : t -> string list
(** Variables defined by the instruction. *)

val uses : t -> string list
(** Variables read by the instruction. *)

val is_persistency_relevant : t -> bool
(** Does the instruction affect persistent state ordering/durability? *)
