(* Imperative builder DSL for constructing IR programs in OCaml.

   The corpus re-implementations (lib/corpus) are written against this
   API. A function body is built block by block; opening a new label
   while the current block lacks a terminator inserts a fall-through
   branch, which keeps the corpus code close in shape to the original C.

   Each function builder carries a default source file so instructions
   only need a [~line] to carry the paper's ground-truth coordinates. *)

type fb = {
  fname : string;
  file : string;
  mutable cur_label : string;
  mutable cur_instrs : Instr.t list; (* reversed *)
  mutable cur_term : (Func.terminator * Loc.t) option;
  mutable finished : Func.block list; (* reversed *)
}

let loc_of fb line =
  if line = 0 then Loc.none else Loc.make ~file:fb.file ~line

let flush_block fb =
  let term, term_loc =
    match fb.cur_term with
    | Some (t, l) -> (t, l)
    | None ->
      invalid_arg
        (Fmt.str "Builder: block %s in %s lacks a terminator" fb.cur_label
           fb.fname)
  in
  let block =
    {
      Func.label = fb.cur_label;
      instrs = List.rev fb.cur_instrs;
      term;
      term_loc;
    }
  in
  fb.finished <- block :: fb.finished

(* Open a new basic block. If the current block has no terminator yet, a
   fall-through branch to the new label is inserted. *)
let label fb name =
  (match fb.cur_term with
  | None -> fb.cur_term <- Some (Func.Br name, Loc.none)
  | Some _ -> ());
  flush_block fb;
  fb.cur_label <- name;
  fb.cur_instrs <- [];
  fb.cur_term <- None

let emit fb ?(line = 0) kind =
  (match fb.cur_term with
  | Some _ ->
    invalid_arg
      (Fmt.str "Builder: instruction after terminator in %s/%s" fb.fname
         fb.cur_label)
  | None -> ());
  fb.cur_instrs <- Instr.make ~loc:(loc_of fb line) kind :: fb.cur_instrs

let terminate fb ?(line = 0) term =
  match fb.cur_term with
  | Some _ ->
    invalid_arg
      (Fmt.str "Builder: duplicate terminator in %s/%s" fb.fname fb.cur_label)
  | None -> fb.cur_term <- Some (term, loc_of fb line)

(* Operand shorthands. *)
let i n = Operand.Const n
let b v = Operand.Bool_const v
let v name = Operand.Var name
let null = Operand.Null

(* Place shorthands. *)
let vr base = Place.var base
let fld base f = Place.field base f
let idx base op = Place.index base op
let fldi base f op = Place.field_index base f op

(* Instructions. *)
let store fb ?line dst src = emit fb ?line (Instr.Store { dst; src })
let load fb ?line dst src = emit fb ?line (Instr.Load { dst; src })
let assign fb ?line dst src = emit fb ?line (Instr.Assign { dst; src })

let binop fb ?line dst op lhs rhs =
  emit fb ?line (Instr.Binop { dst; op; lhs; rhs })

let palloc fb ?line dst ty =
  emit fb ?line (Instr.Alloc { dst; ty; space = Instr.Persistent })

let valloc fb ?line dst ty =
  emit fb ?line (Instr.Alloc { dst; ty; space = Instr.Volatile })

let addr_of fb ?line dst src = emit fb ?line (Instr.Addr_of { dst; src })

let flush fb ?line ?(extent = Instr.Exact) target =
  emit fb ?line (Instr.Flush { target; extent })

let fence fb ?line () = emit fb ?line Instr.Fence

let persist fb ?line ?(extent = Instr.Exact) target =
  emit fb ?line (Instr.Persist { target; extent })

let crc_of fb ?line ?(extent = Instr.Object) dst target =
  emit fb ?line (Instr.Crc_of { dst; target; extent })

let crc_check fb ?line ?(extent = Instr.Object) dst target crc =
  emit fb ?line (Instr.Crc_check { dst; target; extent; crc })

let tx_begin fb ?line () = emit fb ?line Instr.Tx_begin
let tx_end fb ?line () = emit fb ?line Instr.Tx_end

let tx_add fb ?line ?(extent = Instr.Object) target =
  emit fb ?line (Instr.Tx_add { target; extent })

let epoch_begin fb ?line () = emit fb ?line Instr.Epoch_begin
let epoch_end fb ?line () = emit fb ?line Instr.Epoch_end
let strand_begin fb ?line n = emit fb ?line (Instr.Strand_begin n)
let strand_end fb ?line n = emit fb ?line (Instr.Strand_end n)

let call fb ?line ?dst callee args =
  emit fb ?line (Instr.Call { dst; callee; args })

let comment fb ?line text = emit fb ?line (Instr.Comment text)

(* Terminators. *)
let ret fb ?line ?value () = terminate fb ?line (Func.Ret value)
let br fb ?line lbl = terminate fb ?line (Func.Br lbl)

let cond_br fb ?line cond then_lbl else_lbl =
  terminate fb ?line (Func.Cond_br { cond; then_lbl; else_lbl })

(* Build a function. [body] receives the builder positioned at the entry
   block (labeled "entry"). *)
let func prog ?(file = "<builtin>") ?(line = 0) ?ret name params body =
  let fb =
    {
      fname = name;
      file;
      cur_label = "entry";
      cur_instrs = [];
      cur_term = None;
      finished = [];
    }
  in
  body fb;
  (match fb.cur_term with
  | None ->
    (* implicit void return at the end of the last block *)
    fb.cur_term <- Some (Func.Ret None, Loc.none)
  | Some _ -> ());
  flush_block fb;
  let f : Func.t =
    {
      Func.fname = name;
      params;
      ret_ty = ret;
      blocks = List.rev fb.finished;
      floc = (if line = 0 then Loc.none else Loc.make ~file ~line);
    }
  in
  Prog.add_func prog f;
  f

let struct_ prog name fields = Prog.add_struct prog { Ty.sname = name; fields }
