(** Imperative builder DSL for constructing IR programs from OCaml.

    A function body is built block by block; opening a new label while
    the current block lacks a terminator inserts a fall-through branch.
    Each function builder carries a default source file, so instructions
    only need a [~line] to carry ground-truth coordinates:

    {[
      let f = Builder.func prog ~file:"bank.c" "deposit"
        [ ("acct", Ty.Ptr (Ty.Named "account")) ]
        (fun fb ->
          Builder.store fb ~line:10 (Builder.fld "acct" "balance") (Builder.i 100);
          Builder.persist fb ~line:11 (Builder.fld "acct" "balance");
          Builder.ret fb ())
    ]} *)

type fb
(** A function under construction. *)

(** {1 Shorthands} *)

val i : int -> Operand.t
val b : bool -> Operand.t
val v : string -> Operand.t
val null : Operand.t
val vr : string -> Place.t
val fld : string -> string -> Place.t
val idx : string -> Operand.t -> Place.t
val fldi : string -> string -> Operand.t -> Place.t

(** {1 Blocks} *)

val label : fb -> string -> unit
(** Open a new basic block, falling through from the current one if it
    has no terminator yet. *)

(** {1 Instructions} — all take an optional [?line] within the
    function's file *)

val store : fb -> ?line:int -> Place.t -> Operand.t -> unit
val load : fb -> ?line:int -> string -> Place.t -> unit
val assign : fb -> ?line:int -> string -> Operand.t -> unit
val binop : fb -> ?line:int -> string -> Instr.binop -> Operand.t -> Operand.t -> unit
val palloc : fb -> ?line:int -> string -> Ty.t -> unit
val valloc : fb -> ?line:int -> string -> Ty.t -> unit
val addr_of : fb -> ?line:int -> string -> Place.t -> unit
val flush : fb -> ?line:int -> ?extent:Instr.extent -> Place.t -> unit
val fence : fb -> ?line:int -> unit -> unit
val persist : fb -> ?line:int -> ?extent:Instr.extent -> Place.t -> unit
val crc_of : fb -> ?line:int -> ?extent:Instr.extent -> string -> Place.t -> unit
(** [crc_of fb dst target]: checksum of the target range (default the
    whole object) into local [dst]. *)

val crc_check :
  fb -> ?line:int -> ?extent:Instr.extent -> string -> Place.t -> Place.t -> unit
(** [crc_check fb dst target crc]: corruption-detecting boolean into
    [dst]. *)

val tx_begin : fb -> ?line:int -> unit -> unit
val tx_end : fb -> ?line:int -> unit -> unit
val tx_add : fb -> ?line:int -> ?extent:Instr.extent -> Place.t -> unit
val epoch_begin : fb -> ?line:int -> unit -> unit
val epoch_end : fb -> ?line:int -> unit -> unit
val strand_begin : fb -> ?line:int -> int -> unit
val strand_end : fb -> ?line:int -> int -> unit
val call : fb -> ?line:int -> ?dst:string -> string -> Operand.t list -> unit
val comment : fb -> ?line:int -> string -> unit

(** {1 Terminators} *)

val ret : fb -> ?line:int -> ?value:Operand.t -> unit -> unit
val br : fb -> ?line:int -> string -> unit
val cond_br : fb -> ?line:int -> Operand.t -> string -> string -> unit

(** {1 Top level} *)

val func :
  Prog.t ->
  ?file:string ->
  ?line:int ->
  ?ret:Ty.t ->
  string ->
  (string * Ty.t) list ->
  (fb -> unit) ->
  Func.t
(** Build a function and add it to the program. The body callback starts
    at the entry block; a missing final terminator becomes [ret]. *)

val struct_ : Prog.t -> string -> (string * Ty.t) list -> unit
