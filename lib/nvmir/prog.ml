(* Whole programs: struct definitions plus functions.

   [validate] performs the well-formedness checks a front end would
   normally guarantee: unique function and label names, resolvable branch
   targets, resolvable struct references, and balanced region markers on
   every straight-line block sequence. Analyses assume a validated
   program. *)

type t = {
  tenv : Ty.env;
  funcs : (string, Func.t) Hashtbl.t;
  mutable order : string list; (* declaration order, for stable output *)
  mutable struct_order : Ty.struct_def list;
}

let create () =
  {
    tenv = Ty.env_create ();
    funcs = Hashtbl.create 16;
    order = [];
    struct_order = [];
  }

let tenv t = t.tenv

let add_struct t sd =
  Ty.env_add t.tenv sd;
  t.struct_order <- t.struct_order @ [ sd ]

let structs t = t.struct_order

let add_func t (f : Func.t) =
  let name = Func.name f in
  if Hashtbl.mem t.funcs name then
    invalid_arg ("Prog.add_func: duplicate function " ^ name);
  Hashtbl.replace t.funcs name f;
  t.order <- t.order @ [ name ]

let find_func t name = Hashtbl.find_opt t.funcs name

let funcs t = List.filter_map (Hashtbl.find_opt t.funcs) t.order

let func_names t = t.order

type error = { in_func : string option; message : string }

let pp_error ppf e =
  match e.in_func with
  | None -> Fmt.pf ppf "program: %s" e.message
  | Some f -> Fmt.pf ppf "in %s: %s" f e.message

let rec struct_refs = function
  | Ty.Int | Ty.Bool -> []
  | Ty.Named n -> [ n ]
  | Ty.Ptr ty | Ty.Array (ty, _) -> struct_refs ty

let validate_func t (f : Func.t) : error list =
  let err fmt = Fmt.kstr (fun message -> { in_func = Some (Func.name f); message }) fmt in
  let errors = ref [] in
  let add e = errors := e :: !errors in
  if f.blocks = [] then add (err "function has no blocks");
  (* unique labels *)
  let labels = List.map (fun (b : Func.block) -> b.label) f.blocks in
  let sorted = List.sort_uniq String.compare labels in
  if List.length sorted <> List.length labels then add (err "duplicate block labels");
  (* resolvable branch targets *)
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun l ->
          if Func.find_block f l = None then
            add (err "block %s branches to unknown label %s" b.label l))
        (Func.successors b))
    f.blocks;
  (* resolvable struct references in params and allocs *)
  let check_ty ty =
    List.iter
      (fun n ->
        if Ty.env_find t.tenv n = None then add (err "unknown struct %s" n))
      (struct_refs ty)
  in
  List.iter (fun (_, ty) -> check_ty ty) f.params;
  Func.iter_instrs
    (fun _lbl (i : Instr.t) ->
      match i.kind with
      | Instr.Alloc { ty; _ } -> check_ty ty
      | _ -> ())
    f;
  List.rev !errors

(* Region markers (tx/epoch/strand) must nest properly along every
   acyclic path. We approximate by checking each block's net effect and
   confirming an overall-balanced entry-to-exit depth on a DFS. *)
let validate_regions (f : Func.t) : error list =
  let err fmt = Fmt.kstr (fun message -> { in_func = Some (Func.name f); message }) fmt in
  let block_delta (b : Func.block) =
    List.fold_left
      (fun (tx, ep) (i : Instr.t) ->
        match i.kind with
        | Instr.Tx_begin -> (tx + 1, ep)
        | Instr.Tx_end -> (tx - 1, ep)
        | Instr.Epoch_begin -> (tx, ep + 1)
        | Instr.Epoch_end -> (tx, ep - 1)
        | _ -> (tx, ep))
      (0, 0) b.instrs
  in
  let errors = ref [] in
  let visited = Hashtbl.create 16 in
  let rec dfs label tx ep =
    match Hashtbl.find_opt visited label with
    | Some (tx', ep') ->
      if tx <> tx' || ep <> ep' then
        errors :=
          err "block %s reached with inconsistent region depth" label :: !errors
    | None -> (
      Hashtbl.replace visited label (tx, ep);
      match Func.find_block f label with
      | None -> ()
      | Some b ->
        let dtx, dep = block_delta b in
        let tx = tx + dtx and ep = ep + dep in
        if tx < 0 then
          errors := err "block %s closes a transaction never opened" label :: !errors;
        if ep < 0 then
          errors := err "block %s closes an epoch never opened" label :: !errors;
        (match b.term with
        | Func.Ret _ ->
          if tx <> 0 then
            errors := err "return in %s with %d open transaction(s)" label tx :: !errors;
          if ep <> 0 then
            errors := err "return in %s with %d open epoch(s)" label ep :: !errors
        | Func.Br _ | Func.Cond_br _ -> ());
        List.iter (fun s -> dfs s tx ep) (Func.successors b))
  in
  (match f.blocks with [] -> () | b :: _ -> dfs b.label 0 0);
  List.rev !errors

let validate t : error list =
  List.concat_map (fun f -> validate_func t f @ validate_regions f) (funcs t)

let pp ppf t =
  let pp_structs ppf = function
    | [] -> ()
    | sds -> Fmt.pf ppf "%a@ @ " Fmt.(list ~sep:(any "@ @ ") Ty.pp_struct) sds
  in
  Fmt.pf ppf "@[<v>%a%a@]" pp_structs t.struct_order
    Fmt.(list ~sep:(any "@ @ ") Func.pp)
    (funcs t)

let total_instrs t =
  List.fold_left (fun acc f -> acc + Func.instr_count f) 0 (funcs t)

let function_hashes t =
  List.map (fun f -> (Func.name f, Func.content_hash f)) (funcs t)

(* Struct layouts feed field resolution everywhere, so the whole-program
   digest covers them alongside every function body, in declaration
   order (order is analysis-visible: it fixes root enumeration). *)
let digest t =
  let h =
    List.fold_left
      (fun h sd -> Chash.add_string h (Fmt.str "%a" Ty.pp_struct sd))
      Chash.empty t.struct_order
  in
  List.fold_left
    (fun h (name, fh) -> Chash.combine (Chash.add_string h name) fh)
    h (function_hashes t)
