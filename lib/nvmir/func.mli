(** Functions: labeled basic blocks, the first being the entry; each
    block ends in exactly one terminator. *)

type terminator =
  | Ret of Operand.t option
  | Br of string
  | Cond_br of { cond : Operand.t; then_lbl : string; else_lbl : string }

type block = {
  label : string;
  instrs : Instr.t list;
  term : terminator;
  term_loc : Loc.t;
}

type t = {
  fname : string;
  params : (string * Ty.t) list;
  ret_ty : Ty.t option;
  blocks : block list;
  floc : Loc.t;
}

val name : t -> string

val entry_block : t -> block
(** @raise Invalid_argument on an empty function. *)

val find_block : t -> string -> block option
val successors : block -> string list
val pp_terminator : terminator Fmt.t
val pp_block : block Fmt.t
val pp : t Fmt.t

val callees : t -> string list
(** Functions called directly, deduplicated and sorted. *)

val iter_instrs : (string -> Instr.t -> unit) -> t -> unit
(** Iterate instructions with their block label. *)

val instr_count : t -> int
(** Instructions plus one terminator per block. *)

val content_hash : t -> Chash.t
(** FNV-1a 64 over the printed body (including source locations):
    equal hashes mean the checker sees identical inputs for this
    function, so every derived cache entry may be reused. *)
