(* Stable content hashing for IR artifacts.

   FNV-1a over the pretty-printed text: the printer is the canonical
   serialization (parser round-trips through it in the tests), so two
   functions hash equal iff they print equal — including source
   locations, which warning messages embed, so any loc-visible edit
   changes the hash and invalidates dependent caches. 64-bit FNV keeps
   collisions negligible at corpus scale without pulling in Digest's
   MD5 (which would also work, but FNV folds incrementally without
   intermediate buffers). *)

type t = int64

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let add_char h c =
  Int64.mul (Int64.logxor h (Int64.of_int (Char.code c))) fnv_prime

let add_string h s =
  let h = ref h in
  String.iter (fun c -> h := add_char !h c) s;
  !h

let add_int h i =
  (* Fold all 8 bytes so small ints still perturb the high lanes. *)
  let h = ref h in
  for shift = 0 to 7 do
    let byte = (i lsr (shift * 8)) land 0xff in
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) fnv_prime
  done;
  !h

let empty = fnv_offset
let of_string s = add_string empty s

let combine a b =
  (* Mix b into a byte-by-byte; order-sensitive by construction. *)
  let h = ref a in
  for shift = 0 to 7 do
    let byte = Int64.to_int (Int64.shift_right_logical b (shift * 8)) land 0xff in
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) fnv_prime
  done;
  !h

let to_hex = Fmt.str "%016Lx"
let equal = Int64.equal
let compare = Int64.compare
let pp ppf h = Fmt.string ppf (to_hex h)
