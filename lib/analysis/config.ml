(* Static-analysis bounds (§4.3): path exploration is limited to a small
   number of loop iterations (10 by default) and recursion depth (5 by
   default); [max_paths] caps path enumeration per function so branchy
   code cannot explode trace collection. *)

(* [Streaming] enumerates root paths lazily and checks each as it
   completes — O(live paths) peak memory. [Materialized] is the original
   collect-everything-then-check pipeline, kept as a differential oracle
   for the streaming engine. Both produce identical warning sets. *)
type engine = Streaming | Materialized

type t = {
  loop_bound : int; (* times a back edge may be taken per path *)
  recursion_bound : int; (* times a function may appear on the call chain *)
  max_paths : int; (* paths enumerated per function *)
  expansion_fanout : int; (* callee traces spliced per call site *)
  engine : engine; (* trace-checking engine *)
}

(* loop_bound and recursion_bound follow §4.3; the path and fan-out caps
   bound the interprocedural cross-product of merged traces, which the
   paper leaves implicit. *)
let default =
  {
    loop_bound = 10;
    recursion_bound = 5;
    max_paths = 64;
    expansion_fanout = 3;
    engine = Streaming;
  }

let engine_name = function
  | Streaming -> "streaming"
  | Materialized -> "materialized"

let pp ppf t =
  Fmt.pf ppf
    "loop_bound=%d recursion_bound=%d max_paths=%d expansion_fanout=%d \
     engine=%s"
    t.loop_bound t.recursion_bound t.max_paths t.expansion_fanout
    (engine_name t.engine)
