(* Trace collection (§4.3).

   Phase 1 (intra-procedural): depth-first path enumeration over each
   function's CFG, bounded by [Config.loop_bound] back-edge traversals
   and [Config.max_paths] paths. Each path yields one trace whose events
   are resolved through the DSG; writes and flushes that the DSG proves
   volatile are dropped, so traces contain only persistent operations.

   Phase 2 (inter-procedural): the call graph is traversed so that
   callee traces are spliced into caller traces at call sites
   (Figure 11), bounded by [Config.recursion_bound] on the call chain
   and [Config.expansion_fanout] callee traces per site. Call/return
   provenance markers are kept in the merged trace.

   Two engines share these phases. [collect] is the original
   materializing pipeline: every root trace exists as a list before any
   rule runs. [stream] enumerates a root's paths lazily — the DFS is a
   [Seq] whose suspended branch frames share their event-prefix storage,
   and call-site expansion is a lazy cross-product over memoized callee
   suffixes — so peak memory is O(live paths), and the checker can
   consume (and discard) each path as it completes. Both enumerate
   identical traces in identical order; [collect] survives as the
   differential oracle behind [Config.Materialized]. *)

type t = Event.t list

(* Registry instruments, shared by both engines. "Paths expanded" are
   fully-merged root paths (what the rules consume); memo hits/misses
   count call-site lookups against the interprocedural memo, eager and
   lazy alike. *)
let m_paths =
  Obs.Metrics.counter "trace.paths_expanded"
    ~desc:"fully-expanded root paths handed to the rules"

let m_memo_hits =
  Obs.Metrics.counter "trace.memo_hits"
    ~desc:"call-site expansions served from the interprocedural memo"

let m_memo_misses =
  Obs.Metrics.counter "trace.memo_misses"
    ~desc:"call-site lookups that had to build (or lacked) a memo entry"

(* Events of one instruction, in order. [Persist] lowers to flush;fence. *)
let events_of_instr dsg ~fname (i : Nvmir.Instr.t) : Event.t list =
  let ev kind = Event.make ~fname ~loc:i.loc kind in
  match i.kind with
  | Nvmir.Instr.Store { dst; _ } ->
    let a = Dsa.Dsg.resolve dsg ~fname dst in
    if Dsa.Dsg.is_persistent_addr dsg a then [ ev (Event.Write a) ] else []
  | Nvmir.Instr.Flush { target; extent } ->
    let a = Dsa.Dsg.resolve_extent dsg ~fname target extent in
    if Dsa.Dsg.is_persistent_addr dsg a then
      [ ev (Event.Flush (a, Event.Plain)) ]
    else []
  | Nvmir.Instr.Persist { target; extent } ->
    let a = Dsa.Dsg.resolve_extent dsg ~fname target extent in
    if Dsa.Dsg.is_persistent_addr dsg a then
      [ ev (Event.Flush (a, Event.From_persist)); ev Event.Fence ]
    else []
  | Nvmir.Instr.Tx_add { target; extent } ->
    let a = Dsa.Dsg.resolve_extent dsg ~fname target extent in
    if Dsa.Dsg.is_persistent_addr dsg a then [ ev (Event.Log a) ] else []
  | Nvmir.Instr.Fence -> [ ev Event.Fence ]
  | Nvmir.Instr.Tx_begin -> [ ev Event.Tx_begin ]
  | Nvmir.Instr.Tx_end -> [ ev Event.Tx_end ]
  | Nvmir.Instr.Epoch_begin -> [ ev Event.Epoch_begin ]
  | Nvmir.Instr.Epoch_end -> [ ev Event.Epoch_end ]
  | Nvmir.Instr.Strand_begin n -> [ ev (Event.Strand_begin n) ]
  | Nvmir.Instr.Strand_end n -> [ ev (Event.Strand_end n) ]
  | Nvmir.Instr.Call { callee; _ } -> [ ev (Event.Call_mark callee) ]
  (* CRC guards are media-integrity reads, not write-back events: the
     static rules deliberately do not see them (the recovery tier owns
     that class) *)
  | Nvmir.Instr.Load _ | Nvmir.Instr.Assign _ | Nvmir.Instr.Binop _
  | Nvmir.Instr.Alloc _ | Nvmir.Instr.Addr_of _ | Nvmir.Instr.Crc_of _
  | Nvmir.Instr.Crc_check _ | Nvmir.Instr.Comment _ -> []

(* First [n] elements, stopping as soon as they are found — the caller's
   lists are capped cross-products, so scanning past [n] is wasted. *)
let take n l =
  let rec go n acc = function
    | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
    | _ -> List.rev acc
  in
  go n [] l

(* ------------------------------------------------------------------ *)
(* Per-block event precomputation (streaming engine).

   The materializing walk below re-resolves every instruction through
   the DSG once per path that crosses its block — for a function with P
   paths over B shared blocks that is P×B resolutions of identical
   results (resolution is idempotent after the DSG build: every operand
   was already resolved during the local phase). The streaming engine
   resolves each block once up front and replays the cached events.

   Abstract addresses are hash-consed through [pool] while caching, so
   the thousands of structurally-equal addresses a hot block contributes
   across paths collapse to one allocation each. *)

type block_events = (string, (string, Event.t list) Hashtbl.t) Hashtbl.t

let intern_event pool (e : Event.t) : Event.t =
  let intern a =
    match Hashtbl.find_opt pool a with
    | Some shared -> shared
    | None ->
      Hashtbl.add pool a a;
      a
  in
  match e.Event.kind with
  | Event.Write a -> { e with Event.kind = Event.Write (intern a) }
  | Event.Flush (a, o) -> { e with Event.kind = Event.Flush (intern a, o) }
  | Event.Log a -> { e with Event.kind = Event.Log (intern a) }
  | Event.Fence | Event.Tx_begin | Event.Tx_end | Event.Epoch_begin
  | Event.Epoch_end | Event.Strand_begin _ | Event.Strand_end _
  | Event.Call_mark _ | Event.Ret_mark _ -> e

let precompute_block_events dsg prog : block_events =
  let tables = Hashtbl.create 64 in
  let pool : (Dsa.Aaddr.t, Dsa.Aaddr.t) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun f ->
      let fname = Nvmir.Func.name f in
      let per_block = Hashtbl.create 16 in
      List.iter
        (fun (b : Nvmir.Func.block) ->
          let evs =
            List.concat_map
              (fun i ->
                List.map (intern_event pool) (events_of_instr dsg ~fname i))
              b.instrs
          in
          Hashtbl.replace per_block b.label evs)
        f.Nvmir.Func.blocks;
      Hashtbl.replace tables fname per_block)
    (Nvmir.Prog.funcs prog);
  tables

(* ------------------------------------------------------------------ *)
(* Phase 1, materialized: enumerate bounded paths through [func],
   accumulating events. Paths containing persistent operations are
   explored first when a cap cut is needed — we achieve this cheaply by
   enumerating in CFG order and capping, which suffices for corpus-scale
   functions. [events] (streaming prepare) substitutes the precomputed
   per-block cache for instruction-by-instruction resolution. *)
let collect_function ?events (config : Config.t) dsg (func : Nvmir.Func.t) :
    t list =
  let cfg = Graphs.Cfg.of_func func in
  let loops = Graphs.Loops.compute cfg in
  let fname = Nvmir.Func.name func in
  let block_evs =
    match events with
    | Some (tbl : block_events) ->
      let per_block = Hashtbl.find_opt tbl fname in
      fun (block : Nvmir.Func.block) ->
        Option.value ~default:[]
          (Option.bind per_block (fun t -> Hashtbl.find_opt t block.label))
    | None ->
      fun block ->
        List.concat_map (events_of_instr dsg ~fname) block.Nvmir.Func.instrs
  in
  let traces = ref [] in
  let count = ref 0 in
  (* per-(back-)edge traversal counts for the path being walked; the
     count is undone after each branch returns, so sibling paths see
     the state their common prefix established — the same per-path
     semantics the old immutable assoc list gave, without its O(edges)
     lookups *)
  let edge_counts : (string * string, int) Hashtbl.t = Hashtbl.create 8 in
  let rec walk label acc =
    if !count >= config.max_paths then ()
    else
      match Graphs.Cfg.block cfg label with
      | None -> ()
      | Some block ->
        let acc = List.rev_append (block_evs block) acc in
        let follow target =
          if Graphs.Loops.is_back_edge loops ~source:label ~target then begin
            let key = (label, target) in
            let taken = Option.value ~default:0 (Hashtbl.find_opt edge_counts key) in
            if taken < config.loop_bound then begin
              Hashtbl.replace edge_counts key (taken + 1);
              walk target acc;
              Hashtbl.replace edge_counts key taken
            end
          end
          else walk target acc
        in
        (match block.term with
        | Nvmir.Func.Ret _ ->
          if !count < config.max_paths then begin
            incr count;
            traces := List.rev acc :: !traces
          end
        | Nvmir.Func.Br l -> follow l
        | Nvmir.Func.Cond_br { then_lbl; else_lbl; _ } ->
          follow then_lbl;
          follow else_lbl)
  in
  walk (Graphs.Cfg.entry cfg) [];
  List.rev !traces

(* ------------------------------------------------------------------ *)
(* Phase 1, streaming: the same DFS as [collect_function], demand-driven.

   The explicit frame stack replaces the recursion; pushing the else
   frame below the then frame reproduces the recursive order (the whole
   then subtree completes before the else branch starts). Suspended
   frames keep their event accumulator as a shared-tail list, so N live
   branches off one prefix store the prefix once. [stats] observes the
   high-water mark of live frames — the O(live paths) the engine holds
   instead of the O(all paths) the materialized engine does. *)

type stats = {
  mutable peak_live : int;  (* max simultaneously-live path frames *)
  mutable paths : int;
  mutable events : int;  (* non-marker events across yielded paths *)
}

let fresh_stats () = { peak_live = 0; paths = 0; events = 0 }

(* A frame: CFG label to continue from, reversed events so far, and the
   back-edge counts this path has used (immutable here — frames outlive
   the walk that created them, so undo-style sharing cannot work). *)
type frame = {
  fr_label : string;
  fr_acc : Event.t list;
  fr_edges : ((string * string) * int) list;
}

let stream_function ?events (config : Config.t) dsg ~stats (func : Nvmir.Func.t)
    : t Seq.t =
  let cfg = Graphs.Cfg.of_func func in
  let loops = Graphs.Loops.compute cfg in
  let fname = Nvmir.Func.name func in
  let block_evs =
    match events with
    | Some (tbl : block_events) ->
      let per_block = Hashtbl.find_opt tbl fname in
      fun (block : Nvmir.Func.block) ->
        Option.value ~default:[]
          (Option.bind per_block (fun t -> Hashtbl.find_opt t block.label))
    | None ->
      fun block ->
        List.concat_map (events_of_instr dsg ~fname) block.Nvmir.Func.instrs
  in
  let note_live depth = if depth > stats.peak_live then stats.peak_live <- depth in
  (* [depth] tracks the stack length so the high-water mark costs O(1)
     per push instead of a length scan *)
  let rec next stack depth () =
    match stack with
    | [] -> Seq.Nil
    | fr :: stack -> (
      (* live paths right now: the in-flight frame plus the suspended ones *)
      note_live depth;
      let depth = depth - 1 in
      match Graphs.Cfg.block cfg fr.fr_label with
      | None -> next stack depth ()
      | Some block ->
        let acc = List.rev_append (block_evs block) fr.fr_acc in
        let follow target (stack, depth) =
          if Graphs.Loops.is_back_edge loops ~source:fr.fr_label ~target then begin
            let key = (fr.fr_label, target) in
            let taken =
              Option.value ~default:0 (List.assoc_opt key fr.fr_edges)
            in
            if taken < config.loop_bound then
              ( {
                  fr_label = target;
                  fr_acc = acc;
                  fr_edges =
                    (key, taken + 1) :: List.remove_assoc key fr.fr_edges;
                }
                :: stack,
                depth + 1 )
            else (stack, depth)
          end
          else
            ( { fr_label = target; fr_acc = acc; fr_edges = fr.fr_edges }
              :: stack,
              depth + 1 )
        in
        (match block.term with
        | Nvmir.Func.Ret _ -> Seq.Cons (List.rev acc, next stack depth)
        | Nvmir.Func.Br l ->
          let stack, depth = follow l (stack, depth) in
          next stack depth ()
        | Nvmir.Func.Cond_br { then_lbl; else_lbl; _ } ->
          (* else below then: then's subtree drains first, as in the
             recursive walk *)
          let stack, depth =
            follow then_lbl (follow else_lbl (stack, depth))
          in
          next stack depth ()))
  in
  let entry = { fr_label = Graphs.Cfg.entry cfg; fr_acc = []; fr_edges = [] } in
  next [ entry ] 1

(* ------------------------------------------------------------------ *)
(* Phase 2: splice callee traces into caller traces at call sites.

   Expansion is memoized bottom-up over the call graph (callees first,
   the Figure 11 merge order), so each function's merged traces are
   computed once. Call marks whose callee expansion is not yet available
   — the back edges of recursive cycles — stay unexpanded; functions in
   cyclic SCCs are then re-expanded [Config.recursion_bound] times, each
   pass splicing the previous pass's results, which bounds recursion
   unrolling exactly like §4.3 describes. *)

let expand_with (config : Config.t) ~memo (trace : t) : t list =
  (* the path cap is applied at every combination point — the
     cross-product of call-site expansions would otherwise materialize
     exponentially many traces before any cap could trim them *)
  let cap = config.max_paths in
  let rec expand_trace trace =
    match trace with
    | [] -> [ [] ]
    | ({ Event.kind = Event.Call_mark callee; fname; loc } as ev) :: rest -> (
      let rests = take cap (expand_trace rest) in
      match Hashtbl.find_opt memo callee with
      | Some callee_traces when callee_traces <> [] ->
        Obs.Metrics.incr m_memo_hits;
        let callee_traces = take config.expansion_fanout callee_traces in
        take cap
          (List.concat_map
             (fun ct ->
               List.map
                 (fun r ->
                   (ev :: ct)
                   @ (Event.make ~fname ~loc (Event.Ret_mark callee) :: r))
                 rests)
             callee_traces)
      | Some _ | None ->
        Obs.Metrics.incr m_memo_misses;
        List.map (fun r -> ev :: r) rests)
    | ev :: rest -> List.map (fun r -> ev :: r) (expand_trace rest)
  in
  take cap (expand_trace trace)

(* The lazy mirror of [expand_with]: the same caps at the same points,
   the same callee-major enumeration order, but callee trace sets come
   from a [lookup] returning re-traversable sequences forced on demand —
   a spliced trace exists only while the consumer looks at it. *)
let expand_lookup (config : Config.t) ~lookup (trace : t) : t Seq.t =
  let cap = config.max_paths in
  let rec expand trace : t Seq.t =
    match trace with
    | [] -> Seq.return []
    | ({ Event.kind = Event.Call_mark callee; fname; loc } as ev) :: rest -> (
      let rests = Seq.memoize (Seq.take cap (expand rest)) in
      match lookup callee with
      | Some callee_traces when callee_traces () <> Seq.Nil ->
        let callee_traces = Seq.take config.expansion_fanout callee_traces in
        Seq.take cap
          (Seq.concat_map
             (fun ct ->
               Seq.map
                 (fun r ->
                   (ev :: ct)
                   @ (Event.make ~fname ~loc (Event.Ret_mark callee) :: r))
                 rests)
             callee_traces)
      | Some _ | None -> Seq.map (fun r -> ev :: r) rests)
    | ev :: rest -> Seq.map (fun r -> ev :: r) (expand rest)
  in
  Seq.take cap (expand trace)

(* ------------------------------------------------------------------ *)
(* Lazy memo (streaming engine).

   The eager memo above materializes up to [max_paths] merged traces for
   EVERY function, yet a caller splices only [expansion_fanout] of them
   per call site — most of that work is computed and then never read.
   The lazy memo gives each function a memoized [Seq] instead: forcing a
   caller's traces forces just the demanded prefix of each callee's.

   Cyclic SCCs keep the eager treatment (their bounded re-expansion
   passes need the previous pass materialized). Two snapshots preserve
   the eager engine's exact view:

   - [lz_cyclic] is the first-pass (postorder) expansion of the cyclic
     functions. Acyclic consumers splice THIS — in the eager build their
     entries were materialized during the postorder pass, before any
     re-expansion replaced a cyclic entry.
   - the re-expansion passes themselves read the current cyclic table
     ([materialize]'s [cur]), as the eager loop does.

   [lz_seqs] holds suspended computation, so a [lazy_memo] must stay
   confined to one domain; the tables it shares ([lz_intra],
   [lz_cyclic]) are frozen before any sequence escapes [stream]. *)

type lazy_memo = {
  lz_config : Config.t;
  lz_intra : (string, t list) Hashtbl.t;  (* shared, frozen *)
  lz_cyclic : (string, t list) Hashtbl.t;  (* shared, frozen *)
  lz_cyc_set : (string, unit) Hashtbl.t;  (* shared, frozen *)
  lz_seqs : (string, t Seq.t) Hashtbl.t;  (* per-consumer *)
}

let rec lazy_entry lm name : t Seq.t option =
  match Hashtbl.find_opt lm.lz_seqs name with
  | Some s ->
    Obs.Metrics.incr m_memo_hits;
    Some s
  | None -> (
    match Hashtbl.find_opt lm.lz_cyclic name with
    | Some ts ->
      Obs.Metrics.incr m_memo_hits;
      Some (List.to_seq ts)
    | None when Hashtbl.mem lm.lz_cyc_set name ->
      (* cyclic entry not built yet (later in the postorder pass): the
         eager build would find no memo entry and keep the call mark —
         expanding lazily here would recurse through the cycle forever *)
      Obs.Metrics.incr m_memo_misses;
      None
    | None -> (
      match Hashtbl.find_opt lm.lz_intra name with
      | None -> None
      | Some own ->
        Obs.Metrics.incr m_memo_misses;
        let s =
          Seq.memoize
            (Seq.take lm.lz_config.Config.max_paths
               (Seq.concat_map (expand_lazy lm) (List.to_seq own)))
        in
        Hashtbl.add lm.lz_seqs name s;
        Some s))

and expand_lazy lm (trace : t) : t Seq.t =
  expand_lookup lm.lz_config ~lookup:(lazy_entry lm) trace

(* Functions in recursive SCCs (singleton SCCs only count when
   self-calling). *)
let cyclic_funcs cg =
  List.concat_map
    (fun scc ->
      match scc with
      | [ f ] when not (List.mem f (Graphs.Callgraph.callees cg f)) -> []
      | fs -> fs)
    (Graphs.Callgraph.sccs cg)

(* Intra traces for everything but [skip], plus the materialized cyclic
   tables: [cyclic_pass1] (what acyclic consumers splice) and
   [cyclic_cur] (the bounded-unrolling fixpoint, what a cyclic root
   reads). Mirrors [build_memo]'s postorder pass and re-expansion loop
   restricted to the cyclic functions — the only ones whose entries the
   eager build ever overwrites. *)
let build_lazy ?events (config : Config.t) dsg prog ~skip =
  let intra = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let fname = Nvmir.Func.name f in
      if not (List.mem fname skip) then
        Hashtbl.replace intra fname (collect_function ?events config dsg f))
    (Nvmir.Prog.funcs prog);
  let cg = Graphs.Callgraph.of_prog prog in
  let cyclic = cyclic_funcs cg in
  let cyc_set : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun f -> Hashtbl.replace cyc_set f ()) cyclic;
  let cyclic_pass1 : (string, t list) Hashtbl.t = Hashtbl.create 8 in
  (* shared acyclic consumer: reused across cyclic builds so their
     acyclic callees expand once; always splices pass-1 cyclic entries *)
  let shared =
    {
      lz_config = config;
      lz_intra = intra;
      lz_cyclic = cyclic_pass1;
      lz_cyc_set = cyc_set;
      lz_seqs = Hashtbl.create 32;
    }
  in
  let materialize cur fname =
    let lookup name =
      match Hashtbl.find_opt cur name with
      | Some ts -> Some (List.to_seq ts)
      | None -> lazy_entry shared name
    in
    let own = Option.value ~default:[] (Hashtbl.find_opt intra fname) in
    List.of_seq
      (Seq.take config.max_paths
         (Seq.concat_map (expand_lookup config ~lookup) (List.to_seq own)))
  in
  List.iter
    (fun fname ->
      if List.mem fname cyclic && not (List.mem fname skip) then
        Hashtbl.replace cyclic_pass1 fname (materialize cyclic_pass1 fname))
    (Graphs.Callgraph.postorder cg);
  let cyclic_cur = Hashtbl.copy cyclic_pass1 in
  if cyclic <> [] then
    for _ = 2 to config.recursion_bound do
      List.iter
        (fun fname ->
          if not (List.mem fname skip) then
            Hashtbl.replace cyclic_cur fname (materialize cyclic_cur fname))
        cyclic
    done;
  (cg, intra, cyclic_pass1, cyclic_cur, cyc_set)

(* Shared phase-2 driver: intra-procedural traces for the functions in
   [skip_intra]'s complement, then bottom-up memoized expansion for
   everything not in [skip_memo]. *)
let build_memo ?events (config : Config.t) dsg prog ~skip =
  let intra = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let fname = Nvmir.Func.name f in
      if not (List.mem fname skip) then
        Hashtbl.replace intra fname (collect_function ?events config dsg f))
    (Nvmir.Prog.funcs prog);
  let cg = Graphs.Callgraph.of_prog prog in
  let memo : (string, t list) Hashtbl.t = Hashtbl.create 64 in
  let expand_function fname =
    let own = Option.value ~default:[] (Hashtbl.find_opt intra fname) in
    List.concat_map (expand_with config ~memo) own
    |> take config.max_paths
  in
  List.iter
    (fun fname ->
      if not (List.mem fname skip) then
        Hashtbl.replace memo fname (expand_function fname))
    (Graphs.Callgraph.postorder cg);
  (* bounded unrolling for recursive components *)
  let cyclic =
    List.concat_map
      (fun scc ->
        match scc with
        | [ f ] when not (List.mem f (Graphs.Callgraph.callees cg f)) -> []
        | fs -> fs)
      (Graphs.Callgraph.sccs cg)
  in
  if cyclic <> [] then
    for _ = 2 to config.recursion_bound do
      List.iter
        (fun fname -> Hashtbl.replace memo fname (expand_function fname))
        cyclic
    done;
  (cg, memo, cyclic)

let resolve_roots ~roots cg prog =
  match roots with
  | Some rs -> rs
  | None -> (
    match Graphs.Callgraph.roots cg with
    | [] -> Nvmir.Prog.func_names prog
    | rs -> rs)

(* The root list a rootless [collect]/[stream] would enumerate, in that
   same order — the serve cache keys its per-root entries off this. *)
let default_roots prog =
  resolve_roots ~roots:None (Graphs.Callgraph.of_prog prog) prog

(* Collect fully expanded traces for the given root functions (defaults
   to the call-graph roots: functions never called from the program). *)
let collect ?(config = Config.default) ?roots dsg prog :
    (string * t list) list =
  let cg, memo, _ = build_memo config dsg prog ~skip:[] in
  let roots = resolve_roots ~roots cg prog in
  List.map
    (fun r ->
      let ts = Option.value ~default:[] (Hashtbl.find_opt memo r) in
      if Obs.enabled () then Obs.Metrics.add m_paths (List.length ts);
      (r, ts))
    roots

(* ------------------------------------------------------------------ *)
(* Streaming entry point: one lazy trace sequence per root.

   A root is streamable when nothing calls it (its memo entry would
   never be read) and it is not part of a recursive cycle (cyclic
   functions need their materialized previous-pass expansion). Such a
   root's paths never exist as a list: its intra DFS and call-site
   expansion are both demand-driven. Non-streamable roots fall back to
   reading the memo — correct, just not lazy.

   Everything mutable (DSG resolution, memo tables, per-block event
   caches) is built here, before any sequence is returned; forcing the
   sequences only reads, so distinct roots can be consumed from
   distinct domains concurrently (after [Dsa.Arena.compress]). *)

type source = { root : string; s_stats : stats; traces : t Seq.t }

let stream ?(config = Config.default) ?roots dsg prog : source list =
  let events = precompute_block_events dsg prog in
  let cg = Graphs.Callgraph.of_prog prog in
  let requested = resolve_roots ~roots cg prog in
  let never_called = Graphs.Callgraph.roots cg in
  let cyclic = cyclic_funcs cg in
  let streamable r = List.mem r never_called && not (List.mem r cyclic) in
  let streamed = List.filter streamable requested in
  let _, intra, cyclic_pass1, cyclic_cur, cyc_set =
    build_lazy ~events config dsg prog ~skip:streamed
  in
  let funcs = Nvmir.Prog.funcs prog in
  List.map
    (fun r ->
      let s_stats = fresh_stats () in
      let count tr =
        Obs.Metrics.incr m_paths;
        s_stats.paths <- s_stats.paths + 1;
        s_stats.events <-
          s_stats.events
          + List.fold_left
              (fun n e -> if Event.is_marker e then n else n + 1)
              0 tr;
        tr
      in
      (* one consumer per root: [lz_seqs] holds suspended state, so
         distinct roots must not share it across domains *)
      let lm =
        {
          lz_config = config;
          lz_intra = intra;
          lz_cyclic = cyclic_pass1;
          lz_cyc_set = cyc_set;
          lz_seqs = Hashtbl.create 32;
        }
      in
      let traces =
        if List.mem r streamed then
          match List.find_opt (fun f -> Nvmir.Func.name f = r) funcs with
          | None -> Seq.empty
          | Some f ->
            Seq.map count
              (Seq.take config.max_paths
                 (Seq.concat_map (expand_lazy lm)
                    (stream_function ~events config dsg ~stats:s_stats f)))
        else if Hashtbl.mem cyc_set r then begin
          (* a recursive root needs its bounded-unrolling fixpoint,
             materialized during prepare *)
          let ts = Option.value ~default:[] (Hashtbl.find_opt cyclic_cur r) in
          s_stats.peak_live <- List.length ts;
          Seq.map count (List.to_seq ts)
        end
        else begin
          (* called-from-elsewhere root: lazily expanded like a callee;
             its intra traces are materialized, so count those as live *)
          s_stats.peak_live <-
            List.length
              (Option.value ~default:[] (Hashtbl.find_opt intra r));
          match lazy_entry lm r with
          | None -> Seq.empty
          | Some s -> Seq.map count s
        end
      in
      { root = r; s_stats; traces })
    requested

let pp ppf (trace : t) =
  Fmt.pf ppf "@[<v 2>trace (%d events)@ %a@]" (List.length trace)
    Fmt.(list ~sep:(any "@ ") Event.pp)
    trace

(* Number of non-marker events; used by bench reporting. *)
let length trace = List.length (List.filter (fun e -> not (Event.is_marker e)) trace)
