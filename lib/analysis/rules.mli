(** The checking rules of Table 4 (persistency-model violations) and
    Table 5 (performance bugs). Rule metadata lives in {!catalog} so the
    toolkit can print the tables from the registry itself; the checking
    functions are pure over scoped traces. *)

type ctx = { model : Model.t; dsg : Dsa.Dsg.t; tenv : Nvmir.Ty.env }

(** An event annotated with its transaction nesting, epoch ordinal,
    fence-delimited persist-unit ordinal and strand id. *)
type scoped = {
  ev : Event.t;
  idx : int;
  tx_depth : int;
  tx_id : int;  (** innermost enclosing transaction, -1 when none *)
  tx_stack : int list;
  epoch : int;  (** marked-epoch ordinal, -1 outside epochs *)
  unit_ : int;  (** fence-delimited persist-unit ordinal *)
  strand : int;  (** enclosing strand id, -1 outside strands *)
}

val scope_trace : Trace.t -> scoped list

(** {1 Individual rules} — exposed for targeted testing *)

val check_unflushed_write : ctx -> scoped list -> Warning.t list
val check_multiple_writes_at_once : ctx -> scoped list -> Warning.t list
val check_missing_persist_barrier : ctx -> scoped list -> Warning.t list
val check_missing_barrier_nested_tx : ctx -> scoped list -> Warning.t list
val check_semantic_mismatch : ctx -> scoped list -> Warning.t list
val check_strand_dependence : ctx -> scoped list -> Warning.t list

val check_flush_coverage : ctx -> scoped list -> Warning.t list
(** One stateful scan covering the four Table 5 performance rules. *)

(** {1 Registry} *)

type rule_meta = {
  id : Warning.rule_id;
  models : Model.t list;  (** models the rule applies to *)
  statement : string;  (** the formal rule as stated in Table 4/5 *)
}

val catalog : rule_meta list
val meta_of : Warning.rule_id -> rule_meta
val applicable_rules : Model.t -> rule_meta list

val check_trace : ctx -> Trace.t -> Warning.t list
(** Run every applicable rule over one trace. *)

(** {1 Incremental checking} — the streaming engine's per-path state.

    A persistent scoping state: fork an in-flight path by reusing the
    value, share scoped prefixes structurally. Implemented independently
    of {!scope_trace} so the engine differential also cross-checks the
    two scopings: for any trace,
    [finish ctx (feed start trace) = check_trace ctx trace]. *)
module Incremental : sig
  type state

  val start : state
  val step : state -> Event.t -> state
  val feed : state -> Event.t list -> state
  val finish : ctx -> state -> Warning.t list
end
