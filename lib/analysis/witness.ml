(* Warning witnesses: the evidence a tier computed on its way to a
   warning, kept instead of thrown away. A witness is plain data — no
   references back into checker or runtime state — so every tier can
   build one and every consumer (reports, `deepmc explain`, the serve
   protocol) can serialize it.

   Capture is off by default and gated on one atomic flag: the checking
   hot paths pay a single load-and-branch per *warning* (not per
   event), so the disabled pipeline is indistinguishable from the
   pre-witness one. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* One event of a static minimal slice, with the role it plays in the
   violation ("store", "covering-flush", "ordering-fence", ...). *)
type event_ref = {
  er_role : string;
  er_what : string; (* rendered event, e.g. "W h->a" *)
  er_loc : Nvmir.Loc.t;
  er_fname : string;
}

let event_ref ~role ~what ~loc ~fname =
  { er_role = role; er_what = what; er_loc = loc; er_fname = fname }

type t =
  | Static of {
      s_slice : event_ref list; (* minimal event slice, trace order *)
      s_call_path : string list; (* enclosing calls, outermost first *)
    }
  | Dynamic of {
      d_transition : string; (* the shadow-state transition observed *)
      d_strand : int; (* strand/thread that tripped the check *)
      d_fences : int; (* global fence count at detection *)
    }
  | Fuzz of {
      f_genome : string; (* reproducing schedule genome *)
      f_schedule : string; (* coverage digest of the schedule's run *)
      f_transition : string;
    }
  | Crash of {
      c_task : string; (* "point K" or "exit" *)
      c_image : string; (* content id of the durable image *)
      c_persisted : (int * int) list; (* in-flight lines that reached NVM *)
      c_detail : string;
    }
  | Recover of {
      r_task : string;
      r_image : string;
      r_persisted : (int * int) list;
      r_corruptions : (int * int * string) list; (* obj, slot, kind *)
      r_verdict : string;
    }

let tier = function
  | Static _ -> "static"
  | Dynamic _ -> "dynamic"
  | Fuzz _ -> "fuzz"
  | Crash _ -> "crash"
  | Recover _ -> "recover"

(* Content id for a persisted-subset: the crash image's identity, stable
   across tiers that reconstruct the same image. *)
let image_id persisted =
  Nvmir.Chash.to_hex
    (List.fold_left
       (fun h (obj, line) -> Nvmir.Chash.add_int (Nvmir.Chash.add_int h obj) line)
       Nvmir.Chash.empty persisted)

(* Stable content fingerprint of the witness itself. *)
let fingerprint t =
  let open Nvmir.Chash in
  let add_lines h ls =
    List.fold_left (fun h (a, b) -> add_int (add_int h a) b) h ls
  in
  let h = add_string empty (tier t) in
  let h =
    match t with
    | Static { s_slice; s_call_path } ->
      let h =
        List.fold_left
          (fun h r ->
            add_int
              (add_string
                 (add_string (add_string h r.er_role) r.er_what)
                 (r.er_loc.Nvmir.Loc.file ^ "|" ^ r.er_fname))
              r.er_loc.Nvmir.Loc.line)
          h s_slice
      in
      List.fold_left add_string h s_call_path
    | Dynamic { d_transition; d_strand; d_fences } ->
      add_int (add_int (add_string h d_transition) d_strand) d_fences
    | Fuzz { f_genome; f_schedule; f_transition } ->
      add_string (add_string (add_string h f_genome) f_schedule) f_transition
    | Crash { c_task; c_image; c_persisted; c_detail } ->
      add_lines
        (add_string (add_string (add_string h c_task) c_image) c_detail)
        c_persisted
    | Recover { r_task; r_image; r_persisted; r_corruptions; r_verdict } ->
      List.fold_left
        (fun h (o, s, k) -> add_string (add_int (add_int h o) s) k)
        (add_lines
           (add_string (add_string (add_string h r_task) r_image) r_verdict)
           r_persisted)
        r_corruptions
  in
  to_hex h

(* The cross-tier correlation key: tier-independent bug identity. Two
   witnesses of the same (rule, file, line) — however observed — land
   in one evidence bundle. Mirrors [Warning.dedup_key]. *)
let bundle_fingerprint ~rule ~file ~line =
  Nvmir.Chash.to_hex
    (Nvmir.Chash.add_int
       (Nvmir.Chash.add_string
          (Nvmir.Chash.add_string Nvmir.Chash.empty rule)
          file)
       line)

let pp_event_ref ppf r =
  Fmt.pf ppf "%-18s %-24s @@ %a" r.er_role r.er_what Nvmir.Loc.pp r.er_loc

let pp_lines ppf = function
  | [] -> Fmt.string ppf "(none)"
  | ls ->
    Fmt.(list ~sep:(any " ") (pair ~sep:(any ":") int int)) ppf ls

let pp ppf = function
  | Static { s_slice; s_call_path } ->
    if s_call_path <> [] then
      Fmt.pf ppf "call path: %a@ " (Fmt.list ~sep:(Fmt.any " -> ") Fmt.string)
        s_call_path;
    Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_event_ref) s_slice
  | Dynamic { d_transition; d_strand; d_fences } ->
    Fmt.pf ppf "shadow transition (strand %d, %d fence(s) seen): %s" d_strand
      d_fences d_transition
  | Fuzz { f_genome; f_schedule; f_transition } ->
    Fmt.pf ppf "@[<v>genome: %s@ schedule: %s@ transition: %s@]" f_genome
      f_schedule f_transition
  | Crash { c_task; c_image; c_persisted; c_detail } ->
    Fmt.pf ppf "@[<v>crash at %s, image %s@ persisted: %a@ %s@]" c_task c_image
      pp_lines c_persisted c_detail
  | Recover { r_task; r_image; r_persisted; r_corruptions; r_verdict } ->
    Fmt.pf ppf
      "@[<v>crash at %s, image %s (verdict %s)@ persisted: %a@ corruption: \
       %a@]"
      r_task r_image r_verdict pp_lines r_persisted
      Fmt.(
        list ~sep:(any " ") (fun ppf (o, s, k) -> pf ppf "%d:%d/%s" o s k))
      r_corruptions
