(** The static checker (steps 2–4 of Figure 8): build the DSG, collect
    interprocedural traces, apply the rule set for the selected model,
    and report deduplicated warnings.

    [Config.engine] selects between the streaming engine (lazy path
    enumeration checked incrementally, roots fanned out on the shared
    domain pool; the default) and the materialized oracle. Both emit
    identical warning sets. *)

type result = {
  model : Model.t;
  warnings : Warning.t list;
  trace_count : int;
  event_count : int;
  peak_paths : int;
      (** max simultaneously-live paths: equals [trace_count] under the
          materialized engine, the live-frame high-water mark when
          streaming *)
  dsg : Dsa.Dsg.t;
}

val check :
  ?config:Config.t ->
  ?field_sensitive:bool ->
  ?offset_sensitive:bool ->
  ?persistent_roots:(string * string) list ->
  ?roots:string list ->
  model:Model.t ->
  Nvmir.Prog.t ->
  result

(** {1 Per-root streaming results}

    The unit of incremental reuse: a root's warnings and stats depend
    only on its own call-graph closure, so a resident analyzer replays
    cached [per_root] values for untouched roots, re-runs the stale
    ones via [check_roots ~roots:stale], and [merge_roots] the lot. *)

type per_root = {
  pr_root : string;
  pr_warnings : Warning.t list;
      (** per-root deduplicated, pre-merge order *)
  pr_paths : int;
  pr_events : int;
  pr_peak : int;
}

val check_roots :
  ?config:Config.t ->
  ?field_sensitive:bool ->
  ?offset_sensitive:bool ->
  ?persistent_roots:(string * string) list ->
  ?dsg:Dsa.Dsg.t ->
  ?roots:string list ->
  model:Model.t ->
  Nvmir.Prog.t ->
  per_root list * Dsa.Dsg.t
(** Streaming-engine check of [roots] (default: all call-graph roots),
    fanned out on the shared pool. [dsg] skips the DSG build when the
    caller already holds one for exactly this program. *)

val merge_roots : model:Model.t -> dsg:Dsa.Dsg.t -> per_root list -> result
(** Cross-root dedup + sort. Byte-identical to a cold {!check} when the
    list covers the same roots in the same order (dedup keeps the first
    occurrence, so order is semantically visible). *)

(** {1 Mixed-model checking}

    Lifts the §4.5 limitation: each analysis root carries its own
    intended persistency model, so one run can check a program whose
    parts implement different models. *)

type mixed_result = {
  per_root : (string * Model.t * Warning.t list) list;
  mixed_warnings : Warning.t list;  (** union, deduplicated *)
  mixed_dsg : Dsa.Dsg.t;
}

val check_mixed :
  ?config:Config.t ->
  ?field_sensitive:bool ->
  ?offset_sensitive:bool ->
  ?persistent_roots:(string * string) list ->
  model_of:(string -> Model.t) ->
  roots:string list ->
  Nvmir.Prog.t ->
  mixed_result

val violations : result -> Warning.t list
val performance_bugs : result -> Warning.t list
val pp_result : result Fmt.t
