(** Content fingerprints for incremental re-analysis.

    Per-function fingerprint = body hash ({!Nvmir.Func.content_hash})
    combined with the function's DSG slice ({!Dsa.Dsg.summary_hash});
    per-root closure key = order-independent digest of the root's
    call-graph closure fingerprints. Equal closure key means every
    input the streaming checker reads for that root is byte-identical,
    so a cached {!Checker.per_root} may be replayed verbatim. Tables
    are rebuilt per program build (parse + DSG are linear); comparing
    against the previous table yields the invalidation front. *)

type table

val build : Dsa.Dsg.t -> Nvmir.Prog.t -> table
(** Fingerprint every function of [prog] against [dsg] (which must be
    the DSG of exactly this build) and key every default root. *)

val roots : table -> string list
(** {!Trace.default_roots} order — the cold run's enumeration order. *)

val func_fp : table -> string -> Nvmir.Chash.t option
val root_key : table -> string -> Nvmir.Chash.t option

val changed_functions : old:table -> table -> string list
(** Functions whose fingerprint differs from (or is absent in) [old];
    sorted. The invalidation front an edit pushes. *)

val stale_roots : old:table -> table -> string list
(** Roots (in {!roots} order) whose closure key changed: the edited
    functions' memo-dependent callers and nothing else. *)
