(** Trace collection (§4.3): bounded depth-first path enumeration per
    function, then memoized bottom-up splicing of callee traces into
    callers at call sites (Figure 11). [collect] materializes every
    trace (the differential oracle); [stream] enumerates a root's paths
    lazily with O(live paths) peak memory. *)

type t = Event.t list

val events_of_instr : Dsa.Dsg.t -> fname:string -> Nvmir.Instr.t -> Event.t list
(** The events one instruction contributes; writes and flushes the DSG
    proves volatile contribute nothing. *)

type block_events
(** Per-(function, block) cache of resolved events with hash-consed
    abstract addresses: each block is resolved through the DSG once
    instead of once per path crossing it. *)

val precompute_block_events : Dsa.Dsg.t -> Nvmir.Prog.t -> block_events

val collect_function :
  ?events:block_events -> Config.t -> Dsa.Dsg.t -> Nvmir.Func.t -> t list
(** Phase 1: intra-procedural traces, with unexpanded call marks.
    [events] substitutes the precomputed per-block cache for
    instruction-by-instruction resolution. *)

val collect :
  ?config:Config.t ->
  ?roots:string list ->
  Dsa.Dsg.t ->
  Nvmir.Prog.t ->
  (string * t list) list
(** Fully-expanded traces per root, all materialized. [roots] defaults
    to the call-graph roots (functions never called within the
    program). *)

val default_roots : Nvmir.Prog.t -> string list
(** The roots a rootless {!collect}/{!stream} enumerates, in the same
    order: call-graph roots, or every function when all are called.
    Incremental callers use this to key per-root cache entries. *)

(** {1 Streaming engine} *)

type stats = {
  mutable peak_live : int;
      (** high-water mark of simultaneously-live path frames *)
  mutable paths : int;  (** paths yielded so far *)
  mutable events : int;  (** non-marker events across yielded paths *)
}

type source = {
  root : string;
  s_stats : stats;  (** updated as [traces] is forced *)
  traces : t Seq.t;
}

val stream :
  ?config:Config.t ->
  ?roots:string list ->
  Dsa.Dsg.t ->
  Nvmir.Prog.t ->
  source list
(** One lazy trace sequence per root, enumerating exactly the traces
    {!collect} returns, in the same order. All DSG resolution happens
    before this returns; forcing the sequences only reads shared state,
    so distinct roots may be consumed from distinct domains (compress
    the arena first — see {!Dsa.Arena.compress}). Each sequence is
    single-shot per domain: it shares memoized suffixes internally but
    the intra-procedural walk restarts if re-forced from the head. *)

val pp : t Fmt.t

val length : t -> int
(** Non-marker events. *)
