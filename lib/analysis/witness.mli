(** Warning witnesses: the structured evidence each tier computed on the
    way to a warning — the static tier's minimal event slice, the
    dynamic tier's shadow-state transition, the fuzzer's reproducing
    genome, the crash/recovery tiers' image metadata and corruption
    record. Plain data, serializable, with a stable content
    fingerprint ({!Nvmir.Chash}) so the same bug observed by different
    tiers correlates into one evidence bundle.

    Capture is disabled by default; every tier gates its witness
    construction on {!enabled}, so the checking hot paths pay one
    atomic load per warning and nothing per event. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

type event_ref = {
  er_role : string;  (** role in the violation, e.g. ["covering-flush"] *)
  er_what : string;  (** rendered event, e.g. ["W h->a"] *)
  er_loc : Nvmir.Loc.t;
  er_fname : string;
}

val event_ref :
  role:string -> what:string -> loc:Nvmir.Loc.t -> fname:string -> event_ref

type t =
  | Static of { s_slice : event_ref list; s_call_path : string list }
  | Dynamic of { d_transition : string; d_strand : int; d_fences : int }
  | Fuzz of { f_genome : string; f_schedule : string; f_transition : string }
  | Crash of {
      c_task : string;
      c_image : string;
      c_persisted : (int * int) list;
      c_detail : string;
    }
  | Recover of {
      r_task : string;
      r_image : string;
      r_persisted : (int * int) list;
      r_corruptions : (int * int * string) list;
      r_verdict : string;
    }

val tier : t -> string
(** ["static"], ["dynamic"], ["fuzz"], ["crash"] or ["recover"]. *)

val image_id : (int * int) list -> string
(** Content id of a persisted-subset (crash-image identity), stable
    across tiers that reconstruct the same image. *)

val fingerprint : t -> string
(** Stable content fingerprint of the witness (16 hex digits). *)

val bundle_fingerprint : rule:string -> file:string -> line:int -> string
(** The cross-tier correlation key: tier-independent bug identity,
    mirroring {!Warning.dedup_key}. *)

val pp_event_ref : event_ref Fmt.t
val pp : t Fmt.t
