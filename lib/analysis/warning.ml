(* Checker warnings. DeepMC reports WARNINGs for both persistency-model
   violations and performance bugs (§4.1); each carries the rule that
   fired, the source location, and a human-readable explanation. *)

type category = Model_violation | Performance

(* The nine warning classes of Table 1 plus the strand-dependence rule
   of Table 4, plus the recovery-path rule class of the media-corruption
   model (reported by the recovery executor, invisible to the static
   tier). Rule metadata lives in [Rules]. *)
type rule_id =
  | Multiple_writes_at_once
  | Unflushed_write
  | Missing_persist_barrier
  | Missing_barrier_nested_tx
  | Semantic_mismatch
  | Strand_dependence
  | Multiple_flushes
  | Flush_unmodified
  | Persist_same_object_in_tx
  | Durable_tx_no_writes
  | Unguarded_recovery_read
  | Silent_corruption_accept
  | Non_idempotent_recovery

let all_rules =
  [
    Multiple_writes_at_once;
    Unflushed_write;
    Missing_persist_barrier;
    Missing_barrier_nested_tx;
    Semantic_mismatch;
    Strand_dependence;
    Multiple_flushes;
    Flush_unmodified;
    Persist_same_object_in_tx;
    Durable_tx_no_writes;
    Unguarded_recovery_read;
    Silent_corruption_accept;
    Non_idempotent_recovery;
  ]

let rule_name = function
  | Multiple_writes_at_once -> "multiple-writes-at-once"
  | Unflushed_write -> "unflushed-write"
  | Missing_persist_barrier -> "missing-persist-barrier"
  | Missing_barrier_nested_tx -> "missing-barrier-nested-tx"
  | Semantic_mismatch -> "semantic-mismatch"
  | Strand_dependence -> "strand-dependence"
  | Multiple_flushes -> "multiple-flushes"
  | Flush_unmodified -> "flush-unmodified"
  | Persist_same_object_in_tx -> "persist-same-object-in-tx"
  | Durable_tx_no_writes -> "durable-tx-no-writes"
  | Unguarded_recovery_read -> "unguarded-recovery-read"
  | Silent_corruption_accept -> "silent-corruption-accept"
  | Non_idempotent_recovery -> "non-idempotent-recovery"

(* Table 1 row descriptions. *)
let rule_description = function
  | Multiple_writes_at_once -> "Multiple writes made durable at once"
  | Unflushed_write -> "Unflushed write"
  | Missing_persist_barrier -> "Missing persist barriers"
  | Missing_barrier_nested_tx -> "Missing persist barriers in nested transactions"
  | Semantic_mismatch -> "Mismatch between program semantics and model"
  | Strand_dependence -> "Data dependencies between strands"
  | Multiple_flushes -> "Multiple flushes to a persistent object"
  | Flush_unmodified -> "Flush an unmodified object"
  | Persist_same_object_in_tx ->
    "Persist the same object multiple times in a transaction"
  | Durable_tx_no_writes -> "Durable transaction without persistent writes"
  | Unguarded_recovery_read ->
    "Recovery reads possibly-corrupt media without a CRC guard"
  | Silent_corruption_accept ->
    "Recovery accepts a corrupt image without flagging it"
  | Non_idempotent_recovery -> "Recovery is not idempotent"

let category_of_rule = function
  | Multiple_writes_at_once | Unflushed_write | Missing_persist_barrier
  | Missing_barrier_nested_tx | Semantic_mismatch | Strand_dependence
  | Unguarded_recovery_read | Silent_corruption_accept
  | Non_idempotent_recovery -> Model_violation
  | Multiple_flushes | Flush_unmodified | Persist_same_object_in_tx
  | Durable_tx_no_writes -> Performance

let pp_category ppf = function
  | Model_violation -> Fmt.string ppf "model violation"
  | Performance -> Fmt.string ppf "performance"

type origin = Static | Dynamic

type t = {
  rule : rule_id;
  model : Model.t; (* the model the program was checked against *)
  loc : Nvmir.Loc.t;
  fname : string; (* function containing the warning *)
  message : string;
  origin : origin;
  witness : Witness.t option; (* evidence, when capture is enabled *)
}

let make ?(origin = Static) ?witness ~rule ~model ~loc ~fname message =
  { rule; model; loc; fname; message; origin; witness }

let with_witness t w = { t with witness = Some w }

let bundle_fingerprint t =
  Witness.bundle_fingerprint ~rule:(rule_name t.rule)
    ~file:t.loc.Nvmir.Loc.file ~line:t.loc.Nvmir.Loc.line

let category t = category_of_rule t.rule

let pp ppf t =
  Fmt.pf ppf "@[<hov 2>WARNING [%s] %a (%a, %a model, %s):@ %s@]"
    (rule_name t.rule) Nvmir.Loc.pp t.loc pp_category (category t) Model.pp
    t.model
    (match t.origin with Static -> "static" | Dynamic -> "dynamic")
    t.message

(* Warnings are deduplicated by rule and location: different traces
   through the same code report one warning, like a compiler would. *)
let dedup_key t = (t.rule, t.loc.Nvmir.Loc.file, t.loc.Nvmir.Loc.line)

let dedup warnings =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun w ->
      let k = dedup_key w in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    warnings

let sort warnings =
  List.sort
    (fun a b ->
      match Nvmir.Loc.compare a.loc b.loc with
      | 0 -> compare (rule_name a.rule) (rule_name b.rule)
      | c -> c)
    warnings
