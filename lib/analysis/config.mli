(** Static-analysis bounds. [loop_bound] (10) and [recursion_bound] (5)
    follow §4.3; [max_paths] and [expansion_fanout] cap the
    interprocedural cross-product of merged traces. *)

type engine =
  | Streaming  (** lazy path enumeration, check as each path completes *)
  | Materialized  (** collect every trace first (differential oracle) *)

type t = {
  loop_bound : int;  (** times a back edge may be taken per path *)
  recursion_bound : int;  (** recursion unrolling depth *)
  max_paths : int;  (** paths enumerated per function *)
  expansion_fanout : int;  (** callee traces spliced per call site *)
  engine : engine;  (** trace-checking engine (default [Streaming]) *)
}

val default : t
val engine_name : engine -> string
val pp : t Fmt.t
