(* The static checker (steps 2–4 of Figure 8): builds the DSG, collects
   interprocedural traces from the analysis roots, applies the rule set
   for the selected persistency model, and reports deduplicated
   warnings.

   Two engines produce the same warnings (a differential test enforces
   it on the whole corpus):

   - [Config.Streaming] (default): traces are enumerated lazily per
     root; each path is fed through [Rules.Incremental] and discarded as
     soon as its warnings are out, so peak memory is O(live paths), and
     independent roots are checked concurrently on the shared domain
     pool.
   - [Config.Materialized]: the original collect-everything-then-check
     pipeline, kept as the oracle. *)

type result = {
  model : Model.t;
  warnings : Warning.t list;
  trace_count : int;
  event_count : int;
  peak_paths : int; (* max simultaneously-live paths across roots *)
  dsg : Dsa.Dsg.t;
}

let m_roots =
  Obs.Metrics.counter "checker.roots_checked"
    ~desc:"analysis roots run through the rule set"

let m_warnings =
  Obs.Metrics.counter "checker.warning_total"
    ~desc:"deduplicated warnings (labelled rule=R,model=M)"

let m_root_ns =
  Obs.Metrics.histogram "checker.root_latency_ns"
    ~desc:"per-root check latency (streaming engine), nanoseconds"

let m_peak =
  Obs.Metrics.gauge "trace.peak_live_paths"
    ~desc:"high-water mark of simultaneously-live paths across roots"

let note_warnings warnings =
  if Obs.enabled () then
    List.iter
      (fun (w : Warning.t) ->
        Obs.Metrics.add_labelled m_warnings
          (Fmt.str "rule=%s,model=%s"
             (Warning.rule_name w.Warning.rule)
             (Model.to_string w.Warning.model))
          1)
      warnings

(* Deduplicate as warnings stream out: first occurrence wins, order
   kept — the same result [Warning.dedup] computes on the concatenated
   list, without retaining duplicates in the meantime. *)
let check_root_streaming ctx (src : Trace.source) =
  Obs.Span.with_ ~name:"check-root" (fun () ->
      Obs.Metrics.incr m_roots;
      let t0 = if Obs.enabled () then Obs.now_ns () else 0L in
      let seen = Hashtbl.create 16 in
      let rev_warnings = ref [] in
      Seq.iter
        (fun trace ->
          let st = Rules.Incremental.feed Rules.Incremental.start trace in
          List.iter
            (fun w ->
              let k = Warning.dedup_key w in
              if not (Hashtbl.mem seen k) then begin
                Hashtbl.add seen k ();
                rev_warnings := w :: !rev_warnings
              end)
            (Rules.Incremental.finish ctx st))
        src.Trace.traces;
      if Obs.enabled () then
        Obs.Metrics.observe m_root_ns
          (Int64.to_int (Int64.sub (Obs.now_ns ()) t0));
      List.rev !rev_warnings)

(* Per-root streaming results: the unit of incremental reuse. A root's
   warnings and stats depend only on its own call-graph closure, so a
   resident analyzer can replay cached [per_root] values for untouched
   roots and re-run only the stale ones, then [merge_roots] — the merge
   reproduces exactly what a cold [check] computes, provided the list
   is in the cold run's root order (cross-root dedup keeps the first
   occurrence, so order is semantically visible). *)
type per_root = {
  pr_root : string;
  pr_warnings : Warning.t list; (* per-root deduped, pre-sort *)
  pr_paths : int;
  pr_events : int;
  pr_peak : int;
}

let check_roots ?(config = Config.default) ?(field_sensitive = true)
    ?(offset_sensitive = true) ?(persistent_roots = []) ?dsg ?roots ~model
    (prog : Nvmir.Prog.t) : per_root list * Dsa.Dsg.t =
  let dsg =
    match dsg with
    | Some d -> d
    | None ->
      Dsa.Dsg.build ~field_sensitive ~offset_sensitive ~persistent_roots prog
  in
  let ctx = { Rules.model; dsg; tenv = Nvmir.Prog.tenv prog } in
  let sources = Trace.stream ~config ?roots dsg prog in
  (* freeze the union-find: forcing the sources from worker domains
     must not race on path compression *)
  Dsa.Arena.compress (Dsa.Dsg.arena dsg);
  let per_root =
    Pool.map (Pool.default ())
      (fun (src : Trace.source) ->
        let ws = check_root_streaming ctx src in
        (* the source is fully forced now, so its stats are final *)
        {
          pr_root = src.Trace.root;
          pr_warnings = ws;
          pr_paths = src.Trace.s_stats.Trace.paths;
          pr_events = src.Trace.s_stats.Trace.events;
          pr_peak = src.Trace.s_stats.Trace.peak_live;
        })
      sources
  in
  (per_root, dsg)

let merge_roots ~model ~dsg (per_root : per_root list) : result =
  let warnings =
    List.concat_map (fun pr -> pr.pr_warnings) per_root
    |> Warning.dedup |> Warning.sort
  in
  note_warnings warnings;
  let trace_count, event_count, peak_paths =
    List.fold_left
      (fun (t, e, p) pr -> (t + pr.pr_paths, e + pr.pr_events, max p pr.pr_peak))
      (0, 0, 0) per_root
  in
  if Obs.enabled () then Obs.Metrics.set_max m_peak peak_paths;
  { model; warnings; trace_count; event_count; peak_paths; dsg }

let check ?(config = Config.default) ?(field_sensitive = true)
    ?(offset_sensitive = true) ?(persistent_roots = []) ?roots ~model
    (prog : Nvmir.Prog.t) : result =
  let dsg =
    Dsa.Dsg.build ~field_sensitive ~offset_sensitive ~persistent_roots prog
  in
  let ctx = { Rules.model; dsg; tenv = Nvmir.Prog.tenv prog } in
  match config.Config.engine with
  | Config.Materialized ->
    let per_root = Trace.collect ~config ?roots dsg prog in
    let traces = List.concat_map snd per_root in
    let warnings =
      List.concat_map (Rules.check_trace ctx) traces
      |> Warning.dedup |> Warning.sort
    in
    note_warnings warnings;
    let event_count =
      List.fold_left (fun acc t -> acc + Trace.length t) 0 traces
    in
    (* every materialized trace is live at once *)
    if Obs.enabled () then begin
      Obs.Metrics.incr m_roots;
      Obs.Metrics.set_max m_peak (List.length traces)
    end;
    {
      model;
      warnings;
      trace_count = List.length traces;
      event_count;
      peak_paths = List.length traces;
      dsg;
    }
  | Config.Streaming ->
    let per_root, dsg =
      check_roots ~config ~field_sensitive ~offset_sensitive ~persistent_roots
        ~dsg ?roots ~model prog
    in
    merge_roots ~model ~dsg per_root

(* Mixed-model checking — lifting the limitation §4.5 states ("DeepMC
   currently does not support the scenario that part of a program uses
   one model and other parts of the program use another"). Each analysis
   root carries its own intended model: the traces rooted there are
   checked under that model's rules, so a codebase whose storage engine
   uses epoch persistency while its allocator uses strict persistency is
   analyzed in one run. *)
type mixed_result = {
  per_root : (string * Model.t * Warning.t list) list;
  mixed_warnings : Warning.t list; (* union, deduplicated *)
  mixed_dsg : Dsa.Dsg.t;
}

let check_mixed ?(config = Config.default) ?(field_sensitive = true)
    ?(offset_sensitive = true) ?(persistent_roots = []) ~model_of ~roots
    (prog : Nvmir.Prog.t) : mixed_result =
  let dsg =
    Dsa.Dsg.build ~field_sensitive ~offset_sensitive ~persistent_roots prog
  in
  let per_root_traces = Trace.collect ~config ~roots dsg prog in
  let tenv = Nvmir.Prog.tenv prog in
  let per_root =
    List.map
      (fun (root, traces) ->
        let model = model_of root in
        let ctx = { Rules.model; dsg; tenv } in
        let warnings =
          List.concat_map (Rules.check_trace ctx) traces
          |> Warning.dedup |> Warning.sort
        in
        (root, model, warnings))
      per_root_traces
  in
  let mixed_warnings =
    Warning.sort
      (Warning.dedup (List.concat_map (fun (_, _, ws) -> ws) per_root))
  in
  { per_root; mixed_warnings; mixed_dsg = dsg }

let violations r =
  List.filter (fun w -> Warning.category w = Warning.Model_violation) r.warnings

let performance_bugs r =
  List.filter (fun w -> Warning.category w = Warning.Performance) r.warnings

let pp_result ppf r =
  Fmt.pf ppf
    "@[<v>model: %a@ traces analyzed: %d (%d events)@ warnings: %d (%d model \
     violations, %d performance)@ %a@]"
    Model.pp r.model r.trace_count r.event_count
    (List.length r.warnings)
    (List.length (violations r))
    (List.length (performance_bugs r))
    Fmt.(list ~sep:(any "@ ") Warning.pp)
    r.warnings
