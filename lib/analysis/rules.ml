(* The checking rules of Table 4 (persistency-model violations) and
   Table 5 (performance bugs), applied to collected traces.

   Every rule is a pure function over a "scoped" trace — the event list
   annotated with transaction nesting, epoch ordinals and strand ids —
   plus the DSG for type queries. Rule metadata (which models a rule
   applies to, its formal statement) lives in [catalog] so the toolkit
   can print Tables 4 and 5 from the registry itself. *)

type ctx = { model : Model.t; dsg : Dsa.Dsg.t; tenv : Nvmir.Ty.env }

(* ------------------------------------------------------------------ *)
(* Scoped events *)

type scoped = {
  ev : Event.t;
  idx : int;
  tx_depth : int; (* transaction nesting at this event *)
  tx_id : int; (* innermost enclosing transaction, -1 when none *)
  tx_stack : int list; (* all enclosing transactions, innermost first *)
  epoch : int; (* marked-epoch ordinal, -1 outside epochs *)
  unit_ : int; (* fence-delimited persist-unit ordinal *)
  strand : int; (* enclosing strand id, -1 outside strands *)
}

let scope_trace (trace : Trace.t) : scoped list =
  let tx_counter = ref 0 in
  let epoch_counter = ref 0 in
  let rec go idx tx_stack epoch unit_ strand = function
    | [] -> []
    | (e : Event.t) :: rest ->
      let mk tx_stack epoch strand =
        {
          ev = e;
          idx;
          tx_depth = List.length tx_stack;
          tx_id = (match tx_stack with [] -> -1 | t :: _ -> t);
          tx_stack;
          epoch;
          unit_;
          strand;
        }
      in
      (match e.kind with
      | Event.Tx_begin ->
        let id = !tx_counter in
        incr tx_counter;
        let stack = id :: tx_stack in
        mk stack epoch strand :: go (idx + 1) stack epoch unit_ strand rest
      | Event.Tx_end ->
        let popped = match tx_stack with [] -> [] | _ :: t -> t in
        (* the Tx_end event itself belongs to the transaction it closes *)
        mk tx_stack epoch strand :: go (idx + 1) popped epoch unit_ strand rest
      | Event.Epoch_begin ->
        let id = !epoch_counter in
        incr epoch_counter;
        mk tx_stack id strand :: go (idx + 1) tx_stack id unit_ strand rest
      | Event.Epoch_end ->
        mk tx_stack epoch strand :: go (idx + 1) tx_stack (-1) unit_ strand rest
      | Event.Strand_begin n ->
        mk tx_stack epoch n :: go (idx + 1) tx_stack epoch unit_ n rest
      | Event.Strand_end _ ->
        mk tx_stack epoch strand
        :: go (idx + 1) tx_stack epoch unit_ (-1) rest
      | Event.Fence ->
        mk tx_stack epoch strand
        :: go (idx + 1) tx_stack epoch (unit_ + 1) strand rest
      | Event.Write _ | Event.Flush _ | Event.Log _ | Event.Call_mark _
      | Event.Ret_mark _ ->
        mk tx_stack epoch strand :: go (idx + 1) tx_stack epoch unit_ strand rest)
  in
  go 0 [] (-1) 0 (-1) trace

let has_marked_epochs scoped =
  List.exists
    (fun s -> match s.ev.Event.kind with Event.Epoch_begin -> true | _ -> false)
    scoped

let warn ?origin ctx rule (s : scoped) fmt =
  Fmt.kstr
    (fun message ->
      Warning.make ?origin ~rule ~model:ctx.model ~loc:s.ev.Event.loc
        ~fname:s.ev.Event.fname message)
    fmt

(* Number of fields of the struct a node abstracts, when known. *)
let field_count ctx node =
  let n = Dsa.Arena.canonical (Dsa.Dsg.arena ctx.dsg) node in
  match n.Dsa.Arena.ty with
  | Some (Nvmir.Ty.Named s) -> (
    match Nvmir.Ty.env_find ctx.tenv s with
    | Some sd -> Some (List.length sd.Nvmir.Ty.fields)
    | None -> None)
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* V: Unflushed/unlogged write (strict and epoch rows of Table 4) *)

let check_unflushed_write ctx scoped =
  List.filter_map
    (fun s ->
      match s.ev.Event.kind with
      | Event.Write a ->
        (* a flush anywhere later on the path covers the write; the
           cross-epoch-deferral case (covered only by a later epoch's
           flush) is the multiple-writes-at-once rule's domain *)
        let covered_by_flush =
          List.exists
            (fun s' ->
              s'.idx > s.idx
              &&
              match s'.ev.Event.kind with
              | Event.Flush (b, _) -> Dsa.Aaddr.contained_in a b
              | _ -> false)
            scoped
        in
        let covered_by_log =
          s.tx_id >= 0
          && List.exists
               (fun s' ->
                 List.mem s'.tx_id s.tx_stack
                 &&
                 match s'.ev.Event.kind with
                 | Event.Log b -> Dsa.Aaddr.contained_in a b
                 | _ -> false)
               scoped
        in
        if covered_by_flush || covered_by_log then None
        else
          Some
            (warn ctx Warning.Unflushed_write s
               "write to %a is never flushed or logged before it must be \
                durable"
               Dsa.Aaddr.pp a)
      | _ -> None)
    scoped

(* ------------------------------------------------------------------ *)
(* V: Multiple writes made durable at once *)

let check_multiple_writes_at_once ctx scoped =
  match ctx.model with
  | Model.Strict ->
    (* under strict persistency a fence must not batch the durability of
       updates to several distinct objects. (A multi-field update of one
       object drained by a single persist is the idiomatic atomic-object
       update and is not flagged; writes with no flush at all belong to
       the unflushed-write rule.) *)
    let rec scan pending ws fs acc =
      match pending with
      | [] -> List.rev acc
      | s :: rest -> (
        match s.ev.Event.kind with
        | Event.Write a when s.tx_depth = 0 -> scan rest ((s, a) :: ws) fs acc
        | Event.Flush (b, _) when s.tx_depth = 0 -> scan rest ws (b :: fs) acc
        | Event.Fence when s.tx_depth = 0 ->
          let durable =
            List.filter
              (fun (_, a) ->
                List.exists (fun b -> Dsa.Aaddr.contained_in a b) fs)
              ws
          in
          let objects =
            List.sort_uniq Int.compare
              (List.map (fun (_, (a : Dsa.Aaddr.t)) -> a.Dsa.Aaddr.node) durable)
          in
          let acc =
            if List.length objects >= 2 then
              warn ctx Warning.Multiple_writes_at_once s
                "updates to %d distinct persistent objects made durable by a \
                 single persist barrier; strict persistency requires one \
                 barrier per update"
                (List.length objects)
              :: acc
            else acc
          in
          scan rest [] [] acc
        | _ -> scan rest ws fs acc)
    in
    scan scoped [] [] []
  | Model.Epoch | Model.Strand ->
    (* a write of epoch E made durable only by a flush in a later epoch
       E' > E batches the durability of the two epochs together *)
    if not (has_marked_epochs scoped) then []
    else
      List.filter_map
        (fun s ->
          match s.ev.Event.kind with
          | Event.Write a when s.epoch >= 0 ->
            let flushed_in_own =
              List.exists
                (fun s' ->
                  s'.epoch = s.epoch && s'.idx > s.idx
                  &&
                  match s'.ev.Event.kind with
                  | Event.Flush (b, _) -> Dsa.Aaddr.contained_in a b
                  | _ -> false)
                scoped
            in
            let late_flush =
              List.find_opt
                (fun s' ->
                  s'.epoch > s.epoch
                  &&
                  match s'.ev.Event.kind with
                  | Event.Flush (b, _) -> Dsa.Aaddr.contained_in a b
                  | _ -> false)
                scoped
            in
            if (not flushed_in_own) && s.tx_id < 0 then
              match late_flush with
              | Some f ->
                Some
                  (warn ctx Warning.Multiple_writes_at_once f
                     "flush makes the epoch-%d write to %a durable together \
                      with epoch-%d data; epoch persistency requires it to \
                      persist at its own epoch boundary"
                     s.epoch Dsa.Aaddr.pp a f.epoch)
              | None -> None
            else None
          | _ -> None)
        scoped

(* ------------------------------------------------------------------ *)
(* V: Missing persist barriers *)

let check_missing_persist_barrier ctx scoped =
  match ctx.model with
  | Model.Strict ->
    (* after a flush, a fence must occur before new persistent work *)
    List.filter_map
      (fun s ->
        match s.ev.Event.kind with
        | Event.Flush (a, _) ->
          let rec forward = function
            | [] -> None (* trace ends: nothing left to order *)
            | s' :: rest when s'.idx <= s.idx -> forward rest
            | s' :: rest -> (
              match s'.ev.Event.kind with
              | Event.Fence -> None
              | Event.Flush _ -> forward rest (* batched flush: V1's domain *)
              | Event.Write _ | Event.Log _ | Event.Tx_begin ->
                Some
                  (warn ctx Warning.Missing_persist_barrier s
                     "flush of %a is not followed by a persist barrier \
                      before the next persistent operation (%a at %a)"
                     Dsa.Aaddr.pp a Event.pp_kind s'.ev.Event.kind
                     Nvmir.Loc.pp s'.ev.Event.loc)
              | _ -> forward rest)
          in
          forward scoped
        | _ -> None)
      scoped
  | Model.Epoch | Model.Strand ->
    (* a persist barrier must close every non-empty epoch *)
    List.filter_map
      (fun s ->
        match s.ev.Event.kind with
        | Event.Epoch_end ->
          let in_epoch =
            List.filter
              (fun s' -> s'.epoch = s.epoch && s'.idx < s.idx)
              scoped
          in
          (* only epochs that issued flushes need a closing barrier; an
             epoch whose writes were never flushed at all is the
             unflushed-write / deferred-durability rules' domain *)
          let has_flush =
            List.exists
              (fun s' ->
                match s'.ev.Event.kind with
                | Event.Flush _ -> true
                | _ -> false)
              in_epoch
          in
          let last_durability_op =
            List.fold_left
              (fun acc s' ->
                match s'.ev.Event.kind with
                | Event.Write _ | Event.Flush _ | Event.Fence -> Some s'
                | _ -> acc)
              None in_epoch
          in
          let closed =
            match last_durability_op with
            | Some { ev = { Event.kind = Event.Fence; _ }; _ } -> true
            | Some _ | None -> false
          in
          if has_flush && not closed then
            Some
              (warn ctx Warning.Missing_persist_barrier s
                 "epoch ends without a persist barrier; stores of the next \
                  epoch may persist before this epoch's stores")
          else None
        | _ -> None)
      scoped

(* ------------------------------------------------------------------ *)
(* V: Missing persist barriers in nested transactions *)

let check_missing_barrier_nested_tx ctx scoped =
  match ctx.model with
  | Model.Strict -> []
  | Model.Epoch | Model.Strand ->
    List.filter_map
      (fun s ->
        match s.ev.Event.kind with
        | Event.Tx_end when s.tx_depth >= 2 ->
          let in_tx =
            List.filter
              (fun s' -> s'.tx_id = s.tx_id && s'.idx < s.idx)
              scoped
          in
          let has_persist_work =
            List.exists
              (fun s' ->
                match s'.ev.Event.kind with
                | Event.Flush _ -> true
                | _ -> false)
              in_tx
          in
          let last_durability_op =
            List.fold_left
              (fun acc s' ->
                match s'.ev.Event.kind with
                | Event.Write _ | Event.Flush _ | Event.Fence -> Some s'
                | _ -> acc)
              None in_tx
          in
          let closed =
            match last_durability_op with
            | Some { ev = { Event.kind = Event.Fence; _ }; _ } -> true
            | Some _ | None -> false
          in
          if has_persist_work && not closed then
            Some
              (warn ctx Warning.Missing_barrier_nested_tx s
                 "inner transaction ends without a persist barrier; its \
                  writes are not guaranteed durable before the outer \
                  transaction continues")
          else None
        | _ -> None)
      scoped

(* ------------------------------------------------------------------ *)
(* V: Mismatch between program semantics and model implementation *)

(* Consecutive persist units (epochs under the epoch model, fence-
   delimited units otherwise) writing to different parts of the same
   persistent object indicate that a logically-atomic update was split
   across durability boundaries — the Figure 1 hashmap pattern. Updates
   under transaction protection are exempt (the transaction restores
   atomicity). *)
let check_semantic_mismatch ctx scoped =
  let marked =
    match ctx.model with
    | Model.Epoch | Model.Strand -> has_marked_epochs scoped
    | Model.Strict -> false
  in
  let unit_of s = if marked then s.epoch else s.unit_ in
  let writes =
    List.filter_map
      (fun s ->
        match s.ev.Event.kind with
        | Event.Write a when s.tx_depth = 0 && (not marked) || (marked && s.epoch >= 0 && s.tx_depth = 0) ->
          Some (s, a)
        | _ -> None)
      scoped
  in
  (* the earlier write must have been persisted within its own unit —
     otherwise the pair is a deferred-durability case handled by the
     multiple-writes-at-once rule *)
  let flushed_in_unit (s1, a1) =
    List.exists
      (fun s' ->
        s'.idx > s1.idx
        && unit_of s' = unit_of s1
        &&
        match s'.ev.Event.kind with
        | Event.Flush (b, _) -> Dsa.Aaddr.contained_in a1 b
        | _ -> false)
      scoped
  in
  (* repeated-protocol exemption: when the later unit also re-writes the
     earlier unit's address, the units are iterations of one update
     protocol (log appends, queue publishes in a loop), not a split
     atomic update *)
  let unit_rewrites u a1 =
    List.exists
      (fun (s, a) -> unit_of s = u && Dsa.Aaddr.may_overlap a a1)
      writes
  in
  List.filter_map
    (fun (s2, a2) ->
      let u2 = unit_of s2 in
      let prior =
        List.find_opt
          (fun (s1, a1) ->
            let u1 = unit_of s1 in
            u1 >= 0 && u2 >= 0 && u1 + 1 = u2 && s1.idx < s2.idx
            && Dsa.Aaddr.same_object a1 a2
            && (not (Dsa.Aaddr.may_overlap a1 a2))
            && flushed_in_unit (s1, a1)
            && not (unit_rewrites u2 a1))
          writes
      in
      match prior with
      | Some (s1, a1) ->
        Some
          (warn ctx Warning.Semantic_mismatch s2
             "consecutive persist units update different parts of the same \
              persistent object (%a here, %a at %a); a crash between them \
              leaves the object half-updated"
             Dsa.Aaddr.pp a2 Dsa.Aaddr.pp a1 Nvmir.Loc.pp s1.ev.Event.loc)
      | None -> None)
    writes

(* ------------------------------------------------------------------ *)
(* V: Data dependencies between strands (static over-approximation) *)

type strand_region = {
  sr_id : int;
  sr_begin_unit : int; (* fence-delimited unit at strand begin *)
  mutable sr_end_unit : int;
  mutable sr_writes : (scoped * Dsa.Aaddr.t) list;
}

(* Strand regions separated by a persist barrier are ordered; regions
   with no barrier between them may persist concurrently and must
   therefore touch disjoint addresses (Table 4, strand row). *)
let check_strand_dependence ctx scoped =
  match ctx.model with
  | Model.Strict | Model.Epoch -> []
  | Model.Strand ->
    let regions = ref [] in
    let open_region = ref None in
    List.iter
      (fun s ->
        match s.ev.Event.kind with
        | Event.Strand_begin n ->
          let r =
            {
              sr_id = n;
              sr_begin_unit = s.unit_;
              sr_end_unit = s.unit_;
              sr_writes = [];
            }
          in
          open_region := Some r;
          regions := r :: !regions
        | Event.Strand_end _ -> (
          match !open_region with
          | Some r ->
            r.sr_end_unit <- s.unit_;
            open_region := None
          | None -> ())
        | Event.Write a -> (
          match !open_region with
          | Some r -> r.sr_writes <- (s, a) :: r.sr_writes
          | None -> ())
        | _ -> ())
      scoped;
    let regions = List.rev !regions in
    let concurrent r1 r2 =
      r1.sr_id <> r2.sr_id
      && not (r2.sr_begin_unit > r1.sr_end_unit || r1.sr_begin_unit > r2.sr_end_unit)
    in
    let rec pairs = function
      | [] -> []
      | r :: rest -> List.map (fun r' -> (r, r')) rest @ pairs rest
    in
    List.filter_map
      (fun (r1, r2) ->
        if not (concurrent r1 r2) then None
        else
          List.find_map
            (fun (s2, a2) ->
              List.find_map
                (fun (_, a1) ->
                  if Dsa.Aaddr.may_overlap a1 a2 then
                    Some
                      (warn ctx Warning.Strand_dependence s2
                         "strands %d and %d both write %a; dependent strands \
                          must not persist concurrently"
                         r1.sr_id r2.sr_id Dsa.Aaddr.pp a2)
                  else None)
                r1.sr_writes)
            r2.sr_writes)
      (pairs regions)

(* ------------------------------------------------------------------ *)
(* P: flush-coverage rules (Table 5), one stateful scan:
   - multiple flushes to a persistent object (redundant write-backs)
   - flush an unmodified object / unmodified fields
   - persist the same object multiple times in a transaction
   - durable transaction without persistent writes *)

type tx_state = {
  id : int;
  begin_event : scoped;
  mutable writes : int;
  mutable persisted : Dsa.Aaddr.t list; (* logged or flushed in this tx *)
}

let distinct_fields addrs =
  List.sort_uniq compare
    (List.filter_map (fun (a : Dsa.Aaddr.t) -> a.Dsa.Aaddr.field) addrs)

let check_flush_coverage ctx scoped =
  let warnings = ref [] in
  let push w = warnings := w :: !warnings in
  let dirty = ref [] in (* written, not yet flushed *)
  let clean = ref [] in (* flushed since last overlapping write *)
  let tx_stack = ref [] in
  let handle_redundant s (b : Dsa.Aaddr.t) ~covered =
    let clean_overlap =
      List.exists (fun f -> Dsa.Aaddr.may_overlap f b) !clean
    in
    if clean_overlap && covered = [] then begin
      let in_tx =
        match !tx_stack with
        | tx :: _ when List.exists (fun p -> Dsa.Aaddr.may_overlap p b) tx.persisted ->
          Some tx
        | _ -> None
      in
      match in_tx with
      | Some _ ->
        push
          (warn ctx Warning.Persist_same_object_in_tx s
             "%a is persisted again within the same transaction without an \
              intervening modification"
             Dsa.Aaddr.pp b);
        true
      | None ->
        push
          (warn ctx Warning.Multiple_flushes s
             "redundant write-back: %a was already flushed and not modified \
              since"
             Dsa.Aaddr.pp b);
        true
    end
    else false
  in
  List.iter
    (fun s ->
      match s.ev.Event.kind with
      | Event.Write a ->
        dirty := a :: !dirty;
        clean := List.filter (fun f -> not (Dsa.Aaddr.may_overlap f a)) !clean;
        List.iter (fun tx -> tx.writes <- tx.writes + 1) !tx_stack
      | Event.Log b -> (
        (match !tx_stack with
        | tx :: _ ->
          if List.exists (fun p -> Dsa.Aaddr.may_overlap p b) tx.persisted then
            push
              (warn ctx Warning.Persist_same_object_in_tx s
                 "%a is logged into the transaction more than once"
                 Dsa.Aaddr.pp b);
          tx.persisted <- b :: tx.persisted
        | [] -> ());
        (* logging a whole object whose fields are mostly untouched
           copies unmodified data into the undo log *)
        match (b.Dsa.Aaddr.field, field_count ctx b.Dsa.Aaddr.node) with
        | None, Some nfields when nfields > 1 -> (
          let later_writes =
            List.filter_map
              (fun s' ->
                match s'.ev.Event.kind with
                | Event.Write a
                  when s'.idx > s.idx
                       && List.mem s.tx_id s'.tx_stack
                       && Dsa.Aaddr.same_object a b -> Some a
                | _ -> None)
              scoped
          in
          let whole_obj_write =
            List.exists (fun (a : Dsa.Aaddr.t) -> a.Dsa.Aaddr.field = None) later_writes
          in
          let written = distinct_fields later_writes in
          match written with
          | [] -> ()
          | _ when whole_obj_write -> ()
          | _ when List.length written < nfields ->
            push
              (warn ctx Warning.Flush_unmodified s
                 "whole object logged but only %d of %d fields are modified \
                  in the transaction; unmodified fields are copied to the \
                  undo log"
                 (List.length written) nfields)
          | _ -> ())
        | _ -> ())
      | Event.Flush (b, origin) -> (
        let covered = List.filter (fun w -> Dsa.Aaddr.may_overlap w b) !dirty in
        let redundant = handle_redundant s b ~covered in
        (if (not redundant) && covered = [] then
           match origin with
           | Event.From_persist ->
             push
               (warn ctx Warning.Durable_tx_no_writes s
                  "durable operation persists %a but no persistent write \
                   precedes it on this path"
                  Dsa.Aaddr.pp b)
           | Event.Plain ->
             push
               (warn ctx Warning.Flush_unmodified s
                  "flush of %a without any preceding modification writes \
                   back unmodified data"
                  Dsa.Aaddr.pp b));
        (* whole-object flush covering only some written fields *)
        (if covered <> [] && b.Dsa.Aaddr.field = None then
           match field_count ctx b.Dsa.Aaddr.node with
           | Some nfields when nfields > 1 ->
             let whole_obj_write =
               List.exists (fun (a : Dsa.Aaddr.t) -> a.Dsa.Aaddr.field = None) covered
             in
             let written = distinct_fields covered in
             if (not whole_obj_write) && List.length written < nfields then
               push
                 (warn ctx Warning.Flush_unmodified s
                    "whole object flushed while only %d of %d fields were \
                     modified; unmodified fields are written back"
                    (List.length written) nfields)
           | Some _ | None -> ());
        (* record transaction-scoped persists *)
        (match !tx_stack with
        | tx :: _ -> tx.persisted <- b :: tx.persisted
        | [] -> ());
        clean := b :: !clean;
        dirty := List.filter (fun w -> not (Dsa.Aaddr.contained_in w b)) !dirty)
      | Event.Tx_begin ->
        tx_stack := { id = s.tx_id; begin_event = s; writes = 0; persisted = [] } :: !tx_stack
      | Event.Tx_end -> (
        match !tx_stack with
        | [] -> ()
        | tx :: rest ->
          tx_stack := rest;
          if tx.writes = 0 then
            push
              (warn ctx Warning.Durable_tx_no_writes tx.begin_event
                 "durable transaction commits without any persistent write");
          (* nested writes also count toward enclosing transactions *)
          (match rest with
          | outer :: _ -> outer.writes <- outer.writes + tx.writes
          | [] -> ()))
      | Event.Fence | Event.Epoch_begin | Event.Epoch_end
      | Event.Strand_begin _ | Event.Strand_end _ | Event.Call_mark _
      | Event.Ret_mark _ -> ())
    scoped;
  List.rev !warnings

(* ------------------------------------------------------------------ *)
(* Registry *)

type rule_meta = {
  id : Warning.rule_id;
  models : Model.t list; (* models the rule applies to *)
  statement : string; (* the formal rule as stated in Table 4 / Table 5 *)
}

let catalog =
  [
    {
      id = Warning.Unflushed_write;
      models = [ Model.Strict; Model.Epoch ];
      statement =
        "A write W to address A1 must be followed by a flush F of A2 with \
         A1 contained in A2 (strict: A1 = A2; epoch: within the same epoch), \
         or be logged into an enclosing transaction.";
    };
    {
      id = Warning.Multiple_writes_at_once;
      models = [ Model.Strict; Model.Epoch ];
      statement =
        "A persist barrier P must be preceded by only one write W (strict); \
         a write of epoch E must not first become durable via a flush in a \
         later epoch (epoch).";
    };
    {
      id = Warning.Missing_persist_barrier;
      models = [ Model.Strict; Model.Epoch ];
      statement =
        "Strict: every flush is followed by a persist barrier before the \
         next persistent operation. Epoch: every non-empty epoch E1 ends \
         with a persist barrier before epoch E2 begins.";
    };
    {
      id = Warning.Missing_barrier_nested_tx;
      models = [ Model.Epoch ];
      statement =
        "For any transaction E1 nested inside E2, a persist barrier must \
         close E1 before control returns to E2.";
    };
    {
      id = Warning.Semantic_mismatch;
      models = [ Model.Strict; Model.Epoch ];
      statement =
        "For consecutive persist units E1 and E2 writing addresses A1 in O1 \
         and A2 in O2, O1 must differ from O2 (a logically-atomic object \
         update must not straddle a durability boundary).";
    };
    {
      id = Warning.Strand_dependence;
      models = [ Model.Strand ];
      statement =
        "For any concurrent strands S1 and S2 operating on addresses A1 and \
         A2, A1 and A2 must be disjoint.";
    };
    {
      id = Warning.Multiple_flushes;
      models = Model.all;
      statement =
        "For any two flushes F1 and F2 of addresses A1 and A2 with no \
         intervening write, A1 and A2 must be disjoint.";
    };
    {
      id = Warning.Flush_unmodified;
      models = Model.all;
      statement =
        "For a flush F of address A1 there must be a preceding write W to \
         A2 with A1 = A2; flushing or logging a whole object requires all \
         its fields to be modified.";
    };
    {
      id = Warning.Persist_same_object_in_tx;
      models = Model.all;
      statement =
        "Within one transaction, a persistent object must be logged or \
         persisted at most once unless modified in between.";
    };
    {
      id = Warning.Durable_tx_no_writes;
      models = Model.all;
      statement =
        "Every durable transaction (or persist operation) must contain at \
         least one persistent write.";
    };
    (* Recovery-path rules: fired by the media-corruption recovery
       executor ([Recover]), never by the static trace rules above. *)
    {
      id = Warning.Unguarded_recovery_read;
      models = Model.all;
      statement =
        "A recovery-path read of a slot the crash left in flight (and \
         possibly media-corrupt) must be preceded by a CRC check covering \
         that slot.";
    };
    {
      id = Warning.Silent_corruption_accept;
      models = Model.all;
      statement =
        "If any slot of the recovered image is still corrupt when recovery \
         returns, recovery must signal failure (nonzero return) rather \
         than accept the image.";
    };
    {
      id = Warning.Non_idempotent_recovery;
      models = Model.all;
      statement =
        "Running recovery a second time over an already-recovered image \
         must leave persistent state unchanged (recovery is a fix-point).";
    };
  ]

let meta_of id = List.find (fun m -> m.id = id) catalog

let applicable_rules model =
  List.filter (fun m -> List.exists (Model.equal model) m.models) catalog

(* One [run_all] serves both engines ([check_trace] and
   [Incremental.finish]), so this counter covers every rule evaluation
   the checker performs regardless of engine. *)
let m_rules_fired =
  Obs.Metrics.counter "rules.fired"
    ~desc:"rule evaluations (one per rule per completed trace)"

(* ------------------------------------------------------------------ *)
(* Static witnesses: the minimal event slice behind a warning.

   Built only when witness capture is enabled, from the scoped events
   the rule already walked — the warning's trigger event, the
   flush/fence (or log) events that should order it, the enclosing
   transaction boundaries, and the interprocedural call path recovered
   from the trace's call/ret provenance markers. The disabled path is
   one atomic load per completed trace. *)

let slice_ref ~role (s : scoped) =
  Witness.event_ref ~role
    ~what:(Fmt.str "%a" Event.pp_kind s.ev.Event.kind)
    ~loc:s.ev.Event.loc ~fname:s.ev.Event.fname

(* The call stack enclosing [idx], outermost first, from the
   Call_mark/Ret_mark provenance markers of the merged trace. *)
let call_path_at scoped idx =
  List.rev
    (List.fold_left
       (fun stack s ->
         if s.idx >= idx then stack
         else
           match s.ev.Event.kind with
           | Event.Call_mark f -> f :: stack
           | Event.Ret_mark _ -> ( match stack with [] -> [] | _ :: t -> t)
           | _ -> stack)
       [] scoped)

let first_after scoped idx pred =
  List.find_opt (fun s -> s.idx > idx && pred s) scoped

let last_before scoped idx pred =
  List.fold_left
    (fun acc s -> if s.idx < idx && pred s then Some s else acc)
    None scoped

let static_witness scoped (w : Warning.t) : Witness.t =
  let trigger =
    List.find_opt
      (fun s -> Nvmir.Loc.equal s.ev.Event.loc w.Warning.loc)
      scoped
  in
  match trigger with
  | None -> Witness.Static { s_slice = []; s_call_path = [] }
  | Some t ->
    let covering_flush a =
      first_after scoped t.idx (fun s ->
          match s.ev.Event.kind with
          | Event.Flush (b, _) -> Dsa.Aaddr.contained_in a b
          | _ -> false)
    in
    let fence_after idx =
      first_after scoped idx (fun s -> s.ev.Event.kind = Event.Fence)
    in
    let tx_pair () =
      if t.tx_id < 0 then []
      else
        let begin_ =
          List.find_opt
            (fun s ->
              s.tx_id = t.tx_id && s.ev.Event.kind = Event.Tx_begin)
            scoped
        in
        let end_ =
          first_after scoped t.idx (fun s ->
              s.tx_id = t.tx_id && s.ev.Event.kind = Event.Tx_end)
        in
        List.filter_map Fun.id
          [
            Option.map (slice_ref ~role:"tx-begin") begin_;
            Option.map (slice_ref ~role:"tx-end") end_;
          ]
    in
    let slice =
      match t.ev.Event.kind with
      | Event.Write a -> (
        slice_ref ~role:"store" t
        ::
        (match covering_flush a with
        | Some f -> (
          slice_ref ~role:"covering-flush" f
          ::
          (match fence_after f.idx with
          | Some fe -> [ slice_ref ~role:"ordering-fence" fe ]
          | None -> []))
        | None -> (
          match
            first_after scoped t.idx (fun s ->
                match s.ev.Event.kind with
                | Event.Log b -> Dsa.Aaddr.contained_in a b
                | _ -> false)
          with
          | Some l -> [ slice_ref ~role:"tx-log" l ]
          | None -> [])))
      | Event.Flush (b, _) ->
        List.filter_map Fun.id
          [
            Option.map (slice_ref ~role:"written-store")
              (last_before scoped t.idx (fun s ->
                   match s.ev.Event.kind with
                   | Event.Write a -> Dsa.Aaddr.contained_in a b
                   | _ -> false));
            Some (slice_ref ~role:"flush" t);
            Option.map (slice_ref ~role:"ordering-fence") (fence_after t.idx);
          ]
      | Event.Fence ->
        (* the stores and flushes this barrier drains: same persist unit *)
        List.filter_map
          (fun s ->
            if s.idx < t.idx && s.unit_ = t.unit_ then
              match s.ev.Event.kind with
              | Event.Write _ -> Some (slice_ref ~role:"drained-store" s)
              | Event.Flush _ -> Some (slice_ref ~role:"drained-flush" s)
              | _ -> None
            else None)
          scoped
        @ [ slice_ref ~role:"persist-barrier" t ]
      | Event.Tx_begin | Event.Tx_end ->
        slice_ref
          ~role:
            (if t.ev.Event.kind = Event.Tx_begin then "tx-begin" else "tx-end")
          t
        :: []
      | _ -> [ slice_ref ~role:"trigger" t ]
    in
    let slice = slice @ if t.ev.Event.kind = Event.Tx_begin then [] else tx_pair () in
    (* keep the slice minimal and in trace order, one entry per event *)
    let slice =
      let seen = Hashtbl.create 8 in
      List.filter
        (fun (r : Witness.event_ref) ->
          let k = (r.Witness.er_role, Nvmir.Loc.to_string r.Witness.er_loc) in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.replace seen k ();
            true
          end)
        slice
    in
    Witness.Static { s_slice = slice; s_call_path = call_path_at scoped t.idx }

let attach_witnesses scoped warnings =
  List.map
    (fun (w : Warning.t) ->
      match w.Warning.witness with
      | Some _ -> w
      | None -> Warning.with_witness w (static_witness scoped w))
    warnings

let run_all ctx scoped =
  Obs.Metrics.add m_rules_fired 7;
  let warnings =
    List.concat
      [
        check_unflushed_write ctx scoped;
        check_multiple_writes_at_once ctx scoped;
        check_missing_persist_barrier ctx scoped;
        check_missing_barrier_nested_tx ctx scoped;
        check_semantic_mismatch ctx scoped;
        check_strand_dependence ctx scoped;
        check_flush_coverage ctx scoped;
      ]
  in
  if warnings <> [] && Witness.enabled () then attach_witnesses scoped warnings
  else warnings

(* Run every applicable rule over one trace. *)
let check_trace ctx (trace : Trace.t) : Warning.t list =
  run_all ctx (scope_trace trace)

(* ------------------------------------------------------------------ *)
(* Incremental checking (streaming engine).

   The streaming trace engine feeds events into a per-path state as the
   path is enumerated; the state is a persistent value, so forking an
   in-flight path at a branch point is one pointer copy and siblings
   share their common scoped prefix. When a path completes, [finish]
   runs the rule set over its scoped events and the warnings stream out
   — no second pass over a materialized trace.

   [step] is an independent reimplementation of [scope_trace] (kept
   deliberately separate: the Materialized/Streaming differential tests
   cross-check the two scopings against each other). *)

module Incremental = struct
  type state = {
    idx : int;
    tx_counter : int;
    epoch_counter : int;
    tx_stack : int list;
    epoch : int;
    unit_ : int;
    strand : int;
    rev_scoped : scoped list; (* shared with forked siblings *)
  }

  let start =
    {
      idx = 0;
      tx_counter = 0;
      epoch_counter = 0;
      tx_stack = [];
      epoch = -1;
      unit_ = 0;
      strand = -1;
      rev_scoped = [];
    }

  let step (st : state) (e : Event.t) : state =
    let mk tx_stack epoch strand =
      {
        ev = e;
        idx = st.idx;
        tx_depth = List.length tx_stack;
        tx_id = (match tx_stack with [] -> -1 | t :: _ -> t);
        tx_stack;
        epoch;
        unit_ = st.unit_;
        strand;
      }
    in
    let push s st = { st with idx = st.idx + 1; rev_scoped = s :: st.rev_scoped } in
    match e.Event.kind with
    | Event.Tx_begin ->
      let id = st.tx_counter in
      let stack = id :: st.tx_stack in
      push
        (mk stack st.epoch st.strand)
        { st with tx_counter = id + 1; tx_stack = stack }
    | Event.Tx_end ->
      (* the Tx_end event itself belongs to the transaction it closes *)
      let popped = match st.tx_stack with [] -> [] | _ :: t -> t in
      push (mk st.tx_stack st.epoch st.strand) { st with tx_stack = popped }
    | Event.Epoch_begin ->
      let id = st.epoch_counter in
      push
        (mk st.tx_stack id st.strand)
        { st with epoch_counter = id + 1; epoch = id }
    | Event.Epoch_end ->
      push (mk st.tx_stack st.epoch st.strand) { st with epoch = -1 }
    | Event.Strand_begin n ->
      push (mk st.tx_stack st.epoch n) { st with strand = n }
    | Event.Strand_end _ ->
      push (mk st.tx_stack st.epoch st.strand) { st with strand = -1 }
    | Event.Fence ->
      push (mk st.tx_stack st.epoch st.strand) { st with unit_ = st.unit_ + 1 }
    | Event.Write _ | Event.Flush _ | Event.Log _ | Event.Call_mark _
    | Event.Ret_mark _ -> push (mk st.tx_stack st.epoch st.strand) st

  let feed st trace = List.fold_left step st trace
  let finish ctx st = run_all ctx (List.rev st.rev_scoped)
end
