(** Checker warnings: persistency-model violations and performance bugs,
    each carrying the rule that fired, the source location, and an
    explanation. The rule identifiers are the nine bug classes of
    Table 1 plus the strand-dependence rule of Table 4, plus the
    recovery-path rules reported by the media-corruption recovery
    executor ([Recover]) — those three are dynamic-only and invisible
    to the static tier. *)

type category = Model_violation | Performance

type rule_id =
  | Multiple_writes_at_once
  | Unflushed_write
  | Missing_persist_barrier
  | Missing_barrier_nested_tx
  | Semantic_mismatch
  | Strand_dependence
  | Multiple_flushes
  | Flush_unmodified
  | Persist_same_object_in_tx
  | Durable_tx_no_writes
  | Unguarded_recovery_read
  | Silent_corruption_accept
  | Non_idempotent_recovery

val all_rules : rule_id list

val rule_name : rule_id -> string
(** Stable kebab-case identifier, e.g. ["unflushed-write"]. *)

val rule_description : rule_id -> string
(** The Table 1 row description. *)

val category_of_rule : rule_id -> category
val pp_category : category Fmt.t

type origin = Static | Dynamic

type t = {
  rule : rule_id;
  model : Model.t;  (** the model the program was checked against *)
  loc : Nvmir.Loc.t;
  fname : string;
  message : string;
  origin : origin;
  witness : Witness.t option;
      (** structured evidence, present when witness capture was enabled
          ({!Witness.set_enabled}) during the run that fired the rule *)
}

val make :
  ?origin:origin ->
  ?witness:Witness.t ->
  rule:rule_id ->
  model:Model.t ->
  loc:Nvmir.Loc.t ->
  fname:string ->
  string ->
  t

val with_witness : t -> Witness.t -> t

val bundle_fingerprint : t -> string
(** The warning's cross-tier evidence-bundle key:
    {!Witness.bundle_fingerprint} over (rule, file, line). *)

val category : t -> category
val pp : t Fmt.t

val dedup_key : t -> rule_id * string * int

val dedup : t list -> t list
(** Deduplicate by (rule, file, line): different traces through the same
    code report one warning. *)

val sort : t list -> t list
(** By location, then rule name. *)
