(* Content fingerprints for incremental re-analysis.

   A function's per-root analysis output (its traces, and therefore
   its warnings) is a pure function of:

   - its own printed body (instructions, operands, source locations —
     [Func.content_hash]), and
   - the slice of the global DSG its variables can reach
     ([Dsg.summary_hash]: canonical node ids, persistence, types,
     mod/ref sets, edges).

   Combining the two gives a per-function fingerprint; digesting the
   fingerprints of a root's call-graph closure (sorted, so digest
   order is edit-independent) gives the root's closure key. Equal
   closure key => every input the streaming checker reads while
   enumerating that root is identical => the cached per-root result
   (warning text included — raw node ids were digested) may be
   replayed verbatim.

   The DSG is global, so an edit anywhere can in principle perturb
   resolution in an untouched function (Steensgaard unification is
   whole-program). That is exactly why the fingerprint folds in the
   *current build's* DSG summary rather than trusting the body hash
   alone: the table is rebuilt against each new program build
   (parse + DSG are linear), and any resolution drift surfaces as a
   fingerprint change. *)

type table = {
  fps : (string, Nvmir.Chash.t) Hashtbl.t; (* fname -> input fingerprint *)
  keys : (string, Nvmir.Chash.t) Hashtbl.t; (* root -> closure key *)
  roots : string list; (* cold-run enumeration order *)
}

let func_fp table fname = Hashtbl.find_opt table.fps fname
let root_key table root = Hashtbl.find_opt table.keys root
let roots table = table.roots

(* Reachable defined functions from [root], root included. Undefined
   callees have no body to fingerprint; their names still perturb the
   caller's content hash, so a call-target rename is never invisible. *)
let closure cg root =
  let seen = Hashtbl.create 16 in
  let rec visit f =
    if not (Hashtbl.mem seen f) && Graphs.Callgraph.is_defined cg f then begin
      Hashtbl.replace seen f ();
      List.iter visit (Graphs.Callgraph.callees cg f)
    end
  in
  visit root;
  Hashtbl.fold (fun f () acc -> f :: acc) seen [] |> List.sort String.compare

let build dsg prog : table =
  let fps = Hashtbl.create 32 in
  List.iter
    (fun f ->
      let fname = Nvmir.Func.name f in
      Hashtbl.replace fps fname
        (Nvmir.Chash.combine
           (Nvmir.Func.content_hash f)
           (Dsa.Dsg.summary_hash dsg ~fname)))
    (Nvmir.Prog.funcs prog);
  let cg = Graphs.Callgraph.of_prog prog in
  let roots = Trace.default_roots prog in
  let keys = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let key =
        List.fold_left
          (fun h f ->
            match Hashtbl.find_opt fps f with
            | Some fp -> Nvmir.Chash.combine (Nvmir.Chash.add_string h f) fp
            | None -> Nvmir.Chash.add_string h f)
          Nvmir.Chash.empty (closure cg r)
      in
      Hashtbl.replace keys r key)
    roots;
  { fps; keys; roots }

(* Functions whose fingerprint differs from (or is absent in) the
   previous build — the invalidation front an edit pushes. *)
let changed_functions ~old table =
  Hashtbl.fold
    (fun fname fp acc ->
      match Hashtbl.find_opt old.fps fname with
      | Some fp' when Nvmir.Chash.equal fp fp' -> acc
      | _ -> fname :: acc)
    table.fps []
  |> List.sort String.compare

(* Roots needing re-analysis: closure key absent or changed. Exactly
   the edited functions plus their memo-dependent callers — an
   untouched root whose closure misses every changed function keeps
   its key and is replayed from cache. *)
let stale_roots ~old table =
  List.filter
    (fun r ->
      match (root_key table r, root_key old r) with
      | Some k, Some k' -> not (Nvmir.Chash.equal k k')
      | _, None -> true
      | None, _ -> true)
    table.roots
