(** Persistent work-stealing domain pool.

    A pool is created once and reused across submissions: worker domains
    are spawned lazily on the first parallel job and then parked between
    jobs, so repeated [map] calls pay no domain fork/join cost. Work is
    submitted as chunks that idle domains steal via an atomic claim
    counter; the submitting domain helps drain its own job, which makes
    nested submissions (a task that itself calls [map]) deadlock-free. *)

type t

type stats = {
  size : int;  (** target number of cooperating domains *)
  alive : int;  (** worker domains currently spawned *)
  spawned_total : int;  (** worker domains ever spawned (reuse indicator) *)
  jobs : int;  (** submissions completed *)
  chunks : int;  (** chunks executed across all jobs *)
}

type worker_stat = {
  domain : int;  (** Domain.self of the draining domain *)
  claims : int;  (** chunks claimed by this domain (always counted) *)
  busy_ns : int64;
      (** time spent inside chunks; accrues only while [Obs.enabled] is
          on (it costs two clock reads per chunk) *)
  parks : int;
      (** blocking waits this domain entered with no pending work
          (always counted) — a resident daemon's idle evidence *)
}

val recommended_size : unit -> int
(** [max 1 (min 8 (recommended_domain_count - 1))]. *)

val create : ?size:int -> unit -> t
(** A new pool targeting [size] cooperating domains (default
    {!recommended_size}). No domain is spawned until the first [map]
    that can use one. *)

val map : ?domains:int -> ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f items] applies [f] to every item, in parallel, and
    returns the results in submission order. [domains] caps the number
    of domains cooperating on this job (submitter included; clamped to
    the pool size; [~domains:1] runs entirely on the caller). [chunk]
    sets the number of consecutive items per stolen chunk. If any
    application raises, the first exception is re-raised here with its
    original backtrace once in-flight chunks settle; the pool remains
    usable. Safe to call from inside a pool task. *)

val size : t -> int
val resize : t -> int -> unit
(** Change the target domain count. Parks and joins existing workers;
    new ones are spawned lazily by the next job. *)

val shutdown : t -> unit
(** Join all parked workers. The pool stays usable: the next job
    respawns them. *)

val stats : t -> stats
(** Aggregate counters; kept as-is for existing callers. The same
    numbers (and more) flow through the [Obs] registry as
    [pool.jobs] / [pool.steals] / [pool.queue_depth] /
    [pool.chunk_run_ns] when telemetry is enabled. *)

val worker_stats : t -> worker_stat list
(** Per-domain claim/busy/park breakdown, sorted by domain id. Also
    exposed through the registry as [pool.worker_claims{domain=N}] and
    [pool.worker_busy_ns{domain=N}] while telemetry is enabled; parks
    additionally aggregate into the always-counted [pool.parks]. *)

val quiesce : t -> unit
(** Block until the pool is fully idle: no open submissions and every
    spawned worker parked in its blocking wait (consuming no CPU). An
    unspawned pool quiesces immediately. The daemon calls this between
    requests; tests use it to assert ~0% idle CPU via park counts. *)

val wake : t -> unit
(** Pre-warm: spawn missing workers up to the target and kick parked
    ones, so the next submission pays no domain-spawn latency. *)

val default : unit -> t
(** The process-wide shared pool (created on first use; joined in an
    [at_exit] hook). *)

val set_default_size : int -> unit
(** Set (or, if already created, resize) the default pool's target
    domain count — the CLI's [--domains] hook. *)

val default_size : unit -> int
