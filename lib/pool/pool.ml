(* Persistent domain pool.

   The analysis pipeline is embarrassingly parallel at several levels
   (programs of a corpus sweep, crash points of a crash-space sweep,
   analysis roots and function bodies inside one static check), but the
   old driver spawned-and-joined fresh domains on every [Parallel.map]
   call — domain creation is a milliseconds-scale operation, so batch
   jobs paid a per-call fork/join tax that dwarfed small work items.

   This pool is created once and reused for the life of the process:

   - Worker domains are spawned lazily (first submission) and then kept,
     parked on a condition variable between jobs.
   - A submission publishes a chunked task descriptor; parked workers
     wake and steal chunks from it via an atomic claim counter, and the
     submitting domain itself drains chunks too (helping), so a
     submission never waits for a parked worker to make progress.
   - Nested submissions from inside a worker are safe: the nested
     submitter helps drain its own descriptor and only ever blocks on
     chunks that some other domain is actively executing, so the
     wait-for graph cannot cycle.
   - If a task raises, the first exception wins: claiming stops, every
     in-flight chunk finishes, and the exception is re-raised at the
     submission point with its original backtrace. The pool itself
     survives and is reusable afterwards.

   The pool depends only on [Obs] (which sits below every project
   layer) so that both the analysis layer (per-function collection,
   per-root checking) and the core layer (corpus sweeps, crash sweeps)
   can share one instance. *)

(* Registry instruments. Per-chunk claim counts are always maintained
   in the per-domain records below (owner-only writes, one add per
   chunk); clock reads and labelled registry updates are gated on
   [Obs.enabled]. "Steals" counts every chunk claim from a submission
   descriptor, submitter claims included — on a one-core host the
   submitter is the only domain draining, and its claims are the same
   scheduling event. *)
let m_jobs = Obs.Metrics.counter "pool.jobs" ~desc:"parallel map submissions completed"

let m_steals =
  Obs.Metrics.counter "pool.steals"
    ~desc:"chunk claims from submission descriptors (submitter included)"

let m_queue_depth =
  Obs.Metrics.gauge "pool.queue_depth"
    ~desc:"high-water mark of submissions open to workers at once"

let m_chunk_ns =
  Obs.Metrics.histogram "pool.chunk_run_ns"
    ~desc:"per-chunk execution latency, nanoseconds"

let m_worker_busy =
  Obs.Metrics.counter "pool.worker_busy_ns"
    ~desc:"per-domain busy time in chunks, nanoseconds (labelled domain=N)"

let m_worker_claims =
  Obs.Metrics.counter "pool.worker_claims"
    ~desc:"per-domain chunk claims (labelled domain=N)"

let m_parks =
  Obs.Metrics.counter "pool.parks"
    ~desc:"worker blocking waits entered with no pending submissions"

type stats = {
  size : int;  (** target number of worker domains *)
  alive : int;  (** workers currently spawned *)
  spawned_total : int;  (** workers ever spawned (reuse indicator) *)
  jobs : int;  (** submissions completed *)
  chunks : int;  (** chunks executed across all jobs *)
}

type worker_stat = { domain : int; claims : int; busy_ns : int64; parks : int }

(* Per-domain accounting. Claims and parks are always counted
   (owner-only writes, cheap); busy_ns accrues only while telemetry is
   enabled, because it needs two clock reads per chunk. *)
type worker_rec = {
  wr_domain : int;
  wr_label : string;
  mutable wr_claims : int;
  mutable wr_busy_ns : int64;
  mutable wr_parks : int;
}

(* One parallel-map submission: a bag of [nchunks] chunks claimed via
   [next]. [inflight] counts claimed-but-unfinished chunks; it is
   incremented before the claim so a waiter can never observe
   "exhausted and idle" while a chunk is between claim and execution. *)
type desc = {
  run_chunk : int -> unit;
  nchunks : int;
  next : int Atomic.t;
  inflight : int Atomic.t;
  failure : (exn * Printexc.raw_backtrace) option Atomic.t;
  d_mutex : Mutex.t;
  d_cond : Condition.t; (* signaled as chunks complete *)
  mutable helpers : int; (* workers that joined; bounded by max_helpers *)
  max_helpers : int;
}

type t = {
  mutable target : int;
  mutable workers : unit Domain.t list;
  mutable pending : desc list; (* open submissions, FIFO *)
  mutable shutdown : bool;
  mutable spawned_total : int;
  mutable parked : int; (* workers blocked in Condition.wait right now *)
  q_mutex : Mutex.t;
  q_cond : Condition.t; (* signaled on submission / shutdown *)
  idle_cond : Condition.t; (* signaled as workers park / pending drains *)
  jobs_done : int Atomic.t;
  chunks_run : int Atomic.t;
  w_mutex : Mutex.t; (* guards worker_tbl lookups/inserts only *)
  worker_tbl : (int, worker_rec) Hashtbl.t;
}

let recommended_size () = max 1 (min 8 (Domain.recommended_domain_count () - 1))

let exhausted d =
  Atomic.get d.next >= d.nchunks || Atomic.get d.failure <> None

let finished d = exhausted d && Atomic.get d.inflight = 0

let worker_rec pool =
  let id = (Domain.self () :> int) in
  Mutex.lock pool.w_mutex;
  let wr =
    match Hashtbl.find_opt pool.worker_tbl id with
    | Some wr -> wr
    | None ->
      let wr =
        {
          wr_domain = id;
          wr_label = "domain=" ^ string_of_int id;
          wr_claims = 0;
          wr_busy_ns = 0L;
          wr_parks = 0;
        }
      in
      Hashtbl.replace pool.worker_tbl id wr;
      wr
  in
  Mutex.unlock pool.w_mutex;
  wr

(* Claim and run chunks of [d] until it is exhausted. Runs on workers
   and on the submitting domain alike. *)
let drain pool d =
  let wr = worker_rec pool in
  let rec loop () =
    if Atomic.get d.failure <> None then ()
    else begin
      Atomic.incr d.inflight;
      let i = Atomic.fetch_and_add d.next 1 in
      if i >= d.nchunks then begin
        (* nothing claimed: undo and let waiters re-evaluate *)
        Atomic.decr d.inflight;
        Mutex.lock d.d_mutex;
        Condition.broadcast d.d_cond;
        Mutex.unlock d.d_mutex
      end
      else begin
        wr.wr_claims <- wr.wr_claims + 1;
        Obs.Metrics.incr m_steals;
        let t0 = if Obs.enabled () then Obs.now_ns () else 0L in
        (match d.run_chunk i with
        | () -> ()
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set d.failure None (Some (e, bt))));
        if Obs.enabled () then begin
          let dt = Int64.sub (Obs.now_ns ()) t0 in
          wr.wr_busy_ns <- Int64.add wr.wr_busy_ns dt;
          Obs.Metrics.observe m_chunk_ns (Int64.to_int dt);
          Obs.Metrics.add_labelled m_worker_busy wr.wr_label (Int64.to_int dt);
          Obs.Metrics.add_labelled m_worker_claims wr.wr_label 1
        end;
        Atomic.incr pool.chunks_run;
        Atomic.decr d.inflight;
        Mutex.lock d.d_mutex;
        Condition.broadcast d.d_cond;
        Mutex.unlock d.d_mutex;
        loop ()
      end
    end
  in
  loop ()

let remove_pending pool d =
  Mutex.lock pool.q_mutex;
  pool.pending <- List.filter (fun d' -> d' != d) pool.pending;
  if pool.pending = [] then Condition.broadcast pool.idle_cond;
  Mutex.unlock pool.q_mutex

let rec worker_loop pool =
  let wr = worker_rec pool in
  Mutex.lock pool.q_mutex;
  let rec get () =
    if pool.shutdown then None
    else begin
      pool.pending <- List.filter (fun d -> not (exhausted d)) pool.pending;
      match
        List.find_opt (fun d -> d.helpers < d.max_helpers) pool.pending
      with
      | Some d ->
        d.helpers <- d.helpers + 1;
        Some d
      | None ->
        (* Park: a blocking wait, not a spin — a resident daemon's
           worker domains consume no CPU between requests. [parked]
           lets [quiesce] observe full idleness. *)
        pool.parked <- pool.parked + 1;
        wr.wr_parks <- wr.wr_parks + 1;
        Obs.Metrics.incr m_parks;
        Condition.broadcast pool.idle_cond;
        Condition.wait pool.q_cond pool.q_mutex;
        pool.parked <- pool.parked - 1;
        get ()
    end
  in
  let claimed = get () in
  Mutex.unlock pool.q_mutex;
  match claimed with
  | None -> () (* shutdown: the domain exits *)
  | Some d ->
    drain pool d;
    remove_pending pool d;
    worker_loop pool

let create ?size () =
  let target = match size with Some n -> max 1 n | None -> recommended_size () in
  {
    target;
    workers = [];
    pending = [];
    shutdown = false;
    spawned_total = 0;
    parked = 0;
    q_mutex = Mutex.create ();
    q_cond = Condition.create ();
    idle_cond = Condition.create ();
    jobs_done = Atomic.make 0;
    chunks_run = Atomic.make 0;
    w_mutex = Mutex.create ();
    worker_tbl = Hashtbl.create 8;
  }

(* Spawn missing workers, up to [target - 1]: the submitting domain is
   itself the remaining unit of parallelism. Called under no lock; the
   worker-list update is guarded. *)
let ensure_workers pool =
  Mutex.lock pool.q_mutex;
  let missing = pool.target - 1 - List.length pool.workers in
  if missing > 0 && not pool.shutdown then begin
    for _ = 1 to missing do
      pool.workers <- Domain.spawn (fun () -> worker_loop pool) :: pool.workers;
      pool.spawned_total <- pool.spawned_total + 1
    done
  end;
  Mutex.unlock pool.q_mutex

let shutdown pool =
  Mutex.lock pool.q_mutex;
  pool.shutdown <- true;
  Condition.broadcast pool.q_cond;
  let ws = pool.workers in
  pool.workers <- [];
  Mutex.unlock pool.q_mutex;
  List.iter Domain.join ws;
  Mutex.lock pool.q_mutex;
  pool.shutdown <- false;
  Mutex.unlock pool.q_mutex

let resize pool n =
  let n = max 1 n in
  if n <> pool.target then begin
    shutdown pool;
    pool.target <- n
  end

let size pool = pool.target

let stats pool =
  Mutex.lock pool.q_mutex;
  let alive = List.length pool.workers in
  let spawned_total = pool.spawned_total in
  Mutex.unlock pool.q_mutex;
  {
    size = pool.target;
    alive;
    spawned_total;
    jobs = Atomic.get pool.jobs_done;
    chunks = Atomic.get pool.chunks_run;
  }

(* Per-domain counters, sorted by domain id. Reads race with owner
   updates; each field is a single word, so values are merely slightly
   stale, never torn. *)
let worker_stats pool =
  Mutex.lock pool.w_mutex;
  let out =
    Hashtbl.fold
      (fun _ wr acc ->
        {
          domain = wr.wr_domain;
          claims = wr.wr_claims;
          busy_ns = wr.wr_busy_ns;
          parks = wr.wr_parks;
        }
        :: acc)
      pool.worker_tbl []
  in
  Mutex.unlock pool.w_mutex;
  List.sort (fun a b -> compare a.domain b.domain) out

(* Block until the pool is fully idle: no open submissions and every
   spawned worker parked in its blocking wait. A daemon calls this
   between requests to guarantee ~0% CPU at idle (and tests use it to
   assert the same). Spawned-but-not-yet-parked workers are waited
   for; an empty pool quiesces immediately. *)
let quiesce pool =
  Mutex.lock pool.q_mutex;
  while pool.pending <> [] || pool.parked < List.length pool.workers do
    Condition.wait pool.idle_cond pool.q_mutex
  done;
  Mutex.unlock pool.q_mutex

(* Pre-warm: spawn any missing workers and kick parked ones so the
   first post-idle submission doesn't pay domain-spawn latency. *)
let wake pool =
  ensure_workers pool;
  Mutex.lock pool.q_mutex;
  Condition.broadcast pool.q_cond;
  Mutex.unlock pool.q_mutex

(* Parallel map preserving submission order. [domains] caps the number
   of domains cooperating on this job (submitter included); it defaults
   to the pool size. [chunk] is the number of consecutive items per
   claimed chunk (default: items spread ~4 chunks per cooperating
   domain, so stealing stays cheap but imbalanced items still
   rebalance). *)
let map ?domains ?chunk pool (f : 'a -> 'b) (items : 'a list) : 'b list =
  let n = List.length items in
  if n = 0 then []
  else begin
    let budget =
      match domains with
      | Some d -> max 1 (min d pool.target)
      | None -> pool.target
    in
    let budget = min budget n in
    let arr = Array.of_list items in
    let results : 'b option array = Array.make n None in
    let chunk_size =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (n / (budget * 4))
    in
    let nchunks = (n + chunk_size - 1) / chunk_size in
    let d =
      {
        run_chunk =
          (fun i ->
            let lo = i * chunk_size in
            let hi = min n (lo + chunk_size) - 1 in
            for j = lo to hi do
              results.(j) <- Some (f arr.(j))
            done);
        nchunks;
        next = Atomic.make 0;
        inflight = Atomic.make 0;
        failure = Atomic.make None;
        d_mutex = Mutex.create ();
        d_cond = Condition.create ();
        helpers = 0;
        max_helpers = budget - 1;
      }
    in
    if d.max_helpers > 0 then begin
      ensure_workers pool;
      Mutex.lock pool.q_mutex;
      pool.pending <- pool.pending @ [ d ];
      if Obs.enabled () then
        Obs.Metrics.set_max m_queue_depth (List.length pool.pending);
      Condition.broadcast pool.q_cond;
      Mutex.unlock pool.q_mutex
    end;
    drain pool d;
    Mutex.lock d.d_mutex;
    while not (finished d) do
      Condition.wait d.d_cond d.d_mutex
    done;
    Mutex.unlock d.d_mutex;
    if d.max_helpers > 0 then remove_pending pool d;
    Atomic.incr pool.jobs_done;
    Obs.Metrics.incr m_jobs;
    match Atomic.get d.failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.to_list
        (Array.map
           (function Some r -> r | None -> invalid_arg "Pool.map: hole")
           results)
  end

(* ------------------------------------------------------------------ *)
(* The process-wide default pool, shared by every analysis layer. *)

let default_mutex = Mutex.create ()
let default_pool : t option ref = ref None
let requested_size : int option ref = ref None

let default () =
  Mutex.lock default_mutex;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
      let p = create ?size:!requested_size () in
      default_pool := Some p;
      (* park-and-join on process exit so no domain outlives main *)
      at_exit (fun () -> shutdown p);
      p
  in
  Mutex.unlock default_mutex;
  p

let set_default_size n =
  Mutex.lock default_mutex;
  requested_size := Some (max 1 n);
  let existing = !default_pool in
  Mutex.unlock default_mutex;
  match existing with Some p -> resize p (max 1 n) | None -> ()

let default_size () =
  match !requested_size with
  | Some n -> n
  | None -> (
    match !default_pool with Some p -> p.target | None -> recommended_size ())
