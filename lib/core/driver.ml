(* The DeepMC toolkit driver: the end-to-end pipeline of Figure 8.

   Given an IR program and the persistency-model flag (-strict, -epoch
   or -strand), the driver
     1. builds CFGs and the call graph,
     2. collects interprocedural traces,
     3. builds the DSG,
     4. applies the static checking rules,
     5. (optionally) instruments and executes the program with the
        runtime library attached,
     6. performs the online checks,
   and merges the static and dynamic warnings into one report. *)

let src = Logs.Src.create "deepmc" ~doc:"DeepMC pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  model : Analysis.Model.t;
  config : Analysis.Config.t;
  field_sensitive : bool;
  offset_sensitive : bool;
  run_dynamic : bool;
}

let make ?(config = Analysis.Config.default) ?(field_sensitive = true)
    ?(offset_sensitive = true) ?(run_dynamic = true) model =
  { model; config; field_sensitive; offset_sensitive; run_dynamic }

type dynamic_outcome =
  | Dynamic_ok of Runtime.Dynamic.summary * Analysis.Warning.t list
  | Dynamic_skipped of string

type report = {
  model : Analysis.Model.t;
  static : Analysis.Checker.result;
  dynamic : dynamic_outcome;
  warnings : Analysis.Warning.t list; (* merged, deduplicated *)
  crash_space : Runtime.Crash_space.report option;
  recovery : Recover.report option;
  elapsed_static : float;
  elapsed_dynamic : float;
}

(* Per-client object-id offset for multi-client dynamic runs; keeps
   shadow-segment keys distinct across client heaps. *)
let client_obj_id_stride = 1 lsl 20

let run_dynamic_analysis (t : t) ?entry ?args ?(clients = 1) prog =
  match entry with
  | None -> (Dynamic_skipped "no entry point", [])
  | Some entry -> (
    match Nvmir.Prog.find_func prog entry with
    | None -> (Dynamic_skipped (Fmt.str "entry %s not defined" entry), [])
    | Some _ when clients <= 1 -> (
      let pmem = Runtime.Pmem.create () in
      let checker = Runtime.Dynamic.create ~model:t.model () in
      Runtime.Dynamic.attach checker pmem;
      let interp = Runtime.Interp.create ~pmem prog in
      try
        ignore (Runtime.Interp.run ~entry ?args interp);
        let ws = Runtime.Dynamic.warnings checker in
        (Dynamic_ok (Runtime.Dynamic.summary checker, ws), ws)
      with
      | Runtime.Interp.Runtime_error (m, loc) ->
        ( Dynamic_skipped
            (Fmt.str "runtime error at %a: %s" Nvmir.Loc.pp loc m),
          Runtime.Dynamic.warnings checker )
      | Runtime.Interp.Out_of_fuel ->
        (Dynamic_skipped "execution exceeded fuel budget",
         Runtime.Dynamic.warnings checker))
    | Some _ ->
      (* N client domains execute the entry concurrently, each on its own
         heap, observed by one checker through client-bound listeners.
         The program and type env are read-only after parse, so sharing
         them across domains is safe. *)
      let checker = Runtime.Dynamic.create ~model:t.model () in
      let failures =
        Pool.map ~domains:clients ~chunk:1 (Pool.default ())
          (fun c ->
            let pmem =
              Runtime.Pmem.create
                ~first_obj_id:(c * client_obj_id_stride)
                ~obj_id_limit:((c + 1) * client_obj_id_stride)
                ()
            in
            Runtime.Dynamic.attach_client checker ~thread:c pmem;
            let interp = Runtime.Interp.create ~pmem prog in
            try
              ignore (Runtime.Interp.run ~entry ?args interp);
              None
            with
            | Runtime.Interp.Runtime_error (m, loc) ->
              Some
                (Fmt.str "client %d: runtime error at %a: %s" c Nvmir.Loc.pp
                   loc m)
            | Runtime.Interp.Out_of_fuel ->
              Some (Fmt.str "client %d: execution exceeded fuel budget" c))
          (List.init clients Fun.id)
        |> List.filter_map Fun.id
      in
      let ws = Runtime.Dynamic.warnings checker in
      (match failures with
      | [] -> (Dynamic_ok (Runtime.Dynamic.summary checker, ws), ws)
      | first :: _ -> (Dynamic_skipped first, ws)))

(* Analyze a program. [persistent_roots] are the user's interface
   annotations: (function, variable) pairs known to reference NVM.
   [entry]/[args] drive the optional dynamic run. *)
let analyze (t : t) ?(persistent_roots = []) ?roots ?entry ?args ?clients
    ?(explore_crash_images = false) ?crash_bound ?seed
    ?(verify_recovery = false) ?recovery_entry prog : report =
  Log.info (fun m ->
      m "analyzing %d function(s) against the %a model (%a)"
        (List.length (Nvmir.Prog.funcs prog))
        Analysis.Model.pp t.model Analysis.Config.pp t.config);
  let t0 = Clock.now () in
  let static =
    Obs.Span.with_ ~name:"static-check" (fun () ->
        Analysis.Checker.check ~config:t.config
          ~field_sensitive:t.field_sensitive
          ~offset_sensitive:t.offset_sensitive ~persistent_roots ?roots
          ~model:t.model prog)
  in
  let t1 = Clock.now () in
  Log.info (fun m ->
      m "static: %d trace(s), %d event(s), %d warning(s) in %.1f ms"
        static.Analysis.Checker.trace_count static.Analysis.Checker.event_count
        (List.length static.Analysis.Checker.warnings)
        (Clock.span_s t0 t1 *. 1000.));
  let dynamic, dyn_warnings =
    if t.run_dynamic then
      Obs.Span.with_ ~name:"dynamic-check" (fun () ->
          run_dynamic_analysis t ?entry ?args ?clients prog)
    else (Dynamic_skipped "dynamic analysis disabled", [])
  in
  let t2 = Clock.now () in
  (match dynamic with
  | Dynamic_ok (s, ws) ->
    Log.info (fun m ->
        m "dynamic: %a; %d warning(s) in %.1f ms" Runtime.Dynamic.pp_summary s
          (List.length ws)
          (Clock.span_s t1 t2 *. 1000.))
  | Dynamic_skipped reason -> Log.debug (fun m -> m "dynamic skipped: %s" reason));
  (* The recovery tier: every reachable crash image, corrupted under
     the media model, run through the program's recovery entry. Its
     warnings join the merged stream like the dynamic tier's. *)
  let recovery =
    match (verify_recovery, entry) with
    | false, _ | _, None -> None
    | true, Some entry ->
      let rentry = Option.value recovery_entry ~default:"recover" in
      if
        Nvmir.Prog.find_func prog entry = None
        || Nvmir.Prog.find_func prog rentry = None
      then None
      else begin
        let r =
          Obs.Span.with_ ~name:"recover-verify" (fun () ->
              Recover.verify ~entry ?args ~recovery_entry:rentry
                ?bound:crash_bound ?seed ~model:t.model prog)
        in
        Log.info (fun m -> m "recovery: %a" Recover.pp_report r);
        Some r
      end
  in
  let recovery_warnings =
    match recovery with Some r -> r.Recover.warnings | None -> []
  in
  let warnings =
    Analysis.Warning.dedup
      (static.Analysis.Checker.warnings @ dyn_warnings @ recovery_warnings)
    |> Analysis.Warning.sort
  in
  let crash_space =
    match (explore_crash_images, entry) with
    | false, _ | _, None -> None
    | true, Some entry ->
      if Nvmir.Prog.find_func prog entry = None then None
      else begin
        let r =
          Obs.Span.with_ ~name:"crash-explore" (fun () ->
              Crash_sweep.explore_program ?bound:crash_bound ?seed ~entry
                ?args prog)
        in
        Log.info (fun m ->
            m "crash space: %a" Runtime.Crash_space.pp_report r);
        Some r
      end
  in
  {
    model = t.model;
    static;
    dynamic;
    warnings;
    crash_space;
    recovery;
    elapsed_static = Clock.span_s t0 t1;
    elapsed_dynamic = Clock.span_s t1 t2;
  }

(* The "baseline compilation" of Table 9: a full front-end pass with no
   checking — emit the program to its textual form, re-parse it,
   validate, and build CFGs and the call graph. Returns elapsed
   seconds. *)
let baseline_compile prog =
  let t0 = Clock.now () in
  let text = Fmt.str "%a" Nvmir.Prog.pp prog in
  let reparsed = Nvmir.Parser.parse text in
  ignore (Nvmir.Prog.validate reparsed);
  List.iter
    (fun f -> ignore (Graphs.Cfg.of_func f))
    (Nvmir.Prog.funcs reparsed);
  ignore (Graphs.Callgraph.of_prog reparsed);
  Clock.elapsed_s t0

let violations r =
  List.filter
    (fun w -> Analysis.Warning.category w = Analysis.Warning.Model_violation)
    r.warnings

let performance_bugs r =
  List.filter
    (fun w -> Analysis.Warning.category w = Analysis.Warning.Performance)
    r.warnings

let pp_report ppf r =
  let pp_dynamic ppf = function
    | Dynamic_ok (s, _) -> Runtime.Dynamic.pp_summary ppf s
    | Dynamic_skipped reason -> Fmt.pf ppf "skipped (%s)" reason
  in
  let pp_crash_space ppf = function
    | None -> ()
    | Some cs ->
      Fmt.pf ppf "@ crash space: %a" Report.pp_crash_score
        (Report.crash_score cs)
  in
  let pp_recovery ppf = function
    | None -> ()
    | Some (rv : Recover.report) ->
      Fmt.pf ppf
        "@ recovery: %d image(s), %d corruption(s): %d restored, %d \
         flagged, %d silent-accept, %d crashed"
        rv.Recover.images_checked rv.Recover.corruptions_injected
        rv.Recover.restored rv.Recover.flagged rv.Recover.silent_accepts
        rv.Recover.crashes
  in
  Fmt.pf ppf
    "@[<v>DeepMC report (%a model)@ static: %.1f ms, dynamic: %.1f ms@ \
     dynamic: %a%a%a@ %d warning(s): %d violation(s), %d performance@ %a@]"
    Analysis.Model.pp r.model
    (r.elapsed_static *. 1000.)
    (r.elapsed_dynamic *. 1000.)
    pp_dynamic r.dynamic pp_crash_space r.crash_space pp_recovery r.recovery
    (List.length r.warnings)
    (List.length (violations r))
    (List.length (performance_bugs r))
    Fmt.(list ~sep:(any "@ ") Analysis.Warning.pp)
    r.warnings
