(* Machine-readable report output (JSON), for CI integration and editor
   tooling. A tiny self-contained encoder — the report shapes are simple
   enough that a JSON library dependency is not warranted. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let rec pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int n -> Fmt.int ppf n
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then Fmt.pf ppf "%.1f" f
    else Fmt.pf ppf "%.6g" f
  | String s -> pp_string ppf s
  | List items ->
    Fmt.pf ppf "@[<hv 2>[%a]@]" Fmt.(list ~sep:(any ",@ ") pp) items
  | Obj fields ->
    let pp_field ppf (k, v) =
      Fmt.pf ppf "@[<hov 2>%a: %a@]" pp_string k pp v
    in
    Fmt.pf ppf "@[<hv 2>{%a}@]" Fmt.(list ~sep:(any ",@ ") pp_field) fields

and pp_string ppf s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Fmt.string ppf (Buffer.contents buf)

let to_string j = Fmt.str "%a" pp j

(* ------------------------------------------------------------------ *)
(* Encoders *)

(* Witness encoding: the decoder lives in [Explain.witness_of_json];
   the QCheck round-trip property pins the two against each other. *)
let of_witness (wit : Analysis.Witness.t) =
  let lines ls =
    List.map (fun (obj, line) -> Obj [ ("obj", Int obj); ("line", Int line) ]) ls
  in
  let fields =
    match wit with
    | Analysis.Witness.Static { s_slice; s_call_path } ->
      [
        ( "slice",
          List
            (List.map
               (fun (r : Analysis.Witness.event_ref) ->
                 Obj
                   [
                     ("role", String r.Analysis.Witness.er_role);
                     ("what", String r.Analysis.Witness.er_what);
                     ("file", String r.Analysis.Witness.er_loc.Nvmir.Loc.file);
                     ("line", Int r.Analysis.Witness.er_loc.Nvmir.Loc.line);
                     ("function", String r.Analysis.Witness.er_fname);
                   ])
               s_slice) );
        ("call_path", List (List.map (fun f -> String f) s_call_path));
      ]
    | Analysis.Witness.Dynamic { d_transition; d_strand; d_fences } ->
      [
        ("transition", String d_transition);
        ("strand", Int d_strand);
        ("fences", Int d_fences);
      ]
    | Analysis.Witness.Fuzz { f_genome; f_schedule; f_transition } ->
      [
        ("genome", String f_genome);
        ("schedule", String f_schedule);
        ("transition", String f_transition);
      ]
    | Analysis.Witness.Crash { c_task; c_image; c_persisted; c_detail } ->
      [
        ("at", String c_task);
        ("image", String c_image);
        ("persisted", List (lines c_persisted));
        ("detail", String c_detail);
      ]
    | Analysis.Witness.Recover
        { r_task; r_image; r_persisted; r_corruptions; r_verdict } ->
      [
        ("at", String r_task);
        ("image", String r_image);
        ("persisted", List (lines r_persisted));
        ( "corruptions",
          List
            (List.map
               (fun (obj, slot, kind) ->
                 Obj
                   [
                     ("obj", Int obj); ("slot", Int slot); ("kind", String kind);
                   ])
               r_corruptions) );
        ("verdict", String r_verdict);
      ]
  in
  Obj
    (("tier", String (Analysis.Witness.tier wit))
     :: fields
    @ [ ("fingerprint", String (Analysis.Witness.fingerprint wit)) ])

let of_warning (w : Analysis.Warning.t) =
  let witness =
    match w.Analysis.Warning.witness with
    | None -> []
    | Some wit ->
      [
        ("bundle", String (Analysis.Warning.bundle_fingerprint w));
        ("witness", of_witness wit);
      ]
  in
  Obj
    ([
      ("rule", String (Analysis.Warning.rule_name w.Analysis.Warning.rule));
      ( "category",
        String
          (match Analysis.Warning.category w with
          | Analysis.Warning.Model_violation -> "model-violation"
          | Analysis.Warning.Performance -> "performance") );
      ("model", String (Analysis.Model.to_string w.Analysis.Warning.model));
      ("file", String w.Analysis.Warning.loc.Nvmir.Loc.file);
      ("line", Int w.Analysis.Warning.loc.Nvmir.Loc.line);
      ("function", String w.Analysis.Warning.fname);
      ( "origin",
        String
          (match w.Analysis.Warning.origin with
          | Analysis.Warning.Static -> "static"
          | Analysis.Warning.Dynamic -> "dynamic") );
      ("message", String w.Analysis.Warning.message);
    ]
    @ witness)

let of_dynamic_summary (s : Runtime.Dynamic.summary) =
  Obj
    [
      ("waw_races", Int s.Runtime.Dynamic.waw);
      ("raw_races", Int s.Runtime.Dynamic.raw);
      ("unflushed_at_epoch_end", Int s.Runtime.Dynamic.unflushed);
      ("redundant_flushes", Int s.Runtime.Dynamic.redundant);
      ("tracked_cells", Int s.Runtime.Dynamic.tracked_cells);
      ("warning_count", Int s.Runtime.Dynamic.warning_count);
    ]

let of_crash_task = function
  | Runtime.Crash_space.Point k -> Int k
  | Runtime.Crash_space.Exit -> String "exit"

let of_crash_line (obj, line) =
  Obj [ ("obj", Int obj); ("line", Int line) ]

let of_crash_witness (w : Runtime.Crash_space.witness) =
  Obj
    [
      ("at", of_crash_task w.Runtime.Crash_space.w_task);
      ( "persisted",
        List (List.map of_crash_line w.Runtime.Crash_space.w_persisted) );
      ("detail", String w.Runtime.Crash_space.w_detail);
    ]

let of_crash_space (r : Runtime.Crash_space.report) =
  Obj
    [
      ("crash_points", Int r.Runtime.Crash_space.crash_points);
      ("images_enumerated", Int r.Runtime.Crash_space.images_enumerated);
      ("images_distinct", Int r.Runtime.Crash_space.images_distinct);
      ("pruning_ratio", Float (Runtime.Crash_space.pruning_ratio r));
      ("inconsistent", Int r.Runtime.Crash_space.inconsistent);
      ( "witnesses",
        List (List.map of_crash_witness r.Runtime.Crash_space.witnesses) );
    ]

let of_recovery (r : Recover.report) =
  let of_corruption (c : Runtime.Pmem.corruption) =
    Obj
      [
        ("obj", Int c.Runtime.Pmem.c_addr.Runtime.Pmem.obj_id);
        ("slot", Int c.Runtime.Pmem.c_addr.Runtime.Pmem.slot);
        ("kind", String (Runtime.Pmem.corruption_kind_name c.Runtime.Pmem.c_kind));
      ]
  in
  let of_check (c : Recover.image_check) =
    Obj
      [
        ("at", of_crash_task c.Recover.task);
        ("persisted", List (List.map of_crash_line c.Recover.persisted));
        ("corruptions", List (List.map of_corruption c.Recover.corruptions));
        ("verdict", String (Recover.verdict_name c.Recover.verdict));
        ("unguarded_reads", Int (List.length c.Recover.corrupt_reads));
        ("residual_corrupt", Int c.Recover.residual_corrupt);
        ("idempotent", Bool c.Recover.idempotent);
      ]
  in
  Obj
    [
      ("recovery_entry", String r.Recover.recovery_entry);
      ("crash_points", Int r.Recover.crash_points);
      ("images_checked", Int r.Recover.images_checked);
      ("corruptions_injected", Int r.Recover.corruptions_injected);
      ( "verdicts",
        Obj
          [
            ("restored", Int r.Recover.restored);
            ("flagged", Int r.Recover.flagged);
            ("silent_accept", Int r.Recover.silent_accepts);
            ("crashed", Int r.Recover.crashes);
          ] );
      ("non_idempotent", Int r.Recover.non_idempotent);
      ("sampled", Bool r.Recover.sampled);
      ("images", List (List.map of_check r.Recover.images));
      ("warnings", List (List.map of_warning r.Recover.warnings));
    ]

(* Telemetry snapshot encoding: counters and gauges become bare ints,
   histograms an object with count/sum and the non-empty log2 buckets.
   Empty object when telemetry never ran. *)
let of_metric_value = function
  | Obs.Metrics.Count n | Obs.Metrics.Level n -> Int n
  | Obs.Metrics.Dist h ->
    Obj
      [
        ("count", Int h.Obs.Metrics.h_count);
        ("sum", Int h.Obs.Metrics.h_sum);
        ( "buckets",
          List
            (List.map
               (fun (lo, n) -> Obj [ ("lo", Int lo); ("n", Int n) ])
               h.Obs.Metrics.h_buckets) );
      ]

let of_metrics samples =
  Obj (List.map (fun (name, v) -> (name, of_metric_value v)) samples)

let of_report (r : Driver.report) =
  Obj
    [
      ("model", String (Analysis.Model.to_string r.Driver.model));
      ("warnings", List (List.map of_warning r.Driver.warnings));
      ( "summary",
        Obj
          [
            ("total", Int (List.length r.Driver.warnings));
            ("violations", Int (List.length (Driver.violations r)));
            ("performance", Int (List.length (Driver.performance_bugs r)));
            ( "traces_analyzed",
              Int r.Driver.static.Analysis.Checker.trace_count );
            ("events_analyzed", Int r.Driver.static.Analysis.Checker.event_count);
            ("elapsed_static_ms", Float (r.Driver.elapsed_static *. 1000.));
            ("elapsed_dynamic_ms", Float (r.Driver.elapsed_dynamic *. 1000.));
          ] );
      ( "dynamic",
        match r.Driver.dynamic with
        | Driver.Dynamic_ok (s, _) -> of_dynamic_summary s
        | Driver.Dynamic_skipped reason ->
          Obj [ ("skipped", String reason) ] );
      ( "crash_space",
        match r.Driver.crash_space with
        | Some cs -> of_crash_space cs
        | None -> Null );
      ( "recovery",
        match r.Driver.recovery with
        | Some rv -> of_recovery rv
        | None -> Null );
      ("metrics", of_metrics (Obs.Metrics.snapshot ()));
    ]

let of_score (s : Report.score) =
  Obj
    [
      ("warnings", Int (Report.warning_count s));
      ("validated", Int (Report.validated_count s));
      ("false_positives", Int (Report.false_positive_count s));
      ("missed", Int (List.length s.Report.missed));
      ("unexpected", Int (List.length s.Report.unexpected));
      ("recall", Float (Report.recall s));
    ]

let of_fix_outcome = function
  | Autofix.Fixed { warning; description } ->
    Obj
      [
        ("status", String "fixed");
        ("warning", of_warning warning);
        ("description", String description);
      ]
  | Autofix.Skipped { warning; reason } ->
    Obj
      [
        ("status", String "skipped");
        ("warning", of_warning warning);
        ("reason", String reason);
      ]
