(** Scoring checker output against ground truth. Each corpus program
    carries [expectation]s — the paper's bugs (validated) and the benign
    patterns its conservative analysis also flags. A warning matches an
    expectation by exact (rule, file, line). *)

type location_kind = Lib | Example

type expectation = {
  rule : Analysis.Warning.rule_id;
  file : string;
  line : int;
  validated : bool;  (** false: expected false positive *)
  is_new : bool;  (** Table 8 (new) vs Table 3 (studied) *)
  location_kind : location_kind;
  description : string;
  years : float;  (** bug age (Table 8); 0 for studied bugs *)
}

val expectation :
  ?validated:bool ->
  ?is_new:bool ->
  ?kind:location_kind ->
  ?years:float ->
  rule:Analysis.Warning.rule_id ->
  file:string ->
  line:int ->
  string ->
  expectation

val matches : expectation -> Analysis.Warning.t -> bool

type score = {
  expectations : expectation list;
  warnings : Analysis.Warning.t list;
  matched : (expectation * Analysis.Warning.t) list;
  missed : expectation list;
  unexpected : Analysis.Warning.t list;
}

val score : expectation list -> Analysis.Warning.t list -> score

val warning_count : score -> int
(** Everything reported — the denominator of Table 1's cells. *)

val validated_count : score -> int
(** Matched real bugs — the numerator of Table 1's cells. *)

val false_positive_count : score -> int
val recall : score -> float
val pp_location_kind : location_kind Fmt.t
val pp_expectation : expectation Fmt.t
val pp_score : score Fmt.t

(** {1 Crash-space scoring} *)

type crash_score = {
  crash_points : int;
  images : int;  (** enumerated across all points *)
  distinct : int;  (** after persistence-equivalence pruning *)
  inconsistent : int;
}

val crash_score : Runtime.Crash_space.report -> crash_score
val pp_crash_score : crash_score Fmt.t
