(* Automated bug fixing — the future work §4.3 sketches ("Automated bug
   fixing is out of the scope of this work, but we wish to explore it as
   future work").

   Each warning class has a rule-based repair:

   - unflushed write            -> persist the written location right
                                   after the store (inside a transaction
                                   this both logs-by-write and flushes);
   - missing persist barrier    -> insert a fence after the flush
                                   (strict) / before the epoch boundary;
   - missing barrier, nested tx -> insert a fence before the inner
                                   commit;
   - multiple flushes           -> remove the redundant flush;
   - flush of unmodified data   -> remove never-written flushes; narrow
                                   whole-object flushes to the nearest
                                   preceding store's location;
   - persist-same-in-tx         -> remove the duplicate log/flush;
   - durable tx without writes  -> remove empty transactions; move a
                                   no-write persist into the predecessor
                                   branch that actually modifies the
                                   object (the Figure 7 repair);
   - semantic mismatch          -> left to the developer (splitting or
                                   fusing persist units changes program
                                   semantics; the fixer refuses to
                                   guess).

   [apply] is conservative: a fix is applied only when the surrounding
   code matches the expected shape, and every unfixable warning is
   reported as skipped with a reason. Re-checking the fixed program is
   the caller's job (see [fix_until_clean]). *)

type outcome =
  | Fixed of { warning : Analysis.Warning.t; description : string }
  | Skipped of { warning : Analysis.Warning.t; reason : string }

type result = {
  program : Nvmir.Prog.t;
  outcomes : outcome list;
}

let fixed_count r =
  List.length (List.filter (function Fixed _ -> true | Skipped _ -> false) r.outcomes)

let skipped_count r =
  List.length (List.filter (function Skipped _ -> true | Fixed _ -> false) r.outcomes)

let fence = Nvmir.Instr.make Nvmir.Instr.Fence

(* The instruction kinds a warning of each class anchors to; used to
   disambiguate the location lookup. *)
let site_pred (rule : Analysis.Warning.rule_id) (i : Nvmir.Instr.t) =
  match (rule, i.Nvmir.Instr.kind) with
  | Analysis.Warning.Unflushed_write, Nvmir.Instr.Store _
  | ( Analysis.Warning.Missing_persist_barrier,
      (Nvmir.Instr.Flush _ | Nvmir.Instr.Epoch_end) )
  | Analysis.Warning.Missing_barrier_nested_tx, Nvmir.Instr.Tx_end
  | ( Analysis.Warning.Multiple_flushes,
      (Nvmir.Instr.Flush _ | Nvmir.Instr.Persist _) )
  | ( Analysis.Warning.Persist_same_object_in_tx,
      (Nvmir.Instr.Tx_add _ | Nvmir.Instr.Flush _ | Nvmir.Instr.Persist _) )
  | ( Analysis.Warning.Flush_unmodified,
      (Nvmir.Instr.Flush _ | Nvmir.Instr.Persist _ | Nvmir.Instr.Tx_add _) )
  | ( Analysis.Warning.Durable_tx_no_writes,
      (Nvmir.Instr.Tx_begin | Nvmir.Instr.Persist _ | Nvmir.Instr.Flush _) ) ->
    true
  | (Analysis.Warning.Semantic_mismatch | Analysis.Warning.Strand_dependence
    | Analysis.Warning.Multiple_writes_at_once), _ ->
    true (* refused below regardless of the anchor *)
  | _, _ -> false

let fix_one prog (w : Analysis.Warning.t) : (Nvmir.Prog.t * string, string) Stdlib.result =
  match
    Rewrite.find_at_loc ~pred:(site_pred w.Analysis.Warning.rule) prog
      w.Analysis.Warning.loc
  with
  | None -> Error "no instruction at the warning's location"
  | Some (cursor, instr) -> (
    match (w.Analysis.Warning.rule, instr.Nvmir.Instr.kind) with
    | Analysis.Warning.Unflushed_write, Nvmir.Instr.Store { dst; _ } ->
      let persist =
        Nvmir.Instr.make ~loc:instr.Nvmir.Instr.loc
          (Nvmir.Instr.Persist { target = dst; extent = Nvmir.Instr.Exact })
      in
      Ok
        ( Rewrite.insert_after prog cursor [ persist ],
          Fmt.str "inserted persist of %a after the store" Nvmir.Place.pp dst )
    | Analysis.Warning.Missing_persist_barrier, Nvmir.Instr.Flush _ ->
      Ok (Rewrite.insert_after prog cursor [ fence ], "inserted persist barrier after the flush")
    | Analysis.Warning.Missing_persist_barrier, Nvmir.Instr.Epoch_end ->
      Ok
        ( Rewrite.insert_before prog cursor [ fence ],
          "inserted persist barrier before the epoch boundary" )
    | Analysis.Warning.Missing_barrier_nested_tx, Nvmir.Instr.Tx_end ->
      Ok
        ( Rewrite.insert_before prog cursor [ fence ],
          "inserted persist barrier before the inner commit" )
    | Analysis.Warning.Multiple_flushes, (Nvmir.Instr.Flush _ | Nvmir.Instr.Persist _)
      ->
      Ok (Rewrite.remove_at prog cursor, "removed the redundant flush")
    | Analysis.Warning.Persist_same_object_in_tx,
        (Nvmir.Instr.Tx_add _ | Nvmir.Instr.Flush _ | Nvmir.Instr.Persist _) ->
      Ok (Rewrite.remove_at prog cursor, "removed the duplicate log/flush")
    | ( Analysis.Warning.Flush_unmodified,
        (Nvmir.Instr.Flush { target; extent } | Nvmir.Instr.Persist { target; extent }) )
      -> (
      match
        Rewrite.nearest_store_before prog cursor ~base:(Nvmir.Place.base target)
      with
      | Some written when extent = Nvmir.Instr.Object -> (
        (* narrow the whole-object write-back to the modified field *)
        let narrowed =
          match instr.Nvmir.Instr.kind with
          | Nvmir.Instr.Persist _ ->
            Nvmir.Instr.Persist { target = written; extent = Nvmir.Instr.Exact }
          | _ -> Nvmir.Instr.Flush { target = written; extent = Nvmir.Instr.Exact }
        in
        Ok
          ( Rewrite.replace_at prog cursor
              (Nvmir.Instr.make ~loc:instr.Nvmir.Instr.loc narrowed),
            Fmt.str "narrowed the whole-object write-back to %a"
              Nvmir.Place.pp written ))
      | Some _ | None ->
        (* nothing was written: the write-back is pure overhead *)
        Ok (Rewrite.remove_at prog cursor, "removed the write-back of unmodified data"))
    | Analysis.Warning.Flush_unmodified, Nvmir.Instr.Tx_add _ ->
      Error "narrowing an undo-log registration needs developer intent"
    | Analysis.Warning.Durable_tx_no_writes, Nvmir.Instr.Tx_begin -> (
      (* empty transaction: drop the begin and its matching end *)
      match Nvmir.Prog.find_func prog cursor.Rewrite.in_func with
      | None -> Error "function disappeared"
      | Some f -> (
        match Nvmir.Func.find_block f cursor.Rewrite.in_block with
        | None -> Error "block disappeared"
        | Some b ->
          let rest =
            List.filteri (fun idx _ -> idx > cursor.Rewrite.index) b.Nvmir.Func.instrs
          in
          let has_write =
            List.exists
              (fun (i : Nvmir.Instr.t) ->
                match i.Nvmir.Instr.kind with
                | Nvmir.Instr.Store _ | Nvmir.Instr.Call _ -> true
                | _ -> false)
              rest
          in
          if has_write then
            Error "transaction spans writes on another path; not provably empty"
          else
            let prog =
              Rewrite.map_block prog ~in_func:cursor.Rewrite.in_func
                ~in_block:cursor.Rewrite.in_block (fun instrs ->
                  let dropped_begin =
                    List.filteri (fun idx _ -> idx <> cursor.Rewrite.index) instrs
                  in
                  (* drop the first tx_end after the begin *)
                  let dropped = ref false in
                  List.filter
                    (fun (i : Nvmir.Instr.t) ->
                      match i.Nvmir.Instr.kind with
                      | Nvmir.Instr.Tx_end when not !dropped ->
                        dropped := true;
                        false
                      | _ -> true)
                    dropped_begin)
            in
            Ok (prog, "removed the empty transaction")))
    | Analysis.Warning.Durable_tx_no_writes, Nvmir.Instr.Persist { target; _ }
      -> (
      (* Figure 7: move the persist into the branch that writes *)
      let base = Nvmir.Place.base target in
      let preds =
        List.filter
          (fun label ->
            Rewrite.block_stores_to prog ~in_func:cursor.Rewrite.in_func ~label
              ~base)
          (Rewrite.predecessors prog ~in_func:cursor.Rewrite.in_func
             ~label:cursor.Rewrite.in_block)
      in
      match preds with
      | [] -> Error "no predecessor modifies the object; repair unclear"
      | labels ->
        let prog = Rewrite.remove_at prog cursor in
        let prog =
          List.fold_left
            (fun prog label ->
              Rewrite.append_to_block prog ~in_func:cursor.Rewrite.in_func
                ~in_block:label [ instr ])
            prog labels
        in
        Ok
          ( prog,
            Fmt.str "moved the persist into the updating branch(es) %s"
              (String.concat ", " labels) ))
    | Analysis.Warning.Semantic_mismatch, _ ->
      Error
        "restoring update atomicity (a transaction around both persist \
         units) changes program structure; left to the developer"
    | Analysis.Warning.Strand_dependence, _ ->
      Error "merging or ordering strands needs program-semantics knowledge"
    | Analysis.Warning.Multiple_writes_at_once, _ ->
      Error "splitting batched durability points needs developer intent"
    | _, _ ->
      Error
        (Fmt.str "no repair template for %s at %a"
           (Analysis.Warning.rule_name w.Analysis.Warning.rule)
           Nvmir.Instr.pp instr))

(* Apply repairs for a list of warnings. Warnings are processed
   most-recently-located first so earlier cursors stay valid is NOT
   guaranteed in general; instead we re-locate each warning in the
   current program (fix_one searches by source location, which repairs
   preserve), so ordering does not matter. *)
let apply prog (warnings : Analysis.Warning.t list) : result =
  let prog, outcomes =
    List.fold_left
      (fun (prog, outcomes) w ->
        match fix_one prog w with
        | Ok (prog', description) ->
          (prog', Fixed { warning = w; description } :: outcomes)
        | Error reason -> (prog, Skipped { warning = w; reason } :: outcomes))
      (prog, []) warnings
  in
  { program = prog; outcomes = List.rev outcomes }

(* Fix-and-recheck loop: repair, re-run the checker, repeat until no fix
   applies or the round limit is reached. Returns the final program, the
   accumulated outcomes, and the remaining warnings. *)
let fix_until_clean ?(max_rounds = 4) ?(config = Analysis.Config.default)
    ?(field_sensitive = true) ?(offset_sensitive = true) ?persistent_roots
    ?roots ~model prog =
  let rec go round prog acc =
    let checked =
      Analysis.Checker.check ~config ~field_sensitive ~offset_sensitive
        ?persistent_roots ?roots ~model prog
    in
    let warnings = checked.Analysis.Checker.warnings in
    if warnings = [] || round >= max_rounds then (prog, List.rev acc, warnings)
    else
      let r = apply prog warnings in
      if fixed_count r = 0 then (prog, List.rev acc, warnings)
      else go (round + 1) r.program (List.rev_append r.outcomes acc)
  in
  go 0 prog []

let pp_outcome ppf = function
  | Fixed { warning; description } ->
    Fmt.pf ppf "FIXED   %a %s: %s" Nvmir.Loc.pp warning.Analysis.Warning.loc
      (Analysis.Warning.rule_name warning.Analysis.Warning.rule)
      description
  | Skipped { warning; reason } ->
    Fmt.pf ppf "SKIPPED %a %s: %s" Nvmir.Loc.pp warning.Analysis.Warning.loc
      (Analysis.Warning.rule_name warning.Analysis.Warning.rule)
      reason
