(* Parallel crash-image exploration. [Runtime.Crash_space] is kept free
   of any core dependency, so the domain fan-out lives here: each
   (program, crash point) pair is an independent re-execution, which is
   exactly the shape [Parallel.map] wants. *)

type job = {
  name : string;
  prog : Nvmir.Prog.t;
  entry : string;
  args : int list;
}

type program_report = {
  name : string;
  report : Runtime.Crash_space.report;
  elapsed_s : float;  (** summed per-task CPU seconds, not wall clock *)
}

let tasks_of ?config ~entry ~args prog =
  let total = Runtime.Crash_space.count_points ?config ~entry ~args prog in
  ( total,
    List.init total (fun i -> Runtime.Crash_space.Point (i + 1))
    @ [ Runtime.Crash_space.Exit ] )

let explore_program ?domains ?config ?bound ?seed ?oracle ?(entry = "main")
    ?(args = []) prog =
  let total, tasks = tasks_of ?config ~entry ~args prog in
  let points =
    Parallel.map ?domains
      (fun task ->
        Runtime.Crash_space.explore_task ?config ~entry ~args ?bound ?seed
          ?oracle ~task prog)
      tasks
  in
  Runtime.Crash_space.summarize ~crash_points:total points

let sweep ?domains ?config ?bound ?seed ?oracle (jobs : job list) :
    program_report list =
  (* Flatten to (job, task) pairs so small programs don't serialize
     behind large ones, then regroup per job in submission order. *)
  let work =
    List.concat_map
      (fun j ->
        let _, tasks = tasks_of ?config ~entry:j.entry ~args:j.args j.prog in
        List.map (fun t -> (j, t)) tasks)
      jobs
  in
  let done_work =
    Parallel.map ?domains
      (fun (j, task) ->
        let t0 = Clock.now () in
        let r =
          Runtime.Crash_space.explore_task ?config ~entry:j.entry ~args:j.args
            ?bound ?seed ?oracle ~task j.prog
        in
        (j.name, r, Clock.elapsed_s t0))
      work
  in
  List.map
    (fun (j : job) ->
      let points, elapsed =
        List.fold_left
          (fun (ps, el) (name, r, dt) ->
            if String.equal name j.name then (r :: ps, el +. dt) else (ps, el))
          ([], 0.) done_work
      in
      let crash_points =
        Runtime.Crash_space.count_points ?config ~entry:j.entry ~args:j.args
          j.prog
      in
      {
        name = j.name;
        report =
          Runtime.Crash_space.summarize ~crash_points (List.rev points);
        elapsed_s = elapsed;
      })
    jobs

let pp_program_report ppf r =
  Fmt.pf ppf "%-22s %a  (%.1f ms cpu)" r.name Runtime.Crash_space.pp_report
    r.report
    (r.elapsed_s *. 1000.)
