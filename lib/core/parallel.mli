(** Multicore analysis driver (OCaml 5 domains): whole-program checking
    shares nothing across programs, so batch jobs fan out over the
    process-wide persistent {!Pool} — workers are spawned once and
    reused across submissions. *)

val default_domains : unit -> int

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel map preserving order, on the shared pool. [domains] caps
    the domains cooperating on this call (default: the pool size,
    [recommended_domain_count - 1] capped at 8). If a worker raises, the
    remaining work is abandoned and the first exception is re-raised
    with its backtrace; the pool survives. Safe to call from inside a
    worker (nested submission). *)

type corpus_result = {
  program : string;
  model : Analysis.Model.t;
  warnings : Analysis.Warning.t list;
  elapsed_s : float;
}

val check_many :
  ?domains:int ->
  ?config:Analysis.Config.t ->
  ?field_sensitive:bool ->
  (string * Analysis.Model.t * Nvmir.Prog.t * string list) list ->
  corpus_result list
(** Statically analyze many (name, model, program, roots) jobs in
    parallel. *)

val pp_corpus_result : corpus_result Fmt.t
