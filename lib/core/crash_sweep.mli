(** Parallel crash-image exploration: fans {!Runtime.Crash_space} tasks
    (one per crash point, per program) out over the {!Parallel} domain
    pool. Each task re-executes its program independently, so nothing is
    shared between domains beyond the (read-only) program. *)

type job = {
  name : string;
  prog : Nvmir.Prog.t;
  entry : string;
  args : int list;
}

type program_report = {
  name : string;
  report : Runtime.Crash_space.report;
  elapsed_s : float;  (** summed per-task CPU seconds, not wall clock *)
}

val explore_program :
  ?domains:int ->
  ?config:Runtime.Config.t ->
  ?bound:int ->
  ?seed:int ->
  ?oracle:Runtime.Crash_space.oracle ->
  ?entry:string ->
  ?args:int list ->
  Nvmir.Prog.t ->
  Runtime.Crash_space.report
(** Parallel equivalent of {!Runtime.Crash_space.explore}; [entry]
    defaults to ["main"]. *)

val sweep :
  ?domains:int ->
  ?config:Runtime.Config.t ->
  ?bound:int ->
  ?seed:int ->
  ?oracle:Runtime.Crash_space.oracle ->
  job list ->
  program_report list
(** Explore many programs at once, interleaving their crash points over
    one pool; results are returned in job order. *)

val pp_program_report : program_report Fmt.t
