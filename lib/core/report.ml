(* Scoring checker output against ground truth.

   Each corpus program carries a list of [expectation]s: the bugs the
   paper reports (validated) and the benign code patterns the paper's
   conservative analysis also flags (false positives). Matching a
   warning to an expectation is by (rule, file, line), i.e. the checker
   must hit the paper's exact coordinates. *)

type location_kind = Lib | Example

type expectation = {
  rule : Analysis.Warning.rule_id;
  file : string;
  line : int;
  validated : bool; (* false: expected false positive (benign pattern) *)
  is_new : bool; (* Table 8 (new) vs Table 3 (studied) *)
  location_kind : location_kind;
  description : string;
  years : float; (* how long the bug existed (Table 8); 0 for studied *)
}

let expectation ?(validated = true) ?(is_new = false) ?(kind = Example)
    ?(years = 0.) ~rule ~file ~line description =
  { rule; file; line; validated; is_new; location_kind = kind; description; years }

let matches (e : expectation) (w : Analysis.Warning.t) =
  e.rule = w.Analysis.Warning.rule
  && String.equal e.file w.Analysis.Warning.loc.Nvmir.Loc.file
  && e.line = w.Analysis.Warning.loc.Nvmir.Loc.line

type score = {
  expectations : expectation list;
  warnings : Analysis.Warning.t list;
  matched : (expectation * Analysis.Warning.t) list;
  missed : expectation list; (* expected but not reported *)
  unexpected : Analysis.Warning.t list; (* reported but not expected *)
}

let score expectations warnings : score =
  let matched =
    List.filter_map
      (fun e ->
        Option.map (fun w -> (e, w)) (List.find_opt (matches e) warnings))
      expectations
  in
  let missed =
    List.filter (fun e -> not (List.exists (matches e) warnings)) expectations
  in
  let unexpected =
    List.filter
      (fun w -> not (List.exists (fun e -> matches e w) expectations))
      warnings
  in
  { expectations; warnings; matched; missed; unexpected }

(* Table 1 semantics: "warnings" is everything DeepMC reports,
   "validated" the subset confirmed as real bugs. *)
let warning_count s = List.length s.warnings
let validated_count s =
  List.length (List.filter (fun (e, _) -> e.validated) s.matched)

let false_positive_count s = warning_count s - validated_count s

let recall s =
  let real = List.filter (fun e -> e.validated) s.expectations in
  let found = List.filter (fun (e, _) -> e.validated) s.matched in
  if real = [] then 1.0
  else float_of_int (List.length found) /. float_of_int (List.length real)

let pp_location_kind ppf = function
  | Lib -> Fmt.string ppf "LIB"
  | Example -> Fmt.string ppf "EP"

let pp_expectation ppf e =
  Fmt.pf ppf "[%s] %s:%d %s (%a%s)"
    (Analysis.Warning.rule_name e.rule)
    e.file e.line e.description pp_location_kind e.location_kind
    (if e.validated then "" else ", benign")

let pp_score ppf s =
  Fmt.pf ppf
    "@[<v>validated/warnings: %d/%d@ matched: %d, missed: %d, unexpected: %d%a%a@]"
    (validated_count s) (warning_count s) (List.length s.matched)
    (List.length s.missed)
    (List.length s.unexpected)
    Fmt.(
      if s.missed = [] then nop
      else
        any "@ missed:@ "
        ++ list ~sep:(any "@ ") (fun ppf e -> Fmt.pf ppf "  %a" pp_expectation e))
    s.missed
    Fmt.(
      if s.unexpected = [] then nop
      else
        any "@ unexpected:@ "
        ++ list ~sep:(any "@ ") (fun ppf w ->
               Fmt.pf ppf "  %a" Analysis.Warning.pp w))
    s.unexpected

(* Crash-space exploration condensed for scoring/reporting: the four
   numbers that say how thoroughly the image space was covered and
   whether anything inconsistent survives in it. *)
type crash_score = {
  crash_points : int;
  images : int;
  distinct : int;
  inconsistent : int;
}

let crash_score (r : Runtime.Crash_space.report) : crash_score =
  {
    crash_points = r.Runtime.Crash_space.crash_points;
    images = r.Runtime.Crash_space.images_enumerated;
    distinct = r.Runtime.Crash_space.images_distinct;
    inconsistent = r.Runtime.Crash_space.inconsistent;
  }

let pp_crash_score ppf s =
  Fmt.pf ppf "%d crash point(s), %d image(s) (%d distinct), %d inconsistent"
    s.crash_points s.images s.distinct s.inconsistent
