(* Monotonic elapsed-time measurement.

   Every perf number the toolkit reports (Table 9 overheads, bench
   throughput, sweep timings) used to come from [Unix.gettimeofday],
   which jumps under NTP adjustments and makes nonsense of short
   intervals. [Monotonic_clock] (CLOCK_MONOTONIC) is immune to clock
   adjustments; wall-clock remains available for timestamps only. *)

type t = int64 (* nanoseconds from an arbitrary origin *)

let now () : t = Monotonic_clock.now ()

let elapsed_s (t0 : t) : float =
  Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9

let span_s (t0 : t) (t1 : t) : float = Int64.to_float (Int64.sub t1 t0) /. 1e9
