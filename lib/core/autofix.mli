(** Automated bug fixing — the future work §4.3 sketches. Each warning
    class has a rule-based repair (insert a persist/fence, remove a
    redundant flush or empty transaction, narrow a whole-object
    write-back, move a persist into the updating branch); repairs that
    would need program-semantics knowledge (semantic mismatch, strand
    merging, batching splits) are refused with a reason. *)

type outcome =
  | Fixed of { warning : Analysis.Warning.t; description : string }
  | Skipped of { warning : Analysis.Warning.t; reason : string }

type result = { program : Nvmir.Prog.t; outcomes : outcome list }

val fixed_count : result -> int
val skipped_count : result -> int

val fix_one :
  Nvmir.Prog.t ->
  Analysis.Warning.t ->
  (Nvmir.Prog.t * string, string) Stdlib.result

val apply : Nvmir.Prog.t -> Analysis.Warning.t list -> result

val fix_until_clean :
  ?max_rounds:int ->
  ?config:Analysis.Config.t ->
  ?field_sensitive:bool ->
  ?offset_sensitive:bool ->
  ?persistent_roots:(string * string) list ->
  ?roots:string list ->
  model:Analysis.Model.t ->
  Nvmir.Prog.t ->
  Nvmir.Prog.t * outcome list * Analysis.Warning.t list
(** Repair, re-check, repeat (up to [max_rounds], default 4). Returns
    the final program, all outcomes, and the remaining warnings. *)

val pp_outcome : outcome Fmt.t
