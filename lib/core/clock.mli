(** Monotonic elapsed-time measurement (CLOCK_MONOTONIC), immune to
    wall-clock adjustments. Use for every perf number; keep
    [Unix.gettimeofday] for timestamps only. *)

type t
(** An instant: nanoseconds from an arbitrary origin. *)

val now : unit -> t
val elapsed_s : t -> float
(** Seconds from the instant to now. *)

val span_s : t -> t -> float
(** [span_s t0 t1] is the seconds from [t0] to [t1]. *)
