(** Machine-readable report output (JSON), for CI integration and editor
    tooling. Self-contained encoder, no external dependency. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val pp : json Fmt.t
val to_string : json -> string

val of_metrics : (string * Obs.Metrics.value) list -> json
(** Encode a registry snapshot: counters/gauges as ints, histograms as
    [{count; sum; buckets: [{lo; n}]}]. *)

val of_witness : Analysis.Witness.t -> json
(** Witness encoding, with the tier tag first and the content
    fingerprint appended. [Explain.witness_of_json] is the inverse
    (modulo the fingerprint, which is recomputed). *)

val of_warning : Analysis.Warning.t -> json
(** When the warning carries a witness, the object additionally holds its
    ["bundle"] correlation key and the ["witness"] itself. *)

val of_dynamic_summary : Runtime.Dynamic.summary -> json
val of_crash_space : Runtime.Crash_space.report -> json
val of_recovery : Recover.report -> json
val of_report : Driver.report -> json
val of_score : Report.score -> json
val of_fix_outcome : Autofix.outcome -> json
