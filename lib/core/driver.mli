(** The DeepMC toolkit driver: the end-to-end pipeline of Figure 8.
    Given a program and the persistency-model flag, runs the static
    checker and (optionally) the instrumented execution with the dynamic
    checker, merging both warning streams into one report. *)

type t

val make :
  ?config:Analysis.Config.t ->
  ?field_sensitive:bool ->
  ?offset_sensitive:bool ->
  ?run_dynamic:bool ->
  Analysis.Model.t ->
  t

type dynamic_outcome =
  | Dynamic_ok of Runtime.Dynamic.summary * Analysis.Warning.t list
  | Dynamic_skipped of string

type report = {
  model : Analysis.Model.t;
  static : Analysis.Checker.result;
  dynamic : dynamic_outcome;
  warnings : Analysis.Warning.t list;  (** merged, deduplicated *)
  crash_space : Runtime.Crash_space.report option;
      (** reachable crash-image exploration, when requested *)
  recovery : Recover.report option;
      (** recovery-path verification, when requested *)
  elapsed_static : float;
  elapsed_dynamic : float;
}

val analyze :
  t ->
  ?persistent_roots:(string * string) list ->
  ?roots:string list ->
  ?entry:string ->
  ?args:int list ->
  ?clients:int ->
  ?explore_crash_images:bool ->
  ?crash_bound:int ->
  ?seed:int ->
  ?verify_recovery:bool ->
  ?recovery_entry:string ->
  Nvmir.Prog.t ->
  report
(** [persistent_roots] are the user's interface annotations;
    [roots] selects static-analysis roots; [entry]/[args] drive the
    dynamic run (skipped when absent). [clients] (default 1) executes
    the entry from that many concurrent client domains, each on its own
    heap, under one dynamic checker — warnings stay deterministically
    ordered regardless of interleaving. [explore_crash_images] (default
    false) additionally runs {!Crash_sweep.explore_program} with the
    sequential oracle, capped at [crash_bound] images per crash
    point; [seed] makes its sampling reproducible. [verify_recovery]
    (default false) additionally runs {!Recover.verify} over the
    crash images with the media-corruption model, using
    [recovery_entry] (default ["recover"]); its warnings join the
    merged stream. Skipped silently when either entry is absent. *)

val baseline_compile : Nvmir.Prog.t -> float
(** The Table 9 baseline: a full front-end pass (emit, re-parse,
    validate, CFG/CG) with no checking. Elapsed seconds. *)

val violations : report -> Analysis.Warning.t list
val performance_bugs : report -> Analysis.Warning.t list
val pp_report : report Fmt.t
