(* Multicore analysis driver: whole-program checking is embarrassingly
   parallel across independent programs (and across analysis roots), so
   batch jobs — CI over a corpus, the evaluation's 16-program sweep —
   fan out over OCaml 5 domains.

   The pool is deliberately simple: one domain per chunk of work, results
   gathered in submission order. Analyses share nothing (each builds its
   own DSG), so no synchronization beyond join is needed. *)

let default_domains () = max 1 (min 8 (Domain.recommended_domain_count () - 1))

(* Run [f] over [items] on [domains] domains; results keep order. If a
   worker raises, the first exception wins: the other workers stop
   claiming items, every spawned domain is joined, and the exception is
   re-raised with its original backtrace — the join never hangs and no
   domain is leaked. *)
let map ?(domains = default_domains ()) (f : 'a -> 'b) (items : 'a list) :
    'b list =
  let n = List.length items in
  if n = 0 then []
  else begin
    let domains = max 1 (min domains n) in
    let arr = Array.of_list items in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure :
        (exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    let worker () =
      let rec loop () =
        if Atomic.get failure = None then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (match f arr.(i) with
            | r -> results.(i) <- Some r
            | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore
                (Atomic.compare_and_set failure None (Some (e, bt))));
            loop ()
          end
        end
      in
      loop ()
    in
    let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.to_list
        (Array.map
           (function Some r -> r | None -> invalid_arg "Parallel.map: hole")
           results)
  end

type corpus_result = {
  program : string;
  model : Analysis.Model.t;
  warnings : Analysis.Warning.t list;
  elapsed_s : float;
}

(* Statically analyze many (name, model, program, roots) jobs in
   parallel. The dynamic stage interprets programs and is cheap for the
   corpus, so parallelism only covers the static pipeline — the part
   Table 9 measures. *)
let check_many ?domains ?(config = Analysis.Config.default)
    ?(field_sensitive = true)
    (jobs : (string * Analysis.Model.t * Nvmir.Prog.t * string list) list) :
    corpus_result list =
  map ?domains
    (fun (program, model, prog, roots) ->
      let t0 = Unix.gettimeofday () in
      let result =
        Analysis.Checker.check ~config ~field_sensitive ~roots ~model prog
      in
      {
        program;
        model;
        warnings = result.Analysis.Checker.warnings;
        elapsed_s = Unix.gettimeofday () -. t0;
      })
    jobs

let pp_corpus_result ppf r =
  Fmt.pf ppf "%-22s %-7s %2d warning(s) in %5.1f ms" r.program
    (Analysis.Model.to_string r.model)
    (List.length r.warnings)
    (r.elapsed_s *. 1000.)
