(* Multicore analysis driver: whole-program checking is embarrassingly
   parallel across independent programs (and across analysis roots), so
   batch jobs — CI over a corpus, the evaluation's 16-program sweep —
   fan out over OCaml 5 domains.

   All fan-out goes through the process-wide persistent [Pool]: worker
   domains are spawned once and reused across submissions (the old
   implementation forked and joined fresh domains on every call), and
   the same pool serves the checker's per-root fan-out, so nested
   submissions compose instead of oversubscribing the machine. *)

let default_domains () = Pool.default_size ()

(* Run [f] over [items] on up to [domains] cooperating domains; results
   keep order. If a worker raises, the first exception wins and is
   re-raised with its original backtrace; the pool survives. *)
let map ?domains (f : 'a -> 'b) (items : 'a list) : 'b list =
  Pool.map ?domains (Pool.default ()) f items

type corpus_result = {
  program : string;
  model : Analysis.Model.t;
  warnings : Analysis.Warning.t list;
  elapsed_s : float;
}

(* Statically analyze many (name, model, program, roots) jobs in
   parallel. The dynamic stage interprets programs and is cheap for the
   corpus, so parallelism only covers the static pipeline — the part
   Table 9 measures. *)
let check_many ?domains ?(config = Analysis.Config.default)
    ?(field_sensitive = true)
    (jobs : (string * Analysis.Model.t * Nvmir.Prog.t * string list) list) :
    corpus_result list =
  map ?domains
    (fun (program, model, prog, roots) ->
      let t0 = Clock.now () in
      let result =
        Analysis.Checker.check ~config ~field_sensitive ~roots ~model prog
      in
      {
        program;
        model;
        warnings = result.Analysis.Checker.warnings;
        elapsed_s = Clock.elapsed_s t0;
      })
    jobs

let pp_corpus_result ppf r =
  Fmt.pf ppf "%-22s %-7s %2d warning(s) in %5.1f ms" r.program
    (Analysis.Model.to_string r.model)
    (List.length r.warnings)
    (r.elapsed_s *. 1000.)
