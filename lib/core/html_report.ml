(* Standalone HTML report (in the spirit of clang's scan-build): a
   self-contained page with the run summary, the warnings grouped by
   category, and the analyzed program with warning lines highlighted.
   No external assets; inline CSS only. *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let css =
  {|
  body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em auto;
         max-width: 70em; color: #1a1a2e; line-height: 1.45; }
  h1 { border-bottom: 2px solid #4a4e69; padding-bottom: .3em; }
  .cards { display: flex; gap: 1em; flex-wrap: wrap; margin: 1em 0; }
  .card { border: 1px solid #c9cbd8; border-radius: 8px; padding: .8em 1.2em;
          min-width: 9em; background: #f7f7fb; }
  .card .num { font-size: 1.8em; font-weight: 700; }
  .card.bad .num { color: #b3003c; }
  .card.warn .num { color: #b36b00; }
  .card.ok .num { color: #1f7a4d; }
  table { border-collapse: collapse; width: 100%; margin: 1em 0; }
  th, td { border: 1px solid #d6d7e3; padding: .4em .7em; text-align: left;
           vertical-align: top; }
  th { background: #ececf4; }
  tr.violation td:first-child { border-left: 4px solid #b3003c; }
  tr.performance td:first-child { border-left: 4px solid #b36b00; }
  .rule { font-family: monospace; white-space: nowrap; }
  .loc { font-family: monospace; white-space: nowrap; }
  .origin { font-size: .85em; color: #4a4e69; }
  pre.listing { background: #14141f; color: #e8e8f0; padding: 1em;
                border-radius: 8px; overflow-x: auto; font-size: .9em; }
  pre.listing .hit { background: #5c1a2e; display: inline-block; width: 100%; }
  pre.listing .ln { color: #6c6f93; user-select: none; }
  footer { margin-top: 2em; color: #6c6f93; font-size: .85em; }
  details.witness { margin-top: .4em; }
  details.witness summary { cursor: pointer; font-size: .85em; color: #4a4e69; }
  details.witness pre { background: #f1f1f7; padding: .6em; border-radius: 6px;
                        font-size: .85em; overflow-x: auto; }
|}

let category_class (w : Analysis.Warning.t) =
  match Analysis.Warning.category w with
  | Analysis.Warning.Model_violation -> "violation"
  | Analysis.Warning.Performance -> "performance"

(* The warning's evidence, when the run captured witnesses: a collapsed
   block with the bundle key, witness fingerprint and the rendered
   witness body (event slice / shadow transition / genome / image). *)
let render_witness (w : Analysis.Warning.t) =
  match w.Analysis.Warning.witness with
  | None -> ""
  | Some wit ->
    Fmt.str
      "<details class=\"witness\"><summary>%s witness <span \
       class=\"origin\">(bundle %s, fingerprint %s)</span></summary>\
       <pre>%s</pre></details>"
      (escape (Analysis.Witness.tier wit))
      (escape (Analysis.Warning.bundle_fingerprint w))
      (escape (Analysis.Witness.fingerprint wit))
      (escape (Fmt.str "%a" Analysis.Witness.pp wit))

let render_warning buf (w : Analysis.Warning.t) =
  Buffer.add_string buf
    (Fmt.str
       "<tr class=\"%s\"><td class=\"rule\">%s</td><td class=\"loc\">%s</td>\
        <td>%s</td><td>%s <span class=\"origin\">(%s, %s)</span>%s</td></tr>\n"
       (category_class w)
       (escape (Analysis.Warning.rule_name w.Analysis.Warning.rule))
       (escape (Nvmir.Loc.to_string w.Analysis.Warning.loc))
       (escape w.Analysis.Warning.fname)
       (escape w.Analysis.Warning.message)
       (match Analysis.Warning.category w with
       | Analysis.Warning.Model_violation -> "model violation"
       | Analysis.Warning.Performance -> "performance")
       (match w.Analysis.Warning.origin with
       | Analysis.Warning.Static -> "static"
       | Analysis.Warning.Dynamic -> "dynamic")
       (render_witness w))

(* The analyzed program, with every line that carries a warning location
   highlighted. The listing is the canonical pretty-printed IR; warning
   locations are matched against the '@ file:line' annotations on each
   printed line. *)
let render_listing buf prog (warnings : Analysis.Warning.t list) =
  let hot =
    List.map
      (fun (w : Analysis.Warning.t) -> Nvmir.Loc.to_string w.Analysis.Warning.loc)
      warnings
  in
  let text = Fmt.str "%a" Nvmir.Prog.pp prog in
  Buffer.add_string buf "<h2>Program</h2>\n<pre class=\"listing\">\n";
  List.iteri
    (fun i line ->
      let is_hot = List.exists (fun l -> l <> "" &&
        (let needle = "@ " ^ l in
         let nh = String.length line and nn = String.length needle in
         let rec go j = j + nn <= nh && (String.sub line j nn = needle || go (j + 1)) in
         nn > 0 && go 0)) hot
      in
      let body =
        Fmt.str "<span class=\"ln\">%4d</span>  %s" (i + 1) (escape line)
      in
      if is_hot then
        Buffer.add_string buf (Fmt.str "<span class=\"hit\">%s</span>\n" body)
      else Buffer.add_string buf (body ^ "\n"))
    (String.split_on_char '\n' text);
  Buffer.add_string buf "</pre>\n"

let render ?(title = "DeepMC report") prog (report : Driver.report) : string =
  let buf = Buffer.create 8192 in
  let violations = Driver.violations report in
  let perf = Driver.performance_bugs report in
  Buffer.add_string buf
    (Fmt.str
       "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"/>\
        <title>%s</title><style>%s</style></head><body>\n<h1>%s</h1>\n"
       (escape title) css (escape title));
  Buffer.add_string buf
    (Fmt.str
       "<p>Checked against the <b>%s</b> persistency model; static analysis \
        %.1f ms (%d traces, %d events), dynamic %s.</p>\n"
       (escape (Analysis.Model.to_string report.Driver.model))
       (report.Driver.elapsed_static *. 1000.)
       report.Driver.static.Analysis.Checker.trace_count
       report.Driver.static.Analysis.Checker.event_count
       (match report.Driver.dynamic with
       | Driver.Dynamic_ok (s, _) ->
         Fmt.str "ran (%s)" (escape (Fmt.str "%a" Runtime.Dynamic.pp_summary s))
       | Driver.Dynamic_skipped r -> Fmt.str "skipped (%s)" (escape r)));
  let card cls label n =
    Fmt.str
      "<div class=\"card %s\"><div class=\"num\">%d</div><div>%s</div></div>\n"
      cls n label
  in
  Buffer.add_string buf "<div class=\"cards\">\n";
  Buffer.add_string buf
    (card
       (if report.Driver.warnings = [] then "ok" else "warn")
       "warnings"
       (List.length report.Driver.warnings));
  Buffer.add_string buf
    (card (if violations = [] then "ok" else "bad") "model violations"
       (List.length violations));
  Buffer.add_string buf
    (card (if perf = [] then "ok" else "warn") "performance bugs"
       (List.length perf));
  Buffer.add_string buf "</div>\n";
  if report.Driver.warnings <> [] then begin
    Buffer.add_string buf
      "<h2>Warnings</h2>\n<table>\n<tr><th>rule</th><th>location</th>\
       <th>function</th><th>detail</th></tr>\n";
    List.iter (render_warning buf) report.Driver.warnings;
    Buffer.add_string buf "</table>\n"
  end
  else Buffer.add_string buf "<p>No warnings: the program implements its persistency model.</p>\n";
  render_listing buf prog report.Driver.warnings;
  (* Telemetry instruments, when the run was traced (--metrics-json /
     --trace-out turn the registry on); invisible otherwise. *)
  (match Obs.Metrics.snapshot () with
  | [] -> ()
  | samples ->
    Buffer.add_string buf
      "<h2>Telemetry</h2>\n<table>\n<tr><th>instrument</th><th>value</th></tr>\n";
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf
          (Fmt.str "<tr><td><code>%s</code></td><td>%s</td></tr>\n"
             (escape name)
             (escape (Fmt.str "%a" Obs.Metrics.pp_value v))))
      samples;
    Buffer.add_string buf "</table>\n");
  Buffer.add_string buf
    "<footer>Generated by DeepMC — deep memory persistency bug detection \
     (PPoPP'22 reproduction).</footer>\n</body></html>\n";
  Buffer.contents buf

let write ?title prog report path =
  let oc = open_out path in
  output_string oc (render ?title prog report);
  close_out oc
