(** Recall/precision evaluation of the detectors over a mutant
    population (DESIGN.md §6d).

    Base programs are made warning-clean first (corpus programs via
    {!Deepmc.Autofix.fix_until_clean}; synthetic programs are generated
    clean), every {!Mutation.operator} is applied at every sound site,
    and the static checker, the dynamic checker and the crash-space
    explorer run over the population in parallel on {!Pool}. Detection
    is measured against the mutants' machine-readable ground truth:

    - static: a delta warning (not in the base program's residual
      warning set) matching the truth's rule set at its file:line;
    - dynamic: a delta warning matching rule and file (the online
      checker reports at observation sites, so lines are not pinned);
    - crash explorer: strictly more inconsistent crash images than the
      base program under the same seed and bound. *)

type base = {
  bname : string;
  model : Analysis.Model.t;
  prog : Nvmir.Prog.t;  (** warning-clean (up to refused autofixes) *)
  roots : string list;
  entry : string option;
  entry_args : int list;
  offset_sensitive : bool;
      (** whether the static tier ran with the {!Dsa.Aaddr.offset}
          lattice; [false] reproduces the historical pointer-arith
          blind spot for ablation benches *)
  static_baseline : (Analysis.Warning.rule_id * string * int) list;
  dynamic_baseline : (Analysis.Warning.rule_id * string) list;
}

val corpus_bases :
  ?offset_sensitive:bool ->
  ?framework:Corpus.Types.framework ->
  ?name:string ->
  unit ->
  base list
(** Corpus programs (optionally one framework or one program), each
    parsed and pushed through [Autofix.fix_until_clean] under its
    framework's model; refused repairs stay in [static_baseline].
    [offset_sensitive] (default true) configures autofix, baselines,
    mutation-site admission and static scoring alike — one DSG
    configuration end to end. Pass [false] to reproduce the exact
    legacy §5.4 blind-spot population and results (the fuzz bench's
    false-negative corpus). The offset-aware pipeline admits more
    mutation sites, so the static-tier denominator grows with it. *)

val synth_bases :
  ?offset_sensitive:bool -> seed:int -> count:int -> nfuncs:int -> unit -> base list
(** [count] clean generator programs seeded [seed, seed+1, ...]. *)

val exemplar_bases : ?offset_sensitive:bool -> unit -> base list
(** The hand-written strand-model program ({!Exemplar}). *)

(** Per-detector outcome for one mutant. *)
type detection = {
  applicable : bool;  (** detector could run (e.g. entry point exists) *)
  hit : bool;
  fp : int;  (** delta warnings matching neither primary nor collateral *)
}

type mutant_result = {
  mutant : Mutation.mutant;
  static_d : detection;
  dynamic_d : detection;
  crash_d : detection;
}

type cell = { applicable : int; detected : int; fp : int }

val cell_recall : cell -> float option
val cell_precision : cell -> float option

(** One matrix row: an operator crossed with the three detectors. *)
type row = {
  operator : Mutation.operator;
  mutants : int;
  static_c : cell;
  dynamic_c : cell;
  crash_c : cell;
}

type summary = {
  seed : int;
  bases : int;
  total_mutants : int;
  rows : row list;
  static_tier_mutants : int;
  static_tier_detected : int;
  static_tier_recall : float;  (** 1.0 when the tier has no mutants *)
  known_blind_spot : int;
      (** static-tier fence mutants (delete-fence / reorder-fence)
          missed by the static checker. Historically the DSG
          pointer-arith alias gap (10 mutants); the {!Dsa.Aaddr.offset}
          lattice closed it, so this is 0 unless offsets are ablated —
          pinned so regressions in either direction are visible *)
  results : mutant_result list;
}

val is_known_blind_spot : mutant_result -> bool

val run :
  ?domains:int ->
  ?operators:Mutation.operator list ->
  ?seed:int ->
  ?dynamic:bool ->
  ?crash:bool ->
  ?crash_bound:int ->
  base list ->
  summary
(** Mutate every base and evaluate the enabled detectors over the whole
    population on the domain pool. [seed] (default 1) drives crash-image
    sampling; static and dynamic evaluation are deterministic, so the
    summary is a pure function of (bases, operators, seed, bound). *)

val false_negatives : summary -> mutant_result list
(** Mutants missed by their expected tier's detector. *)

val save_false_negatives : dir:string -> summary -> string list
(** Persist each false negative as a parseable .nvmir file (ground
    truth in header comments); returns the paths written. *)

val known_blind_spot_of_corpus : dir:string -> int
(** Recount the blind spot from a corpus persisted by
    {!save_false_negatives}, by parsing the ground-truth headers — the
    independent source the [known_blind_spot] field is checked
    against. 0 when [dir] does not exist. *)

val to_json : summary -> Deepmc.Json_report.json
val pp_summary : summary Fmt.t

(** {1 Recovery tier}

    The corruption operators ({!Mutation.Strip_crc_guard},
    {!Mutation.Silence_recovery}, {!Mutation.Drift_recovery_store}) are
    invisible to every trace rule: they damage the {e backward} path.
    They are scored separately against the recovery executor
    ({!Recover.verify}) over the dedicated {!Corpus.Recovery} bases,
    with the same delta-vs-baseline discipline as the static tier. *)

val recovery_operators : Mutation.operator list

val recovery_bases : ?offset_sensitive:bool -> unit -> base list
(** The {!Corpus.Recovery} programs as evaluation bases. No autofix:
    the guarded base is recovery-clean by construction and the
    unguarded base's warnings become its baseline (its mutants must add
    something new to count as detected). *)

type recovery_result = {
  r_mutant : Mutation.mutant;
  r_detection : detection;
}

type recovery_row = {
  r_operator : Mutation.operator;
  r_mutants : int;
  r_cell : cell;
}

type recovery_summary = {
  r_seed : int;
  r_bases : int;
  r_total_mutants : int;
  r_applicable : int;
  r_detected : int;
  r_recall : float;  (** 1.0 when no mutant was applicable *)
  r_rows : recovery_row list;
  r_base_reports : (string * Recover.report) list;
      (** unmutated-base verification, keyed by base name *)
  r_results : recovery_result list;
}

val run_recovery :
  ?domains:int ->
  ?operators:Mutation.operator list ->
  ?seed:int ->
  ?bound:int ->
  base list ->
  recovery_summary
(** Mutate every base with the recovery operators and score each mutant
    by the delta of its {!Recover.verify} warnings over the unmutated
    base's, matched against the mutant's ground truth. Deterministic
    for fixed (bases, operators, seed, bound). *)

val recovery_to_json : recovery_summary -> Deepmc.Json_report.json
val pp_recovery_summary : recovery_summary Fmt.t
