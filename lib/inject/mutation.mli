(** Mutation-based persistency-bug injection (§6d of DESIGN.md).

    Each operator takes a warning-clean program and re-introduces one
    violation of a Table 4/5 rule class by deleting, moving, duplicating
    or widening a single durability instruction. Site selection is
    deliberately conservative — a site is only used when the operator
    provably re-creates the target rule violation at a known file:line —
    so every mutant carries machine-checkable ground truth. *)

(** The operator catalog, mirroring the rule classes of Tables 4/5. *)
type operator =
  | Delete_flush  (** drop the unique flush covering a write *)
  | Delete_fence  (** drop the barrier ordering a flush *)
  | Reorder_fence  (** hoist a fence above the flush it orders *)
  | Hoist_write  (** move a write past its covering flush *)
  | Duplicate_flush  (** write back the same line twice *)
  | Widen_flush  (** flush a whole object for one dirty field *)
  | Drop_tx_add  (** drop a transaction's undo-log registration *)
  | Split_strand  (** split a strand between dependent writes *)
  | Strip_crc_guard  (** a CRC check in [recover] always passes *)
  | Silence_recovery  (** [recover]'s nonzero (reject) return becomes 0 *)
  | Drift_recovery_store
      (** a constant store in [recover] becomes read-modify-write, so
          recovery is no longer a fix-point *)

val all_operators : operator list
val operator_name : operator -> string
val operator_of_string : string -> operator option
val pp_operator : operator Fmt.t

(** The detector tier expected to catch the operator's mutants: every
    class except strand splitting is in the static rules' scope, and
    the corruption operators are visible only to the recovery executor
    ({!Evaluate.run_recovery}). *)
type tier = Static_tier | Dynamic_tier | Recovery_tier

val tier_name : tier -> string
val operator_tier : operator -> tier

(** An expected warning: any of [rules] at [file:line]. Redundant
    write-backs split into two rule ids depending on transaction
    context, hence a list. *)
type expect = {
  rules : Analysis.Warning.rule_id list;
  file : string;
  line : int;
}

val expect_matches : expect -> Analysis.Warning.t -> bool

type truth = {
  operator : operator;
  tier : tier;
  primary : expect;  (** the violation the mutant must trigger *)
  collateral : expect list;
      (** warnings the mutation is allowed to cause as a side effect;
          matching these counts neither as detection nor as a false
          positive *)
}

type mutant = {
  id : string;  (** [base/operator-name/k] *)
  base : string;
  model : Analysis.Model.t;
  prog : Nvmir.Prog.t;
  truth : truth;
}

val mutate :
  ?operators:operator list ->
  ?field_sensitive:bool ->
  ?offset_sensitive:bool ->
  base:string ->
  model:Analysis.Model.t ->
  roots:string list ->
  Nvmir.Prog.t ->
  mutant list
(** Enumerate every sound injection site in functions reachable from
    [roots] and apply each operator, one mutation per mutant. The input
    program must already be warning-clean under [model] (see
    {!Evaluate.bases}); sites are deterministic, so the mutant list is a
    pure function of the program. *)
