(* Mutation-based persistency-bug injection.

   The operators re-introduce exactly the rule-class violations of
   Tables 4/5 into warning-clean programs. Site selection is the heart
   of the module: a site is admitted only when the mutation provably
   triggers the target rule at a known file:line under the base
   program's persistency model (DESIGN.md §6d gives the argument per
   operator). The price of that soundness is conservatism — sites the
   analysis cannot locally justify are skipped, never guessed. *)

module W = Analysis.Warning
module I = Nvmir.Instr
module L = Nvmir.Loc

type operator =
  | Delete_flush
  | Delete_fence
  | Reorder_fence
  | Hoist_write
  | Duplicate_flush
  | Widen_flush
  | Drop_tx_add
  | Split_strand
  | Strip_crc_guard
  | Silence_recovery
  | Drift_recovery_store

let all_operators =
  [
    Delete_flush;
    Delete_fence;
    Reorder_fence;
    Hoist_write;
    Duplicate_flush;
    Widen_flush;
    Drop_tx_add;
    Split_strand;
    Strip_crc_guard;
    Silence_recovery;
    Drift_recovery_store;
  ]

let operator_name = function
  | Delete_flush -> "delete-flush"
  | Delete_fence -> "delete-fence"
  | Reorder_fence -> "reorder-fence"
  | Hoist_write -> "hoist-write"
  | Duplicate_flush -> "duplicate-flush"
  | Widen_flush -> "widen-flush"
  | Drop_tx_add -> "drop-tx-add"
  | Split_strand -> "split-strand"
  | Strip_crc_guard -> "strip-crc-guard"
  | Silence_recovery -> "silence-recovery"
  | Drift_recovery_store -> "drift-recovery-store"

let operator_of_string s =
  List.find_opt (fun o -> String.equal (operator_name o) s) all_operators

let pp_operator ppf o = Fmt.string ppf (operator_name o)

type tier = Static_tier | Dynamic_tier | Recovery_tier

let tier_name = function
  | Static_tier -> "static"
  | Dynamic_tier -> "dynamic"
  | Recovery_tier -> "recovery"

(* Strand splitting escapes the static rules only when the split lands
   between writes the trace abstraction cannot order; we still expect
   the static strand rule to fire, but the authoritative tier is the
   dynamic checker observing the actual race. The corruption operators
   break the recovery path, which no trace rule sees at all — only the
   recovery executor ([Recover.verify]) can score them. Everything
   else is squarely in the static rules' scope. *)
let operator_tier = function
  | Split_strand -> Dynamic_tier
  | Strip_crc_guard | Silence_recovery | Drift_recovery_store ->
    Recovery_tier
  | Delete_flush | Delete_fence | Reorder_fence | Hoist_write
  | Duplicate_flush | Widen_flush | Drop_tx_add ->
    Static_tier

type expect = { rules : W.rule_id list; file : string; line : int }

(* [line = 0] is a file-level wildcard: some knock-on warnings (e.g.
   semantic-mismatch after hoisting a write out of its persist unit)
   legitimately land on sibling writes whose lines the operator cannot
   predict. *)
let expect_matches e (w : W.t) =
  List.exists (fun r -> r = w.W.rule) e.rules
  && String.equal w.W.loc.L.file e.file
  && (e.line = 0 || w.W.loc.L.line = e.line)

type truth = {
  operator : operator;
  tier : tier;
  primary : expect;
  collateral : expect list;
}

type mutant = {
  id : string;
  base : string;
  model : Analysis.Model.t;
  prog : Nvmir.Prog.t;
  truth : truth;
}

(* ------------------------------------------------------------------ *)
(* Small IR classifiers *)

let loc_ok l = not (L.is_none l)

let flush_target (ins : I.t) =
  match ins.I.kind with
  | I.Flush { target; extent } | I.Persist { target; extent } ->
    Some (target, extent)
  | _ -> None

let is_standalone_flush (ins : I.t) =
  match ins.I.kind with I.Flush _ -> true | _ -> false

let is_fence_like (ins : I.t) =
  match ins.I.kind with I.Fence | I.Persist _ -> true | _ -> false

let is_call (ins : I.t) =
  match ins.I.kind with I.Call _ -> true | _ -> false

(* Functions reachable from the analysis roots; mutations elsewhere
   would be invisible to every detector. *)
let reachable prog roots =
  let seen = Hashtbl.create 16 in
  let rec go f =
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      match Nvmir.Prog.find_func prog f with
      | None -> ()
      | Some fn -> List.iter go (Nvmir.Func.callees fn)
    end
  in
  let roots =
    match roots with [] -> Nvmir.Prog.func_names prog | rs -> rs
  in
  List.iter go roots;
  seen

(* ------------------------------------------------------------------ *)
(* Block surgery: every mutation is a single [map_block] *)

let edit_block prog ~fname ~label f =
  Deepmc.Rewrite.map_block prog ~in_func:fname ~in_block:label f

let remove_index prog ~fname ~label j =
  edit_block prog ~fname ~label (fun l ->
      List.filteri (fun k _ -> k <> j) l)

let insert_after_index prog ~fname ~label j news =
  edit_block prog ~fname ~label (fun l ->
      List.concat (List.mapi (fun k ins -> if k = j then ins :: news else [ ins ]) l))

let replace_index prog ~fname ~label j ins' =
  edit_block prog ~fname ~label (fun l ->
      List.mapi (fun k ins -> if k = j then ins' else ins) l)

(* move instruction [i] to just after [j] (i < j) *)
let hoist_index prog ~fname ~label ~from:i ~past:j =
  edit_block prog ~fname ~label (fun l ->
      let arr = Array.of_list l in
      List.concat
        (List.mapi
           (fun k ins ->
             if k = i then []
             else if k = j then [ ins; arr.(i) ]
             else [ ins ])
           l))

(* move the fence at [j] to just before the flush at [i] (i < j) *)
let swap_fence_index prog ~fname ~label ~fence:j ~before:i =
  edit_block prog ~fname ~label (fun l ->
      let arr = Array.of_list l in
      List.concat
        (List.mapi
           (fun k ins ->
             if k = j then []
             else if k = i then [ arr.(j); ins ]
             else [ ins ])
           l))

(* ------------------------------------------------------------------ *)

type site = {
  op : operator;
  apply : Nvmir.Prog.t -> Nvmir.Prog.t;
  s_primary : expect;
  s_collateral : expect list;
}

let expect ?(rules = []) loc = { rules; file = loc.L.file; line = loc.L.line }

let mutate ?(operators = all_operators) ?(field_sensitive = true)
    ?(offset_sensitive = true) ~base ~model ~roots prog =
  let dsg = Dsa.Dsg.build ~field_sensitive ~offset_sensitive prog in
  let tenv = Nvmir.Prog.tenv prog in
  let live = reachable prog roots in
  let resolve fname p = Dsa.Dsg.resolve dsg ~fname p in
  let resolve_ext fname p e = Dsa.Dsg.resolve_extent dsg ~fname p e in
  let persistent fname p = Dsa.Dsg.is_persistent_place dsg ~fname p in
  let nfields node =
    let n = Dsa.Arena.canonical (Dsa.Dsg.arena dsg) node in
    match n.Dsa.Arena.ty with
    | Some (Nvmir.Ty.Named s) -> (
      match Nvmir.Ty.env_find tenv s with
      | Some sd -> Some (List.length sd.Nvmir.Ty.fields)
      | None -> None)
    | Some _ | None -> None
  in
  let sites = ref [] in
  let push s = sites := s :: !sites in
  let wants op = List.memq op operators in
  List.iter
    (fun (fn : Nvmir.Func.t) ->
      let fname = fn.Nvmir.Func.fname in
      if Hashtbl.mem live fname then begin
        (* The recovery-tier operators target the recovery convention:
           only a function named [recover] is executed by the recovery
           verifier, so only there can a mutation be scored. Whole-path
           defects (silencing, drift) are reported at the verifier's
           anchor — the first located instruction of the entry block. *)
        let is_recovery = String.equal fname "recover" in
        let recovery_loc =
          match
            List.find_opt
              (fun (i : I.t) -> loc_ok i.I.loc)
              (Nvmir.Func.entry_block fn).Nvmir.Func.instrs
          with
          | Some i -> i.I.loc
          | None -> fn.Nvmir.Func.floc
        in
        (* function-wide durability coverage, for uniqueness tests *)
        let func_flushes = ref [] and func_logs = ref [] in
        let max_strand = ref 0 in
        Nvmir.Func.iter_instrs
          (fun _ ins ->
            (match flush_target ins with
            | Some (t, e) -> func_flushes := resolve_ext fname t e :: !func_flushes
            | None -> ());
            match ins.I.kind with
            | I.Tx_add { target; extent } ->
              func_logs := resolve_ext fname target extent :: !func_logs
            | I.Strand_begin n | I.Strand_end n ->
              if n > !max_strand then max_strand := n
            | _ -> ())
          fn;
        let covering_flushes a =
          List.length
            (List.filter (fun b -> Dsa.Aaddr.contained_in a b) !func_flushes)
        in
        let covering_logs a =
          List.length
            (List.filter (fun b -> Dsa.Aaddr.contained_in a b) !func_logs)
        in
        let log_on_node node =
          List.exists (fun (b : Dsa.Aaddr.t) -> b.Dsa.Aaddr.node = node) !func_logs
        in
        List.iter
          (fun (blk : Nvmir.Func.block) ->
            let label = blk.Nvmir.Func.label in
            let arr = Array.of_list blk.Nvmir.Func.instrs in
            let n = Array.length arr in
            let store_at k =
              match arr.(k).I.kind with
              | I.Store { dst; _ } when persistent fname dst ->
                Some (dst, resolve fname dst)
              | _ -> None
            in
            (* epoch-end locs in this block: allowed collateral for any
               mutation that disturbs flush/fence pairing *)
            let epoch_end_collateral =
              let acc = ref [] in
              Array.iter
                (fun ins ->
                  match ins.I.kind with
                  | I.Epoch_end when loc_ok ins.I.loc ->
                    acc :=
                      expect ~rules:[ W.Missing_persist_barrier ] ins.I.loc
                      :: !acc
                  | _ -> ())
                arr;
              List.rev !acc
            in
            (* ---- flush-anchored operators ---- *)
            for j = 0 to n - 1 do
              match flush_target arr.(j) with
              | None -> ()
              | Some (tgt, ext) ->
                let fj = resolve_ext fname tgt ext in
                let floc = arr.(j).I.loc in
                (* stores before j uniquely covered by this flush *)
                let covered_stores =
                  List.filter_map
                    (fun i ->
                      match store_at i with
                      | Some (_, sa)
                        when loc_ok arr.(i).I.loc
                             && Dsa.Aaddr.contained_in sa fj
                             && covering_flushes sa = 1
                             && covering_logs sa = 0 ->
                        Some (i, sa)
                      | _ -> None)
                    (List.init j Fun.id)
                in
                (* would deleting j strip a barrier some earlier flush
                   relies on? (only Persist carries a fence) *)
                let fence_load_bearing =
                  is_fence_like arr.(j)
                  &&
                  let rec back k =
                    if k < 0 then false
                    else if is_standalone_flush arr.(k) then true
                    else if is_fence_like arr.(k) || is_call arr.(k) then false
                    else back (k - 1)
                  in
                  back (j - 1)
                in
                (match covered_stores with
                | (i0, _) :: rest
                  when wants Delete_flush && not fence_load_bearing
                       && model <> Analysis.Model.Strand ->
                  push
                    {
                      op = Delete_flush;
                      apply = (fun p -> remove_index p ~fname ~label j);
                      s_primary =
                        expect ~rules:[ W.Unflushed_write ] arr.(i0).I.loc;
                      s_collateral =
                        List.map
                          (fun (i, _) ->
                            expect ~rules:[ W.Unflushed_write ] arr.(i).I.loc)
                          rest
                        (* the deleted flush may also have been the only
                           coverer of stores outside [covered_stores]
                           (e.g. multi-field flushes), and removing it
                           re-partitions persist units; both are
                           consequences of the injection, not detector
                           noise *)
                        @ [
                            {
                              rules = [ W.Unflushed_write; W.Semantic_mismatch ];
                              file = floc.L.file;
                              line = 0;
                            };
                          ]
                        @ epoch_end_collateral;
                    }
                | _ -> ());
                if wants Hoist_write && model <> Analysis.Model.Strand then
                  List.iter
                    (fun (i, _) ->
                      let moved_base =
                        match arr.(i).I.kind with
                        | I.Store { dst; _ } -> Nvmir.Place.base dst
                        | _ -> ""
                      in
                      let safe_gap =
                        List.for_all
                          (fun k ->
                            match arr.(k).I.kind with
                            | I.Load { src; _ } ->
                              not (String.equal (Nvmir.Place.base src) moved_base)
                            | I.Call _ | I.Tx_begin | I.Tx_end -> false
                            | _ -> true)
                          (List.init (j - i - 1) (fun d -> i + 1 + d))
                      in
                      if safe_gap then
                        push
                          {
                            op = Hoist_write;
                            apply =
                              (fun p ->
                                hoist_index p ~fname ~label ~from:i ~past:j);
                            s_primary =
                              expect ~rules:[ W.Unflushed_write ] arr.(i).I.loc;
                            s_collateral =
                              (if loc_ok floc then
                                 [
                                   expect
                                     ~rules:
                                       [
                                         W.Flush_unmodified;
                                         W.Durable_tx_no_writes;
                                         W.Multiple_flushes;
                                         W.Persist_same_object_in_tx;
                                         W.Missing_persist_barrier;
                                       ]
                                     floc;
                                 ]
                               else [])
                              (* moving the write re-partitions the
                                 function's persist units, so the
                                 split-atomic-update rule may fire on
                                 sibling writes anywhere in the file *)
                              @ [
                                  {
                                    rules = [ W.Semantic_mismatch ];
                                    file = arr.(i).I.loc.L.file;
                                    line = 0;
                                  };
                                ]
                              @ epoch_end_collateral;
                          })
                    covered_stores;
                (* duplicate: original flush leaves the line clean, the
                   copy re-persists it -> redundant write-back *)
                if
                  wants Duplicate_flush && loc_ok floc
                  && model <> Analysis.Model.Strand
                then begin
                  let overlapping =
                    List.filter_map
                      (fun i ->
                        match store_at i with
                        | Some (_, sa) when Dsa.Aaddr.may_overlap sa fj ->
                          Some sa
                        | _ -> None)
                      (List.init j Fun.id)
                  in
                  if
                    overlapping <> []
                    && List.for_all
                         (fun sa -> Dsa.Aaddr.contained_in sa fj)
                         overlapping
                  then
                    push
                      {
                        op = Duplicate_flush;
                        apply =
                          (fun p ->
                            insert_after_index p ~fname ~label j [ arr.(j) ]);
                        s_primary =
                          expect
                            ~rules:
                              [ W.Multiple_flushes; W.Persist_same_object_in_tx ]
                            floc;
                        s_collateral = [];
                      }
                end;
                (* widen: exact field flush -> whole object *)
                if
                  wants Widen_flush && ext = I.Exact && loc_ok floc
                  && model <> Analysis.Model.Strand
                then begin
                  match Nvmir.Place.first_field tgt with
                  | None -> ()
                  | Some f -> (
                    let ea = resolve fname tgt in
                    match (ea.Dsa.Aaddr.field, nfields ea.Dsa.Aaddr.node) with
                    | Some _, Some nf when nf >= 2 ->
                      let node = ea.Dsa.Aaddr.node in
                      let node_stores =
                        List.filter_map
                          (fun i ->
                            match store_at i with
                            | Some (_, sa)
                              when sa.Dsa.Aaddr.node = node -> Some sa
                            | _ -> None)
                          (List.init j Fun.id)
                      in
                      let only_this_field =
                        node_stores <> []
                        && List.for_all
                             (fun (sa : Dsa.Aaddr.t) ->
                               sa.Dsa.Aaddr.field = Some f)
                             node_stores
                      in
                      if only_this_field && not (log_on_node node) then
                        push
                          {
                            op = Widen_flush;
                            apply =
                              (fun p ->
                                let kind' =
                                  match arr.(j).I.kind with
                                  | I.Flush { target; _ } ->
                                    I.Flush { target; extent = I.Object }
                                  | I.Persist { target; _ } ->
                                    I.Persist { target; extent = I.Object }
                                  | k -> k
                                in
                                replace_index p ~fname ~label j
                                  { arr.(j) with I.kind = kind' });
                            s_primary =
                              expect ~rules:[ W.Flush_unmodified ] floc;
                            s_collateral = [];
                          }
                    | _ -> ())
                end
            done;
            (* ---- fence-anchored operators ---- *)
            let fence_ops =
              (wants Delete_fence || wants Reorder_fence)
              && model <> Analysis.Model.Strand
            in
            if fence_ops then
              for j = 0 to n - 1 do
                match arr.(j).I.kind with
                | I.Fence ->
                  (* backward: the standalone flush this fence orders,
                     with nothing fence-like or opaque in between *)
                  let rec back k =
                    if k < 0 then None
                    else if is_standalone_flush arr.(k) then Some k
                    else if is_fence_like arr.(k) || is_call arr.(k) then None
                    else back (k - 1)
                  in
                  let flush_i = back (j - 1) in
                  (* forward: what does the trace meet next? *)
                  let rec fwd k =
                    if k >= n then `End
                    else
                      match arr.(k).I.kind with
                      | I.Fence | I.Persist _ -> `Fence
                      | I.Call _ -> `Opaque
                      | I.Tx_add _ | I.Tx_begin -> `Trigger
                      | I.Store { dst; _ } when persistent fname dst ->
                        `Trigger
                      | I.Epoch_end -> `Epoch_end k
                      | I.Epoch_begin -> `Epoch_boundary
                      | _ -> fwd (k + 1)
                  in
                  let ahead = fwd (j + 1) in
                  let in_epoch i =
                    let rec back k =
                      if k < 0 then false
                      else
                        match arr.(k).I.kind with
                        | I.Epoch_begin -> true
                        | I.Epoch_end -> false
                        | _ -> back (k - 1)
                    in
                    back (i - 1)
                  in
                  (match (model, flush_i, ahead) with
                  | Analysis.Model.Strict, Some i, `Trigger
                    when loc_ok arr.(i).I.loc ->
                    if wants Delete_fence then
                      push
                        {
                          op = Delete_fence;
                          apply = (fun p -> remove_index p ~fname ~label j);
                          s_primary =
                            expect
                              ~rules:[ W.Missing_persist_barrier ]
                              arr.(i).I.loc;
                          s_collateral = [];
                        };
                    if
                      wants Reorder_fence
                      && List.for_all
                           (fun k -> not (I.is_persistency_relevant arr.(k)))
                           (List.init (j - i - 1) (fun d -> i + 1 + d))
                    then
                      push
                        {
                          op = Reorder_fence;
                          apply =
                            (fun p ->
                              swap_fence_index p ~fname ~label ~fence:j
                                ~before:i);
                          s_primary =
                            expect
                              ~rules:[ W.Missing_persist_barrier ]
                              arr.(i).I.loc;
                          s_collateral = [];
                        }
                  | Analysis.Model.Epoch, Some i, `Epoch_end k
                    when loc_ok arr.(k).I.loc && in_epoch i ->
                    (* statically the epoch closes without a barrier
                       (missing-persist-barrier at the epoch end); the
                       online checker sees the same bug as the write
                       still volatile when the epoch ends, reported at
                       the write site — both rules are the one injected
                       defect *)
                    if wants Delete_fence then
                      push
                        {
                          op = Delete_fence;
                          apply = (fun p -> remove_index p ~fname ~label j);
                          s_primary =
                            expect
                              ~rules:
                                [ W.Missing_persist_barrier; W.Unflushed_write ]
                              arr.(k).I.loc;
                          s_collateral = [];
                        };
                    if
                      wants Reorder_fence
                      && List.for_all
                           (fun d -> not (I.is_persistency_relevant arr.(i + 1 + d)))
                           (List.init (j - i - 1) Fun.id)
                    then
                      push
                        {
                          op = Reorder_fence;
                          apply =
                            (fun p ->
                              swap_fence_index p ~fname ~label ~fence:j
                                ~before:i);
                          s_primary =
                            expect
                              ~rules:
                                [ W.Missing_persist_barrier; W.Unflushed_write ]
                              arr.(k).I.loc;
                          s_collateral = [];
                        }
                  | _ -> ())
                | _ -> ()
              done;
            (* ---- transaction log drops ---- *)
            if wants Drop_tx_add && model <> Analysis.Model.Strand then
              for j = 0 to n - 1 do
                match arr.(j).I.kind with
                | I.Tx_add { target; extent } ->
                  let la = resolve_ext fname target extent in
                  let rec in_tx k =
                    if k < 0 then false
                    else
                      match arr.(k).I.kind with
                      | I.Tx_begin -> true
                      | I.Tx_end -> false
                      | _ -> in_tx (k - 1)
                  in
                  if in_tx (j - 1) then begin
                    let logged_stores =
                      let rec fwd k acc =
                        if k >= n then List.rev acc
                        else
                          match arr.(k).I.kind with
                          | I.Tx_end -> List.rev acc
                          | _ ->
                            let acc =
                              match store_at k with
                              | Some (_, sa)
                                when loc_ok arr.(k).I.loc
                                     && Dsa.Aaddr.contained_in sa la
                                     && covering_logs sa = 1
                                     && covering_flushes sa = 0 ->
                                (k, sa) :: acc
                              | _ -> acc
                            in
                            fwd (k + 1) acc
                      in
                      fwd (j + 1) []
                    in
                    match logged_stores with
                    | (i0, _) :: rest ->
                      push
                        {
                          op = Drop_tx_add;
                          apply = (fun p -> remove_index p ~fname ~label j);
                          s_primary =
                            expect ~rules:[ W.Unflushed_write ] arr.(i0).I.loc;
                          s_collateral =
                            List.map
                              (fun (i, _) ->
                                expect ~rules:[ W.Unflushed_write ]
                                  arr.(i).I.loc)
                              rest;
                        }
                    | [] -> ()
                  end
                | _ -> ()
              done;
            (* ---- strand splits ---- *)
            if wants Split_strand && model = Analysis.Model.Strand then
              for bi = 0 to n - 1 do
                match arr.(bi).I.kind with
                | I.Strand_begin sid ->
                  let rec find_end k =
                    if k >= n then None
                    else
                      match arr.(k).I.kind with
                      | I.Strand_end sid' when sid' = sid -> Some k
                      | _ -> find_end (k + 1)
                  in
                  (match find_end (bi + 1) with
                  | None -> ()
                  | Some ei ->
                    let stores =
                      List.filter_map
                        (fun k ->
                          match store_at k with
                          | Some (_, sa) -> Some (k, sa)
                          | None -> None)
                        (List.init (ei - bi - 1) (fun d -> bi + 1 + d))
                    in
                    let rec first_pair = function
                      | [] -> None
                      | (p1, a1) :: rest -> (
                        match
                          List.find_opt
                            (fun ((p2, a2) : int * Dsa.Aaddr.t) ->
                              p2 > p1
                              && Dsa.Aaddr.may_overlap a1 a2
                              && loc_ok arr.(p2).I.loc)
                            rest
                        with
                        | Some (p2, _) -> Some (p1, p2)
                        | None -> first_pair rest)
                    in
                    (match first_pair stores with
                    | Some (p1, p2) ->
                      let fresh = !max_strand + 1 in
                      push
                        {
                          op = Split_strand;
                          apply =
                            (fun p ->
                              insert_after_index p ~fname ~label p1
                                [
                                  I.make (I.Strand_end sid);
                                  I.make (I.Strand_begin fresh);
                                ]);
                          s_primary =
                            expect ~rules:[ W.Strand_dependence ]
                              arr.(p2).I.loc;
                          s_collateral = [];
                        }
                    | None -> ()))
                | _ -> ()
              done;
            (* ---- recovery-tier operators ---- *)
            if is_recovery then begin
              for j = 0 to n - 1 do
                match arr.(j).I.kind with
                (* strip-crc-guard: the check always passes, so every
                   replay load consumes unvalidated media *)
                | I.Crc_check { dst; _ }
                  when wants Strip_crc_guard && loc_ok arr.(j).I.loc ->
                  push
                    {
                      op = Strip_crc_guard;
                      apply =
                        (fun p ->
                          replace_index p ~fname ~label j
                            {
                              arr.(j) with
                              I.kind =
                                I.Assign
                                  {
                                    dst;
                                    src = Nvmir.Operand.Bool_const true;
                                  };
                            });
                      (* the loads the guard covered sit on lines the
                         operator cannot predict from the check site *)
                      s_primary =
                        {
                          rules = [ W.Unguarded_recovery_read ];
                          file = arr.(j).I.loc.L.file;
                          line = 0;
                        };
                      s_collateral =
                        [
                          {
                            rules =
                              [
                                W.Silent_corruption_accept;
                                W.Non_idempotent_recovery;
                              ];
                            file = arr.(j).I.loc.L.file;
                            line = 0;
                          };
                        ];
                    }
                (* drift-recovery-store: a constant (re-)initialising
                   store becomes read-modify-write, so each recovery
                   run moves the slot — no longer a fix-point *)
                | I.Store { dst; src = Nvmir.Operand.Const _ }
                  when wants Drift_recovery_store
                       && loc_ok arr.(j).I.loc
                       && persistent fname dst
                       && covering_flushes (resolve fname dst) >= 1 ->
                  let v = Fmt.str "__drift%d" j in
                  let v1 = v ^ "n" in
                  push
                    {
                      op = Drift_recovery_store;
                      apply =
                        (fun p ->
                          edit_block p ~fname ~label (fun l ->
                              List.concat
                                (List.mapi
                                   (fun k ins ->
                                     if k <> j then [ ins ]
                                     else
                                       [
                                         {
                                           ins with
                                           I.kind = I.Load { dst = v; src = dst };
                                         };
                                         I.make
                                           (I.Binop
                                              {
                                                dst = v1;
                                                op = I.Add;
                                                lhs = Nvmir.Operand.Var v;
                                                rhs = Nvmir.Operand.Const 1;
                                              });
                                         {
                                           ins with
                                           I.kind =
                                             I.Store
                                               {
                                                 dst;
                                                 src = Nvmir.Operand.Var v1;
                                               };
                                         };
                                       ])
                                   l)));
                      s_primary =
                        expect ~rules:[ W.Non_idempotent_recovery ]
                          recovery_loc;
                      s_collateral =
                        [
                          {
                            rules = [ W.Unguarded_recovery_read ];
                            file = arr.(j).I.loc.L.file;
                            line = 0;
                          };
                        ];
                    }
                | _ -> ()
              done;
              (* silence-recovery: a nonzero (reject) return becomes
                 success, so detected corruption is accepted silently *)
              (match blk.Nvmir.Func.term with
              | Nvmir.Func.Ret (Some (Nvmir.Operand.Const c))
                when wants Silence_recovery && c <> 0 ->
                push
                  {
                    op = Silence_recovery;
                    apply =
                      (fun p ->
                        Deepmc.Rewrite.map_funcs p (fun f ->
                            if
                              not
                                (String.equal f.Nvmir.Func.fname fname)
                            then f
                            else
                              {
                                f with
                                Nvmir.Func.blocks =
                                  List.map
                                    (fun (b : Nvmir.Func.block) ->
                                      if
                                        String.equal b.Nvmir.Func.label
                                          label
                                      then
                                        {
                                          b with
                                          Nvmir.Func.term =
                                            Nvmir.Func.Ret
                                              (Some
                                                 (Nvmir.Operand.Const 0));
                                        }
                                      else b)
                                    f.Nvmir.Func.blocks;
                              }));
                    s_primary =
                      expect ~rules:[ W.Silent_corruption_accept ]
                        recovery_loc;
                    s_collateral = [];
                  }
              | _ -> ())
            end)
          fn.Nvmir.Func.blocks
      end)
    (Nvmir.Prog.funcs prog);
  let sites = List.rev !sites in
  (* stable per-operator numbering *)
  let counters = Hashtbl.create 8 in
  List.map
    (fun s ->
      let k =
        let c = try Hashtbl.find counters s.op with Not_found -> 0 in
        Hashtbl.replace counters s.op (c + 1);
        c
      in
      {
        id = Fmt.str "%s/%s/%d" base (operator_name s.op) k;
        base;
        model;
        prog = s.apply prog;
        truth =
          {
            operator = s.op;
            tier = operator_tier s.op;
            primary = s.s_primary;
            collateral = s.s_collateral;
          };
      })
    sites
