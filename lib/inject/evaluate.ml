(* Recall/precision evaluation of the detectors over a mutant
   population. See evaluate.mli for the measurement rules. *)

module W = Analysis.Warning
module J = Deepmc.Json_report

type base = {
  bname : string;
  model : Analysis.Model.t;
  prog : Nvmir.Prog.t;
  roots : string list;
  entry : string option;
  entry_args : int list;
  offset_sensitive : bool;
  static_baseline : (W.rule_id * string * int) list;
  dynamic_baseline : (W.rule_id * string) list;
}

let opt_roots = function [] -> None | rs -> Some rs

let static_warnings ?(offset_sensitive = true) ~model ~roots prog =
  let res =
    Analysis.Checker.check ~offset_sensitive ?roots:(opt_roots roots) ~model
      prog
  in
  res.Analysis.Checker.warnings

let dynamic_warnings ~model ~entry ~args prog =
  let pmem = Runtime.Pmem.create () in
  let checker = Runtime.Dynamic.create ~model () in
  Runtime.Dynamic.attach checker pmem;
  let interp = Runtime.Interp.create ~pmem prog in
  (try ignore (Runtime.Interp.run ~entry ~args interp) with
  | Runtime.Interp.Runtime_error _ | Runtime.Interp.Out_of_fuel -> ());
  Runtime.Dynamic.warnings checker

let make_base ?(offset_sensitive = true) ~bname ~model ~roots ~entry
    ~entry_args prog =
  let static_baseline =
    List.map W.dedup_key
      (static_warnings ~offset_sensitive ~model ~roots prog)
  in
  let dynamic_baseline =
    match entry with
    | None -> []
    | Some entry ->
      List.sort_uniq compare
        (List.map
           (fun (w : W.t) -> (w.W.rule, w.W.loc.Nvmir.Loc.file))
           (dynamic_warnings ~model ~entry ~args:entry_args prog))
  in
  { bname; model; prog; roots; entry; entry_args; offset_sensitive;
    static_baseline; dynamic_baseline }

(* [offset_sensitive] configures the whole pipeline for each base:
   autofix, baselines, mutation-site admission and static scoring all
   agree on one DSG configuration. Ablating it regenerates the exact
   pre-offset-lattice population and results — including the 10
   blind-spot false negatives the fuzz bench scores against. Note the
   offset-aware pipeline admits MORE mutation sites (stores and flushes
   reached through pointer-arithmetic aliases are persistent-visible
   now), so the static-tier denominator grows with it. *)
let corpus_bases ?(offset_sensitive = true) ?framework ?name () =
  let progs =
    match (name, framework) with
    | Some n, _ -> Option.to_list (Corpus.Registry.find n)
    | None, Some f -> Corpus.Registry.by_framework f
    | None, None -> Corpus.Registry.all
  in
  List.map
    (fun (p : Corpus.Types.program) ->
      let model = Corpus.Types.model p in
      let fixed, _, _ =
        Deepmc.Autofix.fix_until_clean ~offset_sensitive
          ?roots:(opt_roots p.Corpus.Types.roots) ~model
          (Corpus.Types.parse p)
      in
      make_base ~offset_sensitive ~bname:p.Corpus.Types.name ~model
        ~roots:p.Corpus.Types.roots
        ~entry:(Some p.Corpus.Types.entry)
        ~entry_args:p.Corpus.Types.entry_args fixed)
    progs

let synth_bases ?(offset_sensitive = true) ~seed ~count ~nfuncs () =
  List.init count (fun k ->
      let cfg =
        {
          Corpus.Synth.default_config with
          Corpus.Synth.seed = seed + k;
          nfuncs;
          buggy_fraction_pct = 0;
        }
      in
      let prog, _ = Corpus.Synth.generate cfg in
      make_base ~offset_sensitive
        ~bname:(Fmt.str "synth%d" (seed + k))
        ~model:Analysis.Model.Strict ~roots:(Corpus.Synth.roots cfg)
        ~entry:(Some "main") ~entry_args:[] prog)

let exemplar_bases ?(offset_sensitive = true) () =
  [
    make_base ~offset_sensitive ~bname:Exemplar.name ~model:Exemplar.model
      ~roots:Exemplar.roots ~entry:(Some Exemplar.entry) ~entry_args:[]
      (Exemplar.program ());
  ]

(* ------------------------------------------------------------------ *)

type detection = { applicable : bool; hit : bool; fp : int }

let not_applicable = { applicable = false; hit = false; fp = 0 }

type mutant_result = {
  mutant : Mutation.mutant;
  static_d : detection;
  dynamic_d : detection;
  crash_d : detection;
}

let classify ~matches (truth : Mutation.truth) delta =
  let hit = List.exists (matches truth.Mutation.primary) delta in
  let fp =
    List.length
      (List.filter
         (fun w ->
           (not (matches truth.Mutation.primary w))
           && not
                (List.exists
                   (fun c -> matches c w)
                   truth.Mutation.collateral))
         delta)
  in
  { applicable = true; hit; fp }

let eval_static (b : base) (m : Mutation.mutant) =
  let ws =
    static_warnings ~offset_sensitive:b.offset_sensitive ~model:b.model
      ~roots:b.roots m.Mutation.prog
  in
  let delta =
    List.filter
      (fun w -> not (List.mem (W.dedup_key w) b.static_baseline))
      ws
  in
  classify ~matches:Mutation.expect_matches m.Mutation.truth delta

(* The online checker reports at observation sites (e.g. an unflushed
   line is reported where it was written, a race at the second access),
   so dynamic matching pins the rule and file but not the line. *)
let lenient_matches (e : Mutation.expect) (w : W.t) =
  List.exists (fun r -> r = w.W.rule) e.Mutation.rules
  && String.equal w.W.loc.Nvmir.Loc.file e.Mutation.file

(* The online checker (§4.4) tracks accesses inside epoch/strand
   annotated regions only; an un-annotated (strict-model) program is
   invisible to it, so its mutants are out of the dynamic tier's
   scope rather than missed by it. *)
let has_regions prog =
  List.exists
    (fun (f : Nvmir.Func.t) ->
      List.exists
        (fun (blk : Nvmir.Func.block) ->
          List.exists
            (fun (i : Nvmir.Instr.t) ->
              match i.Nvmir.Instr.kind with
              | Nvmir.Instr.Epoch_begin | Nvmir.Instr.Strand_begin _ -> true
              | _ -> false)
            blk.Nvmir.Func.instrs)
        f.Nvmir.Func.blocks)
    (Nvmir.Prog.funcs prog)

let eval_dynamic (b : base) (m : Mutation.mutant) =
  match b.entry with
  | None -> not_applicable
  | Some _ when not (has_regions m.Mutation.prog) -> not_applicable
  | Some entry ->
    let ws =
      dynamic_warnings ~model:b.model ~entry ~args:b.entry_args
        m.Mutation.prog
    in
    let delta =
      List.filter
        (fun (w : W.t) ->
          not
            (List.mem (w.W.rule, w.W.loc.Nvmir.Loc.file) b.dynamic_baseline))
        ws
    in
    classify ~matches:lenient_matches m.Mutation.truth delta

(* ------------------------------------------------------------------ *)

type cell = { applicable : int; detected : int; fp : int }

let empty_cell = { applicable = 0; detected = 0; fp = 0 }

let add_cell c (d : detection) =
  if not d.applicable then c
  else
    {
      applicable = c.applicable + 1;
      detected = (c.detected + if d.hit then 1 else 0);
      fp = c.fp + d.fp;
    }

let cell_recall c =
  if c.applicable = 0 then None
  else Some (float_of_int c.detected /. float_of_int c.applicable)

let cell_precision c =
  if c.detected + c.fp = 0 then None
  else Some (float_of_int c.detected /. float_of_int (c.detected + c.fp))

type row = {
  operator : Mutation.operator;
  mutants : int;
  static_c : cell;
  dynamic_c : cell;
  crash_c : cell;
}

type summary = {
  seed : int;
  bases : int;
  total_mutants : int;
  rows : row list;
  static_tier_mutants : int;
  static_tier_detected : int;
  static_tier_recall : float;
  known_blind_spot : int;
  results : mutant_result list;
}

(* The historical DSG limitation: stores reached through
   pointer-arithmetic aliases used to be invisible to the static rules,
   so fence-ordering mutants behind such aliases were expected
   static-tier misses. The {!Dsa.Aaddr.offset} lattice closed the gap;
   tracking the count as a metric keeps it pinned at zero (it reappears
   only when offsets are ablated) — growth is a regression, not
   noise. *)
let is_known_blind_spot (r : mutant_result) =
  (match r.mutant.Mutation.truth.Mutation.operator with
  | Mutation.Delete_fence | Mutation.Reorder_fence -> true
  | _ -> false)
  && r.mutant.Mutation.truth.Mutation.tier = Mutation.Static_tier
  && not r.static_d.hit

let m_score_ns =
  Obs.Metrics.histogram "inject.scoring_latency_ns"
    ~desc:"per-mutant static+dynamic scoring latency (labelled op=O)"

let m_blind_spot =
  Obs.Metrics.gauge "inject.blind_spot_fns"
    ~desc:"static-tier fence FNs behind pointer-arith aliases (0 since the offset lattice)"

let run ?domains ?(operators = Mutation.all_operators) ?(seed = 1)
    ?(dynamic = true) ?(crash = true) ?(crash_bound = 192) bases =
  let mutants =
    List.concat_map
      (fun b ->
        List.map
          (fun m -> (b, m))
          (Mutation.mutate ~operators ~offset_sensitive:b.offset_sensitive
             ~base:b.bname ~model:b.model ~roots:b.roots b.prog))
      bases
  in
  (* static + dynamic detectors, one pool task per mutant *)
  let sd =
    Pool.map ?domains ~chunk:1 (Pool.default ())
      (fun (b, m) ->
        let t0 = if Obs.enabled () then Obs.now_ns () else 0L in
        let s = eval_static b m in
        let d = if dynamic then eval_dynamic b m else not_applicable in
        if Obs.enabled () then begin
          let dt = Int64.to_int (Int64.sub (Obs.now_ns ()) t0) in
          Obs.Metrics.observe m_score_ns dt;
          Obs.Metrics.observe_labelled m_score_ns
            ("op=" ^ Mutation.operator_name m.Mutation.truth.Mutation.operator)
            dt
        end;
        (s, d))
      mutants
  in
  (* crash-space explorer: the whole population in one sweep, plus one
     baseline sweep to compare inconsistent-image counts against *)
  let crash_ds =
    if not crash then List.map (fun _ -> not_applicable) mutants
    else begin
      let baseline_jobs =
        List.filter_map
          (fun b ->
            match b.entry with
            | Some entry ->
              Some
                {
                  Deepmc.Crash_sweep.name = b.bname;
                  prog = b.prog;
                  entry;
                  args = b.entry_args;
                }
            | None -> None)
          bases
      in
      let baseline_counts =
        List.map
          (fun (r : Deepmc.Crash_sweep.program_report) ->
            ( r.Deepmc.Crash_sweep.name,
              r.Deepmc.Crash_sweep.report.Runtime.Crash_space.inconsistent ))
          (Deepmc.Crash_sweep.sweep ?domains ~bound:crash_bound ~seed
             baseline_jobs)
      in
      let jobs =
        List.filter_map
          (fun (b, (m : Mutation.mutant)) ->
            match b.entry with
            | Some entry ->
              Some
                {
                  Deepmc.Crash_sweep.name = m.Mutation.id;
                  prog = m.Mutation.prog;
                  entry;
                  args = b.entry_args;
                }
            | None -> None)
          mutants
      in
      let reports =
        Deepmc.Crash_sweep.sweep ?domains ~bound:crash_bound ~seed jobs
      in
      let by_id =
        List.map
          (fun (r : Deepmc.Crash_sweep.program_report) ->
            (r.Deepmc.Crash_sweep.name, r))
          reports
      in
      List.map
        (fun (b, (m : Mutation.mutant)) ->
          match (b.entry, List.assoc_opt m.Mutation.id by_id) with
          | Some _, Some r ->
            let base_n =
              Option.value ~default:0 (List.assoc_opt b.bname baseline_counts)
            in
            {
              applicable = true;
              hit =
                r.Deepmc.Crash_sweep.report.Runtime.Crash_space.inconsistent
                > base_n;
              fp = 0;
            }
          | _ -> not_applicable)
        mutants
    end
  in
  let results =
    List.map2
      (fun ((_, m), (s, d)) c ->
        { mutant = m; static_d = s; dynamic_d = d; crash_d = c })
      (List.combine mutants sd) crash_ds
  in
  let rows =
    List.filter_map
      (fun op ->
        if not (List.memq op operators) then None
        else
          let rs =
            List.filter
              (fun r -> r.mutant.Mutation.truth.Mutation.operator = op)
              results
          in
          Some
            {
              operator = op;
              mutants = List.length rs;
              static_c =
                List.fold_left
                  (fun c r -> add_cell c r.static_d)
                  empty_cell rs;
              dynamic_c =
                List.fold_left
                  (fun c r -> add_cell c r.dynamic_d)
                  empty_cell rs;
              crash_c =
                List.fold_left (fun c r -> add_cell c r.crash_d) empty_cell rs;
            })
      Mutation.all_operators
  in
  let static_tier =
    List.filter
      (fun r ->
        r.mutant.Mutation.truth.Mutation.tier = Mutation.Static_tier)
      results
  in
  let detected = List.filter (fun r -> r.static_d.hit) static_tier in
  let nt = List.length static_tier and nd = List.length detected in
  let blind = List.length (List.filter is_known_blind_spot results) in
  Obs.Metrics.set m_blind_spot blind;
  {
    seed;
    bases = List.length bases;
    total_mutants = List.length results;
    rows;
    static_tier_mutants = nt;
    static_tier_detected = nd;
    static_tier_recall =
      (if nt = 0 then 1.0 else float_of_int nd /. float_of_int nt);
    known_blind_spot = blind;
    results;
  }

(* ------------------------------------------------------------------ *)

let expected_detector_missed (r : mutant_result) =
  match r.mutant.Mutation.truth.Mutation.tier with
  | Mutation.Static_tier -> not r.static_d.hit
  | Mutation.Dynamic_tier ->
    if r.dynamic_d.applicable then not r.dynamic_d.hit
    else not r.static_d.hit
  (* recovery-tier mutants are scored by [run_recovery], never by the
     static/dynamic matrix, so they cannot be blind spots here *)
  | Mutation.Recovery_tier -> false

let false_negatives s = List.filter expected_detector_missed s.results

let save_false_negatives ~dir s =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  List.map
    (fun r ->
      let m = r.mutant in
      let t = m.Mutation.truth in
      let fname =
        Fmt.str "%s.nvmir"
          (String.map
             (function '/' -> '_' | c -> c)
             m.Mutation.id)
      in
      let path = Filename.concat dir fname in
      let oc = open_out path in
      let ppf = Format.formatter_of_out_channel oc in
      Format.fprintf ppf "# false negative: %s@." m.Mutation.id;
      Format.fprintf ppf "# operator: %s  tier: %s  model: %a@."
        (Mutation.operator_name t.Mutation.operator)
        (Mutation.tier_name t.Mutation.tier)
        Analysis.Model.pp m.Mutation.model;
      Format.fprintf ppf "# expected: %s @@ %s:%d@."
        (String.concat "|"
           (List.map W.rule_name t.Mutation.primary.Mutation.rules))
        t.Mutation.primary.Mutation.file t.Mutation.primary.Mutation.line;
      Format.fprintf ppf "%a@." Nvmir.Prog.pp m.Mutation.prog;
      close_out oc;
      path)
    (false_negatives s)

(* Re-derive the blind-spot count from a persisted FN corpus by parsing
   the ground-truth header comments — the cross-check that the summary
   counter and the saved corpus agree. Only the leading comment block is
   read. *)
let known_blind_spot_of_corpus ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then 0
  else
    Array.fold_left
      (fun acc f ->
        if not (Filename.check_suffix f ".nvmir") then acc
        else begin
          let ic = open_in (Filename.concat dir f) in
          let matched = ref false in
          let prefix = "# operator: " in
          let plen = String.length prefix in
          (try
             let rec scan () =
               let line = input_line ic in
               if String.length line > 0 && line.[0] = '#' then begin
                 if
                   String.length line >= plen
                   && String.equal (String.sub line 0 plen) prefix
                 then begin
                   let rest =
                     String.sub line plen (String.length line - plen)
                   in
                   let toks =
                     List.filter
                       (fun s -> s <> "")
                       (String.split_on_char ' ' rest)
                   in
                   match toks with
                   | op :: "tier:" :: tier :: _ -> (
                     match Mutation.operator_of_string op with
                     | Some (Mutation.Delete_fence | Mutation.Reorder_fence)
                       when String.equal tier "static" ->
                       matched := true
                     | _ -> ())
                   | _ -> ()
                 end;
                 scan ()
               end
             in
             scan ()
           with End_of_file -> ());
          close_in ic;
          if !matched then acc + 1 else acc
        end)
      0 (Sys.readdir dir)

(* ------------------------------------------------------------------ *)

let json_of_opt_float = function None -> J.Null | Some f -> J.Float f

let json_of_cell c =
  J.Obj
    [
      ("applicable", J.Int c.applicable);
      ("detected", J.Int c.detected);
      ("false_positives", J.Int c.fp);
      ("recall", json_of_opt_float (cell_recall c));
      ("precision", json_of_opt_float (cell_precision c));
    ]

let to_json s =
  J.Obj
    [
      ("seed", J.Int s.seed);
      ("bases", J.Int s.bases);
      ("total_mutants", J.Int s.total_mutants);
      ( "rows",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("operator", J.String (Mutation.operator_name r.operator));
                   ( "tier",
                     J.String
                       (Mutation.tier_name (Mutation.operator_tier r.operator))
                   );
                   ("mutants", J.Int r.mutants);
                   ("static", json_of_cell r.static_c);
                   ("dynamic", json_of_cell r.dynamic_c);
                   ("crash", json_of_cell r.crash_c);
                 ])
             s.rows) );
      ("static_tier_mutants", J.Int s.static_tier_mutants);
      ("static_tier_detected", J.Int s.static_tier_detected);
      ("static_tier_recall", J.Float s.static_tier_recall);
      ("static_tier_target_met", J.Bool (s.static_tier_recall >= 0.9));
      ("known_blind_spot", J.Int s.known_blind_spot);
      ( "false_negatives",
        J.List
          (List.map
             (fun r ->
               let t = r.mutant.Mutation.truth in
               J.Obj
                 [
                   ("id", J.String r.mutant.Mutation.id);
                   ( "operator",
                     J.String (Mutation.operator_name t.Mutation.operator) );
                   ( "expected_rules",
                     J.List
                       (List.map
                          (fun ru -> J.String (W.rule_name ru))
                          t.Mutation.primary.Mutation.rules) );
                   ("file", J.String t.Mutation.primary.Mutation.file);
                   ("line", J.Int t.Mutation.primary.Mutation.line);
                 ])
             (false_negatives s)) );
    ]

let cell_to_string c =
  match cell_recall c with
  | None -> "-"
  | Some r -> Fmt.str "%d/%d r=%.2f fp=%d" c.detected c.applicable r c.fp

let pp_summary ppf s =
  Fmt.pf ppf
    "Injection recall/precision matrix (seed %d, %d base program(s), %d \
     mutant(s))@."
    s.seed s.bases s.total_mutants;
  Fmt.pf ppf "%-16s %-6s %-5s %-22s %-22s %-22s@." "operator" "tier" "n"
    "static" "dynamic" "crash";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-16s %-6s %-5d %-22s %-22s %-22s@."
        (Mutation.operator_name r.operator)
        (Mutation.tier_name (Mutation.operator_tier r.operator))
        r.mutants (cell_to_string r.static_c) (cell_to_string r.dynamic_c)
        (cell_to_string r.crash_c))
    s.rows;
  Fmt.pf ppf "static-tier recall: %d/%d = %.3f (target 0.90 %s)@."
    s.static_tier_detected s.static_tier_mutants s.static_tier_recall
    (if s.static_tier_recall >= 0.9 then "met" else "MISSED");
  Fmt.pf ppf "known blind spot (pointer-arith fence aliases): %d mutant(s)@."
    s.known_blind_spot;
  let fns = false_negatives s in
  if fns <> [] then
    Fmt.pf ppf "false negatives: %s@."
      (String.concat ", " (List.map (fun r -> r.mutant.Mutation.id) fns))

(* ------------------------------------------------------------------ *)
(* Recovery tier: the corruption operators scored by the recovery
   executor. Kept out of [run]'s matrix — the paper-corpus recall
   numbers are pinned, and no trace rule can see a recovery-path
   defect anyway — and fed by the dedicated {!Corpus.Recovery}
   bases. *)

let recovery_operators =
  [
    Mutation.Strip_crc_guard;
    Mutation.Silence_recovery;
    Mutation.Drift_recovery_store;
  ]

let recovery_bases ?(offset_sensitive = true) () =
  List.map
    (fun (p : Corpus.Types.program) ->
      make_base ~offset_sensitive ~bname:p.Corpus.Types.name
        ~model:(Corpus.Types.model p) ~roots:p.Corpus.Types.roots
        ~entry:(Some p.Corpus.Types.entry)
        ~entry_args:p.Corpus.Types.entry_args
        (Corpus.Types.parse p))
    Corpus.Recovery.programs

let recovery_report ~seed ~bound (b : base) prog =
  match (b.entry, Nvmir.Prog.find_func prog "recover") with
  | Some entry, Some _ ->
    Some
      (Recover.verify ~entry ~args:b.entry_args ~bound ~seed ~model:b.model
         prog)
  | _ -> None

type recovery_result = {
  r_mutant : Mutation.mutant;
  r_detection : detection;
}

type recovery_row = {
  r_operator : Mutation.operator;
  r_mutants : int;
  r_cell : cell;
}

type recovery_summary = {
  r_seed : int;
  r_bases : int;
  r_total_mutants : int;
  r_applicable : int;
  r_detected : int;
  r_recall : float;
  r_rows : recovery_row list;
  r_base_reports : (string * Recover.report) list;
  r_results : recovery_result list;
}

let run_recovery ?domains ?(operators = recovery_operators) ?(seed = 1)
    ?(bound = 96) bases =
  (* one baseline verification per base: its residual recovery warnings
     are excluded from every mutant's delta, exactly as the static tier
     treats refused-autofix residue *)
  let prepared =
    List.map (fun b -> (b, recovery_report ~seed ~bound b b.prog)) bases
  in
  let baseline_keys =
    List.map
      (fun (b, rep) ->
        ( b.bname,
          match rep with
          | None -> []
          | Some rep -> List.map W.dedup_key rep.Recover.warnings ))
      prepared
  in
  let mutants =
    List.concat_map
      (fun (b, _) ->
        List.map
          (fun m -> (b, m))
          (Mutation.mutate ~operators ~offset_sensitive:b.offset_sensitive
             ~base:b.bname ~model:b.model ~roots:b.roots b.prog))
      prepared
  in
  let results =
    Pool.map ?domains ~chunk:1 (Pool.default ())
      (fun (b, (m : Mutation.mutant)) ->
        let baseline =
          Option.value ~default:[] (List.assoc_opt b.bname baseline_keys)
        in
        let d =
          match recovery_report ~seed ~bound b m.Mutation.prog with
          | None -> not_applicable
          | Some rep ->
            let delta =
              List.filter
                (fun w -> not (List.mem (W.dedup_key w) baseline))
                rep.Recover.warnings
            in
            classify ~matches:Mutation.expect_matches m.Mutation.truth delta
        in
        { r_mutant = m; r_detection = d })
      mutants
  in
  let rows =
    List.filter_map
      (fun op ->
        if not (List.memq op operators) then None
        else
          let rs =
            List.filter
              (fun r ->
                r.r_mutant.Mutation.truth.Mutation.operator = op)
              results
          in
          Some
            {
              r_operator = op;
              r_mutants = List.length rs;
              r_cell =
                List.fold_left
                  (fun c r -> add_cell c r.r_detection)
                  empty_cell rs;
            })
      recovery_operators
  in
  let applicable =
    List.length (List.filter (fun r -> r.r_detection.applicable) results)
  in
  let detected =
    List.length (List.filter (fun r -> r.r_detection.hit) results)
  in
  {
    r_seed = seed;
    r_bases = List.length bases;
    r_total_mutants = List.length results;
    r_applicable = applicable;
    r_detected = detected;
    r_recall =
      (if applicable = 0 then 1.0
       else float_of_int detected /. float_of_int applicable);
    r_rows = rows;
    r_base_reports =
      List.filter_map
        (fun (b, rep) -> Option.map (fun r -> (b.bname, r)) rep)
        prepared;
    r_results = results;
  }

let recovery_to_json s =
  J.Obj
    [
      ("seed", J.Int s.r_seed);
      ("bases", J.Int s.r_bases);
      ("total_mutants", J.Int s.r_total_mutants);
      ( "bases_verified",
        J.List
          (List.map
             (fun (name, (rep : Recover.report)) ->
               J.Obj
                 [
                   ("base", J.String name);
                   ("clean", J.Bool (Recover.consistent rep));
                   ("warnings", J.Int (List.length rep.Recover.warnings));
                   ("report", J.of_recovery rep);
                 ])
             s.r_base_reports) );
      ( "rows",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("operator", J.String (Mutation.operator_name r.r_operator));
                   ( "tier",
                     J.String
                       (Mutation.tier_name
                          (Mutation.operator_tier r.r_operator)) );
                   ("mutants", J.Int r.r_mutants);
                   ("recovery", json_of_cell r.r_cell);
                 ])
             s.r_rows) );
      ("applicable", J.Int s.r_applicable);
      ("detected", J.Int s.r_detected);
      ("recall", J.Float s.r_recall);
      ("all_detected", J.Bool (s.r_detected = s.r_applicable));
    ]

let pp_recovery_summary ppf s =
  Fmt.pf ppf
    "Recovery-tier recall (seed %d, %d base program(s), %d mutant(s))@."
    s.r_seed s.r_bases s.r_total_mutants;
  List.iter
    (fun (name, (rep : Recover.report)) ->
      Fmt.pf ppf "base %-22s %s@." name
        (if Recover.consistent rep then "verified clean"
         else
           Fmt.str "%d recovery warning(s)"
             (List.length rep.Recover.warnings)))
    s.r_base_reports;
  Fmt.pf ppf "%-22s %-9s %-5s %s@." "operator" "tier" "n" "recovery";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-22s %-9s %-5d %s@."
        (Mutation.operator_name r.r_operator)
        (Mutation.tier_name (Mutation.operator_tier r.r_operator))
        r.r_mutants (cell_to_string r.r_cell))
    s.r_rows;
  Fmt.pf ppf "recovery-tier recall: %d/%d = %.3f@." s.r_detected
    s.r_applicable s.r_recall
