(* Strand-model exemplar program.

   The curated corpus programs all target strict or epoch persistency,
   so the strand-splitting operator would have no injection sites; this
   hand-written ring logger is warning-clean under the strand model and
   carries the idioms Split_strand needs: strands with internally
   ordered (overlapping) writes, disjoint across strands. *)

let name = "strand_ring"
let model = Analysis.Model.Strand
let roots = [ "ring_driver"; "index_driver" ]
let entry = "main"

let program () =
  let prog = Nvmir.Prog.create () in
  let open Nvmir.Builder in
  struct_ prog "ring"
    [ ("head", Nvmir.Ty.Int); ("tail", Nvmir.Ty.Int); ("len", Nvmir.Ty.Int) ];
  (* strand 1 republishes head (two ordered writes to one line), strand
     2 independently persists tail: disjoint, so the strands commute *)
  let _ =
    func prog ~file:"ring.c" "ring_append"
      [ ("r", Nvmir.Ty.Ptr (Nvmir.Ty.Named "ring")) ]
      (fun fb ->
        strand_begin fb ~line:10 1;
        store fb ~line:11 (fld "r" "head") (i 1);
        store fb ~line:12 (fld "r" "head") (i 2);
        persist fb ~line:13 (fld "r" "head");
        strand_end fb ~line:14 1;
        strand_begin fb ~line:20 2;
        store fb ~line:21 (fld "r" "tail") (i 7);
        persist fb ~line:22 (fld "r" "tail");
        strand_end fb ~line:23 2;
        ret fb ())
  in
  let _ =
    func prog ~file:"ring.c" "ring_index"
      [ ("r", Nvmir.Ty.Ptr (Nvmir.Ty.Named "ring")) ]
      (fun fb ->
        strand_begin fb ~line:40 1;
        store fb ~line:41 (fld "r" "len") (i 3);
        store fb ~line:42 (fld "r" "len") (i 4);
        persist fb ~line:43 (fld "r" "len");
        strand_end fb ~line:44 1;
        ret fb ())
  in
  let driver fname worker =
    let _ =
      func prog ~file:"ring_driver.c" fname [] (fun fb ->
          palloc fb "r" (Nvmir.Ty.Named "ring");
          call fb worker [ v "r" ];
          ret fb ())
    in
    ()
  in
  driver "ring_driver" "ring_append";
  driver "index_driver" "ring_index";
  let _ =
    func prog ~file:"ring_driver.c" "main" [] (fun fb ->
        call fb "ring_driver" [];
        call fb "index_driver" [];
        ret fb ())
  in
  prog
