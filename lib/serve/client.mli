(** Thin socket client: one connection per request, line-delimited
    JSON — the [deepmc check --connect] path. *)

val request : sock:string -> Protocol.json -> (Protocol.json, string) result

val check :
  sock:string ->
  name:string ->
  model:Analysis.Model.t ->
  ?field_sensitive:bool ->
  ?pmem_roots:(string * string) list ->
  text:string ->
  unit ->
  (Protocol.json, string) result
(** Submit a check request; [Ok] is the full ok-status response
    object, [Error] carries the server's (or transport's) message. *)

val shutdown : sock:string -> (unit, string) result
