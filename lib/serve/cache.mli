(** The resident analyzer's two-level cross-run cache.

    Level A replays a stored summary for byte-identical resubmissions
    (text + parameters hashed; no parsing on a hit). Level B, on a
    changed text, re-parses and rebuilds the DSG (linear), fingerprints
    every function ({!Analysis.Fingerprint}), replays cached per-root
    results whose closure key is unchanged, and re-checks only the
    stale roots — the edited functions' memo-dependent callers. The
    merged warnings are byte-identical to a cold [Checker.check] of
    the same text. *)

type params = {
  model : Analysis.Model.t;
  config : Analysis.Config.t;
  field_sensitive : bool;
  persistent_roots : (string * string) list;
}

val default_params :
  ?config:Analysis.Config.t ->
  ?field_sensitive:bool ->
  ?persistent_roots:(string * string) list ->
  Analysis.Model.t ->
  params

val params_sig : params -> string
(** Canonical signature of everything that can change checker output;
    folded into every cache key. *)

type summary = {
  sm_model : Analysis.Model.t;
  sm_warnings : Analysis.Warning.t list;
  sm_trace_count : int;
  sm_event_count : int;
  sm_peak_paths : int;
}

val summary_of_result : Analysis.Checker.result -> summary

type cache_level =
  | Hit  (** byte-identical resubmission (or all roots replayed) *)
  | Partial  (** some roots replayed, stale ones re-run *)
  | Miss  (** nothing reusable *)

val cache_level_name : cache_level -> string

type outcome = {
  summary : summary;
  level : cache_level;
  invalidated : string list;
      (** functions whose fingerprint changed since the last build *)
  stale : string list;  (** roots re-checked this request *)
  reused : string list;  (** roots replayed from the per-root cache *)
}

type t

val create : ?max_request_entries:int -> unit -> t
(** [max_request_entries] bounds the level-A table (default 4096);
    past it the table is dropped wholesale — sound, merely colder. *)

val check :
  t -> name:string -> params:params -> text:string -> (outcome, string) result
(** Check [text] under [params], reusing everything the caches allow.
    [name] identifies the logical program (watch mode: the file path)
    so successive versions share one incremental slot. [Error] on
    parse/validation failure; nothing is cached in that case. *)

(** {1 Raw request memo} — for commands with no per-root structure
    (crash-explore, inject): byte-identical resubmission replays the
    stored payload. *)

type 'a memo

val memo_create : unit -> 'a memo
val memo_find : 'a memo -> key:string -> compute:(unit -> 'a) -> 'a * cache_level

val request_key : psig:string -> string -> string
(** Digest of parameters + raw text: the level-A/memo key. *)

val observe_latency : int -> unit
(** Feed the [serve.request_latency_ns] histogram. *)
