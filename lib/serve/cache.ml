(* The resident analyzer's two-level cross-run cache.

   Level A — request cache: the raw program text (plus every analysis
   parameter) is hashed; a byte-identical resubmission replays the
   stored summary without parsing anything. This is where a
   re-check-after-small-edit workload wins its order of magnitude —
   in a corpus of programs with one edit per round, every untouched
   program is a level-A hit.

   Level B — per-root incremental cache: when the text *did* change,
   the program is re-parsed and its DSG rebuilt (both linear), then
   [Analysis.Fingerprint] keys each analysis root by the content
   fingerprints of its call-graph closure. Roots whose closure key is
   unchanged replay their cached [Checker.per_root] result — warning
   text included, because fingerprints digest the raw DSG node ids
   warnings embed; only stale roots (the edited functions'
   memo-dependent callers) re-enumerate traces, fanned out on the
   shared pool. The merge preserves the cold run's root order, so the
   final warning list is byte-identical to a cold [Checker.check] of
   the same text (a QCheck differential pins this).

   Cache slots are keyed by program [name] (the watch loop uses the
   file path; socket clients pass one), so resubmissions of the same
   logical program hit the same slot; a different name is simply a
   different slot with its own history. *)

let m_requests =
  Obs.Metrics.counter "serve.requests" ~desc:"requests handled by the resident analyzer"

let m_hits =
  Obs.Metrics.counter "serve.cache_hits"
    ~desc:"request-level cache hits (byte-identical resubmission, no re-analysis)"

let m_misses =
  Obs.Metrics.counter "serve.cache_misses"
    ~desc:"request-level cache misses (program text or parameters changed)"

let m_roots_reused =
  Obs.Metrics.counter "serve.roots_reused"
    ~desc:"per-root results replayed from the incremental cache on changed programs"

let m_invalidated =
  Obs.Metrics.gauge "serve.functions_invalidated"
    ~desc:"high-water mark of functions invalidated by a single edit"

let m_latency =
  Obs.Metrics.histogram "serve.request_latency_ns"
    ~desc:"wall-clock latency per served check request, nanoseconds"

type params = {
  model : Analysis.Model.t;
  config : Analysis.Config.t;
  field_sensitive : bool;
  persistent_roots : (string * string) list;
}

let default_params ?(config = Analysis.Config.default)
    ?(field_sensitive = true) ?(persistent_roots = []) model =
  { model; config; field_sensitive; persistent_roots }

(* Canonical parameter signature folded into every cache key: anything
   that can change the checker's output must appear here. *)
let params_sig p =
  Fmt.str "%s|%d,%d,%d,%d,%s|%b|%a"
    (Analysis.Model.to_string p.model)
    p.config.Analysis.Config.loop_bound p.config.Analysis.Config.recursion_bound
    p.config.Analysis.Config.max_paths p.config.Analysis.Config.expansion_fanout
    (Analysis.Config.engine_name p.config.Analysis.Config.engine)
    p.field_sensitive
    Fmt.(list ~sep:(any ";") (pair ~sep:(any ".") string string))
    (List.sort compare p.persistent_roots)

(* What a response needs from a check: [Checker.result] minus the DSG
   (which is rebuilt per program build and never replayed). *)
type summary = {
  sm_model : Analysis.Model.t;
  sm_warnings : Analysis.Warning.t list;
  sm_trace_count : int;
  sm_event_count : int;
  sm_peak_paths : int;
}

let summary_of_result (r : Analysis.Checker.result) =
  {
    sm_model = r.Analysis.Checker.model;
    sm_warnings = r.Analysis.Checker.warnings;
    sm_trace_count = r.Analysis.Checker.trace_count;
    sm_event_count = r.Analysis.Checker.event_count;
    sm_peak_paths = r.Analysis.Checker.peak_paths;
  }

type cache_level =
  | Hit  (** level A: byte-identical resubmission *)
  | Partial  (** level B: some roots replayed, stale ones re-run *)
  | Miss  (** nothing reusable (first sight, or everything stale) *)

let cache_level_name = function
  | Hit -> "hit"
  | Partial -> "partial"
  | Miss -> "miss"

type outcome = {
  summary : summary;
  level : cache_level;
  invalidated : string list;  (** functions whose fingerprint changed *)
  stale : string list;  (** roots re-checked this request *)
  reused : string list;  (** roots replayed from the per-root cache *)
}

(* Per-(name, params) incremental slot. [entries] remembers, per root,
   the closure key its cached result was computed under. *)
type slot = {
  mutable s_table : Analysis.Fingerprint.table;
  s_entries :
    (string, Nvmir.Chash.t * Analysis.Checker.per_root) Hashtbl.t;
}

type t = {
  requests : (string, summary * cache_level ref) Hashtbl.t;
      (* level A: text+params digest -> stored summary. The level ref
         remembers how the stored run was produced, for reporting. *)
  slots : (string, slot) Hashtbl.t; (* level B: name+params -> slot *)
  max_requests : int; (* level-A bound; reset wholesale past it *)
}

let create ?(max_request_entries = 4096) () =
  {
    requests = Hashtbl.create 64;
    slots = Hashtbl.create 16;
    max_requests = max_request_entries;
  }

let request_key ~psig text =
  Nvmir.Chash.to_hex
    (Nvmir.Chash.add_string (Nvmir.Chash.of_string psig) text)

(* Check [text] under [params], reusing everything the caches allow.
   Returns [Error] on parse/validation failure (cached nothing). *)
let check t ~name ~(params : params) ~text : (outcome, string) result =
  Obs.Metrics.incr m_requests;
  let psig = params_sig params in
  let rkey = request_key ~psig text in
  match Hashtbl.find_opt t.requests rkey with
  | Some (summary, stored_level) ->
    Obs.Metrics.incr m_hits;
    ignore stored_level;
    Ok { summary; level = Hit; invalidated = []; stale = []; reused = [] }
  | None -> (
    Obs.Metrics.incr m_misses;
    match Nvmir.Parser.parse ~file:name text with
    | exception Nvmir.Parser.Parse_error (msg, line) ->
      Error (Fmt.str "parse error at line %d: %s" line msg)
    | prog -> (
      match Nvmir.Prog.validate prog with
      | _ :: _ as errs ->
        Error
          (Fmt.str "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Nvmir.Prog.pp_error) errs)
      | [] ->
        let dsg =
          Dsa.Dsg.build ~field_sensitive:params.field_sensitive
            ~persistent_roots:params.persistent_roots prog
        in
        let table = Analysis.Fingerprint.build dsg prog in
        let roots = Analysis.Fingerprint.roots table in
        let skey = name ^ "\x00" ^ psig in
        let slot, invalidated =
          match Hashtbl.find_opt t.slots skey with
          | Some slot ->
            let changed =
              Analysis.Fingerprint.changed_functions ~old:slot.s_table table
            in
            slot.s_table <- table;
            (slot, changed)
          | None ->
            let slot =
              { s_table = table; s_entries = Hashtbl.create 8 }
            in
            Hashtbl.replace t.slots skey slot;
            (slot, List.sort String.compare (Nvmir.Prog.func_names prog))
        in
        (* A root is stale when its cached entry is missing or was
           computed under a different closure key. *)
        let stale, reused =
          List.partition
            (fun r ->
              match
                (Hashtbl.find_opt slot.s_entries r,
                 Analysis.Fingerprint.root_key table r)
              with
              | Some (k, _), Some k' -> not (Nvmir.Chash.equal k k')
              | _ -> true)
            roots
        in
        Obs.Metrics.set_max m_invalidated (List.length invalidated);
        Obs.Metrics.add m_roots_reused (List.length reused);
        let fresh, _ =
          if stale = [] then ([], dsg)
          else
            Analysis.Checker.check_roots ~config:params.config
              ~field_sensitive:params.field_sensitive
              ~persistent_roots:params.persistent_roots ~dsg ~roots:stale
              ~model:params.model prog
        in
        List.iter
          (fun (pr : Analysis.Checker.per_root) ->
            match
              Analysis.Fingerprint.root_key table
                pr.Analysis.Checker.pr_root
            with
            | Some k ->
              Hashtbl.replace slot.s_entries pr.Analysis.Checker.pr_root
                (k, pr)
            | None -> ())
          fresh;
        (* Merge in the cold run's root order: cross-root dedup keeps
           first occurrences, so order is semantically visible. *)
        let per_root =
          List.filter_map
            (fun r -> Option.map snd (Hashtbl.find_opt slot.s_entries r))
            roots
        in
        let result =
          Analysis.Checker.merge_roots ~model:params.model ~dsg per_root
        in
        let summary = summary_of_result result in
        let level =
          if reused = [] then Miss else if stale = [] then Hit else Partial
        in
        if Hashtbl.length t.requests >= t.max_requests then
          Hashtbl.reset t.requests;
        Hashtbl.replace t.requests rkey (summary, ref level);
        Ok
          {
            summary;
            level;
            invalidated;
            stale;
            reused;
          }))

(* Raw request memo for the non-check commands (crash-explore,
   inject): byte-identical resubmissions replay the stored response
   payload; there is no per-root structure to reuse below that. *)
type 'a memo = (string, 'a) Hashtbl.t

let memo_create () : 'a memo = Hashtbl.create 16

let memo_find (m : 'a memo) ~key ~compute : 'a * cache_level =
  Obs.Metrics.incr m_requests;
  match Hashtbl.find_opt m key with
  | Some v ->
    Obs.Metrics.incr m_hits;
    (v, Hit)
  | None ->
    Obs.Metrics.incr m_misses;
    let v = compute () in
    Hashtbl.replace m key v;
    (v, Miss)

let observe_latency ns = Obs.Metrics.observe m_latency ns
