(* Wire protocol: line-delimited JSON over a Unix-domain socket (or
   stdio). One request object per line in, one response object per
   line out.

   [Core.Json_report.pp] is a pretty-printer (Format boxes, newlines),
   so responses go through [to_line] — the same [json] type rendered
   compactly on a single line, keeping the framing trivial. Requests
   are parsed with the recursive-descent reader below; the encoder
   side of the project stays dependency-free and so does this. *)

type json = Deepmc.Json_report.json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

(* ------------------------------------------------------------------ *)
(* Compact single-line encoder *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec encode_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | String s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        encode_to buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        encode_to buf v)
      fields;
    Buffer.add_char buf '}'

let to_line j =
  let buf = Buffer.create 256 in
  encode_to buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Recursive-descent parser *)

exception Parse_error of string

let parse_exn (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Fmt.kstr (fun m -> raise (Parse_error m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected '%c' at %d, found '%c'" c !pos c'
    | None -> fail "expected '%c' at %d, found end of input" c !pos
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail "invalid literal at %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 't' -> Buffer.add_char buf '\t'
             | 'r' -> Buffer.add_char buf '\r'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape %s" hex
               in
               (* BMP code points re-encode as UTF-8; surrogate pairs
                  (astral plane) are rejected rather than mis-encoded. *)
               if code >= 0xd800 && code <= 0xdfff then
                 fail "surrogate \\u escape u%s unsupported" hex
               else if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                 Buffer.add_char buf
                   (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
               end;
               pos := !pos + 4
             | c -> fail "bad escape '\\%c'" c);
          advance ();
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number '%s' at %d" tok start)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input at %d" !pos;
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Object accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let string_member key j =
  match member key j with Some (String s) -> Some s | _ -> None

let int_member key j = match member key j with Some (Int i) -> Some i | _ -> None

let bool_member key j =
  match member key j with Some (Bool b) -> Some b | _ -> None

(* ------------------------------------------------------------------ *)
(* Request/response shape helpers *)

let error_response ?id msg =
  Obj
    ((match id with Some i -> [ ("id", Int i) ] | None -> [])
    @ [ ("status", String "error"); ("error", String msg) ])

let ok_response ?id fields =
  Obj
    ((match id with Some i -> [ ("id", Int i) ] | None -> [])
    @ (("status", String "ok") :: fields))
