(* Thin client for `deepmc check --connect <sock>`: one connection,
   one line-delimited JSON request, one response. *)

let request ~sock (req : Protocol.json) : (Protocol.json, string) result =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
    match Unix.connect fd (Unix.ADDR_UNIX sock) with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Fmt.str "cannot connect to %s: %s" sock (Unix.error_message e))
    | () ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
      Fun.protect ~finally (fun () ->
          output_string oc (Protocol.to_line req ^ "\n");
          flush oc;
          match input_line ic with
          | exception End_of_file -> Error "connection closed before response"
          | line -> Protocol.parse line))

let check ~sock ~name ~model ?(field_sensitive = true) ?(pmem_roots = []) ~text
    () : (Protocol.json, string) result =
  let req =
    Protocol.Obj
      ([
         ("cmd", Protocol.String "check");
         ("name", Protocol.String name);
         ("model", Protocol.String (Analysis.Model.to_string model));
         ("program", Protocol.String text);
       ]
      @ (if field_sensitive then []
         else [ ("field_sensitive", Protocol.Bool false) ])
      @
      match pmem_roots with
      | [] -> []
      | roots ->
        [
          ( "pmem_roots",
            Protocol.List
              (List.map
                 (fun (f, v) -> Protocol.String (f ^ ":" ^ v))
                 roots) );
        ])
  in
  match request ~sock req with
  | Error _ as e -> e
  | Ok resp -> (
    match Protocol.string_member "status" resp with
    | Some "ok" -> Ok resp
    | Some "error" ->
      Error
        (Option.value ~default:"unknown server error"
           (Protocol.string_member "error" resp))
    | _ -> Error "malformed response")

let shutdown ~sock : (unit, string) result =
  match request ~sock (Protocol.Obj [ ("cmd", Protocol.String "shutdown") ]) with
  | Error _ as e -> e
  | Ok _ -> Ok ()
